// MVCC snapshot-read tests: version chains, non-blocking snapshot cursors,
// the isolation-aware session API (BEGIN WORK READ ONLY, per-statement
// overrides), watermark retirement, serial-vs-pipelined byte identity, and
// a SIGKILL crash drive proving the version store is volatile state that a
// restart rebuilds empty.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/prima.h"

namespace prima::core {
namespace {

using access::Value;
using mql::ExecResult;
using mql::MoleculeCursor;

class MvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Prima::Open({});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    session_ = db_->OpenSession();
    auto ddl = session_->Execute(
        "CREATE ATOM_TYPE part (part_id: IDENTIFIER, part_no: INTEGER, "
        "name: CHAR_VAR, weight: REAL) KEYS_ARE (part_no)");
    ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
  }

  util::Status InsertPart(Session* s, int64_t no, const std::string& name,
                          double weight) {
    return s
        ->Execute("INSERT part (part_no = " + std::to_string(no) +
                  ", name = '" + name +
                  "', weight = " + std::to_string(weight) + ")")
        .status();
  }

  /// (part_no, name) pairs of every molecule a cursor drains, sorted — an
  /// order-independent value-for-value fingerprint of the stream.
  static std::multiset<std::string> Fingerprint(
      std::vector<mql::Molecule> molecules) {
    std::multiset<std::string> out;
    for (const mql::Molecule& m : molecules) {
      for (const mql::MoleculeGroup& g : m.groups) {
        for (const access::Atom& a : g.atoms) {
          out.insert(std::to_string(a.attrs[1].AsInt()) + "/" +
                     a.attrs[2].AsString());
        }
      }
    }
    return out;
  }

  static std::vector<mql::Molecule> DrainAll(MoleculeCursor* cursor) {
    std::vector<mql::Molecule> out;
    for (;;) {
      auto next = cursor->Next();
      EXPECT_TRUE(next.ok()) << next.status().ToString();
      if (!next.ok() || !next->has_value()) break;
      out.push_back(std::move(**next));
    }
    return out;
  }

  std::unique_ptr<Prima> db_;
  std::unique_ptr<Session> session_;
};

// A snapshot cursor opened before a writer commits drains the pre-write
// state value-for-value: modified atoms come back with their before-images,
// deleted atoms are rescued by the ghost pass, and atoms inserted after the
// snapshot stay invisible. A latest-committed cursor opened afterwards sees
// the new world.
TEST_F(MvccTest, SnapshotCursorRepeatableStream) {
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "v0_" + std::to_string(i),
                           i * 1.0)
                    .ok());
  }
  auto expected = session_->Execute("SELECT ALL FROM part");
  ASSERT_TRUE(expected.ok());
  const auto before =
      Fingerprint(std::move(expected->molecules.molecules));

  auto cursor =
      session_->Query("SELECT ALL FROM part", Isolation::kSnapshot);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  // Pull one molecule so the stream is mid-drain when the writer commits.
  std::vector<mql::Molecule> drained;
  auto first = cursor->Next();
  ASSERT_TRUE(first.ok() && first->has_value());
  drained.push_back(std::move(**first));

  auto writer = db_->OpenSession();
  ASSERT_TRUE(writer->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(
      writer->Execute("MODIFY part SET name = 'clobbered'").ok());
  ASSERT_TRUE(
      writer->Execute("DELETE ALL FROM part WHERE part_no = 7").ok());
  ASSERT_TRUE(InsertPart(writer.get(), 99, "newborn", 9.9).ok());
  ASSERT_TRUE(writer->Execute("COMMIT WORK").ok());

  for (auto& m : DrainAll(&*cursor)) drained.push_back(std::move(m));
  EXPECT_EQ(Fingerprint(std::move(drained)), before);

  // Latest-committed sees the committed writes: every name clobbered,
  // part 7 gone, part 99 born.
  auto after = session_->Execute("SELECT ALL FROM part");
  ASSERT_TRUE(after.ok());
  const auto now = Fingerprint(std::move(after->molecules.molecules));
  EXPECT_EQ(now.size(), 20u);  // 20 - 1 deleted + 1 inserted
  EXPECT_EQ(now.count("99/newborn"), 1u);
  for (const std::string& f : now) {
    if (f != "99/newborn") {
      EXPECT_NE(f.find("/clobbered"), std::string::npos);
    }
  }
}

// An uncommitted writer is invisible to a snapshot cursor even though the
// base records already changed — and the reader never blocks on the
// writer's exclusive locks.
TEST_F(MvccTest, SnapshotReaderDoesNotBlockOnUncommittedWriter) {
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "stable", 1.0).ok());
  }
  auto writer = db_->OpenSession();
  ASSERT_TRUE(writer->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(
      writer->Execute("MODIFY part SET name = 'dirty'").ok());

  // Writer still holds its locks; a snapshot read sails past them.
  auto cursor =
      session_->Query("SELECT ALL FROM part", Isolation::kSnapshot);
  ASSERT_TRUE(cursor.ok());
  for (const std::string& f : Fingerprint(DrainAll(&*cursor))) {
    EXPECT_NE(f.find("/stable"), std::string::npos) << f;
  }
  ASSERT_TRUE(writer->Execute("ABORT WORK").ok());
}

// BEGIN WORK READ ONLY: one pinned view for the whole transaction
// (degree-3 repeatable reads), DML and DDL refused, nested BEGIN refused,
// COMMIT releases the pin.
TEST_F(MvccTest, ReadOnlyTransactionRepeatsAndRefusesWrites) {
  ASSERT_TRUE(InsertPart(session_.get(), 1, "original", 1.0).ok());

  ASSERT_TRUE(session_->Execute("BEGIN WORK READ ONLY").ok());
  EXPECT_TRUE(session_->in_read_only_transaction());

  EXPECT_FALSE(InsertPart(session_.get(), 2, "refused", 2.0).ok());
  EXPECT_FALSE(
      session_->Execute("MODIFY part SET name = 'no'").ok());
  EXPECT_FALSE(
      session_->Execute("CREATE ATOM_TYPE refused (x: INTEGER)").ok());
  EXPECT_FALSE(session_->Execute("BEGIN WORK").ok());
  EXPECT_FALSE(session_->Execute("BEGIN WORK READ ONLY").ok());

  auto writer = db_->OpenSession();
  ASSERT_TRUE(
      writer->Execute("MODIFY part SET name = 'moved'").ok());
  ASSERT_TRUE(InsertPart(writer.get(), 3, "later", 3.0).ok());

  // Every read inside the transaction — even one executed after the
  // writer's commit — replays the view pinned at BEGIN.
  auto repeat = session_->Execute("SELECT ALL FROM part");
  ASSERT_TRUE(repeat.ok());
  const auto seen = Fingerprint(std::move(repeat->molecules.molecules));
  EXPECT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen.count("1/original"), 1u);

  ASSERT_TRUE(session_->Execute("COMMIT WORK").ok());
  EXPECT_FALSE(session_->in_read_only_transaction());

  // Released: writes work again and reads see the present.
  ASSERT_TRUE(InsertPart(session_.get(), 4, "after", 4.0).ok());
  auto now = session_->Execute("SELECT ALL FROM part");
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->molecules.size(), 3u);
}

// READ ONLY cannot be opened inside an open read-write transaction.
TEST_F(MvccTest, ReadOnlyRefusedInsideReadWriteTransaction) {
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  EXPECT_FALSE(session_->Execute("BEGIN WORK READ ONLY").ok());
  ASSERT_TRUE(session_->Execute("COMMIT WORK").ok());
}

// The session default isolation applies to cursors that don't override it,
// and a per-call override beats the default in both directions.
TEST_F(MvccTest, DefaultIsolationAndPerCallOverride) {
  ASSERT_TRUE(InsertPart(session_.get(), 1, "old", 1.0).ok());
  session_->set_default_isolation(Isolation::kSnapshot);

  auto snap = session_->Query("SELECT ALL FROM part");  // default: snapshot
  ASSERT_TRUE(snap.ok());
  auto latest = session_->Query("SELECT ALL FROM part",
                                Isolation::kLatestCommitted);  // override
  ASSERT_TRUE(latest.ok());

  auto writer = db_->OpenSession();
  ASSERT_TRUE(
      writer->Execute("MODIFY part SET name = 'new'").ok());

  EXPECT_EQ(Fingerprint(DrainAll(&*snap)).count("1/old"), 1u);
  EXPECT_EQ(Fingerprint(DrainAll(&*latest)).count("1/new"), 1u);
}

// A prepared statement carries its Prepare-time isolation override into
// both Execute() (the materializing path) and Query() (the cursor path).
TEST_F(MvccTest, PreparedStatementSnapshotIsolation) {
  ASSERT_TRUE(InsertPart(session_.get(), 1, "old", 1.0).ok());
  auto stmt = session_->Prepare("SELECT ALL FROM part WHERE part_no = ?",
                                Isolation::kSnapshot);
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->Bind(0, Value::Int(1)).ok());

  auto cursor = stmt->Query();
  ASSERT_TRUE(cursor.ok());
  auto writer = db_->OpenSession();
  ASSERT_TRUE(
      writer->Execute("MODIFY part SET name = 'new'").ok());
  EXPECT_EQ(Fingerprint(DrainAll(&*cursor)).count("1/old"), 1u);

  // Execute() opens its snapshot NOW — after the commit — so it sees the
  // new state: per-statement snapshots pin at open, not at Prepare.
  auto result = stmt->Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Fingerprint(std::move(result->molecules.molecules))
                .count("1/new"),
            1u);
}

// Version chains retire exactly when the last pin that could need them
// goes away, and the store drains to empty — the "retires to empty"
// acceptance gauge, watched through stats()/metrics.
TEST_F(MvccTest, WatermarkRetirementUnderPinnedSnapshot) {
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "v0", 1.0).ok());
  }
  // Insert chains retire on commit (no pin is older); store drains.
  access::VersionStore& versions = db_->access().versions();
  EXPECT_TRUE(versions.Empty());

  {
    auto cursor =
        session_->Query("SELECT ALL FROM part", Isolation::kSnapshot);
    ASSERT_TRUE(cursor.ok());
    auto writer = db_->OpenSession();
    ASSERT_TRUE(
        writer->Execute("MODIFY part SET name = 'v1'").ok());

    const auto pinned = versions.StatsSnapshot();
    EXPECT_GT(pinned.versions_retained, 0u);
    EXPECT_EQ(pinned.snapshots_active, 1u);
    EXPECT_FALSE(versions.Empty());

    // The pinned cursor still reads v0 through the retained chains.
    EXPECT_EQ(Fingerprint(DrainAll(&*cursor)).count("1/v0"), 1u);
  }
  // Cursor gone -> pin released -> watermark advances past every chain.
  // Pipelined assembly may hold the pin a beat longer on a worker.
  for (int i = 0; i < 1000 && !versions.Empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(versions.Empty());
  const auto drained = versions.StatsSnapshot();
  EXPECT_EQ(drained.versions_retained, 0u);
  EXPECT_EQ(drained.snapshots_active, 0u);
  EXPECT_EQ(drained.oldest_snapshot_lsn, 0u);
  EXPECT_EQ(drained.versions_installed, drained.versions_retired);
}

// Serial and pipelined assembly drain a snapshot cursor byte-identically —
// two cursors pinned at the same sequence, one strictly serial and one on
// the worker pool, agree molecule-for-molecule even though the writer
// commits mid-drain.
TEST_F(MvccTest, SnapshotSerialVsPipelinedByteIdentical) {
  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "v0_" + std::to_string(i),
                           i * 0.5)
                    .ok());
  }
  mql::Executor& exec = db_->data().executor();
  util::ThreadPool* const saved_pool = exec.assembly_pool();
  const size_t saved_threads = exec.assembly_threads();

  exec.SetAssemblyPool(nullptr, 1);  // strictly serial
  auto serial =
      session_->Query("SELECT ALL FROM part", Isolation::kSnapshot);
  ASSERT_TRUE(serial.ok());
  exec.SetAssemblyPool(&db_->pool(), 4);  // pipelined look-ahead
  auto pipelined =
      session_->Query("SELECT ALL FROM part", Isolation::kSnapshot);
  ASSERT_TRUE(pipelined.ok());

  auto writer = db_->OpenSession();
  ASSERT_TRUE(writer->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(
      writer->Execute("MODIFY part SET name = 'churn'").ok());
  ASSERT_TRUE(
      writer->Execute("DELETE ALL FROM part WHERE part_no = 11").ok());
  ASSERT_TRUE(writer->Execute("COMMIT WORK").ok());

  std::vector<mql::Molecule> a = DrainAll(&*serial);
  std::vector<mql::Molecule> b = DrainAll(&*pipelined);
  ASSERT_EQ(a.size(), b.size());
  const access::Catalog& catalog = db_->access().catalog();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(catalog), b[i].ToString(catalog)) << "at " << i;
  }
  exec.SetAssemblyPool(saved_pool, saved_threads);  // restore
}

// A snapshot cursor with no transaction of its own survives a same-session
// ABORT WORK: the rollback's compensations restore exactly the before-
// images its pinned chains serve, so the stream keeps going — where a
// latest-committed cursor is invalidated.
TEST_F(MvccTest, SnapshotCursorSurvivesSameSessionAbort) {
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "keep", 1.0).ok());
  }
  auto snap = session_->Query("SELECT ALL FROM part", Isolation::kSnapshot);
  ASSERT_TRUE(snap.ok());
  auto latest = session_->Query("SELECT ALL FROM part");
  ASSERT_TRUE(latest.ok());
  auto first = snap->Next();
  ASSERT_TRUE(first.ok() && first->has_value());

  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(
      session_->Execute("MODIFY part SET name = 'doomed'").ok());
  ASSERT_TRUE(session_->Execute("ABORT WORK").ok());

  // The latest-committed cursor is dead (its stream may have raced the
  // rolled-back state)...
  EXPECT_FALSE(latest->Next().ok());
  // ...the snapshot cursor is not, and still drains the pinned view.
  size_t rest = 1;
  for (;;) {
    auto next = snap->Next();
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    if (!next->has_value()) break;
    ++rest;
  }
  EXPECT_EQ(rest, 10u);
}

// N snapshot readers against M writers: every committed write keeps the
// torn-pair invariant (weight always equals part_no's current generation in
// both attributes via name == weight-stamp), readers never see half a
// transaction, and the lock table records zero conflicts — readers take no
// locks at all, and the writers partition the key space.
TEST_F(MvccTest, ReaderWriterStormNeverTearsAndNeverWaits) {
  // Pairs: two atoms per slot, always modified together to the same stamp.
  static constexpr int kSlots = 4;
  for (int i = 0; i < kSlots * 2; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "g0", 0.0).ok());
  }
  const uint64_t conflicts_before =
      db_->transactions().stats().lock_conflicts.load();

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::atomic<uint64_t> reads{0};

  auto reader = [&] {
    auto s = db_->OpenSession();
    s->set_default_isolation(Isolation::kSnapshot);
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = s->Execute("SELECT ALL FROM part");
      if (!r.ok()) continue;
      // Both atoms of a slot must carry the same generation stamp.
      std::vector<std::string> gen(kSlots * 2);
      for (const mql::Molecule& m : r->molecules.molecules) {
        const access::Atom& a = m.groups[0].atoms[0];
        gen[a.attrs[1].AsInt()] = a.attrs[2].AsString();
      }
      for (int slot = 0; slot < kSlots; ++slot) {
        if (gen[slot * 2] != gen[slot * 2 + 1]) torn.fetch_add(1);
      }
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto writer = [&](int slot) {
    auto s = db_->OpenSession();
    int g = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string stamp = "g" + std::to_string(g++);
      if (!s->Execute("BEGIN WORK").ok()) continue;
      bool ok =
          s->Execute("MODIFY part SET name = '" + stamp +
                     "' WHERE part_no = " +
                     std::to_string(slot * 2))
              .ok() &&
          s->Execute("MODIFY part SET name = '" + stamp +
                     "' WHERE part_no = " +
                     std::to_string(slot * 2 + 1))
              .ok();
      if (ok) {
        (void)s->Execute("COMMIT WORK");
      } else {
        (void)s->Execute("ABORT WORK");
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) threads.emplace_back(reader);
  for (int i = 0; i < kSlots; ++i) threads.emplace_back(writer, i);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true);
  for (auto& t : threads) t.join();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  // Writers own disjoint slots and readers lock nothing: the storm must
  // not have produced a single lock conflict.
  EXPECT_EQ(db_->transactions().stats().lock_conflicts.load(),
            conflicts_before);

  // Quiesced: every chain retires once the last reader's pin is gone.
  access::VersionStore& versions = db_->access().versions();
  for (int i = 0; i < 1000 && !versions.Empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(versions.Empty());
}

// Version chains are volatile by design: a child process running snapshot
// readers against committing writers is SIGKILLed mid-storm; the parent
// reopens the database, restart recovery rolls losers back, and the new
// incarnation starts with an EMPTY version store and an intact pair
// invariant — no residue of the old incarnation's chains or pins.
TEST_F(MvccTest, CrashDriveWithSnapshotReadersLeavesNoResidue) {
  char dir_template[] = "/tmp/prima_mvcc_crash_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  int ready_pipe[2];
  ASSERT_EQ(::pipe(ready_pipe), 0);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // --- child: no gtest here; failures are exit codes ---
    ::close(ready_pipe[0]);
    PrimaOptions options;
    options.in_memory = false;
    options.path = dir;
    auto db_or = Prima::Open(std::move(options));
    if (!db_or.ok()) ::_exit(10);
    auto db = std::move(*db_or);
    auto boot = db->OpenSession();
    if (!boot->Execute(
                "CREATE ATOM_TYPE pair (pair_id: IDENTIFIER, num: INTEGER, "
                "stamp: CHAR_VAR) KEYS_ARE (num)")
             .ok()) {
      ::_exit(11);
    }
    for (int i = 0; i < 2; ++i) {
      if (!boot->Execute("INSERT pair (num = " + std::to_string(i) +
                         ", stamp = 'g0')")
               .ok()) {
        ::_exit(12);
      }
    }
    // Checkpoint the seeded state (catalog blobs persist at checkpoints,
    // not per-DDL); everything after this line is recovered from the WAL.
    if (!db->Flush().ok()) ::_exit(16);
    std::atomic<int> commits{0};
    std::thread writer([&db, &commits] {
      auto s = db->OpenSession();
      for (int g = 1;; ++g) {
        if (!s->Execute("BEGIN WORK").ok()) continue;
        const std::string stamp = "g" + std::to_string(g);
        const bool ok =
            s->Execute("MODIFY pair SET stamp = '" + stamp +
                       "' WHERE num = 0")
                .ok() &&
            s->Execute("MODIFY pair SET stamp = '" + stamp +
                       "' WHERE num = 1")
                .ok();
        if (ok && s->Execute("COMMIT WORK").ok()) {
          commits.fetch_add(1);
        } else {
          (void)s->Execute("ABORT WORK");
        }
      }
    });
    std::thread reader([&db] {
      auto s = db->OpenSession();
      s->set_default_isolation(Isolation::kSnapshot);
      for (;;) {
        auto r = s->Execute("SELECT ALL FROM pair");
        if (!r.ok()) continue;
        std::string s0, s1;
        for (const mql::Molecule& m : r->molecules.molecules) {
          const access::Atom& a = m.groups[0].atoms[0];
          (a.attrs[1].AsInt() == 0 ? s0 : s1) = a.attrs[2].AsString();
        }
        if (s0 != s1) ::_exit(13);  // torn snapshot: fail loudly pre-kill
      }
    });
    // Signal the parent once real MVCC traffic is flowing, then keep
    // storming until SIGKILL lands.
    while (commits.load() < 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    char byte = 1;
    if (::write(ready_pipe[1], &byte, 1) != 1) ::_exit(14);
    writer.join();  // never returns; the process dies by SIGKILL
    reader.join();
    ::_exit(0);
  }

  // --- parent ---
  ::close(ready_pipe[1]);
  char byte = 0;
  ASSERT_EQ(::read(ready_pipe[0], &byte, 1), 1);
  ::close(ready_pipe[0]);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

  PrimaOptions options;
  options.in_memory = false;
  options.path = dir;
  auto db2 = Prima::Open(std::move(options));
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();

  // Zero residue: the version store of the new incarnation is empty before
  // any statement runs — recovery's compensations never install chains.
  const auto fresh = (*db2)->access().versions().StatsSnapshot();
  EXPECT_TRUE((*db2)->access().versions().Empty());
  EXPECT_EQ(fresh.versions_installed, 0u);
  EXPECT_EQ(fresh.snapshots_active, 0u);

  // The recovered state is a committed generation: both atoms of the pair
  // carry the same stamp, readable under either isolation.
  auto s = (*db2)->OpenSession();
  for (const Isolation iso :
       {Isolation::kLatestCommitted, Isolation::kSnapshot}) {
    auto cursor = s->Query("SELECT ALL FROM pair", iso);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    std::string s0, s1;
    size_t atoms = 0;
    for (;;) {
      auto next = cursor->Next();
      ASSERT_TRUE(next.ok());
      if (!next->has_value()) break;
      const access::Atom& a = (*next)->groups[0].atoms[0];
      (a.attrs[1].AsInt() == 0 ? s0 : s1) = a.attrs[2].AsString();
      ++atoms;
    }
    EXPECT_EQ(atoms, 2u);
    EXPECT_EQ(s0, s1);
  }
}

}  // namespace
}  // namespace prima::core
