#include <gtest/gtest.h>

#include "mql/parser.h"

namespace prima::mql {
namespace {

// ---------------------------------------------------------------------------
// The paper's published examples must parse verbatim.
// ---------------------------------------------------------------------------

TEST(PaperExamples, Table21a_VerticalAccess) {
  auto stmt = ParseStatement(
      "SELECT ALL\n"
      "FROM brep-face-edge-point\n"
      "WHERE brep_no = 1713 (* qualification *)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, Statement::Kind::kQuery);
  const Query& q = stmt->query;
  ASSERT_EQ(q.select.size(), 1u);
  EXPECT_EQ(q.select[0].kind, ProjItem::Kind::kAll);
  ASSERT_EQ(q.from.chain.size(), 4u);
  EXPECT_EQ(q.from.chain[0].name, "brep");
  EXPECT_EQ(q.from.chain[3].name, "point");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, Expr::Kind::kCompare);
  EXPECT_EQ(q.where->literal.AsInt(), 1713);
}

TEST(PaperExamples, Table21b_RecursiveAccess) {
  auto stmt = ParseStatement(
      "SELECT ALL\n"
      "FROM piece_list (* pre-defined molecule type *)\n"
      "WHERE piece_list (0).solid_no = 4711 (* seed qualification *)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const Query& q = stmt->query;
  ASSERT_EQ(q.from.chain.size(), 1u);
  EXPECT_EQ(q.from.chain[0].name, "piece_list");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->lhs.component, "piece_list");
  EXPECT_EQ(q.where->lhs.level, 0);
  EXPECT_EQ(q.where->lhs.attrs[0], "solid_no");
}

TEST(PaperExamples, Table21c_HorizontalAccess) {
  auto stmt = ParseStatement(
      "SELECT solid_no, description (* unqualified projection *)\n"
      "FROM solid\n"
      "WHERE sub = EMPTY");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const Query& q = stmt->query;
  ASSERT_EQ(q.select.size(), 2u);
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->op, access::CompareOp::kIsEmpty);
}

TEST(PaperExamples, Table21d_Miscellaneous) {
  auto stmt = ParseStatement(
      "SELECT edge, (point, (* unqualified projection p1 *)\n"
      "  face := SELECT face_id, square_dim\n"
      "    FROM face (* qualified projection q3, p2 *)\n"
      "    WHERE square_dim > 1.9E4)\n"
      "FROM brep-edge (face, point)\n"
      "WHERE brep_no = 1713 (* qualification q1 *)\n"
      "AND\n"
      "EXISTS_AT_LEAST (2) edge: edge.length > 1.0E2\n"
      "(* quantified restriction q2 *)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const Query& q = stmt->query;
  ASSERT_EQ(q.select.size(), 3u);  // edge, point, face:=...
  EXPECT_EQ(q.select[0].component, "edge");
  EXPECT_EQ(q.select[1].component, "point");
  EXPECT_EQ(q.select[2].kind, ProjItem::Kind::kQualified);
  EXPECT_EQ(q.select[2].component, "face");
  EXPECT_EQ(q.select[2].attrs,
            (std::vector<std::string>{"face_id", "square_dim"}));
  ASSERT_NE(q.select[2].qualification, nullptr);
  EXPECT_DOUBLE_EQ(q.select[2].qualification->literal.AsReal(), 1.9e4);
  // FROM with branching.
  ASSERT_EQ(q.from.chain.size(), 2u);
  ASSERT_EQ(q.from.chain[1].branches.size(), 2u);
  EXPECT_EQ(q.from.chain[1].branches[0][0].name, "face");
  EXPECT_EQ(q.from.chain[1].branches[1][0].name, "point");
  // WHERE: AND of compare + quantifier.
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, Expr::Kind::kAnd);
  ASSERT_EQ(q.where->children.size(), 2u);
  const Expr& quant = *q.where->children[1];
  EXPECT_EQ(quant.kind, Expr::Kind::kQuantifier);
  EXPECT_EQ(quant.quant, Expr::Quant::kExistsAtLeast);
  EXPECT_EQ(quant.quant_count, 2u);
  EXPECT_EQ(quant.quant_component, "edge");
  EXPECT_DOUBLE_EQ(quant.quant_body->literal.AsReal(), 1.0e2);
}

TEST(PaperExamples, Fig23_SolidAtomType) {
  auto stmt = ParseStatement(
      "CREATE ATOM_TYPE solid\n"
      "( solid_id : IDENTIFIER,\n"
      "  solid_no : INTEGER,\n"
      "  description : CHAR_VAR,\n"
      "  sub : SET_OF (REF_TO (solid.super)),\n"
      "  super : SET_OF (REF_TO (solid.sub)),\n"
      "  brep : REF_TO (brep.solid) )\n"
      "KEYS_ARE (solid_no)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const CreateAtomTypeStmt& c = stmt->create_atom_type;
  EXPECT_EQ(c.name, "solid");
  ASSERT_EQ(c.attrs.size(), 6u);
  EXPECT_EQ(c.attrs[0].type.kind, access::TypeKind::kIdentifier);
  EXPECT_EQ(c.attrs[3].type.kind, access::TypeKind::kSet);
  EXPECT_EQ(c.attrs[3].type.elem->ref_type_name, "solid");
  EXPECT_EQ(c.attrs[3].type.elem->ref_attr_name, "super");
  EXPECT_EQ(c.attrs[5].type.kind, access::TypeKind::kReference);
  EXPECT_EQ(c.keys, std::vector<std::string>{"solid_no"});
}

TEST(PaperExamples, Fig23_BrepWithCardinalitiesAndHull) {
  auto stmt = ParseStatement(
      "CREATE ATOM_TYPE brep\n"
      "( brep_id : IDENTIFIER,\n"
      "  brep_no : INTEGER,\n"
      "  hull : HULL_DIM(3),\n"
      "  solid : REF_TO (solid.brep),\n"
      "  faces : SET_OF (REF_TO (face.brep)) (4,VAR),\n"
      "  edges : SET_OF (REF_TO (edge.brep)) (6,VAR),\n"
      "  points : SET_OF (REF_TO (point.brep)) (4,VAR) )\n"
      "KEYS_ARE (brep_no)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const CreateAtomTypeStmt& c = stmt->create_atom_type;
  EXPECT_EQ(c.attrs[4].type.card.min, 4u);
  EXPECT_TRUE(c.attrs[4].type.card.var_max);
  EXPECT_EQ(c.attrs[5].type.card.min, 6u);
}

TEST(PaperExamples, Fig23_PointWithRecordAttribute) {
  auto stmt = ParseStatement(
      "CREATE ATOM_TYPE point\n"
      "( point_id : IDENTIFIER,\n"
      "  placement : RECORD\n"
      "    x_coord, y_coord, z_coord : REAL,\n"
      "  END,\n"
      "  line : SET_OF (REF_TO (edge.boundary)) (1,VAR),\n"
      "  face : SET_OF (REF_TO (face.crosspoint)) (1,VAR),\n"
      "  brep : REF_TO (brep.points) )");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const CreateAtomTypeStmt& c = stmt->create_atom_type;
  ASSERT_EQ(c.attrs[1].type.kind, access::TypeKind::kRecord);
  ASSERT_EQ(c.attrs[1].type.fields.size(), 3u);
  EXPECT_EQ(c.attrs[1].type.fields[0].name, "x_coord");
  EXPECT_EQ(c.attrs[1].type.fields[2].name, "z_coord");
  EXPECT_EQ(c.attrs[1].type.fields[1].type->kind, access::TypeKind::kReal);
}

TEST(PaperExamples, Fig23c_MoleculeTypeDefinitions) {
  auto simple = ParseStatement("DEFINE MOLECULE TYPE edge_obj FROM edge - point");
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple->define_molecule_type.name, "edge_obj");
  EXPECT_FALSE(simple->define_molecule_type.recursive);

  auto recursive = ParseStatement(
      "DEFINE MOLECULE TYPE piece_list FROM solid.sub - solid (RECURSIVE)");
  ASSERT_TRUE(recursive.ok()) << recursive.status().ToString();
  EXPECT_TRUE(recursive->define_molecule_type.recursive);
  // The stored text re-parses.
  auto from = ParseFromText(recursive->define_molecule_type.from_text);
  ASSERT_TRUE(from.ok());
  EXPECT_TRUE(from->recursive);
  ASSERT_EQ(from->chain.size(), 2u);
  EXPECT_EQ(from->chain[0].via_attr, "sub");
}

// ---------------------------------------------------------------------------
// Grammar corners
// ---------------------------------------------------------------------------

TEST(ParserTest, QuantifierVariants) {
  auto exists = ParseStatement("SELECT ALL FROM a WHERE EXISTS b: b.x = 1");
  ASSERT_TRUE(exists.ok());
  EXPECT_EQ(exists->query.where->quant, Expr::Quant::kExists);
  auto forall = ParseStatement("SELECT ALL FROM a WHERE FOR_ALL b: b.x > 0");
  ASSERT_TRUE(forall.ok());
  EXPECT_EQ(forall->query.where->quant, Expr::Quant::kForAll);
}

TEST(ParserTest, BooleanPrecedenceAndParens) {
  auto stmt = ParseStatement(
      "SELECT ALL FROM a WHERE x = 1 OR y = 2 AND NOT (z = 3)");
  ASSERT_TRUE(stmt.ok());
  const Expr& top = *stmt->query.where;
  EXPECT_EQ(top.kind, Expr::Kind::kOr);
  ASSERT_EQ(top.children.size(), 2u);
  EXPECT_EQ(top.children[1]->kind, Expr::Kind::kAnd);
  EXPECT_EQ(top.children[1]->children[1]->kind, Expr::Kind::kNot);
}

TEST(ParserTest, ComparisonOperators) {
  const char* ops[] = {"=", "<>", "!=", "<", "<=", ">", ">="};
  const access::CompareOp expect[] = {
      access::CompareOp::kEq, access::CompareOp::kNe, access::CompareOp::kNe,
      access::CompareOp::kLt, access::CompareOp::kLe, access::CompareOp::kGt,
      access::CompareOp::kGe};
  for (size_t i = 0; i < 7; ++i) {
    auto stmt = ParseStatement(std::string("SELECT ALL FROM a WHERE x ") +
                               ops[i] + " 5");
    ASSERT_TRUE(stmt.ok()) << ops[i];
    EXPECT_EQ(stmt->query.where->op, expect[i]) << ops[i];
  }
}

TEST(ParserTest, PathPathComparison) {
  auto stmt = ParseStatement("SELECT ALL FROM a-b WHERE a.x = b.y");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->query.where->rhs_path.has_value());
  EXPECT_EQ(stmt->query.where->rhs_path->component, "b");
}

TEST(ParserTest, NegativeAndScientificLiterals) {
  auto stmt = ParseStatement("SELECT ALL FROM a WHERE x > -1.5E-3");
  ASSERT_TRUE(stmt.ok());
  EXPECT_DOUBLE_EQ(stmt->query.where->literal.AsReal(), -1.5e-3);
  auto neg = ParseStatement("SELECT ALL FROM a WHERE x = -42");
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->query.where->literal.AsInt(), -42);
}

TEST(ParserTest, RecordFieldPath) {
  auto stmt =
      ParseStatement("SELECT ALL FROM point WHERE placement.x_coord > 0.5");
  ASSERT_TRUE(stmt.ok());
  // `placement` reads as a component prefix at parse time; the executor
  // re-binds it as attr + record field if no such component exists.
  EXPECT_EQ(stmt->query.where->lhs.component, "placement");
  ASSERT_EQ(stmt->query.where->lhs.attrs.size(), 1u);
  EXPECT_EQ(stmt->query.where->lhs.attrs[0], "x_coord");
}

TEST(ParserTest, InsertStatement) {
  auto stmt = ParseStatement(
      "INSERT solid (solid_no = 7, description = 'cube', "
      "sub = {@1:5, @1:6})");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const InsertStmt& ins = stmt->insert;
  EXPECT_EQ(ins.type_name, "solid");
  ASSERT_EQ(ins.values.size(), 3u);
  EXPECT_EQ(ins.values[0].value.AsInt(), 7);
  EXPECT_EQ(ins.values[1].value.AsString(), "cube");
  ASSERT_EQ(ins.values[2].value.elems().size(), 2u);
  EXPECT_EQ(ins.values[2].value.elems()[0].AsTid(), access::Tid(1, 5));
}

TEST(ParserTest, DeleteStatementVariants) {
  auto whole = ParseStatement("DELETE ALL FROM brep-face WHERE brep_no = 1");
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(whole->del.components.empty());
  auto partial =
      ParseStatement("DELETE face, edge FROM brep-face-edge WHERE brep_no = 1");
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(partial->del.components,
            (std::vector<std::string>{"face", "edge"}));
}

TEST(ParserTest, ModifyStatement) {
  auto stmt = ParseStatement(
      "MODIFY face SET square_dim = 2.5 FROM brep-face WHERE brep_no = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->modify.target, "face");
  ASSERT_EQ(stmt->modify.sets.size(), 1u);
  EXPECT_DOUBLE_EQ(stmt->modify.sets[0].value.AsReal(), 2.5);
  // Short form defaults FROM to the bare target.
  auto bare = ParseStatement("MODIFY solid SET description = 'x' WHERE solid_no = 1");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->modify.from.chain[0].name, "solid");
}

TEST(ParserTest, ConnectDisconnect) {
  auto con = ParseStatement("CONNECT @1:2.sub TO @1:3");
  ASSERT_TRUE(con.ok());
  EXPECT_TRUE(con->connect.connect);
  EXPECT_EQ(con->connect.from, access::Tid(1, 2));
  EXPECT_EQ(con->connect.attr, "sub");
  EXPECT_EQ(con->connect.to, access::Tid(1, 3));
  auto dis = ParseStatement("DISCONNECT @1:2.sub FROM @1:3");
  ASSERT_TRUE(dis.ok());
  EXPECT_FALSE(dis->connect.connect);
}

TEST(ParserTest, DropStatements) {
  auto atom = ParseStatement("DROP ATOM_TYPE solid");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->drop.what, DropStmt::What::kAtomType);
  auto mol = ParseStatement("DROP MOLECULE TYPE piece_list");
  ASSERT_TRUE(mol.ok());
  EXPECT_EQ(mol->drop.what, DropStmt::What::kMoleculeType);
}

// ---------------------------------------------------------------------------
// Error reporting
// ---------------------------------------------------------------------------

TEST(ParserErrors, AllParseErrors) {
  const char* bad[] = {
      "",                                      // empty
      "SELEC ALL FROM a",                      // typo keyword
      "SELECT ALL FROM",                       // missing structure
      "SELECT ALL FROM a WHERE",               // missing condition
      "SELECT ALL FROM a WHERE x ==",          // bad operator use
      "SELECT FROM a",                         // missing projection
      "CREATE ATOM_TYPE t (x : NOTATYPE)",     // unknown type
      "CREATE ATOM_TYPE t (x INTEGER)",        // missing colon
      "INSERT t (x = )",                       // missing literal
      "SELECT ALL FROM a WHERE x = 'unterminated",  // bad string
      "SELECT ALL FROM a extra",               // trailing tokens
      "CONNECT @1:2.sub TO nope",              // bad tid literal
  };
  for (const char* text : bad) {
    auto stmt = ParseStatement(text);
    EXPECT_FALSE(stmt.ok()) << "should fail: " << text;
    EXPECT_TRUE(stmt.status().IsParseError()) << text;
  }
}

TEST(ParserErrors, ErrorsCarryOffset) {
  auto stmt = ParseStatement("SELECT ALL FROM a WHERE ???");
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("offset"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Transaction-control statements
// ---------------------------------------------------------------------------

TEST(TransactionStatements, BeginCommitAbortWork) {
  auto begin = ParseStatement("BEGIN WORK");
  ASSERT_TRUE(begin.ok()) << begin.status().ToString();
  EXPECT_EQ(begin->kind, Statement::Kind::kBeginWork);

  auto commit = ParseStatement("commit work;");  // case-insensitive, ; ok
  ASSERT_TRUE(commit.ok()) << commit.status().ToString();
  EXPECT_EQ(commit->kind, Statement::Kind::kCommitWork);

  auto abort = ParseStatement("ABORT WORK");
  ASSERT_TRUE(abort.ok()) << abort.status().ToString();
  EXPECT_EQ(abort->kind, Statement::Kind::kAbortWork);
}

TEST(TransactionStatements, WorkKeywordRequired) {
  for (const char* text : {"BEGIN", "COMMIT", "ABORT", "BEGIN TRANSACTION",
                           "COMMIT WORK extra"}) {
    auto stmt = ParseStatement(text);
    EXPECT_FALSE(stmt.ok()) << "should fail: " << text;
    EXPECT_TRUE(stmt.status().IsParseError()) << text;
  }
}

// ---------------------------------------------------------------------------
// Statement parameters (placeholders)
// ---------------------------------------------------------------------------

TEST(Placeholders, PositionalInWhere) {
  auto stmt = ParseStatement("SELECT ALL FROM solid WHERE solid_no = ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->params.size(), 1u);
  EXPECT_TRUE(stmt->params[0].name.empty());
  ASSERT_NE(stmt->query.where, nullptr);
  EXPECT_EQ(stmt->query.where->param, 0);
  EXPECT_TRUE(stmt->query.where->literal.is_null());
}

TEST(Placeholders, NamedSlotsDedupe) {
  // :lo appears twice but declares ONE slot; ? appends a positional one.
  auto stmt = ParseStatement(
      "SELECT ALL FROM face WHERE square_dim > :lo AND "
      "(square_dim < ? OR square_dim = :lo)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->params.size(), 2u);
  EXPECT_EQ(stmt->params[0].name, "lo");
  EXPECT_TRUE(stmt->params[1].name.empty());
  const Expr& root = *stmt->query.where;
  ASSERT_EQ(root.kind, Expr::Kind::kAnd);
  EXPECT_EQ(root.children[0]->param, 0);
  const Expr& onion = *root.children[1];
  ASSERT_EQ(onion.kind, Expr::Kind::kOr);
  EXPECT_EQ(onion.children[0]->param, 1);
  EXPECT_EQ(onion.children[1]->param, 0);  // the re-reference
}

TEST(Placeholders, InsertAndModifyValues) {
  auto ins = ParseStatement("INSERT solid (solid_no = ?, description = :d)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  ASSERT_EQ(ins->params.size(), 2u);
  ASSERT_EQ(ins->insert.values.size(), 2u);
  EXPECT_EQ(ins->insert.values[0].param, 0);
  EXPECT_EQ(ins->insert.values[1].param, 1);
  EXPECT_EQ(ins->params[1].name, "d");

  auto mod = ParseStatement(
      "MODIFY solid SET description = :d WHERE solid_no = ?");
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  ASSERT_EQ(mod->params.size(), 2u);
  EXPECT_EQ(mod->modify.sets[0].param, 0);
  EXPECT_EQ(mod->modify.where->param, 1);
}

TEST(Placeholders, DeleteWhere) {
  auto del = ParseStatement("DELETE ALL FROM solid WHERE solid_no = ?");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  ASSERT_EQ(del->params.size(), 1u);
  EXPECT_EQ(del->del.where->param, 0);
}

TEST(Placeholders, SubstitutionFillsEverySite) {
  auto stmt = ParseStatement(
      "SELECT ALL FROM face WHERE square_dim > :lo AND square_dim < :lo");
  ASSERT_TRUE(stmt.ok());
  SubstituteStatementParams(&*stmt, {access::Value::Real(4.5)});
  const Expr& root = *stmt->query.where;
  EXPECT_DOUBLE_EQ(root.children[0]->literal.AsReal(), 4.5);
  EXPECT_DOUBLE_EQ(root.children[1]->literal.AsReal(), 4.5);
  // Sites keep their slot index: re-substitution overwrites in place.
  SubstituteStatementParams(&*stmt, {access::Value::Real(9.0)});
  EXPECT_DOUBLE_EQ(root.children[0]->literal.AsReal(), 9.0);
}

TEST(Placeholders, RejectedOutsideQueryAndDml) {
  // DDL has no literal positions, so a placeholder can never parse there —
  // whatever shape it takes, the statement must be refused.
  for (const char* text : {
           "CREATE ATOM_TYPE t (x : ?)",
           "CREATE ATOM_TYPE ? (x : INTEGER)",
           "DEFINE MOLECULE TYPE m FROM ?",
           "DROP ATOM_TYPE ?",
       }) {
    auto stmt = ParseStatement(text);
    EXPECT_FALSE(stmt.ok()) << "should fail: " << text;
    EXPECT_TRUE(stmt.status().IsParseError()) << text;
  }
}

TEST(Placeholders, CloneQueryPreservesParamSites) {
  auto stmt = ParseStatement(
      "SELECT edge FROM brep-edge WHERE brep_no = ? AND "
      "EXISTS edge: edge.length > :min");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  Query clone = CloneQuery(stmt->query);
  ASSERT_EQ(clone.where->kind, Expr::Kind::kAnd);
  EXPECT_EQ(clone.where->children[0]->param, 0);
  EXPECT_EQ(clone.where->children[1]->quant_body->param, 1);
  // The clone is independent: substituting into the original leaves it
  // untouched.
  SubstituteStatementParams(&*stmt,
                            {access::Value::Int(1), access::Value::Real(2.0)});
  EXPECT_EQ(stmt->query.where->children[0]->literal.AsInt(), 1);
  EXPECT_TRUE(clone.where->children[0]->literal.is_null());
}

}  // namespace
}  // namespace prima::mql
