#include <gtest/gtest.h>

#include <filesystem>

#include "storage/storage_system.h"
#include "util/random.h"

namespace prima::storage {
namespace {

std::unique_ptr<StorageSystem> MakeMemory(size_t buffer = 4 << 20) {
  StorageOptions opts;
  opts.buffer_bytes = buffer;
  return std::make_unique<StorageSystem>(
      std::make_unique<MemoryBlockDevice>(), opts);
}

TEST(StorageSystemTest, CreateAndDropSegments) {
  auto storage = MakeMemory();
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k512).ok());
  ASSERT_TRUE(storage->CreateSegment(2, PageSize::k8K).ok());
  EXPECT_TRUE(storage->SegmentExists(1));
  EXPECT_TRUE(storage->CreateSegment(1, PageSize::k512).IsAlreadyExists());
  auto ps = storage->SegmentPageSize(2);
  ASSERT_TRUE(ps.ok());
  EXPECT_EQ(*ps, PageSize::k8K);
  ASSERT_TRUE(storage->DropSegment(1).ok());
  EXPECT_FALSE(storage->SegmentExists(1));
  EXPECT_TRUE(storage->DropSegment(1).IsNotFound());
}

TEST(StorageSystemTest, NextFreeSegmentId) {
  auto storage = MakeMemory();
  EXPECT_EQ(storage->NextFreeSegmentId(), 1u);
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k1K).ok());
  ASSERT_TRUE(storage->CreateSegment(5, PageSize::k1K).ok());
  EXPECT_EQ(storage->NextFreeSegmentId(), 6u);
}

TEST(StorageSystemTest, NewPageFormatsAndPersistsType) {
  auto storage = MakeMemory();
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k1K).ok());
  uint32_t page_no;
  {
    auto page = storage->NewPage(1, PageType::kSlotted);
    ASSERT_TRUE(page.ok());
    page_no = page->page_no();
    EXPECT_EQ(page_no, 1u);  // page 0 is the segment header
  }
  auto guard = storage->FixPage(1, page_no, LatchMode::kShared);
  ASSERT_TRUE(guard.ok());
  EXPECT_EQ(PageHeader::type(guard->data()), PageType::kSlotted);
  EXPECT_EQ(PageHeader::page_no(guard->data()), page_no);
}

TEST(StorageSystemTest, FreedPagesAreRecycled) {
  auto storage = MakeMemory();
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k512).ok());
  uint32_t a, b;
  {
    auto pa = storage->NewPage(1, PageType::kMeta);
    ASSERT_TRUE(pa.ok());
    a = pa->page_no();
    auto pb = storage->NewPage(1, PageType::kMeta);
    ASSERT_TRUE(pb.ok());
    b = pb->page_no();
  }
  ASSERT_TRUE(storage->FreePage(1, a).ok());
  ASSERT_TRUE(storage->FreePage(1, b).ok());
  // LIFO free list: b comes back first, then a; no segment growth.
  auto p1 = storage->NewPage(1, PageType::kMeta);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->page_no(), b);
  auto p2 = storage->NewPage(1, PageType::kMeta);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->page_no(), a);
  auto count = storage->PageCount(1);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);  // header + 2
}

TEST(StorageSystemTest, CannotFreeHeaderPage) {
  auto storage = MakeMemory();
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k512).ok());
  EXPECT_TRUE(storage->FreePage(1, 0).IsInvalidArgument());
}

TEST(StorageSystemTest, FixBeyondEndFails) {
  auto storage = MakeMemory();
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k512).ok());
  EXPECT_TRUE(
      storage->FixPage(1, 42, LatchMode::kShared).status().IsInvalidArgument());
}

class SequenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SequenceTest, RoundTrip) {
  auto storage = MakeMemory();
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k512).ok());
  util::Random rng(GetParam());
  std::string payload(GetParam(), '\0');
  for (auto& c : payload) c = static_cast<char>(rng.Uniform(256));

  auto header = storage->CreateSequence(1, payload);
  ASSERT_TRUE(header.ok());
  auto back = storage->ReadSequence(1, *header);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SequenceTest,
                         ::testing::Values(0, 1, 100, 488, 489, 1000, 5000,
                                           50000));

TEST(StorageSystemTest, SequenceRewriteKeepsHeaderPage) {
  auto storage = MakeMemory();
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k512).ok());
  auto header = storage->CreateSequence(1, std::string(3000, 'a'));
  ASSERT_TRUE(header.ok());
  ASSERT_TRUE(storage->RewriteSequence(1, *header, std::string(10, 'b')).ok());
  auto small = storage->ReadSequence(1, *header);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(*small, std::string(10, 'b'));
  ASSERT_TRUE(
      storage->RewriteSequence(1, *header, std::string(9000, 'c')).ok());
  auto big = storage->ReadSequence(1, *header);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(*big, std::string(9000, 'c'));
}

TEST(StorageSystemTest, DropSequenceFreesPages) {
  auto storage = MakeMemory();
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k512).ok());
  auto before = storage->PageCount(1);
  ASSERT_TRUE(before.ok());
  auto header = storage->CreateSequence(1, std::string(4000, 'x'));
  ASSERT_TRUE(header.ok());
  ASSERT_TRUE(storage->DropSequence(1, *header).ok());
  // Freed pages are reused: creating the same sequence again must not grow
  // the segment beyond the first allocation.
  auto count_after_drop = storage->PageCount(1);
  ASSERT_TRUE(count_after_drop.ok());
  auto header2 = storage->CreateSequence(1, std::string(4000, 'y'));
  ASSERT_TRUE(header2.ok());
  auto count_final = storage->PageCount(1);
  ASSERT_TRUE(count_final.ok());
  EXPECT_EQ(*count_final, *count_after_drop);
}

TEST(StorageSystemTest, SequenceColdReadUsesChainedIo) {
  auto device = std::make_unique<MemoryBlockDevice>();
  MemoryBlockDevice* dev = device.get();
  StorageOptions opts;
  opts.buffer_bytes = 1 << 20;
  StorageSystem storage(std::move(device), opts);
  ASSERT_TRUE(storage.CreateSegment(1, PageSize::k512).ok());
  auto header = storage.CreateSequence(1, std::string(8000, 's'));
  ASSERT_TRUE(header.ok());
  ASSERT_TRUE(storage.Flush().ok());
  ASSERT_TRUE(storage.buffer().Discard(1).ok());
  dev->stats().Reset();

  auto payload = storage.ReadSequence(1, *header);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->size(), 8000u);
  // Header page: one single-block read; all components: one chained read.
  EXPECT_EQ(dev->stats().chained_reads.load(), 1u);
  EXPECT_LE(dev->stats().block_reads.load(), 2u);
}

TEST(StorageSystemTest, FlushAndReopenFromFileDevice) {
  const std::string dir = ::testing::TempDir() + "/prima_storage_reopen";
  std::filesystem::remove_all(dir);
  uint32_t header_page = 0;
  {
    StorageSystem storage(std::make_unique<FileBlockDevice>(dir), {});
    ASSERT_TRUE(storage.Open().ok());
    ASSERT_TRUE(storage.CreateSegment(3, PageSize::k2K).ok());
    auto header = storage.CreateSequence(3, std::string(6000, 'r'));
    ASSERT_TRUE(header.ok());
    header_page = *header;
    ASSERT_TRUE(storage.Flush().ok());
  }
  {
    StorageSystem storage(std::make_unique<FileBlockDevice>(dir), {});
    ASSERT_TRUE(storage.Open().ok());
    ASSERT_TRUE(storage.SegmentExists(3));
    auto ps = storage.SegmentPageSize(3);
    ASSERT_TRUE(ps.ok());
    EXPECT_EQ(*ps, PageSize::k2K);
    auto payload = storage.ReadSequence(3, header_page);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(*payload, std::string(6000, 'r'));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace prima::storage
