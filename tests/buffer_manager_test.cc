#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "storage/buffer_manager.h"

namespace prima::storage {
namespace {

class BufferManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<MemoryBlockDevice>();
    ASSERT_TRUE(device_->Create(1, 512).ok());
    ASSERT_TRUE(device_->Create(2, 8192).ok());
  }

  std::unique_ptr<MemoryBlockDevice> device_;
};

TEST_F(BufferManagerTest, HitAfterMiss) {
  BufferManager buffer(device_.get(), 1 << 20, BufferPolicy::kUnifiedLru);
  auto f1 = buffer.Fix(PageId{1, 0}, 512, true);
  ASSERT_TRUE(f1.ok());
  buffer.Unfix(*f1);
  auto f2 = buffer.Fix(PageId{1, 0}, 512, false);
  ASSERT_TRUE(f2.ok());
  buffer.Unfix(*f2);
  EXPECT_EQ(buffer.stats().misses.load(), 1u);
  EXPECT_EQ(buffer.stats().hits.load(), 1u);
}

TEST_F(BufferManagerTest, DirtyPageWrittenBackOnEviction) {
  // Budget: exactly 2 x 512 pages.
  BufferManager buffer(device_.get(), 1024, BufferPolicy::kUnifiedLru);
  {
    auto f = buffer.Fix(PageId{1, 0}, 512, true);
    ASSERT_TRUE(f.ok());
    (*f)->data[PageHeader::kSize] = 'D';
    buffer.MarkDirty(*f);
    buffer.Unfix(*f);
  }
  // Fill the buffer so page 0 is evicted.
  for (uint32_t p = 1; p <= 2; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  EXPECT_GE(buffer.stats().evictions.load(), 1u);
  EXPECT_GE(buffer.stats().writebacks.load(), 1u);
  // The page must be readable from the device (sealed with checksum).
  auto f = buffer.Fix(PageId{1, 0}, 512, false);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->data[PageHeader::kSize], 'D');
  buffer.Unfix(*f);
}

TEST_F(BufferManagerTest, PinnedPagesAreNotEvicted) {
  BufferManager buffer(device_.get(), 1024, BufferPolicy::kUnifiedLru);
  auto pinned = buffer.Fix(PageId{1, 0}, 512, true);
  ASSERT_TRUE(pinned.ok());
  // Cycle many other pages through the second frame.
  for (uint32_t p = 1; p < 20; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  // The pinned page must still be resident: fixing it again is a hit.
  const uint64_t misses_before = buffer.stats().misses.load();
  auto again = buffer.Fix(PageId{1, 0}, 512, false);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(buffer.stats().misses.load(), misses_before);
  buffer.Unfix(*again);
  buffer.Unfix(*pinned);
}

TEST_F(BufferManagerTest, AllPinnedReportsNoSpace) {
  BufferManager buffer(device_.get(), 1024, BufferPolicy::kUnifiedLru);
  auto a = buffer.Fix(PageId{1, 0}, 512, true);
  auto b = buffer.Fix(PageId{1, 1}, 512, true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = buffer.Fix(PageId{1, 2}, 512, true);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsNoSpace());
  buffer.Unfix(*a);
  buffer.Unfix(*b);
}

TEST_F(BufferManagerTest, SizeAwareEvictionDisplacesManySmallPages) {
  // Paper §3.3: one buffer manages different page sizes. Budget fits 16
  // small pages; fixing one 8K page must evict all 16.
  BufferManager buffer(device_.get(), 8192, BufferPolicy::kUnifiedLru);
  for (uint32_t p = 0; p < 16; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  EXPECT_EQ(buffer.resident_bytes(), 16 * 512u);
  auto big = buffer.Fix(PageId{2, 0}, 8192, true);
  ASSERT_TRUE(big.ok());
  buffer.Unfix(*big);
  EXPECT_EQ(buffer.stats().evictions.load(), 16u);
  EXPECT_EQ(buffer.resident_bytes(), 8192u);
}

TEST_F(BufferManagerTest, LruOrderRespected) {
  // Three-frame buffer; touch page 0 again so page 1 is the LRU victim.
  BufferManager buffer(device_.get(), 1536, BufferPolicy::kUnifiedLru);
  for (uint32_t p = 0; p < 3; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  {
    auto f = buffer.Fix(PageId{1, 0}, 512, false);  // refresh page 0
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  {
    auto f = buffer.Fix(PageId{1, 3}, 512, true);  // evicts page 1
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  const uint64_t misses = buffer.stats().misses.load();
  auto f0 = buffer.Fix(PageId{1, 0}, 512, false);
  ASSERT_TRUE(f0.ok());
  buffer.Unfix(*f0);
  EXPECT_EQ(buffer.stats().misses.load(), misses);  // page 0 was resident
  auto f1 = buffer.Fix(PageId{1, 1}, 512, false);
  ASSERT_TRUE(f1.ok());
  buffer.Unfix(*f1);
  EXPECT_EQ(buffer.stats().misses.load(), misses + 1);  // page 1 was evicted
}

TEST_F(BufferManagerTest, StaticPartitionedPoolsAreIndependent) {
  // Equal split: each size class gets 1/5 of 10240 bytes = 2048.
  BufferManager buffer(device_.get(), 10240, BufferPolicy::kStaticPartitioned);
  // 512-byte class holds 4 frames; the 8K class cannot hold even one page
  // (2048 < 8192) -> NoSpace, demonstrating the inflexibility the paper
  // criticizes.
  for (uint32_t p = 0; p < 4; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  auto big = buffer.Fix(PageId{2, 0}, 8192, true);
  EXPECT_TRUE(big.status().IsNoSpace());
}

TEST_F(BufferManagerTest, PrefetchUsesOneChainedRead) {
  BufferManager buffer(device_.get(), 1 << 20, BufferPolicy::kUnifiedLru);
  // Seed four pages on the device.
  for (uint32_t p = 10; p < 14; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.MarkDirty(*f);
    buffer.Unfix(*f);
  }
  ASSERT_TRUE(buffer.FlushAll().ok());
  ASSERT_TRUE(buffer.Discard(1).ok());
  device_->stats().Reset();

  ASSERT_TRUE(buffer.Prefetch(1, {10, 11, 12, 13}, 512).ok());
  EXPECT_EQ(device_->stats().chained_reads.load(), 1u);
  EXPECT_EQ(device_->stats().block_reads.load(), 0u);
  EXPECT_EQ(buffer.stats().prefetched_pages.load(), 4u);
  // All four pages are now hits.
  for (uint32_t p = 10; p < 14; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, false);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  EXPECT_EQ(device_->stats().block_reads.load(), 0u);
}

TEST_F(BufferManagerTest, ChecksumCorruptionDetected) {
  BufferManager buffer(device_.get(), 1 << 20, BufferPolicy::kUnifiedLru);
  {
    auto f = buffer.Fix(PageId{1, 0}, 512, true);
    ASSERT_TRUE(f.ok());
    (*f)->data[30] = 'x';
    buffer.MarkDirty(*f);
    buffer.Unfix(*f);
  }
  ASSERT_TRUE(buffer.FlushAll().ok());
  ASSERT_TRUE(buffer.Discard(1).ok());
  // Corrupt the block behind the buffer's back.
  std::string raw(512, '\0');
  ASSERT_TRUE(device_->Read(1, 0, raw.data()).ok());
  raw[100] ^= 0x5A;
  ASSERT_TRUE(device_->Write(1, 0, raw.data()).ok());
  device_->stats().Reset();

  auto f = buffer.Fix(PageId{1, 0}, 512, false);
  EXPECT_FALSE(f.ok());
  EXPECT_TRUE(f.status().IsCorruption());
}

// ---------------------------------------------------------------------------
// Sharded pool
// ---------------------------------------------------------------------------

TEST_F(BufferManagerTest, ShardCountOneMatchesUnshardedPool) {
  // The compatibility contract: an explicit shards=1 pool must replay the
  // unsharded pool's behavior exactly — same victim, same counters.
  auto run = [&](BufferManager& buffer) {
    for (uint32_t p = 0; p < 3; ++p) {
      auto f = buffer.Fix(PageId{1, p}, 512, true);
      ASSERT_TRUE(f.ok());
      buffer.Unfix(*f);
    }
    {
      auto f = buffer.Fix(PageId{1, 0}, 512, false);  // refresh page 0
      ASSERT_TRUE(f.ok());
      buffer.Unfix(*f);
    }
    {
      auto f = buffer.Fix(PageId{1, 3}, 512, true);  // evicts page 1
      ASSERT_TRUE(f.ok());
      buffer.Unfix(*f);
    }
    // Page 0 survived, page 1 was the victim.
    EXPECT_NE(buffer.TryFix(PageId{1, 0}), nullptr);
    EXPECT_EQ(buffer.TryFix(PageId{1, 1}), nullptr);
    auto f0 = buffer.TryFix(PageId{1, 0});
    buffer.Unfix(f0);
    buffer.Unfix(f0);  // both TryFix pins
  };
  BufferManager legacy(device_.get(), 1536, BufferPolicy::kUnifiedLru);
  run(legacy);
  BufferManager sharded(device_.get(), 1536, BufferPolicy::kUnifiedLru, 1);
  run(sharded);
  EXPECT_EQ(sharded.shard_count(), 1u);
  EXPECT_EQ(legacy.stats().hits.load(), sharded.stats().hits.load());
  EXPECT_EQ(legacy.stats().misses.load(), sharded.stats().misses.load());
  EXPECT_EQ(legacy.stats().evictions.load(), sharded.stats().evictions.load());
}

TEST_F(BufferManagerTest, PerShardCountersSumToTotals) {
  BufferManager buffer(device_.get(), 1 << 20, BufferPolicy::kUnifiedLru, 4);
  ASSERT_EQ(buffer.shard_count(), 4u);
  for (uint32_t p = 0; p < 32; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  for (uint32_t p = 0; p < 32; p += 2) {  // re-touch half: hits
    auto f = buffer.Fix(PageId{1, p}, 512, false);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  const BufferStatsSnapshot snap = buffer.SnapshotStats();
  ASSERT_EQ(snap.shards.size(), 4u);
  EXPECT_EQ(snap.misses, 32u);
  EXPECT_EQ(snap.hits, 16u);
  uint64_t hits = 0, misses = 0, resident = 0;
  for (const auto& s : snap.shards) {
    hits += s.hits;
    misses += s.misses;
    resident += s.resident_bytes;
  }
  EXPECT_EQ(hits, snap.hits);
  EXPECT_EQ(misses, snap.misses);
  EXPECT_EQ(resident, 32 * 512u);
  EXPECT_EQ(resident, buffer.resident_bytes());
}

TEST_F(BufferManagerTest, ParallelFixStormAcrossShards) {
  // 4 shards x 16 frames of 512 bytes each; 8 threads hammer a 4x larger
  // working set so every shard runs a continuous eviction storm. The pool
  // must neither lose accounting nor report NoSpace (at most 8 pins are
  // live at any instant, far below any shard's frame count).
  constexpr uint32_t kPages = 256;
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 2000;
  BufferManager buffer(device_.get(), 4 * 16 * 512, BufferPolicy::kUnifiedLru,
                       4);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0x9E3779B97F4A7C15ull * (t + 1);
      for (int i = 0; i < kItersPerThread; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const uint32_t p = static_cast<uint32_t>((rng >> 33) % kPages);
        auto f = buffer.Fix(PageId{1, p}, 512, true);
        if (!f.ok()) {
          failures++;
          continue;
        }
        if ((rng & 1) != 0) buffer.MarkDirty(*f);
        buffer.Unfix(*f);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const BufferStatsSnapshot snap = buffer.SnapshotStats();
  // Every Fix was either a hit or a miss — the accounting is lossless.
  EXPECT_EQ(snap.hits + snap.misses,
            static_cast<uint64_t>(kThreads) * kItersPerThread);
  EXPECT_GT(snap.evictions, 0u);
  // The budget was honored throughout: at most 16 frames stay per shard.
  EXPECT_LE(buffer.resident_bytes(), 4 * 16 * 512u);
  // The storm spread across partitions, not one hot shard.
  size_t active_shards = 0;
  for (const auto& s : snap.shards) {
    if (s.misses > 0) active_shards++;
  }
  EXPECT_GT(active_shards, 1u);
}

TEST_F(BufferManagerTest, ClockEvictionRespectsPinsUnderStorm) {
  BufferManager buffer(device_.get(), 4 * 8 * 512, BufferPolicy::kUnifiedLru,
                       4);
  // Pin four pages, then let concurrent scanners churn every shard.
  std::vector<Frame*> pinned;
  for (uint32_t p = 0; p < 4; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    pinned.push_back(*f);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (uint32_t p = 10 + t * 50; p < 10 + t * 50 + 50; ++p) {
        auto f = buffer.Fix(PageId{1, p}, 512, true);
        if (f.ok()) buffer.Unfix(*f);
      }
    });
  }
  for (auto& th : threads) th.join();
  // The pinned pages rode out every sweep.
  const uint64_t misses_before = buffer.stats().misses.load();
  for (uint32_t p = 0; p < 4; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, false);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  EXPECT_EQ(buffer.stats().misses.load(), misses_before);
  for (Frame* f : pinned) buffer.Unfix(f);
}

/// Minimal WAL recording the force protocol, for asserting the write-back
/// rule without standing up the real log.
class RecordingWal : public WriteAheadLog {
 public:
  uint64_t LogPageDelta(SegmentId, uint32_t, uint32_t, const char*,
                        const char*) override {
    return 0;
  }
  uint64_t LogFullPage(SegmentId, uint32_t, uint32_t, const char*) override {
    return 0;
  }
  uint64_t LogSegmentMeta(SegmentId, uint8_t, uint32_t, uint32_t) override {
    return 0;
  }
  util::Status ForceUpTo(uint64_t lsn) override {
    force_calls++;
    forced_up_to = std::max(forced_up_to, lsn);
    durable = std::max(durable, lsn);
    return util::Status::Ok();
  }
  uint64_t durable_lsn() const override { return durable; }
  uint64_t append_lsn() const override { return append; }
  uint64_t epoch() const override { return 1; }

  uint64_t durable = 0;
  uint64_t append = 0;
  uint64_t forced_up_to = 0;
  int force_calls = 0;
};

TEST_F(BufferManagerTest, EvictionForcesLogBeforeDirtyWriteBack) {
  // The WAL rule on the sharded eviction path: a dirty page whose page-LSN
  // exceeds the durable LSN must force the log before reaching the device.
  RecordingWal wal;
  wal.append = 42;
  BufferManager buffer(device_.get(), 1024, BufferPolicy::kUnifiedLru, 1);
  buffer.SetWal(&wal);
  {
    auto f = buffer.Fix(PageId{1, 0}, 512, true);
    ASSERT_TRUE(f.ok());
    PageHeader::set_lsn((*f)->data.get(), 42);
    buffer.MarkDirty(*f);
    buffer.Unfix(*f);
  }
  ASSERT_EQ(wal.force_calls, 0);
  // Fill the two-frame pool: evicting dirty page 0 triggers the force.
  for (uint32_t p = 1; p <= 2; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  EXPECT_GE(wal.force_calls, 1);
  EXPECT_EQ(wal.forced_up_to, 42u);
  EXPECT_EQ(buffer.stats().writebacks.load(), 1u);
  buffer.SetWal(nullptr);  // the fake dies before the pool's destructor
}

}  // namespace
}  // namespace prima::storage
