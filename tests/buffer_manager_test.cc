#include <gtest/gtest.h>

#include "storage/buffer_manager.h"

namespace prima::storage {
namespace {

class BufferManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = std::make_unique<MemoryBlockDevice>();
    ASSERT_TRUE(device_->Create(1, 512).ok());
    ASSERT_TRUE(device_->Create(2, 8192).ok());
  }

  std::unique_ptr<MemoryBlockDevice> device_;
};

TEST_F(BufferManagerTest, HitAfterMiss) {
  BufferManager buffer(device_.get(), 1 << 20, BufferPolicy::kUnifiedLru);
  auto f1 = buffer.Fix(PageId{1, 0}, 512, true);
  ASSERT_TRUE(f1.ok());
  buffer.Unfix(*f1);
  auto f2 = buffer.Fix(PageId{1, 0}, 512, false);
  ASSERT_TRUE(f2.ok());
  buffer.Unfix(*f2);
  EXPECT_EQ(buffer.stats().misses.load(), 1u);
  EXPECT_EQ(buffer.stats().hits.load(), 1u);
}

TEST_F(BufferManagerTest, DirtyPageWrittenBackOnEviction) {
  // Budget: exactly 2 x 512 pages.
  BufferManager buffer(device_.get(), 1024, BufferPolicy::kUnifiedLru);
  {
    auto f = buffer.Fix(PageId{1, 0}, 512, true);
    ASSERT_TRUE(f.ok());
    (*f)->data[PageHeader::kSize] = 'D';
    buffer.MarkDirty(*f);
    buffer.Unfix(*f);
  }
  // Fill the buffer so page 0 is evicted.
  for (uint32_t p = 1; p <= 2; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  EXPECT_GE(buffer.stats().evictions.load(), 1u);
  EXPECT_GE(buffer.stats().writebacks.load(), 1u);
  // The page must be readable from the device (sealed with checksum).
  auto f = buffer.Fix(PageId{1, 0}, 512, false);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->data[PageHeader::kSize], 'D');
  buffer.Unfix(*f);
}

TEST_F(BufferManagerTest, PinnedPagesAreNotEvicted) {
  BufferManager buffer(device_.get(), 1024, BufferPolicy::kUnifiedLru);
  auto pinned = buffer.Fix(PageId{1, 0}, 512, true);
  ASSERT_TRUE(pinned.ok());
  // Cycle many other pages through the second frame.
  for (uint32_t p = 1; p < 20; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  // The pinned page must still be resident: fixing it again is a hit.
  const uint64_t misses_before = buffer.stats().misses.load();
  auto again = buffer.Fix(PageId{1, 0}, 512, false);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(buffer.stats().misses.load(), misses_before);
  buffer.Unfix(*again);
  buffer.Unfix(*pinned);
}

TEST_F(BufferManagerTest, AllPinnedReportsNoSpace) {
  BufferManager buffer(device_.get(), 1024, BufferPolicy::kUnifiedLru);
  auto a = buffer.Fix(PageId{1, 0}, 512, true);
  auto b = buffer.Fix(PageId{1, 1}, 512, true);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = buffer.Fix(PageId{1, 2}, 512, true);
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsNoSpace());
  buffer.Unfix(*a);
  buffer.Unfix(*b);
}

TEST_F(BufferManagerTest, SizeAwareEvictionDisplacesManySmallPages) {
  // Paper §3.3: one buffer manages different page sizes. Budget fits 16
  // small pages; fixing one 8K page must evict all 16.
  BufferManager buffer(device_.get(), 8192, BufferPolicy::kUnifiedLru);
  for (uint32_t p = 0; p < 16; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  EXPECT_EQ(buffer.resident_bytes(), 16 * 512u);
  auto big = buffer.Fix(PageId{2, 0}, 8192, true);
  ASSERT_TRUE(big.ok());
  buffer.Unfix(*big);
  EXPECT_EQ(buffer.stats().evictions.load(), 16u);
  EXPECT_EQ(buffer.resident_bytes(), 8192u);
}

TEST_F(BufferManagerTest, LruOrderRespected) {
  // Three-frame buffer; touch page 0 again so page 1 is the LRU victim.
  BufferManager buffer(device_.get(), 1536, BufferPolicy::kUnifiedLru);
  for (uint32_t p = 0; p < 3; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  {
    auto f = buffer.Fix(PageId{1, 0}, 512, false);  // refresh page 0
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  {
    auto f = buffer.Fix(PageId{1, 3}, 512, true);  // evicts page 1
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  const uint64_t misses = buffer.stats().misses.load();
  auto f0 = buffer.Fix(PageId{1, 0}, 512, false);
  ASSERT_TRUE(f0.ok());
  buffer.Unfix(*f0);
  EXPECT_EQ(buffer.stats().misses.load(), misses);  // page 0 was resident
  auto f1 = buffer.Fix(PageId{1, 1}, 512, false);
  ASSERT_TRUE(f1.ok());
  buffer.Unfix(*f1);
  EXPECT_EQ(buffer.stats().misses.load(), misses + 1);  // page 1 was evicted
}

TEST_F(BufferManagerTest, StaticPartitionedPoolsAreIndependent) {
  // Equal split: each size class gets 1/5 of 10240 bytes = 2048.
  BufferManager buffer(device_.get(), 10240, BufferPolicy::kStaticPartitioned);
  // 512-byte class holds 4 frames; the 8K class cannot hold even one page
  // (2048 < 8192) -> NoSpace, demonstrating the inflexibility the paper
  // criticizes.
  for (uint32_t p = 0; p < 4; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  auto big = buffer.Fix(PageId{2, 0}, 8192, true);
  EXPECT_TRUE(big.status().IsNoSpace());
}

TEST_F(BufferManagerTest, PrefetchUsesOneChainedRead) {
  BufferManager buffer(device_.get(), 1 << 20, BufferPolicy::kUnifiedLru);
  // Seed four pages on the device.
  for (uint32_t p = 10; p < 14; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, true);
    ASSERT_TRUE(f.ok());
    buffer.MarkDirty(*f);
    buffer.Unfix(*f);
  }
  ASSERT_TRUE(buffer.FlushAll().ok());
  ASSERT_TRUE(buffer.Discard(1).ok());
  device_->stats().Reset();

  ASSERT_TRUE(buffer.Prefetch(1, {10, 11, 12, 13}, 512).ok());
  EXPECT_EQ(device_->stats().chained_reads.load(), 1u);
  EXPECT_EQ(device_->stats().block_reads.load(), 0u);
  EXPECT_EQ(buffer.stats().prefetched_pages.load(), 4u);
  // All four pages are now hits.
  for (uint32_t p = 10; p < 14; ++p) {
    auto f = buffer.Fix(PageId{1, p}, 512, false);
    ASSERT_TRUE(f.ok());
    buffer.Unfix(*f);
  }
  EXPECT_EQ(device_->stats().block_reads.load(), 0u);
}

TEST_F(BufferManagerTest, ChecksumCorruptionDetected) {
  BufferManager buffer(device_.get(), 1 << 20, BufferPolicy::kUnifiedLru);
  {
    auto f = buffer.Fix(PageId{1, 0}, 512, true);
    ASSERT_TRUE(f.ok());
    (*f)->data[30] = 'x';
    buffer.MarkDirty(*f);
    buffer.Unfix(*f);
  }
  ASSERT_TRUE(buffer.FlushAll().ok());
  ASSERT_TRUE(buffer.Discard(1).ok());
  // Corrupt the block behind the buffer's back.
  std::string raw(512, '\0');
  ASSERT_TRUE(device_->Read(1, 0, raw.data()).ok());
  raw[100] ^= 0x5A;
  ASSERT_TRUE(device_->Write(1, 0, raw.data()).ok());
  device_->stats().Reset();

  auto f = buffer.Fix(PageId{1, 0}, 512, false);
  EXPECT_FALSE(f.ok());
  EXPECT_TRUE(f.status().IsCorruption());
}

}  // namespace
}  // namespace prima::storage
