#include <gtest/gtest.h>

#include "core/prima.h"
#include "workloads/brep.h"

namespace prima::core {
namespace {

using access::Value;

class AppLayerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Prima::Open({});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    workloads::BrepWorkload brep(db_.get());
    ASSERT_TRUE(brep.CreateSchema().ok());
    ASSERT_TRUE(brep.BuildMany(1, 3).ok());
  }

  std::unique_ptr<Prima> db_;
};

TEST_F(AppLayerTest, CheckoutTransfersMolecules) {
  auto checkout = db_->object_buffer().CheckoutQuery(
      "SELECT ALL FROM brep-face WHERE brep_no = 2");
  ASSERT_TRUE(checkout.ok());
  EXPECT_EQ(checkout->molecules().size(), 1u);
  EXPECT_EQ(db_->object_buffer().stats().atoms_transferred.load(), 5u);
}

TEST_F(AppLayerTest, LocalEditThenCheckinWritesBack) {
  auto checkout = db_->object_buffer().CheckoutQuery(
      "SELECT ALL FROM brep-face WHERE brep_no = 2");
  ASSERT_TRUE(checkout.ok());
  // Application-side local processing on the object buffer.
  mql::MoleculeGroup* faces = checkout->molecules().molecules[0].FindGroup("face");
  ASSERT_NE(faces, nullptr);
  for (auto& f : faces->atoms) {
    f.attrs[1] = Value::Real(123.0);  // square_dim
  }
  ASSERT_TRUE(db_->object_buffer().Checkin(&*checkout).ok());
  EXPECT_EQ(db_->object_buffer().stats().atoms_written_back.load(), 4u);
  // The host database sees the modification.
  auto set = db_->Query("SELECT ALL FROM brep-face WHERE brep_no = 2");
  ASSERT_TRUE(set.ok());
  for (const auto& f : set->molecules[0].FindGroup("face")->atoms) {
    EXPECT_DOUBLE_EQ(f.attrs[1].AsReal(), 123.0);
  }
}

TEST_F(AppLayerTest, UnmodifiedCheckinWritesNothing) {
  auto checkout = db_->object_buffer().CheckoutQuery(
      "SELECT ALL FROM brep-face WHERE brep_no = 1");
  ASSERT_TRUE(checkout.ok());
  ASSERT_TRUE(db_->object_buffer().Checkin(&*checkout).ok());
  EXPECT_EQ(db_->object_buffer().stats().atoms_written_back.load(), 0u);
}

TEST_F(AppLayerTest, RepeatedCheckinOnlyWritesNewDiffs) {
  auto checkout = db_->object_buffer().CheckoutQuery(
      "SELECT ALL FROM solid WHERE solid_no = 1");
  ASSERT_TRUE(checkout.ok());
  auto* atom = &checkout->molecules().molecules[0].groups[0].atoms[0];
  atom->attrs[2] = Value::String("first");
  ASSERT_TRUE(db_->object_buffer().Checkin(&*checkout).ok());
  EXPECT_EQ(db_->object_buffer().stats().atoms_written_back.load(), 1u);
  // Second checkin without further edits: no write.
  ASSERT_TRUE(db_->object_buffer().Checkin(&*checkout).ok());
  EXPECT_EQ(db_->object_buffer().stats().atoms_written_back.load(), 1u);
  // Edit again, checkin again.
  atom->attrs[2] = Value::String("second");
  ASSERT_TRUE(db_->object_buffer().Checkin(&*checkout).ok());
  EXPECT_EQ(db_->object_buffer().stats().atoms_written_back.load(), 2u);
  auto set = db_->Query("SELECT ALL FROM solid WHERE solid_no = 1");
  EXPECT_EQ(set->molecules[0].groups[0].atoms[0].attrs[2].AsString(), "second");
}

TEST_F(AppLayerTest, FindAtomLocatesCopies) {
  auto checkout = db_->object_buffer().CheckoutQuery(
      "SELECT ALL FROM brep-face WHERE brep_no = 3");
  ASSERT_TRUE(checkout.ok());
  const access::Tid tid =
      checkout->molecules().molecules[0].FindGroup("face")->atoms[2].tid;
  access::Atom* found = checkout->FindAtom(tid);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->tid, tid);
  EXPECT_EQ(checkout->FindAtom(access::Tid(99, 99)), nullptr);
}

TEST_F(AppLayerTest, CheckinMaintainsReferentialIntegrity) {
  // Editing an association attribute in the buffer rewires back-references
  // on checkin (the access system enforces symmetry on the diff write).
  auto s1 = db_->Query("SELECT ALL FROM solid WHERE solid_no = 1");
  auto s2 = db_->Query("SELECT ALL FROM solid WHERE solid_no = 2");
  const access::Tid t1 = s1->molecules[0].groups[0].atoms[0].tid;
  const access::Tid t2 = s2->molecules[0].groups[0].atoms[0].tid;

  auto checkout = db_->object_buffer().CheckoutQuery(
      "SELECT ALL FROM solid WHERE solid_no = 1");
  ASSERT_TRUE(checkout.ok());
  auto* atom = &checkout->molecules().molecules[0].groups[0].atoms[0];
  atom->attrs[3] = Value::List({Value::Ref(t2)});  // sub = {solid 2}
  ASSERT_TRUE(db_->object_buffer().Checkin(&*checkout).ok());

  auto child = db_->access().GetAtom(t2);
  ASSERT_TRUE(child.ok());
  EXPECT_TRUE(child->attrs[4].Contains(Value::Ref(t1)));  // super back-ref
}

}  // namespace
}  // namespace prima::core
