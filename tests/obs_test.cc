// Kernel telemetry tests: histogram bucket math and percentile accuracy,
// the 8-thread merge storm, registry rendering, EXPLAIN ANALYZE span trees
// (golden phase set: serial == pipelined), slow-query ring capture and
// eviction, statement sampling, and the concurrent cursors-vs-snapshots
// storm the TSan CI job runs against the lock-free stats paths.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/prima.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace prima::obs {
namespace {

using core::Prima;
using core::PrimaOptions;
using core::Session;
using mql::ExecResult;

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, SmallValuesAreExact) {
  for (uint64_t v = 0; v < kHistogramSubBuckets; ++v) {
    const size_t idx = Histogram::BucketIndex(v);
    EXPECT_EQ(Histogram::BucketLowerBound(idx), v);
    EXPECT_EQ(Histogram::BucketUpperBound(idx), v + 1);
  }
}

TEST(HistogramTest, BucketBoundsBracketTheValue) {
  for (uint64_t v : {8ull, 9ull, 100ull, 1000ull, 4096ull, 65535ull,
                     1000000ull, 123456789ull, (1ull << 40) + 17,
                     ~0ull >> 1}) {
    const size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, kHistogramBuckets);
    EXPECT_LE(Histogram::BucketLowerBound(idx), v) << v;
    EXPECT_GT(Histogram::BucketUpperBound(idx), v) << v;
    // Log-linear contract: bucket width <= 12.5% of its lower bound.
    const uint64_t lo = Histogram::BucketLowerBound(idx);
    const uint64_t width = Histogram::BucketUpperBound(idx) - lo;
    if (lo >= kHistogramSubBuckets) {
      EXPECT_LE(width * 8, lo + 7) << "bucket too wide at " << v;
    }
  }
}

TEST(HistogramTest, PercentilesOnUniformData) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500500u);
  // Within the 12.5% bucket-width error bound (plus interpolation slack).
  EXPECT_NEAR(static_cast<double>(snap.p50()), 500.0, 500.0 * 0.15);
  EXPECT_NEAR(static_cast<double>(snap.p95()), 950.0, 950.0 * 0.15);
  EXPECT_NEAR(static_cast<double>(snap.p99()), 990.0, 990.0 * 0.15);
  EXPECT_EQ(snap.Mean(), 500u);
}

TEST(HistogramTest, EightThreadMergeStorm) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      const uint64_t value = static_cast<uint64_t>(t) * 10 + 1;
      for (uint64_t i = 0; i < kPerThread; ++i) h.Record(value);
    });
  }
  // Concurrent snapshots must always be internally sane (monotone counts,
  // never torn below zero), even mid-storm.
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot mid = h.Snapshot();
    EXPECT_LE(mid.count, kThreads * kPerThread);
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  uint64_t want_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    want_sum = want_sum + (static_cast<uint64_t>(t) * 10 + 1) * kPerThread;
  }
  EXPECT_EQ(snap.sum, want_sum);
}

TEST(HistogramSnapshotTest, MergeAddsCountsAndBuckets) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 200u);
  EXPECT_EQ(merged.sum, 100u * 10 + 100u * 1000);
  EXPECT_LE(merged.p50(), 12u);
  EXPECT_GE(merged.p99(), 900u);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesAndHistogramsRender) {
  MetricsRegistry reg;
  std::atomic<uint64_t> hits{42};
  reg.RegisterCounter("prima_test_hits", &hits, "test counter");
  reg.RegisterGauge("prima_test_depth", [] { return uint64_t{7}; });
  Histogram* h = reg.RegisterHistogram("prima_test_us", "test latency");
  h->Record(100);
  h->Record(200);

  const std::string text = reg.RenderText();
  EXPECT_NE(text.find("# TYPE prima_test_hits counter"), std::string::npos);
  EXPECT_NE(text.find("prima_test_hits 42"), std::string::npos);
  EXPECT_NE(text.find("# HELP prima_test_hits test counter"),
            std::string::npos);
  EXPECT_NE(text.find("prima_test_depth 7"), std::string::npos);
  EXPECT_NE(text.find("prima_test_us{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("prima_test_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("prima_test_us_sum 300"), std::string::npos);

  hits.fetch_add(1);
  EXPECT_NE(reg.RenderText().find("prima_test_hits 43"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramRegistrationDedupsByName) {
  MetricsRegistry reg;
  Histogram* a = reg.RegisterHistogram("prima_same_us");
  Histogram* b = reg.RegisterHistogram("prima_same_us");
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Trace plumbing
// ---------------------------------------------------------------------------

TEST(TraceTest, PhaseTreeAndKernelCounterFolding) {
  StatementTrace trace;
  trace.AddPhaseNs("parse", 1500);
  trace.AddPhaseNs("execute", "assembly", 2500);
  trace.buffer_hits.fetch_add(3);
  trace.buffer_misses.fetch_add(1);
  trace.buffer_miss_ns.fetch_add(5000);
  trace.Finish();

  const std::vector<std::string> names = trace.PhaseNames();
  const std::set<std::string> set(names.begin(), names.end());
  EXPECT_TRUE(set.count("parse"));
  EXPECT_TRUE(set.count("execute/assembly"));
  EXPECT_TRUE(set.count("buffer"));

  const std::string text = trace.Render("test");
  EXPECT_NE(text.find("[hits=3]"), std::string::npos);
  EXPECT_NE(text.find("[misses=1]"), std::string::npos);
}

TEST(SlowQueryLogTest, CapturesAndEvictsOldestFirst) {
  SlowQueryLog log(/*capacity=*/2);
  log.Record("s1", 100, "t1");
  log.Record("s2", 200, "t2");
  log.Record("s3", 300, "t3");
  EXPECT_EQ(log.captured(), 3u);
  const std::vector<SlowStatement> snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].text, "s2");
  EXPECT_EQ(snap[1].text, "s3");
  EXPECT_LT(snap[0].sequence, snap[1].sequence);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE through the kernel
// ---------------------------------------------------------------------------

/// Phase paths ("execute/assembly") parsed back out of a rendered span
/// tree: line 1 is the header, line 2 the total, then one phase per line,
/// indented two spaces per depth.
std::vector<std::string> PhasePaths(const std::string& rendered) {
  std::vector<std::string> paths;
  std::vector<std::string> stack;
  std::istringstream in(rendered);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    if (++lineno <= 2 || line.empty()) continue;
    const size_t indent = line.find_first_not_of(' ');
    const size_t depth = indent / 2;
    std::istringstream fields(line);
    std::string name;
    fields >> name;
    stack.resize(depth);
    stack.push_back(name);
    std::string path;
    for (const std::string& s : stack) {
      if (!path.empty()) path += "/";
      path += s;
    }
    paths.push_back(path);
  }
  return paths;
}

/// Microsecond reading of one top-level or nested phase line.
uint64_t PhaseUs(const std::string& rendered, const std::string& phase) {
  std::istringstream in(rendered);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string name;
    uint64_t us = 0;
    if ((fields >> name >> us) && name == phase) return us;
  }
  return 0;
}

std::unique_ptr<Prima> OpenDb(PrimaOptions options = {}) {
  auto db = Prima::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return db.ok() ? std::move(*db) : nullptr;
}

void LoadItems(Session* session, int n) {
  auto ddl = session->Execute(
      "CREATE ATOM_TYPE item (item_id: IDENTIFIER, num: INTEGER, "
      "name: CHAR_VAR) KEYS_ARE (num)");
  ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
  for (int i = 1; i <= n; ++i) {
    auto r = session->Execute("INSERT item (num = " + std::to_string(i) +
                              ", name = 'i" + std::to_string(i) + "')");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST(ExplainAnalyzeTest, EqKeySelectReportsDistinctPhases) {
  auto db = OpenDb();
  ASSERT_NE(db, nullptr);
  auto session = db->OpenSession();
  LoadItems(session.get(), 50);

  auto r = session->Execute(
      "EXPLAIN ANALYZE SELECT ALL FROM item WHERE num = 17");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->kind, ExecResult::Kind::kText);
  const std::string& text = r->text;

  const std::vector<std::string> paths = PhasePaths(text);
  const std::set<std::string> set(paths.begin(), paths.end());
  EXPECT_TRUE(set.count("parse")) << text;
  EXPECT_TRUE(set.count("plan")) << text;
  EXPECT_TRUE(set.count("execute/roots")) << text;
  EXPECT_TRUE(set.count("execute/assembly")) << text;
  EXPECT_TRUE(set.count("buffer")) << text;
  // EXPLAIN ANALYZE bypasses the statement cache, so parse and plan carry
  // real, non-zero time and the plan phase shows the cache miss.
  EXPECT_GT(PhaseUs(text, "parse"), 0u) << text;
  EXPECT_NE(text.find("[cache_miss=1]"), std::string::npos) << text;
  EXPECT_NE(text.find("[hits="), std::string::npos) << text;
  EXPECT_NE(text.find("molecule(s)"), std::string::npos) << text;
}

TEST(ExplainAnalyzeTest, SerialAndPipelinedRunTheSamePhases) {
  // Two kernels over the same data, one with serial cursor assembly, one
  // pipelined over 4 workers. The span trees must show the SAME phase set —
  // the pipeline changes where time is spent, never what the phases are.
  std::set<std::string> phase_sets[2];
  std::string texts[2];
  int i = 0;
  for (const size_t assembly_threads : {size_t{1}, size_t{4}}) {
    PrimaOptions options;
    options.cursor_assembly_threads = assembly_threads;
    auto db = OpenDb(options);
  ASSERT_NE(db, nullptr);
    auto session = db->OpenSession();
    LoadItems(session.get(), 120);
    auto r = session->Execute("EXPLAIN ANALYZE SELECT ALL FROM item");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->kind, ExecResult::Kind::kText);
    const std::vector<std::string> paths = PhasePaths(r->text);
    phase_sets[i] = std::set<std::string>(paths.begin(), paths.end());
    texts[i] = r->text;
    ++i;
  }
  EXPECT_EQ(phase_sets[0], phase_sets[1])
      << "serial:\n" << texts[0] << "\npipelined:\n" << texts[1];
  EXPECT_TRUE(phase_sets[0].count("execute/assembly"));
  EXPECT_TRUE(phase_sets[0].count("execute/project"));
  // The pipelined tree additionally accounts the workers' busy time as a
  // counter on the same assembly phase.
  EXPECT_NE(texts[1].find("[worker_busy_us="), std::string::npos) << texts[1];
  // 120-item scans spend real time assembling on both paths.
  EXPECT_GT(PhaseUs(texts[0], "assembly"), 0u) << texts[0];
}

TEST(ExplainAnalyzeTest, NeverCachedAndRefusedWhereItCannotTrace) {
  auto db = OpenDb();
  ASSERT_NE(db, nullptr);
  auto session = db->OpenSession();
  LoadItems(session.get(), 5);

  // Repeated EXPLAIN ANALYZE must re-parse every time (a cache hit would
  // blank the parse/plan phases).
  for (int i = 0; i < 3; ++i) {
    auto r = session->Execute(
        "EXPLAIN ANALYZE SELECT ALL FROM item WHERE num = 2");
    ASSERT_TRUE(r.ok());
    EXPECT_NE(r->text.find("[cache_miss=1]"), std::string::npos) << r->text;
  }

  EXPECT_FALSE(session->Execute("EXPLAIN ANALYZE BEGIN WORK").ok());
  EXPECT_FALSE(
      session->Execute("EXPLAIN ANALYZE SELECT ALL FROM item WHERE num = ?")
          .ok());
  EXPECT_FALSE(session->Query("EXPLAIN ANALYZE SELECT ALL FROM item").ok());
  EXPECT_FALSE(
      session->Prepare("EXPLAIN ANALYZE SELECT ALL FROM item").ok());

  // DML traces too: the commit phase shows the WAL force wait.
  auto ins = session->Execute("EXPLAIN ANALYZE INSERT item (num = 99, "
                              "name = 'x')");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_NE(ins->text.find("commit"), std::string::npos) << ins->text;
  EXPECT_NE(ins->text.find("inserted"), std::string::npos) << ins->text;
}

// ---------------------------------------------------------------------------
// Production tracing knobs
// ---------------------------------------------------------------------------

TEST(TelemetryTest, SlowQueryRingCapturesAndEvicts) {
  PrimaOptions options;
  options.slow_statement_us = 1;  // everything is "slow"
  options.slow_log_capacity = 2;
  auto db = OpenDb(options);
  ASSERT_NE(db, nullptr);
  auto session = db->OpenSession();
  LoadItems(session.get(), 10);

  auto s1 = session->Execute("SELECT ALL FROM item WHERE num = 1");
  auto s2 = session->Execute("SELECT ALL FROM item WHERE num = 2");
  auto s3 = session->Execute("SELECT ALL FROM item WHERE num = 3");
  ASSERT_TRUE(s1.ok() && s2.ok() && s3.ok());

  const auto slow = db->slow_statements();
  ASSERT_EQ(slow.size(), 2u);  // capacity bound held, oldest evicted
  EXPECT_EQ(slow[1].text, "SELECT ALL FROM item WHERE num = 3");
  EXPECT_NE(slow[1].trace.find("parse"), std::string::npos);
  EXPECT_GE(db->stats().slow_statements, 3u);
  // Arming the slow-query knob traces every statement.
  EXPECT_GT(db->stats().traced_statements, 0u);
}

TEST(TelemetryTest, SamplingTracesEveryNthStatement) {
  PrimaOptions options;
  options.trace_sample_n = 2;
  auto db = OpenDb(options);
  ASSERT_NE(db, nullptr);
  auto session = db->OpenSession();
  LoadItems(session.get(), 4);
  const uint64_t traced = db->stats().traced_statements;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(session->Execute("SELECT ALL FROM item WHERE num = 1").ok());
  }
  const uint64_t delta = db->stats().traced_statements - traced;
  EXPECT_GE(delta, 4u);
  EXPECT_LE(delta, 6u);
}

TEST(TelemetryTest, StatsSnapshotIsCoherentAcrossLayers) {
  auto db = OpenDb();
  ASSERT_NE(db, nullptr);
  auto session = db->OpenSession();
  LoadItems(session.get(), 30);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(session->Execute("SELECT ALL FROM item").ok());
  }
  const auto snap = db->stats();
  EXPECT_GT(snap.statement_us.count, 0u);  // every statement recorded
  EXPECT_GT(snap.data.queries, 0u);
  EXPECT_GT(snap.data.molecules_built, 0u);
  EXPECT_GT(snap.access.atoms_inserted, 0u);
  EXPECT_GT(snap.buffer.hits + snap.buffer.misses, 0u);
  EXPECT_GT(snap.wal.records_appended, 0u);
  EXPECT_EQ(snap.net.connections_accepted, 0u);  // no server running

  const std::string page = db->MetricsText();
  EXPECT_NE(page.find("prima_statement_us"), std::string::npos);
  EXPECT_NE(page.find("prima_buffer_hits"), std::string::npos);
  EXPECT_NE(page.find("prima_atoms_inserted"), std::string::npos);
  EXPECT_NE(page.find("prima_wal_records_appended"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency storm (the TSan CI filter: ObsTest.Concurrent*)
// ---------------------------------------------------------------------------

TEST(ObsTest, ConcurrentCursorsVersusSnapshots) {
  PrimaOptions options;
  options.cursor_assembly_threads = 4;  // pipelined: workers hit the trace
  options.trace_sample_n = 1;           // every statement carries a trace
  auto db = OpenDb(options);
  ASSERT_NE(db, nullptr);
  {
    auto setup = db->OpenSession();
    LoadItems(setup.get(), 60);
  }

  constexpr int kThreads = 4;
  constexpr int kIterations = 25;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> statements{0};

  // One thread polls every observable surface while the others execute.
  std::thread observer([&] {
    uint64_t last_count = 0;
    while (!stop.load()) {
      const auto snap = db->stats();
      EXPECT_GE(snap.statement_us.count, last_count);  // monotone, never torn
      last_count = snap.statement_us.count;
      const std::string page = db->MetricsText();
      EXPECT_FALSE(page.empty());
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&db, &statements, t] {
      auto session = db->OpenSession();
      for (int i = 0; i < kIterations; ++i) {
        const int num = 1 + (t * kIterations + i) % 60;
        auto r = session->Execute("SELECT ALL FROM item WHERE num = " +
                                  std::to_string(num));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        statements.fetch_add(1);
        auto scan = session->Execute("EXPLAIN ANALYZE SELECT ALL FROM item");
        ASSERT_TRUE(scan.ok()) << scan.status().ToString();
        statements.fetch_add(1);
      }
    });
  }
  for (auto& th : workers) th.join();
  stop.store(true);
  observer.join();

  const auto snap = db->stats();
  // Every worker statement landed in the latency histogram (setup DDL/DML
  // recorded on top of the workers' count).
  EXPECT_GE(snap.statement_us.count, kThreads * kIterations * 2u);
  EXPECT_GE(snap.traced_statements, kThreads * kIterations * 2u);
}

}  // namespace
}  // namespace prima::obs
