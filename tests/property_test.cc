#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/prima.h"
#include "util/random.h"
#include "workloads/brep.h"

namespace prima::core {
namespace {

using access::AttrValue;
using access::Tid;
using access::Value;

/// Property: the MAD symmetry invariant. After ANY sequence of inserts,
/// connects, disconnects, modifies, and deletes, every association is
/// mutually inverse: x in y.sub <=> y in x.super, and comp.part = p <=>
/// comp in p.comps (paper §2.1: back-references usable "in exactly the
/// same way").
class SymmetryPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SymmetryPropertyTest, RandomMutationsPreserveSymmetry) {
  auto db_or = Prima::Open({});
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(*db_or);
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  access::AccessSystem& access = db->access();
  const auto* solid = access.catalog().FindAtomType("solid");
  const uint16_t kNo = 1, kSub = 3, kSuper = 4;

  util::Random rng(GetParam());
  std::vector<Tid> live;
  int64_t next_no = 1;

  for (int op = 0; op < 400; ++op) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 35 || live.size() < 2) {
      auto tid = access.InsertAtom(
          solid->id, {AttrValue{kNo, Value::Int(next_no++)}});
      ASSERT_TRUE(tid.ok());
      live.push_back(*tid);
    } else if (dice < 60) {
      const Tid a = live[rng.Uniform(live.size())];
      const Tid b = live[rng.Uniform(live.size())];
      if (a == b) continue;
      auto st = access.Connect(a, kSub, b);
      ASSERT_TRUE(st.ok() || st.IsConstraint()) << st.ToString();
    } else if (dice < 75) {
      const Tid a = live[rng.Uniform(live.size())];
      auto atom = access.GetAtom(a);
      ASSERT_TRUE(atom.ok());
      if (atom->attrs[kSub].kind() == Value::Kind::kList &&
          !atom->attrs[kSub].elems().empty()) {
        const Tid b = atom->attrs[kSub].elems()[0].AsTid();
        ASSERT_TRUE(access.Disconnect(a, kSub, b).ok());
      }
    } else if (dice < 90) {
      const Tid a = live[rng.Uniform(live.size())];
      ASSERT_TRUE(access
                      .ModifyAtom(a, {AttrValue{2, Value::String(
                                                     "d" + std::to_string(op))}})
                      .ok());
    } else {
      const size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(access.DeleteAtom(live[idx]).ok());
      live.erase(live.begin() + idx);
    }
  }

  // Verify the symmetry invariant over the whole database.
  std::map<uint64_t, access::Atom> atoms;
  for (const Tid& t : access.AllAtoms(solid->id)) {
    auto atom = access.GetAtom(t);
    ASSERT_TRUE(atom.ok());
    atoms[t.Pack()] = std::move(*atom);
  }
  EXPECT_EQ(atoms.size(), live.size());
  for (const auto& [packed, atom] : atoms) {
    const Tid self = Tid::Unpack(packed);
    if (atom.attrs[kSub].kind() == Value::Kind::kList) {
      for (const Value& ref : atom.attrs[kSub].elems()) {
        auto it = atoms.find(ref.AsTid().Pack());
        ASSERT_NE(it, atoms.end()) << "dangling sub reference";
        EXPECT_TRUE(it->second.attrs[kSuper].Contains(Value::Ref(self)))
            << "asymmetric: " << self.ToString() << ".sub contains "
            << ref.AsTid().ToString() << " but not vice versa";
      }
    }
    if (atom.attrs[kSuper].kind() == Value::Kind::kList) {
      for (const Value& ref : atom.attrs[kSuper].elems()) {
        auto it = atoms.find(ref.AsTid().Pack());
        ASSERT_NE(it, atoms.end()) << "dangling super reference";
        EXPECT_TRUE(it->second.attrs[kSub].Contains(Value::Ref(self)));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetryPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

/// Property: redundant structures converge to the base state after any
/// mutation sequence plus a drain — sort orders list exactly the live
/// atoms, partitions serve exactly the base values.
class RedundancyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RedundancyPropertyTest, StructuresConvergeAfterDrain) {
  auto db_or = Prima::Open({});
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(*db_or);
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->ExecuteLdl("CREATE SORT ORDER so ON solid (solid_no)").ok());
  ASSERT_TRUE(
      db->ExecuteLdl("CREATE PARTITION pd ON solid (description)").ok());
  access::AccessSystem& access = db->access();
  const auto* solid = access.catalog().FindAtomType("solid");

  util::Random rng(GetParam());
  std::map<int64_t, Tid> model;  // solid_no -> tid
  int64_t next_no = 1;
  for (int op = 0; op < 300; ++op) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 45 || model.empty()) {
      auto tid = access.InsertAtom(
          solid->id, {AttrValue{1, Value::Int(next_no)},
                      AttrValue{2, Value::String("v0")}});
      ASSERT_TRUE(tid.ok());
      model[next_no] = *tid;
      ++next_no;
    } else if (dice < 70) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      // Change the sort key itself (the hard case for deferred updates).
      const int64_t new_no = next_no++;
      ASSERT_TRUE(access
                      .ModifyAtom(it->second,
                                  {AttrValue{1, Value::Int(new_no)},
                                   AttrValue{2, Value::String(
                                                  "v" + std::to_string(op))}})
                      .ok());
      model[new_no] = it->second;
      model.erase(it);
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(access.DeleteAtom(it->second).ok());
      model.erase(it);
    }
  }
  ASSERT_TRUE(access.DrainAll().ok());

  // Sort order: exactly the model's keys in ascending order.
  access::BTree* tree =
      access.BTreeFor(access.catalog().FindStructure("so")->id);
  auto it = tree->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  auto expect = model.begin();
  size_t n = 0;
  while (it.Valid()) {
    ASSERT_NE(expect, model.end());
    util::Slice bytes(it.value());
    auto atom = access.DecodeAtom(solid->id, bytes);
    ASSERT_TRUE(atom.ok());
    EXPECT_EQ(atom->attrs[1].AsInt(), expect->first);
    EXPECT_EQ(atom->tid, expect->second);
    ++n;
    ++expect;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(n, model.size());

  // Partition: serves current description for every live atom.
  for (const auto& [no, tid] : model) {
    auto base = access.GetAtom(tid);
    ASSERT_TRUE(base.ok());
    auto via_partition = access.GetAtom(tid, {2});
    ASSERT_TRUE(via_partition.ok());
    EXPECT_TRUE(via_partition->attrs[2].Equals(base->attrs[2]));
  }
  EXPECT_GT(access.stats().partition_reads.load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedundancyPropertyTest,
                         ::testing::Values(7, 77, 777));

/// Property: key access paths answer exactly like a full scan under random
/// mutations (the implicit KEYS_ARE index never goes stale).
class KeyIndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyIndexPropertyTest, KeyLookupMatchesScan) {
  auto db_or = Prima::Open({});
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(*db_or);
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  access::AccessSystem& access = db->access();
  const auto* solid = access.catalog().FindAtomType("solid");

  util::Random rng(GetParam());
  std::set<int64_t> keys;
  for (int op = 0; op < 250; ++op) {
    const int64_t no = rng.Range(1, 60);
    if (rng.Bernoulli(0.6)) {
      auto tid = access.InsertAtom(solid->id, {AttrValue{1, Value::Int(no)}});
      if (keys.count(no) != 0) {
        EXPECT_TRUE(tid.status().IsConstraint());
      } else {
        ASSERT_TRUE(tid.ok());
        keys.insert(no);
      }
    } else if (!keys.empty()) {
      auto set = db->Query("SELECT ALL FROM solid WHERE solid_no = " +
                           std::to_string(no));
      ASSERT_TRUE(set.ok());
      if (set->size() == 1) {
        const Tid tid = set->molecules[0].groups[0].atoms[0].tid;
        ASSERT_TRUE(access.DeleteAtom(tid).ok());
        keys.erase(no);
      }
    }
  }
  // Every key lookup agrees with membership in the model.
  for (int64_t no = 1; no <= 60; ++no) {
    auto set = db->Query("SELECT ALL FROM solid WHERE solid_no = " +
                         std::to_string(no));
    ASSERT_TRUE(set.ok());
    EXPECT_EQ(set->size(), keys.count(no)) << "solid_no " << no;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyIndexPropertyTest,
                         ::testing::Values(5, 50, 500));

}  // namespace
}  // namespace prima::core
