// Network server tests: framed-protocol codecs, handshake versioning,
// protocol robustness (malformed / truncated / oversized frames, mid-frame
// disconnects, double-closed ids), remote transactions and cursors with
// results byte-equal to in-process execution, the wedged-ring gauge on the
// wire, the shared statement cache, and a kill-the-server-mid-commit-storm
// crash drive proving acknowledged remote commits survive process death.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/prima.h"
#include "net/client.h"
#include "net/server.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace prima::net {
namespace {

using access::Value;
using core::Prima;
using core::PrimaOptions;
using util::Slice;
using util::Status;

std::unique_ptr<Prima> OpenServerDb(PrimaOptions options = {}) {
  options.listen_port = 0;
  auto db = Prima::Open(std::move(options));
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return db.ok() ? std::move(*db) : nullptr;
}

std::unique_ptr<Client> ConnectTo(const Prima& db) {
  auto client = Client::Connect(
      "127.0.0.1", const_cast<Prima&>(db).net_server()->port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return client.ok() ? std::move(*client) : nullptr;
}

void CreateItemType(Client* client) {
  auto r = client->Execute(
      "CREATE ATOM_TYPE item (item_id: IDENTIFIER, num: INTEGER, "
      "name: CHAR_VAR) KEYS_ARE (num)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

Status InsertItem(Client* client, int64_t num) {
  return client
      ->Execute("INSERT item (num = " + std::to_string(num) + ", name = 'n" +
                std::to_string(num) + "')")
      .status();
}

// --- raw-socket helpers (protocol robustness tests speak bytes) -----------

int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  return fd;
}

void SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer already closed - fine for these tests
    sent += static_cast<size_t>(n);
  }
}

std::string BuildFrame(MsgKind kind, const std::string& payload) {
  std::string body;
  body.push_back(static_cast<char>(kind));
  body.append(payload);
  std::string frame;
  util::PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(body);
  util::PutFixed32(&frame, util::Crc32(body));
  return frame;
}

std::string HelloPayload(uint32_t magic = kHandshakeMagic,
                         uint32_t version = kProtocolVersion) {
  std::string p;
  util::PutFixed32(&p, magic);
  util::PutFixed32(&p, version);
  return p;
}

/// Read one frame off a raw socket (no limit checks - test side).
bool RawReadFrame(int fd, Frame* out) {
  return ReadFrame(fd, kMaxReplyFrame, out).ok();
}

// --- codec round trips -----------------------------------------------------

TEST(NetProtocolTest, StatusRoundTrip) {
  const Status cases[] = {
      Status::Ok(),
      Status::NotFound("x"),
      Status::InvalidArgument("bad arg"),
      Status::Corruption("torn"),
      Status::NoSpace("full"),
      Status::Conflict("locked"),
      Status::ParseError("near 'FROM'"),
      Status::Aborted("rolled back"),
  };
  for (const Status& st : cases) {
    std::string wire;
    EncodeStatus(st, &wire);
    Slice in(wire);
    const Status back = DecodeStatus(&in);
    EXPECT_EQ(back.code(), st.code());
    EXPECT_EQ(back.message(), st.message());
  }
  // An unknown code byte must never decode as success.
  std::string wire;
  wire.push_back(static_cast<char>(0xEE));
  util::PutLengthPrefixed(&wire, "future error");
  Slice in(wire);
  EXPECT_TRUE(DecodeStatus(&in).IsIoError());
}

TEST(NetProtocolTest, ServerStatsRoundTripAndEvolution) {
  ServerStats s;
  s.connections_accepted = 7;
  s.statements_executed = 1234;
  s.molecules_streamed = 99;
  s.stmt_cache_hits = 5;
  s.wal_live_bytes = 1 << 20;
  s.wal_capacity_bytes = 4 << 20;
  s.active_txns = 3;
  s.oldest_active_lsn = 0xDEADBEEF;
  s.stmt_latency_p50_us = 120;
  s.stmt_latency_p95_us = 800;
  s.stmt_latency_p99_us = 2500;
  s.slow_statements = 4;
  s.traced_statements = 17;
  s.net_request_p99_us = 3100;
  std::string wire;
  EncodeServerStats(s, &wire);
  {
    Slice in(wire);
    auto back = DecodeServerStats(&in);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->connections_accepted, 7u);
    EXPECT_EQ(back->statements_executed, 1234u);
    EXPECT_EQ(back->active_txns, 3u);
    EXPECT_EQ(back->oldest_active_lsn, 0xDEADBEEFu);
    EXPECT_EQ(back->stmt_latency_p50_us, 120u);
    EXPECT_EQ(back->stmt_latency_p95_us, 800u);
    EXPECT_EQ(back->stmt_latency_p99_us, 2500u);
    EXPECT_EQ(back->slow_statements, 4u);
    EXPECT_EQ(back->traced_statements, 17u);
    EXPECT_EQ(back->net_request_p99_us, 3100u);
  }
  // A payload from an older peer (fewer fields) zero-fills the tail; a
  // newer peer's extra fields are skipped.
  std::string old_wire;
  util::PutVarint64(&old_wire, 2);
  util::PutVarint64(&old_wire, 11);
  util::PutVarint64(&old_wire, 22);
  Slice in(old_wire);
  auto back = DecodeServerStats(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->connections_accepted, 11u);
  EXPECT_EQ(back->connections_active, 22u);
  EXPECT_EQ(back->oldest_active_lsn, 0u);
}

TEST(NetProtocolTest, ServerStatsFromPreTelemetryPeerZeroFillsDigest) {
  // A 17-field payload is exactly what a peer built before the telemetry
  // digest (fields 18-23) shipped: every pre-existing field decodes, every
  // telemetry field zero-fills.
  std::string old_wire;
  util::PutVarint64(&old_wire, 17);
  for (uint64_t f = 1; f <= 17; ++f) util::PutVarint64(&old_wire, f * 100);
  Slice in(old_wire);
  auto back = DecodeServerStats(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->connections_accepted, 100u);
  EXPECT_EQ(back->oldest_active_lsn, 1700u);  // field 17, the old tail
  EXPECT_EQ(back->stmt_latency_p50_us, 0u);
  EXPECT_EQ(back->stmt_latency_p95_us, 0u);
  EXPECT_EQ(back->stmt_latency_p99_us, 0u);
  EXPECT_EQ(back->slow_statements, 0u);
  EXPECT_EQ(back->traced_statements, 0u);
  EXPECT_EQ(back->net_request_p99_us, 0u);
}

TEST(NetProtocolTest, ServerStatsFromPreContentionPeerZeroFillsDigest) {
  // A 27-field payload is what a peer built before the contention digest
  // (fields 28-31) shipped: everything through the version-store block
  // decodes, the contention counters zero-fill.
  std::string old_wire;
  util::PutVarint64(&old_wire, 27);
  for (uint64_t f = 1; f <= 27; ++f) util::PutVarint64(&old_wire, f * 100);
  Slice in(old_wire);
  auto back = DecodeServerStats(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->connections_accepted, 100u);
  EXPECT_EQ(back->oldest_snapshot_lsn, 2700u);  // field 27, the old tail
  EXPECT_EQ(back->lock_conflicts, 0u);
  EXPECT_EQ(back->txns_committed, 0u);
  EXPECT_EQ(back->txns_aborted, 0u);
  EXPECT_EQ(back->txn_retries, 0u);
}

TEST(NetProtocolTest, TextExecResultRoundTrip) {
  mql::ExecResult r;
  r.kind = mql::ExecResult::Kind::kText;
  r.text = "EXPLAIN ANALYZE: 3 molecule(s)\ntotal 42 us (0 ms)\nparse ...";
  std::string wire;
  EncodeExecResult(r, &wire);
  Slice in(wire);
  auto back = DecodeExecResult(&in);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->kind, mql::ExecResult::Kind::kText);
  EXPECT_EQ(back->text, r.text);
}

TEST(NetProtocolTest, FramesOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "SELECT ALL FROM part";
  ASSERT_TRUE(WriteFrame(fds[0], MsgKind::kExecute, payload).ok());
  Frame frame;
  ASSERT_TRUE(ReadFrame(fds[1], kMaxRequestFrame, &frame).ok());
  EXPECT_EQ(frame.kind, MsgKind::kExecute);
  EXPECT_EQ(frame.payload, payload);

  // Flipped payload bit -> CRC mismatch -> Corruption.
  std::string raw = BuildFrame(MsgKind::kExecute, payload);
  raw[7] ^= 0x01;
  SendAll(fds[0], raw);
  EXPECT_TRUE(ReadFrame(fds[1], kMaxRequestFrame, &frame).IsCorruption());

  // Oversized length header is refused without reading the claimed body.
  std::string huge;
  util::PutFixed32(&huge, kMaxRequestFrame + 1);
  huge.push_back(static_cast<char>(MsgKind::kExecute));
  SendAll(fds[0], huge);
  EXPECT_TRUE(ReadFrame(fds[1], kMaxRequestFrame, &frame).IsInvalidArgument());
  ::close(fds[0]);
  ::close(fds[1]);

  // A peer vanishing mid-frame surfaces IoError, not a hang or garbage.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string partial = BuildFrame(MsgKind::kExecute, payload);
  partial.resize(partial.size() / 2);
  SendAll(fds[0], partial);
  ::close(fds[0]);
  EXPECT_TRUE(ReadFrame(fds[1], kMaxRequestFrame, &frame).IsIoError());
  ::close(fds[1]);
}

// --- server basics ---------------------------------------------------------

TEST(NetServerTest, ExecuteAndQueryOverTheWire) {
  auto db = OpenServerDb();
  ASSERT_NE(db, nullptr);
  auto client = ConnectTo(*db);
  ASSERT_NE(client, nullptr);
  CreateItemType(client.get());
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(InsertItem(client.get(), i).ok());
  }
  auto result = client->Execute("SELECT ALL FROM item WHERE num >= 4");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->molecules.size(), 7u);

  // Streaming cursor with a tiny batch size forces several fetch round
  // trips; the total must still be exact.
  auto cursor = client->OpenCursor("SELECT ALL FROM item", 3);
  ASSERT_TRUE(cursor.ok());
  size_t n = 0;
  for (;;) {
    auto m = cursor->Next();
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    if (!m->has_value()) break;
    ++n;
  }
  EXPECT_EQ(n, 10u);
  EXPECT_TRUE(cursor->Close().ok());
  EXPECT_TRUE(client->Close().ok());
}

TEST(NetServerTest, StaleProtocolVersionRefused) {
  auto db = OpenServerDb();
  ASSERT_NE(db, nullptr);
  const int fd = RawConnect(db->net_server()->port());
  SendAll(fd, BuildFrame(MsgKind::kHello, HelloPayload(kHandshakeMagic, 99)));
  Frame reply;
  ASSERT_TRUE(RawReadFrame(fd, &reply));
  ASSERT_EQ(reply.kind, MsgKind::kError);
  Slice in(reply.payload);
  EXPECT_TRUE(DecodeStatus(&in).IsNotSupported());
  ::close(fd);
}

TEST(NetServerTest, MalformedFramesDoNotKillTheServer) {
  auto db = OpenServerDb();
  ASSERT_NE(db, nullptr);
  const uint16_t port = db->net_server()->port();

  {  // wrong magic
    const int fd = RawConnect(port);
    SendAll(fd, BuildFrame(MsgKind::kHello, HelloPayload(0x12345678)));
    Frame reply;
    ASSERT_TRUE(RawReadFrame(fd, &reply));
    EXPECT_EQ(reply.kind, MsgKind::kError);
    ::close(fd);
  }
  {  // raw garbage: a length header claiming an over-limit frame
    const int fd = RawConnect(port);
    SendAll(fd, std::string(64, '\xFF'));
    Frame reply;
    (void)RawReadFrame(fd, &reply);  // error frame or straight close - both fine
    ::close(fd);
  }
  {  // corrupted CRC after a clean handshake
    const int fd = RawConnect(port);
    SendAll(fd, BuildFrame(MsgKind::kHello, HelloPayload()));
    Frame reply;
    ASSERT_TRUE(RawReadFrame(fd, &reply));
    ASSERT_EQ(reply.kind, MsgKind::kHelloOk);
    std::string bad = BuildFrame(MsgKind::kExecute, "SELECT ALL FROM item");
    bad[bad.size() - 1] ^= 0x55;
    SendAll(fd, bad);
    ASSERT_TRUE(RawReadFrame(fd, &reply));
    ASSERT_EQ(reply.kind, MsgKind::kError);
    Slice in(reply.payload);
    EXPECT_TRUE(DecodeStatus(&in).IsCorruption());
    ::close(fd);
  }
  {  // mid-frame disconnect
    const int fd = RawConnect(port);
    std::string partial = BuildFrame(MsgKind::kHello, HelloPayload());
    partial.resize(6);
    SendAll(fd, partial);
    ::close(fd);
  }
  {  // unknown request kind after a clean handshake
    const int fd = RawConnect(port);
    SendAll(fd, BuildFrame(MsgKind::kHello, HelloPayload()));
    Frame reply;
    ASSERT_TRUE(RawReadFrame(fd, &reply));
    SendAll(fd, BuildFrame(static_cast<MsgKind>(42), "???"));
    ASSERT_TRUE(RawReadFrame(fd, &reply));
    EXPECT_EQ(reply.kind, MsgKind::kError);
    ::close(fd);
  }

  // After all that abuse the server still serves clean clients, and no
  // session leaked a connection slot (active connections drained to just
  // ours).
  auto client = ConnectTo(*db);
  ASSERT_NE(client, nullptr);
  CreateItemType(client.get());
  ASSERT_TRUE(InsertItem(client.get(), 1).ok());
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->connections_active, 1u);
}

TEST(NetServerTest, DoubleCloseRejectedCleanly) {
  auto db = OpenServerDb();
  ASSERT_NE(db, nullptr);
  auto client = ConnectTo(*db);
  ASSERT_NE(client, nullptr);
  CreateItemType(client.get());
  ASSERT_TRUE(InsertItem(client.get(), 1).ok());

  auto stmt = client->Prepare("SELECT ALL FROM item WHERE num = ?");
  ASSERT_TRUE(stmt.ok());
  auto cursor = client->OpenCursor("SELECT ALL FROM item");
  ASSERT_TRUE(cursor.ok());

  EXPECT_TRUE(cursor->Close().ok());
  EXPECT_TRUE(cursor->Close().IsNotFound());  // stale id, clean refusal
  EXPECT_TRUE(stmt->Close().ok());
  EXPECT_TRUE(stmt->Close().IsNotFound());

  // The connection survived both refusals.
  auto result = client->Execute("SELECT ALL FROM item");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->molecules.size(), 1u);
}

TEST(NetServerTest, ConnectionLimitRefusesTheOverflow) {
  PrimaOptions options;
  options.net_max_connections = 2;
  auto db = OpenServerDb(options);
  ASSERT_NE(db, nullptr);
  auto c1 = ConnectTo(*db);
  auto c2 = ConnectTo(*db);
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  // Make sure both connections are established server-side before the
  // third tries its luck.
  auto stats = c1->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->connections_active, 2u);

  auto c3 = Client::Connect("127.0.0.1", db->net_server()->port());
  EXPECT_FALSE(c3.ok());
  EXPECT_TRUE(c3.status().IsNoSpace()) << c3.status().ToString();

  // Dropping one admits the next.
  ASSERT_TRUE(c2->Close().ok());
  for (int i = 0; i < 100; ++i) {  // reap is lazy; poll briefly
    c3 = Client::Connect("127.0.0.1", db->net_server()->port());
    if (c3.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(c3.ok()) << c3.status().ToString();
}

TEST(NetServerTest, IdleConnectionsAreClosed) {
  PrimaOptions options;
  options.net_idle_timeout_ms = 100;
  auto db = OpenServerDb(options);
  ASSERT_NE(db, nullptr);
  auto idle = ConnectTo(*db);
  ASSERT_NE(idle, nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // The server told us (or simply closed); either way the next call fails
  // and the server counted an idle close.
  EXPECT_FALSE(idle->Execute("SELECT ALL FROM item").ok());
  EXPECT_GE(db->net_server()->Stats().idle_closes, 1u);
}

// --- transactions & cursors over the wire ---------------------------------

TEST(NetServerTest, RemoteTransactionsCommitAndRollBack) {
  auto db = OpenServerDb();
  ASSERT_NE(db, nullptr);
  auto client = ConnectTo(*db);
  ASSERT_NE(client, nullptr);
  CreateItemType(client.get());

  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(InsertItem(client.get(), 1).ok());
  ASSERT_TRUE(InsertItem(client.get(), 2).ok());
  ASSERT_TRUE(client->Abort().ok());
  auto after_abort = client->Execute("SELECT ALL FROM item");
  ASSERT_TRUE(after_abort.ok());
  EXPECT_EQ(after_abort->molecules.size(), 0u);

  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(InsertItem(client.get(), 3).ok());
  ASSERT_TRUE(client->Commit().ok());
  auto after_commit = client->Execute("SELECT ALL FROM item");
  ASSERT_TRUE(after_commit.ok());
  EXPECT_EQ(after_commit->molecules.size(), 1u);

  // Transaction state is per-connection, and a remote reader sees exactly
  // what a local session would: readers stream current (including
  // uncommitted) state, so the second connection observes the first's
  // open insert — and keeps the row only if that transaction commits.
  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(InsertItem(client.get(), 4).ok());
  auto other = ConnectTo(*db);
  ASSERT_NE(other, nullptr);
  auto local = db->OpenSession()->Execute("SELECT ALL FROM item");
  ASSERT_TRUE(local.ok());
  auto other_view = other->Execute("SELECT ALL FROM item");
  ASSERT_TRUE(other_view.ok());
  EXPECT_EQ(other_view->molecules.size(), local->molecules.size());
  ASSERT_TRUE(client->Commit().ok());
}

TEST(NetServerTest, AbortInvalidatesRemoteCursors) {
  auto db = OpenServerDb();
  ASSERT_NE(db, nullptr);
  auto client = ConnectTo(*db);
  ASSERT_NE(client, nullptr);
  CreateItemType(client.get());
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(InsertItem(client.get(), i).ok());
  }
  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(InsertItem(client.get(), 7).ok());
  auto cursor = client->OpenCursor("SELECT ALL FROM item", 2);
  ASSERT_TRUE(cursor.ok());
  auto first = cursor->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  ASSERT_TRUE(client->Abort().ok());
  // The rollback pulled state the cursor would stream; the next fetch
  // that reaches the server reports Aborted, exactly like a local cursor.
  Status st = Status::Ok();
  for (int i = 0; i < 8 && st.ok(); ++i) {
    auto m = cursor->Next();
    st = m.status();
    if (st.ok() && !m->has_value()) break;
  }
  EXPECT_TRUE(st.IsAborted()) << st.ToString();
}

TEST(NetServerTest, PreparedStatementsOverTheWire) {
  auto db = OpenServerDb();
  ASSERT_NE(db, nullptr);
  auto client = ConnectTo(*db);
  ASSERT_NE(client, nullptr);
  CreateItemType(client.get());

  auto insert = client->Prepare("INSERT item (num = ?, name = :label)");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_EQ(insert->param_count(), 2u);
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(insert->Bind(0, Value::Int(i)).ok());
    ASSERT_TRUE(insert->Bind("label", Value::String("n" + std::to_string(i)))
                    .ok());
    auto r = insert->Execute();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  auto select = client->Prepare("SELECT ALL FROM item WHERE num >= ?");
  ASSERT_TRUE(select.ok());
  ASSERT_TRUE(select->Bind(0, Value::Int(15)).ok());
  auto cursor = select->Query(4);
  ASSERT_TRUE(cursor.ok());
  size_t n = 0;
  for (;;) {
    auto m = cursor->Next();
    ASSERT_TRUE(m.ok());
    if (!m->has_value()) break;
    ++n;
  }
  EXPECT_EQ(n, 6u);

  // Binding an out-of-range slot / unknown name errors without killing
  // the statement.
  EXPECT_FALSE(select->Bind(9, Value::Int(1)).ok());
  EXPECT_FALSE(select->Bind("nope", Value::Int(1)).ok());
  ASSERT_TRUE(select->Bind(0, Value::Int(20)).ok());
  auto r = select->Execute();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->molecules.size(), 1u);
}

// --- stats & statement cache -----------------------------------------------

TEST(NetServerTest, StatsServeTheWedgedRingGauge) {
  PrimaOptions options;
  options.wal_max_bytes = 256u << 10;
  auto db = OpenServerDb(options);
  ASSERT_NE(db, nullptr);
  auto client = ConnectTo(*db);
  ASSERT_NE(client, nullptr);
  CreateItemType(client.get());
  ASSERT_TRUE(InsertItem(client.get(), 1).ok());

  // Hold a transaction open on a second connection: the gauge must show it
  // as an active transaction pinning an undo floor.
  auto pinner = ConnectTo(*db);
  ASSERT_NE(pinner, nullptr);
  ASSERT_TRUE(pinner->Begin().ok());
  ASSERT_TRUE(InsertItem(pinner.get(), 2).ok());

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(stats->connections_accepted, 2u);
  EXPECT_EQ(stats->connections_active, 2u);
  EXPECT_GE(stats->statements_executed, 2u);
  // The ring's usable capacity (master record & alignment come off the
  // configured cap).
  EXPECT_GT(stats->wal_capacity_bytes, 0u);
  EXPECT_LE(stats->wal_capacity_bytes, 256u << 10);
  EXPECT_GT(stats->wal_live_bytes, 0u);
  EXPECT_GE(stats->active_txns, 1u);
  EXPECT_GT(stats->oldest_active_lsn, 0u);
  ASSERT_TRUE(pinner->Commit().ok());

  auto after = client->Stats();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->active_txns, 0u);
}

TEST(NetServerTest, SharedStatementCacheServesRepeatedExecutes) {
  auto db = OpenServerDb();
  ASSERT_NE(db, nullptr);
  auto client = ConnectTo(*db);
  ASSERT_NE(client, nullptr);
  CreateItemType(client.get());
  ASSERT_TRUE(InsertItem(client.get(), 1).ok());

  const std::string query = "SELECT ALL FROM item WHERE num >= 1";
  ASSERT_TRUE(client->Execute(query).ok());
  auto before = client->Stats();
  ASSERT_TRUE(before.ok());

  // The same text from a DIFFERENT connection (different session) hits the
  // shared cache: one-shot Execute gets the prepared fast path.
  auto other = ConnectTo(*db);
  ASSERT_NE(other, nullptr);
  for (int i = 0; i < 5; ++i) {
    auto r = other->Execute(query);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->molecules.size(), 1u);
  }
  auto after = client->Stats();
  ASSERT_TRUE(after.ok());
  EXPECT_GE(after->stmt_cache_hits, before->stmt_cache_hits + 5);

  // DDL bumps the schema version; the stale entry must recompile, not
  // serve a plan over a dropped world.
  ASSERT_TRUE(client
                  ->Execute("CREATE ATOM_TYPE other (other_id: IDENTIFIER, "
                            "v: INTEGER)")
                  .ok());
  auto post_ddl = client->Execute(query);
  ASSERT_TRUE(post_ddl.ok());
  EXPECT_EQ(post_ddl->molecules.size(), 1u);
  auto final_stats = client->Stats();
  ASSERT_TRUE(final_stats.ok());
  EXPECT_GT(final_stats->stmt_cache_misses, before->stmt_cache_misses);
}

TEST(NetServerTest, ExplainAnalyzeAndMetricsOverTheWire) {
  auto db = OpenServerDb();
  ASSERT_NE(db, nullptr);
  auto client = ConnectTo(*db);
  ASSERT_NE(client, nullptr);
  CreateItemType(client.get());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(InsertItem(client.get(), i).ok());
  }

  // The span tree travels the wire as a kText result: same phases a local
  // session would report, rendered server-side.
  auto plan = client->Execute(
      "EXPLAIN ANALYZE SELECT ALL FROM item WHERE num = 7");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->kind, mql::ExecResult::Kind::kText);
  EXPECT_NE(plan->text.find("EXPLAIN ANALYZE: 1 molecule(s)"),
            std::string::npos)
      << plan->text;
  EXPECT_NE(plan->text.find("parse"), std::string::npos);
  EXPECT_NE(plan->text.find("plan"), std::string::npos);
  EXPECT_NE(plan->text.find("execute"), std::string::npos);

  // The metrics page round-trips through the kMetrics message.
  auto page = client->MetricsText();
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_NE(page->find("prima_statement_us"), std::string::npos);
  EXPECT_NE(page->find("prima_buffer_hits"), std::string::npos);
  EXPECT_NE(page->find("prima_net_connections_active"), std::string::npos);

  // The stats digest carries the statement-latency summary to old-style
  // Stats() consumers too.
  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->stmt_latency_p99_us, 0u);
  EXPECT_GE(stats->stmt_latency_p99_us, stats->stmt_latency_p50_us);
  EXPECT_GE(stats->traced_statements, 1u);  // the EXPLAIN ANALYZE above
}

// --- concurrency (the *Concurrent* filter runs under TSan in CI) ----------

TEST(NetServerTest, ConcurrentConnectionsByteEqualToInProcess) {
  constexpr int kClients = 64;
  constexpr int kRowsPerClient = 8;
  PrimaOptions options;
  options.net_max_connections = kClients + 8;
  auto db = OpenServerDb(options);
  ASSERT_NE(db, nullptr);
  {
    auto admin = ConnectTo(*db);
    ASSERT_NE(admin, nullptr);
    CreateItemType(admin.get());
  }

  // Phase 1: a storm of concurrent connections, each running an explicit
  // transaction of inserts into its own key range.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", db->net_server()->port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      if (!(*client)->Begin().ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kRowsPerClient; ++i) {
        if (!InsertItem(client->get(), t * 1000 + i).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
      if (!(*client)->Commit().ok()) failures.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failures.load(), 0);

  // Phase 2: every client's range, streamed over the wire, must be
  // byte-equal (wire encoding) to the same query run in-process.
  auto session = db->OpenSession();
  std::vector<std::thread> verifiers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kClients; ++t) {
    verifiers.emplace_back([&, t] {
      const std::string query =
          "SELECT ALL FROM item WHERE num >= " + std::to_string(t * 1000) +
          " AND num <= " + std::to_string(t * 1000 + kRowsPerClient - 1);
      auto client = Client::Connect("127.0.0.1", db->net_server()->port());
      if (!client.ok()) {
        mismatches.fetch_add(1);
        return;
      }
      auto cursor = (*client)->OpenCursor(query, 3);
      if (!cursor.ok()) {
        mismatches.fetch_add(1);
        return;
      }
      mql::MoleculeSet remote;
      for (;;) {
        auto m = cursor->Next();
        if (!m.ok()) {
          mismatches.fetch_add(1);
          return;
        }
        if (!m->has_value()) break;
        remote.molecules.push_back(std::move(**m));
      }
      if (remote.size() != static_cast<size_t>(kRowsPerClient)) {
        mismatches.fetch_add(1);
        return;
      }
      // In-process execution of the identical statement (own session: a
      // Session is a single-threaded context).
      auto local_session = db->OpenSession();
      auto local = local_session->Execute(query);
      if (!local.ok()) {
        mismatches.fetch_add(1);
        return;
      }
      std::string remote_wire, local_wire;
      EncodeMoleculeSet(remote, &remote_wire);
      EncodeMoleculeSet(local->molecules, &local_wire);
      if (remote_wire != local_wire) mismatches.fetch_add(1);
    });
  }
  for (auto& th : verifiers) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  auto admin = ConnectTo(*db);
  ASSERT_NE(admin, nullptr);
  auto total = admin->Execute("SELECT ALL FROM item");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->molecules.size(),
            static_cast<size_t>(kClients * kRowsPerClient));
}

TEST(NetServerTest, ConcurrentStatementStormWhileStopping) {
  // Drain-on-shutdown under fire: clients keep issuing statements while
  // the database (and its server) is torn down. Every client must see
  // either success or a clean connection error - never a hang or crash.
  PrimaOptions options;
  options.net_max_connections = 64;
  auto db = OpenServerDb(options);
  ASSERT_NE(db, nullptr);
  {
    auto admin = ConnectTo(*db);
    ASSERT_NE(admin, nullptr);
    CreateItemType(admin.get());
  }
  const uint16_t port = db->net_server()->port();
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&, t] {
      int seq = 0;
      while (!stop.load()) {
        auto client = Client::Connect("127.0.0.1", port);
        if (!client.ok()) break;
        while (!stop.load()) {
          if (!InsertItem(client->get(), t * 100000 + seq++).ok()) break;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  db->net_server()->Stop();  // drain: joins every connection thread
  stop.store(true);
  for (auto& th : threads) th.join();
  db.reset();  // full teardown after the drain - must not deadlock
}

// --- durability: kill the server mid-commit-storm --------------------------

TEST(NetServerTest, KilledServerLosesNoAcknowledgedCommits) {
  // A child process runs a file-backed database with the network server;
  // the parent storms it with remote auto-commit inserts over many
  // connections, records every acknowledged statement, and SIGKILLs the
  // child mid-storm. After restart recovery, every acknowledged insert
  // must be present: an ack means the commit record was forced to the log.
  char dir_template[] = "/tmp/prima_net_crash_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  const std::string port_file = dir + "/port";

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // --- child: serve until killed; no gtest here ---
    PrimaOptions options;
    options.in_memory = false;
    options.path = dir;
    options.listen_port = 0;
    options.net_max_connections = 64;
    auto db_or = Prima::Open(std::move(options));
    if (!db_or.ok()) ::_exit(10);
    auto child_db = std::move(*db_or);
    if (!child_db
             ->Execute(
                 "CREATE ATOM_TYPE item (item_id: IDENTIFIER, num: INTEGER, "
                 "name: CHAR_VAR) KEYS_ARE (num)")
             .ok()) {
      ::_exit(11);
    }
    // Checkpoint the DDL so the segment files are fully formed on disk;
    // everything after this point must survive on the strength of forced
    // commit records alone.
    if (!child_db->Flush().ok()) ::_exit(12);
    {
      std::ofstream out(port_file + ".tmp");
      out << child_db->net_server()->port();
    }
    std::rename((port_file + ".tmp").c_str(), port_file.c_str());
    for (;;) ::pause();  // serve until SIGKILL
  }

  // --- parent: wait for the port, then storm ---
  uint16_t port = 0;
  for (int i = 0; i < 1000 && port == 0; ++i) {
    std::ifstream in(port_file);
    int p = 0;
    if (in >> p && p > 0) {
      port = static_cast<uint16_t>(p);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_NE(port, 0) << "server child never published its port";

  constexpr int kStormThreads = 8;
  std::atomic<bool> stop{false};
  std::atomic<int> total_acked{0};
  std::vector<int> acked(kStormThreads, 0);  // per-thread high-water mark
  std::vector<std::thread> threads;
  for (int t = 0; t < kStormThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", port);
      if (!client.ok()) return;
      int seq = 0;
      while (!stop.load()) {
        // Auto-commit insert: the ack implies a forced commit record.
        if (!InsertItem(client->get(), t * 1000000 + seq).ok()) return;
        acked[t] = seq;  // this thread is the only writer of its slot
        ++seq;
        total_acked.fetch_add(1);
      }
    });
  }
  while (total_acked.load() < 200) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(::kill(pid, SIGKILL), 0);  // mid-storm, no shutdown of any kind
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  stop.store(true);
  for (auto& th : threads) th.join();
  ASSERT_GE(total_acked.load(), 200);

  // Restart recovery on the survivor files, then verify every ack.
  PrimaOptions reopen;
  reopen.in_memory = false;
  reopen.path = dir;
  auto db_or = Prima::Open(std::move(reopen));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(*db_or);
  auto all = db->Execute("SELECT ALL FROM item");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  std::set<int64_t> present;
  for (const auto& m : all->molecules.molecules) {
    ASSERT_FALSE(m.groups.empty());
    ASSERT_FALSE(m.groups[0].atoms.empty());
    present.insert(m.groups[0].atoms[0].attrs[1].AsInt());
  }
  size_t verified = 0;
  for (int t = 0; t < kStormThreads; ++t) {
    for (int seq = 0; seq <= acked[t]; ++seq) {
      EXPECT_TRUE(present.count(t * 1000000 + seq) == 1)
          << "acknowledged insert lost: thread " << t << " seq " << seq;
      ++verified;
    }
  }
  EXPECT_GE(verified, 200u);
}

TEST(NetServerTest, ShutdownRollsBackOpenRemoteTransactions) {
  // A clean Stop() (not a crash) drains connections: an open remote
  // transaction rolls back through its session destructor, logged, so the
  // reopened database has the committed rows and nothing else.
  char dir_template[] = "/tmp/prima_net_drain_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  {
    PrimaOptions options;
    options.in_memory = false;
    options.path = dir;
    options.listen_port = 0;
    auto db = OpenServerDb(options);
    ASSERT_NE(db, nullptr);
    auto client = ConnectTo(*db);
    ASSERT_NE(client, nullptr);
    CreateItemType(client.get());
    ASSERT_TRUE(InsertItem(client.get(), 1).ok());  // committed
    ASSERT_TRUE(client->Begin().ok());
    ASSERT_TRUE(InsertItem(client.get(), 2).ok());  // never committed
    db.reset();  // ~Prima stops the server first; the drain rolls back
  }
  PrimaOptions reopen;
  reopen.in_memory = false;
  reopen.path = dir;
  auto db_or = Prima::Open(std::move(reopen));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto all = (*db_or)->Execute("SELECT ALL FROM item");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->molecules.size(), 1u);
  EXPECT_EQ(all->molecules.molecules[0].groups[0].atoms[0].attrs[1].AsInt(),
            1);
}

// --- isolation on the wire -------------------------------------------------

/// Drain a remote cursor, returning every item's name attribute.
std::vector<std::string> DrainNames(RemoteCursor* cursor) {
  std::vector<std::string> names;
  for (;;) {
    auto m = cursor->Next();
    EXPECT_TRUE(m.ok()) << m.status().ToString();
    if (!m.ok() || !m->has_value()) break;
    names.push_back((*m)->groups[0].atoms[0].attrs[2].AsString());
  }
  return names;
}

TEST(NetServerTest, SnapshotCursorOverTheWireDrainsPreWriteState) {
  auto db = OpenServerDb();
  auto client = ConnectTo(*db);
  CreateItemType(client.get());
  for (int i = 1; i <= 6; ++i) ASSERT_TRUE(InsertItem(client.get(), i).ok());

  // Per-open override (kOpenCursor form 2): pinned before the writer lands.
  auto snap =
      client->OpenCursor("SELECT ALL FROM item", 2, Isolation::kSnapshot);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto writer = ConnectTo(*db);
  ASSERT_TRUE(writer->Execute("MODIFY item SET name = 'clobbered'").ok());

  const std::vector<std::string> old_names = DrainNames(&*snap);
  ASSERT_EQ(old_names.size(), 6u);
  for (const std::string& n : old_names) EXPECT_EQ(n[0], 'n') << n;

  // No override: latest-committed sees the new world.
  auto latest = client->OpenCursor("SELECT ALL FROM item");
  ASSERT_TRUE(latest.ok());
  for (const std::string& n : DrainNames(&*latest)) {
    EXPECT_EQ(n, "clobbered");
  }
}

TEST(NetServerTest, ConnectionDefaultIsolationAppliesToCursors) {
  auto db = OpenServerDb();
  auto client = ConnectTo(*db);
  CreateItemType(client.get());
  ASSERT_TRUE(InsertItem(client.get(), 1).ok());

  ASSERT_TRUE(client->set_default_isolation(Isolation::kSnapshot).ok());
  auto snap = client->OpenCursor("SELECT ALL FROM item");  // default applies
  ASSERT_TRUE(snap.ok());
  auto writer = ConnectTo(*db);
  ASSERT_TRUE(writer->Execute("MODIFY item SET name = 'poked'").ok());
  const std::vector<std::string> names = DrainNames(&*snap);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "n1");

  // The override beats the connection default in the other direction too.
  auto latest = client->OpenCursor("SELECT ALL FROM item", 128,
                                   Isolation::kLatestCommitted);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(DrainNames(&*latest).at(0), "poked");
}

TEST(NetServerTest, ReadOnlyTransactionOverTheWire) {
  auto db = OpenServerDb();
  auto client = ConnectTo(*db);
  CreateItemType(client.get());
  ASSERT_TRUE(InsertItem(client.get(), 1).ok());

  ASSERT_TRUE(client->Begin(/*read_only=*/true).ok());
  EXPECT_FALSE(InsertItem(client.get(), 2).ok()) << "DML must be refused";
  EXPECT_FALSE(
      client->Execute("CREATE ATOM_TYPE refused (x: INTEGER)").ok());

  // Repeatable: another connection's commit stays invisible until COMMIT.
  auto writer = ConnectTo(*db);
  ASSERT_TRUE(writer->Execute("MODIFY item SET name = 'later'").ok());
  auto inside = client->Execute("SELECT ALL FROM item");
  ASSERT_TRUE(inside.ok());
  ASSERT_EQ(inside->molecules.size(), 1u);
  EXPECT_EQ(
      inside->molecules.molecules[0].groups[0].atoms[0].attrs[2].AsString(),
      "n1");

  ASSERT_TRUE(client->Commit().ok());
  ASSERT_TRUE(InsertItem(client.get(), 2).ok()) << "writable again";
}

TEST(NetServerTest, PreparedQueryIsolationOverrideOverTheWire) {
  auto db = OpenServerDb();
  auto client = ConnectTo(*db);
  CreateItemType(client.get());
  ASSERT_TRUE(InsertItem(client.get(), 7).ok());

  auto stmt = client->Prepare("SELECT ALL FROM item WHERE num = ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->Bind(0, Value::Int(7)).ok());
  auto snap = stmt->Query(128, Isolation::kSnapshot);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();

  auto writer = ConnectTo(*db);
  ASSERT_TRUE(writer->Execute("MODIFY item SET name = 'rewritten'").ok());

  const std::vector<std::string> names = DrainNames(&*snap);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "n7");

  // The same prepared statement re-queried without the override reads the
  // committed present.
  auto latest = stmt->Query();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(DrainNames(&*latest).at(0), "rewritten");
}

TEST(NetServerTest, StatsServeVersionStoreGauges) {
  auto db = OpenServerDb();
  auto client = ConnectTo(*db);
  CreateItemType(client.get());
  for (int i = 1; i <= 4; ++i) ASSERT_TRUE(InsertItem(client.get(), i).ok());

  auto snap =
      client->OpenCursor("SELECT ALL FROM item", 1, Isolation::kSnapshot);
  ASSERT_TRUE(snap.ok());
  auto writer = ConnectTo(*db);
  ASSERT_TRUE(writer->Execute("MODIFY item SET name = 'churn'").ok());

  auto pinned = client->Stats();
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->snapshots_active, 1u);
  EXPECT_GT(pinned->versions_retained, 0u);

  ASSERT_EQ(DrainNames(&*snap).size(), 4u);
  ASSERT_TRUE(snap->Close().ok());
  // The pin may lag the close by a worker's beat; poll the gauge down.
  for (int i = 0; i < 1000; ++i) {
    auto s = client->Stats();
    ASSERT_TRUE(s.ok());
    if (s->snapshots_active == 0 && s->versions_retained == 0) {
      EXPECT_GT(s->versions_resolved, 0u);
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "version store never drained after the remote cursor closed";
}

}  // namespace
}  // namespace prima::net
