#include <gtest/gtest.h>

#include "core/prima.h"
#include "workloads/brep.h"

namespace prima::ldl {
namespace {

class LdlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = core::Prima::Open({});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    workloads::BrepWorkload brep(db_.get());
    ASSERT_TRUE(brep.CreateSchema().ok());
    ASSERT_TRUE(brep.BuildMany(1, 4).ok());
  }

  const access::StructureDef* Find(const std::string& name) {
    return db_->access().catalog().FindStructure(name);
  }

  std::unique_ptr<core::Prima> db_;
};

TEST_F(LdlTest, CreateAccessPath) {
  auto r = db_->ExecuteLdl("CREATE ACCESS PATH ap ON face (square_dim)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const access::StructureDef* def = Find("ap");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->kind, access::StructureKind::kBTreeAccessPath);
  EXPECT_FALSE(def->unique);
  // Backfilled with all existing faces.
  auto count = db_->access().BTreeFor(def->id)->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 16u);
}

TEST_F(LdlTest, CreateUniqueAccessPathRejectsDuplicates) {
  auto r = db_->ExecuteLdl("CREATE ACCESS PATH u ON solid (description) UNIQUE");
  ASSERT_TRUE(r.ok());
  // A second solid with an existing description now fails on the unique
  // access path.
  auto dup = db_->Execute("INSERT solid (solid_no = 99, description = 'tetra_1')");
  EXPECT_FALSE(dup.ok());
}

TEST_F(LdlTest, CreateGridAccessPath) {
  auto r = db_->ExecuteLdl("CREATE ACCESS PATH g ON face (square_dim) USING GRID");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Find("g")->kind, access::StructureKind::kGridAccessPath);
  EXPECT_EQ(db_->access().GridFor(Find("g")->id)->entry_count(), 16u);
}

TEST_F(LdlTest, GridUniqueRejected) {
  auto r = db_->ExecuteLdl("CREATE ACCESS PATH g ON face (square_dim) UNIQUE USING GRID");
  EXPECT_FALSE(r.ok());
}

TEST_F(LdlTest, CreateSortOrderWithDirections) {
  auto r = db_->ExecuteLdl("CREATE SORT ORDER so ON face (square_dim DESC)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const access::StructureDef* def = Find("so");
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->kind, access::StructureKind::kSortOrder);
  ASSERT_EQ(def->asc.size(), 1u);
  EXPECT_FALSE(def->asc[0]);
}

TEST_F(LdlTest, CreatePartition) {
  auto r = db_->ExecuteLdl("CREATE PARTITION p ON solid (solid_no, description)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Find("p")->attrs.size(), 2u);
}

TEST_F(LdlTest, CreateAtomCluster) {
  auto r = db_->ExecuteLdl("CREATE ATOM CLUSTER c ON brep (faces, edges, points)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const access::StructureDef* def = Find("c");
  EXPECT_EQ(def->kind, access::StructureKind::kAtomCluster);
  EXPECT_EQ(db_->access().ClusterMemberTypes(*def).size(), 3u);
}

TEST_F(LdlTest, DropStructure) {
  ASSERT_TRUE(db_->ExecuteLdl("CREATE PARTITION p ON solid (solid_no)").ok());
  auto r = db_->ExecuteLdl("DROP STRUCTURE p");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Find("p"), nullptr);
  EXPECT_FALSE(db_->ExecuteLdl("DROP STRUCTURE p").ok());
}

TEST_F(LdlTest, TransparencyAtTheMadInterface) {
  // The same query returns identical molecule sets before and after every
  // kind of tuning structure (paper §2.3: "not visible to the application").
  const std::string query =
      "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 2";
  auto before = db_->Query(query);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(db_->ExecuteLdl("CREATE ACCESS PATH ap ON brep (brep_no)").ok());
  ASSERT_TRUE(db_->ExecuteLdl("CREATE SORT ORDER so ON face (square_dim)").ok());
  ASSERT_TRUE(db_->ExecuteLdl("CREATE PARTITION p ON edge (length)").ok());
  ASSERT_TRUE(
      db_->ExecuteLdl("CREATE ATOM CLUSTER c ON brep (faces, edges, points)")
          .ok());
  auto after = db_->Query(query);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->size(), after->size());
  EXPECT_EQ(before->molecules[0].AtomCount(), after->molecules[0].AtomCount());
}

TEST_F(LdlTest, Errors) {
  EXPECT_FALSE(db_->ExecuteLdl("CREATE ACCESS PATH x ON nosuch (a)").ok());
  EXPECT_FALSE(db_->ExecuteLdl("CREATE ACCESS PATH x ON solid (nosuch)").ok());
  EXPECT_FALSE(db_->ExecuteLdl("CREATE SORT ORDER x ON solid (sub)").ok())
      << "association attrs are not sortable";
  EXPECT_FALSE(db_->ExecuteLdl("CREATE ATOM CLUSTER x ON solid (solid_no)").ok())
      << "cluster attrs must be references";
  EXPECT_FALSE(db_->ExecuteLdl("MAKE SOMETHING").ok());
  ASSERT_TRUE(db_->ExecuteLdl("CREATE ACCESS PATH dup ON solid (solid_no)").ok());
  EXPECT_FALSE(db_->ExecuteLdl("CREATE ACCESS PATH dup ON solid (solid_no)").ok())
      << "duplicate names rejected";
}

}  // namespace
}  // namespace prima::ldl
