#include <gtest/gtest.h>

#include "access/value.h"
#include "util/random.h"

namespace prima::access {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_EQ(Value::Ref(Tid(3, 9)).AsTid(), Tid(3, 9));
  EXPECT_EQ(Value::List({Value::Int(1)}).elems().size(), 1u);
}

TEST(ValueTest, NumericCrossComparison) {
  // Paper queries compare INTEGER literals against REAL attributes.
  EXPECT_EQ(Value::Int(2).Compare(Value::Real(2.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Real(1.5)), 0);
  EXPECT_GT(Value::Real(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, CompositeComparison) {
  const Value a = Value::List({Value::Int(1), Value::Int(2)});
  const Value b = Value::List({Value::Int(1), Value::Int(3)});
  const Value c = Value::List({Value::Int(1)});
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(a.Compare(c), 0);
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(ValueTest, Contains) {
  const Value set = Value::List({Value::Ref(Tid(1, 1)), Value::Ref(Tid(1, 2))});
  EXPECT_TRUE(set.Contains(Value::Ref(Tid(1, 2))));
  EXPECT_FALSE(set.Contains(Value::Ref(Tid(1, 3))));
  EXPECT_FALSE(Value::Int(1).Contains(Value::Int(1)));
}

Value ArbitraryValue(util::Random* rng, int depth) {
  switch (rng->Uniform(depth > 2 ? 6 : 8)) {
    case 0: return Value::Null();
    case 1: return Value::Int(static_cast<int64_t>(rng->Next()));
    case 2: return Value::Real(rng->NextDouble() * 1e6 - 5e5);
    case 3: return Value::Bool(rng->Bernoulli(0.5));
    case 4: {
      std::string s(rng->Range(0, 20), '\0');
      for (auto& c : s) c = static_cast<char>(rng->Uniform(256));
      return Value::String(std::move(s));
    }
    case 5:
      return Value::Ref(Tid(static_cast<AtomTypeId>(rng->Uniform(100)),
                            rng->Uniform(1 << 20)));
    case 6: {
      std::vector<Value> elems;
      for (int i = rng->Range(0, 4); i > 0; --i) {
        elems.push_back(ArbitraryValue(rng, depth + 1));
      }
      return Value::List(std::move(elems));
    }
    default: {
      std::vector<Value> fields;
      for (int i = rng->Range(1, 3); i > 0; --i) {
        fields.push_back(ArbitraryValue(rng, depth + 1));
      }
      return Value::Record(std::move(fields));
    }
  }
}

class ValueRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueRoundTripTest, EncodeDecodeIdentity) {
  util::Random rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const Value v = ArbitraryValue(&rng, 0);
    std::string buf;
    v.EncodeInto(&buf);
    util::Slice in(buf);
    auto back = Value::Decode(&in);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(in.empty());
    EXPECT_TRUE(v.Equals(*back)) << v.ToString() << " vs " << back->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueRoundTripTest,
                         ::testing::Values(10, 20, 30, 40));

TEST(AtomTest, SparseEncodingRoundTrip) {
  Atom atom;
  atom.tid = Tid(7, 123);
  atom.attrs = {Value::Null(), Value::Int(5), Value::Null(),
                Value::String("hi"), Value::Null()};
  std::string buf;
  atom.EncodeInto(&buf);
  util::Slice in(buf);
  auto back = Atom::Decode(&in, 5);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tid, atom.tid);
  ASSERT_EQ(back->attrs.size(), 5u);
  EXPECT_TRUE(back->attrs[0].is_null());
  EXPECT_EQ(back->attrs[1].AsInt(), 5);
  EXPECT_EQ(back->attrs[3].AsString(), "hi");
}

TEST(AtomTest, DecodeToleratesNarrowerSchema) {
  Atom atom;
  atom.tid = Tid(1, 1);
  atom.attrs = {Value::Int(1), Value::Int(2), Value::Int(3)};
  std::string buf;
  atom.EncodeInto(&buf);
  util::Slice in(buf);
  auto back = Atom::Decode(&in, 2);  // schema shrank
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->attrs.size(), 2u);
}

// ---------------------------------------------------------------------------
// Type checking
// ---------------------------------------------------------------------------

TEST(TypeCheckTest, Scalars) {
  EXPECT_TRUE(TypeCheckValue(Value::Int(1), TypeDesc::Integer()).ok());
  EXPECT_FALSE(TypeCheckValue(Value::String("x"), TypeDesc::Integer()).ok());
  EXPECT_TRUE(TypeCheckValue(Value::Real(1.5), TypeDesc::Real()).ok());
  // INTEGER values are acceptable REALs (numeric coercion happens upstream).
  EXPECT_TRUE(TypeCheckValue(Value::Int(1), TypeDesc::Real()).ok());
  EXPECT_TRUE(TypeCheckValue(Value::Bool(true), TypeDesc::Boolean()).ok());
  EXPECT_TRUE(TypeCheckValue(Value::Null(), TypeDesc::Integer()).ok());
}

TEST(TypeCheckTest, CharLength) {
  EXPECT_TRUE(TypeCheckValue(Value::String("abc"), TypeDesc::Char(3)).ok());
  EXPECT_FALSE(TypeCheckValue(Value::String("abcd"), TypeDesc::Char(3)).ok());
  EXPECT_TRUE(TypeCheckValue(Value::String("abcd"), TypeDesc::CharVar()).ok());
}

TEST(TypeCheckTest, ReferenceTargetType) {
  TypeDesc ref = TypeDesc::RefTo("face", "brep");
  ref.ref_type_id = 3;
  EXPECT_TRUE(TypeCheckValue(Value::Ref(Tid(3, 1)), ref).ok());
  EXPECT_FALSE(TypeCheckValue(Value::Ref(Tid(4, 1)), ref).ok());
  EXPECT_FALSE(TypeCheckValue(Value::Int(1), ref).ok());
}

TEST(TypeCheckTest, RecordArityAndFieldTypes) {
  const TypeDesc rec = TypeDesc::RecordOf(
      {{"x", std::make_shared<const TypeDesc>(TypeDesc::Real())},
       {"y", std::make_shared<const TypeDesc>(TypeDesc::Real())}});
  EXPECT_TRUE(
      TypeCheckValue(Value::Record({Value::Real(1), Value::Real(2)}), rec).ok());
  EXPECT_FALSE(TypeCheckValue(Value::Record({Value::Real(1)}), rec).ok());
  EXPECT_FALSE(
      TypeCheckValue(Value::Record({Value::Real(1), Value::String("no")}), rec)
          .ok());
}

TEST(TypeCheckTest, ArrayLength) {
  const TypeDesc arr = TypeDesc::ArrayOf(TypeDesc::Integer(), 3);
  EXPECT_TRUE(TypeCheckValue(
                  Value::List({Value::Int(1), Value::Int(2), Value::Int(3)}),
                  arr)
                  .ok());
  EXPECT_FALSE(
      TypeCheckValue(Value::List({Value::Int(1), Value::Int(2)}), arr).ok());
}

TEST(TypeCheckTest, SetRejectsDuplicates) {
  const TypeDesc set = TypeDesc::SetOf(TypeDesc::Integer());
  EXPECT_TRUE(
      TypeCheckValue(Value::List({Value::Int(1), Value::Int(2)}), set).ok());
  EXPECT_FALSE(
      TypeCheckValue(Value::List({Value::Int(1), Value::Int(1)}), set).ok());
  // LISTs allow duplicates.
  const TypeDesc list = TypeDesc::ListOf(TypeDesc::Integer());
  EXPECT_TRUE(
      TypeCheckValue(Value::List({Value::Int(1), Value::Int(1)}), list).ok());
}

TEST(CardinalityTest, MinAndMax) {
  Cardinality card;
  card.min = 2;
  card.max = 3;
  card.var_max = false;
  const TypeDesc set = TypeDesc::SetOf(TypeDesc::Integer(), card);
  EXPECT_TRUE(
      CheckCardinality(Value::List({Value::Int(1), Value::Int(2)}), set, "a")
          .ok());
  EXPECT_TRUE(CheckCardinality(Value::List({Value::Int(1)}), set, "a")
                  .IsConstraint());
  EXPECT_TRUE(CheckCardinality(Value::List({Value::Int(1), Value::Int(2),
                                            Value::Int(3), Value::Int(4)}),
                               set, "a")
                  .IsConstraint());
  // VAR max: only min matters.
  Cardinality open;
  open.min = 1;
  const TypeDesc set2 = TypeDesc::SetOf(TypeDesc::Integer(), open);
  EXPECT_TRUE(CheckCardinality(Value::Null(), set2, "a").IsConstraint());
}

TEST(TypeDescTest, EncodeDecodeRoundTrip) {
  TypeDesc t = TypeDesc::SetOf(TypeDesc::RefTo("face", "brep"),
                               Cardinality{4, 0, true});
  std::string buf;
  t.EncodeInto(&buf);
  util::Slice in(buf);
  auto back = TypeDesc::Decode(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, TypeKind::kSet);
  EXPECT_EQ(back->elem->ref_type_name, "face");
  EXPECT_EQ(back->elem->ref_attr_name, "brep");
  EXPECT_EQ(back->card.min, 4u);
  EXPECT_TRUE(back->card.var_max);
}

TEST(TypeDescTest, ToStringReadable) {
  EXPECT_EQ(TypeDesc::Integer().ToString(), "INTEGER");
  EXPECT_EQ(TypeDesc::RefTo("solid", "sub").ToString(), "REF_TO(solid.sub)");
  EXPECT_EQ(TypeDesc::SetOf(TypeDesc::Integer(), Cardinality{2, 5, false})
                .ToString(),
            "SET_OF(INTEGER)(2,5)");
}

}  // namespace
}  // namespace prima::access
