// Session & prepared-statement API tests: transactional MQL
// (BEGIN/COMMIT/ABORT WORK, auto-commit statement atomicity), parameter
// binding with plan reuse, streaming molecule cursors, and the
// crash-mid-DML regression the implicit statement transaction closes.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/prima.h"
#include "recovery/crash_device.h"
#include "workloads/brep.h"

namespace prima::core {
namespace {

using access::Value;
using mql::ExecResult;
using mql::MoleculeCursor;
using mql::MoleculeSet;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Prima::Open({});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    session_ = db_->OpenSession();
    auto ddl = session_->Execute(
        "CREATE ATOM_TYPE part (part_id: IDENTIFIER, part_no: INTEGER, "
        "name: CHAR_VAR, weight: REAL) KEYS_ARE (part_no)");
    ASSERT_TRUE(ddl.ok()) << ddl.status().ToString();
  }

  util::Status InsertPart(Session* s, int64_t no, const std::string& name,
                          double weight) {
    return s
        ->Execute("INSERT part (part_no = " + std::to_string(no) +
                  ", name = '" + name +
                  "', weight = " + std::to_string(weight) + ")")
        .status();
  }

  size_t CountParts(Session* s) {
    auto r = s->Execute("SELECT ALL FROM part");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->molecules.size();
  }

  std::string PartName(Session* s, int64_t no) {
    auto r = s->Execute("SELECT ALL FROM part WHERE part_no = " +
                        std::to_string(no));
    EXPECT_TRUE(r.ok());
    if (!r.ok() || r->molecules.empty()) return "<missing>";
    return r->molecules.molecules[0].groups[0].atoms[0].attrs[2].AsString();
  }

  std::unique_ptr<Prima> db_;
  std::unique_ptr<Session> session_;
};

// ---------------------------------------------------------------------------
// Transaction scoping
// ---------------------------------------------------------------------------

TEST_F(SessionTest, DmlAutoCommitsOutsideTransaction) {
  EXPECT_FALSE(session_->in_transaction());
  ASSERT_TRUE(InsertPart(session_.get(), 1, "gear", 2.5).ok());
  EXPECT_EQ(session_->transaction_depth(), 0u);
  EXPECT_EQ(CountParts(session_.get()), 1u);
  // The implicit transaction committed and released everything.
  EXPECT_EQ(db_->transactions().LockedAtomCount(), 0u);
}

TEST_F(SessionTest, CommitWorkKeepsEffects) {
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  EXPECT_EQ(session_->transaction_depth(), 1u);
  ASSERT_TRUE(InsertPart(session_.get(), 1, "gear", 2.5).ok());
  ASSERT_TRUE(InsertPart(session_.get(), 2, "axle", 1.0).ok());
  ASSERT_TRUE(session_->Execute("COMMIT WORK").ok());
  EXPECT_EQ(session_->transaction_depth(), 0u);
  EXPECT_EQ(CountParts(session_.get()), 2u);
  EXPECT_EQ(db_->transactions().LockedAtomCount(), 0u);
}

TEST_F(SessionTest, AbortWorkLeavesNoTrace) {
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(InsertPart(session_.get(), 1, "gear", 2.5).ok());
  ASSERT_TRUE(InsertPart(session_.get(), 2, "axle", 1.0).ok());
  ASSERT_TRUE(session_->Execute("ABORT WORK").ok());
  EXPECT_EQ(CountParts(session_.get()), 0u);
  EXPECT_EQ(db_->transactions().LockedAtomCount(), 0u);
}

TEST_F(SessionTest, AbortWorkRestoresModifiedState) {
  ASSERT_TRUE(InsertPart(session_.get(), 7, "original", 1.0).ok());
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  auto mod = session_->Execute(
      "MODIFY part SET name = 'changed' WHERE part_no = 7");
  ASSERT_TRUE(mod.ok()) << mod.status().ToString();
  EXPECT_EQ(PartName(session_.get(), 7), "changed");
  ASSERT_TRUE(session_->Execute("ABORT WORK").ok());
  EXPECT_EQ(PartName(session_.get(), 7), "original");
}

TEST_F(SessionTest, NestedBeginWorkIsSelective) {
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(InsertPart(session_.get(), 1, "outer", 1.0).ok());
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  EXPECT_EQ(session_->transaction_depth(), 2u);
  ASSERT_TRUE(InsertPart(session_.get(), 2, "inner", 2.0).ok());
  // Inner abort rolls back only the subtransaction's insert.
  ASSERT_TRUE(session_->Execute("ABORT WORK").ok());
  EXPECT_EQ(session_->transaction_depth(), 1u);
  ASSERT_TRUE(session_->Execute("COMMIT WORK").ok());
  EXPECT_EQ(CountParts(session_.get()), 1u);
  EXPECT_EQ(PartName(session_.get(), 1), "outer");
}

TEST_F(SessionTest, NestedCommitInheritsToParentAbort) {
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(InsertPart(session_.get(), 1, "inner", 1.0).ok());
  ASSERT_TRUE(session_->Execute("COMMIT WORK").ok());  // child commits...
  ASSERT_TRUE(session_->Execute("ABORT WORK").ok());   // ...parent aborts all
  EXPECT_EQ(CountParts(session_.get()), 0u);
}

TEST_F(SessionTest, CommitAbortOutsideTransactionFail) {
  EXPECT_TRUE(session_->Execute("COMMIT WORK").status().IsInvalidArgument());
  EXPECT_TRUE(session_->Execute("ABORT WORK").status().IsInvalidArgument());
}

TEST_F(SessionTest, SessionDestructionRollsBackOpenTransaction) {
  auto other = db_->OpenSession();
  ASSERT_TRUE(other->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(InsertPart(other.get(), 1, "doomed", 1.0).ok());
  other.reset();  // vanishing client
  EXPECT_EQ(CountParts(session_.get()), 0u);
  EXPECT_EQ(db_->transactions().LockedAtomCount(), 0u);
}

TEST_F(SessionTest, TwoSessionsAreIsolated) {
  ASSERT_TRUE(InsertPart(session_.get(), 1, "shared", 1.0).ok());
  auto s2 = db_->OpenSession();

  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(session_
                  ->Execute("MODIFY part SET name = 's1' WHERE part_no = 1")
                  .ok());
  // s2's statement conflicts on the write lock and — running in its own
  // implicit transaction — rolls back cleanly.
  auto st = s2->Execute("MODIFY part SET name = 's2' WHERE part_no = 1");
  EXPECT_TRUE(st.status().IsConflict()) << st.status().ToString();
  EXPECT_EQ(PartName(s2.get(), 1), "s1");  // uncommitted s1 value (no read locks)

  ASSERT_TRUE(session_->Execute("COMMIT WORK").ok());
  // Locks released: s2 can now update.
  ASSERT_TRUE(
      s2->Execute("MODIFY part SET name = 's2' WHERE part_no = 1").ok());
  EXPECT_EQ(PartName(session_.get(), 1), "s2");
}

TEST_F(SessionTest, FailedStatementInsideTransactionCompensatesItselfOnly) {
  ASSERT_TRUE(InsertPart(session_.get(), 1, "a", 1.0).ok());
  ASSERT_TRUE(InsertPart(session_.get(), 2, "b", 2.0).ok());

  // s2 locks part 2 so the multi-atom MODIFY below succeeds on part 1 and
  // then conflicts on part 2: the statement's subtransaction must undo its
  // partial effect on part 1, while s1's surrounding transaction survives.
  auto s2 = db_->OpenSession();
  ASSERT_TRUE(s2->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(
      s2->Execute("MODIFY part SET weight = 9.0 WHERE part_no = 2").ok());

  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(InsertPart(session_.get(), 3, "c", 3.0).ok());
  auto st = session_->Execute("MODIFY part SET name = 'touched'");
  EXPECT_TRUE(st.status().IsConflict()) << st.status().ToString();
  EXPECT_EQ(PartName(session_.get(), 1), "a") << "partial effect must undo";
  // The surrounding transaction is still open and commits its own work.
  EXPECT_TRUE(session_->in_transaction());
  ASSERT_TRUE(session_->Execute("COMMIT WORK").ok());
  EXPECT_EQ(CountParts(session_.get()), 3u);
  ASSERT_TRUE(s2->Execute("ABORT WORK").ok());
}

// ---------------------------------------------------------------------------
// Prepared statements
// ---------------------------------------------------------------------------

TEST_F(SessionTest, PreparedSelectPlansOnceAcrossExecutions) {
  for (int i = 1; i <= 8; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "p", i * 1.0).ok());
  }
  auto stmt = session_->Prepare("SELECT ALL FROM part WHERE weight > ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(db_->data().stats().statements_prepared.load(), 1u);
  ASSERT_TRUE(stmt->Bind(0, Value::Real(4.5)).ok());
  for (int n = 0; n < 5; ++n) {
    auto r = stmt->Execute();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->molecules.size(), 4u);
  }
  EXPECT_EQ(stmt->executions(), 5u);
  EXPECT_EQ(stmt->plans_computed(), 1u)
      << "same binding must reuse the plan across executions";
  EXPECT_EQ(db_->data().stats().prepared_plans.load(), 1u);
  EXPECT_EQ(db_->data().stats().prepared_executions.load(), 5u);
}

TEST_F(SessionTest, EqKeyPlaceholderReplansOnlyOnValueChange) {
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "p", 1.0).ok());
  }
  auto stmt = session_->Prepare("SELECT ALL FROM part WHERE part_no = ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->Bind(0, Value::Int(2)).ok());
  auto r1 = stmt->Execute();
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1->molecules.size(), 1u);
  EXPECT_EQ(stmt->plans_computed(), 1u);
  // part_no is the KEYS_ARE key: the placeholder's value is EMBEDDED in
  // the key-lookup plan, so the plan notes the dependency.
  EXPECT_EQ(r1->molecules.molecules[0].groups[0].atoms[0].attrs[1].AsInt(), 2);

  auto again = stmt->Execute();  // same binding: reuse
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(stmt->plans_computed(), 1u);

  ASSERT_TRUE(stmt->Bind(0, Value::Int(3)).ok());  // new key: must re-plan
  auto r2 = stmt->Execute();
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->molecules.size(), 1u);
  EXPECT_EQ(r2->molecules.molecules[0].groups[0].atoms[0].attrs[1].AsInt(), 3);
  EXPECT_EQ(stmt->plans_computed(), 2u);
}

TEST_F(SessionTest, NonRootPlaceholderNeverReplans) {
  workloads::BrepWorkload brep(db_.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(brep.BuildMany(100, 3).ok());
  // The placeholder qualifies the face COMPONENT, not the brep root: its
  // value lives only in the WHERE filter, so re-binding reuses the plan.
  auto stmt = session_->Prepare(
      "SELECT ALL FROM brep-face WHERE face.square_dim > ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_TRUE(stmt->Bind(0, Value::Real(0.5)).ok());
  auto wide = stmt->Execute();
  ASSERT_TRUE(wide.ok()) << wide.status().ToString();
  ASSERT_TRUE(stmt->Bind(0, Value::Real(1.0e9)).ok());
  auto none = stmt->Execute();
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->molecules.size(), 0u);
  EXPECT_GE(wide->molecules.size(), none->molecules.size());
  EXPECT_EQ(stmt->plans_computed(), 1u)
      << "non-root placeholder re-binding must not re-plan";
}

TEST_F(SessionTest, PreparedPlanInvalidatedByDdl) {
  ASSERT_TRUE(session_
                  ->Execute("CREATE ATOM_TYPE gadget (g_id: IDENTIFIER, "
                            "num: INTEGER) KEYS_ARE (num)")
                  .ok());
  ASSERT_TRUE(session_->Execute("INSERT gadget (num = 7)").ok());
  auto stmt = session_->Prepare("SELECT ALL FROM gadget WHERE num = ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->Bind(0, Value::Int(7)).ok());
  auto r1 = stmt->Execute();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->molecules.size(), 1u);

  // DDL moves the schema: the cached plan embeds the dropped key index.
  // Executing with the SAME binding must re-plan (and fail cleanly on the
  // vanished type), never chase the stale structure id.
  ASSERT_TRUE(session_->Execute("DELETE ALL FROM gadget").ok());
  ASSERT_TRUE(session_->Execute("DROP ATOM_TYPE gadget").ok());
  auto gone = stmt->Execute();
  EXPECT_FALSE(gone.ok()) << "type is gone - must error, not crash";

  // Recreating the type heals the statement on the next execution: the
  // schema version moved again, so it re-plans against the new catalog.
  ASSERT_TRUE(session_
                  ->Execute("CREATE ATOM_TYPE gadget (g_id: IDENTIFIER, "
                            "num: INTEGER) KEYS_ARE (num)")
                  .ok());
  ASSERT_TRUE(session_->Execute("INSERT gadget (num = 7)").ok());
  auto back = stmt->Execute();
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->molecules.size(), 1u);
  EXPECT_GE(stmt->plans_computed(), 2u);
}

TEST_F(SessionTest, PreparedBindingErrors) {
  ASSERT_TRUE(InsertPart(session_.get(), 1, "p", 1.0).ok());
  auto stmt = session_->Prepare(
      "SELECT ALL FROM part WHERE part_no = ? AND weight > :min");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->param_count(), 2u);

  // Unbound parameters are named in the error.
  auto r = stmt->Execute();
  ASSERT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().message().find("parameter 0"), std::string::npos);
  ASSERT_TRUE(stmt->Bind(0, Value::Int(1)).ok());
  r = stmt->Execute();
  ASSERT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().message().find(":min"), std::string::npos);

  // Bind by name; out-of-range / unknown-name / empty-name binds are
  // refused (an empty name must not silently match a positional slot).
  EXPECT_TRUE(stmt->Bind("nope", Value::Int(0)).IsInvalidArgument());
  EXPECT_TRUE(stmt->Bind(5, Value::Int(0)).IsInvalidArgument());
  EXPECT_TRUE(stmt->Bind("", Value::Int(0)).IsInvalidArgument());
  ASSERT_TRUE(stmt->Bind("min", Value::Real(0.5)).ok());
  auto ok = stmt->Execute();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->molecules.size(), 1u);

  // ClearBindings really unbinds.
  stmt->ClearBindings();
  EXPECT_TRUE(stmt->Execute().status().IsInvalidArgument());
}

TEST_F(SessionTest, PreparedStatementsWithPlaceholdersMustBePrepared) {
  auto direct = session_->Execute("SELECT ALL FROM part WHERE part_no = ?");
  EXPECT_TRUE(direct.status().IsInvalidArgument());
  EXPECT_NE(direct.status().message().find("placeholder"), std::string::npos);
  // Every unprepared entry point refuses placeholders the same way — an
  // unbound slot would compare as null and silently qualify nothing.
  EXPECT_TRUE(session_->Query("SELECT ALL FROM part WHERE part_no = ?")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(db_->QueryParallel("SELECT ALL FROM part WHERE part_no = ?")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(SessionTest, PreparedInsertAndModifyBindPerExecution) {
  auto ins = session_->Prepare("INSERT part (part_no = ?, name = :n, "
                               "weight = ?)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(ins->Bind(0, Value::Int(i)).ok());
    ASSERT_TRUE(ins->Bind("n", Value::String("p" + std::to_string(i))).ok());
    ASSERT_TRUE(ins->Bind(2, Value::Real(i * 0.5)).ok());
    auto r = ins->Execute();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->kind, ExecResult::Kind::kTid);
  }
  EXPECT_EQ(CountParts(session_.get()), 10u);
  EXPECT_EQ(PartName(session_.get(), 7), "p7");

  auto mod = session_->Prepare(
      "MODIFY part SET name = :name WHERE part_no = :no");
  ASSERT_TRUE(mod.ok());
  ASSERT_TRUE(mod->Bind("name", Value::String("renamed")).ok());
  ASSERT_TRUE(mod->Bind("no", Value::Int(3)).ok());
  auto r = mod->Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 1u);
  EXPECT_EQ(PartName(session_.get(), 3), "renamed");
}

TEST_F(SessionTest, PreparedBindTypeMismatchSurfacesError) {
  auto ins = session_->Prepare("INSERT part (part_no = ?, name = ?)");
  ASSERT_TRUE(ins.ok());
  ASSERT_TRUE(ins->Bind(0, Value::String("not a number")).ok());
  ASSERT_TRUE(ins->Bind(1, Value::String("x")).ok());
  auto r = ins->Execute();
  EXPECT_FALSE(r.ok()) << "INTEGER attribute must reject a string binding";
  // The failed statement auto-rolled back: nothing inserted.
  EXPECT_EQ(CountParts(session_.get()), 0u);
}

// ---------------------------------------------------------------------------
// Streaming cursors
// ---------------------------------------------------------------------------

TEST_F(SessionTest, CursorDrainEqualsMaterializedQuery) {
  workloads::BrepWorkload brep(db_.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(brep.BuildMany(500, 6).ok());
  const std::string query =
      "SELECT ALL FROM brep-face-edge-point WHERE brep_no >= 500";

  // Reference: the materializing executor path (no cursor involved).
  auto materialized = db_->data().ExecuteQuery(query);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  ASSERT_GT(materialized->size(), 0u);

  auto cursor = session_->Query(query);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  MoleculeSet streamed;
  for (;;) {
    auto m = cursor->Next();
    ASSERT_TRUE(m.ok()) << m.status().ToString();
    if (!m->has_value()) break;
    streamed.molecules.push_back(std::move(**m));
  }
  ASSERT_EQ(streamed.size(), materialized->size());
  // Element-for-element identical, including order and projections.
  EXPECT_EQ(streamed.ToString(db_->access().catalog()),
            materialized->ToString(db_->access().catalog()));
}

TEST_F(SessionTest, CursorStreamsIncrementally) {
  // Pin serial assembly: with pipelined look-ahead (the default) Next() may
  // legitimately assemble a bounded window beyond what the consumer pulled,
  // so the exact one-at-a-time accounting below holds only at 1 thread.
  PrimaOptions options;
  options.cursor_assembly_threads = 1;
  auto serial_db = Prima::Open(options);
  ASSERT_TRUE(serial_db.ok());
  auto session = (*serial_db)->OpenSession();
  ASSERT_TRUE(session
                  ->Execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                            "part_no: INTEGER, name: CHAR_VAR, weight: REAL) "
                            "KEYS_ARE (part_no)")
                  .ok());
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(InsertPart(session.get(), i, "p", 1.0).ok());
  }
  (*serial_db)->data().stats().Reset();
  auto cursor = session->Query("SELECT ALL FROM part");
  ASSERT_TRUE(cursor.ok());
  // Opening only positions the root source — nothing is scanned into
  // memory and nothing is assembled yet.
  EXPECT_EQ((*serial_db)->data().stats().molecules_built.load(), 0u);
  auto first = cursor->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((*serial_db)->data().stats().molecules_built.load(), 1u)
      << "Next() must assemble exactly one molecule";
  EXPECT_EQ((*serial_db)->data().stats().cursor_molecules.load(), 1u);

  // The default (pipelined) cursor also opens without assembling: look-ahead
  // work is only submitted once the consumer starts pulling.
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "p", 1.0).ok());
  }
  db_->data().stats().Reset();
  auto pipelined = session_->Query("SELECT ALL FROM part");
  ASSERT_TRUE(pipelined.ok());
  EXPECT_EQ(db_->data().stats().molecules_built.load(), 0u);
  auto pulled = pipelined->Next();
  ASSERT_TRUE(pulled.ok());
  ASSERT_TRUE(pulled->has_value());
  EXPECT_EQ(db_->data().stats().cursor_molecules.load(), 1u)
      << "one molecule delivered, whatever the look-ahead assembled";
}

TEST_F(SessionTest, CursorEarlyCloseStopsStreaming) {
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "p", 1.0).ok());
  }
  auto cursor = session_->Query("SELECT ALL FROM part");
  ASSERT_TRUE(cursor.ok());
  auto first = cursor->Next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  cursor->Close();
  EXPECT_FALSE(cursor->open());
  auto after = cursor->Next();
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->has_value()) << "a closed cursor reports drained";
  cursor->Close();  // idempotent
}

TEST_F(SessionTest, CursorInvalidatedBySessionAbort) {
  ASSERT_TRUE(InsertPart(session_.get(), 1, "keep", 1.0).ok());
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(InsertPart(session_.get(), 2, "phantom", 2.0).ok());

  auto cursor = session_->Query("SELECT ALL FROM part");
  ASSERT_TRUE(cursor.ok());

  ASSERT_TRUE(session_->Execute("ABORT WORK").ok());
  auto next = cursor->Next();
  EXPECT_TRUE(next.status().IsAborted())
      << "the cursor would stream rolled-back atoms";
  EXPECT_FALSE(cursor->open());
  // Sticky: later pulls keep failing — the truncated stream must never
  // read as a cleanly completed one.
  EXPECT_TRUE(cursor->Next().status().IsAborted());
  EXPECT_TRUE(cursor->Drain().status().IsAborted());

  // A cursor opened AFTER the abort works normally.
  auto fresh = session_->Query("SELECT ALL FROM part");
  ASSERT_TRUE(fresh.ok());
  auto set = fresh->Drain();
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 1u);
}

TEST_F(SessionTest, FailedValidationStatementKeepsCursorsAlive) {
  ASSERT_TRUE(InsertPart(session_.get(), 1, "a", 1.0).ok());
  ASSERT_TRUE(InsertPart(session_.get(), 2, "b", 2.0).ok());
  auto cursor = session_->Query("SELECT ALL FROM part");
  ASSERT_TRUE(cursor.ok());
  // Refused by validation before any mutation: the empty implicit
  // transaction's rollback compensated nothing, so the cursor lives.
  auto bad = session_->Execute("INSERT part (no_such_attr = 1)");
  ASSERT_FALSE(bad.ok());
  auto drained = cursor->Drain();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  EXPECT_EQ(drained->size(), 2u);
  // An ABORT WORK of a transaction that never wrote keeps cursors too.
  auto cursor2 = session_->Query("SELECT ALL FROM part");
  ASSERT_TRUE(cursor2.ok());
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(session_->Execute("ABORT WORK").ok());
  EXPECT_TRUE(cursor2->Drain().ok());
}

TEST_F(SessionTest, PreparedCursorCountsAsQuery) {
  ASSERT_TRUE(InsertPart(session_.get(), 1, "p", 1.0).ok());
  auto stmt = session_->Prepare("SELECT ALL FROM part WHERE weight > ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->Bind(0, Value::Real(0.0)).ok());
  db_->data().stats().Reset();
  auto cursor = stmt->Query();
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(db_->data().stats().queries.load(), 1u)
      << "a prepared streaming query is still a query";
  EXPECT_EQ(db_->data().stats().cursors_opened.load(), 1u);
}

TEST_F(SessionTest, PreparedCursorSurvivesRebind) {
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(InsertPart(session_.get(), i, "p", i * 1.0).ok());
  }
  auto stmt = session_->Prepare("SELECT ALL FROM part WHERE weight > ?");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(stmt->Bind(0, Value::Real(3.5)).ok());
  auto cursor = stmt->Query();
  ASSERT_TRUE(cursor.ok());
  // Re-bind and re-execute while the first cursor is still open: the
  // cursor owns a clone of the bound query, so it keeps its own value.
  ASSERT_TRUE(stmt->Bind(0, Value::Real(5.5)).ok());
  auto second = stmt->Execute();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->molecules.size(), 1u);
  auto drained = cursor->Drain();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained->size(), 3u);
}

// ---------------------------------------------------------------------------
// Crash regression: the untransacted-DML gap (satellite). Before sessions,
// MQL DML hit the access system with no transaction at all; a crash mid
// multi-atom DELETE/MODIFY left untagged partial mutations that restart
// recovery could not attribute to any loser. Under the session API the
// implicit statement transaction brackets those mutations with
// begin/undo/commit records, so a commit force torn mid-transfer makes the
// statement a loser and recovery rolls it back ATOMICALLY.
// ---------------------------------------------------------------------------

class SessionCrashTest : public ::testing::Test {
 protected:
  static constexpr int kParts = 24;

  void Open() {
    if (inner_ == nullptr) {
      inner_ = std::make_shared<storage::MemoryBlockDevice>();
    }
    crash_ = std::make_shared<recovery::CrashingBlockDevice>(inner_);
    PrimaOptions options;
    options.device = crash_;
    auto db = Prima::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = std::move(*db);
    session_ = db_->OpenSession();
  }

  void SeedCommitted() {
    ASSERT_TRUE(session_
                    ->Execute("CREATE ATOM_TYPE part (part_id: IDENTIFIER, "
                              "part_no: INTEGER, name: CHAR_VAR)")
                    .ok());
    for (int i = 1; i <= kParts; ++i) {
      // Fat strings spread the statement's log records over several
      // blocks, so the torn chained write lands mid-statement.
      auto r = session_->Execute(
          "INSERT part (part_no = " + std::to_string(i) + ", name = '" +
          std::string(200, 'a') + "')");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
    ASSERT_TRUE(db_->Flush().ok());
  }

  /// Drop the database stack with every further device write discarded
  /// (destructor checkpoint included) — the "power failure".
  void Crash() {
    crash_->CrashNow();
    session_.reset();
    db_.reset();
    crash_.reset();
  }

  void Reopen() {
    session_.reset();
    db_.reset();
    Open();
  }

  size_t Count() {
    auto r = session_->Execute("SELECT ALL FROM part");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->molecules.size() : 0;
  }

  std::shared_ptr<storage::MemoryBlockDevice> inner_;
  std::shared_ptr<recovery::CrashingBlockDevice> crash_;
  std::unique_ptr<Prima> db_;
  std::unique_ptr<Session> session_;
};

TEST_F(SessionCrashTest, TornCommitRollsBackMultiAtomModifyAtomically) {
  Open();
  SeedCommitted();
  // Let one block of the statement's commit force reach the device, then
  // tear the chained write: undo/redo records are (partially) durable,
  // the commit record is not.
  crash_->SetWriteBudget(1);
  (void)session_->Execute("MODIFY part SET name = 'mutated'");
  ASSERT_GT(crash_->dropped_blocks(), 0u) << "the force must actually tear";
  Crash();

  Reopen();
  ASSERT_EQ(Count(), size_t{kParts});
  auto r = session_->Execute("SELECT ALL FROM part WHERE name = 'mutated'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->molecules.size(), 0u)
      << "restart recovery must roll the implicit statement transaction "
         "back atomically - no partially mutated survivors";
}

TEST_F(SessionCrashTest, TornCommitRollsBackMultiAtomDeleteAtomically) {
  Open();
  SeedCommitted();
  crash_->SetWriteBudget(1);
  (void)session_->Execute("DELETE ALL FROM part");
  ASSERT_GT(crash_->dropped_blocks(), 0u) << "the force must actually tear";
  Crash();

  Reopen();
  EXPECT_EQ(Count(), size_t{kParts})
      << "every atom of the torn DELETE must come back";
}

// Verify-drive discovery (this PR): a B-tree root split updates the
// catalog's root pointer only in memory; the blob persists at checkpoints.
// A crash after the split left restart attaching the key index at its
// checkpoint-time root — every key that migrated above it vanished from
// eq-key lookups (scans still saw the atoms). The kStructRoot log record +
// RecoverStructureRoot fixup close the gap; this drives enough keyed
// inserts through the session to split the root leaf, crashes without a
// checkpoint, and probes every key through the index path.
TEST_F(SessionCrashTest, KeyIndexSurvivesCrashAfterRootSplit) {
  constexpr int kKeyed = 160;  // root leaf splits around 75 entries
  Open();
  ASSERT_TRUE(session_
                  ->Execute("CREATE ATOM_TYPE keyed (k_id: IDENTIFIER, "
                            "num: INTEGER, name: CHAR_VAR) KEYS_ARE (num)")
                  .ok());
  ASSERT_TRUE(db_->Flush().ok());  // catalog persists the PRE-SPLIT root
  auto ins = session_->Prepare("INSERT keyed (num = ?, name = 'v')");
  ASSERT_TRUE(ins.ok());
  for (int i = 0; i < kKeyed; ++i) {
    ASSERT_TRUE(ins->Bind(0, access::Value::Int(i)).ok());
    ASSERT_TRUE(ins->Execute().ok());
  }
  Crash();  // destructor checkpoint dropped: the catalog blob stays stale

  Reopen();
  auto probe = session_->Prepare("SELECT ALL FROM keyed WHERE num = ?");
  ASSERT_TRUE(probe.ok());
  for (int i = 0; i < kKeyed; ++i) {
    ASSERT_TRUE(probe->Bind(0, access::Value::Int(i)).ok());
    auto r = probe->Execute();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_EQ(r->molecules.size(), 1u)
        << "key " << i << " unreachable: stale index root after recovery";
  }
  EXPECT_GT(db_->data().stats().key_lookups.load(), 0u)
      << "the probes must actually exercise the key-lookup path";
}

TEST_F(SessionCrashTest, CommittedWorkSurvivesCrashAbortedLeavesNoTrace) {
  Open();
  SeedCommitted();

  // BEGIN WORK; INSERT; ABORT WORK — then crash: no trace.
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(
      session_->Execute("INSERT part (part_no = 900, name = 'ghost')").ok());
  ASSERT_TRUE(session_->Execute("ABORT WORK").ok());

  // BEGIN WORK; INSERT; COMMIT WORK — then crash: survives (the commit
  // force made it durable before the plug pulled).
  ASSERT_TRUE(session_->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(
      session_->Execute("INSERT part (part_no = 901, name = 'kept')").ok());
  ASSERT_TRUE(session_->Execute("COMMIT WORK").ok());
  Crash();

  Reopen();
  EXPECT_EQ(Count(), size_t{kParts + 1});
  auto ghost = session_->Execute("SELECT ALL FROM part WHERE part_no = 900");
  ASSERT_TRUE(ghost.ok());
  EXPECT_EQ(ghost->molecules.size(), 0u);
  auto kept = session_->Execute("SELECT ALL FROM part WHERE part_no = 901");
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->molecules.size(), 1u);
}

}  // namespace
}  // namespace prima::core
