#include <gtest/gtest.h>

#include "access/access_system.h"
#include "access/scan.h"

namespace prima::access {
namespace {

using storage::MemoryBlockDevice;
using storage::StorageSystem;

/// Schema: `part` with the recursive n:m subs/supers association and a 1:n
/// association to `comp` — a distilled version of the paper's solid schema.
class AccessSystemTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetDb(AccessOptions{}); }

  void ResetDb(AccessOptions options) {
    access_.reset();
    storage_ = std::make_unique<StorageSystem>(
        std::make_unique<MemoryBlockDevice>(), storage::StorageOptions{});
    access_ = std::make_unique<AccessSystem>(storage_.get(), options);
    ASSERT_TRUE(access_->Open().ok());

    AtomTypeDef part;
    part.name = "part";
    part.attrs.push_back({"part_id", TypeDesc::Identifier(), 0});
    part.attrs.push_back({"part_no", TypeDesc::Integer(), 0});
    part.attrs.push_back({"name", TypeDesc::CharVar(), 0});
    part.attrs.push_back(
        {"subs", TypeDesc::SetOf(TypeDesc::RefTo("part", "supers")), 0});
    part.attrs.push_back(
        {"supers", TypeDesc::SetOf(TypeDesc::RefTo("part", "subs")), 0});
    part.attrs.push_back(
        {"comps", TypeDesc::SetOf(TypeDesc::RefTo("comp", "part")), 0});
    auto part_id = access_->CreateAtomType("part", part.attrs, {"part_no"});
    ASSERT_TRUE(part_id.ok()) << part_id.status().ToString();
    part_ = *part_id;

    AtomTypeDef comp;
    comp.attrs.push_back({"comp_id", TypeDesc::Identifier(), 0});
    comp.attrs.push_back({"weight", TypeDesc::Real(), 0});
    comp.attrs.push_back({"size", TypeDesc::Integer(), 0});
    comp.attrs.push_back({"part", TypeDesc::RefTo("part", "comps"), 0});
    Cardinality tags_card;
    tags_card.min = 0;
    tags_card.max = 3;
    tags_card.var_max = false;
    comp.attrs.push_back(
        {"tags", TypeDesc::SetOf(TypeDesc::CharVar(), tags_card), 0});
    auto comp_id = access_->CreateAtomType("comp", comp.attrs, {});
    ASSERT_TRUE(comp_id.ok()) << comp_id.status().ToString();
    comp_ = *comp_id;
  }

  util::Result<Tid> NewPart(int64_t no) {
    return access_->InsertAtom(
        part_, {AttrValue{1, Value::Int(no)},
                AttrValue{2, Value::String("p" + std::to_string(no))}});
  }

  util::Result<Tid> NewComp(double weight, int64_t size, Tid part) {
    std::vector<AttrValue> values = {AttrValue{1, Value::Real(weight)},
                                     AttrValue{2, Value::Int(size)}};
    if (!part.IsNull()) values.push_back(AttrValue{3, Value::Ref(part)});
    return access_->InsertAtom(comp_, values);
  }

  std::unique_ptr<StorageSystem> storage_;
  std::unique_ptr<AccessSystem> access_;
  AtomTypeId part_ = 0;
  AtomTypeId comp_ = 0;
};

TEST_F(AccessSystemTest, InsertAssignsIdentifier) {
  auto tid = NewPart(1);
  ASSERT_TRUE(tid.ok());
  auto atom = access_->GetAtom(*tid);
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->tid, *tid);
  EXPECT_EQ(atom->attrs[0].AsTid(), *tid);  // IDENTIFIER == surrogate
  EXPECT_EQ(atom->attrs[1].AsInt(), 1);
  EXPECT_EQ(access_->AtomCount(part_), 1u);
}

TEST_F(AccessSystemTest, IdentifierCannotBeSupplied) {
  auto st = access_->InsertAtom(part_, {AttrValue{0, Value::Ref(Tid(1, 9))}});
  EXPECT_TRUE(st.status().IsInvalidArgument());
}

TEST_F(AccessSystemTest, KeyUniquenessEnforced) {
  ASSERT_TRUE(NewPart(7).ok());
  auto dup = NewPart(7);
  EXPECT_TRUE(dup.status().IsConstraint());
  // Different key fine.
  EXPECT_TRUE(NewPart(8).ok());
}

TEST_F(AccessSystemTest, InsertMaintainsBackReferences) {
  auto parent = NewPart(1);
  auto child = NewPart(2);
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(child.ok());
  // Connect parent.subs = {child} via modify.
  ASSERT_TRUE(access_
                  ->ModifyAtom(*parent, {AttrValue{3, Value::List({Value::Ref(
                                                       *child)})}})
                  .ok());
  auto child_atom = access_->GetAtom(*child);
  ASSERT_TRUE(child_atom.ok());
  EXPECT_TRUE(child_atom->attrs[4].Contains(Value::Ref(*parent)))
      << "back-reference supers must contain the parent";
}

TEST_F(AccessSystemTest, InsertWithRefsInstallsBackRefsImmediately) {
  auto p = NewPart(1);
  ASSERT_TRUE(p.ok());
  auto c = NewComp(1.5, 10, *p);
  ASSERT_TRUE(c.ok());
  auto part_atom = access_->GetAtom(*p);
  ASSERT_TRUE(part_atom.ok());
  EXPECT_TRUE(part_atom->attrs[5].Contains(Value::Ref(*c)));
}

TEST_F(AccessSystemTest, ScalarBackRefConflictIsConstraint) {
  auto p1 = NewPart(1);
  auto p2 = NewPart(2);
  auto c = NewComp(1.0, 1, *p1);
  ASSERT_TRUE(c.ok());
  // comp.part is scalar (1:n): connecting the comp into a second part's
  // comps set must fail (it would need two part values).
  const uint16_t comps_attr = 5;
  auto st = access_->Connect(*p2, comps_attr, *c);
  EXPECT_TRUE(st.IsConstraint()) << st.ToString();
}

TEST_F(AccessSystemTest, ModifyDiffConnectsAndDisconnects) {
  auto parent = NewPart(1);
  auto a = NewPart(2);
  auto b = NewPart(3);
  ASSERT_TRUE(access_
                  ->ModifyAtom(*parent,
                               {AttrValue{3, Value::List({Value::Ref(*a)})}})
                  .ok());
  // Replace {a} by {b}.
  ASSERT_TRUE(access_
                  ->ModifyAtom(*parent,
                               {AttrValue{3, Value::List({Value::Ref(*b)})}})
                  .ok());
  auto atom_a = access_->GetAtom(*a);
  auto atom_b = access_->GetAtom(*b);
  EXPECT_FALSE(atom_a->attrs[4].Contains(Value::Ref(*parent)));
  EXPECT_TRUE(atom_b->attrs[4].Contains(Value::Ref(*parent)));
}

TEST_F(AccessSystemTest, DeleteDisconnectsEverything) {
  auto parent = NewPart(1);
  auto child = NewPart(2);
  auto c = NewComp(2.0, 5, *parent);
  ASSERT_TRUE(access_->Connect(*parent, 3, *child).ok());
  ASSERT_TRUE(access_->DeleteAtom(*parent).ok());
  EXPECT_FALSE(access_->AtomExists(*parent));
  // Child lost its back reference; comp lost its part.
  auto child_atom = access_->GetAtom(*child);
  EXPECT_FALSE(child_atom->attrs[4].Contains(Value::Ref(*parent)));
  auto comp_atom = access_->GetAtom(*c);
  EXPECT_TRUE(comp_atom->attrs[3].is_null());
  // Key is free again.
  EXPECT_TRUE(NewPart(1).ok());
}

TEST_F(AccessSystemTest, ReferencedAtomMustExist) {
  auto ghost = Tid(part_, 424242);
  auto st = access_->InsertAtom(comp_, {AttrValue{3, Value::Ref(ghost)}});
  EXPECT_TRUE(st.status().IsConstraint());
}

TEST_F(AccessSystemTest, FailedInsertRollsBackBackRefs) {
  auto p = NewPart(1);
  ASSERT_TRUE(NewPart(7).ok());
  // This insert installs a back ref into p, then fails on the ghost ref.
  auto ghost = Tid(comp_, 99999);
  auto st = access_->InsertAtom(
      part_, {AttrValue{1, Value::Int(50)},
              AttrValue{3, Value::List({Value::Ref(*p)})},
              AttrValue{5, Value::List({Value::Ref(ghost)})}});
  EXPECT_FALSE(st.ok());
  auto p_atom = access_->GetAtom(*p);
  EXPECT_TRUE(p_atom->attrs[4].is_null() || p_atom->attrs[4].elems().empty())
      << "rolled-back insert must not leave a dangling back reference";
}

TEST_F(AccessSystemTest, CardinalityMaxEnforcedEagerly) {
  auto c = NewComp(1.0, 1, kNullTid);
  ASSERT_TRUE(c.ok());
  auto st = access_->ModifyAtom(
      *c, {AttrValue{4, Value::List({Value::String("a"), Value::String("b"),
                                     Value::String("c"), Value::String("d")})}});
  EXPECT_TRUE(st.IsConstraint());
}

TEST_F(AccessSystemTest, MinCardinalityViaCheckIntegrity) {
  AtomTypeDef strict;
  Cardinality card;
  card.min = 2;
  strict.attrs.push_back({"s_id", TypeDesc::Identifier(), 0});
  strict.attrs.push_back(
      {"vals", TypeDesc::SetOf(TypeDesc::Integer(), card), 0});
  auto id = access_->CreateAtomType("strict", strict.attrs, {});
  ASSERT_TRUE(id.ok());
  auto tid = access_->InsertAtom(
      *id, {AttrValue{1, Value::List({Value::Int(1)})}});
  ASSERT_TRUE(tid.ok());  // eager insert allows building up
  EXPECT_TRUE(access_->CheckIntegrity(*tid).IsConstraint());
  ASSERT_TRUE(access_
                  ->ModifyAtom(*tid, {AttrValue{1, Value::List({Value::Int(1),
                                                                Value::Int(2)})}})
                  .ok());
  EXPECT_TRUE(access_->CheckIntegrity(*tid).ok());
}

TEST_F(AccessSystemTest, ProjectionReadsOnlySelectedAttrs) {
  auto p = NewPart(5);
  auto atom = access_->GetAtom(*p, {1});
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->attrs[1].AsInt(), 5);
  EXPECT_TRUE(atom->attrs[2].is_null());  // name projected away
}

// ---------------------------------------------------------------------------
// Partitions
// ---------------------------------------------------------------------------

TEST_F(AccessSystemTest, PartitionServesCoveredProjection) {
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(NewPart(i + 1).ok());
  auto sid = access_->CreatePartition("part_nos", "part", {"part_no"});
  ASSERT_TRUE(sid.ok());
  const uint64_t before = access_->stats().partition_reads.load();
  auto atoms = access_->AllAtoms(part_);
  auto atom = access_->GetAtom(atoms[3], {1});
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(access_->stats().partition_reads.load(), before + 1);
  EXPECT_EQ(atom->attrs[1].AsInt(), 4);
  // Uncovered projection falls back to the base record.
  auto full = access_->GetAtom(atoms[3], {1, 2});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(access_->stats().partition_reads.load(), before + 1);
  EXPECT_EQ(full->attrs[2].AsString(), "p4");
}

TEST_F(AccessSystemTest, PartitionSeesDeferredModifications) {
  auto p = NewPart(1);
  auto sid = access_->CreatePartition("part_nos", "part", {"part_no"});
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(access_->ModifyAtom(*p, {AttrValue{1, Value::Int(77)}}).ok());
  EXPECT_GT(access_->PendingCount(), 0u);  // propagation deferred
  auto atom = access_->GetAtom(*p, {1});   // read drains first
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->attrs[1].AsInt(), 77);
}

// ---------------------------------------------------------------------------
// Deferred update
// ---------------------------------------------------------------------------

TEST_F(AccessSystemTest, DeferredQueueGrowsAndDrains) {
  auto sid = access_->CreateSortOrder("parts_by_no", "part", {"part_no"});
  ASSERT_TRUE(sid.ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(NewPart(i + 1).ok());
  EXPECT_EQ(access_->PendingCount(), 10u);
  ASSERT_TRUE(access_->DrainAll().ok());
  EXPECT_EQ(access_->PendingCount(), 0u);
  EXPECT_GE(access_->stats().deferred_applied.load(), 10u);
  // Sort order has all entries.
  BTree* tree = access_->BTreeFor(*sid);
  auto count = tree->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 10u);
}

TEST_F(AccessSystemTest, ImmediateModeAppliesInline) {
  AccessOptions opts;
  opts.defer_updates = false;
  ResetDb(opts);
  auto sid = access_->CreateSortOrder("parts_by_no", "part", {"part_no"});
  ASSERT_TRUE(sid.ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(NewPart(i + 1).ok());
  EXPECT_EQ(access_->PendingCount(), 0u);
  BTree* tree = access_->BTreeFor(*sid);
  auto count = tree->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 5u);
}

TEST_F(AccessSystemTest, DeferredDeleteCleansSortOrder) {
  auto sid = access_->CreateSortOrder("parts_by_no", "part", {"part_no"});
  auto p = NewPart(1);
  ASSERT_TRUE(access_->DeleteAtom(*p).ok());
  ASSERT_TRUE(access_->DrainAll().ok());
  BTree* tree = access_->BTreeFor(*sid);
  auto count = tree->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

// ---------------------------------------------------------------------------
// Atom clusters
// ---------------------------------------------------------------------------

TEST_F(AccessSystemTest, ClusterMaterializesAndReads) {
  auto p = NewPart(1);
  auto c1 = NewComp(1.0, 1, *p);
  auto c2 = NewComp(2.0, 2, *p);
  auto cid = access_->CreateAtomClusterType("part_cluster", "part", {"comps"});
  ASSERT_TRUE(cid.ok()) << cid.status().ToString();
  auto image = access_->ReadCluster(*cid, *p);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image->characteristic.tid, *p);
  ASSERT_EQ(image->groups.size(), 1u);
  EXPECT_EQ(image->groups[0].first, comp_);
  EXPECT_EQ(image->groups[0].second.size(), 2u);
  (void)c1;
  (void)c2;
}

TEST_F(AccessSystemTest, ClusterFollowsMemberModification) {
  auto p = NewPart(1);
  auto c = NewComp(1.0, 1, *p);
  auto cid = access_->CreateAtomClusterType("part_cluster", "part", {"comps"});
  ASSERT_TRUE(cid.ok());
  ASSERT_TRUE(access_->ModifyAtom(*c, {AttrValue{2, Value::Int(42)}}).ok());
  auto image = access_->ReadCluster(*cid, *p);  // drains pending rebuild
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->groups[0].second[0].attrs[2].AsInt(), 42);
}

TEST_F(AccessSystemTest, ClusterFollowsMembershipChange) {
  auto p = NewPart(1);
  auto c1 = NewComp(1.0, 1, *p);
  auto cid = access_->CreateAtomClusterType("part_cluster", "part", {"comps"});
  ASSERT_TRUE(cid.ok());
  auto c2 = NewComp(2.0, 2, *p);  // joins the cluster via back-ref install
  auto image = access_->ReadCluster(*cid, *p);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->groups[0].second.size(), 2u);
  ASSERT_TRUE(access_->DeleteAtom(*c1).ok());
  auto image2 = access_->ReadCluster(*cid, *p);
  ASSERT_TRUE(image2.ok());
  ASSERT_EQ(image2->groups[0].second.size(), 1u);
  EXPECT_EQ(image2->groups[0].second[0].tid, *c2);
}

TEST_F(AccessSystemTest, FindCoveringCluster) {
  auto cid = access_->CreateAtomClusterType("part_cluster", "part", {"comps"});
  ASSERT_TRUE(cid.ok());
  EXPECT_NE(access_->FindCoveringCluster(part_, {comp_}), nullptr);
  EXPECT_EQ(access_->FindCoveringCluster(comp_, {part_}), nullptr);
  // A cluster over subs does not cover comp.
  EXPECT_EQ(access_->FindCoveringCluster(part_, {comp_})->id, *cid);
}

TEST_F(AccessSystemTest, DropStructureCleansUp) {
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(NewPart(i + 1).ok());
  auto sid = access_->CreatePartition("part_nos", "part", {"part_no"});
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(access_->DropStructure("part_nos").ok());
  EXPECT_EQ(access_->catalog().FindStructure("part_nos"), nullptr);
  // Address entries purged.
  for (const Tid& t : access_->AllAtoms(part_)) {
    EXPECT_FALSE(access_->addresses().Lookup(t, *sid).ok());
  }
  EXPECT_TRUE(access_->DropStructure("part_nos").IsNotFound());
}

TEST_F(AccessSystemTest, BackfillCoversExistingAtoms) {
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(NewPart(i + 1).ok());
  auto sid = access_->CreateSortOrder("by_no", "part", {"part_no"});
  ASSERT_TRUE(sid.ok());
  BTree* tree = access_->BTreeFor(*sid);
  auto count = tree->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 8u);
}

TEST_F(AccessSystemTest, PersistAndReopen) {
  auto p = NewPart(1);
  auto c = NewComp(3.5, 9, *p);
  auto sid = access_->CreatePartition("part_nos", "part", {"part_no"});
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(access_->Flush().ok());

  // A second AccessSystem over the same storage must see everything.
  AccessSystem reopened(storage_.get(), AccessOptions{});
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_NE(reopened.catalog().FindAtomType("part"), nullptr);
  EXPECT_NE(reopened.catalog().FindStructure("part_nos"), nullptr);
  auto atom = reopened.GetAtom(*p);
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->attrs[1].AsInt(), 1);
  EXPECT_TRUE(atom->attrs[5].Contains(Value::Ref(*c)));
  // Fresh surrogates do not collide with pre-reopen ones.
  auto p2 = reopened.InsertAtom(part_, {AttrValue{1, Value::Int(2)}});
  ASSERT_TRUE(p2.ok());
  EXPECT_NE(p2->seq, p->seq);
}

TEST_F(AccessSystemTest, DropAtomTypeRemovesEverything) {
  auto p = NewPart(1);
  (void)p;
  ASSERT_TRUE(access_->CreatePartition("part_nos", "part", {"part_no"}).ok());
  ASSERT_TRUE(access_->DropAtomType("part").ok());
  EXPECT_EQ(access_->catalog().FindAtomType("part"), nullptr);
  EXPECT_EQ(access_->catalog().FindStructure("part_nos"), nullptr);
  EXPECT_EQ(access_->AtomCount(part_), 0u);
}

}  // namespace
}  // namespace prima::access
