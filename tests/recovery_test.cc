#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/prima.h"
#include "recovery/crash_device.h"
#include "recovery/log_record.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal_writer.h"
#include "storage/block_device.h"
#include "storage/page.h"
#include "storage/storage_system.h"
#include "workloads/brep.h"

namespace prima::recovery {
namespace {

using access::AttrValue;
using access::Tid;
using access::Value;
using storage::MemoryBlockDevice;
using storage::PageHeader;
using util::Slice;
using util::Status;

// ---------------------------------------------------------------------------
// LogRecord framing
// ---------------------------------------------------------------------------

TEST(LogRecordTest, RoundTripAllTypes) {
  std::vector<LogRecord> records;
  records.push_back(LogRecord::Begin(7));
  records.push_back(LogRecord::Commit(7));
  records.push_back(LogRecord::Abort(9));
  {
    LogRecord r;
    r.type = LogRecordType::kPageRedo;
    r.txn_id = 3;
    r.segment = 12;
    r.page = 34;
    r.page_size = 4096;
    r.ranges.push_back({40, "hello"});
    r.ranges.push_back({200, std::string(300, 'x')});
    records.push_back(r);
  }
  records.push_back(LogRecord::SegMeta(5, 3, 17, 4));
  {
    LogRecord r;
    r.type = LogRecordType::kAtomUndo;
    r.txn_id = 11;
    r.op = AtomOp::kModify;
    r.clr = true;
    r.tid = Tid(2, 99).Pack();
    r.rid = 0xDEADBEEF;
    r.before = "before-image-bytes";
    records.push_back(r);
  }
  records.push_back(LogRecord::Compensation(11, {100, 180, 260, 300}));
  {
    LogRecord r;
    r.type = LogRecordType::kCheckpointBegin;
    r.active_txns = {{3, 100}, {4, 220}};
    r.undo_low_lsn = 100;
    records.push_back(r);
  }
  {
    LogRecord r;
    r.type = LogRecordType::kCheckpointEnd;
    records.push_back(r);
  }

  for (const LogRecord& rec : records) {
    std::string bytes;
    rec.EncodeInto(&bytes);
    auto back = LogRecord::Decode(Slice(bytes));
    ASSERT_TRUE(back.ok()) << bytes.size();
    EXPECT_EQ(back->type, rec.type);
    EXPECT_EQ(back->txn_id, rec.txn_id);
    EXPECT_EQ(back->segment, rec.segment);
    EXPECT_EQ(back->page, rec.page);
    EXPECT_EQ(back->ranges.size(), rec.ranges.size());
    EXPECT_EQ(back->op, rec.op);
    EXPECT_EQ(back->clr, rec.clr);
    EXPECT_EQ(back->tid, rec.tid);
    EXPECT_EQ(back->rid, rec.rid);
    EXPECT_EQ(back->before, rec.before);
    EXPECT_EQ(back->undo_count, rec.undo_count);
    EXPECT_EQ(back->comp_lsns, rec.comp_lsns);
    EXPECT_EQ(back->active_txns, rec.active_txns);
    EXPECT_EQ(back->undo_low_lsn, rec.undo_low_lsn);
  }
}

TEST(LogRecordTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(LogRecord::Decode(Slice("")).ok());
  EXPECT_FALSE(LogRecord::Decode(Slice("\xFFgarbage")).ok());
  std::string truncated;
  LogRecord::SegMeta(5, 3, 17, 4).EncodeInto(&truncated);
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(LogRecord::Decode(Slice(truncated)).ok());
}

TEST(LogRecordTest, DiffPageImagesSkipsChecksumAndLsn) {
  std::string before(512, 'a');
  std::string after = before;
  // Changes in the excluded fields only: no ranges.
  after[0] = 'z';                     // checksum field
  after[25] = 'z';                    // page-LSN field
  EXPECT_TRUE(DiffPageImages(before.data(), after.data(), 512).empty());

  after[100] = 'b';
  after[101] = 'c';
  after[400] = 'd';
  auto ranges = DiffPageImages(before.data(), after.data(), 512);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].offset, 100u);
  EXPECT_EQ(ranges[0].bytes, "bc");
  EXPECT_EQ(ranges[1].offset, 400u);
  EXPECT_EQ(ranges[1].bytes, "d");
}

TEST(LogRecordTest, DiffPageImagesCoalescesNearbyRuns) {
  std::string before(512, 'a');
  std::string after = before;
  after[100] = 'x';
  after[104] = 'y';  // 3 unchanged bytes between: cheaper as one range
  auto ranges = DiffPageImages(before.data(), after.data(), 512);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].offset, 100u);
  EXPECT_EQ(ranges[0].bytes.size(), 5u);
}

// ---------------------------------------------------------------------------
// WalWriter: append / force / scan / reopen
// ---------------------------------------------------------------------------

TEST(WalWriterTest, AppendForceScanRoundTrip) {
  auto device = std::make_shared<MemoryBlockDevice>();
  WalWriter wal(device.get());
  ASSERT_TRUE(wal.Open().ok());

  std::vector<uint64_t> lsns;
  for (uint64_t t = 1; t <= 5; ++t) {
    lsns.push_back(wal.Append(LogRecord::Begin(t)));
  }
  EXPECT_EQ(wal.durable_lsn(), 0u);  // nothing forced yet
  ASSERT_TRUE(wal.ForceUpTo(lsns.back()).ok());
  EXPECT_GE(wal.durable_lsn(), lsns.back());
  // Group commit: five records, one force batch.
  EXPECT_EQ(wal.stats().forces.load(), 1u);
  EXPECT_EQ(wal.stats().records_forced.load(), 5u);
  EXPECT_GT(wal.stats().GroupCommitFactor(), 4.0);

  // A second writer on the same device recovers the same stream.
  WalWriter reader(device.get());
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.append_lsn(), wal.append_lsn());
  std::vector<uint64_t> seen;
  ASSERT_TRUE(reader
                  .Scan(0,
                        [&](const LogRecord& rec) {
                          EXPECT_EQ(rec.type, LogRecordType::kBegin);
                          seen.push_back(rec.txn_id);
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(seen, std::vector<uint64_t>({1, 2, 3, 4, 5}));
}

TEST(WalWriterTest, RecordsSpanBlocks) {
  auto device = std::make_shared<MemoryBlockDevice>();
  WalWriter wal(device.get());
  ASSERT_TRUE(wal.Open().ok());

  // One record much larger than a log block.
  LogRecord big;
  big.type = LogRecordType::kAtomUndo;
  big.txn_id = 1;
  big.tid = 42;
  big.before = std::string(3 * WalWriter::kBlockSize, 'q');
  wal.Append(big);
  wal.Append(LogRecord::Commit(1));
  ASSERT_TRUE(wal.ForceAll().ok());

  WalWriter reader(device.get());
  ASSERT_TRUE(reader.Open().ok());
  int count = 0;
  ASSERT_TRUE(reader
                  .Scan(0,
                        [&](const LogRecord& rec) {
                          ++count;
                          if (rec.type == LogRecordType::kAtomUndo) {
                            EXPECT_EQ(rec.before, big.before);
                          }
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(count, 2);
}

TEST(WalWriterTest, TornForceTruncatesAtLastCompleteRecord) {
  auto base = std::make_shared<MemoryBlockDevice>();
  auto crash = std::make_shared<CrashingBlockDevice>(base);
  WalWriter wal(crash.get());
  ASSERT_TRUE(wal.Open().ok());

  for (uint64_t t = 1; t <= 3; ++t) wal.Append(LogRecord::Begin(t));
  ASSERT_TRUE(wal.ForceAll().ok());
  const uint64_t durable_end = wal.append_lsn();

  LogRecord big;
  big.type = LogRecordType::kAtomUndo;
  big.txn_id = 4;
  big.before = std::string(3 * WalWriter::kBlockSize, 'q');
  wal.Append(big);
  crash->SetWriteBudget(1);  // the chained force tears after one block
  ASSERT_TRUE(wal.ForceAll().ok());  // the device lies, as crashed disks do
  EXPECT_GT(crash->dropped_blocks(), 0u);

  // Reopen on the underlying bytes: the torn record fails its CRC framing
  // and the log ends at the last complete record.
  WalWriter reader(base.get());
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.append_lsn(), durable_end);
  int count = 0;
  ASSERT_TRUE(reader
                  .Scan(0,
                        [&](const LogRecord&) {
                          ++count;
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST(WalWriterTest, MasterRecordSurvivesReopen) {
  auto device = std::make_shared<MemoryBlockDevice>();
  WalWriter wal(device.get());
  ASSERT_TRUE(wal.Open().ok());
  const uint64_t lsn = wal.Append(LogRecord::Begin(1));
  ASSERT_TRUE(wal.ForceAll().ok());
  ASSERT_TRUE(wal.WriteMaster(lsn).ok());

  WalWriter reader(device.get());
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.checkpoint_lsn(), lsn);
}

// ---------------------------------------------------------------------------
// Storage integration: page-LSN stamping and the WAL rule
// ---------------------------------------------------------------------------

TEST(WalRuleTest, PageWritesAreLoggedAndForcedBeforeWriteback) {
  auto base = std::make_shared<MemoryBlockDevice>();
  auto storage = std::make_unique<storage::StorageSystem>(
      std::make_unique<CrashingBlockDevice>(base), storage::StorageOptions{});
  ASSERT_TRUE(storage->Open().ok());
  WalWriter wal(&storage->device());
  ASSERT_TRUE(wal.Open().ok());
  storage->SetWal(&wal);

  ASSERT_TRUE(storage->CreateSegment(1, storage::PageSize::k4K).ok());
  uint64_t page_lsn = 0;
  {
    auto guard = storage->NewPage(1, storage::PageType::kSlotted);
    ASSERT_TRUE(guard.ok());
    char* data = guard->mutable_data();
    data[100] = 'x';
  }
  {
    auto guard = storage->FixPage(1, 1, storage::LatchMode::kShared);
    ASSERT_TRUE(guard.ok());
    page_lsn = PageHeader::lsn(guard->data());
  }
  EXPECT_GT(page_lsn, 0u) << "exclusive guard must stamp the page-LSN";
  EXPECT_GT(page_lsn, wal.durable_lsn()) << "log should still be buffered";

  // Write-back (flush) must force the log first — afterwards the durable
  // LSN covers the page-LSN of everything on the device.
  ASSERT_TRUE(storage->Flush().ok());
  EXPECT_GE(wal.durable_lsn(), page_lsn);

  storage->SetWal(nullptr);
}

// ---------------------------------------------------------------------------
// Full-stack crash / recovery via Prima
// ---------------------------------------------------------------------------

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { base_ = std::make_shared<MemoryBlockDevice>(); }

  /// Open a database incarnation over the shared device bytes.
  std::unique_ptr<core::Prima> OpenDb() {
    core::PrimaOptions options;
    crash_ = std::make_shared<CrashingBlockDevice>(base_);
    options.device = crash_;
    auto db = core::Prima::Open(std::move(options));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(*db);
  }

  /// Pull the plug: every write from now on (including destructor flushes)
  /// is silently dropped.
  void Crash(std::unique_ptr<core::Prima>* db) {
    crash_->CrashNow();
    db->reset();
  }

  util::Result<Tid> InsertSolid(core::Transaction* txn,
                                const access::AtomTypeDef* def, int64_t no) {
    return txn->InsertAtom(
        def->id, {AttrValue{def->FindAttr("solid_no")->id, Value::Int(no)},
                  AttrValue{def->FindAttr("description")->id,
                            Value::String("s" + std::to_string(no))}});
  }

  std::shared_ptr<MemoryBlockDevice> base_;
  std::shared_ptr<CrashingBlockDevice> crash_;
};

TEST_F(CrashRecoveryTest, CommittedTransactionsSurviveCrash) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());  // checkpoint: DDL durable
  const auto* solid = db->access().catalog().FindAtomType("solid");
  ASSERT_NE(solid, nullptr);

  std::vector<Tid> tids;
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  for (int64_t i = 1; i <= 3; ++i) {
    auto tid = InsertSolid(*txn, solid, i);
    ASSERT_TRUE(tid.ok()) << tid.status().ToString();
    tids.push_back(*tid);
  }
  ASSERT_TRUE((*txn)->Commit().ok());

  auto txn2 = db->Begin();
  ASSERT_TRUE(
      (*txn2)
          ->ModifyAtom(tids[0], {AttrValue{solid->FindAttr("description")->id,
                                           Value::String("updated")}})
          .ok());
  ASSERT_TRUE((*txn2)->Commit().ok());

  Crash(&db);

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  const auto* solid2 = db2->access().catalog().FindAtomType("solid");
  ASSERT_NE(solid2, nullptr);
  EXPECT_EQ(db2->access().AtomCount(solid2->id), 3u);
  for (const Tid& tid : tids) {
    auto atom = db2->access().GetAtom(tid);
    ASSERT_TRUE(atom.ok()) << atom.status().ToString();
  }
  auto updated = db2->access().GetAtom(tids[0]);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->attrs[solid2->FindAttr("description")->id].AsString(),
            "updated");
  // The recovered database accepts new work.
  auto set = db2->Query("SELECT ALL FROM solid");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 3u);
}

TEST_F(CrashRecoveryTest, UncommittedTransactionRolledBackOnRecovery) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto* solid = db->access().catalog().FindAtomType("solid");

  auto committed = db->Begin();
  auto keep = InsertSolid(*committed, solid, 1);
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE((*committed)->Commit().ok());

  // The loser: inserts and modifies, never commits. Force its log records
  // onto the device so recovery actually has something to undo (a purely
  // buffered loser simply evaporates).
  auto loser = db->Begin();
  auto lost = InsertSolid(*loser, solid, 2);
  ASSERT_TRUE(lost.ok());
  ASSERT_TRUE((*loser)
                  ->ModifyAtom(*keep, {AttrValue{solid->FindAttr("description")->id,
                                                 Value::String("dirty")}})
                  .ok());
  ASSERT_TRUE(db->wal()->ForceAll().ok());
  // Some of the loser's pages may even reach the device: flush storage
  // directly (bypassing the checkpoint) to simulate eviction pressure.
  ASSERT_TRUE(db->storage().Flush().ok());

  Crash(&db);

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  EXPECT_GE(db2->recovery()->stats().loser_txns, 1u);
  const auto* solid2 = db2->access().catalog().FindAtomType("solid");
  EXPECT_EQ(db2->access().AtomCount(solid2->id), 1u);
  EXPECT_FALSE(db2->access().AtomExists(*lost));
  auto kept = db2->access().GetAtom(*keep);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->attrs[solid2->FindAttr("description")->id].AsString(), "s1")
      << "loser's modify must be rolled back";
}

TEST_F(CrashRecoveryTest, SurvivesTornFlush) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto* solid = db->access().catalog().FindAtomType("solid");

  std::vector<Tid> tids;
  for (int64_t i = 1; i <= 8; ++i) {
    auto txn = db->Begin();
    auto tid = InsertSolid(*txn, solid, i);
    ASSERT_TRUE(tid.ok());
    tids.push_back(*tid);
    ASSERT_TRUE((*txn)->Commit().ok());
  }

  // The flush dies a few blocks in: some pages land, some don't, the
  // checkpoint's master record never commits. Exactly the torn multi-page
  // state WAL recovery exists for.
  crash_->SetWriteBudget(3);
  (void)db->Flush();  // reports success; the device dropped most of it
  Crash(&db);

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  const auto* solid2 = db2->access().catalog().FindAtomType("solid");
  EXPECT_EQ(db2->access().AtomCount(solid2->id), 8u);
  for (size_t i = 0; i < tids.size(); ++i) {
    auto atom = db2->access().GetAtom(tids[i]);
    ASSERT_TRUE(atom.ok()) << "solid " << i << ": " << atom.status().ToString();
    EXPECT_EQ(atom->attrs[solid2->FindAttr("solid_no")->id].AsInt(),
              static_cast<int64_t>(i + 1));
  }
}

TEST_F(CrashRecoveryTest, RuntimeAbortStaysAbortedAfterCrash) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto* solid = db->access().catalog().FindAtomType("solid");

  auto txn = db->Begin();
  auto tid = InsertSolid(*txn, solid, 1);
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE((*txn)->Abort().ok());  // compensated + CLR-logged
  ASSERT_TRUE(db->wal()->ForceAll().ok());

  Crash(&db);

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  const auto* solid2 = db2->access().catalog().FindAtomType("solid");
  EXPECT_EQ(db2->access().AtomCount(solid2->id), 0u);
  EXPECT_FALSE(db2->access().AtomExists(*tid));
}

TEST_F(CrashRecoveryTest, RecoveryIsIdempotentAcrossRestarts) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto* solid = db->access().catalog().FindAtomType("solid");
  auto txn = db->Begin();
  ASSERT_TRUE(InsertSolid(*txn, solid, 1).ok());
  ASSERT_TRUE((*txn)->Commit().ok());
  Crash(&db);

  // First recovery, then crash again immediately (its post-recovery
  // checkpoint dropped), then recover once more.
  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  Crash(&db2);
  auto db3 = OpenDb();
  ASSERT_NE(db3, nullptr);
  const auto* solid3 = db3->access().catalog().FindAtomType("solid");
  EXPECT_EQ(db3->access().AtomCount(solid3->id), 1u);
}

TEST_F(CrashRecoveryTest, InterleavedChildAbortCompensatesExactRecords) {
  // Parent works while a child is active, the child aborts, the parent
  // never commits, the process crashes. Restart must undo the PARENT's
  // operation but not re-wind the child's (already compensated) — the
  // compensation record names exact LSNs, not a count off the tail.
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto* solid = db->access().catalog().FindAtomType("solid");

  auto setup = db->Begin();
  auto base = InsertSolid(*setup, solid, 1);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*setup)->Commit().ok());

  auto parent = db->Begin();
  auto child_or = (*parent)->BeginChild();
  ASSERT_TRUE(child_or.ok());
  auto child_tid = InsertSolid(*child_or, solid, 2);  // child op C1
  ASSERT_TRUE(child_tid.ok());
  ASSERT_TRUE((*parent)
                  ->ModifyAtom(*base, {AttrValue{solid->FindAttr("description")->id,
                                                 Value::String("parent-dirty")}})
                  .ok());  // parent op P1, interleaved
  ASSERT_TRUE((*child_or)->Abort().ok());  // compensates C1 only
  ASSERT_TRUE(db->wal()->ForceAll().ok());

  Crash(&db);  // parent never committed -> loser

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  const auto* solid2 = db2->access().catalog().FindAtomType("solid");
  EXPECT_EQ(db2->access().AtomCount(solid2->id), 1u);
  EXPECT_FALSE(db2->access().AtomExists(*child_tid));
  auto kept = db2->access().GetAtom(*base);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->attrs[solid2->FindAttr("description")->id].AsString(), "s1")
      << "parent's interleaved modify must be undone at restart";
}

TEST_F(CrashRecoveryTest, CheckpointShortensRedo) {
  auto run = [this](bool mid_checkpoint) -> uint64_t {
    base_ = std::make_shared<MemoryBlockDevice>();  // fresh database
    auto db = OpenDb();
    workloads::BrepWorkload brep(db.get());
    EXPECT_TRUE(brep.CreateSchema().ok());
    EXPECT_TRUE(db->Flush().ok());
    const auto* solid = db->access().catalog().FindAtomType("solid");
    for (int64_t i = 1; i <= 10; ++i) {
      auto txn = db->Begin();
      EXPECT_TRUE(InsertSolid(*txn, solid, i).ok());
      EXPECT_TRUE((*txn)->Commit().ok());
      if (mid_checkpoint && i == 8) {
        EXPECT_TRUE(db->Flush().ok());  // fuzzy checkpoint
      }
    }
    Crash(&db);
    auto db2 = OpenDb();
    EXPECT_NE(db2, nullptr);
    const auto* solid2 = db2->access().catalog().FindAtomType("solid");
    EXPECT_EQ(db2->access().AtomCount(solid2->id), 10u);
    return db2->recovery()->stats().records_scanned;
  };

  const uint64_t without_ckpt = run(false);
  const uint64_t with_ckpt = run(true);
  EXPECT_GT(without_ckpt, 0u);
  EXPECT_LT(with_ckpt, without_ckpt)
      << "a checkpoint must shorten the restart scan";
}

}  // namespace
}  // namespace prima::recovery
