#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/prima.h"
#include "recovery/backup.h"
#include "recovery/checkpoint_daemon.h"
#include "recovery/crash_device.h"
#include "recovery/log_archiver.h"
#include "recovery/log_record.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal_writer.h"
#include "storage/block_device.h"
#include "storage/page.h"
#include "storage/storage_system.h"
#include "workloads/brep.h"

namespace prima::recovery {
namespace {

using access::AttrValue;
using access::Tid;
using access::Value;
using storage::MemoryBlockDevice;
using storage::PageHeader;
using util::Slice;
using util::Status;

// ---------------------------------------------------------------------------
// LogRecord framing
// ---------------------------------------------------------------------------

TEST(LogRecordTest, RoundTripAllTypes) {
  std::vector<LogRecord> records;
  records.push_back(LogRecord::Begin(7));
  records.push_back(LogRecord::Commit(7));
  records.push_back(LogRecord::Abort(9));
  {
    LogRecord r;
    r.type = LogRecordType::kPageRedo;
    r.txn_id = 3;
    r.segment = 12;
    r.page = 34;
    r.page_size = 4096;
    r.ranges.push_back({40, "hello"});
    r.ranges.push_back({200, std::string(300, 'x')});
    records.push_back(r);
  }
  records.push_back(LogRecord::SegMeta(5, 3, 17, 4));
  {
    LogRecord r;
    r.type = LogRecordType::kAtomUndo;
    r.txn_id = 11;
    r.op = AtomOp::kModify;
    r.clr = true;
    r.tid = Tid(2, 99).Pack();
    r.rid = 0xDEADBEEF;
    r.before = "before-image-bytes";
    records.push_back(r);
  }
  records.push_back(LogRecord::Compensation(11, {100, 180, 260, 300}));
  {
    LogRecord r;
    r.type = LogRecordType::kCheckpointBegin;
    r.active_txns = {{3, 100}, {4, 220}};
    r.undo_low_lsn = 100;
    records.push_back(r);
  }
  {
    LogRecord r;
    r.type = LogRecordType::kCheckpointEnd;
    records.push_back(r);
  }

  for (const LogRecord& rec : records) {
    std::string bytes;
    rec.EncodeInto(&bytes);
    auto back = LogRecord::Decode(Slice(bytes));
    ASSERT_TRUE(back.ok()) << bytes.size();
    EXPECT_EQ(back->type, rec.type);
    EXPECT_EQ(back->txn_id, rec.txn_id);
    EXPECT_EQ(back->segment, rec.segment);
    EXPECT_EQ(back->page, rec.page);
    EXPECT_EQ(back->ranges.size(), rec.ranges.size());
    EXPECT_EQ(back->op, rec.op);
    EXPECT_EQ(back->clr, rec.clr);
    EXPECT_EQ(back->tid, rec.tid);
    EXPECT_EQ(back->rid, rec.rid);
    EXPECT_EQ(back->before, rec.before);
    EXPECT_EQ(back->undo_count, rec.undo_count);
    EXPECT_EQ(back->comp_lsns, rec.comp_lsns);
    EXPECT_EQ(back->active_txns, rec.active_txns);
    EXPECT_EQ(back->undo_low_lsn, rec.undo_low_lsn);
  }
}

TEST(LogRecordTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(LogRecord::Decode(Slice("")).ok());
  EXPECT_FALSE(LogRecord::Decode(Slice("\xFFgarbage")).ok());
  std::string truncated;
  LogRecord::SegMeta(5, 3, 17, 4).EncodeInto(&truncated);
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(LogRecord::Decode(Slice(truncated)).ok());
}

TEST(LogRecordTest, DiffPageImagesSkipsChecksumAndLsn) {
  std::string before(512, 'a');
  std::string after = before;
  // Changes in the excluded fields only: no ranges.
  after[0] = 'z';                     // checksum field
  after[25] = 'z';                    // page-LSN field
  EXPECT_TRUE(DiffPageImages(before.data(), after.data(), 512).empty());

  after[100] = 'b';
  after[101] = 'c';
  after[400] = 'd';
  auto ranges = DiffPageImages(before.data(), after.data(), 512);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].offset, 100u);
  EXPECT_EQ(ranges[0].bytes, "bc");
  EXPECT_EQ(ranges[1].offset, 400u);
  EXPECT_EQ(ranges[1].bytes, "d");
}

TEST(LogRecordTest, DiffPageImagesCoalescesNearbyRuns) {
  std::string before(512, 'a');
  std::string after = before;
  after[100] = 'x';
  after[104] = 'y';  // 3 unchanged bytes between: cheaper as one range
  auto ranges = DiffPageImages(before.data(), after.data(), 512);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].offset, 100u);
  EXPECT_EQ(ranges[0].bytes.size(), 5u);
}

// ---------------------------------------------------------------------------
// WalWriter: append / force / scan / reopen
// ---------------------------------------------------------------------------

TEST(WalWriterTest, AppendForceScanRoundTrip) {
  auto device = std::make_shared<MemoryBlockDevice>();
  WalWriter wal(device.get());
  ASSERT_TRUE(wal.Open().ok());

  std::vector<uint64_t> lsns;
  for (uint64_t t = 1; t <= 5; ++t) {
    lsns.push_back(wal.Append(LogRecord::Begin(t)));
  }
  EXPECT_EQ(wal.durable_lsn(), 0u);  // nothing forced yet
  ASSERT_TRUE(wal.ForceUpTo(lsns.back()).ok());
  EXPECT_GE(wal.durable_lsn(), lsns.back());
  // Group commit: five records, one force batch.
  EXPECT_EQ(wal.stats().forces.load(), 1u);
  EXPECT_EQ(wal.stats().records_forced.load(), 5u);
  EXPECT_GT(wal.stats().GroupCommitFactor(), 4.0);

  // A second writer on the same device recovers the same stream.
  WalWriter reader(device.get());
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.append_lsn(), wal.append_lsn());
  std::vector<uint64_t> seen;
  ASSERT_TRUE(reader
                  .Scan(0,
                        [&](const LogRecord& rec) {
                          EXPECT_EQ(rec.type, LogRecordType::kBegin);
                          seen.push_back(rec.txn_id);
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(seen, std::vector<uint64_t>({1, 2, 3, 4, 5}));
}

TEST(WalWriterTest, RecordsSpanBlocks) {
  auto device = std::make_shared<MemoryBlockDevice>();
  WalWriter wal(device.get());
  ASSERT_TRUE(wal.Open().ok());

  // One record much larger than a log block.
  LogRecord big;
  big.type = LogRecordType::kAtomUndo;
  big.txn_id = 1;
  big.tid = 42;
  big.before = std::string(3 * WalWriter::kBlockSize, 'q');
  wal.Append(big);
  wal.Append(LogRecord::Commit(1));
  ASSERT_TRUE(wal.ForceAll().ok());

  WalWriter reader(device.get());
  ASSERT_TRUE(reader.Open().ok());
  int count = 0;
  ASSERT_TRUE(reader
                  .Scan(0,
                        [&](const LogRecord& rec) {
                          ++count;
                          if (rec.type == LogRecordType::kAtomUndo) {
                            EXPECT_EQ(rec.before, big.before);
                          }
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(count, 2);
}

TEST(WalWriterTest, TornForceTruncatesAtLastCompleteRecord) {
  auto base = std::make_shared<MemoryBlockDevice>();
  auto crash = std::make_shared<CrashingBlockDevice>(base);
  WalWriter wal(crash.get());
  ASSERT_TRUE(wal.Open().ok());

  for (uint64_t t = 1; t <= 3; ++t) wal.Append(LogRecord::Begin(t));
  ASSERT_TRUE(wal.ForceAll().ok());
  const uint64_t durable_end = wal.append_lsn();

  LogRecord big;
  big.type = LogRecordType::kAtomUndo;
  big.txn_id = 4;
  big.before = std::string(3 * WalWriter::kBlockSize, 'q');
  wal.Append(big);
  crash->SetWriteBudget(1);  // the chained force tears after one block
  ASSERT_TRUE(wal.ForceAll().ok());  // the device lies, as crashed disks do
  EXPECT_GT(crash->dropped_blocks(), 0u);

  // Reopen on the underlying bytes: the torn record fails its CRC framing
  // and the log ends at the last complete record.
  WalWriter reader(base.get());
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.append_lsn(), durable_end);
  int count = 0;
  ASSERT_TRUE(reader
                  .Scan(0,
                        [&](const LogRecord&) {
                          ++count;
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(count, 3);
}

TEST(WalWriterTest, CommitForceSharesOneForceAcrossCommitters) {
  auto device = std::make_shared<MemoryBlockDevice>();
  WalOptions opts;
  opts.commit_delay_us = 200000;  // generous window: scheduling-proof
  WalWriter wal(device.get(), opts);
  ASSERT_TRUE(wal.Open().ok());

  // Both commit records are appended before either committer forces: any
  // interleaving of the two CommitForce calls must share one device write.
  const uint64_t lsn1 = wal.Append(LogRecord::Commit(1));
  const uint64_t lsn2 = wal.Append(LogRecord::Commit(2));
  Status st1, st2;
  std::thread t1([&] { st1 = wal.CommitForce(lsn1); });
  std::thread t2([&] { st2 = wal.CommitForce(lsn2); });
  t1.join();
  t2.join();
  ASSERT_TRUE(st1.ok());
  ASSERT_TRUE(st2.ok());
  EXPECT_EQ(wal.stats().forces.load(), 1u);
  EXPECT_EQ(wal.stats().commits_forced.load(), 2u);
  EXPECT_DOUBLE_EQ(wal.stats().CommitsPerForce(), 2.0);
  EXPECT_GE(wal.stats().commit_delay_waits.load(), 1u);
  EXPECT_GE(wal.durable_lsn(), lsn2);
}

/// MemoryBlockDevice whose fsync can be held open, to prove the force's
/// device I/O happens with the log mutex released.
class BlockingSyncDevice : public MemoryBlockDevice {
 public:
  util::Status Sync() override {
    std::unique_lock<std::mutex> lk(m_);
    if (!armed_) return util::Status::Ok();
    in_sync_ = true;
    cv_.notify_all();
    cv_.wait(lk, [&] { return released_; });
    return util::Status::Ok();
  }
  void Arm() {
    std::lock_guard<std::mutex> lk(m_);
    armed_ = true;
  }
  void WaitUntilInSync() {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [&] { return in_sync_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lk(m_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool armed_ = false;
  bool in_sync_ = false;
  bool released_ = false;
};

TEST(WalWriterTest, AppendersNeverBlockOnAnInFlightForce) {
  auto device = std::make_shared<BlockingSyncDevice>();
  WalWriter wal(device.get());
  ASSERT_TRUE(wal.Open().ok());

  const uint64_t lsn1 = wal.Append(LogRecord::Begin(1));
  device->Arm();
  Status force_st;
  std::thread forcer([&] { force_st = wal.ForceAll(); });
  device->WaitUntilInSync();  // the force is now stuck inside fsync ...

  // ... and appends must still go through (with the old ForceUpTo holding
  // mu_ across the device write, this line deadlocks the test).
  const uint64_t lsn2 = wal.Append(LogRecord::Begin(2));
  EXPECT_GT(lsn2, lsn1);

  device->Release();
  forcer.join();
  ASSERT_TRUE(force_st.ok());
  EXPECT_GE(wal.durable_lsn(), lsn1);
  EXPECT_LT(wal.durable_lsn(), wal.append_lsn())
      << "record 2 arrived after the batch";
  ASSERT_TRUE(wal.ForceAll().ok());
  EXPECT_GE(wal.durable_lsn(), lsn2);
}

namespace {
/// ~1000-byte filler record: with the force seal, one append+force cycle
/// consumes exactly one log block.
LogRecord FillerRecord(uint64_t id) {
  LogRecord r;
  r.type = LogRecordType::kAtomUndo;
  r.txn_id = id;
  r.tid = id;
  r.before = std::string(1000, 'x');
  return r;
}
}  // namespace

TEST(WalWriterTest, CircularLogWrapsAndScansAfterReopen) {
  auto device = std::make_shared<MemoryBlockDevice>();
  WalOptions opts;
  opts.max_bytes = 18 * WalWriter::kBlockSize;  // ring of 16 data blocks
  WalWriter wal(device.get(), opts);
  ASSERT_TRUE(wal.Open().ok());
  EXPECT_EQ(wal.capacity_bytes(), 16 * WalWriter::kBlockSize);

  // Append four rings' worth of records, checkpointing (master write +
  // truncation) every few blocks so the wrapped appends always land on
  // recycled blocks.
  uint64_t last_ckpt = 0;
  int records_since_ckpt = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    const uint64_t lsn = wal.Append(FillerRecord(i));
    ASSERT_TRUE(wal.ForceAll().ok()) << "i=" << i;
    records_since_ckpt++;
    if (i % 4 == 3) {
      ASSERT_TRUE(wal.WriteMaster(lsn, lsn).ok());
      last_ckpt = lsn;
      records_since_ckpt = 1;  // the checkpointed record itself stays live
    }
  }
  EXPECT_GE(wal.append_lsn(), 4 * wal.capacity_bytes()) << "log wrapped";
  EXPECT_LE(wal.StatsSnapshot().footprint_bytes, opts.max_bytes)
      << "circular log must not outgrow wal_max_bytes";

  // Reopen: geometry comes from the master record; the scan starts at the
  // checkpoint, sees exactly the live tail, and stops at the durable end
  // (stale previous-lap fragments fail their offset-seeded CRCs).
  WalWriter reader(device.get(), opts);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.checkpoint_lsn(), last_ckpt);
  EXPECT_EQ(reader.append_lsn(), wal.append_lsn());
  int count = 0;
  ASSERT_TRUE(reader
                  .Scan(reader.checkpoint_lsn(),
                        [&](const LogRecord&) {
                          ++count;
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(count, records_since_ckpt);

  // The reopened log keeps appending (and wrapping) where the old one left.
  const uint64_t lsn = reader.Append(FillerRecord(99));
  ASSERT_TRUE(reader.ForceAll().ok());
  EXPECT_GT(reader.durable_lsn(), lsn);
}

TEST(WalWriterTest, FullRingRefusesForcesUntilCheckpointTruncates) {
  auto device = std::make_shared<MemoryBlockDevice>();
  WalOptions opts;
  opts.max_bytes = 18 * WalWriter::kBlockSize;  // ring 16, reserve 8
  WalWriter wal(device.get(), opts);
  ASSERT_TRUE(wal.Open().ok());

  // Never checkpointing: the non-checkpoint force path must hit NoSpace
  // once the live window reaches ring - reserve blocks.
  uint64_t last_lsn = 0;
  Status st;
  int i = 0;
  for (; i < 20; ++i) {
    last_lsn = wal.Append(FillerRecord(i));
    st = wal.ForceAll();
    if (!st.ok()) break;
  }
  ASSERT_TRUE(st.IsNoSpace()) << st.ToString();
  EXPECT_LE(i, 9) << "the checkpoint reserve must be held back";

  // The checkpoint path gets the reserve, truncates, and unblocks commits.
  wal.SetCheckpointWindow(true);
  ASSERT_TRUE(wal.ForceAll().ok());
  wal.SetCheckpointWindow(false);
  ASSERT_TRUE(wal.WriteMaster(last_lsn, last_lsn).ok());
  wal.Append(FillerRecord(100));
  ASSERT_TRUE(wal.ForceAll().ok());
}

TEST(WalWriterTest, CrashMidWraparoundWriteTruncatesAtLastRecord) {
  auto base = std::make_shared<MemoryBlockDevice>();
  auto crash = std::make_shared<CrashingBlockDevice>(base);
  WalOptions opts;
  opts.max_bytes = 18 * WalWriter::kBlockSize;  // ring 16
  WalWriter wal(crash.get(), opts);
  ASSERT_TRUE(wal.Open().ok());

  // Fill 14 of the 16 ring blocks, truncating along the way so the wrap
  // stays legal.
  uint64_t ckpt_lsn = 0;
  for (uint64_t i = 0; i < 14; ++i) {
    const uint64_t lsn = wal.Append(FillerRecord(i));
    ASSERT_TRUE(wal.ForceAll().ok()) << "i=" << i;
    if (i % 4 == 3) {  // keep the live window under ring - reserve
      ASSERT_TRUE(wal.WriteMaster(lsn, lsn).ok());
      ckpt_lsn = lsn;
    }
  }
  const uint64_t durable_end = wal.durable_lsn();

  // A record spanning four blocks: its chained force wraps from the last
  // two ring blocks onto two recycled ones — and tears after two blocks,
  // exactly at the wrap point.
  LogRecord big;
  big.type = LogRecordType::kAtomUndo;
  big.txn_id = 50;
  big.before = std::string(3 * WalWriter::kBlockSize + 2000, 'q');
  wal.Append(big);
  crash->SetWriteBudget(2);
  ASSERT_TRUE(wal.ForceAll().ok());  // the device lies, as crashed disks do
  EXPECT_GT(crash->dropped_blocks(), 0u);

  // Reopen on the underlying bytes: the half-written record's continuation
  // landed on recycled blocks that still hold stale previous-lap data, so
  // the scan must stop exactly at the pre-force durable end.
  WalWriter reader(base.get(), opts);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.append_lsn(), durable_end);
  int count = 0;
  ASSERT_TRUE(reader
                  .Scan(ckpt_lsn,
                        [&](const LogRecord& rec) {
                          EXPECT_EQ(rec.type, LogRecordType::kAtomUndo);
                          ++count;
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(count, 3);  // records 11, 12, 13 — the torn one is gone

  // Appending resumes over the torn bytes.
  reader.Append(FillerRecord(60));
  ASSERT_TRUE(reader.ForceAll().ok());
  EXPECT_GT(reader.durable_lsn(), durable_end);
}

TEST(WalWriterTest, TornMasterWriteFallsBackToPreviousSlot) {
  // Master writes alternate between two slots; destroying the newest slot
  // (a checkpoint torn mid master-write) must fall back to the previous
  // checkpoint, not silently discard the log.
  auto device = std::make_shared<MemoryBlockDevice>();
  WalWriter wal(device.get());
  ASSERT_TRUE(wal.Open().ok());
  const uint64_t lsn_a = wal.Append(LogRecord::Begin(1));
  ASSERT_TRUE(wal.ForceAll().ok());
  ASSERT_TRUE(wal.WriteMaster(lsn_a, lsn_a).ok());
  const uint64_t lsn_b = wal.Append(LogRecord::Begin(2));
  ASSERT_TRUE(wal.ForceAll().ok());
  ASSERT_TRUE(wal.WriteMaster(lsn_b, lsn_b).ok());

  // Creation wrote slot 0, the checkpoints wrote slots 1 then 0 — the
  // newest master (checkpoint at lsn_b) lives in slot 0. Tear it.
  char junk[WalWriter::kBlockSize];
  std::memset(junk, 0xAB, sizeof(junk));
  ASSERT_TRUE(device->Write(storage::kWalSegmentId, 0, junk).ok());

  WalWriter reader(device.get());
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.checkpoint_lsn(), lsn_a) << "previous slot takes over";
  EXPECT_EQ(reader.append_lsn(), wal.append_lsn());
  int count = 0;
  ASSERT_TRUE(reader
                  .Scan(reader.checkpoint_lsn(),
                        [&](const LogRecord&) {
                          ++count;
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(count, 2) << "both records remain reachable from the fallback";
}

// ---------------------------------------------------------------------------
// LogArchiver: framing, reopen, uncommitted tail
// ---------------------------------------------------------------------------

TEST(LogArchiverTest, FramingRoundTripAndReopen) {
  constexpr uint32_t kBs = LogArchiver::kWalBlockSize;
  auto device = std::make_shared<MemoryBlockDevice>();
  LogArchiver arch(device.get());
  ASSERT_TRUE(arch.Open(0, 0).ok());
  EXPECT_EQ(arch.base_lsn(), 0u);
  EXPECT_EQ(arch.archived_lsn(), 0u);

  std::vector<std::string> blocks;
  for (int i = 0; i < 5; ++i) {
    blocks.emplace_back(kBs, static_cast<char>('a' + i));
    ASSERT_TRUE(arch.AppendBlock(uint64_t{i} * kBs, blocks[i].data()).ok());
  }
  ASSERT_TRUE(arch.Sync().ok());
  EXPECT_EQ(arch.archived_lsn(), 5u * kBs);

  // Contiguity is enforced; already-archived offsets rewrite idempotently.
  EXPECT_FALSE(arch.AppendBlock(7 * kBs, blocks[0].data()).ok());
  EXPECT_FALSE(arch.AppendBlock(100, blocks[0].data()).ok());  // unaligned
  ASSERT_TRUE(arch.AppendBlock(0, blocks[0].data()).ok());
  EXPECT_EQ(arch.archived_lsn(), 5u * kBs);

  // Reopen: the header's base wins over the caller's create-default, and
  // the committed end comes from the caller's floor hint.
  LogArchiver reader(device.get());
  ASSERT_TRUE(reader.Open(999 * kBs, 3 * kBs).ok());
  EXPECT_EQ(reader.base_lsn(), 0u);
  EXPECT_EQ(reader.archived_lsn(), 3u * kBs);
  char buf[kBs];
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(reader.ReadBlock(uint64_t{i} * kBs, buf).ok());
    EXPECT_EQ(0, std::memcmp(buf, blocks[i].data(), kBs)) << "block " << i;
  }
  EXPECT_TRUE(reader.ReadBlock(3 * kBs, buf).IsNotFound());
}

TEST(LogArchiverTest, UncommittedTailIsRewrittenAfterReopen) {
  // A copy whose truncation never committed (crash between the archive
  // write and the master write) is logically dropped by the reopen's floor
  // hint and physically rewritten by the next checkpoint's archive pass.
  constexpr uint32_t kBs = LogArchiver::kWalBlockSize;
  auto device = std::make_shared<MemoryBlockDevice>();
  LogArchiver arch(device.get());
  ASSERT_TRUE(arch.Open(0, 0).ok());
  const std::string committed(kBs, 'a');
  const std::string torn(kBs, 'X');  // stale bytes from the crashed copy
  ASSERT_TRUE(arch.AppendBlock(0, committed.data()).ok());
  ASSERT_TRUE(arch.AppendBlock(kBs, torn.data()).ok());

  LogArchiver reopened(device.get());
  ASSERT_TRUE(reopened.Open(0, kBs).ok());  // floor says: only [0, 4K) committed
  EXPECT_EQ(reopened.archived_lsn(), kBs);
  char buf[kBs];
  EXPECT_TRUE(reopened.ReadBlock(kBs, buf).IsNotFound());

  const std::string real(kBs, 'b');
  ASSERT_TRUE(reopened.AppendBlock(kBs, real.data()).ok());
  ASSERT_TRUE(reopened.ReadBlock(kBs, buf).ok());
  EXPECT_EQ(0, std::memcmp(buf, real.data(), kBs));
}

TEST(WalWriterTest, ArchiveExtendsScanAcrossRecycledBlocks) {
  auto device = std::make_shared<MemoryBlockDevice>();
  WalOptions opts;
  opts.max_bytes = 18 * WalWriter::kBlockSize;  // ring of 16 data blocks
  opts.archive = true;
  WalWriter wal(device.get(), opts);
  ASSERT_TRUE(wal.Open().ok());
  ASSERT_NE(wal.archiver(), nullptr);

  uint64_t last_ckpt = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    const uint64_t lsn = wal.Append(FillerRecord(i));
    ASSERT_TRUE(wal.ForceAll().ok()) << "i=" << i;
    if (i % 4 == 3) {
      ASSERT_TRUE(wal.WriteMaster(lsn, lsn).ok());
      last_ckpt = lsn;
    }
  }
  EXPECT_GE(wal.append_lsn(), 4 * wal.capacity_bytes()) << "log wrapped";
  EXPECT_GT(wal.stats().archived_bytes.load(), 2 * wal.capacity_bytes())
      << "recycled blocks must be archived, not lost";
  EXPECT_EQ(wal.ScanFloor(), 0u) << "history is contiguous from LSN 0";

  // Scan the WHOLE history. On a plain circular log the offset-seeded CRCs
  // reject everything below the floor (those device blocks hold later
  // laps); the archive supplies the original bytes instead.
  std::vector<uint64_t> ids;
  ASSERT_TRUE(wal.Scan(0,
                       [&](const LogRecord& rec) {
                         ids.push_back(rec.txn_id);
                         return Status::Ok();
                       })
                  .ok());
  ASSERT_EQ(ids.size(), 64u);
  for (uint64_t i = 0; i < 64; ++i) EXPECT_EQ(ids[i], i);

  // Reopen WITHOUT the flag: an existing archive is honored regardless, so
  // later runs cannot silently punch holes in the history.
  WalOptions reopen_opts;
  reopen_opts.max_bytes = opts.max_bytes;
  WalWriter reader(device.get(), reopen_opts);
  ASSERT_TRUE(reader.Open().ok());
  ASSERT_NE(reader.archiver(), nullptr);
  int count = 0;
  ASSERT_TRUE(reader
                  .Scan(0,
                        [&](const LogRecord&) {
                          ++count;
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(count, 64);

  // Damage the first archived block: the historical scan ends there (the
  // WAL fragment CRCs reject the junk) without fabricating records, and
  // the live restart window from the checkpoint is untouched.
  char junk[WalWriter::kBlockSize];
  std::memset(junk, 0xEE, sizeof(junk));
  ASSERT_TRUE(device->Write(storage::kArchiveSegmentId, 1, junk).ok());
  int damaged = 0;
  ASSERT_TRUE(reader
                  .Scan(0,
                        [&](const LogRecord&) {
                          ++damaged;
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_EQ(damaged, 0);
  int live = 0;
  ASSERT_TRUE(reader
                  .Scan(last_ckpt,
                        [&](const LogRecord&) {
                          ++live;
                          return Status::Ok();
                        })
                  .ok());
  EXPECT_GE(live, 1);
}

// ---------------------------------------------------------------------------
// CheckpointDaemon: threshold trigger + synchronous requests
// ---------------------------------------------------------------------------

TEST(CheckpointDaemonTest, TriggersOnRingFractionThreshold) {
  auto storage = std::make_unique<storage::StorageSystem>(
      std::make_unique<MemoryBlockDevice>(), storage::StorageOptions{});
  ASSERT_TRUE(storage->Open().ok());
  WalOptions wal_opts;
  wal_opts.max_bytes = 18 * WalWriter::kBlockSize;  // ring 16 = 64KB
  WalWriter wal(&storage->device(), wal_opts);
  ASSERT_TRUE(wal.Open().ok());
  storage->SetWal(&wal);
  RecoveryManager recovery(storage.get(), &wal);

  CheckpointDaemon::Options opts;
  opts.ring_fraction = 0.25;  // trigger at 16KB live
  opts.poll_ms = 1;
  CheckpointDaemon daemon(&recovery, &wal, nullptr, opts);
  daemon.Start();
  ASSERT_TRUE(daemon.running());

  // Below the threshold the daemon must stay idle.
  wal.Append(FillerRecord(1));
  ASSERT_TRUE(wal.ForceAll().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(wal.stats().auto_checkpoints.load(), 0u);

  // Cross it: six more one-block records put the live window at 7 blocks
  // (28KB). The daemon must checkpoint and truncate on its own.
  for (uint64_t i = 2; i <= 7; ++i) {
    wal.Append(FillerRecord(i));
    ASSERT_TRUE(wal.ForceAll().ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (wal.stats().auto_checkpoints.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(wal.stats().auto_checkpoints.load(), 1u);
  EXPECT_GT(wal.truncate_lsn(), 0u) << "the daemon's checkpoint truncates";

  // Explicit request: served synchronously by a full checkpoint.
  ASSERT_TRUE(daemon.RequestCheckpoint().ok());
  EXPECT_GE(daemon.stats().requested_checkpoints, 1u);

  daemon.Stop();
  EXPECT_FALSE(daemon.running());
  EXPECT_TRUE(daemon.RequestCheckpoint().IsAborted());
  storage->SetWal(nullptr);
}

TEST(WalWriterTest, MasterRecordSurvivesReopen) {
  auto device = std::make_shared<MemoryBlockDevice>();
  WalWriter wal(device.get());
  ASSERT_TRUE(wal.Open().ok());
  const uint64_t lsn = wal.Append(LogRecord::Begin(1));
  ASSERT_TRUE(wal.ForceAll().ok());
  ASSERT_TRUE(wal.WriteMaster(lsn).ok());

  WalWriter reader(device.get());
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.checkpoint_lsn(), lsn);
}

// ---------------------------------------------------------------------------
// Storage integration: page-LSN stamping and the WAL rule
// ---------------------------------------------------------------------------

TEST(WalRuleTest, PageWritesAreLoggedAndForcedBeforeWriteback) {
  auto base = std::make_shared<MemoryBlockDevice>();
  auto storage = std::make_unique<storage::StorageSystem>(
      std::make_unique<CrashingBlockDevice>(base), storage::StorageOptions{});
  ASSERT_TRUE(storage->Open().ok());
  WalWriter wal(&storage->device());
  ASSERT_TRUE(wal.Open().ok());
  storage->SetWal(&wal);

  ASSERT_TRUE(storage->CreateSegment(1, storage::PageSize::k4K).ok());
  uint64_t page_lsn = 0;
  {
    auto guard = storage->NewPage(1, storage::PageType::kSlotted);
    ASSERT_TRUE(guard.ok());
    char* data = guard->mutable_data();
    data[100] = 'x';
  }
  {
    auto guard = storage->FixPage(1, 1, storage::LatchMode::kShared);
    ASSERT_TRUE(guard.ok());
    page_lsn = PageHeader::lsn(guard->data());
  }
  EXPECT_GT(page_lsn, 0u) << "exclusive guard must stamp the page-LSN";
  EXPECT_GT(page_lsn, wal.durable_lsn()) << "log should still be buffered";

  // Write-back (flush) must force the log first — afterwards the durable
  // LSN covers the page-LSN of everything on the device.
  ASSERT_TRUE(storage->Flush().ok());
  EXPECT_GE(wal.durable_lsn(), page_lsn);

  storage->SetWal(nullptr);
}

// ---------------------------------------------------------------------------
// Full-stack crash / recovery via Prima
// ---------------------------------------------------------------------------

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { base_ = std::make_shared<MemoryBlockDevice>(); }

  /// Open a database incarnation over the shared device bytes.
  std::unique_ptr<core::Prima> OpenDb(uint64_t wal_max_bytes = 0,
                                      uint64_t commit_delay_us = 0) {
    core::PrimaOptions options;
    options.wal_max_bytes = wal_max_bytes;
    options.commit_delay_us = commit_delay_us;
    return OpenDbWith(std::move(options));
  }

  /// Same, with full control over the options (daemon, archive, restore).
  std::unique_ptr<core::Prima> OpenDbWith(core::PrimaOptions options) {
    crash_ = std::make_shared<CrashingBlockDevice>(base_);
    options.device = crash_;
    auto db = core::Prima::Open(std::move(options));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return db.ok() ? std::move(*db) : nullptr;
  }

  /// Minimal schema for the bounded-WAL tests (BREP would flood a small
  /// ring with schema pages).
  static void CreateItemType(core::Prima* db) {
    ASSERT_TRUE(db->Execute("CREATE ATOM_TYPE item"
                            " ( item_id : IDENTIFIER,"
                            "   num : INTEGER,"
                            "   name : CHAR_VAR )"
                            " KEYS_ARE (num)")
                    .ok());
  }

  util::Result<Tid> InsertItem(core::Prima* db, int64_t num) {
    const auto* item = db->access().catalog().FindAtomType("item");
    PRIMA_ASSIGN_OR_RETURN(core::Transaction * txn, db->Begin());
    auto tid = txn->InsertAtom(
        item->id, {AttrValue{1, Value::Int(num)},
                   AttrValue{2, Value::String("n" + std::to_string(num))}});
    if (!tid.ok()) return tid.status();
    PRIMA_RETURN_IF_ERROR(txn->Commit());
    return tid;
  }

  /// Pull the plug: every write from now on (including destructor flushes)
  /// is silently dropped.
  void Crash(std::unique_ptr<core::Prima>* db) {
    crash_->CrashNow();
    db->reset();
  }

  util::Result<Tid> InsertSolid(core::Transaction* txn,
                                const access::AtomTypeDef* def, int64_t no) {
    return txn->InsertAtom(
        def->id, {AttrValue{def->FindAttr("solid_no")->id, Value::Int(no)},
                  AttrValue{def->FindAttr("description")->id,
                            Value::String("s" + std::to_string(no))}});
  }

  std::shared_ptr<MemoryBlockDevice> base_;
  std::shared_ptr<CrashingBlockDevice> crash_;
};

TEST_F(CrashRecoveryTest, CommittedTransactionsSurviveCrash) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());  // checkpoint: DDL durable
  const auto* solid = db->access().catalog().FindAtomType("solid");
  ASSERT_NE(solid, nullptr);

  std::vector<Tid> tids;
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  for (int64_t i = 1; i <= 3; ++i) {
    auto tid = InsertSolid(*txn, solid, i);
    ASSERT_TRUE(tid.ok()) << tid.status().ToString();
    tids.push_back(*tid);
  }
  ASSERT_TRUE((*txn)->Commit().ok());

  auto txn2 = db->Begin();
  ASSERT_TRUE(
      (*txn2)
          ->ModifyAtom(tids[0], {AttrValue{solid->FindAttr("description")->id,
                                           Value::String("updated")}})
          .ok());
  ASSERT_TRUE((*txn2)->Commit().ok());

  Crash(&db);

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  const auto* solid2 = db2->access().catalog().FindAtomType("solid");
  ASSERT_NE(solid2, nullptr);
  EXPECT_EQ(db2->access().AtomCount(solid2->id), 3u);
  for (const Tid& tid : tids) {
    auto atom = db2->access().GetAtom(tid);
    ASSERT_TRUE(atom.ok()) << atom.status().ToString();
  }
  auto updated = db2->access().GetAtom(tids[0]);
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->attrs[solid2->FindAttr("description")->id].AsString(),
            "updated");
  // The recovered database accepts new work.
  auto set = db2->Query("SELECT ALL FROM solid");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 3u);
}

TEST_F(CrashRecoveryTest, UncommittedTransactionRolledBackOnRecovery) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto* solid = db->access().catalog().FindAtomType("solid");

  auto committed = db->Begin();
  auto keep = InsertSolid(*committed, solid, 1);
  ASSERT_TRUE(keep.ok());
  ASSERT_TRUE((*committed)->Commit().ok());

  // The loser: inserts and modifies, never commits. Force its log records
  // onto the device so recovery actually has something to undo (a purely
  // buffered loser simply evaporates).
  auto loser = db->Begin();
  auto lost = InsertSolid(*loser, solid, 2);
  ASSERT_TRUE(lost.ok());
  ASSERT_TRUE((*loser)
                  ->ModifyAtom(*keep, {AttrValue{solid->FindAttr("description")->id,
                                                 Value::String("dirty")}})
                  .ok());
  ASSERT_TRUE(db->wal()->ForceAll().ok());
  // Some of the loser's pages may even reach the device: flush storage
  // directly (bypassing the checkpoint) to simulate eviction pressure.
  ASSERT_TRUE(db->storage().Flush().ok());

  Crash(&db);

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  EXPECT_GE(db2->recovery()->stats().loser_txns, 1u);
  const auto* solid2 = db2->access().catalog().FindAtomType("solid");
  EXPECT_EQ(db2->access().AtomCount(solid2->id), 1u);
  EXPECT_FALSE(db2->access().AtomExists(*lost));
  auto kept = db2->access().GetAtom(*keep);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->attrs[solid2->FindAttr("description")->id].AsString(), "s1")
      << "loser's modify must be rolled back";
}

TEST_F(CrashRecoveryTest, SurvivesTornFlush) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto* solid = db->access().catalog().FindAtomType("solid");

  std::vector<Tid> tids;
  for (int64_t i = 1; i <= 8; ++i) {
    auto txn = db->Begin();
    auto tid = InsertSolid(*txn, solid, i);
    ASSERT_TRUE(tid.ok());
    tids.push_back(*tid);
    ASSERT_TRUE((*txn)->Commit().ok());
  }

  // The flush dies a few blocks in: some pages land, some don't, the
  // checkpoint's master record never commits. Exactly the torn multi-page
  // state WAL recovery exists for.
  crash_->SetWriteBudget(3);
  (void)db->Flush();  // reports success; the device dropped most of it
  Crash(&db);

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  const auto* solid2 = db2->access().catalog().FindAtomType("solid");
  EXPECT_EQ(db2->access().AtomCount(solid2->id), 8u);
  for (size_t i = 0; i < tids.size(); ++i) {
    auto atom = db2->access().GetAtom(tids[i]);
    ASSERT_TRUE(atom.ok()) << "solid " << i << ": " << atom.status().ToString();
    EXPECT_EQ(atom->attrs[solid2->FindAttr("solid_no")->id].AsInt(),
              static_cast<int64_t>(i + 1));
  }
}

TEST_F(CrashRecoveryTest, RuntimeAbortStaysAbortedAfterCrash) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto* solid = db->access().catalog().FindAtomType("solid");

  auto txn = db->Begin();
  auto tid = InsertSolid(*txn, solid, 1);
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE((*txn)->Abort().ok());  // compensated + CLR-logged
  ASSERT_TRUE(db->wal()->ForceAll().ok());

  Crash(&db);

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  const auto* solid2 = db2->access().catalog().FindAtomType("solid");
  EXPECT_EQ(db2->access().AtomCount(solid2->id), 0u);
  EXPECT_FALSE(db2->access().AtomExists(*tid));
}

TEST_F(CrashRecoveryTest, RecoveryIsIdempotentAcrossRestarts) {
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto* solid = db->access().catalog().FindAtomType("solid");
  auto txn = db->Begin();
  ASSERT_TRUE(InsertSolid(*txn, solid, 1).ok());
  ASSERT_TRUE((*txn)->Commit().ok());
  Crash(&db);

  // First recovery, then crash again immediately (its post-recovery
  // checkpoint dropped), then recover once more.
  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  Crash(&db2);
  auto db3 = OpenDb();
  ASSERT_NE(db3, nullptr);
  const auto* solid3 = db3->access().catalog().FindAtomType("solid");
  EXPECT_EQ(db3->access().AtomCount(solid3->id), 1u);
}

TEST_F(CrashRecoveryTest, InterleavedChildAbortCompensatesExactRecords) {
  // Parent works while a child is active, the child aborts, the parent
  // never commits, the process crashes. Restart must undo the PARENT's
  // operation but not re-wind the child's (already compensated) — the
  // compensation record names exact LSNs, not a count off the tail.
  auto db = OpenDb();
  workloads::BrepWorkload brep(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(db->Flush().ok());
  const auto* solid = db->access().catalog().FindAtomType("solid");

  auto setup = db->Begin();
  auto base = InsertSolid(*setup, solid, 1);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*setup)->Commit().ok());

  auto parent = db->Begin();
  auto child_or = (*parent)->BeginChild();
  ASSERT_TRUE(child_or.ok());
  auto child_tid = InsertSolid(*child_or, solid, 2);  // child op C1
  ASSERT_TRUE(child_tid.ok());
  ASSERT_TRUE((*parent)
                  ->ModifyAtom(*base, {AttrValue{solid->FindAttr("description")->id,
                                                 Value::String("parent-dirty")}})
                  .ok());  // parent op P1, interleaved
  ASSERT_TRUE((*child_or)->Abort().ok());  // compensates C1 only
  ASSERT_TRUE(db->wal()->ForceAll().ok());

  Crash(&db);  // parent never committed -> loser

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  const auto* solid2 = db2->access().catalog().FindAtomType("solid");
  EXPECT_EQ(db2->access().AtomCount(solid2->id), 1u);
  EXPECT_FALSE(db2->access().AtomExists(*child_tid));
  auto kept = db2->access().GetAtom(*base);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->attrs[solid2->FindAttr("description")->id].AsString(), "s1")
      << "parent's interleaved modify must be undone at restart";
}

TEST_F(CrashRecoveryTest, CheckpointShortensRedo) {
  auto run = [this](bool mid_checkpoint) -> uint64_t {
    base_ = std::make_shared<MemoryBlockDevice>();  // fresh database
    auto db = OpenDb();
    workloads::BrepWorkload brep(db.get());
    EXPECT_TRUE(brep.CreateSchema().ok());
    EXPECT_TRUE(db->Flush().ok());
    const auto* solid = db->access().catalog().FindAtomType("solid");
    for (int64_t i = 1; i <= 10; ++i) {
      auto txn = db->Begin();
      EXPECT_TRUE(InsertSolid(*txn, solid, i).ok());
      EXPECT_TRUE((*txn)->Commit().ok());
      if (mid_checkpoint && i == 8) {
        EXPECT_TRUE(db->Flush().ok());  // fuzzy checkpoint
      }
    }
    Crash(&db);
    auto db2 = OpenDb();
    EXPECT_NE(db2, nullptr);
    const auto* solid2 = db2->access().catalog().FindAtomType("solid");
    EXPECT_EQ(db2->access().AtomCount(solid2->id), 10u);
    return db2->recovery()->stats().records_scanned;
  };

  const uint64_t without_ckpt = run(false);
  const uint64_t with_ckpt = run(true);
  EXPECT_GT(without_ckpt, 0u);
  EXPECT_LT(with_ckpt, without_ckpt)
      << "a checkpoint must shorten the restart scan";
}

// ---------------------------------------------------------------------------
// Circular WAL: truncation / wraparound under crashes, via Prima
// ---------------------------------------------------------------------------

TEST_F(CrashRecoveryTest, BoundedWalSurvivesCrashAfterCheckpointCommit) {
  static constexpr uint64_t kWalCap = 1u << 20;  // 1 MiB ring
  auto db = OpenDb(kWalCap);
  CreateItemType(db.get());
  ASSERT_TRUE(db->Flush().ok());

  // Sustained checkpointed workload: run until the log has wrapped at
  // least twice, checkpointing every few commits so truncation keeps up.
  int inserted = 0;
  while (db->wal()->append_lsn() < 3 * db->wal()->capacity_bytes()) {
    ASSERT_LT(inserted, 5000) << "log never wrapped - ring far too large?";
    auto tid = InsertItem(db.get(), ++inserted);
    ASSERT_TRUE(tid.ok()) << tid.status().ToString();
    if (inserted % 10 == 0) {
      ASSERT_TRUE(db->Flush().ok());
    }
  }
  EXPECT_LE(db->wal_stats().footprint_bytes, kWalCap)
      << "the WAL file must stay bounded by wal_max_bytes";

  // Crash in the exact window between the checkpoint's master-record
  // commit (inside Flush) and any append that would reuse recycled blocks.
  ASSERT_TRUE(db->Flush().ok());
  Crash(&db);

  auto db2 = OpenDb(kWalCap);
  ASSERT_NE(db2, nullptr);
  const auto* item = db2->access().catalog().FindAtomType("item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(db2->access().AtomCount(item->id),
            static_cast<size_t>(inserted));
  // The recovered ring keeps rotating.
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(InsertItem(db2.get(), 10000 + i).ok());
    if (i % 10 == 9) {
      ASSERT_TRUE(db2->Flush().ok());
    }
  }
  ASSERT_TRUE(db2->Flush().ok());
  EXPECT_EQ(db2->access().AtomCount(item->id),
            static_cast<size_t>(inserted) + 25);
  EXPECT_LE(db2->wal_stats().footprint_bytes, kWalCap);
}

TEST_F(CrashRecoveryTest, DoubleCrashRecoveryWithWrappedLog) {
  static constexpr uint64_t kWalCap = 1u << 20;
  auto db = OpenDb(kWalCap);
  CreateItemType(db.get());
  ASSERT_TRUE(db->Flush().ok());

  int inserted = 0;
  while (db->wal()->append_lsn() < 2 * db->wal()->capacity_bytes()) {
    ASSERT_LT(inserted, 5000) << "log never wrapped - ring far too large?";
    ASSERT_TRUE(InsertItem(db.get(), ++inserted).ok());
    if (inserted % 10 == 0) {
      ASSERT_TRUE(db->Flush().ok());
    }
  }
  // A few more commits AFTER the last checkpoint so recovery has live
  // wrapped log to redo, then crash mid-interval.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(InsertItem(db.get(), ++inserted).ok());
  }
  Crash(&db);

  // Recover, then crash again before the post-recovery checkpoint's work
  // is extended — recovery over the wrapped ring must be idempotent.
  auto db2 = OpenDb(kWalCap);
  ASSERT_NE(db2, nullptr);
  Crash(&db2);
  auto db3 = OpenDb(kWalCap);
  ASSERT_NE(db3, nullptr);
  const auto* item = db3->access().catalog().FindAtomType("item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(db3->access().AtomCount(item->id), static_cast<size_t>(inserted));
  auto set = db3->Query("SELECT ALL FROM item");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), static_cast<size_t>(inserted));
}

TEST_F(CrashRecoveryTest, RecoveredPartitionCopyIsNotDuplicated) {
  // A partition copy that was drained (materialized in the partition file,
  // pages WAL-logged) but whose address-table registration died with the
  // process: the restart re-enqueue must update that copy in place, not
  // insert an orphan duplicate.
  auto db = OpenDb();
  CreateItemType(db.get());
  ASSERT_TRUE(db->ExecuteLdl("CREATE PARTITION pnum ON item (num)").ok());
  ASSERT_TRUE(db->Flush().ok());  // DDL + empty partition durable

  auto tid = InsertItem(db.get(), 1);
  ASSERT_TRUE(tid.ok());
  // Drain: the copy lands in the partition record file and is registered
  // in the (memory-resident) address table.
  ASSERT_TRUE(db->access().DrainAll().ok());
  ASSERT_TRUE(db->wal()->ForceAll().ok());  // its pages are on the device
  Crash(&db);  // ... but the registration is not

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  ASSERT_TRUE(db2->access().DrainAll().ok());
  const auto* part = db2->access().catalog().FindStructure("pnum");
  ASSERT_NE(part, nullptr);
  auto* file = db2->access().PartitionFile(part->id);
  ASSERT_NE(file, nullptr);
  EXPECT_EQ(file->record_count(), 1u)
      << "re-enqueued upsert must reuse the recovered copy";
  // And the mapping actually points at the surviving record.
  auto rid = db2->access().addresses().Lookup(*tid, part->id);
  EXPECT_TRUE(rid.ok());
}

TEST_F(CrashRecoveryTest, CleanReopenAfterRecoveryKeepsMultiPageBlob) {
  // Regression (latent since PR 1): ~Prima checkpointed, detached the WAL,
  // and then ~AccessSystem re-persisted the metadata blobs UNLOGGED —
  // RewriteSequence reshuffles the blob's component pages and Format wipes
  // their page-LSNs, so the NEXT restart's redo (replaying the committed
  // checkpoint window over the device) reassembled a corrupt address blob
  // and silently emptied the database. Needs a blob larger than one page
  // (several hundred atoms); the shutdown flushes are now suppressed
  // whenever a WAL owns durability.
  auto db = OpenDb();
  CreateItemType(db.get());
  ASSERT_TRUE(db->Flush().ok());
  const int kAtoms = 700;  // ~13KB address blob: needs component pages
  for (int i = 0; i < kAtoms; ++i) {
    ASSERT_TRUE(InsertItem(db.get(), i).ok());
    if (i % 100 == 99) {
      ASSERT_TRUE(db->Flush().ok());
    }
  }
  Crash(&db);  // crash with post-checkpoint commits to redo

  auto db2 = OpenDb();  // recovery pass
  ASSERT_NE(db2, nullptr);
  const auto* item2 = db2->access().catalog().FindAtomType("item");
  ASSERT_EQ(db2->access().AtomCount(item2->id), size_t{kAtoms});
  db2.reset();  // CLEAN shutdown: exit checkpoint, then destructors

  auto db3 = OpenDb();
  ASSERT_NE(db3, nullptr);
  const auto* item3 = db3->access().catalog().FindAtomType("item");
  ASSERT_NE(item3, nullptr);
  EXPECT_EQ(db3->access().AtomCount(item3->id), size_t{kAtoms})
      << "clean reopen after recovery must not lose the address blob";
  db3.reset();
  auto db4 = OpenDb();  // and once more, for the ping-pong page sets
  const auto* item4 = db4->access().catalog().FindAtomType("item");
  EXPECT_EQ(db4->access().AtomCount(item4->id), size_t{kAtoms});
}

TEST_F(CrashRecoveryTest, ConcurrentCommittersShareForcesAndSurviveCrash) {
  static constexpr int kThreads = 8;
  static constexpr int kCommitsPerThread = 8;
  auto db = OpenDb(/*wal_max_bytes=*/0, /*commit_delay_us=*/2000);
  CreateItemType(db.get());
  ASSERT_TRUE(db->Flush().ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> committers;
  committers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    committers.emplace_back([&, t] {
      for (int i = 0; i < kCommitsPerThread; ++i) {
        auto tid = InsertItem(db.get(), t * 1000 + i);
        if (!tid.ok()) failures++;
      }
    });
  }
  for (auto& th : committers) th.join();
  ASSERT_EQ(failures.load(), 0);

  const auto stats = db->wal_stats();
  EXPECT_EQ(stats.commits_forced, uint64_t{kThreads * kCommitsPerThread});
  EXPECT_GT(stats.records_per_force, 1.0);
  EXPECT_GT(stats.commits_per_force, 1.0)
      << "the delay window must batch concurrent committers";

  Crash(&db);
  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  const auto* item = db2->access().catalog().FindAtomType("item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(db2->access().AtomCount(item->id),
            size_t{kThreads * kCommitsPerThread})
      << "every acknowledged commit must survive the crash";
}

// ---------------------------------------------------------------------------
// Checkpoint daemon via Prima: NoSpace never reaches a well-behaved committer
// ---------------------------------------------------------------------------

TEST_F(CrashRecoveryTest, DaemonKeepsSustainedWorkloadOutOfNoSpace) {
  static constexpr uint64_t kWalCap = 256u << 10;
  core::PrimaOptions options;
  options.wal_max_bytes = kWalCap;  // daemon active by default (fraction 0.5)
  auto db = OpenDbWith(options);
  ASSERT_NE(db->checkpoint_daemon(), nullptr);
  CreateItemType(db.get());

  // ZERO manual Flush() calls from here on: checkpoint scheduling is
  // entirely the daemon's job (plus the commit retry hook when a burst
  // outruns its poll). PR 2 semantics would hit NoSpace inside one lap.
  int inserted = 0;
  while (db->wal()->append_lsn() < 3 * db->wal()->capacity_bytes()) {
    ASSERT_LT(inserted, 10000) << "log never wrapped - ring far too large?";
    auto tid = InsertItem(db.get(), ++inserted);
    ASSERT_TRUE(tid.ok()) << "commit " << inserted << ": "
                          << tid.status().ToString();
  }
  const auto stats = db->wal_stats();
  EXPECT_LE(stats.footprint_bytes, kWalCap);
  EXPECT_GE(stats.auto_checkpoints +
                db->checkpoint_daemon()->stats().requested_checkpoints,
            1u);

  // Observability: an open transaction pins the undo floor and is visible
  // as the oldest active LSN; finishing it clears the gauge.
  auto txn = db->Begin();
  ASSERT_TRUE(txn.ok());
  EXPECT_EQ(db->wal_stats().active_txns, 1u);
  EXPECT_GT(db->wal_stats().oldest_active_lsn, 0u);
  ASSERT_TRUE((*txn)->Commit().ok());
  EXPECT_EQ(db->wal_stats().active_txns, 0u);
  EXPECT_EQ(db->wal_stats().oldest_active_lsn, 0u);

  // And the crash contract is unchanged: every acknowledged commit is
  // recovered, whoever scheduled the checkpoints.
  Crash(&db);
  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  const auto* item = db2->access().catalog().FindAtomType("item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(db2->access().AtomCount(item->id), static_cast<size_t>(inserted));
}

TEST_F(CrashRecoveryTest, CommitNoSpacePokesDaemonAndRetries) {
  core::PrimaOptions options;
  options.wal_max_bytes = 128 * 4096;  // ring of 126 blocks, reserve 31:
                                       // commits refused at 95 live blocks,
                                       // with ample reserve left for the
                                       // checkpoint's own log traffic
  options.checkpoint_ring_fraction = 0.99;  // threshold above the NoSpace
                                            // point: only the poke path can
                                            // save a committer
  auto db = OpenDbWith(options);
  ASSERT_NE(db->checkpoint_daemon(), nullptr);
  CreateItemType(db.get());

  int inserted = 0;
  while (db->wal()->append_lsn() < 2 * db->wal()->capacity_bytes()) {
    ASSERT_LT(inserted, 5000);
    auto tid = InsertItem(db.get(), ++inserted);
    ASSERT_TRUE(tid.ok()) << "commit " << inserted
                          << " should have poked the daemon and retried: "
                          << tid.status().ToString();
  }
  EXPECT_GE(db->checkpoint_daemon()->stats().requested_checkpoints, 1u)
      << "the full ring must have triggered at least one poke";
}

// ---------------------------------------------------------------------------
// Media recovery: fuzzy backup + archived log rebuild a destroyed device
// ---------------------------------------------------------------------------

TEST_F(CrashRecoveryTest, MediaRecoveryRebuildsDestroyedDataDevice) {
  static constexpr uint64_t kWalCap = 256u << 10;
  core::PrimaOptions options;
  options.wal_max_bytes = kWalCap;
  options.wal_archive = true;
  auto db = OpenDbWith(options);
  CreateItemType(db.get());
  ASSERT_TRUE(db->Flush().ok());

  int inserted = 0;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(InsertItem(db.get(), ++inserted).ok());
  }
  // Fuzzy online backup mid-workload, then keep writing until the ring has
  // wrapped well past the dump: from here on the archive is the ONLY log
  // covering the dump's replay window.
  auto info = db->Backup();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GT(info->segments, 0u);
  EXPECT_GT(info->start_lsn, 0u);
  while (db->wal()->append_lsn() < info->start_lsn + 2 * kWalCap) {
    ASSERT_LT(inserted, 10000);
    ASSERT_TRUE(InsertItem(db.get(), ++inserted).ok());
  }
  EXPECT_GT(db->wal_stats().archived_bytes, 0u);
  Crash(&db);

  // The disaster: every data segment is destroyed. Only the WAL, the
  // archive, and the backup dump — the "separate media" — survive.
  for (storage::SegmentId id : base_->ListFiles()) {
    if (!storage::IsReservedFileId(id)) {
      ASSERT_TRUE(base_->Remove(id).ok());
    }
  }

  core::PrimaOptions restore;
  restore.wal_max_bytes = kWalCap;
  restore.restore_from_backup = true;
  auto db2 = OpenDbWith(restore);
  ASSERT_NE(db2, nullptr);
  const auto* item = db2->access().catalog().FindAtomType("item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(db2->access().AtomCount(item->id), static_cast<size_t>(inserted));
  auto set = db2->Query("SELECT ALL FROM item");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), static_cast<size_t>(inserted));

  // The rebuilt database accepts new work and then reopens normally,
  // WITHOUT the restore flag.
  ASSERT_TRUE(InsertItem(db2.get(), ++inserted).ok());
  db2.reset();  // clean shutdown: exit checkpoint
  core::PrimaOptions plain;
  plain.wal_max_bytes = kWalCap;
  auto db3 = OpenDbWith(plain);
  ASSERT_NE(db3, nullptr);
  const auto* item3 = db3->access().catalog().FindAtomType("item");
  ASSERT_NE(item3, nullptr);
  EXPECT_EQ(db3->access().AtomCount(item3->id), static_cast<size_t>(inserted));
  db3.reset();

  // A damaged archived block INSIDE the replay window must fail media
  // recovery loudly: silently treating the CRC failure as end-of-log
  // would "recover" an ancient state. (Plain restart never reads the
  // archive and is unaffected — covered above by db3's clean reopen.)
  char junk[4096];
  std::memset(junk, 0xEE, sizeof(junk));
  const uint64_t bad_block = 1 + info->start_lsn / 4096 + 2;
  ASSERT_TRUE(
      base_->Write(storage::kArchiveSegmentId, bad_block, junk).ok());
  for (storage::SegmentId id : base_->ListFiles()) {
    if (!storage::IsReservedFileId(id)) {
      ASSERT_TRUE(base_->Remove(id).ok());
    }
  }
  core::PrimaOptions damaged;
  damaged.wal_max_bytes = kWalCap;
  damaged.restore_from_backup = true;
  damaged.device = std::make_shared<CrashingBlockDevice>(base_);
  auto failed = core::Prima::Open(std::move(damaged));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsCorruption()) << failed.status().ToString();
}

TEST_F(CrashRecoveryTest, MediaRecoveryRefusesWhenLiveWalIsMissing) {
  // Losing the WAL file alongside the data device must fail media
  // recovery LOUDLY — an empty fresh log would otherwise pass every scan
  // check vacuously and "recover" the raw fuzzy dump pages with zero
  // replay.
  static constexpr uint64_t kWalCap = 256u << 10;
  core::PrimaOptions options;
  options.wal_max_bytes = kWalCap;
  options.wal_archive = true;
  auto db = OpenDbWith(options);
  CreateItemType(db.get());
  ASSERT_TRUE(db->Flush().ok());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(InsertItem(db.get(), i).ok());
  }
  ASSERT_TRUE(db->Backup().ok());
  Crash(&db);
  for (storage::SegmentId id : base_->ListFiles()) {
    if (!storage::IsReservedFileId(id)) {
      ASSERT_TRUE(base_->Remove(id).ok());
    }
  }
  ASSERT_TRUE(base_->Remove(storage::kWalSegmentId).ok());

  // (a) WAL gone, archive present: refused before a fresh log can be
  // initialized over the surviving history.
  core::PrimaOptions restore;
  restore.wal_max_bytes = kWalCap;
  restore.restore_from_backup = true;
  restore.device = std::make_shared<CrashingBlockDevice>(base_);
  auto failed = core::Prima::Open(std::move(restore));
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsCorruption()) << failed.status().ToString();

  // The refusal is stable across retries: the refused attempt must not
  // have left a fresh WAL behind (that would flip a retry onto the
  // existing-log path, which rebases the surviving archive away).
  EXPECT_FALSE(base_->Exists(storage::kWalSegmentId));
  EXPECT_TRUE(base_->Exists(storage::kArchiveSegmentId));
  core::PrimaOptions retry;
  retry.wal_max_bytes = kWalCap;
  retry.restore_from_backup = true;
  retry.device = std::make_shared<CrashingBlockDevice>(base_);
  auto failed_retry = core::Prima::Open(std::move(retry));
  ASSERT_FALSE(failed_retry.ok());
  EXPECT_TRUE(failed_retry.status().IsCorruption())
      << failed_retry.status().ToString();

  // (b) WAL and archive both gone: the fresh log's durable end (0) lies
  // below the dump's start LSN — refused by MediaRecover.
  ASSERT_TRUE(base_->Remove(storage::kArchiveSegmentId).ok());
  core::PrimaOptions restore2;
  restore2.wal_max_bytes = kWalCap;
  restore2.restore_from_backup = true;
  restore2.device = std::make_shared<CrashingBlockDevice>(base_);
  auto failed2 = core::Prima::Open(std::move(restore2));
  ASSERT_FALSE(failed2.ok());
  EXPECT_TRUE(failed2.status().IsCorruption()) << failed2.status().ToString();
}

TEST_F(CrashRecoveryTest, BackupRefusedOnBoundedWalWithoutArchive) {
  // A dump that the next truncation would orphan must be refused at
  // backup time, not discovered unrestorable at disaster time.
  core::PrimaOptions options;
  options.wal_max_bytes = 256u << 10;  // bounded ring, wal_archive OFF
  auto db = OpenDbWith(options);
  CreateItemType(db.get());
  auto info = db->Backup();
  ASSERT_FALSE(info.ok());
  EXPECT_TRUE(info.status().IsInvalidArgument()) << info.status().ToString();
}

TEST_F(CrashRecoveryTest, TornNewerDumpFallsBackToPreviousBackupSlot) {
  // Dumps alternate between two slots (like the WAL's master slots): a
  // crash tearing the dump being written must leave the previous
  // committed dump restorable — and replay through archive + live WAL
  // still recovers EVERYTHING committed, not just the older dump's state.
  static constexpr uint64_t kWalCap = 256u << 10;
  core::PrimaOptions options;
  options.wal_max_bytes = kWalCap;
  options.wal_archive = true;
  auto db = OpenDbWith(options);
  CreateItemType(db.get());
  ASSERT_TRUE(db->Flush().ok());
  int inserted = 0;
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(InsertItem(db.get(), ++inserted).ok());
  }
  ASSERT_TRUE(db->Backup().ok());  // seq 1 -> kBackupSegmentId
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(InsertItem(db.get(), ++inserted).ok());
  }
  ASSERT_TRUE(db->Backup().ok());  // seq 2 -> kBackupAltSegmentId
  EXPECT_TRUE(base_->Exists(storage::kBackupSegmentId));
  EXPECT_TRUE(base_->Exists(storage::kBackupAltSegmentId));
  Crash(&db);

  // Tear the newer dump's header, destroy the data device.
  char junk[4096];
  std::memset(junk, 0xAB, sizeof(junk));
  ASSERT_TRUE(base_->Write(storage::kBackupAltSegmentId, 0, junk).ok());
  for (storage::SegmentId id : base_->ListFiles()) {
    if (!storage::IsReservedFileId(id)) {
      ASSERT_TRUE(base_->Remove(id).ok());
    }
  }

  core::PrimaOptions restore;
  restore.wal_max_bytes = kWalCap;
  restore.restore_from_backup = true;
  auto db2 = OpenDbWith(restore);
  ASSERT_NE(db2, nullptr);
  const auto* item = db2->access().catalog().FindAtomType("item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(db2->access().AtomCount(item->id), static_cast<size_t>(inserted));
}

TEST_F(CrashRecoveryTest, MediaRecoveryCrossProcessDrive) {
  // The full drive, with real process death and a real file-backed device:
  // a child works a bounded archived ring with daemon-scheduled
  // checkpoints (zero manual Flush), takes a fuzzy backup mid-workload,
  // keeps committing until the ring wraps past it, and _exit()s without
  // any shutdown. The parent then destroys the data device and rebuilds
  // from backup + archive + live WAL.
  char dir_template[] = "/tmp/prima_media_recovery_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  static constexpr uint64_t kWalCap = 256u << 10;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // --- child: no gtest here; failures are exit codes ---
    core::PrimaOptions options;
    options.in_memory = false;
    options.path = dir;
    options.wal_max_bytes = kWalCap;
    options.wal_archive = true;
    auto db_or = core::Prima::Open(std::move(options));
    if (!db_or.ok()) ::_exit(10);
    auto db = std::move(*db_or);
    if (!db->Execute("CREATE ATOM_TYPE item"
                     " ( item_id : IDENTIFIER,"
                     "   num : INTEGER,"
                     "   name : CHAR_VAR )"
                     " KEYS_ARE (num)")
             .ok()) {
      ::_exit(11);
    }
    const auto* item = db->access().catalog().FindAtomType("item");
    if (item == nullptr) ::_exit(12);
    int committed = 0;
    auto insert_one = [&]() -> bool {
      auto txn = db->Begin();
      if (!txn.ok()) return false;
      auto tid = (*txn)->InsertAtom(
          item->id,
          {AttrValue{1, Value::Int(committed + 1)},
           AttrValue{2, Value::String("n" + std::to_string(committed + 1))}});
      if (!tid.ok()) return false;
      if (!(*txn)->Commit().ok()) return false;
      ++committed;
      return true;
    };
    while (db->wal()->append_lsn() < 2 * db->wal()->capacity_bytes()) {
      if (committed > 5000) ::_exit(13);
      if (!insert_one()) ::_exit(14);
      if (committed == 50 && !db->Backup().ok()) ::_exit(15);
    }
    if (committed <= 50) ::_exit(16);
    {
      std::ofstream out(dir + "/committed.txt");
      out << committed;
    }
    ::_exit(42);  // the machine dies: no destructors, no exit checkpoint
  }

  // --- parent ---
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), 42) << "child workload failed";
  int committed = 0;
  {
    std::ifstream in(dir + "/committed.txt");
    in >> committed;
  }
  ASSERT_GT(committed, 50);

  // Destroy the data device: every data segment file is deleted; the WAL,
  // archive, and backup files survive as the separate media.
  {
    storage::FileBlockDevice device(dir);
    for (storage::SegmentId id : device.ListFiles()) {
      if (!storage::IsReservedFileId(id)) {
        ASSERT_TRUE(device.Remove(id).ok());
      }
    }
  }

  core::PrimaOptions restore;
  restore.in_memory = false;
  restore.path = dir;
  restore.wal_max_bytes = kWalCap;
  restore.restore_from_backup = true;
  auto db_or = core::Prima::Open(std::move(restore));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(*db_or);
  const auto* item = db->access().catalog().FindAtomType("item");
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(db->access().AtomCount(item->id), static_cast<size_t>(committed));

  // Every committed atom survived, value for value.
  std::set<int64_t> nums;
  for (const Tid& tid : db->access().AllAtoms(item->id)) {
    auto atom = db->access().GetAtom(tid);
    ASSERT_TRUE(atom.ok()) << atom.status().ToString();
    nums.insert(atom->attrs[1].AsInt());
  }
  EXPECT_EQ(nums.size(), static_cast<size_t>(committed));
  if (!nums.empty()) {
    EXPECT_EQ(*nums.begin(), 1);
    EXPECT_EQ(*nums.rbegin(), committed);
  }
  auto set = db->Query("SELECT ALL FROM item");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), static_cast<size_t>(committed));

  db.reset();
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Parallel redo: per-page chains over the thread pool
// ---------------------------------------------------------------------------

// Build a full-image redo entry (LogFullPage's range shape) over `image`.
// The caller keeps `image` alive for the entry's lifetime.
storage::StorageSystem::RedoEntry FullImageEntry(const char* image,
                                                 uint32_t page_size,
                                                 uint64_t lsn) {
  storage::StorageSystem::RedoEntry e;
  e.lsn = lsn;
  e.ranges.emplace_back(4, Slice(image + 4, PageHeader::kSize - 12));
  e.ranges.emplace_back(PageHeader::kSize,
                        Slice(image + PageHeader::kSize,
                              page_size - PageHeader::kSize));
  return e;
}

TEST(ParallelRedoTest, ChainApplyGatesOnPageLsnAndHealsTornPages) {
  auto base = std::make_shared<MemoryBlockDevice>();
  constexpr uint32_t kPs = 4096;
  char image[kPs];
  PageHeader::Format(image, kPs, 1, storage::PageType::kSlotted);
  std::memset(image + PageHeader::kSize, 'a', 64);

  {
    auto storage = std::make_unique<storage::StorageSystem>(
        std::make_unique<CrashingBlockDevice>(base), storage::StorageOptions{});
    ASSERT_TRUE(storage->Open().ok());
    ASSERT_TRUE(storage->CreateSegment(1, storage::PageSize::k4K).ok());
    auto result = storage->RecoverApplyPageRedoChain(
        1, 1, kPs, {FullImageEntry(image, kPs, 100)});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->applied, 1u);
    EXPECT_FALSE(result->torn);
    auto guard = storage->FixPage(1, 1, storage::LatchMode::kShared);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(PageHeader::lsn(guard->data()), 100u);
    EXPECT_EQ(guard->data()[PageHeader::kSize], 'a');
    ASSERT_TRUE(storage->Flush().ok());
  }

  // Redo idempotence on a fresh incarnation: the device page already
  // carries LSN 100, so the same record (and anything older) skips.
  {
    auto storage = std::make_unique<storage::StorageSystem>(
        std::make_unique<CrashingBlockDevice>(base), storage::StorageOptions{});
    ASSERT_TRUE(storage->Open().ok());
    auto result = storage->RecoverApplyPageRedoChain(
        1, 1, kPs, {FullImageEntry(image, kPs, 100)});
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->applied, 0u);
    EXPECT_EQ(result->skipped, 1u);
  }

  // Tear the device image: a delta-only chain must report the page torn
  // (a delta onto a zeroed base would destroy the rest of the page)...
  char junk[kPs];
  std::memset(junk, 0xEE, sizeof(junk));
  ASSERT_TRUE(base->Write(1, 1, junk).ok());
  {
    auto storage = std::make_unique<storage::StorageSystem>(
        std::make_unique<CrashingBlockDevice>(base), storage::StorageOptions{});
    ASSERT_TRUE(storage->Open().ok());
    storage::StorageSystem::RedoEntry delta;
    delta.lsn = 300;
    delta.ranges.emplace_back(PageHeader::kSize, Slice("zz", 2));
    auto result = storage->RecoverApplyPageRedoChain(1, 1, kPs, {delta});
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->torn);
    EXPECT_EQ(result->applied, 0u);
  }
  // ... while a chain whose full image precedes the delta heals and
  // replays the page completely.
  {
    auto storage = std::make_unique<storage::StorageSystem>(
        std::make_unique<CrashingBlockDevice>(base), storage::StorageOptions{});
    ASSERT_TRUE(storage->Open().ok());
    storage::StorageSystem::RedoEntry delta;
    delta.lsn = 500;
    delta.ranges.emplace_back(PageHeader::kSize, Slice("zz", 2));
    auto result = storage->RecoverApplyPageRedoChain(
        1, 1, kPs, {FullImageEntry(image, kPs, 400), delta});
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->torn);
    EXPECT_EQ(result->applied, 2u);
    auto guard = storage->FixPage(1, 1, storage::LatchMode::kShared);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(PageHeader::lsn(guard->data()), 500u);
    EXPECT_EQ(guard->data()[PageHeader::kSize], 'z');
    EXPECT_EQ(guard->data()[PageHeader::kSize + 2], 'a');
  }
}

TEST(ParallelRedoTest, WorkerErrorSurfacesFirstAndMatchesSerialReplay) {
  // A poison redo record (unsupported page size -> segment create fails on
  // the worker) must fail the restart loudly, with the SAME status at
  // every thread count: first-error-wins picks the oldest failed chain,
  // not whichever worker lost the race.
  auto base = std::make_shared<MemoryBlockDevice>();
  {
    auto storage = std::make_unique<storage::StorageSystem>(
        std::make_unique<CrashingBlockDevice>(base), storage::StorageOptions{});
    ASSERT_TRUE(storage->Open().ok());
    WalWriter wal(&storage->device());
    ASSERT_TRUE(wal.Open().ok());
    storage->SetWal(&wal);
    ASSERT_TRUE(storage->CreateSegment(1, storage::PageSize::k4K).ok());
    for (int i = 0; i < 6; ++i) {
      auto guard = storage->NewPage(1, storage::PageType::kSlotted);
      ASSERT_TRUE(guard.ok());
      guard->mutable_data()[PageHeader::kSize + 1] = static_cast<char>('A' + i);
    }
    // TWO poison records, arranged so chain-map order (segment 98 first)
    // disagrees with log order (segment 99 appended first): the reported
    // error must be the OLDER one at every thread count, so serial replay
    // may not stop at its first map-order failure either.
    LogRecord poison;
    poison.type = LogRecordType::kPageRedo;
    poison.segment = 99;
    poison.page = 1;
    poison.page_size = 1234;  // not a device block size
    poison.ranges.push_back({40, "zz"});
    wal.Append(poison);
    LogRecord poison2 = poison;
    poison2.segment = 98;
    poison2.page_size = 777;  // a DIFFERENT invalid size: messages differ
    wal.Append(poison2);
    ASSERT_TRUE(wal.ForceAll().ok());
    storage->SetWal(nullptr);
  }

  std::vector<std::string> failures;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    auto storage = std::make_unique<storage::StorageSystem>(
        std::make_unique<CrashingBlockDevice>(base), storage::StorageOptions{});
    ASSERT_TRUE(storage->Open().ok());
    WalWriter wal(&storage->device());
    ASSERT_TRUE(wal.Open().ok());
    RecoveryManager recovery(storage.get(), &wal, threads);
    const Status st = recovery.AnalyzeAndRedo();
    ASSERT_FALSE(st.ok()) << "threads=" << threads;
    EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
    EXPECT_NE(st.ToString().find("1234"), std::string::npos)
        << "must report the log-order-first failure: " << st.ToString();
    failures.push_back(st.ToString());
  }
  EXPECT_EQ(failures[0], failures[1]) << "error must not depend on scheduling";
}

TEST(ParallelRedoTest, TornPageWithoutFullImageFailsRestartLoudly) {
  // The scan window holds only a DELTA for a page whose device image is
  // torn: no full image can rebuild it, so the parallel apply must surface
  // the torn page as a loud Corruption instead of replaying onto garbage.
  auto base = std::make_shared<MemoryBlockDevice>();
  {
    auto storage = std::make_unique<storage::StorageSystem>(
        std::make_unique<CrashingBlockDevice>(base), storage::StorageOptions{});
    ASSERT_TRUE(storage->Open().ok());
    WalWriter wal(&storage->device());
    ASSERT_TRUE(wal.Open().ok());
    storage->SetWal(&wal);
    ASSERT_TRUE(storage->CreateSegment(1, storage::PageSize::k4K).ok());
    {
      auto guard = storage->NewPage(1, storage::PageType::kSlotted);
      ASSERT_TRUE(guard.ok());
      guard->mutable_data()[PageHeader::kSize] = 'x';
    }
    // Checkpoint: the page (and its full-image record) drop out of the
    // next restart's scan window.
    RecoveryManager recovery(storage.get(), &wal);
    ASSERT_TRUE(recovery.Checkpoint(nullptr).ok());
    // Tear the page on the device, then log a post-checkpoint delta for it.
    char junk[4096];
    std::memset(junk, 0xEE, sizeof(junk));
    ASSERT_TRUE(base->Write(1, 1, junk).ok());
    LogRecord delta;
    delta.type = LogRecordType::kPageRedo;
    delta.segment = 1;
    delta.page = 1;
    delta.page_size = 4096;
    delta.ranges.push_back({PageHeader::kSize, "yy"});
    wal.Append(delta);
    ASSERT_TRUE(wal.ForceAll().ok());
    storage->SetWal(nullptr);
  }

  for (size_t threads : {size_t{1}, size_t{4}}) {
    auto storage = std::make_unique<storage::StorageSystem>(
        std::make_unique<CrashingBlockDevice>(base), storage::StorageOptions{});
    ASSERT_TRUE(storage->Open().ok());
    WalWriter wal(&storage->device());
    ASSERT_TRUE(wal.Open().ok());
    RecoveryManager recovery(storage.get(), &wal, threads);
    const Status st = recovery.AnalyzeAndRedo();
    ASSERT_FALSE(st.ok()) << "threads=" << threads;
    EXPECT_TRUE(st.IsCorruption()) << st.ToString();
    EXPECT_NE(st.ToString().find("torn page"), std::string::npos)
        << st.ToString();
  }
}

/// Every data page of `a` and `b`, byte for byte. Both databases must hold
/// the same segments with the same page counts for the comparison to even
/// start — that too is part of "bit-identical".
void ExpectIdenticalPageImages(core::Prima* a, core::Prima* b) {
  const auto segs_a = a->storage().ListSegments();
  const auto segs_b = b->storage().ListSegments();
  ASSERT_EQ(segs_a, segs_b);
  for (storage::SegmentId seg : segs_a) {
    auto count_a = a->storage().PageCount(seg);
    auto count_b = b->storage().PageCount(seg);
    ASSERT_TRUE(count_a.ok() && count_b.ok());
    ASSERT_EQ(*count_a, *count_b) << "segment " << seg;
    for (uint32_t page = 0; page < *count_a; ++page) {
      auto ga = a->storage().FixPage(seg, page, storage::LatchMode::kShared);
      auto gb = b->storage().FixPage(seg, page, storage::LatchMode::kShared);
      ASSERT_TRUE(ga.ok()) << ga.status().ToString();
      ASSERT_TRUE(gb.ok()) << gb.status().ToString();
      ASSERT_EQ(ga->page_size(), gb->page_size());
      EXPECT_EQ(std::memcmp(ga->data(), gb->data(), ga->page_size()), 0)
          << "segment " << seg << " page " << page
          << " diverges between thread counts";
    }
  }
}

TEST_F(CrashRecoveryTest, ParallelRedoBitIdenticalToSerialReplay) {
  // Grow a crashed image whose redo window spans many pages, then recover
  // CLONES of the same bytes with 1 and 4 redo threads: every page image,
  // every atom value, and the redo counters must agree exactly.
  auto db = OpenDb();
  CreateItemType(db.get());
  ASSERT_TRUE(db->Flush().ok());
  std::vector<Tid> tids;
  for (int i = 1; i <= 300; ++i) {
    auto tid = InsertItem(db.get(), i);
    ASSERT_TRUE(tid.ok());
    tids.push_back(*tid);
  }
  // A second wave of modifies layers deltas over the full images.
  for (int i = 0; i < 300; i += 3) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE((*txn)
                    ->ModifyAtom(tids[i],
                                 {AttrValue{2, Value::String(
                                                "mod" + std::to_string(i))}})
                    .ok());
    ASSERT_TRUE((*txn)->Commit().ok());
  }
  Crash(&db);

  core::PrimaOptions serial;
  serial.device = std::shared_ptr<storage::BlockDevice>(base_->Clone());
  serial.recovery_threads = 1;
  auto db1 = core::Prima::Open(std::move(serial));
  ASSERT_TRUE(db1.ok()) << db1.status().ToString();

  core::PrimaOptions parallel;
  parallel.device = std::shared_ptr<storage::BlockDevice>(base_->Clone());
  parallel.recovery_threads = 4;
  auto dbN = core::Prima::Open(std::move(parallel));
  ASSERT_TRUE(dbN.ok()) << dbN.status().ToString();

  // Same replay, different fan-out.
  const auto stats1 = (*db1)->wal_stats();
  const auto statsN = (*dbN)->wal_stats();
  EXPECT_GT(stats1.redo_records_applied, 0u);
  EXPECT_EQ(stats1.redo_records_applied, statsN.redo_records_applied);
  EXPECT_EQ(stats1.redo_apply_threads, 1u);
  EXPECT_EQ(statsN.redo_apply_threads, 4u);
  EXPECT_GE((*dbN)->recovery()->stats().redo_chains, 4u)
      << "workload too small to exercise the fan-out";

  ExpectIdenticalPageImages(db1->get(), dbN->get());

  const auto* item1 = (*db1)->access().catalog().FindAtomType("item");
  const auto* itemN = (*dbN)->access().catalog().FindAtomType("item");
  ASSERT_NE(item1, nullptr);
  ASSERT_NE(itemN, nullptr);
  EXPECT_EQ((*db1)->access().AtomCount(item1->id), 300u);
  EXPECT_EQ((*dbN)->access().AtomCount(itemN->id), 300u);
  for (const Tid& tid : tids) {
    auto a1 = (*db1)->access().GetAtom(tid);
    auto aN = (*dbN)->access().GetAtom(tid);
    ASSERT_TRUE(a1.ok()) << a1.status().ToString();
    ASSERT_TRUE(aN.ok()) << aN.status().ToString();
    EXPECT_EQ(a1->attrs[2].AsString(), aN->attrs[2].AsString());
  }
}

TEST_F(CrashRecoveryTest, WrappedArchivedRecoveryStableAcrossThreadCounts) {
  // A wrapped, archived circular log: repeated recovery of clones of the
  // same crashed image must converge to the same atom values at every
  // thread count — including a second crash-recover cycle per clone.
  static constexpr uint64_t kWalCap = 256u << 10;
  core::PrimaOptions options;
  options.wal_max_bytes = kWalCap;
  options.wal_archive = true;
  auto db = OpenDbWith(options);
  CreateItemType(db.get());
  ASSERT_TRUE(db->Flush().ok());
  int inserted = 0;
  while (db->wal()->append_lsn() < 2 * db->wal()->capacity_bytes()) {
    ASSERT_LT(inserted, 10000);
    ASSERT_TRUE(InsertItem(db.get(), ++inserted).ok());
  }
  Crash(&db);

  std::vector<std::set<int64_t>> recovered_nums;
  for (size_t threads : {size_t{1}, size_t{8}}) {
    auto clone = std::shared_ptr<MemoryBlockDevice>(base_->Clone());
    auto crash = std::make_shared<CrashingBlockDevice>(clone);
    core::PrimaOptions o;
    o.device = crash;
    o.wal_max_bytes = kWalCap;
    o.recovery_threads = threads;
    auto db2 = core::Prima::Open(o);
    ASSERT_TRUE(db2.ok()) << db2.status().ToString();
    const auto* item = (*db2)->access().catalog().FindAtomType("item");
    ASSERT_NE(item, nullptr);
    EXPECT_EQ((*db2)->access().AtomCount(item->id),
              static_cast<size_t>(inserted));
    // Crash the recovered instance (post-recovery checkpoint dropped) and
    // recover the same image once more.
    crash->CrashNow();
    db2->reset();
    o.device = std::make_shared<CrashingBlockDevice>(clone);
    auto db3 = core::Prima::Open(std::move(o));
    ASSERT_TRUE(db3.ok()) << db3.status().ToString();
    const auto* item3 = (*db3)->access().catalog().FindAtomType("item");
    ASSERT_NE(item3, nullptr);
    std::set<int64_t> nums;
    for (const Tid& tid : (*db3)->access().AllAtoms(item3->id)) {
      auto atom = (*db3)->access().GetAtom(tid);
      ASSERT_TRUE(atom.ok()) << atom.status().ToString();
      nums.insert(atom->attrs[1].AsInt());
    }
    EXPECT_EQ(nums.size(), static_cast<size_t>(inserted));
    recovered_nums.push_back(std::move(nums));
  }
  EXPECT_EQ(recovered_nums[0], recovered_nums[1]);
}

}  // namespace
}  // namespace prima::recovery
