#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/prima.h"
#include "workloads/brep.h"
#include "workloads/geo.h"
#include "workloads/vlsi.h"

namespace prima::core {
namespace {

/// Full-lifecycle tests across all layers, including the file-backed device
/// and database reopen.
TEST(IntegrationTest, FullLifecycleWithReopen) {
  const std::string dir = ::testing::TempDir() + "/prima_integration";
  std::filesystem::remove_all(dir);
  PrimaOptions options;
  options.in_memory = false;
  options.path = dir;

  access::Tid solid_tid;
  {
    auto db_or = Prima::Open(options);
    ASSERT_TRUE(db_or.ok());
    auto db = std::move(*db_or);
    workloads::BrepWorkload brep(db.get());
    ASSERT_TRUE(brep.CreateSchema().ok());
    auto solids = brep.BuildMany(1, 5);
    ASSERT_TRUE(solids.ok());
    solid_tid = (*solids)[2].solid;
    // Tuning structures survive reopen too.
    ASSERT_TRUE(db->ExecuteLdl("CREATE SORT ORDER so ON solid (solid_no)").ok());
    ASSERT_TRUE(
        db->ExecuteLdl("CREATE PARTITION pq ON face (square_dim)").ok());
    ASSERT_TRUE(db->ExecuteLdl(
                      "CREATE ATOM CLUSTER cl ON brep (faces, edges, points)")
                    .ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  {
    auto db_or = Prima::Open(options);
    ASSERT_TRUE(db_or.ok());
    auto db = std::move(*db_or);
    // Schema is back.
    EXPECT_NE(db->access().catalog().FindAtomType("brep"), nullptr);
    EXPECT_NE(db->access().catalog().FindMoleculeType("piece_list"), nullptr);
    EXPECT_NE(db->access().catalog().FindStructure("so"), nullptr);
    // Data is back, via every path: key lookup, molecule assembly, cluster.
    auto set = db->Query("SELECT ALL FROM brep-face-edge-point WHERE brep_no = 3");
    ASSERT_TRUE(set.ok()) << set.status().ToString();
    ASSERT_EQ(set->size(), 1u);
    EXPECT_EQ(set->molecules[0].AtomCount(), 15u);
    EXPECT_GT(db->data().stats().cluster_assemblies.load(), 0u);
    // The old atom is addressable by its surrogate.
    auto atom = db->access().GetAtom(solid_tid);
    ASSERT_TRUE(atom.ok());
    EXPECT_EQ(atom->attrs[1].AsInt(), 3);
    // Writes continue to work after reopen.
    ASSERT_TRUE(db->Execute("INSERT solid (solid_no = 100)").ok());
    auto more = db->Query("SELECT ALL FROM solid");
    ASSERT_TRUE(more.ok());
    EXPECT_EQ(more->size(), 6u);
  }
  std::filesystem::remove_all(dir);
}

TEST(IntegrationTest, VlsiWorkloadEndToEnd) {
  auto db_or = Prima::Open({});
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(*db_or);
  workloads::VlsiWorkload vlsi(db.get());
  ASSERT_TRUE(vlsi.CreateSchema().ok());
  auto circuit = vlsi.Generate(50, 4, 30, 1000, /*seed=*/7);
  ASSERT_TRUE(circuit.ok()) << circuit.status().ToString();

  // Grid access path on placement; spatial window query.
  ASSERT_TRUE(
      db->ExecuteLdl("CREATE ACCESS PATH place ON cell (x, y) USING GRID").ok());
  auto region = db->Query(
      "SELECT ALL FROM cell WHERE x >= 100 AND x <= 600 AND y >= 100 AND "
      "y <= 600");
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_GT(db->data().stats().grid_scans.load(), 0u);
  // Verify against brute force.
  auto all = db->Query("SELECT ALL FROM cell");
  ASSERT_TRUE(all.ok());
  size_t expect = 0;
  for (const auto& m : all->molecules) {
    const auto& a = m.groups[0].atoms[0];
    if (a.attrs[3].AsInt() >= 100 && a.attrs[3].AsInt() <= 600 &&
        a.attrs[4].AsInt() >= 100 && a.attrs[4].AsInt() <= 600) {
      ++expect;
    }
  }
  EXPECT_EQ(region->size(), expect);

  // n:m navigation: nets of a cell via pins.
  auto nets = db->Query("SELECT ALL FROM cell-pin-net WHERE cell_no = 1");
  ASSERT_TRUE(nets.ok()) << nets.status().ToString();
  ASSERT_EQ(nets->size(), 1u);
  EXPECT_EQ(nets->molecules[0].FindGroup("pin")->atoms.size(), 4u);
}

TEST(IntegrationTest, GeoWorkloadSharedBorders) {
  auto db_or = Prima::Open({});
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(*db_or);
  workloads::GeoWorkload geo(db.get());
  ASSERT_TRUE(geo.CreateSchema().ok());
  auto map = geo.GenerateGrid(1, 4, 5, /*seed=*/3);
  ASSERT_TRUE(map.ok()) << map.status().ToString();
  // 4x5 grid: 4*4 horizontal + 3*5 vertical interior borders.
  EXPECT_EQ(map->borders.size(), 31u);

  // Non-disjoint molecules: the region molecules of two adjacent regions
  // overlap in their shared border atom.
  auto regions = db->Query("SELECT ALL FROM map-region-border WHERE map_no = 1");
  ASSERT_TRUE(regions.ok()) << regions.status().ToString();
  ASSERT_EQ(regions->size(), 1u);
  EXPECT_EQ(regions->molecules[0].FindGroup("region")->atoms.size(), 20u);
  EXPECT_EQ(regions->molecules[0].FindGroup("border")->atoms.size(), 31u);

  // Every interior border is shared by exactly 2 regions (n:m integrity).
  auto borders = db->Query("SELECT ALL FROM border");
  ASSERT_TRUE(borders.ok());
  for (const auto& m : borders->molecules) {
    EXPECT_EQ(m.groups[0].atoms[0].attrs[3].elems().size(), 2u);
  }

  // Structural integrity: min-cardinality check passes for all borders.
  for (const access::Tid& b : map->borders) {
    EXPECT_TRUE(db->access().CheckIntegrity(b).ok());
  }
}

TEST(IntegrationTest, MixedWorkloadsCoexist) {
  auto db_or = Prima::Open({});
  ASSERT_TRUE(db_or.ok());
  auto db = std::move(*db_or);
  workloads::BrepWorkload brep(db.get());
  workloads::VlsiWorkload vlsi(db.get());
  workloads::GeoWorkload geo(db.get());
  ASSERT_TRUE(brep.CreateSchema().ok());
  ASSERT_TRUE(vlsi.CreateSchema().ok());
  ASSERT_TRUE(geo.CreateSchema().ok());
  ASSERT_TRUE(brep.BuildMany(1, 3).ok());
  ASSERT_TRUE(vlsi.Generate(10, 2, 5, 100, 1).ok());
  ASSERT_TRUE(geo.GenerateGrid(1, 2, 2, 1).ok());
  EXPECT_EQ((*db->Query("SELECT ALL FROM solid")).size(), 3u);
  EXPECT_EQ((*db->Query("SELECT ALL FROM cell")).size(), 10u);
  EXPECT_EQ((*db->Query("SELECT ALL FROM region")).size(), 4u);
}

TEST(IntegrationTest, CorruptionSurfacesAsError) {
  const std::string dir = ::testing::TempDir() + "/prima_corruption";
  std::filesystem::remove_all(dir);
  PrimaOptions options;
  options.in_memory = false;
  options.path = dir;
  {
    auto db_or = Prima::Open(options);
    ASSERT_TRUE(db_or.ok());
    auto db = std::move(*db_or);
    workloads::BrepWorkload brep(db.get());
    ASSERT_TRUE(brep.CreateSchema().ok());
    ASSERT_TRUE(brep.BuildMany(1, 2).ok());
    ASSERT_TRUE(db->Flush().ok());
  }
  // Flip bytes in the middle of the catalog segment file.
  const std::string victim = dir + "/seg_1.prima";
  ASSERT_TRUE(std::filesystem::exists(victim));
  {
    std::ofstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(512 + 8192 + 100);  // device header + page 0 + into page 1
    const char garbage[16] = {127, 1, 2, 3, 4, 5, 6, 7,
                              8,   9, 1, 2, 3, 4, 5, 6};
    f.write(garbage, sizeof(garbage));
  }
  {
    // With the WAL (default), the torn page falls inside the redo window
    // and restart recovery rebuilds it from the logged full-page image:
    // the database self-heals instead of failing.
    auto db_or = Prima::Open(options);
    ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
    EXPECT_EQ(((*db_or)->Query("SELECT ALL FROM solid"))->size(), 2u);
  }
  {
    // Without the WAL there is no redo log to repair from — the checksum
    // mismatch must surface as Corruption, never as silently wrong data.
    std::ofstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(512 + 8192 + 100);
    const char garbage[16] = {126, 2, 3, 4, 5, 6, 7, 8,
                              9,   1, 2, 3, 4, 5, 6, 7};
    f.write(garbage, sizeof(garbage));
    f.close();
    PrimaOptions no_wal = options;
    no_wal.wal = false;
    auto db_or = Prima::Open(no_wal);
    EXPECT_FALSE(db_or.ok());
    EXPECT_TRUE(db_or.status().IsCorruption()) << db_or.status().ToString();
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace prima::core
