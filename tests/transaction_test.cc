#include <gtest/gtest.h>

#include "core/prima.h"
#include "workloads/brep.h"

namespace prima::core {
namespace {

using access::AttrValue;
using access::Tid;
using access::Value;

class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = Prima::Open({});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    workloads::BrepWorkload brep(db_.get());
    ASSERT_TRUE(brep.CreateSchema().ok());
    solid_def_ = db_->access().catalog().FindAtomType("solid");
    ASSERT_NE(solid_def_, nullptr);
  }

  util::Result<Tid> InsertSolid(Transaction* txn, int64_t no) {
    return txn->InsertAtom(
        solid_def_->id,
        {AttrValue{1, Value::Int(no)},
         AttrValue{2, Value::String("s" + std::to_string(no))}});
  }

  size_t CountSolids() {
    auto r = db_->Query("SELECT ALL FROM solid");
    EXPECT_TRUE(r.ok());
    return r->size();
  }

  std::unique_ptr<Prima> db_;
  const access::AtomTypeDef* solid_def_ = nullptr;
};

TEST_F(TransactionTest, CommitKeepsEffects) {
  auto txn = db_->Begin();
  ASSERT_TRUE(txn.ok());
  ASSERT_TRUE(InsertSolid(*txn, 1).ok());
  ASSERT_TRUE((*txn)->Commit().ok());
  EXPECT_EQ(CountSolids(), 1u);
  EXPECT_EQ(db_->transactions().LockedAtomCount(), 0u);
}

TEST_F(TransactionTest, AbortUndoesInsert) {
  auto txn = db_->Begin();
  ASSERT_TRUE(InsertSolid(*txn, 1).ok());
  ASSERT_TRUE((*txn)->Abort().ok());
  EXPECT_EQ(CountSolids(), 0u);
  // The key is reusable.
  auto txn2 = db_->Begin();
  ASSERT_TRUE(InsertSolid(*txn2, 1).ok());
  ASSERT_TRUE((*txn2)->Commit().ok());
  EXPECT_EQ(CountSolids(), 1u);
}

TEST_F(TransactionTest, AbortUndoesModify) {
  auto setup = db_->Begin();
  auto tid = InsertSolid(*setup, 1);
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE((*setup)->Commit().ok());

  auto txn = db_->Begin();
  ASSERT_TRUE(
      (*txn)->ModifyAtom(*tid, {AttrValue{2, Value::String("changed")}}).ok());
  ASSERT_TRUE((*txn)->Abort().ok());
  auto atom = db_->access().GetAtom(*tid);
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->attrs[2].AsString(), "s1");
}

TEST_F(TransactionTest, AbortUndoesDeleteIncludingAssociations) {
  auto setup = db_->Begin();
  auto parent = InsertSolid(*setup, 1);
  auto child = InsertSolid(*setup, 2);
  const uint16_t sub = 3;
  ASSERT_TRUE((*setup)->Connect(*parent, sub, *child).ok());
  ASSERT_TRUE((*setup)->Commit().ok());

  auto txn = db_->Begin();
  ASSERT_TRUE((*txn)->DeleteAtom(*parent).ok());
  EXPECT_EQ(CountSolids(), 2u - 1u);
  ASSERT_TRUE((*txn)->Abort().ok());
  EXPECT_EQ(CountSolids(), 2u);
  // Symmetry fully restored: parent.sub contains child, child.super parent.
  auto parent_atom = db_->access().GetAtom(*parent);
  auto child_atom = db_->access().GetAtom(*child);
  EXPECT_TRUE(parent_atom->attrs[3].Contains(Value::Ref(*child)));
  EXPECT_TRUE(child_atom->attrs[4].Contains(Value::Ref(*parent)));
}

TEST_F(TransactionTest, SubtransactionCommitInheritsToParent) {
  auto txn = db_->Begin();
  auto child = (*txn)->BeginChild();
  ASSERT_TRUE(child.ok());
  auto tid = InsertSolid(*child, 5);
  ASSERT_TRUE(tid.ok());
  ASSERT_TRUE((*child)->Commit().ok());
  // Parent aborts -> the committed child's effects roll back too (Moss).
  ASSERT_TRUE((*txn)->Abort().ok());
  EXPECT_EQ(CountSolids(), 0u);
}

TEST_F(TransactionTest, SelectiveSubtreeAbort) {
  auto txn = db_->Begin();
  ASSERT_TRUE(InsertSolid(*txn, 1).ok());
  auto child = (*txn)->BeginChild();
  ASSERT_TRUE(InsertSolid(*child, 2).ok());
  ASSERT_TRUE((*child)->Abort().ok());  // only the subtree rolls back
  ASSERT_TRUE((*txn)->Commit().ok());
  auto set = db_->Query("SELECT solid_no FROM solid");
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set->size(), 1u);
  EXPECT_EQ(set->molecules[0].groups[0].atoms[0].attrs[1].AsInt(), 1);
}

TEST_F(TransactionTest, CommitBlockedByActiveChild) {
  auto txn = db_->Begin();
  auto child = (*txn)->BeginChild();
  ASSERT_TRUE(child.ok());
  EXPECT_TRUE((*txn)->Commit().IsInvalidArgument());
  ASSERT_TRUE((*child)->Commit().ok());
  EXPECT_TRUE((*txn)->Commit().ok());
}

TEST_F(TransactionTest, WriteConflictBetweenSiblings) {
  auto setup = db_->Begin();
  auto tid = InsertSolid(*setup, 1);
  ASSERT_TRUE((*setup)->Commit().ok());

  auto t1 = db_->Begin();
  auto t2 = db_->Begin();
  ASSERT_TRUE(
      (*t1)->ModifyAtom(*tid, {AttrValue{2, Value::String("t1")}}).ok());
  auto st = (*t2)->ModifyAtom(*tid, {AttrValue{2, Value::String("t2")}});
  EXPECT_TRUE(st.IsConflict()) << st.ToString();
  EXPECT_GE(db_->transactions().stats().lock_conflicts.load(), 1u);
  ASSERT_TRUE((*t1)->Commit().ok());
  // After t1 released its locks, t2 proceeds.
  ASSERT_TRUE(
      (*t2)->ModifyAtom(*tid, {AttrValue{2, Value::String("t2")}}).ok());
  ASSERT_TRUE((*t2)->Commit().ok());
}

TEST_F(TransactionTest, ReadersDoNotConflict) {
  auto setup = db_->Begin();
  auto tid = InsertSolid(*setup, 1);
  ASSERT_TRUE((*setup)->Commit().ok());

  auto t1 = db_->Begin();
  auto t2 = db_->Begin();
  EXPECT_TRUE((*t1)->GetAtom(*tid).ok());
  EXPECT_TRUE((*t2)->GetAtom(*tid).ok());
  // But a writer now conflicts with the other reader.
  auto st = (*t1)->ModifyAtom(*tid, {AttrValue{2, Value::String("x")}});
  EXPECT_TRUE(st.IsConflict());
  ASSERT_TRUE((*t1)->Commit().ok());
  ASSERT_TRUE((*t2)->Commit().ok());
}

TEST_F(TransactionTest, ChildMayUseParentLocks) {
  auto setup = db_->Begin();
  auto tid = InsertSolid(*setup, 1);
  ASSERT_TRUE((*setup)->Commit().ok());

  auto parent = db_->Begin();
  ASSERT_TRUE(
      (*parent)->ModifyAtom(*tid, {AttrValue{2, Value::String("p")}}).ok());
  // Moss's rule: the child may acquire a lock its ancestor holds.
  auto child = (*parent)->BeginChild();
  ASSERT_TRUE(
      (*child)->ModifyAtom(*tid, {AttrValue{2, Value::String("c")}}).ok());
  ASSERT_TRUE((*child)->Commit().ok());
  ASSERT_TRUE((*parent)->Commit().ok());
  auto atom = db_->access().GetAtom(*tid);
  EXPECT_EQ(atom->attrs[2].AsString(), "c");
}

TEST_F(TransactionTest, NestedAbortRestoresIntermediateState) {
  auto setup = db_->Begin();
  auto tid = InsertSolid(*setup, 1);
  ASSERT_TRUE((*setup)->Commit().ok());

  auto parent = db_->Begin();
  ASSERT_TRUE(
      (*parent)->ModifyAtom(*tid, {AttrValue{2, Value::String("parent")}}).ok());
  auto child = (*parent)->BeginChild();
  ASSERT_TRUE(
      (*child)->ModifyAtom(*tid, {AttrValue{2, Value::String("child")}}).ok());
  ASSERT_TRUE((*child)->Abort().ok());
  // The child's change is gone; the parent's survives.
  auto atom = db_->access().GetAtom(*tid);
  EXPECT_EQ(atom->attrs[2].AsString(), "parent");
  ASSERT_TRUE((*parent)->Commit().ok());
}

TEST_F(TransactionTest, OperationsOnFinishedTransactionFail) {
  auto txn = db_->Begin();
  ASSERT_TRUE((*txn)->Commit().ok());
  EXPECT_TRUE(InsertSolid(*txn, 9).status().IsInvalidArgument());
  EXPECT_TRUE((*txn)->Commit().IsInvalidArgument());
  EXPECT_TRUE((*txn)->Abort().IsInvalidArgument());
}

TEST_F(TransactionTest, UndoRestoresSortOrderConsistency) {
  auto ldl = db_->ExecuteLdl("CREATE SORT ORDER s ON solid (solid_no)");
  ASSERT_TRUE(ldl.ok());
  auto setup = db_->Begin();
  for (int i = 1; i <= 5; ++i) ASSERT_TRUE(InsertSolid(*setup, i).ok());
  ASSERT_TRUE((*setup)->Commit().ok());

  auto txn = db_->Begin();
  auto victim = db_->Query("SELECT ALL FROM solid WHERE solid_no = 3");
  ASSERT_TRUE(victim.ok());
  const Tid tid = victim->molecules[0].groups[0].atoms[0].tid;
  ASSERT_TRUE((*txn)->DeleteAtom(tid).ok());
  ASSERT_TRUE((*txn)->Abort().ok());
  ASSERT_TRUE(db_->access().DrainAll().ok());
  // The sort order still lists all five solids exactly once.
  access::BTree* tree = db_->access().BTreeFor(
      db_->access().catalog().FindStructure("s")->id);
  auto count = tree->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 5u);
}

}  // namespace
}  // namespace prima::core
