#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/prima.h"
#include "workloads/brep.h"

namespace prima::mql {
namespace {

/// End-to-end MQL on the paper's BREP database: 12 tetrahedra with
/// solid_no/brep_no 1700..1711 plus an assembly rooted at solid_no 4711.
class MqlExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = core::Prima::Open({});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    workloads::BrepWorkload brep(db_.get());
    ASSERT_TRUE(brep.CreateSchema().ok());
    auto solids = brep.BuildMany(1700, 12);
    ASSERT_TRUE(solids.ok()) << solids.status().ToString();
    solids_ = std::move(*solids);
    auto root = brep.BuildAssembly(4711, 2, 2);
    ASSERT_TRUE(root.ok()) << root.status().ToString();
    assembly_root_ = *root;
  }

  MoleculeSet Q(const std::string& text) {
    auto r = db_->Query(text);
    EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
    return r.ok() ? std::move(*r) : MoleculeSet{};
  }

  std::unique_ptr<core::Prima> db_;
  std::vector<workloads::BrepWorkload::Solid> solids_;
  access::Tid assembly_root_;
};

// ---------------------------------------------------------------------------
// The four Table 2.1 queries, end to end.
// ---------------------------------------------------------------------------

TEST_F(MqlExecutorTest, Table21a_VerticalAccess) {
  MoleculeSet set = Q(
      "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1705");
  ASSERT_EQ(set.size(), 1u);
  const Molecule& m = set.molecules[0];
  // Tetrahedron: 1 brep + 4 faces + 6 edges + 4 points.
  EXPECT_EQ(m.FindGroup("brep")->atoms.size(), 1u);
  EXPECT_EQ(m.FindGroup("face")->atoms.size(), 4u);
  EXPECT_EQ(m.FindGroup("edge")->atoms.size(), 6u);
  EXPECT_EQ(m.FindGroup("point")->atoms.size(), 4u);
  EXPECT_EQ(m.AtomCount(), 15u);
}

TEST_F(MqlExecutorTest, Table21a_UsesKeyLookup) {
  db_->data().stats().Reset();
  Q("SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1705");
  EXPECT_EQ(db_->data().stats().key_lookups.load(), 1u);
  EXPECT_EQ(db_->data().stats().atom_type_scans.load(), 0u);
}

TEST_F(MqlExecutorTest, Table21b_RecursiveMolecule) {
  MoleculeSet set =
      Q("SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = 4711");
  ASSERT_EQ(set.size(), 1u);
  const Molecule& m = set.molecules[0];
  // Binary assembly of depth 2: 1 + 2 + 4 solids.
  EXPECT_EQ(m.AtomCount(), 7u);
  ASSERT_EQ(m.levels.size(), 3u);
  EXPECT_EQ(m.levels[0].size(), 1u);
  EXPECT_EQ(m.levels[1].size(), 2u);
  EXPECT_EQ(m.levels[2].size(), 4u);
  EXPECT_EQ(m.levels[0][0], assembly_root_);
}

TEST_F(MqlExecutorTest, Table21c_HorizontalAccessWithProjection) {
  MoleculeSet set =
      Q("SELECT solid_no, description FROM solid WHERE sub = EMPTY");
  // All 12 tetrahedra plus the 4 assembly leaves (root and mid nodes have
  // subs, leaves do not; leaves are tetrahedra built by BuildAssembly).
  EXPECT_EQ(set.size(), 16u);
  for (const Molecule& m : set.molecules) {
    const access::Atom& atom = m.groups[0].atoms[0];
    EXPECT_FALSE(atom.attrs[1].is_null());  // solid_no kept
    EXPECT_FALSE(atom.attrs[2].is_null());  // description kept
    EXPECT_TRUE(atom.attrs[3].is_null());   // sub projected away
  }
}

TEST_F(MqlExecutorTest, Table21d_QuantifierAndQualifiedProjection) {
  MoleculeSet set = Q(
      "SELECT edge, (point, face := SELECT face_id, square_dim FROM face "
      "WHERE square_dim > 5.0E0) "
      "FROM brep-edge (face, point) "
      "WHERE brep_no = 1704 AND "
      "EXISTS_AT_LEAST (2) edge: edge.length > 1.0E0");
  ASSERT_EQ(set.size(), 1u);
  const Molecule& m = set.molecules[0];
  // brep itself is not selected.
  EXPECT_EQ(m.FindGroup("brep"), nullptr);
  EXPECT_EQ(m.FindGroup("edge")->atoms.size(), 6u);
  EXPECT_EQ(m.FindGroup("point")->atoms.size(), 4u);
  // Qualified projection filtered faces by square_dim and kept only
  // face_id + square_dim.
  const MoleculeGroup* faces = m.FindGroup("face");
  ASSERT_NE(faces, nullptr);
  EXPECT_LT(faces->atoms.size(), 4u);
  for (const access::Atom& f : faces->atoms) {
    EXPECT_GT(f.attrs[1].AsReal(), 5.0);  // square_dim qualified
    EXPECT_TRUE(f.attrs[2].is_null());    // border projected away
  }
}

TEST_F(MqlExecutorTest, Table21d_QuantifierCanReject) {
  // No edge is longer than 1000 -> the quantifier rejects every brep.
  MoleculeSet set = Q(
      "SELECT ALL FROM brep-edge "
      "WHERE EXISTS_AT_LEAST (2) edge: edge.length > 1.0E3");
  EXPECT_EQ(set.size(), 0u);
}

// ---------------------------------------------------------------------------
// Further query behaviour
// ---------------------------------------------------------------------------

TEST_F(MqlExecutorTest, SymmetricTraversalPointToFace) {
  // The inverse hierarchy of Fig. 2.1: start at a point, climb to faces.
  // Pick one point of solid 1700's brep.
  MoleculeSet down = Q("SELECT ALL FROM brep-point WHERE brep_no = 1700");
  ASSERT_EQ(down.size(), 1u);
  const access::Atom& point = down.molecules[0].FindGroup("point")->atoms[0];
  const int64_t pid = static_cast<int64_t>(point.tid.seq);
  MoleculeSet up = Q("SELECT ALL FROM point-edge-face WHERE point_id = @" +
                     std::to_string(point.tid.type) + ":" +
                     std::to_string(pid));
  ASSERT_EQ(up.size(), 1u);
  const Molecule& m = up.molecules[0];
  // A tetrahedron vertex meets 3 edges and 3 faces.
  EXPECT_EQ(m.FindGroup("edge")->atoms.size(), 3u);
  EXPECT_EQ(m.FindGroup("face")->atoms.size(), 3u);
}

TEST_F(MqlExecutorTest, NamedMoleculeTypesResolve) {
  MoleculeSet set = Q("SELECT ALL FROM brep_obj WHERE brep_no = 1706");
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.molecules[0].AtomCount(), 15u);
}

TEST_F(MqlExecutorTest, ForAllQuantifier) {
  MoleculeSet all = Q(
      "SELECT ALL FROM brep-edge WHERE brep_no = 1700 AND "
      "FOR_ALL edge: edge.length > 0.0");
  EXPECT_EQ(all.size(), 1u);
  MoleculeSet none = Q(
      "SELECT ALL FROM brep-edge WHERE brep_no = 1700 AND "
      "FOR_ALL edge: edge.length > 1.5");
  EXPECT_EQ(none.size(), 0u);
}

TEST_F(MqlExecutorTest, RecordFieldAccessInWhere) {
  // All tetrahedra share a vertex at the origin.
  MoleculeSet set =
      Q("SELECT ALL FROM point WHERE placement.x_coord = 0.0 AND "
        "placement.y_coord = 0.0 AND placement.z_coord = 0.0");
  EXPECT_GE(set.size(), 12u);
}

TEST_F(MqlExecutorTest, UnindexedPredicateUsesAtomTypeScan) {
  db_->data().stats().Reset();
  MoleculeSet set =
      Q("SELECT ALL FROM solid WHERE description = 'tetra_1705'");
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(db_->data().stats().atom_type_scans.load(), 1u);
}

TEST_F(MqlExecutorTest, ImplicitKeyIndexAcceleratesRanges) {
  // KEYS_ARE creates an implicit access path; even range predicates on the
  // key avoid the atom-type scan.
  db_->data().stats().Reset();
  MoleculeSet set = Q("SELECT ALL FROM solid WHERE solid_no >= 1703 AND "
                      "solid_no <= 1707");
  EXPECT_EQ(set.size(), 5u);
  EXPECT_EQ(db_->data().stats().access_path_scans.load(), 1u);
  EXPECT_EQ(db_->data().stats().atom_type_scans.load(), 0u);
}

TEST_F(MqlExecutorTest, AccessPathAcceleratesRange) {
  auto ldl = db_->ExecuteLdl("CREATE ACCESS PATH solid_no_ap ON solid (solid_no)");
  ASSERT_TRUE(ldl.ok()) << ldl.status().ToString();
  db_->data().stats().Reset();
  MoleculeSet set = Q("SELECT ALL FROM solid WHERE solid_no >= 1703 AND "
                      "solid_no <= 1707");
  EXPECT_EQ(set.size(), 5u);
  EXPECT_EQ(db_->data().stats().access_path_scans.load(), 1u);
  EXPECT_EQ(db_->data().stats().atom_type_scans.load(), 0u);
}

TEST_F(MqlExecutorTest, ClusterAcceleratesVerticalAccess) {
  auto ldl = db_->ExecuteLdl(
      "CREATE ATOM CLUSTER brep_cl ON brep (faces, edges, points)");
  ASSERT_TRUE(ldl.ok()) << ldl.status().ToString();
  db_->data().stats().Reset();
  MoleculeSet set = Q("SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1708");
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.molecules[0].AtomCount(), 15u);
  EXPECT_EQ(db_->data().stats().cluster_assemblies.load(), 1u);
  EXPECT_EQ(db_->data().stats().bfs_assemblies.load(), 0u);
}

TEST_F(MqlExecutorTest, ClusterAndBfsAgree) {
  MoleculeSet before = Q("SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1709");
  auto ldl = db_->ExecuteLdl(
      "CREATE ATOM CLUSTER brep_cl ON brep (faces, edges, points)");
  ASSERT_TRUE(ldl.ok());
  MoleculeSet after = Q("SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1709");
  ASSERT_EQ(before.size(), after.size());
  ASSERT_EQ(before.molecules[0].groups.size(), after.molecules[0].groups.size());
  for (size_t g = 0; g < before.molecules[0].groups.size(); ++g) {
    auto tids = [](const MoleculeGroup& grp) {
      std::set<uint64_t> s;
      for (const auto& a : grp.atoms) s.insert(a.tid.Pack());
      return s;
    };
    EXPECT_EQ(tids(before.molecules[0].groups[g]),
              tids(after.molecules[0].groups[g]));
  }
}

// ---------------------------------------------------------------------------
// DML through MQL
// ---------------------------------------------------------------------------

TEST_F(MqlExecutorTest, InsertStatement) {
  auto r = db_->Execute("INSERT solid (solid_no = 9001, description = 'fresh')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->kind, ExecResult::Kind::kTid);
  MoleculeSet set = Q("SELECT ALL FROM solid WHERE solid_no = 9001");
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.molecules[0].groups[0].atoms[0].attrs[2].AsString(), "fresh");
}

TEST_F(MqlExecutorTest, ModifyStatement) {
  auto r = db_->Execute(
      "MODIFY solid SET description = 'renamed' WHERE solid_no = 1702");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 1u);
  MoleculeSet set = Q("SELECT ALL FROM solid WHERE solid_no = 1702");
  EXPECT_EQ(set.molecules[0].groups[0].atoms[0].attrs[2].AsString(), "renamed");
}

TEST_F(MqlExecutorTest, ModifyComponentsOfMolecule) {
  auto r = db_->Execute(
      "MODIFY face SET square_dim = 99.5 FROM brep-face WHERE brep_no = 1703");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 4u);
  MoleculeSet set = Q("SELECT ALL FROM brep-face WHERE brep_no = 1703");
  for (const access::Atom& f : set.molecules[0].FindGroup("face")->atoms) {
    EXPECT_DOUBLE_EQ(f.attrs[1].AsReal(), 99.5);
  }
}

TEST_F(MqlExecutorTest, DeleteWholeMolecule) {
  auto r = db_->Execute("DELETE ALL FROM brep-face-edge-point WHERE brep_no = 1711");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 15u);
  MoleculeSet gone = Q("SELECT ALL FROM brep WHERE brep_no = 1711");
  EXPECT_EQ(gone.size(), 0u);
  // The solid survives (not part of the deleted structure) but lost its brep.
  MoleculeSet solid = Q("SELECT ALL FROM solid WHERE solid_no = 1711");
  ASSERT_EQ(solid.size(), 1u);
  EXPECT_TRUE(solid.molecules[0].groups[0].atoms[0].attrs[5].is_null());
}

TEST_F(MqlExecutorTest, DeleteSelectedComponents) {
  auto r = db_->Execute("DELETE point FROM brep-point WHERE brep_no = 1710");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->count, 4u);
  // Edges survive but their boundary sets shrank to empty.
  MoleculeSet edges = Q("SELECT ALL FROM brep-edge WHERE brep_no = 1710");
  ASSERT_EQ(edges.size(), 1u);
  for (const access::Atom& e : edges.molecules[0].FindGroup("edge")->atoms) {
    EXPECT_TRUE(e.attrs[2].is_null() || e.attrs[2].elems().empty());
  }
}

TEST_F(MqlExecutorTest, ConnectDisconnectStatements) {
  auto s1 = Q("SELECT ALL FROM solid WHERE solid_no = 1700");
  auto s2 = Q("SELECT ALL FROM solid WHERE solid_no = 1701");
  const access::Tid t1 = s1.molecules[0].groups[0].atoms[0].tid;
  const access::Tid t2 = s2.molecules[0].groups[0].atoms[0].tid;
  auto con = db_->Execute("CONNECT @" + std::to_string(t1.type) + ":" +
                          std::to_string(t1.seq) + ".sub TO @" +
                          std::to_string(t2.type) + ":" +
                          std::to_string(t2.seq));
  ASSERT_TRUE(con.ok()) << con.status().ToString();
  MoleculeSet rec = Q("SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = 1700");
  ASSERT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.molecules[0].AtomCount(), 2u);
  auto dis = db_->Execute("DISCONNECT @" + std::to_string(t1.type) + ":" +
                          std::to_string(t1.seq) + ".sub FROM @" +
                          std::to_string(t2.type) + ":" +
                          std::to_string(t2.seq));
  ASSERT_TRUE(dis.ok());
  MoleculeSet rec2 = Q("SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = 1700");
  EXPECT_EQ(rec2.molecules[0].AtomCount(), 1u);
}

// ---------------------------------------------------------------------------
// Semantic errors
// ---------------------------------------------------------------------------

TEST_F(MqlExecutorTest, SemanticErrorsAreReported) {
  EXPECT_FALSE(db_->Query("SELECT ALL FROM nosuchtype").ok());
  EXPECT_FALSE(db_->Query("SELECT ALL FROM solid-point").ok())
      << "no association between solid and point";
  EXPECT_FALSE(db_->Query("SELECT ALL FROM solid-solid").ok())
      << "ambiguous association needs .attr disambiguation";
  EXPECT_FALSE(
      db_->Query("SELECT ALL FROM brep-face WHERE nosuchattr = 1").ok());
  EXPECT_FALSE(db_->Execute("INSERT solid (nosuch = 1)").ok());
  // Duplicate key via MQL insert.
  EXPECT_TRUE(db_->Execute("INSERT solid (solid_no = 1700)")
                  .status()
                  .IsConstraint());
}

TEST_F(MqlExecutorTest, DisambiguatedSelfAssociationWorks) {
  // Non-recursive one-hop traversal of the self association; the second
  // `solid` component is auto-renamed to solid_2 in the result.
  MoleculeSet set = Q("SELECT ALL FROM solid.sub-solid WHERE solid_no = 4711");
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.molecules[0].AtomCount(), 3u);
  EXPECT_NE(set.molecules[0].FindGroup("solid_2"), nullptr);
}

// ---------------------------------------------------------------------------
// Pipelined cursor assembly
// ---------------------------------------------------------------------------

TEST_F(MqlExecutorTest, ParallelAssemblyDrainIsByteIdenticalToSerial) {
  // The pipelined cursor assembles a bounded look-ahead on the thread pool
  // but must drain in root order: at every thread count the stream is
  // required to be byte-identical to the serial cursor's.
  const std::vector<std::string> queries = {
      "SELECT ALL FROM brep-face-edge-point WHERE brep_no >= 1700",
      "SELECT ALL FROM brep-edge WHERE EXISTS_AT_LEAST (2) edge: "
      "edge.length > 1.0E0",
      "SELECT ALL FROM solid",                        // no WHERE at all
      "SELECT ALL FROM solid WHERE solid_no = -1",    // empty result
  };
  auto drain = [&](const std::string& query) {
    auto session = db_->OpenSession();
    auto cursor = session->Query(query);
    EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
    if (!cursor.ok()) return std::string("<open failed>");
    auto set = cursor->Drain();
    EXPECT_TRUE(set.ok()) << set.status().ToString();
    if (!set.ok()) return std::string("<drain failed>");
    return set->ToString(db_->access().catalog());
  };
  Executor& exec = db_->data().executor();
  for (const std::string& query : queries) {
    exec.SetAssemblyPool(nullptr, 1);  // serial reference
    const std::string reference = drain(query);
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      exec.SetAssemblyPool(&db_->pool(), threads);
      EXPECT_EQ(drain(query), reference)
          << query << " diverged at " << threads << " assembly threads";
    }
  }
}

TEST_F(MqlExecutorTest, ParallelAssemblyConcurrentCursors) {
  // Several sessions drain pipelined cursors over the shared pool at once;
  // each stream must stay complete and ordered.
  db_->data().executor().SetAssemblyPool(&db_->pool(), 4);
  const std::string query = "SELECT ALL FROM brep-face WHERE brep_no >= 1700";
  std::string reference;
  {
    auto session = db_->OpenSession();
    auto set = session->Query(query)->Drain();
    ASSERT_TRUE(set.ok());
    reference = set->ToString(db_->access().catalog());
  }
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        auto session = db_->OpenSession();
        auto cursor = session->Query(query);
        if (!cursor.ok()) {
          mismatches++;
          return;
        }
        auto set = cursor->Drain();
        if (!set.ok() ||
            set->ToString(db_->access().catalog()) != reference) {
          mismatches++;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace prima::mql
