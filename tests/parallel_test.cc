#include <gtest/gtest.h>

#include <set>

#include "core/prima.h"
#include "workloads/brep.h"

namespace prima::core {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PrimaOptions options;
    options.parallel_workers = 8;
    auto db = Prima::Open(options);
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    workloads::BrepWorkload brep(db_.get());
    ASSERT_TRUE(brep.CreateSchema().ok());
    ASSERT_TRUE(brep.BuildMany(100, 40).ok());
  }

  std::unique_ptr<Prima> db_;
};

/// Canonical fingerprint of a molecule set (order-independent per group).
std::multiset<std::string> Fingerprint(const mql::MoleculeSet& set) {
  std::multiset<std::string> out;
  for (const auto& m : set.molecules) {
    std::string s;
    for (const auto& g : m.groups) {
      s += g.component + ":";
      std::set<uint64_t> tids;
      for (const auto& a : g.atoms) tids.insert(a.tid.Pack());
      for (uint64_t t : tids) s += std::to_string(t) + ",";
    }
    out.insert(std::move(s));
  }
  return out;
}

TEST_F(ParallelTest, ParallelEqualsSerial) {
  const std::string query = "SELECT ALL FROM brep-face-edge-point";
  auto serial = db_->Query(query);
  ASSERT_TRUE(serial.ok());
  auto parallel = db_->QueryParallel(query);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(serial->size(), 40u);
  EXPECT_EQ(parallel->size(), serial->size());
  EXPECT_EQ(Fingerprint(*serial), Fingerprint(*parallel));
}

TEST_F(ParallelTest, ParallelPreservesMoleculeOrder) {
  const std::string query = "SELECT ALL FROM brep-face WHERE brep_no >= 110";
  auto serial = db_->Query(query);
  auto parallel = db_->QueryParallel(query);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ(serial->molecules[i].groups[0].atoms[0].tid,
              parallel->molecules[i].groups[0].atoms[0].tid);
  }
}

TEST_F(ParallelTest, QualificationAppliedInParallel) {
  auto set = db_->QueryParallel(
      "SELECT ALL FROM brep-edge WHERE "
      "EXISTS_AT_LEAST (3) edge: edge.length > 3.0");
  ASSERT_TRUE(set.ok());
  auto serial = db_->Query(
      "SELECT ALL FROM brep-edge WHERE "
      "EXISTS_AT_LEAST (3) edge: edge.length > 3.0");
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(set->size(), serial->size());
  EXPECT_LT(set->size(), 40u);  // the predicate is selective
  EXPECT_GT(set->size(), 0u);
}

TEST_F(ParallelTest, DecomposesIntoRequestedUnits) {
  auto& stats = db_->pool();
  (void)stats;
  auto processor_stats_before =
      db_->QueryParallel("SELECT ALL FROM solid", 4);
  ASSERT_TRUE(processor_stats_before.ok());
  // 40 solids / 4 DUs: the processor reports at least 4 scheduled units in
  // total (cumulative counter).
  EXPECT_GE(db_->QueryParallel("SELECT ALL FROM solid", 4).ok(), true);
}

TEST_F(ParallelTest, MaxUnitsClampedToRoots) {
  // More DUs than molecules: must not crash or duplicate.
  auto set = db_->QueryParallel("SELECT ALL FROM brep WHERE brep_no = 105", 16);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 1u);
}

TEST_F(ParallelTest, RejectsNonQueries) {
  auto r = db_->QueryParallel("INSERT solid (solid_no = 1)");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(ParallelTest, ProjectionAppliedAfterParallelQualification) {
  auto set = db_->QueryParallel(
      "SELECT solid_no FROM solid WHERE solid_no < 110");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->size(), 10u);
  for (const auto& m : set->molecules) {
    EXPECT_TRUE(m.groups[0].atoms[0].attrs[2].is_null());  // description gone
  }
}

TEST_F(ParallelTest, ParallelWithClusterAssembly) {
  auto ldl = db_->ExecuteLdl(
      "CREATE ATOM CLUSTER brep_cl ON brep (faces, edges, points)");
  ASSERT_TRUE(ldl.ok());
  auto serial = db_->Query("SELECT ALL FROM brep-face-edge-point");
  auto parallel = db_->QueryParallel("SELECT ALL FROM brep-face-edge-point");
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(Fingerprint(*serial), Fingerprint(*parallel));
}

}  // namespace
}  // namespace prima::core
