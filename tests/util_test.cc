#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "util/coding.h"
#include "util/crc32.h"
#include "util/random.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace prima::util {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: thing");
}

TEST(StatusTest, AllCodesDistinguishable) {
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NoSpace("x").IsNoSpace());
  EXPECT_TRUE(Status::Constraint("x").IsConstraint());
  EXPECT_TRUE(Status::Conflict("x").IsConflict());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_FALSE(Status::Aborted("x").IsConflict());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PRIMA_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

TEST(ResultTest, ValuePropagation) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(ResultTest, ErrorPropagation) {
  auto r = Quarter(6);  // 6/2 = 3 -> odd
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Slice
// ---------------------------------------------------------------------------

TEST(SliceTest, CompareAndPrefix) {
  EXPECT_LT(Slice("abc").Compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").Compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").Compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("abcdef").StartsWith(Slice("abc")));
  EXPECT_FALSE(Slice("ab").StartsWith(Slice("abc")));
}

TEST(SliceTest, RemovePrefix) {
  Slice s("hello");
  s.RemovePrefix(2);
  EXPECT_EQ(s.ToString(), "llo");
}

// ---------------------------------------------------------------------------
// Coding
// ---------------------------------------------------------------------------

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  Slice in(buf);
  uint32_t a;
  uint64_t b;
  ASSERT_TRUE(GetFixed32(&in, &a));
  ASSERT_TRUE(GetFixed64(&in, &b));
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 0x0123456789ABCDEFull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTrip) {
  const uint64_t cases[] = {0, 1, 127, 128, 16383, 16384, 1ull << 33,
                            UINT64_MAX};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    Slice in(buf);
    uint64_t out;
    ASSERT_TRUE(GetVarint64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, VarsintRoundTrip) {
  const int64_t cases[] = {0, -1, 1, INT64_MIN, INT64_MAX, -123456789};
  for (int64_t v : cases) {
    std::string buf;
    PutVarsint64(&buf, v);
    Slice in(buf);
    int64_t out;
    ASSERT_TRUE(GetVarint64(&in, reinterpret_cast<uint64_t*>(&out)) || true);
    in = Slice(buf);
    ASSERT_TRUE(GetVarsint64(&in, &out));
    EXPECT_EQ(out, v);
  }
}

TEST(CodingTest, TruncatedVarintFails) {
  std::string buf;
  PutVarint64(&buf, 1ull << 40);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  uint64_t out;
  EXPECT_FALSE(GetVarint64(&in, &out));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  Slice in(buf);
  Slice a, b;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
}

// Order-preservation property: encoded keys sort exactly like values.
class KeyIntOrderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyIntOrderTest, OrderPreserved) {
  Random rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const int64_t a = static_cast<int64_t>(rng.Next());
    const int64_t b = static_cast<int64_t>(rng.Next());
    std::string ka, kb;
    PutKeyInt64(&ka, a);
    PutKeyInt64(&kb, b);
    EXPECT_EQ(a < b, ka < kb) << a << " vs " << b;
    // Round trip.
    Slice in(ka);
    int64_t back;
    ASSERT_TRUE(GetKeyInt64(&in, &back));
    EXPECT_EQ(back, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyIntOrderTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

class KeyDoubleOrderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyDoubleOrderTest, OrderPreserved) {
  Random rng(GetParam());
  auto gen = [&rng]() -> double {
    switch (rng.Uniform(5)) {
      case 0: return 0.0;
      case 1: return -rng.NextDouble() * 1e6;
      case 2: return rng.NextDouble() * 1e-6;
      case 3: return rng.NextDouble() * 1e12;
      default: return -rng.NextDouble();
    }
  };
  for (int i = 0; i < 500; ++i) {
    const double a = gen(), b = gen();
    std::string ka, kb;
    PutKeyDouble(&ka, a);
    PutKeyDouble(&kb, b);
    EXPECT_EQ(a < b, ka < kb) << a << " vs " << b;
    Slice in(ka);
    double back;
    ASSERT_TRUE(GetKeyDouble(&in, &back));
    EXPECT_EQ(back, a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyDoubleOrderTest,
                         ::testing::Values(7, 8, 9));

TEST(CodingTest, KeyStringOrderWithEmbeddedNulAndPrefix) {
  const std::string cases[] = {
      "", std::string("\x00", 1), std::string("\x00\x01", 2),
      "a", "ab", std::string("a\x00b", 3), "b"};
  std::vector<std::pair<std::string, std::string>> encoded;
  for (const auto& s : cases) {
    std::string k;
    PutKeyString(&k, s);
    encoded.emplace_back(k, s);
    // round-trip
    Slice in(k);
    std::string back;
    ASSERT_TRUE(GetKeyString(&in, &back));
    EXPECT_EQ(back, s);
  }
  for (const auto& [ka, sa] : encoded) {
    for (const auto& [kb, sb] : encoded) {
      EXPECT_EQ(sa < sb, ka < kb) << "'" << sa << "' vs '" << sb << "'";
    }
  }
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // Standard test vector: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(Crc32(Slice("123456789")), 0xCBF43926u);
}

TEST(Crc32Test, DetectsCorruption) {
  std::string data(1024, 'x');
  const uint32_t clean = Crc32(data);
  data[512] ^= 1;
  EXPECT_NE(Crc32(data), clean);
}

TEST(Crc32Test, ExtendMatchesWhole) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32(data);
  // Incremental over the same bytes must not equal a naive re-init — the
  // Extend form is defined as continuing the running checksum.
  const uint32_t a = Crc32(Slice(data.data(), 10));
  EXPECT_NE(a, whole);
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, SkewedPrefersLowRanks) {
  Random rng(11);
  uint64_t low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.Skewed(100);
    if (v < 20) ++low;
    if (v >= 80) ++high;
  }
  EXPECT_GT(low, high * 2);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter++; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter++; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter++; });
  pool.Submit([&counter] { counter++; });
  pool.Wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(ThreadPoolTest, ParallelismIsReal) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      const int now = ++concurrent;
      int old_peak = peak.load();
      while (now > old_peak && !peak.compare_exchange_weak(old_peak, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      --concurrent;
    });
  }
  pool.Wait();
  EXPECT_GT(peak.load(), 1);
}

}  // namespace
}  // namespace prima::util
