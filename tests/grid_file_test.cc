#include <gtest/gtest.h>

#include <algorithm>

#include "access/grid_file.h"
#include "util/coding.h"
#include "util/random.h"

namespace prima::access {
namespace {

using storage::MemoryBlockDevice;
using storage::PageSize;
using storage::StorageSystem;

std::string IntKey(int64_t v) {
  std::string k;
  util::PutKeyInt64(&k, v);
  return k;
}

class GridFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageSystem>(
        std::make_unique<MemoryBlockDevice>(), storage::StorageOptions{});
    ASSERT_TRUE(storage_->CreateSegment(1, PageSize::k512).ok());
    grid_ = std::make_unique<GridFile>(storage_.get(), 1, 2, 0, nullptr);
    ASSERT_TRUE(grid_->Open().ok());
  }

  std::unique_ptr<StorageSystem> storage_;
  std::unique_ptr<GridFile> grid_;
};

TEST_F(GridFileTest, InsertAndPointQuery) {
  ASSERT_TRUE(grid_->Insert({IntKey(10), IntKey(20)}, Tid(1, 1)).ok());
  ASSERT_TRUE(grid_->Insert({IntKey(10), IntKey(30)}, Tid(1, 2)).ok());
  std::vector<GridFile::QueryRange> q(2);
  q[0].lo = q[0].hi = IntKey(10);
  q[1].lo = q[1].hi = IntKey(20);
  auto r = grid_->Query(q, {});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].tid, Tid(1, 1));
}

TEST_F(GridFileTest, DuplicateEntryRejected) {
  ASSERT_TRUE(grid_->Insert({IntKey(1), IntKey(2)}, Tid(1, 1)).ok());
  EXPECT_TRUE(
      grid_->Insert({IntKey(1), IntKey(2)}, Tid(1, 1)).IsAlreadyExists());
  // Same keys, different surrogate: allowed.
  EXPECT_TRUE(grid_->Insert({IntKey(1), IntKey(2)}, Tid(1, 2)).ok());
}

TEST_F(GridFileTest, SplitsExtendScales) {
  // Enough entries to force multiple bucket splits on 512-byte pages.
  util::Random rng(5);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(grid_
                    ->Insert({IntKey(rng.Range(0, 1000)),
                              IntKey(rng.Range(0, 1000))},
                             Tid(1, i + 1))
                    .ok());
  }
  const auto cells = grid_->CellCounts();
  EXPECT_GT(cells[0] * cells[1], 1u);
  EXPECT_EQ(grid_->entry_count(), 300u);
}

TEST_F(GridFileTest, DegenerateKeysGrowOverflowChains) {
  // Every entry identical in both dimensions: splitting is impossible, the
  // bucket must chain.
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(grid_->Insert({IntKey(7), IntKey(7)}, Tid(1, i + 1)).ok());
  }
  std::vector<GridFile::QueryRange> q(2);
  q[0].lo = q[0].hi = IntKey(7);
  q[1].lo = q[1].hi = IntKey(7);
  auto r = grid_->Query(q, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 120u);
}

TEST_F(GridFileTest, DeleteRemovesEntry) {
  ASSERT_TRUE(grid_->Insert({IntKey(1), IntKey(1)}, Tid(1, 1)).ok());
  ASSERT_TRUE(grid_->Delete({IntKey(1), IntKey(1)}, Tid(1, 1)).ok());
  EXPECT_TRUE(grid_->Delete({IntKey(1), IntKey(1)}, Tid(1, 1)).IsNotFound());
  EXPECT_EQ(grid_->entry_count(), 0u);
}

TEST_F(GridFileTest, DirectionsOrderResults) {
  ASSERT_TRUE(grid_->Insert({IntKey(1), IntKey(9)}, Tid(1, 1)).ok());
  ASSERT_TRUE(grid_->Insert({IntKey(2), IntKey(8)}, Tid(1, 2)).ok());
  ASSERT_TRUE(grid_->Insert({IntKey(3), IntKey(7)}, Tid(1, 3)).ok());
  std::vector<GridFile::QueryRange> q(2);
  q[0].asc = false;  // dimension 0 descending
  auto r = grid_->Query(q, {0});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].tid, Tid(1, 3));
  EXPECT_EQ((*r)[2].tid, Tid(1, 1));
  // Priority on dimension 1 ascending instead.
  q[0].asc = true;
  auto r2 = grid_->Query(q, {1});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ((*r2)[0].tid, Tid(1, 3));  // smallest dim-1 value (7)
}

TEST_F(GridFileTest, PersistenceRoundTrip) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(grid_->Insert({IntKey(i), IntKey(i * 3 % 50)}, Tid(1, i + 1)).ok());
  }
  ASSERT_TRUE(grid_->Save().ok());
  const uint32_t meta = grid_->meta_page();
  ASSERT_NE(meta, 0u);

  GridFile reopened(storage_.get(), 1, 2, meta, nullptr);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.entry_count(), 100u);
  std::vector<GridFile::QueryRange> q(2);
  q[0].lo = IntKey(10);
  q[0].hi = IntKey(20);
  auto r = reopened.Query(q, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 11u);
}

struct GridRandomParam {
  uint64_t seed;
  int n;
  size_t dims;
};

class GridRandomTest : public ::testing::TestWithParam<GridRandomParam> {};

TEST_P(GridRandomTest, RangeQueriesMatchBruteForce) {
  auto storage = std::make_unique<StorageSystem>(
      std::make_unique<MemoryBlockDevice>(), storage::StorageOptions{});
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k512).ok());
  const size_t dims = GetParam().dims;
  GridFile grid(storage.get(), 1, dims, 0, nullptr);
  ASSERT_TRUE(grid.Open().ok());

  util::Random rng(GetParam().seed);
  struct Entry {
    std::vector<int64_t> keys;
    Tid tid;
  };
  std::vector<Entry> entries;
  for (int i = 0; i < GetParam().n; ++i) {
    Entry e;
    e.tid = Tid(1, i + 1);
    std::vector<std::string> encoded;
    for (size_t d = 0; d < dims; ++d) {
      e.keys.push_back(rng.Range(0, 100));
      encoded.push_back(IntKey(e.keys.back()));
    }
    ASSERT_TRUE(grid.Insert(encoded, e.tid).ok());
    entries.push_back(std::move(e));
  }

  for (int trial = 0; trial < 25; ++trial) {
    std::vector<GridFile::QueryRange> q(dims);
    std::vector<std::pair<int64_t, int64_t>> bounds(dims);
    for (size_t d = 0; d < dims; ++d) {
      int64_t lo = rng.Range(0, 100), hi = rng.Range(0, 100);
      if (lo > hi) std::swap(lo, hi);
      bounds[d] = {lo, hi};
      q[d].lo = IntKey(lo);
      q[d].hi = IntKey(hi);
    }
    auto r = grid.Query(q, {});
    ASSERT_TRUE(r.ok());
    size_t expected = 0;
    for (const Entry& e : entries) {
      bool in = true;
      for (size_t d = 0; d < dims; ++d) {
        if (e.keys[d] < bounds[d].first || e.keys[d] > bounds[d].second) {
          in = false;
          break;
        }
      }
      if (in) ++expected;
    }
    EXPECT_EQ(r->size(), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweeps, GridRandomTest,
                         ::testing::Values(GridRandomParam{1, 400, 2},
                                           GridRandomParam{2, 400, 2},
                                           GridRandomParam{3, 250, 3},
                                           GridRandomParam{4, 150, 1}));

}  // namespace
}  // namespace prima::access
