#include <gtest/gtest.h>

#include <filesystem>

#include "storage/block_device.h"

namespace prima::storage {
namespace {

template <typename T>
std::unique_ptr<BlockDevice> MakeDevice(const std::string& dir);

template <>
std::unique_ptr<BlockDevice> MakeDevice<MemoryBlockDevice>(const std::string&) {
  return std::make_unique<MemoryBlockDevice>();
}
template <>
std::unique_ptr<BlockDevice> MakeDevice<FileBlockDevice>(
    const std::string& dir) {
  return std::make_unique<FileBlockDevice>(dir);
}

template <typename T>
class BlockDeviceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/prima_dev_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    device_ = MakeDevice<T>(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
  std::unique_ptr<BlockDevice> device_;
};

using DeviceTypes = ::testing::Types<MemoryBlockDevice, FileBlockDevice>;
TYPED_TEST_SUITE(BlockDeviceTest, DeviceTypes);

TYPED_TEST(BlockDeviceTest, CreateRejectsInvalidBlockSize) {
  EXPECT_TRUE(this->device_->Create(1, 777).IsInvalidArgument());
  EXPECT_TRUE(this->device_->Create(1, 0).IsInvalidArgument());
}

TYPED_TEST(BlockDeviceTest, AllFiveBlockSizesSupported) {
  uint32_t id = 1;
  for (PageSize s : kAllPageSizes) {
    ASSERT_TRUE(this->device_->Create(id, PageSizeBytes(s)).ok());
    auto bs = this->device_->BlockSizeOf(id);
    ASSERT_TRUE(bs.ok());
    EXPECT_EQ(*bs, PageSizeBytes(s));
    ++id;
  }
}

TYPED_TEST(BlockDeviceTest, DuplicateCreateFails) {
  ASSERT_TRUE(this->device_->Create(1, 512).ok());
  EXPECT_TRUE(this->device_->Create(1, 512).IsAlreadyExists());
}

TYPED_TEST(BlockDeviceTest, WriteReadRoundTrip) {
  ASSERT_TRUE(this->device_->Create(1, 512).ok());
  std::string block(512, 'A');
  block[0] = 'X';
  block[511] = 'Z';
  ASSERT_TRUE(this->device_->Write(1, 5, block.data()).ok());
  std::string out(512, '\0');
  ASSERT_TRUE(this->device_->Read(1, 5, out.data()).ok());
  EXPECT_EQ(out, block);
}

TYPED_TEST(BlockDeviceTest, UnwrittenBlockReadsZero) {
  ASSERT_TRUE(this->device_->Create(1, 1024).ok());
  std::string out(1024, 'q');
  ASSERT_TRUE(this->device_->Read(1, 99, out.data()).ok());
  for (char c : out) EXPECT_EQ(c, '\0');
}

TYPED_TEST(BlockDeviceTest, ChainedTransferCountsOneOperation) {
  ASSERT_TRUE(this->device_->Create(1, 512).ok());
  std::string bulk(512 * 4, '\0');
  for (int i = 0; i < 4; ++i) bulk[i * 512] = static_cast<char>('a' + i);
  const std::vector<uint64_t> blocks = {3, 9, 4, 17};
  ASSERT_TRUE(this->device_->WriteChained(1, blocks, bulk.data()).ok());
  EXPECT_EQ(this->device_->stats().chained_writes.load(), 1u);
  EXPECT_EQ(this->device_->stats().blocks_written.load(), 4u);

  std::string in(512 * 4, '\0');
  ASSERT_TRUE(this->device_->ReadChained(1, blocks, in.data()).ok());
  EXPECT_EQ(this->device_->stats().chained_reads.load(), 1u);
  EXPECT_EQ(this->device_->stats().blocks_read.load(), 4u);
  EXPECT_EQ(in, bulk);
  // One chained op vs four single ops (the paper's page-sequence benefit).
  EXPECT_EQ(this->device_->stats().TotalOps(), 2u);
}

TYPED_TEST(BlockDeviceTest, RemoveDeletesFile) {
  ASSERT_TRUE(this->device_->Create(7, 2048).ok());
  EXPECT_TRUE(this->device_->Exists(7));
  ASSERT_TRUE(this->device_->Remove(7).ok());
  EXPECT_FALSE(this->device_->Exists(7));
  EXPECT_TRUE(this->device_->Remove(7).IsNotFound());
}

TYPED_TEST(BlockDeviceTest, ListFiles) {
  ASSERT_TRUE(this->device_->Create(3, 512).ok());
  ASSERT_TRUE(this->device_->Create(12, 8192).ok());
  auto files = this->device_->ListFiles();
  std::sort(files.begin(), files.end());
  EXPECT_EQ(files, (std::vector<uint32_t>{3, 12}));
}

TEST(FileBlockDeviceTest, PersistsAcrossReopen) {
  const std::string dir = ::testing::TempDir() + "/prima_dev_persist";
  std::filesystem::remove_all(dir);
  {
    FileBlockDevice dev(dir);
    ASSERT_TRUE(dev.Create(1, 4096).ok());
    std::string block(4096, 'p');
    ASSERT_TRUE(dev.Write(1, 2, block.data()).ok());
    ASSERT_TRUE(dev.Sync().ok());
  }
  {
    FileBlockDevice dev(dir);
    EXPECT_TRUE(dev.Exists(1));
    auto bs = dev.BlockSizeOf(1);
    ASSERT_TRUE(bs.ok());
    EXPECT_EQ(*bs, 4096u);
    std::string out(4096, '\0');
    ASSERT_TRUE(dev.Read(1, 2, out.data()).ok());
    EXPECT_EQ(out, std::string(4096, 'p'));
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace prima::storage
