#include <gtest/gtest.h>

#include "access/scan.h"

namespace prima::access {
namespace {

using storage::MemoryBlockDevice;
using storage::StorageSystem;

/// Fixture with a single `item` atom type carrying scalar attributes and a
/// `box` characteristic type for cluster scans.
class ScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageSystem>(
        std::make_unique<MemoryBlockDevice>(), storage::StorageOptions{});
    access_ = std::make_unique<AccessSystem>(storage_.get(), AccessOptions{});
    ASSERT_TRUE(access_->Open().ok());

    AtomTypeDef item;
    item.attrs.push_back({"item_id", TypeDesc::Identifier(), 0});
    item.attrs.push_back({"num", TypeDesc::Integer(), 0});
    item.attrs.push_back({"weight", TypeDesc::Real(), 0});
    item.attrs.push_back({"label", TypeDesc::CharVar(), 0});
    item.attrs.push_back({"box", TypeDesc::RefTo("box", "items"), 0});
    auto id = access_->CreateAtomType("item", item.attrs, {"num"});
    ASSERT_TRUE(id.ok());
    item_ = *id;

    AtomTypeDef box;
    box.attrs.push_back({"box_id", TypeDesc::Identifier(), 0});
    box.attrs.push_back({"box_no", TypeDesc::Integer(), 0});
    box.attrs.push_back(
        {"items", TypeDesc::SetOf(TypeDesc::RefTo("item", "box")), 0});
    auto bid = access_->CreateAtomType("box", box.attrs, {"box_no"});
    ASSERT_TRUE(bid.ok());
    box_ = *bid;
  }

  Tid AddItem(int64_t num, double weight, const std::string& label,
              Tid box = kNullTid) {
    std::vector<AttrValue> values = {AttrValue{1, Value::Int(num)},
                                     AttrValue{2, Value::Real(weight)},
                                     AttrValue{3, Value::String(label)}};
    if (!box.IsNull()) values.push_back(AttrValue{4, Value::Ref(box)});
    auto tid = access_->InsertAtom(item_, values);
    EXPECT_TRUE(tid.ok());
    return *tid;
  }

  std::unique_ptr<StorageSystem> storage_;
  std::unique_ptr<AccessSystem> access_;
  AtomTypeId item_ = 0;
  AtomTypeId box_ = 0;
};

// ---------------------------------------------------------------------------
// Atom-type scan
// ---------------------------------------------------------------------------

TEST_F(ScanTest, AtomTypeScanVisitsAll) {
  for (int i = 0; i < 25; ++i) AddItem(i, i * 0.5, "x");
  AtomTypeScan scan(access_.get(), item_);
  ASSERT_TRUE(scan.Open().ok());
  int n = 0;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    ++n;
  }
  EXPECT_EQ(n, 25);
}

TEST_F(ScanTest, AtomTypeScanSearchArgument) {
  for (int i = 0; i < 20; ++i) AddItem(i, i, i % 2 ? "odd" : "even");
  SearchArgument sarg;
  sarg.conjuncts.push_back({3, {}, CompareOp::kEq, Value::String("odd")});
  sarg.conjuncts.push_back({1, {}, CompareOp::kGe, Value::Int(10)});
  AtomTypeScan scan(access_.get(), item_, sarg);
  ASSERT_TRUE(scan.Open().ok());
  int n = 0;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    EXPECT_GE((*atom)->attrs[1].AsInt(), 10);
    EXPECT_EQ((*atom)->attrs[3].AsString(), "odd");
    ++n;
  }
  EXPECT_EQ(n, 5);  // 11, 13, 15, 17, 19
}

TEST_F(ScanTest, AtomTypeScanNextPriorSymmetric) {
  for (int i = 0; i < 10; ++i) AddItem(i, 0, "x");
  AtomTypeScan scan(access_.get(), item_);
  ASSERT_TRUE(scan.Open().ok());
  auto a1 = scan.Next();  // pos 0
  auto a2 = scan.Next();  // pos 1
  auto a3 = scan.Next();  // pos 2
  ASSERT_TRUE(a3.ok());
  auto back = scan.Prior();  // pos 1 again
  ASSERT_TRUE(back.ok());
  ASSERT_TRUE(back->has_value());
  EXPECT_EQ((*back)->tid, (*a2)->tid);
  auto b1 = scan.Prior();  // pos 0
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b1->has_value());
  EXPECT_EQ((*b1)->tid, (*a1)->tid);
  auto none = scan.Prior();  // before first
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none->has_value());
}

// ---------------------------------------------------------------------------
// Sort scan: the paper's three-way fallback
// ---------------------------------------------------------------------------

TEST_F(ScanTest, SortScanEngagesKeyAccessPath) {
  AddItem(5, 0, "c");
  AddItem(1, 0, "a");
  AddItem(3, 0, "b");
  // `num` is the key -> the implicit key index is an ascending access path.
  SortScan scan(access_.get(), item_, {1}, {true});
  ASSERT_TRUE(scan.Open().ok());
  EXPECT_EQ(scan.mode(), SortScan::Mode::kAccessPath);
  std::vector<int64_t> order;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    order.push_back((*atom)->attrs[1].AsInt());
  }
  EXPECT_EQ(order, (std::vector<int64_t>{1, 3, 5}));
}

TEST_F(ScanTest, SortScanUsesSortOrderWhenInstalled) {
  for (int i : {5, 1, 4, 2, 3}) AddItem(i, 10.0 - i, "x");
  auto sid = access_->CreateSortOrder("by_weight", "item", {"weight"});
  ASSERT_TRUE(sid.ok());
  SortScan scan(access_.get(), item_, {2}, {true});
  ASSERT_TRUE(scan.Open().ok());
  EXPECT_EQ(scan.mode(), SortScan::Mode::kSortOrder);
  double prev = -1e18;
  int n = 0;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    EXPECT_GE((*atom)->attrs[2].AsReal(), prev);
    prev = (*atom)->attrs[2].AsReal();
    ++n;
  }
  EXPECT_EQ(n, 5);
}

TEST_F(ScanTest, SortScanExplicitFallbackOrdersCorrectly) {
  for (int i : {5, 1, 4, 2, 3}) AddItem(i, 0, "l" + std::to_string(i));
  // label has no supporting structure -> temporary (explicit) sort.
  SortScan scan(access_.get(), item_, {3}, {true});
  ASSERT_TRUE(scan.Open().ok());
  EXPECT_EQ(scan.mode(), SortScan::Mode::kExplicitSort);
  std::string prev;
  int n = 0;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    EXPECT_GE((*atom)->attrs[3].AsString(), prev);
    prev = (*atom)->attrs[3].AsString();
    ++n;
  }
  EXPECT_EQ(n, 5);
}

TEST_F(ScanTest, SortScanDescendingAndStartStop) {
  for (int i = 0; i < 10; ++i) AddItem(i, i, "x");
  auto sid =
      access_->CreateSortOrder("by_weight_desc", "item", {"weight"}, {false});
  ASSERT_TRUE(sid.ok());
  SortBound start{{Value::Real(7.0)}, true};  // weight <= 7 (descending!)
  SortBound stop{{Value::Real(3.0)}, true};   // down to weight >= 3
  SortScan scan(access_.get(), item_, {2}, {false}, {}, start, stop);
  ASSERT_TRUE(scan.Open().ok());
  EXPECT_EQ(scan.mode(), SortScan::Mode::kSortOrder);
  std::vector<double> seen;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    seen.push_back((*atom)->attrs[2].AsReal());
  }
  EXPECT_EQ(seen, (std::vector<double>{7, 6, 5, 4, 3}));
}

TEST_F(ScanTest, SortScanSeesDeferredUpdates) {
  auto t = AddItem(1, 1.0, "x");
  auto sid = access_->CreateSortOrder("by_weight", "item", {"weight"});
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(access_->ModifyAtom(t, {AttrValue{2, Value::Real(9.0)}}).ok());
  SortScan scan(access_.get(), item_, {2}, {true});
  ASSERT_TRUE(scan.Open().ok());  // drains the pending upsert
  auto atom = scan.Next();
  ASSERT_TRUE(atom.ok());
  ASSERT_TRUE(atom->has_value());
  EXPECT_DOUBLE_EQ((*atom)->attrs[2].AsReal(), 9.0);
  auto end = scan.Next();
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(end->has_value());  // exactly one entry (no stale copy)
}

// ---------------------------------------------------------------------------
// Access-path scans
// ---------------------------------------------------------------------------

TEST_F(ScanTest, BTreeAccessPathRangeScan) {
  for (int i = 0; i < 30; ++i) AddItem(i, i, "x");
  auto sid = access_->CreateBTreeAccessPath("by_weight", "item", {"weight"});
  ASSERT_TRUE(sid.ok());
  KeyRange range;
  range.start = std::vector<Value>{Value::Real(10.0)};
  range.stop = std::vector<Value>{Value::Real(20.0)};
  range.stop_inclusive = false;
  BTreeAccessPathScan scan(access_.get(), *sid, range);
  ASSERT_TRUE(scan.Open().ok());
  std::vector<int64_t> nums;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    nums.push_back((*atom)->attrs[1].AsInt());
  }
  ASSERT_EQ(nums.size(), 10u);
  EXPECT_EQ(nums.front(), 10);
  EXPECT_EQ(nums.back(), 19);
}

TEST_F(ScanTest, BTreeAccessPathBackwardScan) {
  for (int i = 0; i < 10; ++i) AddItem(i, i, "x");
  auto sid = access_->CreateBTreeAccessPath("by_weight", "item", {"weight"});
  ASSERT_TRUE(sid.ok());
  KeyRange range;
  range.start = std::vector<Value>{Value::Real(3.0)};
  range.stop = std::vector<Value>{Value::Real(7.0)};
  BTreeAccessPathScan scan(access_.get(), *sid, range, /*forward=*/false);
  ASSERT_TRUE(scan.Open().ok());
  std::vector<int64_t> nums;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    nums.push_back((*atom)->attrs[1].AsInt());
  }
  EXPECT_EQ(nums, (std::vector<int64_t>{7, 6, 5, 4, 3}));
}

TEST_F(ScanTest, BTreeAccessPathExclusiveStart) {
  for (int i = 0; i < 10; ++i) AddItem(i, i, "x");
  auto sid = access_->CreateBTreeAccessPath("by_weight", "item", {"weight"});
  ASSERT_TRUE(sid.ok());
  KeyRange range;
  range.start = std::vector<Value>{Value::Real(3.0)};
  range.start_inclusive = false;
  range.stop = std::vector<Value>{Value::Real(5.0)};
  BTreeAccessPathScan scan(access_.get(), *sid, range);
  ASSERT_TRUE(scan.Open().ok());
  std::vector<int64_t> nums;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    nums.push_back((*atom)->attrs[1].AsInt());
  }
  EXPECT_EQ(nums, (std::vector<int64_t>{4, 5}));
}

TEST_F(ScanTest, GridAccessPathPerDimensionConditions) {
  // Place items on a 2-D plane via (num, weight).
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      AddItem(x * 100 + y, x * 10 + y, "x");
    }
  }
  auto sid = access_->CreateGridAccessPath("plane", "item", {"num", "weight"});
  ASSERT_TRUE(sid.ok()) << sid.status().ToString();
  std::vector<GridDimension> dims(2);
  dims[0].lo = Value::Int(200);
  dims[0].hi = Value::Int(404);
  dims[1].lo = Value::Real(25.0);
  dims[1].asc = false;  // descending on weight
  GridAccessPathScan scan(access_.get(), *sid, dims, {1});
  ASSERT_TRUE(scan.Open().ok());
  double prev = 1e18;
  int n = 0;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    const int64_t num = (*atom)->attrs[1].AsInt();
    const double w = (*atom)->attrs[2].AsReal();
    EXPECT_GE(num, 200);
    EXPECT_LE(num, 404);
    EXPECT_GE(w, 25.0);
    EXPECT_LE(w, prev);  // descending by priority dimension
    prev = w;
    ++n;
  }
  EXPECT_GT(n, 0);
}

// ---------------------------------------------------------------------------
// Cluster scans
// ---------------------------------------------------------------------------

TEST_F(ScanTest, AtomClusterTypeScanIteratesClusters) {
  std::vector<Tid> boxes;
  for (int b = 0; b < 3; ++b) {
    auto box = access_->InsertAtom(box_, {AttrValue{1, Value::Int(b + 1)}});
    ASSERT_TRUE(box.ok());
    boxes.push_back(*box);
    for (int i = 0; i < 4; ++i) {
      AddItem(b * 10 + i + 100, i, "x", *box);
    }
  }
  auto cid = access_->CreateAtomClusterType("box_cluster", "box", {"items"});
  ASSERT_TRUE(cid.ok());
  SearchArgument sarg;
  sarg.conjuncts.push_back({1, {}, CompareOp::kGe, Value::Int(2)});
  AtomClusterTypeScan scan(access_.get(), *cid, sarg);
  ASSERT_TRUE(scan.Open().ok());
  int n = 0;
  for (;;) {
    auto image = scan.Next();
    ASSERT_TRUE(image.ok());
    if (!image->has_value()) break;
    EXPECT_GE((*image)->characteristic.attrs[1].AsInt(), 2);
    EXPECT_EQ((*image)->groups[0].second.size(), 4u);
    ++n;
  }
  EXPECT_EQ(n, 2);
}

TEST_F(ScanTest, AtomClusterScanWithinOneCluster) {
  auto box = access_->InsertAtom(box_, {AttrValue{1, Value::Int(1)}});
  ASSERT_TRUE(box.ok());
  for (int i = 0; i < 6; ++i) AddItem(i, i, "x", *box);
  auto cid = access_->CreateAtomClusterType("box_cluster", "box", {"items"});
  ASSERT_TRUE(cid.ok());
  SearchArgument sarg;
  sarg.conjuncts.push_back({1, {}, CompareOp::kLt, Value::Int(3)});
  AtomClusterScan scan(access_.get(), *cid, *box, item_, sarg);
  ASSERT_TRUE(scan.Open().ok());
  int n = 0;
  for (;;) {
    auto atom = scan.Next();
    ASSERT_TRUE(atom.ok());
    if (!atom->has_value()) break;
    EXPECT_LT((*atom)->attrs[1].AsInt(), 3);
    ++n;
  }
  EXPECT_EQ(n, 3);
  // PRIOR walks back from the end position.
  auto back = scan.Prior();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->has_value());
}

TEST_F(ScanTest, ClusterColdReadIsChained) {
  auto box = access_->InsertAtom(box_, {AttrValue{1, Value::Int(1)}});
  ASSERT_TRUE(box.ok());
  for (int i = 0; i < 40; ++i) {
    AddItem(i, i, std::string(200, 'p'), *box);  // fat atoms -> many pages
  }
  auto cid = access_->CreateAtomClusterType("box_cluster", "box", {"items"});
  ASSERT_TRUE(cid.ok());
  ASSERT_TRUE(access_->Flush().ok());
  const StructureDef* def = access_->catalog().GetStructure(*cid);
  ASSERT_TRUE(storage_->buffer().Discard(def->segment).ok());
  storage_->device().stats().Reset();

  auto image = access_->ReadCluster(*cid, *box);
  ASSERT_TRUE(image.ok());
  EXPECT_EQ(image->groups[0].second.size(), 40u);
  EXPECT_EQ(storage_->device().stats().chained_reads.load(), 1u);
}

}  // namespace
}  // namespace prima::access
