#include <gtest/gtest.h>

#include <map>

#include "access/record_file.h"
#include "util/random.h"

namespace prima::access {
namespace {

using storage::MemoryBlockDevice;
using storage::PageSize;
using storage::StorageSystem;

class RecordFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageSystem>(
        std::make_unique<MemoryBlockDevice>(), storage::StorageOptions{});
    ASSERT_TRUE(storage_->CreateSegment(1, PageSize::k512).ok());
    file_ = std::make_unique<RecordFile>(storage_.get(), 1);
    ASSERT_TRUE(file_->Open().ok());
  }

  std::unique_ptr<StorageSystem> storage_;
  std::unique_ptr<RecordFile> file_;
};

TEST_F(RecordFileTest, InsertReadRoundTrip) {
  auto rid = file_->Insert("hello record");
  ASSERT_TRUE(rid.ok());
  auto data = file_->Read(*rid);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello record");
  EXPECT_EQ(file_->record_count(), 1u);
}

TEST_F(RecordFileTest, DeleteMakesRecordUnreachable) {
  auto rid = file_->Insert("gone soon");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(file_->Delete(*rid).ok());
  EXPECT_TRUE(file_->Read(*rid).status().IsNotFound());
  EXPECT_TRUE(file_->Delete(*rid).IsNotFound());
  EXPECT_EQ(file_->record_count(), 0u);
}

TEST_F(RecordFileTest, ShrinkingUpdateStaysInPlace) {
  auto rid = file_->Insert(std::string(100, 'a'));
  ASSERT_TRUE(rid.ok());
  auto new_rid = file_->Update(*rid, "tiny");
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ(new_rid->Pack(), rid->Pack());
  auto data = file_->Read(*new_rid);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "tiny");
}

TEST_F(RecordFileTest, GrowingUpdateMayMove) {
  auto rid = file_->Insert("small");
  ASSERT_TRUE(rid.ok());
  const std::string big(300, 'B');
  auto new_rid = file_->Update(*rid, big);
  ASSERT_TRUE(new_rid.ok());
  auto data = file_->Read(*new_rid);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, big);
}

TEST_F(RecordFileTest, LongRecordsUsePageSequences) {
  const std::string huge(5000, 'L');  // >> 512-byte pages
  auto rid = file_->Insert(huge);
  ASSERT_TRUE(rid.ok());
  EXPECT_TRUE(rid->IsLong());
  auto data = file_->Read(*rid);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, huge);
  // Long -> long update keeps the id.
  const std::string huger(9000, 'M');
  auto new_rid = file_->Update(*rid, huger);
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ(new_rid->Pack(), rid->Pack());
  // Long -> short transition re-homes the record.
  auto short_rid = file_->Update(*new_rid, "now short");
  ASSERT_TRUE(short_rid.ok());
  EXPECT_FALSE(short_rid->IsLong());
  auto back = file_->Read(*short_rid);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "now short");
}

TEST_F(RecordFileTest, ShortToLongTransition) {
  auto rid = file_->Insert("short");
  ASSERT_TRUE(rid.ok());
  auto new_rid = file_->Update(*rid, std::string(4000, 'G'));
  ASSERT_TRUE(new_rid.ok());
  EXPECT_TRUE(new_rid->IsLong());
  auto data = file_->Read(*new_rid);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 4000u);
}

TEST_F(RecordFileTest, NavigationVisitsEverythingInBothDirections) {
  std::vector<uint64_t> rids;
  for (int i = 0; i < 50; ++i) {
    auto rid = file_->Insert("rec" + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid->Pack());
  }
  // Long record in the middle of the scan range.
  auto long_rid = file_->Insert(std::string(2000, 'z'));
  ASSERT_TRUE(long_rid.ok());

  size_t forward = 0;
  auto cur = file_->First();
  ASSERT_TRUE(cur.ok());
  std::vector<uint64_t> forward_order;
  while (cur->has_value()) {
    ++forward;
    forward_order.push_back((*cur)->Pack());
    cur = file_->Next(**cur);
    ASSERT_TRUE(cur.ok());
  }
  EXPECT_EQ(forward, 51u);

  size_t backward = 0;
  auto back = file_->Last();
  ASSERT_TRUE(back.ok());
  std::vector<uint64_t> backward_order;
  while (back->has_value()) {
    ++backward;
    backward_order.push_back((*back)->Pack());
    back = file_->Prev(**back);
    ASSERT_TRUE(back.ok());
  }
  EXPECT_EQ(backward, 51u);
  std::reverse(backward_order.begin(), backward_order.end());
  EXPECT_EQ(forward_order, backward_order);
}

TEST_F(RecordFileTest, CompactionReclaimsGarbage) {
  // Fill one page with records, delete every other one, then insert a
  // record that only fits after compaction.
  std::vector<RecordId> rids;
  for (int i = 0; i < 8; ++i) {
    auto rid = file_->Insert(std::string(50, static_cast<char>('a' + i)));
    ASSERT_TRUE(rid.ok());
    if (rid->page != 1) break;
    rids.push_back(*rid);
  }
  ASSERT_GE(rids.size(), 4u);
  for (size_t i = 0; i < rids.size(); i += 2) {
    ASSERT_TRUE(file_->Delete(rids[i]).ok());
  }
  // A 150-byte record does not fit contiguously but fits after compaction.
  auto rid = file_->Insert(std::string(150, 'C'));
  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(rid->page, 1u);
  auto data = file_->Read(*rid);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 150u);
  // Survivors still readable.
  for (size_t i = 1; i < rids.size(); i += 2) {
    EXPECT_TRUE(file_->Read(rids[i]).ok());
  }
}

TEST_F(RecordFileTest, OpenRebuildsStateFromPages) {
  std::map<uint64_t, std::string> expect;
  util::Random rng(99);
  for (int i = 0; i < 200; ++i) {
    std::string payload(rng.Range(1, 200), static_cast<char>('a' + i % 26));
    auto rid = file_->Insert(payload);
    ASSERT_TRUE(rid.ok());
    expect[rid->Pack()] = payload;
  }
  // Re-attach a fresh RecordFile to the same segment.
  RecordFile reopened(storage_.get(), 1);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.record_count(), 200u);
  for (const auto& [packed, payload] : expect) {
    auto data = reopened.Read(RecordId::Unpack(packed));
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, payload);
  }
  // And inserts still work (free-space cache was rebuilt).
  auto rid = reopened.Insert("after reopen");
  ASSERT_TRUE(rid.ok());
}

class RecordFileRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecordFileRandomTest, RandomOpsMatchModel) {
  auto storage = std::make_unique<StorageSystem>(
      std::make_unique<MemoryBlockDevice>(), storage::StorageOptions{});
  ASSERT_TRUE(storage->CreateSegment(1, PageSize::k1K).ok());
  RecordFile file(storage.get(), 1);
  ASSERT_TRUE(file.Open().ok());

  util::Random rng(GetParam());
  std::map<uint64_t, std::string> model;
  for (int op = 0; op < 1500; ++op) {
    const uint64_t dice = rng.Uniform(100);
    if (dice < 50 || model.empty()) {
      std::string payload(rng.Range(0, 900),
                          static_cast<char>('A' + rng.Uniform(26)));
      auto rid = file.Insert(payload);
      ASSERT_TRUE(rid.ok());
      ASSERT_EQ(model.count(rid->Pack()), 0u);
      model[rid->Pack()] = payload;
    } else if (dice < 75) {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::string payload(rng.Range(0, 1500),
                          static_cast<char>('a' + rng.Uniform(26)));
      auto rid = file.Update(RecordId::Unpack(it->first), payload);
      ASSERT_TRUE(rid.ok());
      model.erase(it);
      model[rid->Pack()] = payload;
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(file.Delete(RecordId::Unpack(it->first)).ok());
      model.erase(it);
    }
  }
  EXPECT_EQ(file.record_count(), model.size());
  for (const auto& [packed, payload] : model) {
    auto data = file.Read(RecordId::Unpack(packed));
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(*data, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordFileRandomTest,
                         ::testing::Values(1, 17, 4242));

}  // namespace
}  // namespace prima::access
