#include <gtest/gtest.h>

#include <map>

#include "access/btree.h"
#include "util/coding.h"
#include "util/random.h"

namespace prima::access {
namespace {

using storage::MemoryBlockDevice;
using storage::PageSize;
using storage::StorageSystem;

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage_ = std::make_unique<StorageSystem>(
        std::make_unique<MemoryBlockDevice>(), storage::StorageOptions{});
    ASSERT_TRUE(storage_->CreateSegment(1, PageSize::k512).ok());
    auto root = BTree::Create(storage_.get(), 1);
    ASSERT_TRUE(root.ok());
    tree_ = std::make_unique<BTree>(storage_.get(), 1, *root,
                                    [this](uint32_t r) { root_changes_.push_back(r); });
  }

  static std::string Key(int64_t v) {
    std::string k;
    util::PutKeyInt64(&k, v);
    return k;
  }

  std::unique_ptr<StorageSystem> storage_;
  std::unique_ptr<BTree> tree_;
  std::vector<uint32_t> root_changes_;
};

TEST_F(BTreeTest, InsertGetDelete) {
  ASSERT_TRUE(tree_->Insert(Key(5), "five").ok());
  ASSERT_TRUE(tree_->Insert(Key(3), "three").ok());
  auto v = tree_->Get(Key(5));
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->has_value());
  EXPECT_EQ(**v, "five");
  auto missing = tree_->Get(Key(99));
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->has_value());
  ASSERT_TRUE(tree_->Delete(Key(5)).ok());
  auto gone = tree_->Get(Key(5));
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone->has_value());
  EXPECT_TRUE(tree_->Delete(Key(5)).IsNotFound());
}

TEST_F(BTreeTest, DuplicateInsertRejectedPutReplaces) {
  ASSERT_TRUE(tree_->Insert(Key(1), "a").ok());
  EXPECT_TRUE(tree_->Insert(Key(1), "b").IsAlreadyExists());
  ASSERT_TRUE(tree_->Put(Key(1), "b").ok());
  auto v = tree_->Get(Key(1));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(**v, "b");
}

TEST_F(BTreeTest, RootSplitsAndCallbackFires) {
  // 512-byte pages force splits quickly.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree_->Insert(Key(i), "value_" + std::to_string(i)).ok());
  }
  EXPECT_FALSE(root_changes_.empty());
  EXPECT_EQ(tree_->root_page(), root_changes_.back());
  for (int i = 0; i < 200; ++i) {
    auto v = tree_->Get(Key(i));
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v->has_value()) << i;
    EXPECT_EQ(**v, "value_" + std::to_string(i));
  }
  auto count = tree_->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 200u);
}

TEST_F(BTreeTest, IterationIsOrderedBothWays) {
  for (int i = 199; i >= 0; --i) {
    ASSERT_TRUE(tree_->Insert(Key(i * 2), std::to_string(i * 2)).ok());
  }
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  int64_t expect = 0;
  while (it.Valid()) {
    util::Slice k(it.key());
    int64_t v;
    ASSERT_TRUE(util::GetKeyInt64(&k, &v));
    EXPECT_EQ(v, expect);
    expect += 2;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(expect, 400);

  ASSERT_TRUE(it.SeekToLast().ok());
  expect = 398;
  while (it.Valid()) {
    util::Slice k(it.key());
    int64_t v;
    ASSERT_TRUE(util::GetKeyInt64(&k, &v));
    EXPECT_EQ(v, expect);
    expect -= 2;
    ASSERT_TRUE(it.Prev().ok());
  }
  EXPECT_EQ(expect, -2);
}

TEST_F(BTreeTest, SeekSemantics) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_->Insert(Key(i * 10), std::to_string(i)).ok());
  }
  auto it = tree_->NewIterator();
  // Seek to existing key.
  ASSERT_TRUE(it.Seek(Key(500)).ok());
  ASSERT_TRUE(it.Valid());
  util::Slice k(it.key());
  int64_t v;
  ASSERT_TRUE(util::GetKeyInt64(&k, &v));
  EXPECT_EQ(v, 500);
  // Seek between keys -> next larger.
  ASSERT_TRUE(it.Seek(Key(501)).ok());
  ASSERT_TRUE(it.Valid());
  k = util::Slice(it.key());
  ASSERT_TRUE(util::GetKeyInt64(&k, &v));
  EXPECT_EQ(v, 510);
  // Seek past the end.
  ASSERT_TRUE(it.Seek(Key(100000)).ok());
  EXPECT_FALSE(it.Valid());
  // SeekForPrev between keys -> previous smaller.
  ASSERT_TRUE(it.SeekForPrev(Key(501)).ok());
  ASSERT_TRUE(it.Valid());
  k = util::Slice(it.key());
  ASSERT_TRUE(util::GetKeyInt64(&k, &v));
  EXPECT_EQ(v, 500);
  // SeekForPrev before the first key.
  ASSERT_TRUE(it.SeekForPrev(Key(-1)).ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, NextPriorMixedTraversal) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(tree_->Insert(Key(i), std::to_string(i)).ok());
  }
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.Seek(Key(25)).ok());
  ASSERT_TRUE(it.Next().ok());   // 26
  ASSERT_TRUE(it.Next().ok());   // 27
  ASSERT_TRUE(it.Prev().ok());   // 26
  util::Slice k(it.key());
  int64_t v;
  ASSERT_TRUE(util::GetKeyInt64(&k, &v));
  EXPECT_EQ(v, 26);
}

TEST_F(BTreeTest, MassDeleteShrinksTree) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree_->Insert(Key(i), std::string(30, 'v')).ok());
  }
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree_->Delete(Key(i)).ok()) << i;
  }
  auto count = tree_->CountEntries();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
  // Tree remains usable.
  ASSERT_TRUE(tree_->Insert(Key(7), "back").ok());
  auto v = tree_->Get(Key(7));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(**v, "back");
}

TEST_F(BTreeTest, OversizedEntryRejected) {
  const std::string huge(4000, 'x');  // larger than a 512-byte node can hold
  EXPECT_TRUE(tree_->Insert(Key(1), huge).IsNotSupported());
}

TEST_F(BTreeTest, ReattachByRootPage) {
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(tree_->Insert(Key(i), std::to_string(i)).ok());
  }
  const uint32_t root = tree_->root_page();
  BTree reattached(storage_.get(), 1, root, nullptr);
  for (int i = 0; i < 150; ++i) {
    auto v = reattached.Get(Key(i));
    ASSERT_TRUE(v.ok());
    ASSERT_TRUE(v->has_value());
    EXPECT_EQ(**v, std::to_string(i));
  }
}

struct RandomParam {
  uint64_t seed;
  int ops;
  PageSize page_size;
};

class BTreeRandomTest : public ::testing::TestWithParam<RandomParam> {};

TEST_P(BTreeRandomTest, MatchesStdMap) {
  auto storage = std::make_unique<StorageSystem>(
      std::make_unique<MemoryBlockDevice>(), storage::StorageOptions{});
  ASSERT_TRUE(storage->CreateSegment(1, GetParam().page_size).ok());
  auto root = BTree::Create(storage.get(), 1);
  ASSERT_TRUE(root.ok());
  BTree tree(storage.get(), 1, *root, nullptr);

  util::Random rng(GetParam().seed);
  std::map<std::string, std::string> model;
  for (int op = 0; op < GetParam().ops; ++op) {
    const uint64_t dice = rng.Uniform(100);
    std::string key;
    util::PutKeyInt64(&key, rng.Range(0, 500));
    if (dice < 60) {
      std::string value(rng.Range(1, 40), static_cast<char>('a' + rng.Uniform(26)));
      const bool existed = model.count(key) != 0;
      auto st = tree.Insert(key, value);
      if (existed) {
        EXPECT_TRUE(st.IsAlreadyExists());
      } else {
        ASSERT_TRUE(st.ok());
        model[key] = value;
      }
    } else if (dice < 85) {
      const bool existed = model.count(key) != 0;
      auto st = tree.Delete(key);
      EXPECT_EQ(st.ok(), existed);
      model.erase(key);
    } else {
      auto v = tree.Get(key);
      ASSERT_TRUE(v.ok());
      auto it = model.find(key);
      EXPECT_EQ(v->has_value(), it != model.end());
      if (v->has_value() && it != model.end()) {
        EXPECT_EQ(**v, it->second);
      }
    }
  }
  // Full ordered comparison via iteration.
  auto it = tree.NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  auto mit = model.begin();
  while (it.Valid() && mit != model.end()) {
    EXPECT_EQ(it.key(), mit->first);
    EXPECT_EQ(it.value(), mit->second);
    ASSERT_TRUE(it.Next().ok());
    ++mit;
  }
  EXPECT_FALSE(it.Valid());
  EXPECT_EQ(mit, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, BTreeRandomTest,
    ::testing::Values(RandomParam{1, 2000, PageSize::k512},
                      RandomParam{2, 2000, PageSize::k512},
                      RandomParam{3, 3000, PageSize::k1K},
                      RandomParam{4, 1500, PageSize::k4K},
                      RandomParam{99, 4000, PageSize::k512}));

}  // namespace
}  // namespace prima::access
