#include "workloads/mmo.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/prima.h"
#include "net/server.h"
#include "recovery/checkpoint_daemon.h"
#include "recovery/crash_device.h"
#include "recovery/wal_writer.h"
#include "storage/block_device.h"
#include "util/retry.h"

namespace prima::workloads {
namespace {

using core::Prima;
using core::PrimaOptions;
using storage::MemoryBlockDevice;
using util::Status;

std::unique_ptr<Prima> OpenMemDb() {
  auto db = Prima::Open({});
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return db.ok() ? std::move(*db) : nullptr;
}

Status InstallAndPopulate(Prima* db, const MmoConfig& cfg) {
  MmoWorkload workload(db);
  PRIMA_RETURN_IF_ERROR(workload.CreateSchema());
  return workload.Populate(cfg);
}

// ---------------------------------------------------------------------------
// Deterministic op generation
// ---------------------------------------------------------------------------

TEST(MmoPlanTest, OpStreamIsDeterministic) {
  MmoConfig cfg;
  cfg.seed = 1234;
  std::vector<int> guild_of(cfg.players, -1);
  for (uint64_t seq = 1; seq <= 500; ++seq) {
    const Op a = PlanOp(cfg, 2, seq, guild_of);
    const Op b = PlanOp(cfg, 2, seq, guild_of);
    ASSERT_EQ(a.kind, b.kind);
    ASSERT_EQ(a.voluntary_abort, b.voluntary_abort);
    ASSERT_EQ(a.player_a, b.player_a);
    ASSERT_EQ(a.player_b, b.player_b);
    ASSERT_EQ(a.item, b.item);
    ASSERT_EQ(a.quest, b.quest);
    ASSERT_EQ(a.guild, b.guild);
    ASSERT_EQ(a.amount, b.amount);
  }
  // Different sessions (and different seeds) draw different streams.
  int diff = 0;
  for (uint64_t seq = 1; seq <= 100; ++seq) {
    const Op a = PlanOp(cfg, 0, seq, guild_of);
    const Op b = PlanOp(cfg, 1, seq, guild_of);
    if (a.kind != b.kind || a.player_a != b.player_a) ++diff;
  }
  EXPECT_GT(diff, 50);
}

TEST(MmoPlanTest, GuildOpsStayInSessionSliceAndLeaveFallsBackToJoin) {
  MmoConfig cfg;
  cfg.sessions = 4;
  cfg.players = 10;
  std::vector<int> guild_of(cfg.players, -1);  // everyone guildless
  bool saw_fallback = false;
  for (uint64_t seq = 1; seq <= 2000; ++seq) {
    const Op op = PlanOp(cfg, 3, seq, guild_of);
    if (op.kind == OpKind::kGuildJoin || op.kind == OpKind::kGuildLeave) {
      EXPECT_EQ(op.player_a % cfg.sessions, 3);
      // With no memberships a leave can never be planned: it must resolve
      // to a join, deterministically.
      EXPECT_EQ(op.kind, OpKind::kGuildJoin);
      saw_fallback = true;
    }
  }
  EXPECT_TRUE(saw_fallback);
  // Once the player IS in a guild, leave targets exactly that guild.
  guild_of.assign(cfg.players, 5);
  for (uint64_t seq = 1; seq <= 2000; ++seq) {
    const Op op = PlanOp(cfg, 3, seq, guild_of);
    if (op.kind == OpKind::kGuildLeave) {
      EXPECT_EQ(op.guild, 5);
    }
  }
}

// ---------------------------------------------------------------------------
// Retry helper (Status::IsTransient + util::RetryTransient)
// ---------------------------------------------------------------------------

TEST(RetryTest, TransientConflictRetriesToSuccess) {
  // A real lock conflict: session 1 holds a write lock, session 2's
  // statement bounces with kConflict until session 1 commits. The retry
  // helper must absorb the bounces and land the statement.
  auto db = OpenMemDb();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Execute("CREATE ATOM_TYPE item (item_id : IDENTIFIER,"
                          " num : INTEGER, name : CHAR_VAR) KEYS_ARE (num)")
                  .ok());
  ASSERT_TRUE(db->Execute("INSERT item (num = 1, name = 'hot')").ok());

  auto holder = db->OpenSession();
  ASSERT_TRUE(holder->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(
      holder->Execute("MODIFY item SET name = 'held' WHERE num = 1").ok());

  std::atomic<uint64_t> retries{0};
  util::RetryPolicy policy;
  policy.max_attempts = 0;  // forever
  policy.retry_counter = &retries;
  auto contender = db->OpenSession();
  std::thread release([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_TRUE(holder->Execute("COMMIT WORK").ok());
  });
  const Status st = util::RetryTransient(policy, [&] {
    auto r = contender->Execute("MODIFY item SET name = 'won' WHERE num = 1");
    return r.ok() ? Status::Ok() : r.status();
  });
  release.join();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(retries.load(), 1u);

  auto check = db->Query("SELECT ALL FROM item");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->molecules[0].groups[0].atoms[0].attrs[2].AsString(), "won");
}

TEST(RetryTest, SemanticErrorDoesNotRetry) {
  std::atomic<uint64_t> retries{0};
  util::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.retry_counter = &retries;
  int attempts = 0;
  const Status st = util::RetryTransient(policy, [&] {
    ++attempts;
    return Status::Constraint("duplicate key");
  });
  EXPECT_TRUE(st.IsConstraint());
  EXPECT_FALSE(st.IsTransient());
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(retries.load(), 0u);
}

TEST(RetryTest, BudgetExhaustionReturnsLastTransientStatus) {
  util::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_floor_us = 1;
  policy.backoff_cap_us = 10;
  int attempts = 0;
  const Status st = util::RetryTransient(policy, [&] {
    ++attempts;
    return Status::Conflict("still locked");
  });
  EXPECT_TRUE(st.IsConflict());
  EXPECT_EQ(attempts, 3);
}

// ---------------------------------------------------------------------------
// Clean run + oracle audit (in-process)
// ---------------------------------------------------------------------------

TEST(MmoDriverTest, CleanRunPassesOracleAudit) {
  auto db = OpenMemDb();
  ASSERT_NE(db, nullptr);
  MmoConfig cfg;
  cfg.sessions = 4;
  cfg.ops_per_session = 150;
  ASSERT_TRUE(InstallAndPopulate(db.get(), cfg).ok());

  MmoDriver driver(db.get(), cfg);
  auto result = driver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ops_acked + result->ops_aborted,
            static_cast<uint64_t>(cfg.sessions) * cfg.ops_per_session);
  EXPECT_EQ(result->ops_aborted, 0u);  // abort_fraction = 0

  MmoOracle oracle(cfg);
  oracle.AdoptShadow(driver.shadow());
  const Status audit = oracle.Audit(db.get());
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  // Latency was recorded per op type for every op that the mix produced.
  uint64_t recorded = 0;
  for (int k = 0; k < kOpKinds; ++k) recorded += result->latency_us[k].count;
  EXPECT_EQ(recorded, static_cast<uint64_t>(cfg.sessions) * cfg.ops_per_session);
}

TEST(MmoDriverTest, AbortStormPassesOracleAudit) {
  auto db = OpenMemDb();
  ASSERT_NE(db, nullptr);
  MmoConfig cfg;
  cfg.sessions = 4;
  cfg.ops_per_session = 150;
  cfg.abort_fraction = 0.3;
  ASSERT_TRUE(InstallAndPopulate(db.get(), cfg).ok());

  MmoDriver driver(db.get(), cfg);
  auto result = driver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->ops_aborted, 0u);

  MmoOracle oracle(cfg);
  oracle.AdoptShadow(driver.shadow());
  const Status audit = oracle.Audit(db.get());
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(MmoDriverTest, HotRowContentionSurfacesInKernelCounters) {
  // Few players + many sessions = constant collisions on the touch locks.
  // The run must still audit clean (retries, never lost updates), and the
  // contention must be visible through Prima::stats() and the metrics text.
  auto db = OpenMemDb();
  ASSERT_NE(db, nullptr);
  MmoConfig cfg;
  cfg.sessions = 8;
  cfg.ops_per_session = 100;
  cfg.players = 8;
  cfg.guilds = 2;
  ASSERT_TRUE(InstallAndPopulate(db.get(), cfg).ok());

  MmoDriver driver(db.get(), cfg);
  auto result = driver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  MmoOracle oracle(cfg);
  oracle.AdoptShadow(driver.shadow());
  const Status audit = oracle.Audit(db.get());
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  const auto stats = db->stats();
  EXPECT_GT(stats.txn.committed, 0u);
  EXPECT_GT(stats.txn.lock_conflicts, 0u)
      << "8 sessions on 8 players should collide";
  EXPECT_GT(result->retries, 0u);
  EXPECT_EQ(stats.txn.txn_retries, result->retries)
      << "driver retries must surface through the kernel counter";

  const std::string metrics = db->MetricsText();
  EXPECT_NE(metrics.find("prima_txn_lock_conflicts"), std::string::npos);
  EXPECT_NE(metrics.find("prima_txn_retries"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire mode: same storm over the network server
// ---------------------------------------------------------------------------

TEST(MmoDriverTest, WireStormPassesOracleAudit) {
  PrimaOptions options;
  options.listen_port = 0;
  auto db = Prima::Open(std::move(options));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_NE((*db)->net_server(), nullptr);

  MmoConfig cfg;
  cfg.sessions = 4;
  cfg.ops_per_session = 60;
  cfg.roster_isolation = core::Isolation::kSnapshot;
  ASSERT_TRUE(InstallAndPopulate(db->get(), cfg).ok());

  MmoDriver driver("127.0.0.1", (*db)->net_server()->port(), cfg);
  auto result = driver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->ops_acked + result->ops_aborted,
            static_cast<uint64_t>(cfg.sessions) * cfg.ops_per_session);

  MmoOracle oracle(cfg);
  oracle.AdoptShadow(driver.shadow());
  const Status audit = oracle.Audit(db->get());
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  // The contention digest rides the stats message for remote operators.
  const auto server_stats = (*db)->net_server()->Stats();
  EXPECT_GT(server_stats.txns_committed, 0u);
}

// ---------------------------------------------------------------------------
// Selective recovery under collision + crash survival (PR-5 semantics)
// ---------------------------------------------------------------------------

class MmoCrashTest : public ::testing::Test {
 protected:
  void SetUp() override { base_ = std::make_shared<MemoryBlockDevice>(); }

  std::unique_ptr<Prima> OpenDb(PrimaOptions options = {}) {
    crash_ = std::make_shared<recovery::CrashingBlockDevice>(base_);
    options.device = crash_;
    auto db = Prima::Open(std::move(options));
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return db.ok() ? std::move(*db) : nullptr;
  }

  void Crash(std::unique_ptr<Prima>* db) {
    crash_->CrashNow();
    db->reset();
  }

  std::shared_ptr<MemoryBlockDevice> base_;
  std::shared_ptr<recovery::CrashingBlockDevice> crash_;
};

TEST_F(MmoCrashTest, LoserCompensatesOnlyItselfAndWinnerSurvivesCrash) {
  auto db = OpenDb();
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Execute("CREATE ATOM_TYPE item (item_id : IDENTIFIER,"
                          " num : INTEGER, name : CHAR_VAR) KEYS_ARE (num)")
                  .ok());
  ASSERT_TRUE(db->Execute("INSERT item (num = 1, name = 'contested')").ok());
  ASSERT_TRUE(db->Flush().ok());

  auto winner = db->OpenSession();
  auto loser = db->OpenSession();
  ASSERT_TRUE(winner->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(
      winner->Execute("MODIFY item SET name = 'winner' WHERE num = 1").ok());

  // The loser makes progress first, then collides: the conflict compensates
  // ONLY the colliding statement (statement-level subtransaction), not the
  // whole transaction — its earlier insert still commits.
  ASSERT_TRUE(loser->Execute("BEGIN WORK").ok());
  ASSERT_TRUE(loser->Execute("INSERT item (num = 2, name = 'kept')").ok());
  auto collide =
      loser->Execute("MODIFY item SET name = 'loser' WHERE num = 1");
  ASSERT_FALSE(collide.ok());
  EXPECT_TRUE(collide.status().IsConflict()) << collide.status().ToString();
  EXPECT_TRUE(collide.status().IsTransient());
  ASSERT_TRUE(loser->Execute("COMMIT WORK").ok());

  ASSERT_TRUE(winner->Execute("COMMIT WORK").ok());

  Crash(&db);

  auto db2 = OpenDb();
  ASSERT_NE(db2, nullptr);
  auto all = db2->Query("SELECT ALL FROM item");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), 2u);
  for (const auto& m : all->molecules) {
    const auto& atom = m.groups[0].atoms[0];
    if (atom.attrs[1].AsInt() == 1) {
      EXPECT_EQ(atom.attrs[2].AsString(), "winner");
    } else {
      EXPECT_EQ(atom.attrs[1].AsInt(), 2);
      EXPECT_EQ(atom.attrs[2].AsString(), "kept");
    }
  }
}

// ---------------------------------------------------------------------------
// Wedged ring: a long transaction pinning the undo floor must surface a
// diagnosable NoSpace, not a hang
// ---------------------------------------------------------------------------

TEST_F(MmoCrashTest, PinnedUndoFloorSurfacesNoSpaceNamingCulprit) {
  PrimaOptions options;
  options.wal_max_bytes = 128 * 4096;      // small ring
  options.checkpoint_ring_fraction = 0.99; // only the commit poke checkpoints
  auto db = OpenDb(std::move(options));
  ASSERT_NE(db, nullptr);
  ASSERT_TRUE(db->Execute("CREATE ATOM_TYPE item (item_id : IDENTIFIER,"
                          " num : INTEGER, name : CHAR_VAR) KEYS_ARE (num)")
                  .ok());

  // The culprit: an old transaction that wrote early and never finishes.
  // Its first LSN pins the undo floor; no checkpoint can reclaim past it.
  auto pin = db->Begin();
  ASSERT_TRUE(pin.ok());
  const auto* item = db->access().catalog().FindAtomType("item");
  ASSERT_TRUE((*pin)->InsertAtom(item->id,
                                 {access::AttrValue{1, access::Value::Int(-1)},
                                  access::AttrValue{
                                      2, access::Value::String("pin")}})
                  .ok());

  Status nospace;
  for (int i = 0; i < 5000; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn.ok());
    auto tid = (*txn)->InsertAtom(
        item->id,
        {access::AttrValue{1, access::Value::Int(i)},
         access::AttrValue{2, access::Value::String(std::string(128, 'x'))}});
    ASSERT_TRUE(tid.ok());
    const Status st = (*txn)->Commit();
    if (!st.ok()) {
      nospace = st;
      break;
    }
  }
  ASSERT_TRUE(nospace.IsNoSpace())
      << "ring full with a pinned floor must refuse, not hang: "
      << nospace.ToString();
  // The refusal names the pinning transaction so an operator can kill it.
  EXPECT_NE(nospace.message().find("oldest_active_lsn"), std::string::npos)
      << nospace.ToString();
  EXPECT_NE(nospace.message().find("by txn " + std::to_string((*pin)->id())),
            std::string::npos)
      << nospace.ToString();
  ASSERT_TRUE((*pin)->Abort().ok());
}

// ---------------------------------------------------------------------------
// The crash drive: kill -9 mid-storm, rebuild the oracle from recovered
// markers, audit every acknowledged mutation value for value
// ---------------------------------------------------------------------------

TEST(MmoCrashDriveTest, KillNineMidStormRecoversEveryAcknowledgedMutation) {
  char dir_template[] = "/tmp/prima_mmo_crash_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;

  MmoConfig cfg;
  cfg.sessions = 4;
  cfg.ops_per_session = 200000;  // far more than run before the kill
  cfg.players = 32;
  cfg.guilds = 4;
  cfg.abort_fraction = 0.15;  // storm: voluntary ABORTs interleave throughout
  cfg.max_attempts = 0;       // retry forever: acked seq order never breaks

  // Shared-memory ack board: per-session high-water mark of acknowledged
  // WRITE ops, plus one progress counter for the parent's kill trigger.
  // MAP_SHARED survives the child's death; an ack written here is the
  // client-visible promise recovery is audited against.
  struct AckBoard {
    std::atomic<int64_t> acked_write_seq[16];
    std::atomic<int64_t> total_writes;
  };
  auto* board = static_cast<AckBoard*>(
      ::mmap(nullptr, sizeof(AckBoard), PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_ANONYMOUS, -1, 0));
  ASSERT_NE(board, MAP_FAILED);
  new (board) AckBoard{};

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // --- child: populate, flush, then storm until killed (no gtest) ---
    PrimaOptions options;
    options.in_memory = false;
    options.path = dir;
    auto db_or = Prima::Open(std::move(options));
    if (!db_or.ok()) ::_exit(10);
    auto child_db = std::move(*db_or);
    if (!InstallAndPopulate(child_db.get(), cfg).ok()) ::_exit(11);
    // Checkpoint the schema + base rows: everything after this must survive
    // on the strength of forced commit records alone.
    if (!child_db->Flush().ok()) ::_exit(12);

    MmoDriver driver(child_db.get(), cfg);
    driver.set_ack_hook([&](const Op& op) {
      if (!op.IsWrite()) return;
      board->acked_write_seq[op.session].store(static_cast<int64_t>(op.seq),
                                               std::memory_order_release);
      board->total_writes.fetch_add(1, std::memory_order_relaxed);
    });
    (void)driver.Run();
    ::pause();  // storm finished early? hold state until SIGKILL anyway
    ::_exit(13);
  }

  // --- parent: wait for storm progress, then pull the plug ---
  for (int i = 0; i < 3000 && board->total_writes.load() < 300; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(board->total_writes.load(), 300)
      << "storm never reached cruise before the kill window";
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Restart recovery on the survivor files.
  PrimaOptions reopen;
  reopen.in_memory = false;
  reopen.path = dir;
  auto db_or = Prima::Open(std::move(reopen));
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  auto db = std::move(*db_or);

  // Durability floor: every acknowledged write's marker must have survived.
  auto markers = ReadMarkers(db.get(), cfg.sessions);
  ASSERT_TRUE(markers.ok()) << markers.status().ToString();
  for (int s = 0; s < cfg.sessions; ++s) {
    EXPECT_GE((*markers)[s], board->acked_write_seq[s].load())
        << "session " << s << " lost acknowledged commits";
  }

  // Exactness: the recovered database equals the deterministic replay of
  // each session's stream up to its marker — every mutation value for
  // value, plus the conservation invariants.
  MmoOracle oracle(cfg);
  oracle.RebuildFromMarkers(*markers);
  const Status audit = oracle.Audit(db.get());
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  ::munmap(board, sizeof(AckBoard));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace prima::workloads
