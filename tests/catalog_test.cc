#include <gtest/gtest.h>

#include "access/catalog.h"

namespace prima::access {
namespace {

AtomTypeDef SimpleType(const std::string& name) {
  AtomTypeDef def;
  def.name = name;
  def.attrs.push_back({name + "_id", TypeDesc::Identifier(), 0});
  def.attrs.push_back({"num", TypeDesc::Integer(), 0});
  return def;
}

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  auto id = catalog.AddAtomType(SimpleType("solid"));
  ASSERT_TRUE(id.ok());
  EXPECT_NE(catalog.FindAtomType("solid"), nullptr);
  EXPECT_EQ(catalog.FindAtomType("solid")->id, *id);
  EXPECT_EQ(catalog.GetAtomType(*id)->name, "solid");
  EXPECT_EQ(catalog.FindAtomType("nope"), nullptr);
  EXPECT_TRUE(catalog.AddAtomType(SimpleType("solid")).status().IsAlreadyExists());
}

TEST(CatalogTest, ExactlyOneIdentifierRequired) {
  Catalog catalog;
  AtomTypeDef none;
  none.name = "none";
  none.attrs.push_back({"x", TypeDesc::Integer(), 0});
  EXPECT_TRUE(catalog.AddAtomType(none).status().IsInvalidArgument());

  AtomTypeDef two;
  two.name = "two";
  two.attrs.push_back({"a", TypeDesc::Identifier(), 0});
  two.attrs.push_back({"b", TypeDesc::Identifier(), 0});
  EXPECT_TRUE(catalog.AddAtomType(two).status().IsInvalidArgument());
}

TEST(CatalogTest, KeyValidation) {
  Catalog catalog;
  AtomTypeDef def = SimpleType("keyed");
  def.key_attrs = {1};
  EXPECT_TRUE(catalog.AddAtomType(def).ok());

  AtomTypeDef bad = SimpleType("bad");
  bad.attrs.push_back({"refs",
                       TypeDesc::SetOf(TypeDesc::RefTo("keyed", "num")), 0});
  bad.key_attrs = {2};  // association attr is not scalar
  EXPECT_TRUE(catalog.AddAtomType(bad).status().IsInvalidArgument());
}

AtomTypeDef PairedA() {
  AtomTypeDef a;
  a.name = "a";
  a.attrs.push_back({"a_id", TypeDesc::Identifier(), 0});
  a.attrs.push_back({"to_b", TypeDesc::SetOf(TypeDesc::RefTo("b", "to_a")), 0});
  return a;
}

AtomTypeDef PairedB() {
  AtomTypeDef b;
  b.name = "b";
  b.attrs.push_back({"b_id", TypeDesc::Identifier(), 0});
  b.attrs.push_back({"to_a", TypeDesc::SetOf(TypeDesc::RefTo("a", "to_b")), 0});
  return b;
}

TEST(CatalogTest, MutualInverseResolution) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddAtomType(PairedA()).ok());
  ASSERT_TRUE(catalog.AddAtomType(PairedB()).ok());
  ASSERT_TRUE(catalog.ResolveReferences().ok());
  const AtomTypeDef* a = catalog.FindAtomType("a");
  const TypeDesc* ref = a->attrs[1].type.ReferenceDesc();
  EXPECT_EQ(ref->ref_type_id, catalog.FindAtomType("b")->id);
  EXPECT_EQ(ref->ref_attr_id, 1);
}

TEST(CatalogTest, ForwardReferencesToleratedUntilResolvable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddAtomType(PairedA()).ok());
  // b not declared yet: resolution succeeds but leaves the link open.
  EXPECT_TRUE(catalog.ResolveReferences().ok());
  const AtomTypeDef* a = catalog.FindAtomType("a");
  EXPECT_EQ(a->attrs[1].type.ReferenceDesc()->ref_type_id, 0);
}

TEST(CatalogTest, NonMutualInverseRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.AddAtomType(PairedA()).ok());
  AtomTypeDef b;
  b.name = "b";
  b.attrs.push_back({"b_id", TypeDesc::Identifier(), 0});
  // Back attr points to a different attribute than the one pointing here.
  b.attrs.push_back({"to_a", TypeDesc::SetOf(TypeDesc::RefTo("a", "a_id")), 0});
  ASSERT_TRUE(catalog.AddAtomType(b).ok());
  EXPECT_TRUE(catalog.ResolveReferences().IsInvalidArgument());
}

TEST(CatalogTest, BackRefMustBeAssociation) {
  Catalog catalog;
  AtomTypeDef a;
  a.name = "a";
  a.attrs.push_back({"a_id", TypeDesc::Identifier(), 0});
  a.attrs.push_back({"to_b", TypeDesc::RefTo("b", "num"), 0});
  ASSERT_TRUE(catalog.AddAtomType(a).ok());
  ASSERT_TRUE(catalog.AddAtomType(SimpleType("b")).ok());
  EXPECT_TRUE(catalog.ResolveReferences().IsInvalidArgument());
}

TEST(CatalogTest, MoleculeTypes) {
  Catalog catalog;
  MoleculeTypeDef def;
  def.name = "piece_list";
  def.from_text = "solid.sub - solid (RECURSIVE)";
  def.recursive = true;
  ASSERT_TRUE(catalog.DefineMoleculeType(def).ok());
  EXPECT_TRUE(catalog.DefineMoleculeType(def).IsAlreadyExists());
  const MoleculeTypeDef* found = catalog.FindMoleculeType("piece_list");
  ASSERT_NE(found, nullptr);
  EXPECT_TRUE(found->recursive);
  ASSERT_TRUE(catalog.DropMoleculeType("piece_list").ok());
  EXPECT_EQ(catalog.FindMoleculeType("piece_list"), nullptr);
}

TEST(CatalogTest, Structures) {
  Catalog catalog;
  StructureDef s;
  s.kind = StructureKind::kSortOrder;
  s.name = "solid_by_no";
  s.atom_type = 1;
  s.attrs = {1};
  s.asc = {true};
  s.segment = 9;
  s.root_page = 1;
  auto id = catalog.AddStructure(s);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(catalog.AddStructure(s).status().IsAlreadyExists());
  EXPECT_EQ(catalog.FindStructure("solid_by_no")->id, *id);
  EXPECT_EQ(catalog.StructuresFor(1).size(), 1u);
  EXPECT_EQ(catalog.StructuresFor(2).size(), 0u);
  ASSERT_TRUE(catalog.SetStructureRoot(*id, 77).ok());
  EXPECT_EQ(catalog.GetStructure(*id)->root_page, 77u);
  ASSERT_TRUE(catalog.DropStructure(*id).ok());
  EXPECT_EQ(catalog.GetStructure(*id), nullptr);
}

TEST(CatalogTest, PersistenceRoundTrip) {
  Catalog catalog;
  AtomTypeDef keyed = SimpleType("keyed");
  keyed.key_attrs = {1};
  ASSERT_TRUE(catalog.AddAtomType(keyed).ok());
  ASSERT_TRUE(catalog.AddAtomType(PairedA()).ok());
  ASSERT_TRUE(catalog.AddAtomType(PairedB()).ok());
  ASSERT_TRUE(catalog.ResolveReferences().ok());
  MoleculeTypeDef mol;
  mol.name = "chain";
  mol.from_text = "a - b";
  ASSERT_TRUE(catalog.DefineMoleculeType(mol).ok());
  StructureDef s;
  s.kind = StructureKind::kBTreeAccessPath;
  s.name = "keyed_key";
  s.atom_type = catalog.FindAtomType("keyed")->id;
  s.attrs = {1};
  s.unique = true;
  s.segment = 4;
  s.root_page = 1;
  ASSERT_TRUE(catalog.AddStructure(s).ok());

  const std::string blob = catalog.Encode();
  Catalog back;
  ASSERT_TRUE(back.DecodeFrom(blob).ok());
  EXPECT_NE(back.FindAtomType("keyed"), nullptr);
  EXPECT_EQ(back.FindAtomType("keyed")->key_attrs, std::vector<uint16_t>{1});
  EXPECT_NE(back.FindMoleculeType("chain"), nullptr);
  const StructureDef* restored = back.FindStructure("keyed_key");
  ASSERT_NE(restored, nullptr);
  EXPECT_TRUE(restored->unique);
  EXPECT_EQ(restored->segment, 4u);
  // References re-resolved after decode.
  const AtomTypeDef* a = back.FindAtomType("a");
  EXPECT_EQ(a->attrs[1].type.ReferenceDesc()->ref_type_id,
            back.FindAtomType("b")->id);
  // New ids continue after the old ones.
  auto next = back.AddAtomType(SimpleType("later"));
  ASSERT_TRUE(next.ok());
  EXPECT_GT(*next, back.FindAtomType("b")->id);
}

TEST(CatalogTest, DecodeRejectsGarbage) {
  Catalog catalog;
  EXPECT_TRUE(catalog.DecodeFrom(util::Slice("nonsense")).IsCorruption());
}

}  // namespace
}  // namespace prima::access
