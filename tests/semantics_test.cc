#include <gtest/gtest.h>

#include "core/prima.h"
#include "mql/parser.h"
#include "mql/semantics.h"
#include "workloads/brep.h"

namespace prima::mql {
namespace {

/// Structure resolution against the Fig. 2.3 BREP schema.
class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = core::Prima::Open({});
    ASSERT_TRUE(db.ok());
    db_ = std::move(*db);
    workloads::BrepWorkload brep(db_.get());
    ASSERT_TRUE(brep.CreateSchema().ok());
    analyzer_ = std::make_unique<SemanticAnalyzer>(&db_->access().catalog());
  }

  util::Result<ResolvedStructure> Resolve(const std::string& text) {
    auto from = ParseFromText(text);
    if (!from.ok()) return from.status();
    return analyzer_->Resolve(*from);
  }

  access::AtomTypeId TypeId(const std::string& name) {
    return db_->access().catalog().FindAtomType(name)->id;
  }

  std::unique_ptr<core::Prima> db_;
  std::unique_ptr<SemanticAnalyzer> analyzer_;
};

TEST_F(SemanticsTest, SingleComponent) {
  auto s = Resolve("solid");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->root.type, TypeId("solid"));
  EXPECT_EQ(s->NodeCount(), 1u);
  EXPECT_FALSE(s->recursive);
}

TEST_F(SemanticsTest, ChainResolvesUniqueAssociations) {
  auto s = Resolve("brep-face-edge-point");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->NodeCount(), 4u);
  // Chain nests: brep -> face -> edge -> point.
  const ResolvedNode* face = &s->root.children[0];
  EXPECT_EQ(face->type, TypeId("face"));
  const ResolvedNode* edge = &face->children[0];
  EXPECT_EQ(edge->type, TypeId("edge"));
  const ResolvedNode* point = &edge->children[0];
  EXPECT_EQ(point->type, TypeId("point"));
  // via_attr on face's child edge must be face.border.
  const auto* face_def = db_->access().catalog().FindAtomType("face");
  EXPECT_EQ(edge->via_attr, face_def->FindAttr("border")->id);
}

TEST_F(SemanticsTest, InverseDirectionResolvesToo) {
  // The symmetric traversal of Fig. 2.1: point-edge-face.
  auto s = Resolve("point-edge-face");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->root.type, TypeId("point"));
  const auto* point_def = db_->access().catalog().FindAtomType("point");
  EXPECT_EQ(s->root.children[0].via_attr, point_def->FindAttr("line")->id);
}

TEST_F(SemanticsTest, BranchingFansOut) {
  auto s = Resolve("brep-edge (face, point)");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->NodeCount(), 4u);
  const ResolvedNode& edge = s->root.children[0];
  ASSERT_EQ(edge.children.size(), 2u);
  EXPECT_EQ(edge.children[0].type, TypeId("face"));
  EXPECT_EQ(edge.children[1].type, TypeId("point"));
}

TEST_F(SemanticsTest, MoleculeTypeSplicing) {
  // brep_obj = brep - face_obj = brep - face - edge_obj = ... -> 4 nodes.
  auto s = Resolve("brep_obj");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->NodeCount(), 4u);
  EXPECT_EQ(s->molecule_name, "brep_obj");
  std::vector<access::AtomTypeId> types = s->AllTypes();
  EXPECT_EQ(types[0], TypeId("brep"));
  EXPECT_EQ(types[3], TypeId("point"));
}

TEST_F(SemanticsTest, SplicedTypeAsComponent) {
  auto s = Resolve("brep - face_obj");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->NodeCount(), 4u);
}

TEST_F(SemanticsTest, RecursiveStructure) {
  auto s = Resolve("solid.sub - solid (RECURSIVE)");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s->recursive);
  EXPECT_EQ(s->root.type, TypeId("solid"));
  const auto* solid_def = db_->access().catalog().FindAtomType("solid");
  EXPECT_EQ(s->rec_attr, solid_def->FindAttr("sub")->id);
}

TEST_F(SemanticsTest, RecursiveMoleculeTypeResolves) {
  auto s = Resolve("piece_list");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_TRUE(s->recursive);
  EXPECT_EQ(s->molecule_name, "piece_list");
}

TEST_F(SemanticsTest, RecursionViaSuperIsDistinct) {
  // The inverse recursion (where-used instead of consists-of).
  auto s = Resolve("solid.super - solid (RECURSIVE)");
  ASSERT_TRUE(s.ok());
  const auto* solid_def = db_->access().catalog().FindAtomType("solid");
  EXPECT_EQ(s->rec_attr, solid_def->FindAttr("super")->id);
}

TEST_F(SemanticsTest, DuplicateTypeNamesDisambiguated) {
  auto s = Resolve("solid.sub - solid");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_FALSE(s->recursive);  // no marker -> plain one-hop self join
  auto names = s->AllNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "solid");
  EXPECT_EQ(names[1], "solid_2");
}

TEST_F(SemanticsTest, Errors) {
  EXPECT_FALSE(Resolve("nosuchtype").ok());
  EXPECT_FALSE(Resolve("solid-point").ok()) << "no association";
  EXPECT_FALSE(Resolve("solid-solid").ok()) << "ambiguous (sub vs super)";
  EXPECT_FALSE(Resolve("solid.brep-face").ok())
      << "via attr targets the wrong type";
  EXPECT_FALSE(Resolve("solid.description-solid").ok())
      << "via attr is not an association";
  EXPECT_FALSE(Resolve("brep - piece_list").ok())
      << "recursive molecule types only stand alone";
}

TEST_F(SemanticsTest, FindNodeAndAllTypes) {
  auto s = Resolve("brep-edge (face, point)");
  ASSERT_TRUE(s.ok());
  EXPECT_NE(s->FindNode("point"), nullptr);
  EXPECT_EQ(s->FindNode("solid"), nullptr);
  EXPECT_EQ(s->AllTypes().size(), 4u);
  EXPECT_EQ(s->AllNames().size(), 4u);
}

}  // namespace
}  // namespace prima::mql
