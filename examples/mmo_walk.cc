// MMO game-backend walk: PRIMA as the persistence tier of a multi-user
// online game. Installs the players/guilds/items schema as atom types with
// association pairs, storms it with a 4-session burst of logins, gold
// transfers, item grants, and guild churn, prints the per-op latency the
// sessions saw — and then asks the kernel to EXPLAIN ANALYZE the one query
// the molecule model was made for: a guild and its members and their
// inventories, in a single FROM path.

#include <cstdio>
#include <cstdlib>

#include "core/prima.h"
#include "workloads/mmo.h"

using namespace prima;  // NOLINT — example brevity

namespace {
void Check(const util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  auto db_or = core::Prima::Open(core::PrimaOptions{});
  Check(db_or.status(), "open");
  auto db = std::move(*db_or);

  // --- install the world ---------------------------------------------------
  workloads::MmoConfig cfg;
  cfg.sessions = 4;
  cfg.ops_per_session = 250;
  cfg.players = 48;
  cfg.guilds = 6;
  workloads::MmoWorkload world(db.get());
  Check(world.CreateSchema(), "schema");
  Check(world.Populate(cfg), "populate");
  std::printf("world: %d players, %d guilds, %d items each, %lld gold each\n",
              cfg.players, cfg.guilds, cfg.items_per_player,
              static_cast<long long>(cfg.initial_gold));

  // --- the burst -----------------------------------------------------------
  // Four session threads, each op a prepared statement inside an explicit
  // transaction; lock conflicts on the hot rows retry with backoff.
  workloads::MmoDriver driver(db.get(), cfg);
  auto run = driver.Run();
  Check(run.status(), "burst");
  std::printf("\n4-session burst: %llu ops acknowledged, %llu retries\n",
              static_cast<unsigned long long>(run->ops_acked),
              static_cast<unsigned long long>(run->retries));
  std::printf("  %-14s %8s %10s %10s\n", "op", "count", "p50 (us)",
              "p99 (us)");
  for (int k = 0; k < workloads::kOpKinds; ++k) {
    const auto& h = run->latency_us[k];
    if (h.count == 0) continue;
    std::printf("  %-14s %8llu %10llu %10llu\n",
                workloads::OpKindName(static_cast<workloads::OpKind>(k)),
                static_cast<unsigned long long>(h.count),
                static_cast<unsigned long long>(h.p50()),
                static_cast<unsigned long long>(h.p99()));
  }

  // The storm was correct, not just fast: the oracle audits gold
  // conservation, guild membership symmetry, and every counter value.
  workloads::MmoOracle oracle(cfg);
  oracle.AdoptShadow(driver.shadow());
  Check(oracle.Audit(db.get()), "oracle audit");
  std::printf("\noracle audit: every acknowledged mutation present, gold "
              "conserved at %lld\n",
              static_cast<long long>(oracle.shadow().total_gold()));

  // --- the molecule query --------------------------------------------------
  // A guild roster is one hierarchical molecule: guild -> members ->
  // inventories. EXPLAIN ANALYZE shows the kernel's per-phase breakdown.
  auto plan = db->Execute(
      "EXPLAIN ANALYZE SELECT ALL FROM guild-player-item WHERE guild_no = 0");
  Check(plan.status(), "explain");
  std::printf("\nEXPLAIN ANALYZE SELECT ALL FROM guild-player-item WHERE "
              "guild_no = 0\n%s\n",
              plan->text.c_str());
  return 0;
}
