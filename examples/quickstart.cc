// Quickstart: the paper's BREP schema (Fig. 2.3) and all four Table 2.1
// queries, end to end, through the session API — PRIMA's primary client
// surface.
//
//   $ ./quickstart
//
// Walks through: opening a database and a session, MAD-DDL, transactional
// DML (BEGIN WORK … COMMIT WORK / ABORT WORK), a prepared statement with
// placeholder binding, streaming a query through a molecule cursor, and an
// LDL tuning structure.

#include <cstdio>
#include <cstdlib>

#include "core/prima.h"
#include "workloads/brep.h"

using prima::access::Value;
using prima::core::Prima;
using prima::core::PrimaOptions;
using prima::core::Session;

namespace {
void Check(const prima::util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void RunAndPrint(Prima* db, Session* session, const char* title,
                 const std::string& query) {
  std::printf("\n--- %s\n%s\n", title, query.c_str());
  auto result = session->Execute(query);
  Check(result.status(), "query");
  std::printf("%s", db->data().Format(*result).c_str());
}
}  // namespace

int main() {
  // 1. Open an in-memory PRIMA database (pass in_memory=false + a path for
  //    a persistent one) and a client session. The session scopes
  //    transactions and owns prepared statements and cursors; open one per
  //    client thread.
  auto db_or = Prima::Open(PrimaOptions{});
  Check(db_or.status(), "open");
  auto db = std::move(*db_or);
  auto session = db->OpenSession();

  // 2. Install the Fig. 2.3 schema: five atom types with symmetric
  //    associations, plus the molecule types edge_obj / face_obj /
  //    brep_obj / piece_list.
  prima::workloads::BrepWorkload brep(db.get());
  Check(brep.CreateSchema(), "schema");
  std::printf("schema installed: %zu atom types, %zu molecule types\n",
              db->access().catalog().ListAtomTypes().size(),
              db->access().catalog().ListMoleculeTypes().size());

  // 3. Build data: a dozen tetrahedra and a small assembly. The generator
  //    inserts atoms through the access API; every back-reference below is
  //    maintained by the system.
  Check(brep.BuildMany(1700, 14).status(), "solids");
  Check(brep.BuildAssembly(4711, 2, 2).status(), "assembly");
  std::printf("built 14 tetrahedra + one assembly (7 more solids)\n");

  // 4. The four queries of Table 2.1 (verbatim modulo constants).
  RunAndPrint(db.get(), session.get(),
              "Table 2.1a: vertical access to network molecules",
              "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713");
  RunAndPrint(db.get(), session.get(),
              "Table 2.1b: vertical access to recursive molecules",
              "SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = 4711");
  RunAndPrint(db.get(), session.get(),
              "Table 2.1c: horizontal access with projection",
              "SELECT solid_no, description FROM solid WHERE sub = EMPTY");
  RunAndPrint(db.get(), session.get(),
              "Table 2.1d: branching, quantifier, qualified projection",
              "SELECT edge, (point, face := SELECT face_id, square_dim "
              "FROM face WHERE square_dim > 5.0E0) "
              "FROM brep-edge (face, point) "
              "WHERE brep_no = 1713 AND "
              "EXISTS_AT_LEAST (2) edge: edge.length > 1.0E0");

  // 5. Transactional DML: every statement runs under the session's
  //    transaction context. Outside BEGIN WORK a statement auto-commits
  //    atomically; inside, COMMIT WORK / ABORT WORK decide. The aborted
  //    insert below leaves no trace.
  std::printf("\n--- transactional DML\n");
  Check(session->Execute("BEGIN WORK").status(), "begin");
  Check(session
            ->Execute("INSERT solid (solid_no = 9000, description = 'new')")
            .status(),
        "insert");
  Check(session->Execute("COMMIT WORK").status(), "commit");
  Check(session->Execute("BEGIN WORK").status(), "begin");
  Check(session
            ->Execute("INSERT solid (solid_no = 9001, description = 'oops')")
            .status(),
        "insert");
  Check(session->Execute("ABORT WORK").status(), "abort");
  auto ghosts = session->Execute("SELECT ALL FROM solid WHERE solid_no = 9001");
  Check(ghosts.status(), "query");
  std::printf("committed insert kept, aborted insert left %zu trace(s)\n",
              ghosts->molecules.size());

  // 6. Prepared statements: parse + semantic analysis + planning run ONCE;
  //    each execution binds new placeholder values. The eq-key plan is
  //    re-planned only when the bound key changes.
  std::printf("\n--- prepared statement\n");
  auto stmt_or =
      session->Prepare("MODIFY solid SET description = :d WHERE solid_no = ?");
  Check(stmt_or.status(), "prepare");
  auto stmt = std::move(*stmt_or);
  Check(stmt.Bind("d", Value::String("renamed")), "bind");
  Check(stmt.Bind(1, Value::Int(9000)), "bind");
  auto mod = stmt.Execute();
  Check(mod.status(), "modify");
  std::printf("MODIFY via placeholders -> %s", db->data().Format(*mod).c_str());

  // 7. Streaming cursors: one molecule per Next() — first-row latency is
  //    one assembly, and an early Close() skips the rest of the set.
  std::printf("\n--- streaming cursor\n");
  auto cursor_or = session->Query("SELECT ALL FROM brep-face-edge-point");
  Check(cursor_or.status(), "cursor");
  auto cursor = std::move(*cursor_or);
  size_t streamed = 0;
  for (;;) {
    auto m = cursor.Next();
    Check(m.status(), "next");
    if (!m->has_value()) break;
    ++streamed;
    if (streamed == 3) {
      cursor.Close();  // early exit: the remaining molecules are never built
      break;
    }
  }
  std::printf("streamed %zu molecule(s), then closed early\n", streamed);

  // 8. Snapshot reads: a cursor opened with Isolation::kSnapshot pins the
  //    commit point it was opened at and resolves every atom against the
  //    in-memory version chains — writers committing mid-drain neither
  //    block it nor appear in it. BEGIN WORK READ ONLY pins one such view
  //    for a whole transaction (repeatable reads, DML refused).
  std::printf("\n--- snapshot isolation\n");
  auto pinned = session->Query("SELECT ALL FROM solid WHERE solid_no = 9000",
                               prima::core::Isolation::kSnapshot);
  Check(pinned.status(), "snapshot cursor");
  auto writer = db->OpenSession();
  Check(writer
            ->Execute("MODIFY solid SET description = 'overwritten' "
                      "WHERE solid_no = 9000")
            .status(),
        "overwrite");
  auto frozen = pinned->Next();
  Check(frozen.status(), "snapshot next");
  std::printf("snapshot cursor still reads '%s' after the commit\n",
              (*frozen)->groups[0].atoms[0].attrs[2].AsString().c_str());
  Check(session->Execute("BEGIN WORK READ ONLY").status(), "read only");
  auto refused =
      session->Execute("INSERT solid (solid_no = 9002, description = 'no')");
  std::printf("DML inside READ ONLY: %s\n",
              refused.status().ToString().c_str());
  Check(session->Execute("COMMIT WORK").status(), "commit read only");

  // 9. LDL: install an atom cluster; the same query now assembles its
  //    molecule from one materialized page sequence — transparently.
  auto ldl = db->ExecuteLdl(
      "CREATE ATOM CLUSTER brep_cluster ON brep (faces, edges, points)");
  Check(ldl.status(), "ldl");
  std::printf("\n--- LDL\n%s\n", ldl->c_str());
  db->data().stats().Reset();
  auto again = session->Execute(
      "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713");
  Check(again.status(), "query");
  std::printf("re-ran 2.1a: %zu molecule(s), cluster assemblies = %llu\n",
              again->molecules.size(),
              (unsigned long long)db->data().stats().cluster_assemblies.load());

  // 10. Observability: EXPLAIN ANALYZE renders the statement's span tree —
  //    parse, plan (cache hit/miss), execute/roots, execute/assembly,
  //    execute/project, and the buffer hit/miss split — with measured
  //    timings from this very execution, not estimates.
  std::printf("\n--- EXPLAIN ANALYZE\n");
  auto analyzed = session->Execute(
      "EXPLAIN ANALYZE SELECT ALL FROM brep-face-edge-point "
      "WHERE brep_no = 1713");
  Check(analyzed.status(), "explain analyze");
  std::printf("%s", analyzed->text.c_str());

  // 11. The metrics page: every kernel counter and latency histogram in one
  //     Prometheus-style dump (also served remotely via
  //     net::Client::MetricsText). Here, just the statement-latency summary.
  const std::string page = db->MetricsText();
  std::printf("\n--- metrics page (statement-latency excerpt of %zu bytes)\n",
              page.size());
  size_t pos = 0;
  while (pos < page.size()) {
    const size_t eol = page.find('\n', pos);
    const std::string line = page.substr(pos, eol - pos);
    if (line.find("prima_statement_us") != std::string::npos) {
      std::printf("%s\n", line.c_str());
    }
    if (eol == std::string::npos) break;
    pos = eol + 1;
  }

  std::printf("\nquickstart complete.\n");
  return 0;
}
