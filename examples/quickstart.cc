// Quickstart: the paper's BREP schema (Fig. 2.3) and all four Table 2.1
// queries, end to end, through the public Prima API.
//
//   $ ./quickstart
//
// Walks through: opening a database, MAD-DDL, inserting a molecule with the
// C++ value API, the four published queries, and an LDL tuning structure.

#include <cstdio>
#include <cstdlib>

#include "core/prima.h"
#include "workloads/brep.h"

using prima::core::Prima;
using prima::core::PrimaOptions;

namespace {
void Check(const prima::util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

void RunAndPrint(Prima* db, const char* title, const std::string& query) {
  std::printf("\n--- %s\n%s\n", title, query.c_str());
  auto result = db->Execute(query);
  Check(result.status(), "query");
  std::printf("%s", db->data().Format(*result).c_str());
}
}  // namespace

int main() {
  // 1. Open an in-memory PRIMA database (pass in_memory=false + a path for
  //    a persistent one).
  auto db_or = Prima::Open(PrimaOptions{});
  Check(db_or.status(), "open");
  auto db = std::move(*db_or);

  // 2. Install the Fig. 2.3 schema: five atom types with symmetric
  //    associations, plus the molecule types edge_obj / face_obj /
  //    brep_obj / piece_list.
  prima::workloads::BrepWorkload brep(db.get());
  Check(brep.CreateSchema(), "schema");
  std::printf("schema installed: %zu atom types, %zu molecule types\n",
              db->access().catalog().ListAtomTypes().size(),
              db->access().catalog().ListMoleculeTypes().size());

  // 3. Build data: a dozen tetrahedra and a small assembly. The generator
  //    inserts atoms through the access API; every back-reference below is
  //    maintained by the system.
  Check(brep.BuildMany(1700, 14).status(), "solids");
  Check(brep.BuildAssembly(4711, 2, 2).status(), "assembly");
  std::printf("built 14 tetrahedra + one assembly (7 more solids)\n");

  // 4. The four queries of Table 2.1 (verbatim modulo constants).
  RunAndPrint(db.get(), "Table 2.1a: vertical access to network molecules",
              "SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713");
  RunAndPrint(db.get(), "Table 2.1b: vertical access to recursive molecules",
              "SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = 4711");
  RunAndPrint(db.get(), "Table 2.1c: horizontal access with projection",
              "SELECT solid_no, description FROM solid WHERE sub = EMPTY");
  RunAndPrint(db.get(), "Table 2.1d: branching, quantifier, qualified projection",
              "SELECT edge, (point, face := SELECT face_id, square_dim "
              "FROM face WHERE square_dim > 5.0E0) "
              "FROM brep-edge (face, point) "
              "WHERE brep_no = 1713 AND "
              "EXISTS_AT_LEAST (2) edge: edge.length > 1.0E0");

  // 5. DML through MQL.
  std::printf("\n--- DML\n");
  auto ins = db->Execute("INSERT solid (solid_no = 9000, description = 'new')");
  Check(ins.status(), "insert");
  std::printf("INSERT -> %s", db->data().Format(*ins).c_str());
  auto mod = db->Execute(
      "MODIFY solid SET description = 'renamed' WHERE solid_no = 9000");
  Check(mod.status(), "modify");
  std::printf("MODIFY -> %s", db->data().Format(*mod).c_str());

  // 6. LDL: install an atom cluster; the same query now assembles its
  //    molecule from one materialized page sequence — transparently.
  auto ldl = db->ExecuteLdl(
      "CREATE ATOM CLUSTER brep_cluster ON brep (faces, edges, points)");
  Check(ldl.status(), "ldl");
  std::printf("\n--- LDL\n%s\n", ldl->c_str());
  db->data().stats().Reset();
  auto again =
      db->Query("SELECT ALL FROM brep-face-edge-point WHERE brep_no = 1713");
  Check(again.status(), "query");
  std::printf("re-ran 2.1a: %zu molecule(s), cluster assemblies = %llu\n",
              again->size(),
              (unsigned long long)db->data().stats().cluster_assemblies.load());

  std::printf("\nquickstart complete.\n");
  return 0;
}
