// Map handling in geographic information systems: the third application
// area of the paper's §1 — and its showcase for NON-DISJOINT molecules:
// adjacent regions share their border atoms, so region molecules overlap
// (the n:m consists-of relationship of [BB84]).

#include <cstdio>
#include <cstdlib>
#include <set>

#include "core/prima.h"
#include "workloads/geo.h"

using namespace prima;  // NOLINT — example brevity

namespace {
void Check(const util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  auto db_or = core::Prima::Open(core::PrimaOptions{});
  Check(db_or.status(), "open");
  auto db = std::move(*db_or);

  workloads::GeoWorkload geo(db.get());
  Check(geo.CreateSchema(), "schema");
  auto map = geo.GenerateGrid(/*map_no=*/1, /*rows=*/6, /*cols=*/8, /*seed=*/3);
  Check(map.status(), "generate");
  std::printf("map 1: %zu regions, %zu shared borders\n",
              map->regions.size(), map->borders.size());

  // Non-disjoint molecules: take two adjacent regions and show their
  // molecules overlap in the shared border atom.
  const access::Tid r0 = map->regions[0];
  const access::Tid r1 = map->regions[1];
  auto mol = [&](const access::Tid& region) {
    auto set = db->Query("SELECT ALL FROM region-border WHERE region_no = " +
                         std::to_string(100000 + (region == r0 ? 0 : 1)));
    Check(set.status(), "region molecule");
    std::set<uint64_t> borders;
    for (const auto& atom :
         set->molecules[0].FindGroup("border")->atoms) {
      borders.insert(atom.tid.Pack());
    }
    return borders;
  };
  const auto b0 = mol(r0);
  const auto b1 = mol(r1);
  std::set<uint64_t> shared;
  for (uint64_t b : b0) {
    if (b1.count(b) != 0) shared.insert(b);
  }
  std::printf("\nnon-disjoint molecules: region A has %zu borders, region B "
              "has %zu, overlap = %zu shared border atom(s)\n",
              b0.size(), b1.size(), shared.size());

  // Symmetric traversal: from a shared border back to BOTH regions.
  auto owners = db->Query(
      "SELECT ALL FROM border-region WHERE border_id = @" +
      std::to_string(access::Tid::Unpack(*shared.begin()).type) + ":" +
      std::to_string(access::Tid::Unpack(*shared.begin()).seq));
  Check(owners.status(), "owners");
  std::printf("symmetric traversal: the shared border reaches %zu regions\n",
              owners->molecules[0].FindGroup("region")->atoms.size());

  // The whole map as one molecule (vertical access across three types).
  auto whole = db->Query("SELECT ALL FROM map-region-border WHERE map_no = 1");
  Check(whole.status(), "whole map");
  std::printf("\nwhole-map molecule: %zu atoms (1 map + %zu regions + %zu "
              "borders; shared borders appear once)\n",
              whole->molecules[0].AtomCount(),
              whole->molecules[0].FindGroup("region")->atoms.size(),
              whole->molecules[0].FindGroup("border")->atoms.size());

  // An analysis query with quantifiers: densely populated regions with a
  // long total perimeter candidate (at least 3 borders longer than 5).
  auto dense = db->Query(
      "SELECT ALL FROM region-border WHERE population > 500000 AND "
      "EXISTS_AT_LEAST (3) border: border.length > 5.0");
  Check(dense.status(), "analysis");
  std::printf("\nanalysis: %zu dense regions with >= 3 long borders\n",
              dense->size());

  // Semantic parallelism over the region molecules.
  auto parallel = db->QueryParallel("SELECT ALL FROM region-border");
  Check(parallel.status(), "parallel");
  std::printf("parallel derivation of all %zu region molecules: ok\n",
              parallel->size());

  // Updating a shared border is a single atom update — both owning regions
  // see it (the MAD answer to the redundancy hazard of Fig. 2.1).
  const access::Tid border = access::Tid::Unpack(*shared.begin());
  Check(db->access().ModifyAtom(
            border, {access::AttrValue{2, access::Value::Real(99.9)}}),
        "modify");
  auto check = db->Query("SELECT ALL FROM region-border WHERE region_no = 100000");
  Check(check.status(), "recheck");
  for (const auto& atom : check->molecules[0].FindGroup("border")->atoms) {
    if (atom.tid == border && atom.attrs[2].AsReal() != 99.9) {
      std::fprintf(stderr, "update not visible!\n");
      return 1;
    }
  }
  std::printf("\nshared border updated once; both regions observe the new "
              "geometry (no redundant copies to chase)\n");

  std::printf("\nmap_handling complete.\n");
  return 0;
}
