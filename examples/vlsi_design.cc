// VLSI circuit design: the second application area of the paper's §1.
//
// Generates a standard-cell circuit (cells, pins, nets — a heavily meshed
// n:m structure), installs LDL tuning for the two dominant access patterns
// (spatial window queries on the placement via a grid file; net tracing via
// an atom cluster), and shows that the same MQL runs before and after the
// tuning — only cheaper.

#include <cstdio>
#include <cstdlib>

#include "core/prima.h"
#include "workloads/vlsi.h"

using namespace prima;  // NOLINT — example brevity

namespace {
void Check(const util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  auto db_or = core::Prima::Open(core::PrimaOptions{});
  Check(db_or.status(), "open");
  auto db = std::move(*db_or);

  workloads::VlsiWorkload vlsi(db.get());
  Check(vlsi.CreateSchema(), "schema");
  auto circuit = vlsi.Generate(/*n_cells=*/300, /*pins_per_cell=*/4,
                               /*n_nets=*/200, /*die_size=*/1000, /*seed=*/7);
  Check(circuit.status(), "generate");
  std::printf("circuit: %zu cells, %zu pins, %zu nets\n",
              circuit->cells.size(), circuit->pins.size(),
              circuit->nets.size());

  const std::string window_query =
      "SELECT cell_no, kind, x, y FROM cell "
      "WHERE x >= 200 AND x <= 400 AND y >= 200 AND y <= 400";

  // 1. Without tuning: the window query scans the whole cell type.
  db->data().stats().Reset();
  auto before = db->Query(window_query);
  Check(before.status(), "window query");
  std::printf("\nplacement window query without tuning: %zu cells, "
              "access = atom-type scan (%llu)\n",
              before->size(),
              (unsigned long long)db->data().stats().atom_type_scans.load());

  // 2. LDL: multidimensional access path on the placement.
  auto ldl = db->ExecuteLdl("CREATE ACCESS PATH place ON cell (x, y) USING GRID");
  Check(ldl.status(), "grid");
  std::printf("%s\n", ldl->c_str());
  db->data().stats().Reset();
  auto after = db->Query(window_query);
  Check(after.status(), "window query 2");
  std::printf("same query with the grid file: %zu cells, grid scans = %llu "
              "(identical result, different cost)\n",
              after->size(),
              (unsigned long long)db->data().stats().grid_scans.load());
  if (after->size() != before->size()) {
    std::fprintf(stderr, "RESULT MISMATCH\n");
    return 1;
  }

  // 3. Net tracing: the n:m navigation cell -> pins -> nets. The molecule of
  //    one cell contains every net its pins participate in.
  auto trace = db->Query("SELECT ALL FROM cell-pin-net WHERE cell_no = 42");
  Check(trace.status(), "trace");
  const mql::Molecule& m = trace->molecules[0];
  std::printf("\nnet trace of cell 42: %zu pins, %zu distinct nets\n",
              m.FindGroup("pin")->atoms.size(),
              m.FindGroup("net")->atoms.size());

  // 4. Cluster the pin fan-out of every net (the 'main lane' of net
  //    tracing), then run a signal integrity pass over all nets.
  auto cluster = db->ExecuteLdl("CREATE ATOM CLUSTER net_pins ON net (pins)");
  Check(cluster.status(), "cluster");
  std::printf("\n%s\n", cluster->c_str());
  db->data().stats().Reset();
  auto nets = db->Query(
      "SELECT ALL FROM net-pin WHERE EXISTS_AT_LEAST (4) pin: pin.pin_no > 0");
  Check(nets.status(), "nets");
  std::printf("high-fanout nets (>= 4 pins): %zu of %zu; cluster assemblies "
              "= %llu\n",
              nets->size(), circuit->nets.size(),
              (unsigned long long)db->data().stats().cluster_assemblies.load());

  // 5. Engineering change order under a transaction: detach a pin from one
  //    net and attach it to another, atomically.
  auto txn = db->Begin();
  Check(txn.status(), "begin");
  const auto* net_def = db->access().catalog().FindAtomType("net");
  const uint16_t net_pins_attr = net_def->FindAttr("pins")->id;
  const access::Tid from_net = circuit->nets[0];
  const access::Tid to_net = circuit->nets[1];
  // Pick a pin that actually sits on net 1.
  auto net_atom = db->access().GetAtom(from_net);
  Check(net_atom.status(), "net read");
  const access::Tid pin = net_atom->attrs[net_pins_attr].elems()[0].AsTid();
  auto detach = (*txn)->Disconnect(from_net, net_pins_attr, pin);
  if (detach.ok()) {
    Check((*txn)->Connect(to_net, net_pins_attr, pin), "attach");
    Check((*txn)->Commit(), "commit");
    std::printf("\nECO applied: moved pin %s from net 1 to net 2 atomically\n",
                pin.ToString().c_str());
  } else {
    Check((*txn)->Abort(), "abort");
    std::printf("\nECO skipped (pin not on net 1): %s\n",
                detach.ToString().c_str());
  }

  std::printf("\nvlsi_design complete.\n");
  return 0;
}
