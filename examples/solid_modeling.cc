// Solid modeling (3D-CAD): the first application area of the paper's §1.
//
// Builds a robot-arm-like assembly of solids (recursive consists-of
// relationships), then exercises the engineering working style the paper
// motivates: recursive bill-of-material retrieval, checkout of a subassembly
// into the application-layer object buffer, local modification, checkin at
// commit time, and a design change bracketed by a nested transaction with a
// partial abort.

#include <cstdio>
#include <cstdlib>

#include "core/prima.h"
#include "workloads/brep.h"

using namespace prima;  // NOLINT — example brevity

namespace {
void Check(const util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  auto db_or = core::Prima::Open(core::PrimaOptions{});
  Check(db_or.status(), "open");
  auto db = std::move(*db_or);
  workloads::BrepWorkload brep(db.get());
  Check(brep.CreateSchema(), "schema");

  // A 3-level assembly: base(1) -> 3 arms -> 3 segments each.
  auto root = brep.BuildAssembly(1, 3, 2);
  Check(root.status(), "assembly");
  std::printf("assembly built: root solid %s\n", root->ToString().c_str());

  // Bill of materials: the recursive piece_list molecule.
  auto bom = db->Query("SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = 1");
  Check(bom.status(), "bom");
  const mql::Molecule& molecule = bom->molecules[0];
  std::printf("bill of material: %zu solids over %zu levels\n",
              molecule.AtomCount(), molecule.levels.size());
  for (size_t level = 0; level < molecule.levels.size(); ++level) {
    std::printf("  level %zu: %zu part(s)\n", level,
                molecule.levels[level].size());
  }

  // Workstation-style editing: check the first arm's subassembly out into
  // the object buffer, rename every part locally, check back in.
  std::printf("\ncheckout / local edit / checkin:\n");
  auto checkout = db->object_buffer().CheckoutQuery(
      "SELECT ALL FROM piece_list WHERE piece_list (0).solid_no = 11");
  Check(checkout.status(), "checkout");
  size_t edited = 0;
  for (auto& m : checkout->molecules().molecules) {
    for (auto& g : m.groups) {
      for (auto& atom : g.atoms) {
        atom.attrs[2] = access::Value::String("arm1/part" +
                                              std::to_string(++edited));
      }
    }
  }
  Check(db->object_buffer().Checkin(&*checkout), "checkin");
  std::printf("  edited %zu parts locally, wrote back %llu atoms\n", edited,
              (unsigned long long)
                  db->object_buffer().stats().atoms_written_back.load());

  // A design change under a nested transaction: replace one sub-arm; the
  // experimental variant is aborted selectively, the safe variant commits.
  std::printf("\nnested-transaction design change:\n");
  auto txn = db->Begin();
  Check(txn.status(), "begin");
  const auto* solid = db->access().catalog().FindAtomType("solid");

  auto experiment = (*txn)->BeginChild();
  Check(experiment.status(), "child");
  auto risky = (*experiment)
                   ->InsertAtom(solid->id,
                                {access::AttrValue{1, access::Value::Int(500)},
                                 access::AttrValue{2, access::Value::String(
                                                          "experimental fixture")}});
  Check(risky.status(), "risky insert");
  std::printf("  subtransaction inserted experimental part %s\n",
              risky->ToString().c_str());
  Check((*experiment)->Abort(), "abort child");
  std::printf("  design review failed -> subtree aborted "
              "(selective in-transaction recovery)\n");

  auto safe = (*txn)->InsertAtom(
      solid->id, {access::AttrValue{1, access::Value::Int(501)},
                  access::AttrValue{2, access::Value::String("approved fixture")}});
  Check(safe.status(), "safe insert");
  Check((*txn)->Commit(), "commit");

  auto fixtures = db->Query("SELECT ALL FROM solid WHERE solid_no >= 500");
  Check(fixtures.status(), "fixtures");
  std::printf("  after commit: %zu fixture(s) (the aborted one is gone)\n",
              fixtures->size());

  // Parallel retrieval of every brep molecule (semantic parallelism).
  auto parallel = db->QueryParallel("SELECT ALL FROM brep-face-edge-point");
  Check(parallel.status(), "parallel");
  std::printf("\nsemantic parallelism: derived %zu brep molecules "
              "concurrently on %zu workers\n",
              parallel->size(), db->pool().num_threads());
  std::printf("\nsolid_modeling complete.\n");
  return 0;
}
