// Remote access: the same session API, served over TCP. This example runs
// both ends in one process — a PRIMA kernel with the network server on a
// kernel-picked port, and a net::Client connected to it over loopback —
// and walks the full remote surface: DDL and DML round trips, an explicit
// transaction held open across round trips, a prepared statement with
// bound placeholders, a streaming molecule cursor fetched in batches, the
// abort-invalidates-remote-cursors contract, snapshot isolation over the
// wire (per-cursor, per-connection default, and BEGIN WORK READ ONLY), and
// the server's wedged-ring and version-store gauges on the wire.
//
//   $ ./remote_client

#include <cstdio>
#include <cstdlib>

#include "core/prima.h"
#include "net/client.h"
#include "net/server.h"

using namespace prima;  // NOLINT — example brevity

namespace {
void Check(const util::Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  // --- server side: one option turns the kernel into a network server ---
  core::PrimaOptions options;
  options.listen_port = 0;  // 0 = kernel-picked; fixed ports work too
  auto db_or = core::Prima::Open(std::move(options));
  Check(db_or.status(), "open");
  auto db = std::move(*db_or);
  const uint16_t port = db->net_server()->port();
  std::printf("serving on 127.0.0.1:%u\n", port);

  // --- client side: one connection == one server-side session ---
  auto client_or = net::Client::Connect("127.0.0.1", port);
  Check(client_or.status(), "connect");
  auto client = std::move(*client_or);

  Check(client
            ->Execute("CREATE ATOM_TYPE city (city_id: IDENTIFIER, "
                      "pop: INTEGER, name: CHAR_VAR) KEYS_ARE (name)")
            .status(),
        "ddl");

  // An explicit transaction spans round trips: the server-side session
  // holds it open between frames.
  Check(client->Begin(), "begin");
  Check(client->Execute("INSERT city (pop = 766000, name = 'Frankfurt')")
            .status(),
        "insert");
  Check(client->Execute("INSERT city (pop = 316000, name = 'Mannheim')")
            .status(),
        "insert");
  Check(client->Commit(), "commit");  // durable once this call returns

  // Prepared remotely: parsed and planned once server-side, bound and
  // executed per call from here.
  auto stmt_or = client->Prepare("INSERT city (pop = ?, name = :name)");
  Check(stmt_or.status(), "prepare");
  auto stmt = std::move(*stmt_or);
  Check(stmt.Bind(0, access::Value::Int(159000)), "bind");
  Check(stmt.Bind("name", access::Value::String("Kaiserslautern")), "bind");
  Check(stmt.Execute().status(), "execute prepared");

  // Streaming: molecules cross the wire in batches, assembled on demand.
  auto cursor_or = client->OpenCursor("SELECT ALL FROM city WHERE pop > "
                                      "200000",
                                      /*batch_size=*/8);
  Check(cursor_or.status(), "open cursor");
  auto cursor = std::move(*cursor_or);
  int n = 0;
  for (;;) {
    auto m = cursor.Next();
    Check(m.status(), "fetch");
    if (!m->has_value()) break;
    const auto& atom = (*m)->groups[0].atoms[0];
    std::printf("  city %-16s pop %ld\n", atom.attrs[2].AsString().c_str(),
                static_cast<long>(atom.attrs[1].AsInt()));
    ++n;
  }
  std::printf("%d big cities\n", n);
  Check(cursor.Close(), "close cursor");

  // Remote-cursor lifetime contract: a rollback invalidates the
  // connection's open cursors exactly as it would a local session's.
  Check(client->Begin(), "begin");
  Check(client->Execute("INSERT city (pop = 1, name = 'Phantomstadt')")
            .status(),
        "insert");
  auto doomed_or = client->OpenCursor("SELECT ALL FROM city");
  Check(doomed_or.status(), "open cursor");
  auto doomed = std::move(*doomed_or);
  Check(client->Abort(), "abort");
  auto after_abort = doomed.Next();
  std::printf("fetch after abort: %s\n",
              after_abort.status().ToString().c_str());  // Aborted: ...

  // Snapshot isolation crosses the wire at three tiers. A cursor opened
  // with Isolation::kSnapshot pins the commit point it was opened at; the
  // writer below commits mid-stream without blocking or appearing in it.
  auto pinned_or = client->OpenCursor("SELECT ALL FROM city",
                                      /*batch_size=*/1,
                                      net::Isolation::kSnapshot);
  Check(pinned_or.status(), "open snapshot cursor");
  auto pinned = std::move(*pinned_or);
  Check(client->Execute("MODIFY city SET pop = 0").status(), "clobber");
  int frozen = 0;
  for (;;) {
    auto m = pinned.Next();
    Check(m.status(), "snapshot fetch");
    if (!m->has_value()) break;
    if ((*m)->groups[0].atoms[0].attrs[1].AsInt() > 0) ++frozen;
  }
  std::printf("snapshot cursor still saw %d pre-clobber populations\n",
              frozen);
  Check(pinned.Close(), "close snapshot cursor");

  // Tier two: a connection-wide default, so every later query on this
  // connection reads a fresh snapshot without per-call annotation. Tier
  // three: Begin(true) == BEGIN WORK READ ONLY pins ONE snapshot for a
  // whole transaction — repeatable across round trips, DML refused.
  Check(client->set_default_isolation(net::Isolation::kSnapshot),
        "set isolation");
  Check(client->Begin(/*read_only=*/true), "begin read only");
  auto refused = client->Execute("INSERT city (pop = 1, name = 'Nope')");
  std::printf("DML inside READ ONLY: %s\n",
              refused.status().ToString().c_str());
  Check(client->Commit(), "commit read only");

  // The server stats message carries the WAL wedged-ring gauge and the
  // version-store gauges, so a remote operator can spot a long transaction
  // pinning the undo floor — or a long snapshot pinning old versions.
  auto stats_or = client->Stats();
  Check(stats_or.status(), "stats");
  std::printf("server: %llu statements over %llu connections, "
              "%llu active txns, wal live bytes %llu\n",
              static_cast<unsigned long long>(stats_or->statements_executed),
              static_cast<unsigned long long>(stats_or->connections_accepted),
              static_cast<unsigned long long>(stats_or->active_txns),
              static_cast<unsigned long long>(stats_or->wal_live_bytes));
  std::printf("version store: %llu retained, %llu resolved, "
              "%llu snapshots active\n",
              static_cast<unsigned long long>(stats_or->versions_retained),
              static_cast<unsigned long long>(stats_or->versions_resolved),
              static_cast<unsigned long long>(stats_or->snapshots_active));

  Check(client->Close(), "goodbye");
  return 0;
}
