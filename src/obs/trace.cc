#include "obs/trace.h"

#include <iomanip>
#include <sstream>

namespace prima::obs {

// ---------------------------------------------------------------------------
// TracePhase
// ---------------------------------------------------------------------------

void TracePhase::AddCounter(const std::string& key, uint64_t delta) {
  for (auto& kv : counters) {
    if (kv.first == key) {
      kv.second += delta;
      return;
    }
  }
  counters.emplace_back(key, delta);
}

const TracePhase* TracePhase::Child(const std::string& child_name) const {
  for (const TracePhase& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// StatementTrace
// ---------------------------------------------------------------------------

namespace {

TracePhase* FindOrAdd(std::vector<TracePhase>* phases,
                      const std::string& name) {
  for (TracePhase& p : *phases) {
    if (p.name == name) return &p;
  }
  phases->emplace_back();
  phases->back().name = name;
  return &phases->back();
}

void RenderPhase(const TracePhase& phase, int depth, std::ostringstream* out) {
  *out << std::string(static_cast<size_t>(depth) * 2, ' ') << std::left
       << std::setw(22 - depth * 2) << phase.name << std::right
       << std::setw(12) << (phase.ns / 1000) << " us";
  if (phase.count > 1) *out << "  x" << phase.count;
  for (const auto& kv : phase.counters) {
    *out << "  [" << kv.first << "=" << kv.second << "]";
  }
  *out << "\n";
  for (const TracePhase& c : phase.children) RenderPhase(c, depth + 1, out);
}

void CollectNames(const TracePhase& phase, const std::string& prefix,
                  std::vector<std::string>* out) {
  const std::string path = prefix.empty() ? phase.name
                                          : prefix + "/" + phase.name;
  out->push_back(path);
  for (const TracePhase& c : phase.children) CollectNames(c, path, out);
}

}  // namespace

TracePhase* StatementTrace::GetPhase(const std::string& name) {
  return FindOrAdd(&phases_, name);
}

TracePhase* StatementTrace::GetPhase(const std::string& name,
                                     const std::string& child) {
  return FindOrAdd(&GetPhase(name)->children, child);
}

void StatementTrace::Finish() {
  if (finished_) return;
  finished_ = true;
  total_ns_ = NowNs() - start_ns_;

  // Fold the cross-thread kernel counters into the tree. Workers may still
  // be draining a detached task and racing these relaxed loads; the render
  // then under-counts the abandoned tail, which is the right answer for a
  // statement that already returned.
  const uint64_t w_ns = worker_assembly_ns.load(std::memory_order_relaxed);
  const uint64_t w_n = worker_assemblies.load(std::memory_order_relaxed);
  if (w_n > 0) {
    TracePhase* assembly = GetPhase("execute", "assembly");
    assembly->AddCounter("worker_busy_us", w_ns / 1000);
    assembly->AddCounter("worker_tasks", w_n);
  }

  const uint64_t hits = buffer_hits.load(std::memory_order_relaxed);
  const uint64_t misses = buffer_misses.load(std::memory_order_relaxed);
  if (hits > 0 || misses > 0) {
    TracePhase* buffer = GetPhase("buffer");
    buffer->ns += buffer_miss_ns.load(std::memory_order_relaxed);
    buffer->count += hits + misses;
    buffer->AddCounter("hits", hits);
    buffer->AddCounter("misses", misses);
  }

  const uint64_t forces = commit_force_waits.load(std::memory_order_relaxed);
  if (forces > 0) {
    TracePhase* commit = GetPhase("commit");
    commit->ns += commit_force_ns.load(std::memory_order_relaxed);
    commit->count += forces;
    commit->AddCounter("force_waits", forces);
  }

  const uint64_t walks = version_chain_walks.load(std::memory_order_relaxed);
  if (walks > 0) {
    TracePhase* chain = GetPhase("execute", "version_chain");
    chain->ns += version_chain_ns.load(std::memory_order_relaxed);
    chain->count += walks;
    chain->AddCounter("resolved",
                      versions_resolved.load(std::memory_order_relaxed));
  }
}

std::string StatementTrace::Render(const std::string& header) const {
  std::ostringstream out;
  out << header << "\n";
  out << "total " << (total_ns_ / 1000) << " us ("
      << (total_ns_ / 1000000) << " ms)\n";
  for (const TracePhase& p : phases_) RenderPhase(p, 0, &out);
  return out.str();
}

std::vector<std::string> StatementTrace::PhaseNames() const {
  std::vector<std::string> names;
  for (const TracePhase& p : phases_) CollectNames(p, "", &names);
  return names;
}

// ---------------------------------------------------------------------------
// Thread-local trace context
// ---------------------------------------------------------------------------

namespace {
thread_local StatementTrace* tls_current_trace = nullptr;
}  // namespace

StatementTrace* CurrentTrace() { return tls_current_trace; }

TraceContext::TraceContext(StatementTrace* trace) : prev_(tls_current_trace) {
  tls_current_trace = trace;
}

TraceContext::~TraceContext() { tls_current_trace = prev_; }

// ---------------------------------------------------------------------------
// SlowQueryLog
// ---------------------------------------------------------------------------

void SlowQueryLog::Record(std::string text, uint64_t total_us,
                          std::string trace) {
  if (capacity_ == 0) return;
  SlowStatement s;
  s.sequence = captured_.fetch_add(1, std::memory_order_relaxed);
  s.text = std::move(text);
  s.total_us = total_us;
  s.trace = std::move(trace);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() == capacity_) ring_.pop_front();
  ring_.push_back(std::move(s));
}

std::vector<SlowStatement> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowStatement>(ring_.begin(), ring_.end());
}

}  // namespace prima::obs
