#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace prima::obs {

// ---------------------------------------------------------------------------
// HistogramSnapshot
// ---------------------------------------------------------------------------

uint64_t HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p > 100.0) p = 100.0;
  // Rank of the target observation, 1-based; p50 of 2 observations is the
  // 1st, p100 the last.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(p / 100.0 * static_cast<double>(count) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= rank) {
      // Interpolate inside the bucket: the k-th of n observations in
      // [lo, hi) reads as lo + (k/n) * width.
      const uint64_t lo = Histogram::BucketLowerBound(i);
      const uint64_t hi = Histogram::BucketUpperBound(i);
      const uint64_t k = rank - seen;
      return lo + (hi - lo) * k / in_bucket;
    }
    seen += in_bucket;
  }
  return Histogram::BucketUpperBound(buckets.size() - 1);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

size_t DefaultStripes() {
  const unsigned hw = std::thread::hardware_concurrency();
  size_t want = hw == 0 ? 8 : hw;
  want = std::min<size_t>(want, 16);
  // Round up to a power of two so stripe selection is a mask.
  size_t pow2 = 1;
  while (pow2 < want) pow2 <<= 1;
  return pow2;
}

}  // namespace

Histogram::Histogram(size_t stripes) {
  if (stripes == 0) stripes = DefaultStripes();
  size_t pow2 = 1;
  while (pow2 < stripes) pow2 <<= 1;
  stripe_count_ = pow2;
  stripes_ = std::make_unique<Stripe[]>(stripe_count_);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (size_t s = 0; s < stripe_count_; ++s) {
    const Stripe& stripe = stripes_[s];
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      const uint64_t n = stripe.buckets[i].load(std::memory_order_relaxed);
      snap.buckets[i] += n;
      snap.count += n;
    }
    snap.sum += stripe.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

void MetricsRegistry::RegisterCounter(std::string name,
                                      const std::atomic<uint64_t>* counter,
                                      std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.type = MetricSample::Type::kCounter;
  e.name = std::move(name);
  e.help = std::move(help);
  e.counter = counter;
  entries_.push_back(std::move(e));
}

void MetricsRegistry::RegisterGauge(std::string name,
                                    std::function<uint64_t()> fn,
                                    std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.type = MetricSample::Type::kGauge;
  e.name = std::move(name);
  e.help = std::move(help);
  e.gauge = std::move(fn);
  entries_.push_back(std::move(e));
}

Histogram* MetricsRegistry::RegisterHistogram(std::string name,
                                              std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.type == MetricSample::Type::kHistogram && e.name == name) {
      return e.histogram.get();
    }
  }
  Entry e;
  e.type = MetricSample::Type::kHistogram;
  e.name = std::move(name);
  e.help = std::move(help);
  e.histogram = std::make_unique<Histogram>();
  entries_.push_back(std::move(e));
  return entries_.back().histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSample s;
    s.name = e.name;
    s.help = e.help;
    s.type = e.type;
    switch (e.type) {
      case MetricSample::Type::kCounter:
        s.value = e.counter->load(std::memory_order_relaxed);
        break;
      case MetricSample::Type::kGauge:
        s.value = e.gauge();
        break;
      case MetricSample::Type::kHistogram:
        s.histogram = e.histogram->Snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::RenderText() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::ostringstream out;
  for (const MetricSample& s : samples) {
    if (!s.help.empty()) out << "# HELP " << s.name << " " << s.help << "\n";
    switch (s.type) {
      case MetricSample::Type::kCounter:
        out << "# TYPE " << s.name << " counter\n";
        out << s.name << " " << s.value << "\n";
        break;
      case MetricSample::Type::kGauge:
        out << "# TYPE " << s.name << " gauge\n";
        out << s.name << " " << s.value << "\n";
        break;
      case MetricSample::Type::kHistogram:
        out << "# TYPE " << s.name << " summary\n";
        out << s.name << "{quantile=\"0.5\"} " << s.histogram.p50() << "\n";
        out << s.name << "{quantile=\"0.95\"} " << s.histogram.p95() << "\n";
        out << s.name << "{quantile=\"0.99\"} " << s.histogram.p99() << "\n";
        out << s.name << "_sum " << s.histogram.sum << "\n";
        out << s.name << "_count " << s.histogram.count << "\n";
        break;
    }
  }
  return out.str();
}

}  // namespace prima::obs
