#ifndef PRIMA_OBS_TRACE_H_
#define PRIMA_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace prima::obs {

/// Monotonic nanosecond clock used by every trace/histogram site.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One phase of a traced statement. Phases accumulate: a streaming cursor
/// enters "assembly" once per molecule, and the phase carries the total
/// time plus the episode count rather than one span per entry (a span tree
/// per molecule would cost more than the work it measures).
struct TracePhase {
  std::string name;
  uint64_t ns = 0;
  uint64_t count = 0;  ///< episodes folded into `ns`
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<TracePhase> children;

  void AddCounter(const std::string& key, uint64_t delta);
  const TracePhase* Child(const std::string& child_name) const;
};

/// The span tree of one statement execution.
///
/// Threading contract: the phase tree (GetPhase/AddPhaseNs/counters) belongs
/// to the statement's owner thread. The `kernel counter` atomics below are
/// the exception — they are written through CurrentTrace() from any thread
/// that works on the statement's behalf (pipelined assembly workers, the
/// buffer pool, the WAL force path) and folded into the tree by Finish().
/// Traces are shared_ptr-owned so a detached assembly task that outlives an
/// abandoned cursor can never write through a dangling pointer.
class StatementTrace {
 public:
  StatementTrace() : start_ns_(NowNs()) {}

  /// Top-level phase by name, created on first use (stable order of first
  /// use — the render order).
  TracePhase* GetPhase(const std::string& name);
  /// Nested phase, e.g. ("execute", "assembly").
  TracePhase* GetPhase(const std::string& name, const std::string& child);

  void AddPhaseNs(const std::string& name, uint64_t ns) {
    TracePhase* p = GetPhase(name);
    p->ns += ns;
    p->count++;
  }
  void AddPhaseNs(const std::string& name, const std::string& child,
                  uint64_t ns) {
    TracePhase* p = GetPhase(name, child);
    p->ns += ns;
    p->count++;
  }

  /// Close the trace: stamp the total and fold the kernel counters into
  /// their phases ("buffer", "commit", execute/assembly worker time).
  /// Idempotent; call once from the owner thread before Render().
  void Finish();
  bool finished() const { return finished_; }

  uint64_t total_ns() const { return total_ns_; }
  uint64_t ElapsedNs() const { return NowNs() - start_ns_; }

  /// Render the span tree as an indented text report.
  std::string Render(const std::string& header) const;

  /// Flat phase names ("parse", "execute", "execute/assembly", ...) — the
  /// golden-test surface for "serial and pipelined run the same phases".
  std::vector<std::string> PhaseNames() const;

  const std::vector<TracePhase>& phases() const { return phases_; }

  // Kernel counters: relaxed atomics, written from any thread via
  // CurrentTrace() (see class comment).
  std::atomic<uint64_t> buffer_hits{0};
  std::atomic<uint64_t> buffer_misses{0};
  std::atomic<uint64_t> buffer_miss_ns{0};     ///< device-read time on misses
  std::atomic<uint64_t> commit_force_waits{0};
  std::atomic<uint64_t> commit_force_ns{0};
  std::atomic<uint64_t> worker_assembly_ns{0};  ///< pipelined workers' busy time
  std::atomic<uint64_t> worker_assemblies{0};
  // Snapshot-read version resolution (MVCC chain walks); folded into an
  // execute/version_chain phase so chain-walk time never silently inflates
  // bare "execute".
  std::atomic<uint64_t> version_chain_walks{0};
  std::atomic<uint64_t> version_chain_ns{0};
  std::atomic<uint64_t> versions_resolved{0};  ///< reads served off-chain

 private:
  uint64_t start_ns_;
  uint64_t total_ns_ = 0;
  bool finished_ = false;
  std::vector<TracePhase> phases_;
};

/// The statement trace active on this thread, or nullptr. Deep layers
/// (buffer pool, WAL) attribute their kernel counters through this instead
/// of threading a parameter down every call chain; the lookup is one
/// thread-local load, so untraced statements pay a null check and nothing
/// else.
StatementTrace* CurrentTrace();

/// RAII scope that installs a trace as the thread's current one (restoring
/// the previous on destruction, so nested scopes compose).
class TraceContext {
 public:
  explicit TraceContext(StatementTrace* trace);
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  StatementTrace* prev_;
};

/// RAII phase timer: adds the scope's elapsed time to a (nested) phase of
/// the owner thread's trace. No-op when `trace` is null.
class PhaseTimer {
 public:
  PhaseTimer(StatementTrace* trace, const char* phase,
             const char* child = nullptr)
      : trace_(trace), phase_(phase), child_(child),
        start_ns_(trace ? NowNs() : 0) {}
  ~PhaseTimer() {
    if (trace_ == nullptr) return;
    const uint64_t ns = NowNs() - start_ns_;
    if (child_ != nullptr) {
      trace_->AddPhaseNs(phase_, child_, ns);
    } else {
      trace_->AddPhaseNs(phase_, ns);
    }
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  StatementTrace* trace_;
  const char* phase_;
  const char* child_;
  uint64_t start_ns_;
};

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// One captured offender: the statement, its total latency, and the full
/// rendered span tree at capture time.
struct SlowStatement {
  uint64_t sequence = 0;  ///< monotonically increasing capture id
  std::string text;
  uint64_t total_us = 0;
  std::string trace;  ///< rendered span tree
};

/// Fixed-capacity ring of the slowest-path evidence: statements whose total
/// latency crossed `PrimaOptions::slow_statement_us` are recorded with
/// their span trees; when full, the oldest capture is evicted. Thread-safe
/// (captures come from any session thread); capturing is off the statement
/// hot path — only offenders pay the mutex.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 64) : capacity_(capacity) {}

  void Record(std::string text, uint64_t total_us, std::string trace);

  /// Oldest-first copy of the ring.
  std::vector<SlowStatement> Snapshot() const;

  /// Total captures ever (>= Snapshot().size(); the difference is evictions).
  uint64_t captured() const { return captured_.load(std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::atomic<uint64_t> captured_{0};
  mutable std::mutex mu_;
  std::deque<SlowStatement> ring_;
};

}  // namespace prima::obs

#endif  // PRIMA_OBS_TRACE_H_
