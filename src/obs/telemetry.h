#ifndef PRIMA_OBS_TELEMETRY_H_
#define PRIMA_OBS_TELEMETRY_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace prima::obs {

/// Tracing/telemetry knobs (mirrored from PrimaOptions by Prima::Open;
/// defaults keep every knob off).
struct TelemetryOptions {
  /// Statements slower than this (microseconds) are captured — full span
  /// tree — into the slow-query ring. 0 disables capture. Non-zero arms
  /// always-on tracing: offenders are only identifiable after the fact, so
  /// every statement carries a trace while the knob is set.
  uint64_t slow_statement_us = 0;
  /// Trace every Nth statement (0 = never). Sampled traces feed the same
  /// span machinery EXPLAIN ANALYZE uses; with both knobs 0, statements pay
  /// one thread-local null check and a latency-histogram record only.
  uint64_t trace_sample_n = 0;
  /// Ring capacity of the slow-query log.
  size_t slow_log_capacity = 64;
};

/// The kernel's telemetry hub: one registry of every subsystem's counters,
/// the kernel latency histograms, the slow-query ring, and the sampling
/// decision. Owned by Prima (constructed first, destroyed last, so every
/// subsystem may hold pointers into it); reachable from sessions through
/// DataSystem::telemetry(), which is null for bare embedded test rigs —
/// every consumer must tolerate that.
class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {})
      : options_(options),
        slow_log_(options.slow_log_capacity),
        statement_us_(registry_.RegisterHistogram(
            "prima_statement_us", "statement latency, microseconds")),
        parse_us_(registry_.RegisterHistogram(
            "prima_parse_us", "MQL parse latency, microseconds")),
        plan_us_(registry_.RegisterHistogram(
            "prima_plan_us", "access-path planning latency, microseconds")),
        commit_force_us_(registry_.RegisterHistogram(
            "prima_commit_force_us",
            "WAL commit-force wait, microseconds")),
        net_request_us_(registry_.RegisterHistogram(
            "prima_net_request_us",
            "server request handling latency, microseconds")),
        net_encode_us_(registry_.RegisterHistogram(
            "prima_net_encode_us",
            "server reply encode+write latency, microseconds")) {
    registry_.RegisterGauge(
        "prima_slow_statements",
        [this] { return slow_log_.captured(); },
        "statements captured by the slow-query log");
    registry_.RegisterCounter("prima_statements_traced", &traced_,
                              "statements that carried a span tree");
  }

  const TelemetryOptions& options() const { return options_; }
  MetricsRegistry& registry() { return registry_; }
  SlowQueryLog& slow_log() { return slow_log_; }

  Histogram* statement_us() { return statement_us_; }
  Histogram* parse_us() { return parse_us_; }
  Histogram* plan_us() { return plan_us_; }
  Histogram* commit_force_us() { return commit_force_us_; }
  Histogram* net_request_us() { return net_request_us_; }
  Histogram* net_encode_us() { return net_encode_us_; }

  /// Should the next statement carry a span tree? Slow-query capture forces
  /// yes (see TelemetryOptions); otherwise every trace_sample_n-th
  /// statement samples in. Thread-safe.
  bool ShouldTraceStatement() {
    if (options_.slow_statement_us > 0) return true;
    const uint64_t n = options_.trace_sample_n;
    if (n == 0) return false;
    return sample_clock_.fetch_add(1, std::memory_order_relaxed) % n == 0;
  }

  void CountTraced() { traced_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t traced() const { return traced_.load(std::memory_order_relaxed); }

  /// Record a finished statement's latency; captures into the slow log when
  /// the statement crossed the threshold and carried a trace.
  void RecordStatement(const std::string& text, StatementTrace* trace,
                       uint64_t total_us) {
    statement_us_->Record(total_us);
    if (trace != nullptr && options_.slow_statement_us > 0 &&
        total_us >= options_.slow_statement_us) {
      slow_log_.Record(text, total_us,
                       trace->Render("slow statement: " + text));
    }
  }

 private:
  TelemetryOptions options_;
  MetricsRegistry registry_;
  SlowQueryLog slow_log_;
  std::atomic<uint64_t> sample_clock_{0};
  std::atomic<uint64_t> traced_{0};

  Histogram* statement_us_;
  Histogram* parse_us_;
  Histogram* plan_us_;
  Histogram* commit_force_us_;
  Histogram* net_request_us_;
  Histogram* net_encode_us_;
};

}  // namespace prima::obs

#endif  // PRIMA_OBS_TELEMETRY_H_
