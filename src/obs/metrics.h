#ifndef PRIMA_OBS_METRICS_H_
#define PRIMA_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace prima::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Bucket layout: HDR-style log-linear. 8 sub-buckets per power of two, so
/// any recorded value lands in a bucket whose width is at most 12.5% of its
/// lower bound — percentile error is bounded by the same ratio at any scale
/// (1us parses and multi-second commit storms share one layout). Values
/// 0..7 are exact.
inline constexpr int kHistogramSubBits = 3;
inline constexpr int kHistogramSubBuckets = 1 << kHistogramSubBits;  // 8
inline constexpr size_t kHistogramBuckets =
    (64 - kHistogramSubBits + 1) * kHistogramSubBuckets;  // 496

/// Point-in-time merged copy of a Histogram (plain data, safe to copy and
/// diff). Percentiles interpolate linearly inside the landing bucket.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Value at percentile p (0 < p <= 100); 0 when empty.
  uint64_t Percentile(double p) const;
  uint64_t p50() const { return Percentile(50.0); }
  uint64_t p95() const { return Percentile(95.0); }
  uint64_t p99() const { return Percentile(99.0); }
  uint64_t Mean() const { return count == 0 ? 0 : sum / count; }

  /// Merge another snapshot into this one (bench aggregation).
  void Merge(const HistogramSnapshot& other);
};

/// Lock-free fixed-bucket latency histogram (unit chosen by the caller;
/// kernel histograms record microseconds).
///
/// Record() touches exactly two relaxed atomics in a stripe selected by the
/// calling thread's id, so concurrent recorders on different cores do not
/// bounce a shared cache line; Snapshot() merges the stripes. Never blocks,
/// never allocates after construction — safe from any kernel thread,
/// including buffer-pool and WAL paths.
class Histogram {
 public:
  explicit Histogram(size_t stripes = 0);  // 0 = a default sized for the host

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    Stripe& s = stripe();
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  /// Bucket index for a value (log-linear, see kHistogramSubBits).
  static size_t BucketIndex(uint64_t v) {
    if (v < kHistogramSubBuckets) return static_cast<size_t>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int shift = msb - kHistogramSubBits;
    const uint64_t offset = (v >> shift) & (kHistogramSubBuckets - 1);
    return static_cast<size_t>(msb - kHistogramSubBits + 1) *
               kHistogramSubBuckets +
           static_cast<size_t>(offset);
  }

  /// Inclusive lower bound of a bucket (inverse of BucketIndex).
  static uint64_t BucketLowerBound(size_t index) {
    const uint64_t group = index >> kHistogramSubBits;
    const uint64_t offset = index & (kHistogramSubBuckets - 1);
    if (group == 0) return offset;
    return (uint64_t{1} << (group - 1 + kHistogramSubBits)) |
           (offset << (group - 1));
  }
  /// Exclusive upper bound of a bucket.
  static uint64_t BucketUpperBound(size_t index) {
    const uint64_t group = index >> kHistogramSubBits;
    if (group == 0) return (index & (kHistogramSubBuckets - 1)) + 1;
    return BucketLowerBound(index) + (uint64_t{1} << (group - 1));
  }

 private:
  // One cache-line-aligned slice of the counters. `sum` rides in the same
  // allocation; count is derived from the buckets at snapshot time.
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };

  Stripe& stripe() const {
    // Hash of the thread id, computed once per thread: recorders spread
    // over the stripes without any registration step.
    static thread_local size_t tls_slot =
        std::hash<std::thread::id>()(std::this_thread::get_id());
    return stripes_[tls_slot & (stripe_count_ - 1)];
  }

  size_t stripe_count_;  // power of two
  std::unique_ptr<Stripe[]> stripes_;
};

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

/// One sample in a registry snapshot.
struct MetricSample {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Type type = Type::kCounter;
  uint64_t value = 0;               // counters and gauges
  HistogramSnapshot histogram;      // histograms only
};

/// Central name -> metric directory. The hot path never touches it: counters
/// are the kernel's existing std::atomic fields registered by address,
/// gauges are pull-callbacks evaluated at snapshot time, and histograms are
/// owned here but recorded into directly via the pointer RegisterHistogram
/// returns. The mutex guards registration and snapshot iteration only.
///
/// Naming scheme: prima_<subsystem>_<what>[_<unit>], e.g.
/// `prima_buffer_hits`, `prima_statement_us`. Counters are cumulative since
/// Open; histograms carry their unit as a suffix.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register an existing atomic counter by address. The atomic must
  /// outlive the registry (kernel stats structs do: Prima's teardown order
  /// destroys the registry last).
  void RegisterCounter(std::string name, const std::atomic<uint64_t>* counter,
                       std::string help = "");

  /// Register a pull-gauge; `fn` runs on every snapshot/render.
  void RegisterGauge(std::string name, std::function<uint64_t()> fn,
                     std::string help = "");

  /// Create (or fetch, if the name exists) a registry-owned histogram.
  /// The returned pointer is stable for the registry's lifetime.
  Histogram* RegisterHistogram(std::string name, std::string help = "");

  /// Merged point-in-time copy of every metric, in registration order.
  std::vector<MetricSample> Snapshot() const;

  /// Prometheus-style text exposition: counters/gauges one line each,
  /// histograms as summaries (quantile lines + _sum + _count).
  std::string RenderText() const;

 private:
  struct Entry {
    MetricSample::Type type;
    std::string name;
    std::string help;
    const std::atomic<uint64_t>* counter = nullptr;
    std::function<uint64_t()> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

}  // namespace prima::obs

#endif  // PRIMA_OBS_METRICS_H_
