#ifndef PRIMA_LDL_LDL_H_
#define PRIMA_LDL_LDL_H_

#include <string>

#include "access/access_system.h"
#include "util/result.h"

namespace prima::ldl {

/// The load definition language (paper §2.3): DBA "hints" that install or
/// drop the redundant storage structures — access paths, sort orders,
/// partitions, physical (atom) clusters. All of them are transparent at the
/// MAD interface: queries never change, only their cost.
///
/// Grammar:
///   CREATE ACCESS PATH name ON type (attr, ...) [UNIQUE] [USING GRID]
///   CREATE SORT ORDER  name ON type (attr [ASC|DESC], ...)
///   CREATE PARTITION   name ON type (attr, ...)
///   CREATE ATOM CLUSTER name ON type (ref_attr, ...)
///   DROP STRUCTURE name
class LoadDefinition {
 public:
  explicit LoadDefinition(access::AccessSystem* access) : access_(access) {}

  /// Execute one LDL statement; returns a human-readable confirmation.
  util::Result<std::string> Execute(const std::string& text);

 private:
  access::AccessSystem* access_;
};

}  // namespace prima::ldl

#endif  // PRIMA_LDL_LDL_H_
