#include "ldl/ldl.h"

#include <vector>

#include "mql/lexer.h"

namespace prima::ldl {

using mql::Lex;
using mql::Token;
using mql::TokenKind;
using util::Result;
using util::Status;

namespace {

class LdlParser {
 public:
  explicit LdlParser(access::AccessSystem* access) : access_(access) {}

  Result<std::string> Run(const std::string& text) {
    PRIMA_ASSIGN_OR_RETURN(tokens_, Lex(text));
    pos_ = 0;
    if (AcceptKeyword("CREATE")) return RunCreate();
    if (AcceptKeyword("DROP")) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("STRUCTURE"));
      PRIMA_ASSIGN_OR_RETURN(const std::string name, ExpectIdent());
      PRIMA_RETURN_IF_ERROR(access_->DropStructure(name));
      return "dropped structure " + name;
    }
    return Err("expected CREATE or DROP");
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  void Advance() {
    if (Cur().kind != TokenKind::kEnd) ++pos_;
  }
  Status Err(const std::string& what) const {
    return Status::ParseError(what + " near offset " +
                              std::to_string(Cur().offset));
  }
  bool IsKeyword(const char* kw) const {
    return Cur().kind == TokenKind::kIdent && Cur().upper == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (!IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) return Err(std::string("expected ") + kw);
    return Status::Ok();
  }
  bool AcceptSymbol(const char* s) {
    if (Cur().kind != TokenKind::kSymbol || Cur().text != s) return false;
    Advance();
    return true;
  }
  Status ExpectSymbol(const char* s) {
    if (!AcceptSymbol(s)) return Err(std::string("expected '") + s + "'");
    return Status::Ok();
  }
  Result<std::string> ExpectIdent() {
    if (Cur().kind != TokenKind::kIdent) return Err("expected identifier");
    std::string name = Cur().text;
    Advance();
    return name;
  }

  Result<std::string> RunCreate() {
    enum class What { kAccessPath, kSortOrder, kPartition, kCluster };
    What what;
    if (AcceptKeyword("ACCESS")) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("PATH"));
      what = What::kAccessPath;
    } else if (AcceptKeyword("SORT")) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("ORDER"));
      what = What::kSortOrder;
    } else if (AcceptKeyword("PARTITION")) {
      what = What::kPartition;
    } else if (AcceptKeyword("ATOM")) {
      PRIMA_RETURN_IF_ERROR(ExpectKeyword("CLUSTER"));
      what = What::kCluster;
    } else {
      return Err("expected ACCESS PATH / SORT ORDER / PARTITION / ATOM CLUSTER");
    }
    PRIMA_ASSIGN_OR_RETURN(const std::string name, ExpectIdent());
    PRIMA_RETURN_IF_ERROR(ExpectKeyword("ON"));
    PRIMA_ASSIGN_OR_RETURN(const std::string type, ExpectIdent());
    PRIMA_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::string> attrs;
    std::vector<bool> asc;
    do {
      PRIMA_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      attrs.push_back(std::move(attr));
      if (AcceptKeyword("DESC")) {
        asc.push_back(false);
      } else {
        (void)AcceptKeyword("ASC");
        asc.push_back(true);
      }
    } while (AcceptSymbol(","));
    PRIMA_RETURN_IF_ERROR(ExpectSymbol(")"));

    switch (what) {
      case What::kAccessPath: {
        bool unique = false, grid = false;
        for (;;) {
          if (AcceptKeyword("UNIQUE")) {
            unique = true;
          } else if (AcceptKeyword("USING")) {
            PRIMA_RETURN_IF_ERROR(ExpectKeyword("GRID"));
            grid = true;
          } else {
            break;
          }
        }
        if (grid) {
          if (unique) {
            return Err("grid access paths do not enforce uniqueness");
          }
          PRIMA_ASSIGN_OR_RETURN(const uint32_t id,
                                 access_->CreateGridAccessPath(name, type, attrs));
          return "created grid access path " + name + " (#" +
                 std::to_string(id) + ")";
        }
        PRIMA_ASSIGN_OR_RETURN(
            const uint32_t id,
            access_->CreateBTreeAccessPath(name, type, attrs, unique));
        return "created access path " + name + " (#" + std::to_string(id) + ")";
      }
      case What::kSortOrder: {
        PRIMA_ASSIGN_OR_RETURN(const uint32_t id,
                               access_->CreateSortOrder(name, type, attrs, asc));
        return "created sort order " + name + " (#" + std::to_string(id) + ")";
      }
      case What::kPartition: {
        PRIMA_ASSIGN_OR_RETURN(const uint32_t id,
                               access_->CreatePartition(name, type, attrs));
        return "created partition " + name + " (#" + std::to_string(id) + ")";
      }
      case What::kCluster: {
        PRIMA_ASSIGN_OR_RETURN(
            const uint32_t id,
            access_->CreateAtomClusterType(name, type, attrs));
        return "created atom cluster " + name + " (#" + std::to_string(id) + ")";
      }
    }
    return Err("unreachable");
  }

  access::AccessSystem* access_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::string> LoadDefinition::Execute(const std::string& text) {
  LdlParser parser(access_);
  return parser.Run(text);
}

}  // namespace prima::ldl
