#ifndef PRIMA_ACCESS_ATOM_CLUSTER_H_
#define PRIMA_ACCESS_ATOM_CLUSTER_H_

#include <string>
#include <vector>

#include "access/value.h"
#include "util/result.h"
#include "util/slice.h"

namespace prima::access {

/// Serialized form of one atom cluster (paper Fig. 3.2): the characteristic
/// atom followed by the referenced atoms, grouped by atom type. The whole
/// image maps onto a single page sequence, so constructing the molecule
/// costs one chained I/O instead of one random page access per atom.
struct ClusterImage {
  Atom characteristic;
  /// Member groups: (atom type id, atoms of that type), insertion order.
  std::vector<std::pair<AtomTypeId, std::vector<Atom>>> groups;

  void EncodeInto(std::string* out) const;

  /// `attr_counts(type)` supplies the attribute count per atom type so
  /// atoms decode positionally.
  static util::Result<ClusterImage> Decode(
      util::Slice in, AtomTypeId char_type,
      const std::function<size_t(AtomTypeId)>& attr_counts);

  /// All atoms (characteristic first), flattened.
  std::vector<Atom> Flatten() const;
};

}  // namespace prima::access

#endif  // PRIMA_ACCESS_ATOM_CLUSTER_H_
