#ifndef PRIMA_ACCESS_RECORD_FILE_H_
#define PRIMA_ACCESS_RECORD_FILE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "storage/storage_system.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace prima::access {

/// Address of a physical record within its segment: [page:32][slot:16]
/// packed into a uint64. Slot 0xFFFF marks a long record whose bytes live in
/// a page sequence headed by `page` (paper §3.3: page sequences as
/// containers for records exceeding the page size, "especially considering
/// atom clusters and strings like texts and images").
struct RecordId {
  uint32_t page = 0;
  uint16_t slot = 0;

  static constexpr uint16_t kLongRecordSlot = 0xFFFF;

  bool IsLong() const { return slot == kLongRecordSlot; }
  uint64_t Pack() const { return (static_cast<uint64_t>(page) << 16) | slot; }
  static RecordId Unpack(uint64_t v) {
    return RecordId{static_cast<uint32_t>(v >> 16),
                    static_cast<uint16_t>(v & 0xFFFF)};
  }
  friend bool operator==(const RecordId& a, const RecordId& b) {
    return a.page == b.page && a.slot == b.slot;
  }
  friend bool operator!=(const RecordId& a, const RecordId& b) {
    return !(a == b);
  }
};

/// Physical records as "byte strings of variable length ... stored
/// consecutively in containers offered by the storage system" (paper §3.2).
/// One RecordFile manages one segment: slotted pages for short records,
/// page sequences for long ones. Record ids are stable across in-place
/// updates; updates that no longer fit return a new RecordId and the caller
/// (the address table owner) re-registers it.
class RecordFile {
 public:
  RecordFile(storage::StorageSystem* storage, storage::SegmentId segment);

  /// Build the free-space cache by scanning the segment (cheap: page
  /// headers only). Call once after attach.
  util::Status Open();

  util::Result<RecordId> Insert(util::Slice record);
  util::Result<std::string> Read(const RecordId& rid) const;
  util::Status Delete(const RecordId& rid);
  /// Update; result is the (possibly moved) record id.
  util::Result<RecordId> Update(const RecordId& rid, util::Slice record);

  // --- physical-order navigation (atom-type scan substrate) ---------------

  /// First record in physical order, or nullopt when empty.
  util::Result<std::optional<RecordId>> First() const;
  util::Result<std::optional<RecordId>> Next(const RecordId& rid) const;
  util::Result<std::optional<RecordId>> Prev(const RecordId& rid) const;
  util::Result<std::optional<RecordId>> Last() const;

  uint64_t record_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return record_count_;
  }
  storage::SegmentId segment() const { return segment_; }

 private:
  // Slotted page payload bookkeeping. Slot i lives at the 4 bytes ending
  // `4*(i+1)` before the page end: [offset:u16][len:u16]; offset 0 = dead.
  static constexpr uint32_t kSlotBytes = 4;

  uint32_t PageSizeBytes() const { return page_size_; }
  uint32_t MaxShortRecord() const {
    return storage::PagePayload(page_size_) - kSlotBytes;
  }

  // Contiguous free bytes of a slotted page (excluding reclaimable garbage).
  static uint32_t ContiguousFree(const char* page, uint32_t page_size);
  // Free bytes counting garbage (what compaction can reach).
  static uint32_t TotalFree(const char* page, uint32_t page_size);
  // Rewrite the page squeezing out dead bytes. Exclusive latch held.
  static void Compact(char* page, uint32_t page_size);

  util::Result<RecordId> InsertShort(util::Slice record);
  util::Result<RecordId> InsertIntoPage(storage::PageGuard* guard,
                                        util::Slice record);

  // First/next live slot of a page; nullopt if none at/after `from`.
  static std::optional<uint16_t> LiveSlotFrom(const char* page,
                                              uint32_t page_size,
                                              uint16_t from);
  static std::optional<uint16_t> LiveSlotBefore(const char* page,
                                                uint32_t page_size,
                                                uint16_t before);

  storage::StorageSystem* storage_;
  storage::SegmentId segment_;
  uint32_t page_size_ = 0;

  mutable std::mutex mu_;  // guards the members below; writes are serialized
  std::map<uint32_t, uint32_t> free_space_;  // slotted page -> total free
  uint64_t record_count_ = 0;
};

}  // namespace prima::access

#endif  // PRIMA_ACCESS_RECORD_FILE_H_
