#include "access/scan.h"

#include <algorithm>

#include "util/coding.h"

namespace prima::access {

using util::Result;
using util::Slice;
using util::Status;

// ---------------------------------------------------------------------------
// AtomTypeScan
// ---------------------------------------------------------------------------

AtomTypeScan::AtomTypeScan(AccessSystem* access, AtomTypeId type,
                           SearchArgument sarg)
    : access_(access), type_(type), sarg_(std::move(sarg)) {}

Status AtomTypeScan::Open() {
  file_ = access_->BaseFile(type_);
  if (file_ == nullptr) {
    return Status::NotFound("atom type id " + std::to_string(type_));
  }
  position_.reset();
  before_first_ = true;
  after_last_ = false;
  hint_end_ = 0;
  return Status::Ok();
}

void AtomTypeScan::MaybeReadAhead(uint32_t page) {
  storage::StorageSystem& storage = access_->storage();
  const size_t window = storage.readahead_window();
  if (window == 0) return;
  if (page + 1 < hint_end_) return;  // still covered by the last hint
  auto count = storage.PageCount(file_->segment());
  if (!count.ok()) return;
  std::vector<uint32_t> pages;
  for (uint32_t p = page + 1; p < *count && pages.size() < window; ++p) {
    pages.push_back(p);
  }
  hint_end_ = page + 1 + static_cast<uint32_t>(pages.size());
  if (!pages.empty()) storage.ReadAhead(file_->segment(), std::move(pages));
}

Result<std::optional<Atom>> AtomTypeScan::DecodeAt(const RecordId& rid) {
  PRIMA_ASSIGN_OR_RETURN(std::string bytes, file_->Read(rid));
  PRIMA_ASSIGN_OR_RETURN(Atom atom, access_->DecodeAtom(type_, bytes));
  access_->stats().atoms_read++;
  if (!sarg_.Matches(atom)) return std::optional<Atom>();
  return std::optional<Atom>(std::move(atom));
}

Result<std::optional<Atom>> AtomTypeScan::Next() {
  for (;;) {
    std::optional<RecordId> next;
    if (before_first_) {
      PRIMA_ASSIGN_OR_RETURN(next, file_->First());
      before_first_ = false;
    } else if (after_last_) {
      return std::optional<Atom>();
    } else if (position_) {
      PRIMA_ASSIGN_OR_RETURN(next, file_->Next(*position_));
    } else {
      return std::optional<Atom>();
    }
    if (!next) {
      after_last_ = true;
      position_.reset();
      return std::optional<Atom>();
    }
    position_ = next;
    MaybeReadAhead(next->page);
    PRIMA_ASSIGN_OR_RETURN(auto atom, DecodeAt(*next));
    if (atom) return atom;
  }
}

Result<std::optional<Atom>> AtomTypeScan::Prior() {
  for (;;) {
    std::optional<RecordId> prev;
    if (after_last_) {
      PRIMA_ASSIGN_OR_RETURN(prev, file_->Last());
      after_last_ = false;
    } else if (before_first_) {
      return std::optional<Atom>();
    } else if (position_) {
      PRIMA_ASSIGN_OR_RETURN(prev, file_->Prev(*position_));
    } else {
      return std::optional<Atom>();
    }
    if (!prev) {
      before_first_ = true;
      position_.reset();
      return std::optional<Atom>();
    }
    position_ = prev;
    PRIMA_ASSIGN_OR_RETURN(auto atom, DecodeAt(*prev));
    if (atom) return atom;
  }
}

// ---------------------------------------------------------------------------
// SortScan
// ---------------------------------------------------------------------------

SortScan::SortScan(AccessSystem* access, AtomTypeId type,
                   std::vector<uint16_t> criterion, std::vector<bool> asc,
                   SearchArgument sarg, std::optional<SortBound> start,
                   std::optional<SortBound> stop)
    : access_(access),
      type_(type),
      criterion_(std::move(criterion)),
      asc_(std::move(asc)),
      sarg_(std::move(sarg)),
      start_(std::move(start)),
      stop_(std::move(stop)) {
  if (asc_.empty()) asc_.assign(criterion_.size(), true);
}

int SortScan::CompareBound(const Atom& atom,
                           const std::vector<Value>& bound) const {
  for (size_t i = 0; i < bound.size() && i < criterion_.size(); ++i) {
    int c = atom.attrs[criterion_[i]].Compare(bound[i]);
    if (!asc_[i]) c = -c;
    if (c != 0) return c;
  }
  return 0;
}

bool SortScan::PastStop(const Atom& atom) const {
  if (!stop_) return false;
  const int c = CompareBound(atom, stop_->values);
  return stop_->inclusive ? c > 0 : c >= 0;
}

bool SortScan::BeforeStart(const Atom& atom) const {
  if (!start_) return false;
  const int c = CompareBound(atom, start_->values);
  return start_->inclusive ? c < 0 : c <= 0;
}

Status SortScan::Open() {
  // 1. A redundant sort order with the same criterion?
  for (const StructureDef* s : access_->catalog().StructuresFor(type_)) {
    if (s->kind == StructureKind::kSortOrder && s->attrs == criterion_ &&
        std::vector<bool>(s->asc.begin(), s->asc.end()) == asc_) {
      PRIMA_RETURN_IF_ERROR(access_->DrainStructure(s->id));
      structure_ = s;
      mode_ = Mode::kSortOrder;
      iter_ = std::make_unique<BTree::Iterator>(
          access_->BTreeFor(s->id)->NewIterator());
      iter_opened_ = false;
      return Status::Ok();
    }
  }
  // 2. An ascending B*-tree access path on the same attributes? (Access
  //    paths are always stored ascending; a descending criterion still
  //    works because the leaf chain supports PRIOR traversal.)
  const bool uniform =
      std::all_of(asc_.begin(), asc_.end(), [&](bool b) { return b == asc_[0]; });
  if (uniform) {
    for (const StructureDef* s : access_->catalog().StructuresFor(type_)) {
      if (s->kind == StructureKind::kBTreeAccessPath && s->attrs == criterion_) {
        structure_ = s;
        mode_ = Mode::kAccessPath;
        iter_ = std::make_unique<BTree::Iterator>(
            access_->BTreeFor(s->id)->NewIterator());
        iter_opened_ = false;
        return Status::Ok();
      }
    }
  }
  // 3. Explicit sort: materialize and order (a temporary sort order).
  mode_ = Mode::kExplicitSort;
  sorted_.clear();
  for (const Tid& tid : access_->AllAtoms(type_)) {
    PRIMA_ASSIGN_OR_RETURN(Atom atom, access_->GetAtom(tid));
    if (sarg_.Matches(atom)) sorted_.push_back(std::move(atom));
  }
  std::sort(sorted_.begin(), sorted_.end(), [this](const Atom& a, const Atom& b) {
    for (size_t i = 0; i < criterion_.size(); ++i) {
      int c = a.attrs[criterion_[i]].Compare(b.attrs[criterion_[i]]);
      if (!asc_[i]) c = -c;
      if (c != 0) return c < 0;
    }
    return a.tid.Pack() < b.tid.Pack();
  });
  index_ = 0;
  before_first_ = true;
  return Status::Ok();
}

Result<std::optional<Atom>> SortScan::DecodeCurrent() {
  if (mode_ == Mode::kSortOrder) {
    Slice bytes(iter_->value());
    PRIMA_ASSIGN_OR_RETURN(Atom atom, access_->DecodeAtom(type_, bytes));
    access_->stats().atoms_read++;
    return std::optional<Atom>(std::move(atom));
  }
  // Access-path mode: value is the surrogate; fetch the atom.
  Slice v(iter_->value());
  uint64_t packed = 0;
  util::GetFixed64(&v, &packed);
  PRIMA_ASSIGN_OR_RETURN(Atom atom, access_->GetAtom(Tid::Unpack(packed)));
  return std::optional<Atom>(std::move(atom));
}

Status SortScan::SeekIteratorToStart() {
  iter_opened_ = true;
  // Descending criterion on an ascending index: start from the top.
  const bool reversed = mode_ == Mode::kAccessPath && !asc_.empty() && !asc_[0];
  if (reversed) return iter_->SeekToLast();
  return iter_->SeekToFirst();
}

Result<std::optional<Atom>> SortScan::Next() {
  if (mode_ == Mode::kExplicitSort) {
    while (true) {
      if (before_first_) {
        index_ = 0;
        before_first_ = false;
      } else if (index_ < sorted_.size()) {
        ++index_;
      }
      if (index_ >= sorted_.size()) return std::optional<Atom>();
      const Atom& atom = sorted_[index_];
      if (BeforeStart(atom)) continue;
      if (PastStop(atom)) return std::optional<Atom>();
      return std::optional<Atom>(atom);
    }
  }
  const bool reversed = mode_ == Mode::kAccessPath && !asc_.empty() && !asc_[0];
  for (;;) {
    if (!iter_opened_) {
      PRIMA_RETURN_IF_ERROR(SeekIteratorToStart());
    } else if (iter_->Valid()) {
      PRIMA_RETURN_IF_ERROR(reversed ? iter_->Prev() : iter_->Next());
    }
    if (!iter_->Valid()) return std::optional<Atom>();
    PRIMA_ASSIGN_OR_RETURN(auto atom, DecodeCurrent());
    if (!atom) continue;
    if (BeforeStart(*atom)) continue;
    if (PastStop(*atom)) return std::optional<Atom>();
    if (!sarg_.Matches(*atom)) continue;
    return atom;
  }
}

Result<std::optional<Atom>> SortScan::Prior() {
  if (mode_ == Mode::kExplicitSort) {
    while (true) {
      if (before_first_) return std::optional<Atom>();
      if (index_ == 0) {
        before_first_ = true;
        return std::optional<Atom>();
      }
      --index_;
      const Atom& atom = sorted_[index_];
      if (PastStop(atom)) continue;
      if (BeforeStart(atom)) return std::optional<Atom>();
      return std::optional<Atom>(atom);
    }
  }
  const bool reversed = mode_ == Mode::kAccessPath && !asc_.empty() && !asc_[0];
  for (;;) {
    if (!iter_opened_) return std::optional<Atom>();
    if (iter_->Valid()) {
      PRIMA_RETURN_IF_ERROR(reversed ? iter_->Next() : iter_->Prev());
    }
    if (!iter_->Valid()) return std::optional<Atom>();
    PRIMA_ASSIGN_OR_RETURN(auto atom, DecodeCurrent());
    if (!atom) continue;
    if (PastStop(*atom)) continue;
    if (BeforeStart(*atom)) return std::optional<Atom>();
    if (!sarg_.Matches(*atom)) continue;
    return atom;
  }
}

// ---------------------------------------------------------------------------
// BTreeAccessPathScan
// ---------------------------------------------------------------------------

namespace {
Result<std::string> EncodeBoundKey(const std::vector<Value>& values) {
  std::string key;
  for (const Value& v : values) {
    PRIMA_RETURN_IF_ERROR(v.EncodeKeyInto(&key));
  }
  return key;
}
}  // namespace

BTreeAccessPathScan::BTreeAccessPathScan(AccessSystem* access,
                                         uint32_t structure_id, KeyRange range,
                                         bool forward, SearchArgument sarg)
    : access_(access),
      structure_id_(structure_id),
      range_(std::move(range)),
      forward_(forward),
      sarg_(std::move(sarg)) {}

Status BTreeAccessPathScan::Open() {
  def_ = access_->catalog().GetStructure(structure_id_);
  if (def_ == nullptr || def_->kind != StructureKind::kBTreeAccessPath) {
    return Status::NotFound("B*-tree access path " +
                            std::to_string(structure_id_));
  }
  BTree* tree = access_->BTreeFor(structure_id_);
  if (tree == nullptr) return Status::Corruption("detached access path");
  iter_ = std::make_unique<BTree::Iterator>(tree->NewIterator());
  if (range_.start) {
    PRIMA_ASSIGN_OR_RETURN(start_key_, EncodeBoundKey(*range_.start));
  }
  if (range_.stop) {
    PRIMA_ASSIGN_OR_RETURN(stop_key_, EncodeBoundKey(*range_.stop));
  }
  open_ = false;
  done_ = false;
  return Status::Ok();
}

Result<std::optional<Tid>> BTreeAccessPathScan::Advance() {
  if (done_) return std::optional<Tid>();
  for (;;) {
    if (!open_) {
      open_ = true;
      if (forward_) {
        if (range_.start) {
          PRIMA_RETURN_IF_ERROR(iter_->Seek(start_key_));
        } else {
          PRIMA_RETURN_IF_ERROR(iter_->SeekToFirst());
        }
      } else {
        if (range_.stop) {
          // Position at the last key <= stop prefix. Because keys extend the
          // prefix (tid suffix), seek past the prefix then step back.
          std::string probe = stop_key_;
          probe.push_back('\xFF');
          PRIMA_RETURN_IF_ERROR(iter_->SeekForPrev(probe));
        } else {
          PRIMA_RETURN_IF_ERROR(iter_->SeekToLast());
        }
      }
    } else if (iter_->Valid()) {
      PRIMA_RETURN_IF_ERROR(forward_ ? iter_->Next() : iter_->Prev());
    }
    if (!iter_->Valid()) {
      done_ = true;
      return std::optional<Tid>();
    }
    const Slice key(iter_->key());
    // Bound checks on the encoded prefix.
    if (forward_) {
      if (range_.start && !range_.start_inclusive &&
          key.StartsWith(start_key_)) {
        continue;  // skip keys equal to the excluded start prefix
      }
      if (range_.stop) {
        if (range_.stop_inclusive) {
          if (!key.StartsWith(stop_key_) && key.Compare(stop_key_) > 0) {
            done_ = true;
            return std::optional<Tid>();
          }
        } else if (key.StartsWith(stop_key_) || key.Compare(stop_key_) >= 0) {
          done_ = true;
          return std::optional<Tid>();
        }
      }
    } else {
      if (range_.stop && !range_.stop_inclusive && key.StartsWith(stop_key_)) {
        continue;
      }
      if (range_.start) {
        if (range_.start_inclusive) {
          if (!key.StartsWith(start_key_) && key.Compare(start_key_) < 0) {
            done_ = true;
            return std::optional<Tid>();
          }
        } else if (key.StartsWith(start_key_) ||
                   key.Compare(start_key_) <= 0) {
          done_ = true;
          return std::optional<Tid>();
        }
      }
    }
    Slice v(iter_->value());
    uint64_t packed = 0;
    util::GetFixed64(&v, &packed);
    return std::optional<Tid>(Tid::Unpack(packed));
  }
}

Result<std::optional<Tid>> BTreeAccessPathScan::NextTid() { return Advance(); }

Result<std::optional<Atom>> BTreeAccessPathScan::Next() {
  for (;;) {
    PRIMA_ASSIGN_OR_RETURN(auto tid, Advance());
    if (!tid) return std::optional<Atom>();
    PRIMA_ASSIGN_OR_RETURN(Atom atom, access_->GetAtom(*tid));
    if (!sarg_.Matches(atom)) continue;
    return std::optional<Atom>(std::move(atom));
  }
}

// ---------------------------------------------------------------------------
// GridAccessPathScan
// ---------------------------------------------------------------------------

GridAccessPathScan::GridAccessPathScan(AccessSystem* access,
                                       uint32_t structure_id,
                                       std::vector<GridDimension> dims,
                                       std::vector<size_t> dim_priority,
                                       SearchArgument sarg)
    : access_(access),
      structure_id_(structure_id),
      dims_(std::move(dims)),
      dim_priority_(std::move(dim_priority)),
      sarg_(std::move(sarg)) {}

Status GridAccessPathScan::Open() {
  const StructureDef* def = access_->catalog().GetStructure(structure_id_);
  if (def == nullptr || def->kind != StructureKind::kGridAccessPath) {
    return Status::NotFound("grid access path " + std::to_string(structure_id_));
  }
  GridFile* grid = access_->GridFor(structure_id_);
  if (grid == nullptr) return Status::Corruption("detached grid file");
  if (dims_.size() != def->attrs.size()) {
    return Status::InvalidArgument("grid scan dimension mismatch");
  }
  std::vector<GridFile::QueryRange> ranges(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    if (dims_[d].lo) {
      std::string k;
      PRIMA_RETURN_IF_ERROR(dims_[d].lo->EncodeKeyInto(&k));
      ranges[d].lo = std::move(k);
      ranges[d].lo_inclusive = dims_[d].lo_inclusive;
    }
    if (dims_[d].hi) {
      std::string k;
      PRIMA_RETURN_IF_ERROR(dims_[d].hi->EncodeKeyInto(&k));
      ranges[d].hi = std::move(k);
      ranges[d].hi_inclusive = dims_[d].hi_inclusive;
    }
    ranges[d].asc = dims_[d].asc;
  }
  PRIMA_ASSIGN_OR_RETURN(auto matches, grid->Query(ranges, dim_priority_));
  matches_.clear();
  matches_.reserve(matches.size());
  for (const auto& m : matches) matches_.push_back(m.tid);
  index_ = 0;
  before_first_ = true;
  return Status::Ok();
}

Result<std::optional<Atom>> GridAccessPathScan::Next() {
  for (;;) {
    if (before_first_) {
      index_ = 0;
      before_first_ = false;
    } else if (index_ < matches_.size()) {
      ++index_;
    }
    if (index_ >= matches_.size()) return std::optional<Atom>();
    PRIMA_ASSIGN_OR_RETURN(Atom atom, access_->GetAtom(matches_[index_]));
    if (!sarg_.Matches(atom)) continue;
    return std::optional<Atom>(std::move(atom));
  }
}

Result<std::optional<Atom>> GridAccessPathScan::Prior() {
  for (;;) {
    if (before_first_) return std::optional<Atom>();
    if (index_ == 0) {
      before_first_ = true;
      return std::optional<Atom>();
    }
    --index_;
    PRIMA_ASSIGN_OR_RETURN(Atom atom, access_->GetAtom(matches_[index_]));
    if (!sarg_.Matches(atom)) continue;
    return std::optional<Atom>(std::move(atom));
  }
}

// ---------------------------------------------------------------------------
// AtomClusterTypeScan
// ---------------------------------------------------------------------------

AtomClusterTypeScan::AtomClusterTypeScan(AccessSystem* access,
                                         uint32_t cluster_structure_id,
                                         SearchArgument char_sarg)
    : access_(access),
      structure_id_(cluster_structure_id),
      sarg_(std::move(char_sarg)) {}

Status AtomClusterTypeScan::Open() {
  def_ = access_->catalog().GetStructure(structure_id_);
  if (def_ == nullptr || def_->kind != StructureKind::kAtomCluster) {
    return Status::NotFound("atom-cluster type " + std::to_string(structure_id_));
  }
  PRIMA_RETURN_IF_ERROR(access_->DrainStructure(structure_id_));
  char_scan_ = std::make_unique<AtomTypeScan>(access_, def_->atom_type, sarg_);
  return char_scan_->Open();
}

Result<std::optional<ClusterImage>> AtomClusterTypeScan::Next() {
  PRIMA_ASSIGN_OR_RETURN(auto char_atom, char_scan_->Next());
  if (!char_atom) return std::optional<ClusterImage>();
  PRIMA_ASSIGN_OR_RETURN(ClusterImage image,
                         access_->ReadCluster(structure_id_, char_atom->tid));
  return std::optional<ClusterImage>(std::move(image));
}

// ---------------------------------------------------------------------------
// AtomClusterScan
// ---------------------------------------------------------------------------

AtomClusterScan::AtomClusterScan(AccessSystem* access,
                                 uint32_t cluster_structure_id,
                                 Tid characteristic, AtomTypeId member_type,
                                 SearchArgument sarg)
    : access_(access),
      structure_id_(cluster_structure_id),
      characteristic_(characteristic),
      member_type_(member_type),
      sarg_(std::move(sarg)) {}

Status AtomClusterScan::Open() {
  PRIMA_ASSIGN_OR_RETURN(ClusterImage image,
                         access_->ReadCluster(structure_id_, characteristic_));
  atoms_.clear();
  if (member_type_ == characteristic_.type) {
    atoms_.push_back(image.characteristic);
  }
  for (auto& [type, atoms] : image.groups) {
    if (type == member_type_) {
      for (auto& a : atoms) atoms_.push_back(std::move(a));
    }
  }
  index_ = 0;
  before_first_ = true;
  return Status::Ok();
}

Result<std::optional<Atom>> AtomClusterScan::Next() {
  for (;;) {
    if (before_first_) {
      index_ = 0;
      before_first_ = false;
    } else if (index_ < atoms_.size()) {
      ++index_;
    }
    if (index_ >= atoms_.size()) return std::optional<Atom>();
    if (!sarg_.Matches(atoms_[index_])) continue;
    return std::optional<Atom>(atoms_[index_]);
  }
}

Result<std::optional<Atom>> AtomClusterScan::Prior() {
  for (;;) {
    if (before_first_) return std::optional<Atom>();
    if (index_ == 0) {
      before_first_ = true;
      return std::optional<Atom>();
    }
    --index_;
    if (!sarg_.Matches(atoms_[index_])) continue;
    return std::optional<Atom>(atoms_[index_]);
  }
}

}  // namespace prima::access
