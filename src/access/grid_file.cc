#include "access/grid_file.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

#include "util/coding.h"

namespace prima::access {

using storage::LatchMode;
using storage::PageGuard;
using storage::PageHeader;
using storage::PageType;
using util::Result;
using util::Slice;
using util::Status;

GridFile::GridFile(storage::StorageSystem* storage, storage::SegmentId segment,
                   size_t dims, uint32_t meta_page,
                   std::function<void(uint32_t)> on_meta_change)
    : storage_(storage),
      segment_(segment),
      dims_(dims),
      meta_page_(meta_page),
      on_meta_change_(std::move(on_meta_change)) {
  auto ps = storage_->SegmentPageSize(segment_);
  page_size_ = ps.ok() ? storage::PageSizeBytes(*ps) : 0;
}

size_t GridFile::DirSize() const {
  size_t n = 1;
  for (const auto& s : scales_) n *= s.size() + 1;
  return n;
}

size_t GridFile::CellIndex(const std::vector<size_t>& coord) const {
  size_t idx = 0;
  for (size_t d = 0; d < dims_; ++d) {
    idx = idx * (scales_[d].size() + 1) + coord[d];
  }
  return idx;
}

std::vector<size_t> GridFile::CoordOf(
    const std::vector<std::string>& keys) const {
  std::vector<size_t> coord(dims_);
  for (size_t d = 0; d < dims_; ++d) {
    // Cell c covers [scale[c-1], scale[c]); upper_bound of key.
    const auto& scale = scales_[d];
    coord[d] = static_cast<size_t>(
        std::upper_bound(scale.begin(), scale.end(), keys[d]) - scale.begin());
    // upper_bound gives first boundary > key; entries equal to a boundary
    // belong to the cell at/above it.
    if (coord[d] > 0 && keys[d] >= scale[coord[d] - 1]) {
      // correct: key >= lower boundary
    }
  }
  return coord;
}

size_t GridFile::EntryBytes(const Entry& e) {
  size_t n = 8;  // tid
  for (const auto& k : e.keys) n += 5 + k.size();
  return n;
}

size_t GridFile::BucketCapacityBytes() const {
  return storage::PagePayload(page_size_);
}

// ---------------------------------------------------------------------------
// Bucket pages. Header: u16a = entry count, u64 = overflow page.
// ---------------------------------------------------------------------------

Result<std::vector<GridFile::Entry>> GridFile::LoadBucket(
    uint32_t page_no, uint32_t* overflow) const {
  PRIMA_ASSIGN_OR_RETURN(PageGuard guard,
                         storage_->FixPage(segment_, page_no, LatchMode::kShared));
  const char* page = guard.data();
  if (PageHeader::type(page) != PageType::kGridBucket) {
    return Status::Corruption("page " + std::to_string(page_no) +
                              " is not a grid bucket");
  }
  *overflow = static_cast<uint32_t>(PageHeader::u64(page));
  const uint16_t count = PageHeader::u16a(page);
  Slice in(page + PageHeader::kSize, storage::PagePayload(page_size_));
  std::vector<Entry> entries;
  entries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    Entry e;
    e.keys.resize(dims_);
    for (size_t d = 0; d < dims_; ++d) {
      Slice k;
      if (!util::GetLengthPrefixed(&in, &k)) {
        return Status::Corruption("truncated grid entry key");
      }
      e.keys[d] = k.ToString();
    }
    uint64_t packed;
    if (!util::GetFixed64(&in, &packed)) {
      return Status::Corruption("truncated grid entry tid");
    }
    e.tid = Tid::Unpack(packed);
    entries.push_back(std::move(e));
  }
  return entries;
}

Status GridFile::StoreBucket(uint32_t page_no, const std::vector<Entry>& entries,
                             uint32_t overflow) const {
  PRIMA_ASSIGN_OR_RETURN(
      PageGuard guard, storage_->FixPage(segment_, page_no, LatchMode::kExclusive));
  char* page = guard.mutable_data();
  PageHeader::set_type(page, PageType::kGridBucket);
  PageHeader::set_u16a(page, static_cast<uint16_t>(entries.size()));
  PageHeader::set_u64(page, overflow);
  std::string body;
  for (const auto& e : entries) {
    for (const auto& k : e.keys) util::PutLengthPrefixed(&body, k);
    util::PutFixed64(&body, e.tid.Pack());
  }
  if (body.size() > storage::PagePayload(page_size_)) {
    return Status::NoSpace("grid bucket overflow");
  }
  std::memcpy(page + PageHeader::kSize, body.data(), body.size());
  return Status::Ok();
}

Result<std::vector<GridFile::Entry>> GridFile::LoadChain(uint32_t page) const {
  std::vector<Entry> all;
  uint32_t current = page;
  while (current != 0) {
    uint32_t overflow = 0;
    PRIMA_ASSIGN_OR_RETURN(std::vector<Entry> part, LoadBucket(current, &overflow));
    for (auto& e : part) all.push_back(std::move(e));
    current = overflow;
  }
  return all;
}

Status GridFile::StoreChain(uint32_t page, std::vector<Entry> entries) {
  // Collect the existing chain, reuse its pages, free the excess.
  std::vector<uint32_t> chain;
  uint32_t current = page;
  while (current != 0) {
    chain.push_back(current);
    uint32_t overflow = 0;
    PRIMA_ASSIGN_OR_RETURN(auto ignored, LoadBucket(current, &overflow));
    (void)ignored;
    current = overflow;
  }
  // Greedily pack entries into pages.
  std::vector<std::vector<Entry>> pages_content;
  pages_content.emplace_back();
  size_t used = 0;
  for (auto& e : entries) {
    const size_t sz = EntryBytes(e);
    if (used + sz > BucketCapacityBytes() && !pages_content.back().empty()) {
      pages_content.emplace_back();
      used = 0;
    }
    used += sz;
    pages_content.back().push_back(std::move(e));
  }
  while (chain.size() < pages_content.size()) {
    PRIMA_ASSIGN_OR_RETURN(PageGuard g,
                           storage_->NewPage(segment_, PageType::kGridBucket));
    chain.push_back(g.page_no());
  }
  for (size_t i = pages_content.size(); i < chain.size(); ++i) {
    PRIMA_RETURN_IF_ERROR(storage_->FreePage(segment_, chain[i]));
  }
  chain.resize(pages_content.size());
  for (size_t i = 0; i < chain.size(); ++i) {
    const uint32_t next = i + 1 < chain.size() ? chain[i + 1] : 0;
    PRIMA_RETURN_IF_ERROR(StoreBucket(chain[i], pages_content[i], next));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Meta persistence: varint dims, per dim (varint n, keys...), varint dir
// size, u32 pages, varint entry_count.
// ---------------------------------------------------------------------------

Status GridFile::Save() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dirty_ && meta_page_ != 0) return Status::Ok();
  std::string out;
  util::PutVarint64(&out, dims_);
  for (const auto& scale : scales_) {
    util::PutVarint64(&out, scale.size());
    for (const auto& b : scale) util::PutLengthPrefixed(&out, b);
  }
  util::PutVarint64(&out, directory_.size());
  for (uint32_t p : directory_) util::PutFixed32(&out, p);
  util::PutVarint64(&out, entry_count_);
  if (meta_page_ == 0) {
    PRIMA_ASSIGN_OR_RETURN(meta_page_, storage_->CreateSequence(segment_, out));
    if (on_meta_change_) on_meta_change_(meta_page_);
  } else {
    PRIMA_RETURN_IF_ERROR(storage_->RewriteSequence(segment_, meta_page_, out));
  }
  dirty_ = false;
  return Status::Ok();
}

Status GridFile::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (opened_) return Status::Ok();
  opened_ = true;
  if (meta_page_ == 0) {
    // Fresh grid: one cell, one empty bucket.
    scales_.assign(dims_, {});
    PRIMA_ASSIGN_OR_RETURN(PageGuard g,
                           storage_->NewPage(segment_, PageType::kGridBucket));
    directory_.assign(1, g.page_no());
    dirty_ = true;
    return Status::Ok();
  }
  PRIMA_ASSIGN_OR_RETURN(std::string blob,
                         storage_->ReadSequence(segment_, meta_page_));
  Slice in(blob);
  uint64_t dims;
  if (!util::GetVarint64(&in, &dims) || dims != dims_) {
    return Status::Corruption("grid meta: dimension mismatch");
  }
  scales_.assign(dims_, {});
  for (size_t d = 0; d < dims_; ++d) {
    uint64_t n;
    if (!util::GetVarint64(&in, &n)) return Status::Corruption("grid scale");
    for (uint64_t i = 0; i < n; ++i) {
      Slice b;
      if (!util::GetLengthPrefixed(&in, &b)) {
        return Status::Corruption("grid boundary");
      }
      scales_[d].push_back(b.ToString());
    }
  }
  uint64_t dir_size;
  if (!util::GetVarint64(&in, &dir_size)) {
    return Status::Corruption("grid directory size");
  }
  directory_.resize(dir_size);
  for (uint64_t i = 0; i < dir_size; ++i) {
    if (!util::GetFixed32(&in, &directory_[i])) {
      return Status::Corruption("grid directory entry");
    }
  }
  if (!util::GetVarint64(&in, &entry_count_)) {
    return Status::Corruption("grid entry count");
  }
  if (directory_.size() != DirSize()) {
    return Status::Corruption("grid directory / scale mismatch");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Insert / split / delete
// ---------------------------------------------------------------------------

Status GridFile::SplitBucket(uint32_t bucket_page,
                             const std::vector<size_t>& coord) {
  PRIMA_ASSIGN_OR_RETURN(std::vector<Entry> entries, LoadChain(bucket_page));
  // Choose a split boundary: prefer the dimension with the most distinct
  // values; the boundary must not be the dimension's minimum (the lower
  // cell would stay empty) and must not already be a scale boundary (no
  // progress). If no dimension offers such a value the bucket is
  // degenerate; the caller chains an overflow page instead.
  size_t best_dim = dims_;
  std::string boundary;
  size_t best_distinct = 1;
  for (size_t d = 0; d < dims_; ++d) {
    std::set<std::string> distinct;
    for (const auto& e : entries) distinct.insert(e.keys[d]);
    if (distinct.size() <= best_distinct) continue;
    // Candidate boundaries: every distinct value except the minimum, tried
    // from the median outwards, skipping existing scale boundaries.
    std::vector<std::string> values(distinct.begin(), distinct.end());
    const auto& scale = scales_[d];
    std::string chosen;
    const size_t mid = values.size() / 2;
    for (size_t off = 0; off < values.size(); ++off) {
      // mid, mid+1, mid-1, mid+2, ...
      const size_t i = off % 2 == 0 ? mid + off / 2 : mid - (off + 1) / 2;
      if (i == 0 || i >= values.size()) continue;
      if (!std::binary_search(scale.begin(), scale.end(), values[i])) {
        chosen = values[i];
        break;
      }
    }
    if (chosen.empty()) continue;
    best_distinct = distinct.size();
    best_dim = d;
    boundary = chosen;
  }
  if (best_dim == dims_) {
    return Status::NotSupported("degenerate grid bucket");
  }

  auto& scale = scales_[best_dim];
  const auto pos_it = std::lower_bound(scale.begin(), scale.end(), boundary);
  const size_t pos = static_cast<size_t>(pos_it - scale.begin());
  scale.insert(scale.begin() + pos, boundary);

  // Expand the directory along best_dim: new cell j maps to old cell j for
  // j <= pos, old cell j-1 for j > pos.
  std::vector<size_t> new_sizes(dims_);
  for (size_t d = 0; d < dims_; ++d) new_sizes[d] = scales_[d].size() + 1;
  std::vector<uint32_t> new_dir(DirSize());
  for (size_t idx = 0; idx < new_dir.size(); ++idx) {
    size_t rem = idx;
    std::vector<size_t> c(dims_);
    for (size_t d = dims_; d-- > 0;) {
      c[d] = rem % new_sizes[d];
      rem /= new_sizes[d];
    }
    std::vector<size_t> old_c = c;
    if (old_c[best_dim] > pos) old_c[best_dim] -= 1;
    size_t old_idx = 0;
    for (size_t d = 0; d < dims_; ++d) {
      const size_t old_n = d == best_dim ? new_sizes[d] - 1 : new_sizes[d];
      old_idx = old_idx * old_n + old_c[d];
    }
    new_dir[idx] = directory_[old_idx];
  }
  directory_ = std::move(new_dir);

  // Fresh bucket for the >= boundary side of the overflowing region.
  PRIMA_ASSIGN_OR_RETURN(PageGuard g,
                         storage_->NewPage(segment_, PageType::kGridBucket));
  const uint32_t new_bucket = g.page_no();
  g.Release();
  std::vector<Entry> lower, upper;
  for (auto& e : entries) {
    (e.keys[best_dim] < boundary ? lower : upper).push_back(std::move(e));
  }
  for (size_t idx = 0; idx < directory_.size(); ++idx) {
    if (directory_[idx] != bucket_page) continue;
    size_t rem = idx;
    std::vector<size_t> c(dims_);
    for (size_t d = dims_; d-- > 0;) {
      c[d] = rem % new_sizes[d];
      rem /= new_sizes[d];
    }
    if (c[best_dim] > pos) directory_[idx] = new_bucket;
  }
  PRIMA_RETURN_IF_ERROR(StoreChain(bucket_page, std::move(lower)));
  PRIMA_RETURN_IF_ERROR(StoreChain(new_bucket, std::move(upper)));
  dirty_ = true;
  (void)coord;
  return Status::Ok();
}

Status GridFile::Insert(const std::vector<std::string>& keys, Tid tid) {
  if (keys.size() != dims_) {
    return Status::InvalidArgument("grid key dimension mismatch");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry{keys, tid};
  if (EntryBytes(entry) > BucketCapacityBytes()) {
    return Status::NotSupported("grid entry larger than a bucket page");
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    const std::vector<size_t> coord = CoordOf(keys);
    const uint32_t bucket = directory_[CellIndex(coord)];
    uint32_t overflow = 0;
    PRIMA_ASSIGN_OR_RETURN(std::vector<Entry> entries,
                           LoadBucket(bucket, &overflow));
    // Uniqueness check across the chain.
    PRIMA_ASSIGN_OR_RETURN(std::vector<Entry> all, LoadChain(bucket));
    for (const auto& e : all) {
      if (e.tid == tid && e.keys == keys) {
        return Status::AlreadyExists("duplicate grid entry");
      }
    }
    size_t used = 0;
    for (const auto& e : entries) used += EntryBytes(e);
    if (overflow == 0 && used + EntryBytes(entry) > BucketCapacityBytes()) {
      const Status st = SplitBucket(bucket, coord);
      if (st.ok()) continue;  // re-locate: the cell may now map elsewhere
      if (!st.IsNotSupported()) return st;
      // Degenerate bucket: grow an overflow chain.
      all.push_back(std::move(entry));
      PRIMA_RETURN_IF_ERROR(StoreChain(bucket, std::move(all)));
      ++entry_count_;
      dirty_ = true;
      return Status::Ok();
    }
    // Room in the main page, or a chain already exists (append to chain).
    if (used + EntryBytes(entry) <= BucketCapacityBytes()) {
      entries.push_back(std::move(entry));
      PRIMA_RETURN_IF_ERROR(StoreBucket(bucket, entries, overflow));
    } else {
      all.push_back(std::move(entry));
      PRIMA_RETURN_IF_ERROR(StoreChain(bucket, std::move(all)));
    }
    ++entry_count_;
    dirty_ = true;
    return Status::Ok();
  }
  return Status::Corruption("grid split did not converge");
}

Status GridFile::Delete(const std::vector<std::string>& keys, Tid tid) {
  if (keys.size() != dims_) {
    return Status::InvalidArgument("grid key dimension mismatch");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<size_t> coord = CoordOf(keys);
  const uint32_t bucket = directory_[CellIndex(coord)];
  PRIMA_ASSIGN_OR_RETURN(std::vector<Entry> all, LoadChain(bucket));
  const size_t before = all.size();
  all.erase(std::remove_if(all.begin(), all.end(),
                           [&](const Entry& e) {
                             return e.tid == tid && e.keys == keys;
                           }),
            all.end());
  if (all.size() == before) return Status::NotFound("grid entry");
  PRIMA_RETURN_IF_ERROR(StoreChain(bucket, std::move(all)));
  --entry_count_;
  dirty_ = true;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Query
// ---------------------------------------------------------------------------

Result<std::vector<GridFile::Match>> GridFile::Query(
    const std::vector<QueryRange>& ranges,
    const std::vector<size_t>& dim_priority) const {
  if (ranges.size() != dims_) {
    return Status::InvalidArgument("grid query dimension mismatch");
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Per-dimension cell windows intersecting the query brick.
  std::vector<std::pair<size_t, size_t>> window(dims_);  // [lo, hi] cells
  for (size_t d = 0; d < dims_; ++d) {
    const auto& scale = scales_[d];
    size_t lo = 0, hi = scale.size();
    if (ranges[d].lo) {
      lo = static_cast<size_t>(
          std::upper_bound(scale.begin(), scale.end(), *ranges[d].lo) -
          scale.begin());
    }
    if (ranges[d].hi) {
      hi = static_cast<size_t>(
          std::upper_bound(scale.begin(), scale.end(), *ranges[d].hi) -
          scale.begin());
    }
    window[d] = {lo, hi};
  }
  // Enumerate cells in the brick; visit each distinct bucket once.
  std::set<uint32_t> visited;
  std::vector<Match> out;
  std::vector<size_t> coord(dims_);
  for (size_t d = 0; d < dims_; ++d) coord[d] = window[d].first;
  if (storage_->readahead_window() > 0) {
    // Volunteer the brick's distinct bucket pages to the prefetcher before
    // walking them: grid buckets are scattered across the segment, so a
    // cold query otherwise pays one random read per bucket.
    std::set<uint32_t> buckets;
    std::vector<size_t> c = coord;
    for (;;) {
      buckets.insert(directory_[CellIndex(c)]);
      size_t d = dims_;
      bool done = true;
      while (d-- > 0) {
        if (c[d] < window[d].second) {
          ++c[d];
          done = false;
          break;
        }
        c[d] = window[d].first;
        if (d == 0) break;
      }
      if (done) break;
    }
    storage_->ReadAhead(segment_,
                        std::vector<uint32_t>(buckets.begin(), buckets.end()));
  }
  for (;;) {
    const uint32_t bucket = directory_[CellIndex(coord)];
    if (visited.insert(bucket).second) {
      PRIMA_ASSIGN_OR_RETURN(std::vector<Entry> entries, LoadChain(bucket));
      for (auto& e : entries) {
        bool match = true;
        for (size_t d = 0; d < dims_ && match; ++d) {
          const auto& r = ranges[d];
          if (r.lo) {
            const int c = Slice(e.keys[d]).Compare(Slice(*r.lo));
            if (c < 0 || (c == 0 && !r.lo_inclusive)) match = false;
          }
          if (match && r.hi) {
            const int c = Slice(e.keys[d]).Compare(Slice(*r.hi));
            if (c > 0 || (c == 0 && !r.hi_inclusive)) match = false;
          }
        }
        if (match) out.push_back(Match{std::move(e.keys), e.tid});
      }
    }
    // Advance the coordinate (odometer).
    size_t d = dims_;
    while (d-- > 0) {
      if (coord[d] < window[d].second) {
        ++coord[d];
        break;
      }
      coord[d] = window[d].first;
      if (d == 0) {
        d = SIZE_MAX;
        break;
      }
    }
    if (d == SIZE_MAX || dims_ == 0) break;
  }
  // Order by the requested per-dimension directions & priority.
  std::vector<size_t> priority = dim_priority;
  if (priority.empty()) {
    priority.resize(dims_);
    for (size_t d = 0; d < dims_; ++d) priority[d] = d;
  }
  std::sort(out.begin(), out.end(), [&](const Match& a, const Match& b) {
    for (size_t p : priority) {
      const int c = Slice(a.keys[p]).Compare(Slice(b.keys[p]));
      if (c != 0) return ranges[p].asc ? c < 0 : c > 0;
    }
    return a.tid.Pack() < b.tid.Pack();
  });
  return out;
}

std::vector<size_t> GridFile::CellCounts() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<size_t> out(dims_);
  for (size_t d = 0; d < dims_; ++d) out[d] = scales_[d].size() + 1;
  return out;
}

}  // namespace prima::access
