#ifndef PRIMA_ACCESS_SCAN_H_
#define PRIMA_ACCESS_SCAN_H_

#include <memory>
#include <optional>
#include <vector>

#include "access/access_system.h"
#include "access/btree.h"
#include "access/search_arg.h"

namespace prima::access {

/// Scans are "a concept to control a dynamically defined set of atoms, to
/// hold a current position in such a set, and to successively accept single
/// atoms (NEXT/PRIOR) for further processing" (paper §3.2). All five scan
/// types of the paper are implemented:
///   1. atom-type scan          — system-defined (physical) order
///   2. sort scan               — user-defined order, with/without sort order
///   3. access-path scan        — B*-tree and grid file, start/stop/direction
///   4. atom-cluster-type scan  — all characteristic atoms of a cluster type
///   5. atom-cluster scan       — atoms of one type within one cluster

// ---------------------------------------------------------------------------
// 1. Atom-type scan
// ---------------------------------------------------------------------------

/// Reads all atoms of one atom type in system-defined order, optionally
/// restricted by a simple search argument ("corresponds to the relation
/// scan of the RSS").
class AtomTypeScan {
 public:
  AtomTypeScan(AccessSystem* access, AtomTypeId type, SearchArgument sarg = {});

  util::Status Open();
  /// Advance and return the next qualifying atom; nullopt at end.
  util::Result<std::optional<Atom>> Next();
  /// Step back and return the previous qualifying atom; nullopt at begin.
  util::Result<std::optional<Atom>> Prior();

 private:
  util::Result<std::optional<Atom>> DecodeAt(const RecordId& rid);
  // Forward read-ahead: when the scan position crosses into the last page
  // of the previously hinted window, volunteer the next window of base-
  // file pages to the storage prefetcher (no-op when read-ahead is off).
  void MaybeReadAhead(uint32_t page);

  AccessSystem* access_;
  AtomTypeId type_;
  SearchArgument sarg_;
  RecordFile* file_ = nullptr;
  std::optional<RecordId> position_;
  bool before_first_ = true;
  bool after_last_ = false;
  uint32_t hint_end_ = 0;  ///< first base-file page not yet hinted
};

// ---------------------------------------------------------------------------
// 2. Sort scan
// ---------------------------------------------------------------------------

/// Bound on the sort criterion: a prefix of criterion values.
struct SortBound {
  std::vector<Value> values;
  bool inclusive = true;
};

/// Reads all atoms of one type in user-defined order. Uses a matching
/// redundant sort order if installed; otherwise engages a matching B*-tree
/// access path; otherwise performs the sort explicitly, creating a
/// temporary in-memory sort order (exactly the paper's three-way fallback).
class SortScan {
 public:
  SortScan(AccessSystem* access, AtomTypeId type,
           std::vector<uint16_t> criterion, std::vector<bool> asc,
           SearchArgument sarg = {}, std::optional<SortBound> start = {},
           std::optional<SortBound> stop = {});

  util::Status Open();
  util::Result<std::optional<Atom>> Next();
  util::Result<std::optional<Atom>> Prior();

  /// Which mechanism Open() selected (observable for tests/benches).
  enum class Mode { kSortOrder, kAccessPath, kExplicitSort };
  Mode mode() const { return mode_; }

 private:
  // Lexicographic comparison of `atom` against a bound on the criterion.
  int CompareBound(const Atom& atom, const std::vector<Value>& bound) const;
  bool PastStop(const Atom& atom) const;
  bool BeforeStart(const Atom& atom) const;
  util::Result<std::optional<Atom>> DecodeCurrent();
  util::Status SeekIteratorToStart();

  AccessSystem* access_;
  AtomTypeId type_;
  std::vector<uint16_t> criterion_;
  std::vector<bool> asc_;
  SearchArgument sarg_;
  std::optional<SortBound> start_;
  std::optional<SortBound> stop_;

  Mode mode_ = Mode::kExplicitSort;
  const StructureDef* structure_ = nullptr;  // sort order or access path
  std::unique_ptr<BTree::Iterator> iter_;
  bool iter_opened_ = false;

  // Explicit sort fallback.
  std::vector<Atom> sorted_;
  size_t index_ = 0;
  bool before_first_ = true;
};

// ---------------------------------------------------------------------------
// 3a. Access-path scan (B*-tree)
// ---------------------------------------------------------------------------

/// Key range over the access path's attribute list (a prefix of values).
struct KeyRange {
  std::optional<std::vector<Value>> start;
  bool start_inclusive = true;
  std::optional<std::vector<Value>> stop;
  bool stop_inclusive = true;
};

class BTreeAccessPathScan {
 public:
  /// `forward` = false traverses PRIOR-wise from the stop end.
  BTreeAccessPathScan(AccessSystem* access, uint32_t structure_id,
                      KeyRange range, bool forward = true,
                      SearchArgument sarg = {});

  util::Status Open();
  /// Next qualifying atom (fetched from its base record).
  util::Result<std::optional<Atom>> Next();
  /// Index-only variant.
  util::Result<std::optional<Tid>> NextTid();

 private:
  util::Result<std::optional<Tid>> Advance();

  AccessSystem* access_;
  uint32_t structure_id_;
  KeyRange range_;
  bool forward_;
  SearchArgument sarg_;
  const StructureDef* def_ = nullptr;
  std::unique_ptr<BTree::Iterator> iter_;
  std::string start_key_, stop_key_;
  bool open_ = false;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// 3b. Access-path scan (grid file)
// ---------------------------------------------------------------------------

/// Per-dimension condition: start/stop and direction individually for every
/// key involved in the scan (paper §3.2).
struct GridDimension {
  std::optional<Value> lo;
  std::optional<Value> hi;
  bool lo_inclusive = true;
  bool hi_inclusive = true;
  bool asc = true;
};

class GridAccessPathScan {
 public:
  GridAccessPathScan(AccessSystem* access, uint32_t structure_id,
                     std::vector<GridDimension> dims,
                     std::vector<size_t> dim_priority = {},
                     SearchArgument sarg = {});

  util::Status Open();
  util::Result<std::optional<Atom>> Next();
  util::Result<std::optional<Atom>> Prior();

 private:
  AccessSystem* access_;
  uint32_t structure_id_;
  std::vector<GridDimension> dims_;
  std::vector<size_t> dim_priority_;
  SearchArgument sarg_;
  std::vector<Tid> matches_;
  size_t index_ = 0;
  bool before_first_ = true;
};

// ---------------------------------------------------------------------------
// 4. Atom-cluster-type scan
// ---------------------------------------------------------------------------

/// Reads all characteristic atoms of an atom-cluster type in system-defined
/// order, restricted by a search argument decidable in one pass through a
/// single atom cluster; each position gives direct access to the whole
/// cluster.
class AtomClusterTypeScan {
 public:
  AtomClusterTypeScan(AccessSystem* access, uint32_t cluster_structure_id,
                      SearchArgument char_sarg = {});

  util::Status Open();
  /// Next cluster (characteristic atom qualifies); nullopt at end.
  util::Result<std::optional<ClusterImage>> Next();

 private:
  AccessSystem* access_;
  uint32_t structure_id_;
  SearchArgument sarg_;
  const StructureDef* def_ = nullptr;
  std::unique_ptr<AtomTypeScan> char_scan_;
};

// ---------------------------------------------------------------------------
// 5. Atom-cluster scan
// ---------------------------------------------------------------------------

/// Reads all atoms of a certain atom type within one single atom cluster in
/// system-defined order, with optional search-argument restriction.
class AtomClusterScan {
 public:
  AtomClusterScan(AccessSystem* access, uint32_t cluster_structure_id,
                  Tid characteristic, AtomTypeId member_type,
                  SearchArgument sarg = {});

  util::Status Open();
  util::Result<std::optional<Atom>> Next();
  util::Result<std::optional<Atom>> Prior();

 private:
  AccessSystem* access_;
  uint32_t structure_id_;
  Tid characteristic_;
  AtomTypeId member_type_;
  SearchArgument sarg_;
  std::vector<Atom> atoms_;
  size_t index_ = 0;
  bool before_first_ = true;
};

}  // namespace prima::access

#endif  // PRIMA_ACCESS_SCAN_H_
