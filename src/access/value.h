#ifndef PRIMA_ACCESS_VALUE_H_
#define PRIMA_ACCESS_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "access/tid.h"
#include "access/type_system.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace prima::access {

/// Runtime representation of an attribute value. A small tagged union:
/// RECORD values are positional field vectors; SET / LIST / ARRAY values all
/// use the composite vector (sets are kept duplicate-free by the access
/// system). Values serialize self-describing so partitions (attribute
/// subsets) and schema evolution decode without a schema in hand.
class Value {
 public:
  enum class Kind : uint8_t {
    kNull = 0,
    kInt = 1,
    kReal = 2,
    kBool = 3,
    kString = 4,
    kTid = 5,      ///< IDENTIFIER and REFERENCE values
    kRecord = 6,
    kList = 7,     ///< SET / LIST / ARRAY
  };

  Value() : kind_(Kind::kNull) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) {
    Value x;
    x.kind_ = Kind::kInt;
    x.int_ = v;
    return x;
  }
  static Value Real(double v) {
    Value x;
    x.kind_ = Kind::kReal;
    x.real_ = v;
    return x;
  }
  static Value Bool(bool v) {
    Value x;
    x.kind_ = Kind::kBool;
    x.bool_ = v;
    return x;
  }
  static Value String(std::string v) {
    Value x;
    x.kind_ = Kind::kString;
    x.str_ = std::move(v);
    return x;
  }
  static Value Ref(Tid t) {
    Value x;
    x.kind_ = Kind::kTid;
    x.tid_ = t;
    return x;
  }
  static Value Record(std::vector<Value> fields) {
    Value x;
    x.kind_ = Kind::kRecord;
    x.elems_ = std::move(fields);
    return x;
  }
  static Value List(std::vector<Value> elems) {
    Value x;
    x.kind_ = Kind::kList;
    x.elems_ = std::move(elems);
    return x;
  }
  /// An empty repeating group (what MQL's EMPTY literal denotes).
  static Value EmptyList() { return List({}); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  int64_t AsInt() const { return int_; }
  double AsReal() const { return real_; }
  bool AsBool() const { return bool_; }
  const std::string& AsString() const { return str_; }
  Tid AsTid() const { return tid_; }
  const std::vector<Value>& elems() const { return elems_; }
  std::vector<Value>* mutable_elems() { return &elems_; }

  /// Numeric view: kInt and kReal compare/convert interchangeably.
  double AsNumber() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : real_;
  }
  bool IsNumber() const { return kind_ == Kind::kInt || kind_ == Kind::kReal; }

  bool Equals(const Value& other) const;
  /// Total order: null < everything; numbers compare numerically across
  /// kInt/kReal; otherwise kind, then value. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  /// True if this list/set value contains an element equal to `v`.
  bool Contains(const Value& v) const;

  std::string ToString() const;

  void EncodeInto(std::string* out) const;
  static util::Result<Value> Decode(util::Slice* in);

  /// Order-preserving key encoding (B*-tree / grid file). Only scalar kinds
  /// (int, real, bool, string, tid) are encodable.
  util::Status EncodeKeyInto(std::string* out) const;

 private:
  Kind kind_;
  int64_t int_ = 0;
  double real_ = 0;
  bool bool_ = false;
  Tid tid_;
  std::string str_;
  std::vector<Value> elems_;
};

/// A typed record at the access-system interface: the atom (paper §2.2).
/// `attrs` is positional over the atom type's attribute list; attributes the
/// caller did not supply (or project) are kNull.
struct Atom {
  Tid tid;
  std::vector<Value> attrs;

  /// Serialize non-null attributes as (index, value) pairs.
  void EncodeInto(std::string* out) const;
  static util::Result<Atom> Decode(util::Slice* in, size_t attr_count);
};

/// Validate that `v` structurally matches `t` (kinds, record arity, element
/// types, array length, reference target type when resolvable).
util::Status TypeCheckValue(const Value& v, const TypeDesc& t);

/// Check a SET/LIST cardinality restriction.
util::Status CheckCardinality(const Value& v, const TypeDesc& t,
                              const std::string& attr_name);

}  // namespace prima::access

#endif  // PRIMA_ACCESS_VALUE_H_
