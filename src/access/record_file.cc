#include "access/record_file.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace prima::access {

using storage::LatchMode;
using storage::PageGuard;
using storage::PageHeader;
using storage::PageType;
using util::Result;
using util::Slice;
using util::Status;

namespace {
uint16_t SlotOffset(const char* page, uint32_t page_size, uint16_t slot) {
  return util::DecodeFixed16(page + page_size - 4 * (slot + 1));
}
uint16_t SlotLen(const char* page, uint32_t page_size, uint16_t slot) {
  return util::DecodeFixed16(page + page_size - 4 * (slot + 1) + 2);
}
void SetSlot(char* page, uint32_t page_size, uint16_t slot, uint16_t offset,
             uint16_t len) {
  util::EncodeFixed16(page + page_size - 4 * (slot + 1), offset);
  util::EncodeFixed16(page + page_size - 4 * (slot + 1) + 2, len);
}
}  // namespace

RecordFile::RecordFile(storage::StorageSystem* storage,
                       storage::SegmentId segment)
    : storage_(storage), segment_(segment) {}

Status RecordFile::Open() {
  PRIMA_ASSIGN_OR_RETURN(const storage::PageSize ps,
                         storage_->SegmentPageSize(segment_));
  page_size_ = storage::PageSizeBytes(ps);
  PRIMA_ASSIGN_OR_RETURN(const uint32_t page_count,
                         storage_->PageCount(segment_));
  std::lock_guard<std::mutex> lock(mu_);
  free_space_.clear();
  record_count_ = 0;
  for (uint32_t p = 1; p < page_count; ++p) {
    PRIMA_ASSIGN_OR_RETURN(PageGuard guard,
                           storage_->FixPage(segment_, p, LatchMode::kShared));
    const PageType type = PageHeader::type(guard.data());
    if (type == PageType::kSlotted) {
      free_space_[p] = TotalFree(guard.data(), page_size_);
      const uint16_t n_slots = PageHeader::u16a(guard.data());
      for (uint16_t s = 0; s < n_slots; ++s) {
        if (SlotOffset(guard.data(), page_size_, s) != 0) ++record_count_;
      }
    } else if (type == PageType::kSeqHeader) {
      ++record_count_;
    }
  }
  return Status::Ok();
}

uint32_t RecordFile::ContiguousFree(const char* page, uint32_t page_size) {
  const uint16_t n_slots = PageHeader::u16a(page);
  const uint16_t free_start = PageHeader::u16b(page);
  const uint32_t slot_area = page_size - kSlotBytes * n_slots;
  return slot_area > free_start ? slot_area - free_start : 0;
}

uint32_t RecordFile::TotalFree(const char* page, uint32_t page_size) {
  return ContiguousFree(page, page_size) + PageHeader::u16c(page);
}

void RecordFile::Compact(char* page, uint32_t page_size) {
  const uint16_t n_slots = PageHeader::u16a(page);
  struct Live {
    uint16_t slot;
    uint16_t offset;
    uint16_t len;
  };
  std::vector<Live> live;
  for (uint16_t s = 0; s < n_slots; ++s) {
    const uint16_t off = SlotOffset(page, page_size, s);
    if (off != 0) live.push_back({s, off, SlotLen(page, page_size, s)});
  }
  // Copy live payloads into a scratch area, then lay them out densely.
  std::string scratch;
  scratch.reserve(page_size);
  for (const auto& l : live) scratch.append(page + l.offset, l.len);
  uint16_t cursor = PageHeader::kSize;
  size_t scratch_off = 0;
  for (const auto& l : live) {
    std::memcpy(page + cursor, scratch.data() + scratch_off, l.len);
    SetSlot(page, page_size, l.slot, cursor, l.len);
    cursor = static_cast<uint16_t>(cursor + l.len);
    scratch_off += l.len;
  }
  PageHeader::set_u16b(page, cursor);  // free_start
  PageHeader::set_u16c(page, 0);       // garbage
}

Result<RecordId> RecordFile::InsertIntoPage(PageGuard* guard, Slice record) {
  char* page = guard->mutable_data();
  const uint16_t n_slots = PageHeader::u16a(page);
  // Reuse a dead slot if possible (keeps the slot array compact).
  uint16_t slot = n_slots;
  for (uint16_t s = 0; s < n_slots; ++s) {
    if (SlotOffset(page, page_size_, s) == 0) {
      slot = s;
      break;
    }
  }
  const uint32_t need =
      static_cast<uint32_t>(record.size()) + (slot == n_slots ? kSlotBytes : 0);
  if (ContiguousFree(page, page_size_) < need) {
    if (TotalFree(page, page_size_) < need) {
      return Status::NoSpace("page full");
    }
    Compact(page, page_size_);
  }
  const uint16_t offset = PageHeader::u16b(page);
  std::memcpy(page + offset, record.data(), record.size());
  if (slot == n_slots) PageHeader::set_u16a(page, n_slots + 1);
  SetSlot(page, page_size_, slot, offset,
          static_cast<uint16_t>(record.size()));
  PageHeader::set_u16b(page, static_cast<uint16_t>(offset + record.size()));
  return RecordId{guard->page_no(), slot};
}

Result<RecordId> RecordFile::InsertShort(Slice record) {
  // Find a slotted page with room (free-space cache), else grow.
  uint32_t candidate = 0;
  const uint32_t need = static_cast<uint32_t>(record.size()) + kSlotBytes;
  for (const auto& [p, free] : free_space_) {
    if (free >= need) {
      candidate = p;
      break;
    }
  }
  if (candidate != 0) {
    PRIMA_ASSIGN_OR_RETURN(
        PageGuard guard,
        storage_->FixPage(segment_, candidate, LatchMode::kExclusive));
    auto rid = InsertIntoPage(&guard, record);
    if (rid.ok()) {
      free_space_[candidate] = TotalFree(guard.data(), page_size_);
      return rid;
    }
    // Stale cache entry; fall through to allocation.
    free_space_[candidate] = TotalFree(guard.data(), page_size_);
  }
  PRIMA_ASSIGN_OR_RETURN(PageGuard guard,
                         storage_->NewPage(segment_, PageType::kSlotted));
  char* page = guard.mutable_data();
  PageHeader::set_u16b(page, PageHeader::kSize);  // free_start
  PRIMA_ASSIGN_OR_RETURN(const RecordId rid, InsertIntoPage(&guard, record));
  free_space_[guard.page_no()] = TotalFree(guard.data(), page_size_);
  return rid;
}

Result<RecordId> RecordFile::Insert(Slice record) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordId rid;
  if (record.size() > MaxShortRecord()) {
    PRIMA_ASSIGN_OR_RETURN(const uint32_t header,
                           storage_->CreateSequence(segment_, record));
    rid = RecordId{header, RecordId::kLongRecordSlot};
  } else {
    PRIMA_ASSIGN_OR_RETURN(rid, InsertShort(record));
  }
  ++record_count_;
  return rid;
}

Result<std::string> RecordFile::Read(const RecordId& rid) const {
  if (rid.IsLong()) {
    return storage_->ReadSequence(segment_, rid.page);
  }
  PRIMA_ASSIGN_OR_RETURN(
      PageGuard guard, storage_->FixPage(segment_, rid.page, LatchMode::kShared));
  const char* page = guard.data();
  if (PageHeader::type(page) != PageType::kSlotted ||
      rid.slot >= PageHeader::u16a(page)) {
    return Status::NotFound("record " + std::to_string(rid.Pack()));
  }
  const uint16_t offset = SlotOffset(page, page_size_, rid.slot);
  if (offset == 0) {
    return Status::NotFound("record " + std::to_string(rid.Pack()) +
                            " deleted");
  }
  return std::string(page + offset, SlotLen(page, page_size_, rid.slot));
}

Status RecordFile::Delete(const RecordId& rid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rid.IsLong()) {
    PRIMA_RETURN_IF_ERROR(storage_->DropSequence(segment_, rid.page));
    --record_count_;
    return Status::Ok();
  }
  PRIMA_ASSIGN_OR_RETURN(
      PageGuard guard,
      storage_->FixPage(segment_, rid.page, LatchMode::kExclusive));
  char* page = guard.mutable_data();
  if (PageHeader::type(page) != PageType::kSlotted ||
      rid.slot >= PageHeader::u16a(page)) {
    return Status::NotFound("record " + std::to_string(rid.Pack()));
  }
  const uint16_t offset = SlotOffset(page, page_size_, rid.slot);
  if (offset == 0) {
    return Status::NotFound("record already deleted");
  }
  const uint16_t len = SlotLen(page, page_size_, rid.slot);
  SetSlot(page, page_size_, rid.slot, 0, 0);
  PageHeader::set_u16c(page,
                       static_cast<uint16_t>(PageHeader::u16c(page) + len));
  free_space_[rid.page] = TotalFree(page, page_size_);
  --record_count_;
  return Status::Ok();
}

Result<RecordId> RecordFile::Update(const RecordId& rid, Slice record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rid.IsLong()) {
    if (record.size() > MaxShortRecord()) {
      PRIMA_RETURN_IF_ERROR(
          storage_->RewriteSequence(segment_, rid.page, record));
      return rid;
    }
    PRIMA_RETURN_IF_ERROR(storage_->DropSequence(segment_, rid.page));
    return InsertShort(record);
  }
  {
    PRIMA_ASSIGN_OR_RETURN(
        PageGuard guard,
        storage_->FixPage(segment_, rid.page, LatchMode::kExclusive));
    char* page = guard.mutable_data();
    if (PageHeader::type(page) != PageType::kSlotted ||
        rid.slot >= PageHeader::u16a(page)) {
      return Status::NotFound("record " + std::to_string(rid.Pack()));
    }
    const uint16_t offset = SlotOffset(page, page_size_, rid.slot);
    if (offset == 0) return Status::NotFound("record deleted");
    const uint16_t old_len = SlotLen(page, page_size_, rid.slot);
    if (record.size() <= old_len) {
      // Shrinking (or equal) update stays in place.
      std::memcpy(page + offset, record.data(), record.size());
      SetSlot(page, page_size_, rid.slot, offset,
              static_cast<uint16_t>(record.size()));
      PageHeader::set_u16c(
          page, static_cast<uint16_t>(PageHeader::u16c(page) +
                                      (old_len - record.size())));
      free_space_[rid.page] = TotalFree(page, page_size_);
      return rid;
    }
    // Try growing within the same page: drop + reinsert into this page.
    SetSlot(page, page_size_, rid.slot, 0, 0);
    PageHeader::set_u16c(
        page, static_cast<uint16_t>(PageHeader::u16c(page) + old_len));
    if (record.size() <= MaxShortRecord() &&
        TotalFree(page, page_size_) >= record.size()) {
      // Reuses the same slot index (first dead slot).
      auto new_rid = InsertIntoPage(&guard, record);
      if (new_rid.ok()) {
        free_space_[rid.page] = TotalFree(guard.data(), page_size_);
        return new_rid;
      }
    }
    free_space_[rid.page] = TotalFree(page, page_size_);
  }
  // Move elsewhere.
  if (record.size() > MaxShortRecord()) {
    PRIMA_ASSIGN_OR_RETURN(const uint32_t header,
                           storage_->CreateSequence(segment_, record));
    return RecordId{header, RecordId::kLongRecordSlot};
  }
  return InsertShort(record);
}

std::optional<uint16_t> RecordFile::LiveSlotFrom(const char* page,
                                                 uint32_t page_size,
                                                 uint16_t from) {
  const uint16_t n_slots = PageHeader::u16a(page);
  for (uint16_t s = from; s < n_slots; ++s) {
    if (SlotOffset(page, page_size, s) != 0) return s;
  }
  return std::nullopt;
}

std::optional<uint16_t> RecordFile::LiveSlotBefore(const char* page,
                                                   uint32_t page_size,
                                                   uint16_t before) {
  for (uint16_t s = before; s-- > 0;) {
    if (SlotOffset(page, page_size, s) != 0) return s;
  }
  return std::nullopt;
}

Result<std::optional<RecordId>> RecordFile::First() const {
  PRIMA_ASSIGN_OR_RETURN(const uint32_t page_count,
                         storage_->PageCount(segment_));
  for (uint32_t p = 1; p < page_count; ++p) {
    PRIMA_ASSIGN_OR_RETURN(PageGuard guard,
                           storage_->FixPage(segment_, p, LatchMode::kShared));
    const PageType type = PageHeader::type(guard.data());
    if (type == PageType::kSlotted) {
      auto slot = LiveSlotFrom(guard.data(), page_size_, 0);
      if (slot) return std::optional<RecordId>(RecordId{p, *slot});
    } else if (type == PageType::kSeqHeader) {
      return std::optional<RecordId>(RecordId{p, RecordId::kLongRecordSlot});
    }
  }
  return std::optional<RecordId>();
}

Result<std::optional<RecordId>> RecordFile::Next(const RecordId& rid) const {
  PRIMA_ASSIGN_OR_RETURN(const uint32_t page_count,
                         storage_->PageCount(segment_));
  // Continue within the starting page first.
  if (!rid.IsLong()) {
    PRIMA_ASSIGN_OR_RETURN(
        PageGuard guard, storage_->FixPage(segment_, rid.page, LatchMode::kShared));
    if (PageHeader::type(guard.data()) == PageType::kSlotted) {
      auto slot = LiveSlotFrom(guard.data(), page_size_,
                               static_cast<uint16_t>(rid.slot + 1));
      if (slot) return std::optional<RecordId>(RecordId{rid.page, *slot});
    }
  }
  for (uint32_t p = rid.page + 1; p < page_count; ++p) {
    PRIMA_ASSIGN_OR_RETURN(PageGuard guard,
                           storage_->FixPage(segment_, p, LatchMode::kShared));
    const PageType type = PageHeader::type(guard.data());
    if (type == PageType::kSlotted) {
      auto slot = LiveSlotFrom(guard.data(), page_size_, 0);
      if (slot) return std::optional<RecordId>(RecordId{p, *slot});
    } else if (type == PageType::kSeqHeader) {
      return std::optional<RecordId>(RecordId{p, RecordId::kLongRecordSlot});
    }
  }
  return std::optional<RecordId>();
}

Result<std::optional<RecordId>> RecordFile::Prev(const RecordId& rid) const {
  if (!rid.IsLong() && rid.slot > 0) {
    PRIMA_ASSIGN_OR_RETURN(
        PageGuard guard, storage_->FixPage(segment_, rid.page, LatchMode::kShared));
    if (PageHeader::type(guard.data()) == PageType::kSlotted) {
      auto slot = LiveSlotBefore(guard.data(), page_size_, rid.slot);
      if (slot) return std::optional<RecordId>(RecordId{rid.page, *slot});
    }
  }
  for (uint32_t p = rid.page; p-- > 1;) {
    PRIMA_ASSIGN_OR_RETURN(PageGuard guard,
                           storage_->FixPage(segment_, p, LatchMode::kShared));
    const PageType type = PageHeader::type(guard.data());
    if (type == PageType::kSlotted) {
      auto slot = LiveSlotBefore(guard.data(), page_size_,
                                 PageHeader::u16a(guard.data()));
      if (slot) return std::optional<RecordId>(RecordId{p, *slot});
    } else if (type == PageType::kSeqHeader) {
      return std::optional<RecordId>(RecordId{p, RecordId::kLongRecordSlot});
    }
  }
  return std::optional<RecordId>();
}

Result<std::optional<RecordId>> RecordFile::Last() const {
  PRIMA_ASSIGN_OR_RETURN(const uint32_t page_count,
                         storage_->PageCount(segment_));
  for (uint32_t p = page_count; p-- > 1;) {
    PRIMA_ASSIGN_OR_RETURN(PageGuard guard,
                           storage_->FixPage(segment_, p, LatchMode::kShared));
    const PageType type = PageHeader::type(guard.data());
    if (type == PageType::kSlotted) {
      auto slot = LiveSlotBefore(guard.data(), page_size_,
                                 PageHeader::u16a(guard.data()));
      if (slot) return std::optional<RecordId>(RecordId{p, *slot});
    } else if (type == PageType::kSeqHeader) {
      return std::optional<RecordId>(RecordId{p, RecordId::kLongRecordSlot});
    }
  }
  return std::optional<RecordId>();
}

}  // namespace prima::access
