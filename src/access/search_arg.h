#ifndef PRIMA_ACCESS_SEARCH_ARG_H_
#define PRIMA_ACCESS_SEARCH_ARG_H_

#include <vector>

#include "access/value.h"

namespace prima::access {

/// Comparison operators usable in a simple search argument.
enum class CompareOp : uint8_t {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIsEmpty,    ///< repeating group has no elements (MQL: attr = EMPTY)
  kNotEmpty,   ///< repeating group has elements   (MQL: attr <> EMPTY)
  kContains,   ///< repeating group contains the operand
};

/// One comparison decidable on a single atom. `field_path` optionally
/// descends into RECORD values (e.g. placement.x_coord).
struct SimplePredicate {
  uint16_t attr = 0;
  std::vector<uint16_t> field_path;
  CompareOp op = CompareOp::kEq;
  Value operand;

  bool Eval(const Atom& atom) const {
    if (attr >= atom.attrs.size()) return false;
    const Value* v = &atom.attrs[attr];
    for (uint16_t f : field_path) {
      if (v->kind() != Value::Kind::kRecord || f >= v->elems().size()) {
        return false;
      }
      v = &v->elems()[f];
    }
    switch (op) {
      case CompareOp::kIsEmpty:
        return v->is_null() ||
               (v->kind() == Value::Kind::kList && v->elems().empty());
      case CompareOp::kNotEmpty:
        return v->kind() == Value::Kind::kList && !v->elems().empty();
      case CompareOp::kContains:
        return v->Contains(operand);
      default:
        break;
    }
    if (v->is_null()) return false;
    const int c = v->Compare(operand);
    switch (op) {
      case CompareOp::kEq: return c == 0;
      case CompareOp::kNe: return c != 0;
      case CompareOp::kLt: return c < 0;
      case CompareOp::kLe: return c <= 0;
      case CompareOp::kGt: return c > 0;
      case CompareOp::kGe: return c >= 0;
      default: return false;
    }
  }
};

/// A conjunction of simple predicates — restricted by design so it is
/// "decidable on each atom" in one pass (the single-scan property the paper
/// cites from [DPS86]). The data system pushes qualifying conjuncts down
/// into scans and evaluates everything else itself.
struct SearchArgument {
  std::vector<SimplePredicate> conjuncts;

  bool Matches(const Atom& atom) const {
    for (const auto& p : conjuncts) {
      if (!p.Eval(atom)) return false;
    }
    return true;
  }
  bool empty() const { return conjuncts.empty(); }
};

}  // namespace prima::access

#endif  // PRIMA_ACCESS_SEARCH_ARG_H_
