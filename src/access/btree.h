#ifndef PRIMA_ACCESS_BTREE_H_
#define PRIMA_ACCESS_BTREE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/storage_system.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace prima::access {

/// Disk-resident B*-tree with doubly-chained leaves, so key-sequential
/// NEXT *and* PRIOR traversal are both native (paper §3.2: "linear orders
/// based on B*-trees only allow sequential NEXT/PRIOR traversal" — the scan
/// layer builds start/stop navigation on top of this).
///
/// Keys are arbitrary byte strings compared with memcmp (callers use the
/// order-preserving encodings from util/coding.h) and must be unique —
/// non-unique access paths append the atom surrogate as a tie-breaker.
/// Values are byte strings: 8-byte surrogates for access paths, whole
/// record images for sort orders.
///
/// Concurrency: one mutex per tree (index-level locking; page latches are
/// unnecessary below it). Deletion is lazy: empty nodes are unlinked, but
/// non-empty nodes never merge — standard prototype trade-off.
class BTree {
 public:
  /// Attach to an existing tree rooted at `root_page`.
  /// `on_root_change` fires when a root split/collapse moves the root (the
  /// owner persists it into the catalog's StructureDef).
  BTree(storage::StorageSystem* storage, storage::SegmentId segment,
        uint32_t root_page, std::function<void(uint32_t)> on_root_change);

  /// Create an empty tree (a single leaf) in `segment`; returns the root.
  static util::Result<uint32_t> Create(storage::StorageSystem* storage,
                                       storage::SegmentId segment);

  util::Status Insert(util::Slice key, util::Slice value);
  /// Replace the value of an existing key (inserts if absent).
  util::Status Put(util::Slice key, util::Slice value);
  util::Status Delete(util::Slice key);
  util::Result<std::optional<std::string>> Get(util::Slice key);

  uint32_t root_page() const { return root_page_; }
  /// Re-point the tree at `root_page` (restart recovery: the catalog's
  /// persisted root predates splits the log replayed onto the pages).
  void SetRoot(uint32_t root_page) { root_page_ = root_page; }

  /// Leaf-level cursor. Operations return a Status; after a failed
  /// operation the iterator is invalid.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    const std::string& key() const { return entries_[index_].first; }
    const std::string& value() const { return entries_[index_].second; }

    util::Status SeekToFirst();
    util::Status SeekToLast();
    /// Position at the first entry with key >= target.
    util::Status Seek(util::Slice target);
    /// Position at the last entry with key <= target.
    util::Status SeekForPrev(util::Slice target);
    util::Status Next();
    util::Status Prev();

   private:
    friend class BTree;
    explicit Iterator(BTree* tree) : tree_(tree) {}

    util::Status LoadLeaf(uint32_t page);

    BTree* tree_;
    bool valid_ = false;
    uint32_t leaf_page_ = 0;
    uint32_t prev_leaf_ = 0;
    uint32_t next_leaf_ = 0;
    std::vector<std::pair<std::string, std::string>> entries_;
    size_t index_ = 0;
  };

  Iterator NewIterator() { return Iterator(this); }

  /// Total number of (key, value) entries — O(leaves), used by tests.
  util::Result<uint64_t> CountEntries();

  /// Largest entry (key+value bytes) the tree accepts.
  uint32_t MaxEntryBytes() const;

 private:
  struct LeafNode {
    uint32_t prev = 0;
    uint32_t next = 0;
    std::vector<std::pair<std::string, std::string>> entries;
  };
  struct InnerNode {
    uint32_t leftmost = 0;  // child covering keys < entries[0].key
    std::vector<std::pair<std::string, uint32_t>> entries;
  };
  struct Split {
    std::string separator;  // first key of the new right sibling
    uint32_t right_page = 0;
  };

  util::Result<LeafNode> LoadLeaf(uint32_t page);
  util::Result<InnerNode> LoadInner(uint32_t page);
  util::Status StoreLeaf(uint32_t page, const LeafNode& node);
  util::Status StoreInner(uint32_t page, const InnerNode& node);
  util::Result<bool> IsLeaf(uint32_t page);

  static size_t LeafEncodedSize(const LeafNode& node);
  static size_t InnerEncodedSize(const InnerNode& node);

  /// Insert into the subtree; returns a Split if the node divided.
  /// `replace`: overwrite existing keys instead of failing.
  util::Result<std::optional<Split>> InsertRec(uint32_t page, util::Slice key,
                                               util::Slice value, bool replace);
  /// Delete from the subtree; sets *now_empty when the node lost its last
  /// entry (the parent unlinks it).
  util::Status DeleteRec(uint32_t page, util::Slice key, bool* now_empty);

  util::Status InsertImpl(util::Slice key, util::Slice value, bool replace);

  // Which child of `node` covers `key`: returns the child page.
  static uint32_t ChildFor(const InnerNode& node, util::Slice key);

  storage::StorageSystem* storage_;
  storage::SegmentId segment_;
  uint32_t page_size_;
  uint32_t root_page_;
  std::function<void(uint32_t)> on_root_change_;
  std::mutex mu_;
};

}  // namespace prima::access

#endif  // PRIMA_ACCESS_BTREE_H_
