#ifndef PRIMA_ACCESS_CATALOG_H_
#define PRIMA_ACCESS_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "access/type_system.h"
#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace prima::access {

/// One attribute of an atom type. `id` is the positional index within the
/// atom type (stable: attributes are never reordered).
struct AttributeDef {
  std::string name;
  TypeDesc type;
  uint16_t id = 0;
};

/// Schema of an atom type (paper Fig. 2.3: CREATE ATOM_TYPE).
struct AtomTypeDef {
  std::string name;
  AtomTypeId id = 0;
  std::vector<AttributeDef> attrs;
  /// KEYS_ARE attribute ids — value-based keys with enforced uniqueness.
  std::vector<uint16_t> key_attrs;
  /// Index of the (single) IDENTIFIER attribute.
  uint16_t identifier_attr = 0;
  /// Base segment holding the primary physical records.
  storage::SegmentId base_segment = 0;

  const AttributeDef* FindAttr(const std::string& attr_name) const {
    for (const auto& a : attrs) {
      if (a.name == attr_name) return &a;
    }
    return nullptr;
  }
};

/// A named molecule type from `DEFINE MOLECULE TYPE` (paper Fig. 2.3c).
/// The catalog stores the FROM-clause text; the data system parses it on
/// use (keeps the access layer independent of MQL).
struct MoleculeTypeDef {
  std::string name;
  std::string from_text;
  bool recursive = false;
};

/// Kind of redundant storage structure installed by LDL (paper §2.3, §3.2).
enum class StructureKind : uint8_t {
  kBTreeAccessPath = 0,  ///< one- or multi-attribute B*-tree
  kGridAccessPath = 1,   ///< multidimensional grid file
  kSortOrder = 2,        ///< redundant sorted record materialization
  kPartition = 3,        ///< vertical partition (attribute combination)
  kAtomCluster = 4,      ///< molecule materialization on page sequences
};

/// Descriptor of one storage structure. All structures "materialize
/// homogeneous or heterogeneous result sets" (paper §3.2) and are
/// transparent at the MAD interface.
struct StructureDef {
  uint32_t id = 0;
  StructureKind kind = StructureKind::kBTreeAccessPath;
  std::string name;
  /// Owning atom type; for clusters: the characteristic atom type.
  AtomTypeId atom_type = 0;
  /// Key attrs (access path / sort order) or stored attrs (partition) or
  /// the reference attrs of the characteristic type to follow (cluster).
  std::vector<uint16_t> attrs;
  /// Sort order: per-attr ascending flags (parallel to attrs).
  std::vector<bool> asc;
  bool unique = false;
  storage::SegmentId segment = 0;
  /// B*-tree root page / grid meta page; 0 when not applicable.
  uint32_t root_page = 0;
};

/// The metadata hub of the access system: atom types, named molecule types,
/// and storage structures. Persisted wholesale into the catalog segment.
class Catalog {
 public:
  // --- atom types ----------------------------------------------------------

  /// Register a new atom type. Validates: unique name, exactly one
  /// IDENTIFIER attribute, key attrs exist and are scalar. Assigns the id
  /// and attribute ids; base_segment is set by the caller beforehand.
  util::Result<AtomTypeId> AddAtomType(AtomTypeDef def);

  util::Status DropAtomType(AtomTypeId id);

  const AtomTypeDef* FindAtomType(const std::string& name) const;
  const AtomTypeDef* GetAtomType(AtomTypeId id) const;
  std::vector<const AtomTypeDef*> ListAtomTypes() const;

  /// Resolve all REF_TO targets that are resolvable and validate that every
  /// resolved association is *mutually* inverse — the symmetry invariant of
  /// the MAD model (paper §2.1: "the referenced record must contain a
  /// back-reference that can be used in exactly the same way").
  util::Status ResolveReferences();

  // --- molecule types -------------------------------------------------------

  util::Status DefineMoleculeType(MoleculeTypeDef def);
  util::Status DropMoleculeType(const std::string& name);
  const MoleculeTypeDef* FindMoleculeType(const std::string& name) const;
  std::vector<const MoleculeTypeDef*> ListMoleculeTypes() const;

  // --- storage structures ----------------------------------------------------

  util::Result<uint32_t> AddStructure(StructureDef def);
  util::Status DropStructure(uint32_t id);
  const StructureDef* GetStructure(uint32_t id) const;
  const StructureDef* FindStructure(const std::string& name) const;
  /// All structures owned by an atom type (for update propagation).
  std::vector<const StructureDef*> StructuresFor(AtomTypeId type) const;
  std::vector<const StructureDef*> ListStructures() const;
  /// Update a structure's root page (B*-tree splits move the root).
  util::Status SetStructureRoot(uint32_t id, uint32_t root_page);

  // --- persistence -----------------------------------------------------------

  std::string Encode() const;
  util::Status DecodeFrom(util::Slice in);

  /// Monotone structure-id source (also used for segment naming).
  uint32_t next_structure_id() const { return next_structure_id_; }

  /// Bumped by every schema mutation (type / molecule-type / structure
  /// add+drop — NOT by root-page moves, which leave plans valid). A cached
  /// query plan embeds structure ids; executing it after the schema moved
  /// underneath would chase dropped structures, so plan caches compare
  /// this version and re-plan on mismatch.
  uint64_t schema_version() const {
    return schema_version_.load(std::memory_order_acquire);
  }

 private:
  void BumpSchemaVersion() {
    schema_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  std::atomic<uint64_t> schema_version_{1};
  mutable std::shared_mutex mu_;
  std::map<AtomTypeId, AtomTypeDef> atom_types_;
  std::map<std::string, AtomTypeId> atom_type_names_;
  std::map<std::string, MoleculeTypeDef> molecule_types_;
  std::map<uint32_t, StructureDef> structures_;
  AtomTypeId next_atom_type_id_ = 1;
  uint32_t next_structure_id_ = 1;
};

}  // namespace prima::access

#endif  // PRIMA_ACCESS_CATALOG_H_
