#include "access/address_table.h"

#include "util/coding.h"

namespace prima::access {

using util::Result;
using util::Slice;
using util::Status;

Tid AddressTable::NewTid(AtomTypeId type) {
  std::unique_lock lock(mu_);
  uint64_t& next = next_seq_[type];
  ++next;
  return Tid(type, next);
}

Status AddressTable::Register(const Tid& tid, uint32_t structure,
                              uint64_t rid) {
  std::unique_lock lock(mu_);
  auto& list = entries_[tid.Pack()];
  for (const auto& e : list) {
    if (e.structure_id == structure) {
      return Status::AlreadyExists("structure already materializes atom " +
                                   tid.ToString());
    }
  }
  list.push_back(AddressEntry{structure, rid});
  // Keep the surrogate generator ahead of every registered surrogate —
  // crash recovery re-registers atoms whose NewTid call was lost with the
  // in-memory counters, and a reissued tid would corrupt the address space.
  uint64_t& next = next_seq_[tid.type];
  if (tid.seq > next) next = tid.seq;
  return Status::Ok();
}

Status AddressTable::Unregister(const Tid& tid, uint32_t structure) {
  std::unique_lock lock(mu_);
  auto it = entries_.find(tid.Pack());
  if (it == entries_.end()) return Status::NotFound("atom " + tid.ToString());
  auto& list = it->second;
  for (auto e = list.begin(); e != list.end(); ++e) {
    if (e->structure_id == structure) {
      list.erase(e);
      return Status::Ok();
    }
  }
  return Status::NotFound("no entry for structure " + std::to_string(structure));
}

Status AddressTable::UpdateEntry(const Tid& tid, uint32_t structure,
                                 uint64_t rid) {
  std::unique_lock lock(mu_);
  auto it = entries_.find(tid.Pack());
  if (it == entries_.end()) return Status::NotFound("atom " + tid.ToString());
  for (auto& e : it->second) {
    if (e.structure_id == structure) {
      e.rid = rid;
      return Status::Ok();
    }
  }
  return Status::NotFound("no entry for structure " + std::to_string(structure));
}

Status AddressTable::Remove(const Tid& tid) {
  std::unique_lock lock(mu_);
  if (entries_.erase(tid.Pack()) == 0) {
    return Status::NotFound("atom " + tid.ToString());
  }
  return Status::Ok();
}

bool AddressTable::Exists(const Tid& tid) const {
  std::shared_lock lock(mu_);
  return entries_.count(tid.Pack()) != 0;
}

Result<uint64_t> AddressTable::Lookup(const Tid& tid,
                                      uint32_t structure) const {
  std::shared_lock lock(mu_);
  auto it = entries_.find(tid.Pack());
  if (it == entries_.end()) return Status::NotFound("atom " + tid.ToString());
  for (const auto& e : it->second) {
    if (e.structure_id == structure) return e.rid;
  }
  return Status::NotFound("no entry for structure " + std::to_string(structure));
}

std::vector<AddressEntry> AddressTable::EntriesFor(const Tid& tid) const {
  std::shared_lock lock(mu_);
  auto it = entries_.find(tid.Pack());
  if (it == entries_.end()) return {};
  return it->second;
}

std::vector<Tid> AddressTable::AllOfType(AtomTypeId type) const {
  std::shared_lock lock(mu_);
  std::vector<Tid> out;
  const uint64_t lo = Tid(type, 0).Pack();
  const uint64_t hi = Tid(type + 1, 0).Pack();
  for (auto it = entries_.lower_bound(lo); it != entries_.end() && it->first < hi;
       ++it) {
    out.push_back(Tid::Unpack(it->first));
  }
  return out;
}

uint64_t AddressTable::CountOfType(AtomTypeId type) const {
  std::shared_lock lock(mu_);
  const uint64_t lo = Tid(type, 0).Pack();
  const uint64_t hi = Tid(type + 1, 0).Pack();
  uint64_t n = 0;
  for (auto it = entries_.lower_bound(lo); it != entries_.end() && it->first < hi;
       ++it) {
    ++n;
  }
  return n;
}

void AddressTable::RemoveType(AtomTypeId type) {
  std::unique_lock lock(mu_);
  const uint64_t lo = Tid(type, 0).Pack();
  const uint64_t hi = Tid(type + 1, 0).Pack();
  entries_.erase(entries_.lower_bound(lo), entries_.lower_bound(hi));
  next_seq_.erase(type);
}

std::string AddressTable::Encode() const {
  std::shared_lock lock(mu_);
  std::string out;
  util::PutVarint64(&out, next_seq_.size());
  for (const auto& [type, next] : next_seq_) {
    util::PutVarint64(&out, type);
    util::PutVarint64(&out, next);
  }
  util::PutVarint64(&out, entries_.size());
  for (const auto& [packed, list] : entries_) {
    util::PutFixed64(&out, packed);
    util::PutVarint64(&out, list.size());
    for (const auto& e : list) {
      util::PutVarint64(&out, e.structure_id);
      util::PutFixed64(&out, e.rid);
    }
  }
  return out;
}

Status AddressTable::DecodeFrom(Slice in) {
  std::unique_lock lock(mu_);
  entries_.clear();
  next_seq_.clear();
  uint64_t n_types;
  if (!util::GetVarint64(&in, &n_types)) {
    return Status::Corruption("address table header");
  }
  for (uint64_t i = 0; i < n_types; ++i) {
    uint64_t type, next;
    if (!util::GetVarint64(&in, &type) || !util::GetVarint64(&in, &next)) {
      return Status::Corruption("address table counters");
    }
    next_seq_[static_cast<AtomTypeId>(type)] = next;
  }
  uint64_t n_atoms;
  if (!util::GetVarint64(&in, &n_atoms)) {
    return Status::Corruption("address table size");
  }
  for (uint64_t i = 0; i < n_atoms; ++i) {
    uint64_t packed, n_entries;
    if (!util::GetFixed64(&in, &packed) ||
        !util::GetVarint64(&in, &n_entries)) {
      return Status::Corruption("address table entry");
    }
    auto& list = entries_[packed];
    for (uint64_t j = 0; j < n_entries; ++j) {
      uint64_t sid, rid;
      if (!util::GetVarint64(&in, &sid) || !util::GetFixed64(&in, &rid)) {
        return Status::Corruption("address table entry body");
      }
      list.push_back(
          AddressEntry{static_cast<uint32_t>(sid), rid});
    }
  }
  return Status::Ok();
}

}  // namespace prima::access
