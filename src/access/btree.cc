#include "access/btree.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"

namespace prima::access {

using storage::LatchMode;
using storage::PageGuard;
using storage::PageHeader;
using storage::PageType;
using util::Result;
using util::Slice;
using util::Status;

namespace {
// Leaf header u64 packs [prev:32][next:32].
uint64_t PackChain(uint32_t prev, uint32_t next) {
  return (static_cast<uint64_t>(prev) << 32) | next;
}
}  // namespace

BTree::BTree(storage::StorageSystem* storage, storage::SegmentId segment,
             uint32_t root_page, std::function<void(uint32_t)> on_root_change)
    : storage_(storage),
      segment_(segment),
      root_page_(root_page),
      on_root_change_(std::move(on_root_change)) {
  auto ps = storage_->SegmentPageSize(segment_);
  page_size_ = ps.ok() ? storage::PageSizeBytes(*ps) : 0;
}

Result<uint32_t> BTree::Create(storage::StorageSystem* storage,
                               storage::SegmentId segment) {
  PRIMA_ASSIGN_OR_RETURN(PageGuard root,
                         storage->NewPage(segment, PageType::kBTreeLeaf));
  char* page = root.mutable_data();
  PageHeader::set_u16a(page, 0);
  PageHeader::set_u64(page, PackChain(0, 0));
  return root.page_no();
}

uint32_t BTree::MaxEntryBytes() const {
  // A node must always be able to hold at least two entries after a split.
  return (storage::PagePayload(page_size_) - 64) / 2;
}

// ---------------------------------------------------------------------------
// Node (de)serialization
// ---------------------------------------------------------------------------

Result<BTree::LeafNode> BTree::LoadLeaf(uint32_t page_no) {
  PRIMA_ASSIGN_OR_RETURN(PageGuard guard,
                         storage_->FixPage(segment_, page_no, LatchMode::kShared));
  const char* page = guard.data();
  if (PageHeader::type(page) != PageType::kBTreeLeaf) {
    return Status::Corruption("page " + std::to_string(page_no) +
                              " is not a B*-tree leaf");
  }
  LeafNode node;
  const uint64_t chain = PageHeader::u64(page);
  node.prev = static_cast<uint32_t>(chain >> 32);
  node.next = static_cast<uint32_t>(chain & 0xFFFFFFFFu);
  const uint16_t count = PageHeader::u16a(page);
  Slice in(page + PageHeader::kSize, storage::PagePayload(page_size_));
  node.entries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    Slice key, value;
    if (!util::GetLengthPrefixed(&in, &key) ||
        !util::GetLengthPrefixed(&in, &value)) {
      return Status::Corruption("truncated leaf entry");
    }
    node.entries.emplace_back(key.ToString(), value.ToString());
  }
  return node;
}

Result<BTree::InnerNode> BTree::LoadInner(uint32_t page_no) {
  PRIMA_ASSIGN_OR_RETURN(PageGuard guard,
                         storage_->FixPage(segment_, page_no, LatchMode::kShared));
  const char* page = guard.data();
  if (PageHeader::type(page) != PageType::kBTreeInner) {
    return Status::Corruption("page " + std::to_string(page_no) +
                              " is not a B*-tree inner node");
  }
  InnerNode node;
  node.leftmost = static_cast<uint32_t>(PageHeader::u64(page));
  const uint16_t count = PageHeader::u16a(page);
  Slice in(page + PageHeader::kSize, storage::PagePayload(page_size_));
  node.entries.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    Slice key;
    uint32_t child;
    if (!util::GetLengthPrefixed(&in, &key) || !util::GetFixed32(&in, &child)) {
      return Status::Corruption("truncated inner entry");
    }
    node.entries.emplace_back(key.ToString(), child);
  }
  return node;
}

Status BTree::StoreLeaf(uint32_t page_no, const LeafNode& node) {
  PRIMA_ASSIGN_OR_RETURN(
      PageGuard guard, storage_->FixPage(segment_, page_no, LatchMode::kExclusive));
  char* page = guard.mutable_data();
  PageHeader::set_type(page, PageType::kBTreeLeaf);
  PageHeader::set_u16a(page, static_cast<uint16_t>(node.entries.size()));
  PageHeader::set_u64(page, PackChain(node.prev, node.next));
  std::string body;
  for (const auto& [k, v] : node.entries) {
    util::PutLengthPrefixed(&body, k);
    util::PutLengthPrefixed(&body, v);
  }
  if (body.size() > storage::PagePayload(page_size_)) {
    return Status::NoSpace("leaf overflow");  // callers split before storing
  }
  std::memcpy(page + PageHeader::kSize, body.data(), body.size());
  return Status::Ok();
}

Status BTree::StoreInner(uint32_t page_no, const InnerNode& node) {
  PRIMA_ASSIGN_OR_RETURN(
      PageGuard guard, storage_->FixPage(segment_, page_no, LatchMode::kExclusive));
  char* page = guard.mutable_data();
  PageHeader::set_type(page, PageType::kBTreeInner);
  PageHeader::set_u16a(page, static_cast<uint16_t>(node.entries.size()));
  PageHeader::set_u64(page, node.leftmost);
  std::string body;
  for (const auto& [k, child] : node.entries) {
    util::PutLengthPrefixed(&body, k);
    util::PutFixed32(&body, child);
  }
  if (body.size() > storage::PagePayload(page_size_)) {
    return Status::NoSpace("inner overflow");
  }
  std::memcpy(page + PageHeader::kSize, body.data(), body.size());
  return Status::Ok();
}

Result<bool> BTree::IsLeaf(uint32_t page_no) {
  PRIMA_ASSIGN_OR_RETURN(PageGuard guard,
                         storage_->FixPage(segment_, page_no, LatchMode::kShared));
  const PageType t = PageHeader::type(guard.data());
  if (t == PageType::kBTreeLeaf) return true;
  if (t == PageType::kBTreeInner) return false;
  return Status::Corruption("page " + std::to_string(page_no) +
                            " is not a B*-tree node");
}

size_t BTree::LeafEncodedSize(const LeafNode& node) {
  size_t s = 0;
  for (const auto& [k, v] : node.entries) {
    s += 10 + k.size() + v.size();  // varint bounds
  }
  return s;
}

size_t BTree::InnerEncodedSize(const InnerNode& node) {
  size_t s = 0;
  for (const auto& [k, child] : node.entries) {
    s += 9 + k.size();
  }
  return s;
}

uint32_t BTree::ChildFor(const InnerNode& node, Slice key) {
  // entries[i] covers [key_i, key_{i+1}); leftmost covers < key_0.
  uint32_t child = node.leftmost;
  for (const auto& [k, c] : node.entries) {
    if (key.Compare(Slice(k)) >= 0) {
      child = c;
    } else {
      break;
    }
  }
  return child;
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Result<std::optional<BTree::Split>> BTree::InsertRec(uint32_t page_no,
                                                     Slice key, Slice value,
                                                     bool replace) {
  PRIMA_ASSIGN_OR_RETURN(const bool leaf, IsLeaf(page_no));
  if (leaf) {
    PRIMA_ASSIGN_OR_RETURN(LeafNode node, LoadLeaf(page_no));
    auto it = std::lower_bound(
        node.entries.begin(), node.entries.end(), key,
        [](const auto& e, const Slice& k) { return Slice(e.first).Compare(k) < 0; });
    if (it != node.entries.end() && Slice(it->first) == key) {
      if (!replace) return Status::AlreadyExists("duplicate B*-tree key");
      it->second = value.ToString();
    } else {
      node.entries.insert(it, {key.ToString(), value.ToString()});
    }
    if (LeafEncodedSize(node) <= storage::PagePayload(page_size_)) {
      PRIMA_RETURN_IF_ERROR(StoreLeaf(page_no, node));
      return std::optional<Split>();
    }
    // Split: move the upper half to a fresh right sibling.
    const size_t mid = node.entries.size() / 2;
    LeafNode right;
    right.entries.assign(node.entries.begin() + mid, node.entries.end());
    node.entries.resize(mid);
    PRIMA_ASSIGN_OR_RETURN(PageGuard right_guard,
                           storage_->NewPage(segment_, PageType::kBTreeLeaf));
    const uint32_t right_page = right_guard.page_no();
    right_guard.Release();
    right.prev = page_no;
    right.next = node.next;
    node.next = right_page;
    if (right.next != 0) {
      PRIMA_ASSIGN_OR_RETURN(LeafNode after, LoadLeaf(right.next));
      after.prev = right_page;
      PRIMA_RETURN_IF_ERROR(StoreLeaf(right.next, after));
    }
    PRIMA_RETURN_IF_ERROR(StoreLeaf(right_page, right));
    PRIMA_RETURN_IF_ERROR(StoreLeaf(page_no, node));
    return std::optional<Split>(Split{right.entries.front().first, right_page});
  }

  PRIMA_ASSIGN_OR_RETURN(InnerNode node, LoadInner(page_no));
  const uint32_t child = ChildFor(node, key);
  PRIMA_ASSIGN_OR_RETURN(auto split, InsertRec(child, key, value, replace));
  if (!split) return std::optional<Split>();

  auto it = std::lower_bound(node.entries.begin(), node.entries.end(),
                             Slice(split->separator),
                             [](const auto& e, const Slice& k) {
                               return Slice(e.first).Compare(k) < 0;
                             });
  node.entries.insert(it, {split->separator, split->right_page});
  if (InnerEncodedSize(node) <= storage::PagePayload(page_size_)) {
    PRIMA_RETURN_IF_ERROR(StoreInner(page_no, node));
    return std::optional<Split>();
  }
  // Split the inner node; the median separator moves up.
  const size_t mid = node.entries.size() / 2;
  InnerNode right;
  std::string median = node.entries[mid].first;
  right.leftmost = node.entries[mid].second;
  right.entries.assign(node.entries.begin() + mid + 1, node.entries.end());
  node.entries.resize(mid);
  PRIMA_ASSIGN_OR_RETURN(PageGuard right_guard,
                         storage_->NewPage(segment_, PageType::kBTreeInner));
  const uint32_t right_page = right_guard.page_no();
  right_guard.Release();
  PRIMA_RETURN_IF_ERROR(StoreInner(right_page, right));
  PRIMA_RETURN_IF_ERROR(StoreInner(page_no, node));
  return std::optional<Split>(Split{std::move(median), right_page});
}

Status BTree::InsertImpl(Slice key, Slice value, bool replace) {
  if (key.size() + value.size() > MaxEntryBytes()) {
    return Status::NotSupported("entry exceeds B*-tree node capacity");
  }
  std::lock_guard<std::mutex> lock(mu_);
  PRIMA_ASSIGN_OR_RETURN(auto split, InsertRec(root_page_, key, value, replace));
  if (!split) return Status::Ok();
  // Root split: the tree grows a level; the root page moves.
  PRIMA_ASSIGN_OR_RETURN(PageGuard root_guard,
                         storage_->NewPage(segment_, PageType::kBTreeInner));
  const uint32_t new_root = root_guard.page_no();
  root_guard.Release();
  InnerNode root;
  root.leftmost = root_page_;
  root.entries.push_back({split->separator, split->right_page});
  PRIMA_RETURN_IF_ERROR(StoreInner(new_root, root));
  root_page_ = new_root;
  if (on_root_change_) on_root_change_(new_root);
  return Status::Ok();
}

Status BTree::Insert(Slice key, Slice value) {
  return InsertImpl(key, value, /*replace=*/false);
}

Status BTree::Put(Slice key, Slice value) {
  return InsertImpl(key, value, /*replace=*/true);
}

// ---------------------------------------------------------------------------
// Delete / Get
// ---------------------------------------------------------------------------

Status BTree::DeleteRec(uint32_t page_no, Slice key, bool* now_empty) {
  *now_empty = false;
  PRIMA_ASSIGN_OR_RETURN(const bool leaf, IsLeaf(page_no));
  if (leaf) {
    PRIMA_ASSIGN_OR_RETURN(LeafNode node, LoadLeaf(page_no));
    auto it = std::lower_bound(
        node.entries.begin(), node.entries.end(), key,
        [](const auto& e, const Slice& k) { return Slice(e.first).Compare(k) < 0; });
    if (it == node.entries.end() || Slice(it->first) != key) {
      return Status::NotFound("B*-tree key");
    }
    node.entries.erase(it);
    if (node.entries.empty() && page_no != root_page_) {
      // Unlink from the leaf chain; the parent will drop the page.
      if (node.prev != 0) {
        PRIMA_ASSIGN_OR_RETURN(LeafNode prev, LoadLeaf(node.prev));
        prev.next = node.next;
        PRIMA_RETURN_IF_ERROR(StoreLeaf(node.prev, prev));
      }
      if (node.next != 0) {
        PRIMA_ASSIGN_OR_RETURN(LeafNode next, LoadLeaf(node.next));
        next.prev = node.prev;
        PRIMA_RETURN_IF_ERROR(StoreLeaf(node.next, next));
      }
      *now_empty = true;
      return Status::Ok();
    }
    return StoreLeaf(page_no, node);
  }

  PRIMA_ASSIGN_OR_RETURN(InnerNode node, LoadInner(page_no));
  const uint32_t child = ChildFor(node, key);
  bool child_empty = false;
  PRIMA_RETURN_IF_ERROR(DeleteRec(child, key, &child_empty));
  if (!child_empty) return Status::Ok();

  PRIMA_RETURN_IF_ERROR(storage_->FreePage(segment_, child));
  if (child == node.leftmost) {
    if (node.entries.empty()) {
      *now_empty = true;  // parent drops this inner node too
      return Status::Ok();
    }
    node.leftmost = node.entries.front().second;
    node.entries.erase(node.entries.begin());
  } else {
    for (auto it = node.entries.begin(); it != node.entries.end(); ++it) {
      if (it->second == child) {
        node.entries.erase(it);
        break;
      }
    }
  }
  return StoreInner(page_no, node);
}

Status BTree::Delete(Slice key) {
  std::lock_guard<std::mutex> lock(mu_);
  bool root_empty = false;
  PRIMA_RETURN_IF_ERROR(DeleteRec(root_page_, key, &root_empty));
  // Height collapse: an inner root with no separators has a single child.
  PRIMA_ASSIGN_OR_RETURN(const bool leaf, IsLeaf(root_page_));
  if (!leaf) {
    PRIMA_ASSIGN_OR_RETURN(InnerNode root, LoadInner(root_page_));
    if (root.entries.empty()) {
      const uint32_t old_root = root_page_;
      root_page_ = root.leftmost;
      PRIMA_RETURN_IF_ERROR(storage_->FreePage(segment_, old_root));
      if (on_root_change_) on_root_change_(root_page_);
    }
  }
  return Status::Ok();
}

Result<std::optional<std::string>> BTree::Get(Slice key) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t page = root_page_;
  for (;;) {
    PRIMA_ASSIGN_OR_RETURN(const bool leaf, IsLeaf(page));
    if (leaf) break;
    PRIMA_ASSIGN_OR_RETURN(InnerNode node, LoadInner(page));
    page = ChildFor(node, key);
  }
  PRIMA_ASSIGN_OR_RETURN(LeafNode node, LoadLeaf(page));
  auto it = std::lower_bound(
      node.entries.begin(), node.entries.end(), key,
      [](const auto& e, const Slice& k) { return Slice(e.first).Compare(k) < 0; });
  if (it != node.entries.end() && Slice(it->first) == key) {
    return std::optional<std::string>(it->second);
  }
  return std::optional<std::string>();
}

Result<uint64_t> BTree::CountEntries() {
  auto it = NewIterator();
  PRIMA_RETURN_IF_ERROR(it.SeekToFirst());
  uint64_t n = 0;
  while (it.Valid()) {
    ++n;
    PRIMA_RETURN_IF_ERROR(it.Next());
  }
  return n;
}

// ---------------------------------------------------------------------------
// Iterator
// ---------------------------------------------------------------------------

Status BTree::Iterator::LoadLeaf(uint32_t page) {
  PRIMA_ASSIGN_OR_RETURN(BTree::LeafNode node, tree_->LoadLeaf(page));
  leaf_page_ = page;
  prev_leaf_ = node.prev;
  next_leaf_ = node.next;
  entries_ = std::move(node.entries);
  return Status::Ok();
}

Status BTree::Iterator::SeekToFirst() {
  valid_ = false;
  uint32_t page = tree_->root_page_;
  for (;;) {
    PRIMA_ASSIGN_OR_RETURN(const bool leaf, tree_->IsLeaf(page));
    if (leaf) break;
    PRIMA_ASSIGN_OR_RETURN(InnerNode node, tree_->LoadInner(page));
    page = node.leftmost;
  }
  PRIMA_RETURN_IF_ERROR(LoadLeaf(page));
  // Skip empty leaves (the root can be empty).
  while (entries_.empty() && next_leaf_ != 0) {
    PRIMA_RETURN_IF_ERROR(LoadLeaf(next_leaf_));
  }
  index_ = 0;
  valid_ = !entries_.empty();
  return Status::Ok();
}

Status BTree::Iterator::SeekToLast() {
  valid_ = false;
  uint32_t page = tree_->root_page_;
  for (;;) {
    PRIMA_ASSIGN_OR_RETURN(const bool leaf, tree_->IsLeaf(page));
    if (leaf) break;
    PRIMA_ASSIGN_OR_RETURN(InnerNode node, tree_->LoadInner(page));
    page = node.entries.empty() ? node.leftmost : node.entries.back().second;
  }
  PRIMA_RETURN_IF_ERROR(LoadLeaf(page));
  while (entries_.empty() && prev_leaf_ != 0) {
    PRIMA_RETURN_IF_ERROR(LoadLeaf(prev_leaf_));
  }
  if (entries_.empty()) return Status::Ok();
  index_ = entries_.size() - 1;
  valid_ = true;
  return Status::Ok();
}

Status BTree::Iterator::Seek(Slice target) {
  valid_ = false;
  uint32_t page = tree_->root_page_;
  for (;;) {
    PRIMA_ASSIGN_OR_RETURN(const bool leaf, tree_->IsLeaf(page));
    if (leaf) break;
    PRIMA_ASSIGN_OR_RETURN(InnerNode node, tree_->LoadInner(page));
    page = ChildFor(node, target);
  }
  PRIMA_RETURN_IF_ERROR(LoadLeaf(page));
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), target,
      [](const auto& e, const Slice& k) { return Slice(e.first).Compare(k) < 0; });
  index_ = static_cast<size_t>(it - entries_.begin());
  while (index_ >= entries_.size()) {
    if (next_leaf_ == 0) return Status::Ok();
    PRIMA_RETURN_IF_ERROR(LoadLeaf(next_leaf_));
    index_ = 0;
  }
  valid_ = true;
  return Status::Ok();
}

Status BTree::Iterator::SeekForPrev(Slice target) {
  PRIMA_RETURN_IF_ERROR(Seek(target));
  if (valid_ && Slice(key()) == target) return Status::Ok();
  if (!valid_) return SeekToLast();
  return Prev();
}

Status BTree::Iterator::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid iterator");
  ++index_;
  while (index_ >= entries_.size()) {
    if (next_leaf_ == 0) {
      valid_ = false;
      return Status::Ok();
    }
    PRIMA_RETURN_IF_ERROR(LoadLeaf(next_leaf_));
    index_ = 0;
  }
  return Status::Ok();
}

Status BTree::Iterator::Prev() {
  if (!valid_) return Status::InvalidArgument("Prev on invalid iterator");
  while (index_ == 0) {
    if (prev_leaf_ == 0) {
      valid_ = false;
      return Status::Ok();
    }
    PRIMA_RETURN_IF_ERROR(LoadLeaf(prev_leaf_));
    if (entries_.empty()) continue;
    index_ = entries_.size();
  }
  --index_;
  return Status::Ok();
}

}  // namespace prima::access
