#include "access/access_system.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "recovery/wal_writer.h"
#include "util/coding.h"

namespace prima::access {

using storage::PageSize;
using storage::SegmentId;
using util::Result;
using util::Slice;
using util::Status;

namespace {
/// Reserved segments: 1 = catalog blob, 2 = address table blob.
constexpr SegmentId kCatalogSegment = 1;
constexpr SegmentId kAddressSegment = 2;
/// Both blobs live in the segment's first allocated page sequence, whose
/// header is always page 1 (first allocation in a fresh segment).
constexpr uint32_t kBlobHeaderPage = 1;

/// Flip bytes for descending key components (memcmp order reversal).
void FlipBytes(std::string* s, size_t from) {
  for (size_t i = from; i < s->size(); ++i) {
    (*s)[i] = static_cast<char>(~static_cast<unsigned char>((*s)[i]));
  }
}

void AppendTidKey(std::string* out, const Tid& tid) {
  const uint64_t p = tid.Pack();
  for (int i = 7; i >= 0; --i) {
    out->push_back(static_cast<char>((p >> (8 * i)) & 0xFF));
  }
}

std::string PackedTidValue(const Tid& tid) {
  std::string v;
  util::PutFixed64(&v, tid.Pack());
  return v;
}
}  // namespace

AccessSystem::AccessSystem(storage::StorageSystem* storage,
                           AccessOptions options)
    : storage_(storage), options_(options) {}

// ---------------------------------------------------------------------------
// Write-ahead logging of atom operations
// ---------------------------------------------------------------------------

namespace {
/// Top-level transaction id the current thread's writes belong to.
/// Thread-local so concurrent transactions never mislabel each other's
/// records; 0 means system / auto-commit work (never undone at restart).
thread_local uint64_t tls_wal_txn = 0;

recovery::AtomOp ToAtomOp(AccessSystem::UndoRecord::Kind kind) {
  switch (kind) {
    case AccessSystem::UndoRecord::Kind::kInsert:
      return recovery::AtomOp::kInsert;
    case AccessSystem::UndoRecord::Kind::kModify:
      return recovery::AtomOp::kModify;
    case AccessSystem::UndoRecord::Kind::kDelete:
      return recovery::AtomOp::kDelete;
  }
  return recovery::AtomOp::kModify;
}
}  // namespace

void AccessSystem::SetWalTxn(uint64_t txn_id) { tls_wal_txn = txn_id; }

uint64_t AccessSystem::LogAtomOp(UndoRecord::Kind kind, const Tid& tid,
                                 const Atom* before, bool clr) {
  if (wal_ == nullptr) return 0;
  recovery::LogRecord rec;
  rec.type = recovery::LogRecordType::kAtomUndo;
  rec.txn_id = tls_wal_txn;
  rec.op = ToAtomOp(kind);
  rec.clr = clr;
  rec.tid = tid.Pack();
  auto rid_or = addresses_.Lookup(tid, kBaseStructure);
  rec.rid = rid_or.ok() ? *rid_or : 0;
  if (before != nullptr) before->EncodeInto(&rec.before);
  return wal_->Append(rec);
}

void AccessSystem::NoteStructureRoot(uint32_t structure_id,
                                     uint32_t root_page) {
  (void)catalog_.SetStructureRoot(structure_id, root_page);
  if (wal_ != nullptr) {
    // Buffered with the split's page redos; durable at the latest with the
    // owning transaction's commit force. (A write-back force that lands
    // exactly between the split pages and this record, followed by a
    // crash before any commit, could still lose the re-point — closing
    // that sliver needs the root inside a logged tree meta page; see
    // ROADMAP "log catalog/DDL operations".)
    wal_->Append(recovery::LogRecord::StructRoot(structure_id, root_page));
  }
}

Status AccessSystem::RecoverStructureRoot(uint32_t structure_id,
                                          uint32_t root_page) {
  const StructureDef* def = catalog_.GetStructure(structure_id);
  if (def == nullptr) return Status::Ok();  // structure post-dates the ckpt
  if (def->root_page == root_page) return Status::Ok();
  PRIMA_RETURN_IF_ERROR(catalog_.SetStructureRoot(structure_id, root_page));
  auto bt = btrees_.find(structure_id);
  if (bt != btrees_.end()) {
    bt->second->SetRoot(root_page);
    return Status::Ok();
  }
  auto g = grids_.find(structure_id);
  if (g != grids_.end()) {
    // The grid caches its scales/directory from the meta page at Open;
    // rebuild it on the recovered meta.
    auto grid = std::make_unique<GridFile>(
        storage_, def->segment, def->attrs.size(), root_page,
        [this, structure_id](uint32_t meta) {
          NoteStructureRoot(structure_id, meta);
        });
    PRIMA_RETURN_IF_ERROR(grid->Open());
    grids_[structure_id] = std::move(grid);
  }
  return Status::Ok();
}

AccessSystem::~AccessSystem() {
  if (flush_on_close_) (void)Flush();
}

// ---------------------------------------------------------------------------
// Open / Flush / persistence
// ---------------------------------------------------------------------------

Status AccessSystem::Open() {
  if (!storage_->SegmentExists(kCatalogSegment)) {
    PRIMA_RETURN_IF_ERROR(
        storage_->CreateSegment(kCatalogSegment, PageSize::k8K));
    PRIMA_RETURN_IF_ERROR(
        storage_->CreateSegment(kAddressSegment, PageSize::k8K));
    return Status::Ok();
  }
  PRIMA_ASSIGN_OR_RETURN(const uint32_t cat_pages,
                         storage_->PageCount(kCatalogSegment));
  if (cat_pages > 1) {
    PRIMA_ASSIGN_OR_RETURN(
        std::string blob,
        storage_->ReadSequence(kCatalogSegment, kBlobHeaderPage));
    PRIMA_RETURN_IF_ERROR(catalog_.DecodeFrom(blob));
  }
  PRIMA_ASSIGN_OR_RETURN(const uint32_t addr_pages,
                         storage_->PageCount(kAddressSegment));
  if (addr_pages > 1) {
    PRIMA_ASSIGN_OR_RETURN(
        std::string blob,
        storage_->ReadSequence(kAddressSegment, kBlobHeaderPage));
    PRIMA_RETURN_IF_ERROR(addresses_.DecodeFrom(blob));
  }
  return AttachStructures();
}

Status AccessSystem::AttachStructures() {
  for (const AtomTypeDef* def : catalog_.ListAtomTypes()) {
    auto file = std::make_unique<RecordFile>(storage_, def->base_segment);
    PRIMA_RETURN_IF_ERROR(file->Open());
    base_files_[def->id] = std::move(file);
  }
  for (const StructureDef* def : catalog_.ListStructures()) {
    const uint32_t id = def->id;
    switch (def->kind) {
      case StructureKind::kBTreeAccessPath:
      case StructureKind::kSortOrder:
        btrees_[id] = std::make_unique<BTree>(
            storage_, def->segment, def->root_page,
            [this, id](uint32_t root) { NoteStructureRoot(id, root); });
        break;
      case StructureKind::kGridAccessPath: {
        auto grid = std::make_unique<GridFile>(
            storage_, def->segment, def->attrs.size(), def->root_page,
            [this, id](uint32_t meta) { NoteStructureRoot(id, meta); });
        PRIMA_RETURN_IF_ERROR(grid->Open());
        grids_[id] = std::move(grid);
        break;
      }
      case StructureKind::kPartition: {
        auto file = std::make_unique<RecordFile>(storage_, def->segment);
        PRIMA_RETURN_IF_ERROR(file->Open());
        partition_files_[id] = std::move(file);
        break;
      }
      case StructureKind::kAtomCluster:
        break;  // clusters need no in-memory object
    }
  }
  return Status::Ok();
}

Status AccessSystem::PersistMetadata() {
  const std::string cat = catalog_.Encode();
  PRIMA_ASSIGN_OR_RETURN(const uint32_t cat_pages,
                         storage_->PageCount(kCatalogSegment));
  if (cat_pages <= 1) {
    PRIMA_ASSIGN_OR_RETURN(const uint32_t header,
                           storage_->CreateSequence(kCatalogSegment, cat));
    if (header != kBlobHeaderPage) {
      return Status::Corruption("catalog blob not at expected page");
    }
  } else {
    PRIMA_RETURN_IF_ERROR(
        storage_->RewriteSequence(kCatalogSegment, kBlobHeaderPage, cat));
  }
  const std::string addr = addresses_.Encode();
  PRIMA_ASSIGN_OR_RETURN(const uint32_t addr_pages,
                         storage_->PageCount(kAddressSegment));
  if (addr_pages <= 1) {
    PRIMA_ASSIGN_OR_RETURN(const uint32_t header,
                           storage_->CreateSequence(kAddressSegment, addr));
    if (header != kBlobHeaderPage) {
      return Status::Corruption("address blob not at expected page");
    }
  } else {
    PRIMA_RETURN_IF_ERROR(
        storage_->RewriteSequence(kAddressSegment, kBlobHeaderPage, addr));
  }
  return Status::Ok();
}

Status AccessSystem::Flush() {
  PRIMA_RETURN_IF_ERROR(DrainAll());
  for (auto& [id, grid] : grids_) {
    PRIMA_RETURN_IF_ERROR(grid->Save());
  }
  if (storage_->SegmentExists(kCatalogSegment)) {
    PRIMA_RETURN_IF_ERROR(PersistMetadata());
  }
  return storage_->Flush();
}

Result<SegmentId> AccessSystem::NewSegment(PageSize size) {
  const SegmentId id = std::max<SegmentId>(storage_->NextFreeSegmentId(),
                                           kAddressSegment + 1);
  PRIMA_RETURN_IF_ERROR(storage_->CreateSegment(id, size));
  return id;
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

Result<AtomTypeId> AccessSystem::CreateAtomType(
    const std::string& name, std::vector<AttributeDef> attrs,
    const std::vector<std::string>& keys) {
  AtomTypeDef def;
  def.name = name;
  def.attrs = std::move(attrs);
  for (const std::string& key : keys) {
    const AttributeDef* a = nullptr;
    for (const auto& cand : def.attrs) {
      if (cand.name == key) {
        a = &cand;
        break;
      }
    }
    if (a == nullptr) {
      return Status::InvalidArgument("KEYS_ARE names unknown attribute " + key);
    }
    def.key_attrs.push_back(
        static_cast<uint16_t>(a - def.attrs.data()));
  }
  PRIMA_ASSIGN_OR_RETURN(def.base_segment,
                         NewSegment(options_.base_page_size));
  PRIMA_ASSIGN_OR_RETURN(const AtomTypeId id, catalog_.AddAtomType(def));
  auto file = std::make_unique<RecordFile>(storage_, def.base_segment);
  PRIMA_RETURN_IF_ERROR(file->Open());
  base_files_[id] = std::move(file);
  PRIMA_RETURN_IF_ERROR(catalog_.ResolveReferences());
  if (!keys.empty()) {
    // Implicit unique access path enforcing KEYS_ARE.
    PRIMA_ASSIGN_OR_RETURN(
        const uint32_t ignored,
        CreateBTreeAccessPath(name + "_key", name, keys, /*unique=*/true));
    (void)ignored;
  }
  return id;
}

Status AccessSystem::DropAtomType(const std::string& name) {
  const AtomTypeDef* def = catalog_.FindAtomType(name);
  if (def == nullptr) return Status::NotFound("atom type " + name);
  const AtomTypeId id = def->id;
  const SegmentId base_segment = def->base_segment;
  // Drop dependent structures first.
  for (const StructureDef* s : catalog_.StructuresFor(id)) {
    PRIMA_RETURN_IF_ERROR(DropStructure(s->name));
  }
  base_files_.erase(id);
  PRIMA_RETURN_IF_ERROR(storage_->DropSegment(base_segment));
  addresses_.RemoveType(id);
  return catalog_.DropAtomType(id);
}

// ---------------------------------------------------------------------------
// LDL structures
// ---------------------------------------------------------------------------

namespace {
Result<std::vector<uint16_t>> ResolveAttrs(const AtomTypeDef& type,
                                           const std::vector<std::string>& names,
                                           bool require_scalar) {
  std::vector<uint16_t> out;
  for (const auto& n : names) {
    const AttributeDef* a = type.FindAttr(n);
    if (a == nullptr) {
      return Status::InvalidArgument("unknown attribute " + type.name + "." + n);
    }
    if (require_scalar && !a->type.IsScalar()) {
      return Status::InvalidArgument("attribute " + n + " is not scalar");
    }
    out.push_back(a->id);
  }
  return out;
}
}  // namespace

Result<uint32_t> AccessSystem::CreateBTreeAccessPath(
    const std::string& name, const std::string& atom_type,
    const std::vector<std::string>& attrs, bool unique) {
  const AtomTypeDef* type = catalog_.FindAtomType(atom_type);
  if (type == nullptr) return Status::NotFound("atom type " + atom_type);
  StructureDef def;
  def.kind = StructureKind::kBTreeAccessPath;
  def.name = name;
  def.atom_type = type->id;
  PRIMA_ASSIGN_OR_RETURN(def.attrs, ResolveAttrs(*type, attrs, true));
  def.unique = unique;
  PRIMA_ASSIGN_OR_RETURN(def.segment, NewSegment(options_.index_page_size));
  PRIMA_ASSIGN_OR_RETURN(def.root_page, BTree::Create(storage_, def.segment));
  PRIMA_ASSIGN_OR_RETURN(const uint32_t id, catalog_.AddStructure(def));
  btrees_[id] = std::make_unique<BTree>(
      storage_, def.segment, def.root_page,
      [this, id](uint32_t root) { NoteStructureRoot(id, root); });
  const Status st = BackfillStructure(*catalog_.GetStructure(id));
  if (!st.ok()) {
    (void)DropStructure(name);
    return st;
  }
  return id;
}

Result<uint32_t> AccessSystem::CreateGridAccessPath(
    const std::string& name, const std::string& atom_type,
    const std::vector<std::string>& attrs) {
  const AtomTypeDef* type = catalog_.FindAtomType(atom_type);
  if (type == nullptr) return Status::NotFound("atom type " + atom_type);
  StructureDef def;
  def.kind = StructureKind::kGridAccessPath;
  def.name = name;
  def.atom_type = type->id;
  PRIMA_ASSIGN_OR_RETURN(def.attrs, ResolveAttrs(*type, attrs, true));
  PRIMA_ASSIGN_OR_RETURN(def.segment, NewSegment(options_.index_page_size));
  def.root_page = 0;  // grid meta created on first Save
  PRIMA_ASSIGN_OR_RETURN(const uint32_t id, catalog_.AddStructure(def));
  auto grid = std::make_unique<GridFile>(
      storage_, def.segment, def.attrs.size(), 0,
      [this, id](uint32_t meta) { NoteStructureRoot(id, meta); });
  PRIMA_RETURN_IF_ERROR(grid->Open());
  grids_[id] = std::move(grid);
  const Status st = BackfillStructure(*catalog_.GetStructure(id));
  if (!st.ok()) {
    (void)DropStructure(name);
    return st;
  }
  return id;
}

Result<uint32_t> AccessSystem::CreateSortOrder(
    const std::string& name, const std::string& atom_type,
    const std::vector<std::string>& attrs, const std::vector<bool>& asc) {
  const AtomTypeDef* type = catalog_.FindAtomType(atom_type);
  if (type == nullptr) return Status::NotFound("atom type " + atom_type);
  StructureDef def;
  def.kind = StructureKind::kSortOrder;
  def.name = name;
  def.atom_type = type->id;
  PRIMA_ASSIGN_OR_RETURN(def.attrs, ResolveAttrs(*type, attrs, true));
  def.asc = asc.empty() ? std::vector<bool>(def.attrs.size(), true) : asc;
  if (def.asc.size() != def.attrs.size()) {
    return Status::InvalidArgument("asc flags do not match attributes");
  }
  PRIMA_ASSIGN_OR_RETURN(def.segment, NewSegment(options_.index_page_size));
  PRIMA_ASSIGN_OR_RETURN(def.root_page, BTree::Create(storage_, def.segment));
  PRIMA_ASSIGN_OR_RETURN(const uint32_t id, catalog_.AddStructure(def));
  btrees_[id] = std::make_unique<BTree>(
      storage_, def.segment, def.root_page,
      [this, id](uint32_t root) { NoteStructureRoot(id, root); });
  const Status st = BackfillStructure(*catalog_.GetStructure(id));
  if (!st.ok()) {
    (void)DropStructure(name);
    return st;
  }
  return id;
}

Result<uint32_t> AccessSystem::CreatePartition(
    const std::string& name, const std::string& atom_type,
    const std::vector<std::string>& attrs) {
  const AtomTypeDef* type = catalog_.FindAtomType(atom_type);
  if (type == nullptr) return Status::NotFound("atom type " + atom_type);
  StructureDef def;
  def.kind = StructureKind::kPartition;
  def.name = name;
  def.atom_type = type->id;
  PRIMA_ASSIGN_OR_RETURN(def.attrs, ResolveAttrs(*type, attrs, false));
  PRIMA_ASSIGN_OR_RETURN(def.segment,
                         NewSegment(options_.partition_page_size));
  PRIMA_ASSIGN_OR_RETURN(const uint32_t id, catalog_.AddStructure(def));
  auto file = std::make_unique<RecordFile>(storage_, def.segment);
  PRIMA_RETURN_IF_ERROR(file->Open());
  partition_files_[id] = std::move(file);
  const Status st = BackfillStructure(*catalog_.GetStructure(id));
  if (!st.ok()) {
    (void)DropStructure(name);
    return st;
  }
  return id;
}

Result<uint32_t> AccessSystem::CreateAtomClusterType(
    const std::string& name, const std::string& char_type,
    const std::vector<std::string>& ref_attrs) {
  const AtomTypeDef* type = catalog_.FindAtomType(char_type);
  if (type == nullptr) return Status::NotFound("atom type " + char_type);
  StructureDef def;
  def.kind = StructureKind::kAtomCluster;
  def.name = name;
  def.atom_type = type->id;
  for (const auto& n : ref_attrs) {
    const AttributeDef* a = type->FindAttr(n);
    if (a == nullptr) {
      return Status::InvalidArgument("unknown attribute " + char_type + "." + n);
    }
    if (!a->type.IsAssociation()) {
      return Status::InvalidArgument("cluster attribute " + n +
                                     " is not a REFERENCE attribute");
    }
    def.attrs.push_back(a->id);
  }
  PRIMA_ASSIGN_OR_RETURN(def.segment, NewSegment(options_.cluster_page_size));
  PRIMA_ASSIGN_OR_RETURN(const uint32_t id, catalog_.AddStructure(def));
  const Status st = BackfillStructure(*catalog_.GetStructure(id));
  if (!st.ok()) {
    (void)DropStructure(name);
    return st;
  }
  return id;
}

Status AccessSystem::DropStructure(const std::string& name) {
  const StructureDef* def = catalog_.FindStructure(name);
  if (def == nullptr) return Status::NotFound("structure " + name);
  const uint32_t id = def->id;
  const SegmentId segment = def->segment;
  // Purge pending ops addressed to this structure.
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [id](const Pending& p) {
                                    return p.structure_id == id;
                                  }),
                   pending_.end());
  }
  // Remove per-atom address entries pointing into the structure.
  for (const Tid& tid : addresses_.AllOfType(def->atom_type)) {
    (void)addresses_.Unregister(tid, id);
  }
  btrees_.erase(id);
  grids_.erase(id);
  partition_files_.erase(id);
  PRIMA_RETURN_IF_ERROR(storage_->DropSegment(segment));
  return catalog_.DropStructure(id);
}

Status AccessSystem::BackfillStructure(const StructureDef& def) {
  for (const Tid& tid : addresses_.AllOfType(def.atom_type)) {
    if (def.kind == StructureKind::kAtomCluster) {
      PRIMA_RETURN_IF_ERROR(MaterializeCluster(def, tid));
      continue;
    }
    PRIMA_ASSIGN_OR_RETURN(Atom atom, ReadBaseAtom(tid));
    switch (def.kind) {
      case StructureKind::kBTreeAccessPath: {
        PRIMA_ASSIGN_OR_RETURN(
            std::string key,
            BuildKey(atom, def.attrs, {}, /*with_tid=*/!def.unique));
        PRIMA_RETURN_IF_ERROR(
            btrees_[def.id]->Insert(key, PackedTidValue(tid)));
        break;
      }
      case StructureKind::kGridAccessPath: {
        PRIMA_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                               EncodeGridKeys(def, atom));
        PRIMA_RETURN_IF_ERROR(grids_[def.id]->Insert(keys, tid));
        break;
      }
      case StructureKind::kSortOrder: {
        PRIMA_ASSIGN_OR_RETURN(std::string key, EncodeSortKey(def, atom));
        std::string image;
        atom.EncodeInto(&image);
        PRIMA_RETURN_IF_ERROR(btrees_[def.id]->Insert(key, image));
        break;
      }
      case StructureKind::kPartition: {
        Atom part = atom;
        std::set<uint16_t> keep(def.attrs.begin(), def.attrs.end());
        const AtomTypeDef* type = catalog_.GetAtomType(def.atom_type);
        keep.insert(type->identifier_attr);
        for (size_t i = 0; i < part.attrs.size(); ++i) {
          if (keep.count(static_cast<uint16_t>(i)) == 0) {
            part.attrs[i] = Value::Null();
          }
        }
        std::string image;
        part.EncodeInto(&image);
        PRIMA_ASSIGN_OR_RETURN(const RecordId rid,
                               partition_files_[def.id]->Insert(image));
        PRIMA_RETURN_IF_ERROR(addresses_.Register(tid, def.id, rid.Pack()));
        break;
      }
      case StructureKind::kAtomCluster:
        break;  // handled above
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Key building
// ---------------------------------------------------------------------------

Result<std::string> AccessSystem::BuildKey(const Atom& atom,
                                           const std::vector<uint16_t>& attrs,
                                           const std::vector<bool>& asc,
                                           bool with_tid) const {
  std::string key;
  for (size_t i = 0; i < attrs.size(); ++i) {
    const size_t start = key.size();
    if (attrs[i] >= atom.attrs.size()) {
      return Status::InvalidArgument("key attribute out of range");
    }
    PRIMA_RETURN_IF_ERROR(atom.attrs[attrs[i]].EncodeKeyInto(&key));
    if (!asc.empty() && !asc[i]) FlipBytes(&key, start);
  }
  if (with_tid) AppendTidKey(&key, atom.tid);
  return key;
}

Result<std::string> AccessSystem::EncodeSortKey(const StructureDef& def,
                                                const Atom& atom) const {
  return BuildKey(atom, def.attrs, def.asc, /*with_tid=*/true);
}

Result<std::vector<std::string>> AccessSystem::EncodeGridKeys(
    const StructureDef& def, const Atom& atom) const {
  std::vector<std::string> keys;
  keys.reserve(def.attrs.size());
  for (uint16_t a : def.attrs) {
    std::string k;
    PRIMA_RETURN_IF_ERROR(atom.attrs[a].EncodeKeyInto(&k));
    keys.push_back(std::move(k));
  }
  return keys;
}

// ---------------------------------------------------------------------------
// Base records
// ---------------------------------------------------------------------------

Result<Atom> AccessSystem::DecodeAtom(AtomTypeId type, Slice bytes) const {
  const AtomTypeDef* def = catalog_.GetAtomType(type);
  if (def == nullptr) {
    return Status::NotFound("atom type id " + std::to_string(type));
  }
  return Atom::Decode(&bytes, def->attrs.size());
}

Result<Atom> AccessSystem::ReadBaseAtom(const Tid& tid) {
  PRIMA_ASSIGN_OR_RETURN(const uint64_t rid,
                         addresses_.Lookup(tid, kBaseStructure));
  auto it = base_files_.find(tid.type);
  if (it == base_files_.end()) {
    return Status::NotFound("atom type id " + std::to_string(tid.type));
  }
  PRIMA_ASSIGN_OR_RETURN(std::string bytes,
                         it->second->Read(RecordId::Unpack(rid)));
  return DecodeAtom(tid.type, bytes);
}

Status AccessSystem::WriteBaseAtom(const Tid& tid, const Atom& atom,
                                   bool is_new) {
  std::string bytes;
  atom.EncodeInto(&bytes);
  RecordFile* file = base_files_.at(tid.type).get();
  if (is_new) {
    PRIMA_ASSIGN_OR_RETURN(const RecordId rid, file->Insert(bytes));
    return addresses_.Register(tid, kBaseStructure, rid.Pack());
  }
  PRIMA_ASSIGN_OR_RETURN(const uint64_t old_rid,
                         addresses_.Lookup(tid, kBaseStructure));
  PRIMA_ASSIGN_OR_RETURN(const RecordId new_rid,
                         file->Update(RecordId::Unpack(old_rid), bytes));
  if (new_rid.Pack() != old_rid) {
    PRIMA_RETURN_IF_ERROR(
        addresses_.UpdateEntry(tid, kBaseStructure, new_rid.Pack()));
  }
  return Status::Ok();
}

void AccessSystem::InstallVersion(const Tid& tid, const Atom* before) {
  // tls_wal_txn == 0 means a system/auto-commit write with no transaction to
  // stamp — those publish immediately and never need a chain. The Raw*
  // compensation ops bypass this function entirely, on purpose: rollback
  // restores exactly the before-images the chain already carries.
  if (tls_wal_txn != 0) versions_.Install(tls_wal_txn, tid, before);
}

// ---------------------------------------------------------------------------
// Referential integrity (back-reference maintenance)
// ---------------------------------------------------------------------------

Status AccessSystem::AddBackRef(const Tid& atom_tid, uint16_t attr,
                                const Tid& target) {
  const AtomTypeDef* def = catalog_.GetAtomType(atom_tid.type);
  if (def == nullptr || attr >= def->attrs.size()) {
    return Status::Corruption("back-reference attribute missing");
  }
  PRIMA_ASSIGN_OR_RETURN(Atom atom, ReadBaseAtom(atom_tid));
  const Atom old_atom = atom;
  const TypeDesc& t = def->attrs[attr].type;
  Value& v = atom.attrs[attr];
  if (t.kind == TypeKind::kReference) {
    if (!v.is_null() && !v.AsTid().IsNull() && v.AsTid() != target) {
      return Status::Constraint(
          def->name + "." + def->attrs[attr].name +
          " already references another atom (cardinality 1 exceeded)");
    }
    v = Value::Ref(target);
  } else {
    if (v.is_null()) v = Value::EmptyList();
    if (!v.Contains(Value::Ref(target))) {
      v.mutable_elems()->push_back(Value::Ref(target));
    }
    if (!t.card.var_max && t.card.max != 0 &&
        v.elems().size() > t.card.max) {
      return Status::Constraint(def->name + "." + def->attrs[attr].name +
                                " exceeds max cardinality");
    }
  }
  InstallVersion(atom_tid, &old_atom);
  PRIMA_RETURN_IF_ERROR(WriteBaseAtom(atom_tid, atom, /*is_new=*/false));
  stats_.backref_maintenance++;
  {
    const uint64_t lsn =
        LogAtomOp(UndoRecord::Kind::kModify, atom_tid, &old_atom, /*clr=*/false);
    if (undo_hook_) {
      undo_hook_(UndoRecord{UndoRecord::Kind::kModify, atom_tid, old_atom, lsn});
    }
  }
  PRIMA_RETURN_IF_ERROR(EnqueueRedundancy(*def, &old_atom, &atom, atom_tid));
  return EnqueueClusterMaintenance(*def, &old_atom, &atom, atom_tid);
}

Status AccessSystem::RemoveBackRef(const Tid& atom_tid, uint16_t attr,
                                   const Tid& target) {
  const AtomTypeDef* def = catalog_.GetAtomType(atom_tid.type);
  if (def == nullptr || attr >= def->attrs.size()) {
    return Status::Corruption("back-reference attribute missing");
  }
  auto atom_or = ReadBaseAtom(atom_tid);
  if (!atom_or.ok()) {
    // Target already gone (e.g. bulk delete); nothing to unhook.
    return atom_or.status().IsNotFound() ? Status::Ok() : atom_or.status();
  }
  Atom atom = std::move(atom_or).value();
  const Atom old_atom = atom;
  const TypeDesc& t = def->attrs[attr].type;
  Value& v = atom.attrs[attr];
  if (t.kind == TypeKind::kReference) {
    if (!v.is_null() && v.AsTid() == target) v = Value::Null();
  } else if (v.kind() == Value::Kind::kList) {
    auto* elems = v.mutable_elems();
    elems->erase(std::remove_if(elems->begin(), elems->end(),
                                [&](const Value& e) {
                                  return e.kind() == Value::Kind::kTid &&
                                         e.AsTid() == target;
                                }),
                 elems->end());
  }
  InstallVersion(atom_tid, &old_atom);
  PRIMA_RETURN_IF_ERROR(WriteBaseAtom(atom_tid, atom, /*is_new=*/false));
  stats_.backref_maintenance++;
  {
    const uint64_t lsn =
        LogAtomOp(UndoRecord::Kind::kModify, atom_tid, &old_atom, /*clr=*/false);
    if (undo_hook_) {
      undo_hook_(UndoRecord{UndoRecord::Kind::kModify, atom_tid, old_atom, lsn});
    }
  }
  PRIMA_RETURN_IF_ERROR(EnqueueRedundancy(*def, &old_atom, &atom, atom_tid));
  return EnqueueClusterMaintenance(*def, &old_atom, &atom, atom_tid);
}

namespace {
/// Tids referenced by an association attribute value.
std::vector<Tid> RefTargets(const Value& v) {
  std::vector<Tid> out;
  if (v.kind() == Value::Kind::kTid) {
    if (!v.AsTid().IsNull()) out.push_back(v.AsTid());
  } else if (v.kind() == Value::Kind::kList) {
    for (const auto& e : v.elems()) {
      if (e.kind() == Value::Kind::kTid && !e.AsTid().IsNull()) {
        out.push_back(e.AsTid());
      }
    }
  }
  return out;
}
}  // namespace

// ---------------------------------------------------------------------------
// Atom operations
// ---------------------------------------------------------------------------

Result<Tid> AccessSystem::InsertAtom(AtomTypeId type,
                                     std::vector<AttrValue> values) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const AtomTypeDef* def = catalog_.GetAtomType(type);
  if (def == nullptr) {
    return Status::NotFound("atom type id " + std::to_string(type));
  }
  Atom atom;
  atom.attrs.assign(def->attrs.size(), Value::Null());
  for (auto& av : values) {
    if (av.attr >= def->attrs.size()) {
      return Status::InvalidArgument("attribute id out of range");
    }
    const AttributeDef& attr = def->attrs[av.attr];
    if (attr.type.kind == TypeKind::kIdentifier) {
      return Status::InvalidArgument(
          "IDENTIFIER is system-assigned and cannot be supplied");
    }
    // Numeric coercion: INTEGER literal into REAL attribute.
    if (attr.type.kind == TypeKind::kReal &&
        av.value.kind() == Value::Kind::kInt) {
      av.value = Value::Real(static_cast<double>(av.value.AsInt()));
    }
    if (attr.type.IsAssociation() &&
        attr.type.ReferenceDesc()->ref_type_id == 0) {
      PRIMA_RETURN_IF_ERROR(catalog_.ResolveReferences());
      if (attr.type.IsAssociation() &&
          def->attrs[av.attr].type.ReferenceDesc()->ref_type_id == 0 &&
          !av.value.is_null()) {
        return Status::Constraint("association " + def->name + "." +
                                  attr.name + " references undeclared type");
      }
    }
    PRIMA_RETURN_IF_ERROR(TypeCheckValue(av.value, attr.type));
    if (!attr.type.card.var_max && attr.type.card.max != 0 &&
        av.value.kind() == Value::Kind::kList &&
        av.value.elems().size() > attr.type.card.max) {
      return Status::Constraint("attribute " + attr.name +
                                " exceeds max cardinality");
    }
    atom.attrs[av.attr] = std::move(av.value);
  }

  const Tid tid = addresses_.NewTid(type);
  atom.tid = tid;
  atom.attrs[def->identifier_attr] = Value::Ref(tid);

  // Uniqueness via every unique access path (the implicit KEYS_ARE index
  // and LDL-created UNIQUE paths), checked before any physical write so a
  // rejected insert leaves no partial state.
  for (const StructureDef* s : catalog_.StructuresFor(type)) {
    if (s->kind != StructureKind::kBTreeAccessPath || !s->unique) continue;
    PRIMA_ASSIGN_OR_RETURN(std::string key, BuildKey(atom, s->attrs, {}, false));
    PRIMA_ASSIGN_OR_RETURN(auto existing, btrees_[s->id]->Get(key));
    if (existing.has_value()) {
      return Status::Constraint("duplicate value for unique access path " +
                                s->name);
    }
  }

  // Referential integrity: every referenced atom gets its back-reference.
  std::vector<std::pair<Tid, uint16_t>> installed;  // target, back-attr (undo)
  for (size_t i = 0; i < atom.attrs.size(); ++i) {
    const AttributeDef& attr = def->attrs[i];
    if (!attr.type.IsAssociation()) continue;
    if (static_cast<uint16_t>(i) == def->identifier_attr) continue;
    const TypeDesc* ref = attr.type.ReferenceDesc();
    for (const Tid& target : RefTargets(atom.attrs[i])) {
      if (!addresses_.Exists(target)) {
        for (const auto& [t, a] : installed) (void)RemoveBackRef(t, a, tid);
        return Status::Constraint("referenced atom " + target.ToString() +
                                  " does not exist");
      }
      const Status st = AddBackRef(target, ref->ref_attr_id, tid);
      if (!st.ok()) {
        for (const auto& [t, a] : installed) (void)RemoveBackRef(t, a, tid);
        return st;
      }
      installed.push_back({target, ref->ref_attr_id});
    }
  }

  InstallVersion(tid, /*before=*/nullptr);
  PRIMA_RETURN_IF_ERROR(WriteBaseAtom(tid, atom, /*is_new=*/true));
  PRIMA_RETURN_IF_ERROR(MaintainAccessPaths(*def, nullptr, &atom, tid));
  PRIMA_RETURN_IF_ERROR(EnqueueRedundancy(*def, nullptr, &atom, tid));
  PRIMA_RETURN_IF_ERROR(EnqueueClusterMaintenance(*def, nullptr, &atom, tid));
  stats_.atoms_inserted++;
  {
    const uint64_t lsn =
        LogAtomOp(UndoRecord::Kind::kInsert, tid, nullptr, /*clr=*/false);
    if (undo_hook_) {
      undo_hook_(UndoRecord{UndoRecord::Kind::kInsert, tid, Atom{}, lsn});
    }
  }
  return tid;
}

Result<Atom> AccessSystem::GetAtom(const Tid& tid,
                                   const std::vector<uint16_t>& projection) {
  const AtomTypeDef* def = catalog_.GetAtomType(tid.type);
  if (def == nullptr) {
    return Status::NotFound("atom type id " + std::to_string(tid.type));
  }
  stats_.atoms_read++;
  const ReadView* view = CurrentReadView();
  if (!projection.empty() && view == nullptr) {
    // Minimum-access-cost materialization: a partition covering the
    // projection moves fewer bytes than the base record. Skipped under a
    // read view — partition copies are maintained by deferred drains and
    // carry no version chain, so only the base record can be resolved.
    for (const StructureDef* s : catalog_.StructuresFor(tid.type)) {
      if (s->kind != StructureKind::kPartition) continue;
      std::set<uint16_t> have(s->attrs.begin(), s->attrs.end());
      have.insert(def->identifier_attr);
      bool covers = true;
      for (uint16_t p : projection) {
        if (have.count(p) == 0) {
          covers = false;
          break;
        }
      }
      if (!covers) continue;
      PRIMA_RETURN_IF_ERROR(DrainStructure(s->id));
      auto rid_or = addresses_.Lookup(tid, s->id);
      if (!rid_or.ok()) continue;
      auto bytes_or =
          partition_files_[s->id]->Read(RecordId::Unpack(*rid_or));
      if (!bytes_or.ok()) continue;
      PRIMA_ASSIGN_OR_RETURN(Atom atom, DecodeAtom(tid.type, *bytes_or));
      stats_.partition_reads++;
      return atom;
    }
  }
  // Base first, THEN the chain: writers install the chain entry before the
  // base record changes, so a reader that sees a too-new base value is
  // guaranteed to find the entry that rescues the old one. The reverse
  // order would race.
  Result<Atom> base = ReadBaseAtom(tid);
  Atom atom;
  if (view != nullptr) {
    VersionStore::Resolution res = versions_.Resolve(tid, *view);
    if (res.outcome == VersionStore::Outcome::kInvisible) {
      return Status::NotFound("atom " + tid.ToString() +
                              " is not visible in this snapshot");
    }
    if (res.outcome == VersionStore::Outcome::kBefore) {
      atom = std::move(*res.before);  // rescues deleted atoms too
    } else {
      PRIMA_RETURN_IF_ERROR(base.status());
      atom = std::move(base).value();
    }
  } else {
    PRIMA_RETURN_IF_ERROR(base.status());
    atom = std::move(base).value();
  }
  if (!projection.empty()) {
    std::set<uint16_t> keep(projection.begin(), projection.end());
    keep.insert(def->identifier_attr);
    for (size_t i = 0; i < atom.attrs.size(); ++i) {
      if (keep.count(static_cast<uint16_t>(i)) == 0) {
        atom.attrs[i] = Value::Null();
      }
    }
  }
  return atom;
}

Status AccessSystem::ModifyAtom(const Tid& tid, std::vector<AttrValue> changes) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const AtomTypeDef* def = catalog_.GetAtomType(tid.type);
  if (def == nullptr) {
    return Status::NotFound("atom type id " + std::to_string(tid.type));
  }
  PRIMA_ASSIGN_OR_RETURN(const Atom old_atom, ReadBaseAtom(tid));
  Atom atom = old_atom;
  std::set<uint16_t> changed;
  for (auto& av : changes) {
    if (av.attr >= def->attrs.size()) {
      return Status::InvalidArgument("attribute id out of range");
    }
    const AttributeDef& attr = def->attrs[av.attr];
    if (attr.type.kind == TypeKind::kIdentifier) {
      return Status::InvalidArgument("the IDENTIFIER attribute is immutable");
    }
    if (attr.type.kind == TypeKind::kReal &&
        av.value.kind() == Value::Kind::kInt) {
      av.value = Value::Real(static_cast<double>(av.value.AsInt()));
    }
    PRIMA_RETURN_IF_ERROR(TypeCheckValue(av.value, attr.type));
    if (!attr.type.card.var_max && attr.type.card.max != 0 &&
        av.value.kind() == Value::Kind::kList &&
        av.value.elems().size() > attr.type.card.max) {
      return Status::Constraint("attribute " + attr.name +
                                " exceeds max cardinality");
    }
    atom.attrs[av.attr] = std::move(av.value);
    changed.insert(av.attr);
  }

  // Unique-path changes: enforce uniqueness on every affected unique access
  // path before any physical write.
  for (const StructureDef* s : catalog_.StructuresFor(tid.type)) {
    if (s->kind != StructureKind::kBTreeAccessPath || !s->unique) continue;
    bool touched = false;
    for (uint16_t a : s->attrs) {
      if (changed.count(a) != 0 && !old_atom.attrs[a].Equals(atom.attrs[a])) {
        touched = true;
        break;
      }
    }
    if (!touched) continue;
    PRIMA_ASSIGN_OR_RETURN(std::string key, BuildKey(atom, s->attrs, {}, false));
    PRIMA_ASSIGN_OR_RETURN(auto existing, btrees_[s->id]->Get(key));
    if (existing.has_value()) {
      return Status::Constraint("duplicate value for unique access path " +
                                s->name);
    }
  }

  // Association diffs -> implicit back-reference updates.
  for (uint16_t a : changed) {
    const AttributeDef& attr = def->attrs[a];
    if (!attr.type.IsAssociation()) continue;
    const TypeDesc* ref = attr.type.ReferenceDesc();
    const std::vector<Tid> old_targets = RefTargets(old_atom.attrs[a]);
    const std::vector<Tid> new_targets = RefTargets(atom.attrs[a]);
    for (const Tid& t : old_targets) {
      if (std::find(new_targets.begin(), new_targets.end(), t) ==
          new_targets.end()) {
        PRIMA_RETURN_IF_ERROR(RemoveBackRef(t, ref->ref_attr_id, tid));
      }
    }
    for (const Tid& t : new_targets) {
      if (std::find(old_targets.begin(), old_targets.end(), t) ==
          old_targets.end()) {
        if (!addresses_.Exists(t)) {
          return Status::Constraint("referenced atom " + t.ToString() +
                                    " does not exist");
        }
        PRIMA_RETURN_IF_ERROR(AddBackRef(t, ref->ref_attr_id, tid));
      }
    }
  }

  InstallVersion(tid, &old_atom);
  PRIMA_RETURN_IF_ERROR(WriteBaseAtom(tid, atom, /*is_new=*/false));
  PRIMA_RETURN_IF_ERROR(MaintainAccessPaths(*def, &old_atom, &atom, tid));
  PRIMA_RETURN_IF_ERROR(EnqueueRedundancy(*def, &old_atom, &atom, tid));
  PRIMA_RETURN_IF_ERROR(
      EnqueueClusterMaintenance(*def, &old_atom, &atom, tid));
  stats_.atoms_modified++;
  {
    const uint64_t lsn =
        LogAtomOp(UndoRecord::Kind::kModify, tid, &old_atom, /*clr=*/false);
    if (undo_hook_) {
      undo_hook_(UndoRecord{UndoRecord::Kind::kModify, tid, old_atom, lsn});
    }
  }
  return Status::Ok();
}

Status AccessSystem::DeleteAtom(const Tid& tid) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const AtomTypeDef* def = catalog_.GetAtomType(tid.type);
  if (def == nullptr) {
    return Status::NotFound("atom type id " + std::to_string(tid.type));
  }
  PRIMA_ASSIGN_OR_RETURN(const Atom atom, ReadBaseAtom(tid));
  // Install at the TOP — before the index entries go, so a snapshot scan's
  // ghost pass can still find this atom by its chain after the delete.
  InstallVersion(tid, &atom);

  // Disconnect every association (symmetry: all relationships touching this
  // atom appear in its own attributes, forward or back).
  for (size_t i = 0; i < atom.attrs.size(); ++i) {
    const AttributeDef& attr = def->attrs[i];
    if (!attr.type.IsAssociation()) continue;
    const TypeDesc* ref = attr.type.ReferenceDesc();
    for (const Tid& target : RefTargets(atom.attrs[i])) {
      PRIMA_RETURN_IF_ERROR(RemoveBackRef(target, ref->ref_attr_id, tid));
    }
  }

  PRIMA_RETURN_IF_ERROR(MaintainAccessPaths(*def, &atom, nullptr, tid));
  PRIMA_RETURN_IF_ERROR(EnqueueRedundancy(*def, &atom, nullptr, tid));
  PRIMA_RETURN_IF_ERROR(EnqueueClusterMaintenance(*def, &atom, nullptr, tid));

  PRIMA_ASSIGN_OR_RETURN(const uint64_t rid,
                         addresses_.Lookup(tid, kBaseStructure));
  PRIMA_RETURN_IF_ERROR(
      base_files_.at(tid.type)->Delete(RecordId::Unpack(rid)));
  PRIMA_RETURN_IF_ERROR(addresses_.Remove(tid));
  stats_.atoms_deleted++;
  {
    const uint64_t lsn =
        LogAtomOp(UndoRecord::Kind::kDelete, tid, &atom, /*clr=*/false);
    if (undo_hook_) {
      // At this point every association has been disconnected (and logged);
      // the before image recorded here restores the record + redundancy, and
      // the logged back-reference writes restore symmetry.
      undo_hook_(UndoRecord{UndoRecord::Kind::kDelete, tid, atom, lsn});
    }
  }
  return Status::Ok();
}

Status AccessSystem::Connect(const Tid& from, uint16_t attr, const Tid& to) {
  const AtomTypeDef* def = catalog_.GetAtomType(from.type);
  if (def == nullptr || attr >= def->attrs.size()) {
    return Status::InvalidArgument("unknown attribute");
  }
  const TypeDesc& t = def->attrs[attr].type;
  if (!t.IsAssociation()) {
    return Status::InvalidArgument("attribute is not an association");
  }
  PRIMA_ASSIGN_OR_RETURN(Atom atom, GetAtom(from));
  Value v = atom.attrs[attr];
  if (t.kind == TypeKind::kReference) {
    v = Value::Ref(to);
  } else {
    if (v.is_null()) v = Value::EmptyList();
    if (v.Contains(Value::Ref(to))) return Status::Ok();
    v.mutable_elems()->push_back(Value::Ref(to));
  }
  return ModifyAtom(from, {AttrValue{attr, std::move(v)}});
}

Status AccessSystem::Disconnect(const Tid& from, uint16_t attr, const Tid& to) {
  const AtomTypeDef* def = catalog_.GetAtomType(from.type);
  if (def == nullptr || attr >= def->attrs.size()) {
    return Status::InvalidArgument("unknown attribute");
  }
  const TypeDesc& t = def->attrs[attr].type;
  if (!t.IsAssociation()) {
    return Status::InvalidArgument("attribute is not an association");
  }
  PRIMA_ASSIGN_OR_RETURN(Atom atom, GetAtom(from));
  Value v = atom.attrs[attr];
  if (t.kind == TypeKind::kReference) {
    if (v.is_null() || v.AsTid() != to) {
      return Status::NotFound("association not present");
    }
    v = Value::Null();
  } else {
    if (!v.Contains(Value::Ref(to))) {
      return Status::NotFound("association not present");
    }
    auto* elems = v.mutable_elems();
    elems->erase(std::remove_if(elems->begin(), elems->end(),
                                [&](const Value& e) {
                                  return e.kind() == Value::Kind::kTid &&
                                         e.AsTid() == to;
                                }),
                 elems->end());
  }
  return ModifyAtom(from, {AttrValue{attr, std::move(v)}});
}

Status AccessSystem::CheckIntegrity(const Tid& tid) {
  const AtomTypeDef* def = catalog_.GetAtomType(tid.type);
  if (def == nullptr) return Status::NotFound("atom type");
  PRIMA_ASSIGN_OR_RETURN(const Atom atom, ReadBaseAtom(tid));
  for (size_t i = 0; i < def->attrs.size(); ++i) {
    PRIMA_RETURN_IF_ERROR(CheckCardinality(atom.attrs[i], def->attrs[i].type,
                                           def->name + "." + def->attrs[i].name));
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Access path maintenance (immediate) and redundancy (deferred)
// ---------------------------------------------------------------------------

Status AccessSystem::MaintainAccessPaths(const AtomTypeDef& def,
                                         const Atom* old_atom,
                                         const Atom* new_atom, const Tid& tid) {
  for (const StructureDef* s : catalog_.StructuresFor(def.id)) {
    if (s->kind == StructureKind::kBTreeAccessPath) {
      std::string old_key, new_key;
      if (old_atom != nullptr) {
        PRIMA_ASSIGN_OR_RETURN(old_key,
                               BuildKey(*old_atom, s->attrs, {}, !s->unique));
      }
      if (new_atom != nullptr) {
        PRIMA_ASSIGN_OR_RETURN(new_key,
                               BuildKey(*new_atom, s->attrs, {}, !s->unique));
      }
      if (old_atom != nullptr && new_atom != nullptr && old_key == new_key) {
        continue;
      }
      if (old_atom != nullptr) {
        const Status st = btrees_[s->id]->Delete(old_key);
        if (!st.ok() && !st.IsNotFound()) return st;
      }
      if (new_atom != nullptr) {
        PRIMA_RETURN_IF_ERROR(
            btrees_[s->id]->Insert(new_key, PackedTidValue(tid)));
      }
    } else if (s->kind == StructureKind::kGridAccessPath) {
      std::vector<std::string> old_keys, new_keys;
      if (old_atom != nullptr) {
        PRIMA_ASSIGN_OR_RETURN(old_keys, EncodeGridKeys(*s, *old_atom));
      }
      if (new_atom != nullptr) {
        PRIMA_ASSIGN_OR_RETURN(new_keys, EncodeGridKeys(*s, *new_atom));
      }
      if (old_atom != nullptr && new_atom != nullptr && old_keys == new_keys) {
        continue;
      }
      if (old_atom != nullptr) {
        const Status st = grids_[s->id]->Delete(old_keys, tid);
        if (!st.ok() && !st.IsNotFound()) return st;
      }
      if (new_atom != nullptr) {
        PRIMA_RETURN_IF_ERROR(grids_[s->id]->Insert(new_keys, tid));
      }
    }
  }
  return Status::Ok();
}

void AccessSystem::EnqueuePending(Pending p) {
  stats_.deferred_enqueued++;
  if (!options_.defer_updates) {
    (void)ApplyPending(p);
    return;
  }
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.push_back(std::move(p));
}

Status AccessSystem::EnqueueRedundancy(const AtomTypeDef& def,
                                       const Atom* old_atom,
                                       const Atom* new_atom, const Tid& tid) {
  for (const StructureDef* s : catalog_.StructuresFor(def.id)) {
    if (s->kind == StructureKind::kSortOrder) {
      if (new_atom != nullptr) {
        Pending p;
        p.structure_id = s->id;
        p.kind = Pending::Kind::kUpsert;
        p.tid = tid;
        if (old_atom != nullptr) {
          PRIMA_ASSIGN_OR_RETURN(p.aux, EncodeSortKey(*s, *old_atom));
        }
        EnqueuePending(std::move(p));
      } else {
        Pending p;
        p.structure_id = s->id;
        p.kind = Pending::Kind::kRemove;
        p.tid = tid;
        PRIMA_ASSIGN_OR_RETURN(p.aux, EncodeSortKey(*s, *old_atom));
        EnqueuePending(std::move(p));
      }
    } else if (s->kind == StructureKind::kPartition) {
      if (new_atom != nullptr) {
        // Skip when no stored attribute changed.
        if (old_atom != nullptr) {
          bool touched = false;
          for (uint16_t a : s->attrs) {
            if (!old_atom->attrs[a].Equals(new_atom->attrs[a])) {
              touched = true;
              break;
            }
          }
          if (!touched) continue;
        }
        Pending p;
        p.structure_id = s->id;
        p.kind = Pending::Kind::kUpsert;
        p.tid = tid;
        EnqueuePending(std::move(p));
      } else {
        Pending p;
        p.structure_id = s->id;
        p.kind = Pending::Kind::kRemove;
        p.tid = tid;
        auto rid_or = addresses_.Lookup(tid, s->id);
        if (rid_or.ok()) util::PutFixed64(&p.aux, *rid_or);
        EnqueuePending(std::move(p));
      }
    }
  }
  return Status::Ok();
}

Status AccessSystem::EnqueueClusterMaintenance(const AtomTypeDef& def,
                                               const Atom* old_atom,
                                               const Atom* new_atom,
                                               const Tid& tid) {
  for (const StructureDef* s : catalog_.ListStructures()) {
    if (s->kind != StructureKind::kAtomCluster) continue;
    if (s->atom_type == def.id) {
      // This atom is a characteristic atom of the cluster type.
      if (new_atom != nullptr) {
        // Rebuild only when a clustered reference attribute changed.
        if (old_atom != nullptr) {
          bool touched = false;
          for (uint16_t a : s->attrs) {
            if (!old_atom->attrs[a].Equals(new_atom->attrs[a])) {
              touched = true;
              break;
            }
          }
          if (!touched) continue;
        }
        Pending p;
        p.structure_id = s->id;
        p.kind = Pending::Kind::kClusterRebuild;
        p.tid = tid;
        EnqueuePending(std::move(p));
      } else {
        Pending p;
        p.structure_id = s->id;
        p.kind = Pending::Kind::kClusterRemove;
        p.tid = tid;
        auto rid_or = addresses_.Lookup(tid, s->id);
        if (rid_or.ok()) util::PutFixed64(&p.aux, *rid_or);
        EnqueuePending(std::move(p));
      }
      continue;
    }
    // Member maintenance: a clustered char atom references this atom iff one
    // of this atom's back-reference attrs mirrors a clustered ref attr.
    const AtomTypeDef* char_def = catalog_.GetAtomType(s->atom_type);
    if (char_def == nullptr) continue;
    for (uint16_t ca : s->attrs) {
      const TypeDesc* ref = char_def->attrs[ca].type.ReferenceDesc();
      if (ref == nullptr || ref->ref_type_id != def.id) continue;
      const uint16_t back_attr = ref->ref_attr_id;
      std::set<uint64_t> owners;
      if (old_atom != nullptr) {
        for (const Tid& t : RefTargets(old_atom->attrs[back_attr])) {
          owners.insert(t.Pack());
        }
      }
      if (new_atom != nullptr) {
        for (const Tid& t : RefTargets(new_atom->attrs[back_attr])) {
          owners.insert(t.Pack());
        }
      }
      for (uint64_t packed : owners) {
        Pending p;
        p.structure_id = s->id;
        p.kind = Pending::Kind::kClusterRebuild;
        p.tid = Tid::Unpack(packed);
        EnqueuePending(std::move(p));
      }
    }
  }
  (void)tid;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Deferred update application
// ---------------------------------------------------------------------------

Status AccessSystem::ApplyPending(const Pending& p) {
  stats_.deferred_applied++;
  const StructureDef* s = catalog_.GetStructure(p.structure_id);
  if (s == nullptr) return Status::Ok();  // structure dropped meanwhile
  switch (p.kind) {
    case Pending::Kind::kUpsert: {
      auto atom_or = ReadBaseAtom(p.tid);
      if (!atom_or.ok()) {
        return atom_or.status().IsNotFound() ? Status::Ok() : atom_or.status();
      }
      const Atom& atom = *atom_or;
      if (s->kind == StructureKind::kSortOrder) {
        PRIMA_ASSIGN_OR_RETURN(std::string key, EncodeSortKey(*s, atom));
        if (!p.aux.empty() && p.aux != key) {
          const Status st = btrees_[s->id]->Delete(p.aux);
          if (!st.ok() && !st.IsNotFound()) return st;
        }
        std::string image;
        atom.EncodeInto(&image);
        return btrees_[s->id]->Put(key, image);
      }
      if (s->kind == StructureKind::kPartition) {
        Atom part = atom;
        std::set<uint16_t> keep(s->attrs.begin(), s->attrs.end());
        const AtomTypeDef* type = catalog_.GetAtomType(s->atom_type);
        keep.insert(type->identifier_attr);
        for (size_t i = 0; i < part.attrs.size(); ++i) {
          if (keep.count(static_cast<uint16_t>(i)) == 0) {
            part.attrs[i] = Value::Null();
          }
        }
        std::string image;
        part.EncodeInto(&image);
        auto rid_or = addresses_.Lookup(p.tid, s->id);
        if (rid_or.ok()) {
          PRIMA_ASSIGN_OR_RETURN(
              const RecordId new_rid,
              partition_files_[s->id]->Update(RecordId::Unpack(*rid_or),
                                              image));
          if (new_rid.Pack() != *rid_or) {
            PRIMA_RETURN_IF_ERROR(
                addresses_.UpdateEntry(p.tid, s->id, new_rid.Pack()));
          }
          return Status::Ok();
        }
        PRIMA_ASSIGN_OR_RETURN(const RecordId rid,
                               partition_files_[s->id]->Insert(image));
        return addresses_.Register(p.tid, s->id, rid.Pack());
      }
      return Status::Ok();
    }
    case Pending::Kind::kRemove: {
      if (s->kind == StructureKind::kSortOrder) {
        const Status st = btrees_[s->id]->Delete(p.aux);
        return st.IsNotFound() ? Status::Ok() : st;
      }
      if (s->kind == StructureKind::kPartition) {
        if (p.aux.size() != 8) return Status::Ok();  // never materialized
        Slice aux(p.aux);
        uint64_t rid = 0;
        util::GetFixed64(&aux, &rid);
        const Status st = partition_files_[s->id]->Delete(RecordId::Unpack(rid));
        return st.IsNotFound() ? Status::Ok() : st;
      }
      return Status::Ok();
    }
    case Pending::Kind::kClusterRebuild: {
      if (!addresses_.Exists(p.tid)) return Status::Ok();  // deleted later
      return MaterializeCluster(*s, p.tid);
    }
    case Pending::Kind::kClusterRemove: {
      if (p.aux.size() != 8) return Status::Ok();
      Slice aux(p.aux);
      uint64_t header = 0;
      util::GetFixed64(&aux, &header);
      const Status st =
          storage_->DropSequence(s->segment, static_cast<uint32_t>(header));
      return st.IsNotFound() ? Status::Ok() : st;
    }
  }
  return Status::Ok();
}

Status AccessSystem::DrainStructure(uint32_t structure_id) {
  std::vector<Pending> todo;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->structure_id == structure_id) {
        todo.push_back(std::move(*it));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const Pending& p : todo) {
    PRIMA_RETURN_IF_ERROR(ApplyPending(p));
  }
  return Status::Ok();
}

Status AccessSystem::DrainAll() {
  std::deque<Pending> todo;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    todo.swap(pending_);
  }
  for (const Pending& p : todo) {
    PRIMA_RETURN_IF_ERROR(ApplyPending(p));
  }
  return Status::Ok();
}

size_t AccessSystem::PendingCount() const {
  std::lock_guard<std::mutex> lock(pending_mu_);
  return pending_.size();
}

// ---------------------------------------------------------------------------
// Atom clusters
// ---------------------------------------------------------------------------

std::vector<AtomTypeId> AccessSystem::ClusterMemberTypes(
    const StructureDef& def) const {
  std::vector<AtomTypeId> out;
  const AtomTypeDef* char_def = catalog_.GetAtomType(def.atom_type);
  if (char_def == nullptr) return out;
  for (uint16_t a : def.attrs) {
    const TypeDesc* ref = char_def->attrs[a].type.ReferenceDesc();
    if (ref != nullptr && ref->ref_type_id != 0) {
      out.push_back(ref->ref_type_id);
    }
  }
  return out;
}

const StructureDef* AccessSystem::FindCoveringCluster(
    AtomTypeId char_type, const std::vector<AtomTypeId>& needed) const {
  for (const StructureDef* s : catalog_.StructuresFor(char_type)) {
    if (s->kind != StructureKind::kAtomCluster) continue;
    std::set<AtomTypeId> members;
    members.insert(char_type);
    for (AtomTypeId t : ClusterMemberTypes(*s)) members.insert(t);
    bool covers = true;
    for (AtomTypeId t : needed) {
      if (members.count(t) == 0) {
        covers = false;
        break;
      }
    }
    if (covers) return s;
  }
  return nullptr;
}

Status AccessSystem::MaterializeCluster(const StructureDef& def,
                                        const Tid& char_tid) {
  const AtomTypeDef* char_def = catalog_.GetAtomType(def.atom_type);
  if (char_def == nullptr) return Status::Corruption("cluster without type");
  PRIMA_ASSIGN_OR_RETURN(Atom char_atom, ReadBaseAtom(char_tid));
  ClusterImage image;
  image.characteristic = char_atom;
  std::map<AtomTypeId, std::vector<Atom>> groups;
  for (uint16_t a : def.attrs) {
    for (const Tid& member : RefTargets(char_atom.attrs[a])) {
      auto atom_or = ReadBaseAtom(member);
      if (!atom_or.ok()) {
        if (atom_or.status().IsNotFound()) continue;
        return atom_or.status();
      }
      groups[member.type].push_back(std::move(*atom_or));
    }
  }
  for (auto& [type, atoms] : groups) {
    image.groups.emplace_back(type, std::move(atoms));
  }
  std::string bytes;
  image.EncodeInto(&bytes);
  auto existing = addresses_.Lookup(char_tid, def.id);
  if (existing.ok()) {
    return storage_->RewriteSequence(def.segment,
                                     static_cast<uint32_t>(*existing), bytes);
  }
  PRIMA_ASSIGN_OR_RETURN(const uint32_t header,
                         storage_->CreateSequence(def.segment, bytes));
  return addresses_.Register(char_tid, def.id, header);
}

Status AccessSystem::RemoveClusterImage(const StructureDef& def,
                                        const Tid& char_tid) {
  auto existing = addresses_.Lookup(char_tid, def.id);
  if (!existing.ok()) return Status::Ok();
  PRIMA_RETURN_IF_ERROR(storage_->DropSequence(
      def.segment, static_cast<uint32_t>(*existing)));
  return addresses_.Unregister(char_tid, def.id);
}

Result<ClusterImage> AccessSystem::ReadCluster(uint32_t cluster_id,
                                               const Tid& char_tid) {
  const StructureDef* def = catalog_.GetStructure(cluster_id);
  if (def == nullptr || def->kind != StructureKind::kAtomCluster) {
    return Status::NotFound("atom-cluster structure " +
                            std::to_string(cluster_id));
  }
  PRIMA_RETURN_IF_ERROR(DrainStructure(cluster_id));
  PRIMA_ASSIGN_OR_RETURN(const uint64_t header,
                         addresses_.Lookup(char_tid, cluster_id));
  PRIMA_ASSIGN_OR_RETURN(
      std::string bytes,
      storage_->ReadSequence(def->segment, static_cast<uint32_t>(header)));
  stats_.cluster_reads++;
  return ClusterImage::Decode(bytes, def->atom_type,
                              [this](AtomTypeId t) {
                                const AtomTypeDef* d = catalog_.GetAtomType(t);
                                return d == nullptr ? 0 : d->attrs.size();
                              });
}

// ---------------------------------------------------------------------------
// Recovery interface
// ---------------------------------------------------------------------------

Status AccessSystem::RawDeleteAtom(const Tid& tid) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const AtomTypeDef* def = catalog_.GetAtomType(tid.type);
  if (def == nullptr) return Status::NotFound("atom type");
  PRIMA_ASSIGN_OR_RETURN(const Atom old_atom, ReadBaseAtom(tid));
  PRIMA_RETURN_IF_ERROR(MaintainAccessPaths(*def, &old_atom, nullptr, tid));
  PRIMA_RETURN_IF_ERROR(EnqueueRedundancy(*def, &old_atom, nullptr, tid));
  PRIMA_RETURN_IF_ERROR(
      EnqueueClusterMaintenance(*def, &old_atom, nullptr, tid));
  PRIMA_ASSIGN_OR_RETURN(const uint64_t rid,
                         addresses_.Lookup(tid, kBaseStructure));
  PRIMA_RETURN_IF_ERROR(base_files_.at(tid.type)->Delete(RecordId::Unpack(rid)));
  PRIMA_RETURN_IF_ERROR(addresses_.Remove(tid));
  LogAtomOp(UndoRecord::Kind::kDelete, tid, &old_atom, /*clr=*/true);
  return Status::Ok();
}

Status AccessSystem::RawRestoreAtom(const Atom& atom) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const AtomTypeDef* def = catalog_.GetAtomType(atom.tid.type);
  if (def == nullptr) return Status::NotFound("atom type");
  if (addresses_.Exists(atom.tid)) {
    return Status::AlreadyExists("atom " + atom.tid.ToString());
  }
  PRIMA_RETURN_IF_ERROR(WriteBaseAtom(atom.tid, atom, /*is_new=*/true));
  PRIMA_RETURN_IF_ERROR(MaintainAccessPaths(*def, nullptr, &atom, atom.tid));
  PRIMA_RETURN_IF_ERROR(EnqueueRedundancy(*def, nullptr, &atom, atom.tid));
  PRIMA_RETURN_IF_ERROR(EnqueueClusterMaintenance(*def, nullptr, &atom, atom.tid));
  LogAtomOp(UndoRecord::Kind::kInsert, atom.tid, nullptr, /*clr=*/true);
  return Status::Ok();
}

Status AccessSystem::RawOverwriteAtom(const Atom& before) {
  std::lock_guard<std::mutex> lock(write_mu_);
  const AtomTypeDef* def = catalog_.GetAtomType(before.tid.type);
  if (def == nullptr) return Status::NotFound("atom type");
  PRIMA_ASSIGN_OR_RETURN(const Atom current, ReadBaseAtom(before.tid));
  PRIMA_RETURN_IF_ERROR(WriteBaseAtom(before.tid, before, /*is_new=*/false));
  PRIMA_RETURN_IF_ERROR(MaintainAccessPaths(*def, &current, &before, before.tid));
  PRIMA_RETURN_IF_ERROR(EnqueueRedundancy(*def, &current, &before, before.tid));
  PRIMA_RETURN_IF_ERROR(EnqueueClusterMaintenance(*def, &current, &before, before.tid));
  LogAtomOp(UndoRecord::Kind::kModify, before.tid, &current, /*clr=*/true);
  return Status::Ok();
}

Status AccessSystem::RecoverAtomFixup(recovery::AtomOp op, const Tid& tid,
                                      uint64_t rid) {
  // Repeating history for the memory-resident address table: the page-level
  // redo pass already restored the record bytes; this reinstates (or
  // removes) the tid -> rid mapping the crash wiped out. Every branch is
  // idempotent — fixups replay from before the checkpoint and recovery
  // itself may crash and rerun.
  switch (op) {
    case recovery::AtomOp::kInsert:
    case recovery::AtomOp::kModify: {
      auto existing = addresses_.Lookup(tid, kBaseStructure);
      if (existing.ok()) {
        if (*existing != rid) {
          PRIMA_RETURN_IF_ERROR(
              addresses_.UpdateEntry(tid, kBaseStructure, rid));
        }
        return Status::Ok();
      }
      return addresses_.Register(tid, kBaseStructure, rid);
    }
    case recovery::AtomOp::kDelete: {
      const Status st = addresses_.Remove(tid);
      return st.IsNotFound() ? Status::Ok() : st;
    }
  }
  return Status::Ok();
}

Status AccessSystem::ReattachPartitionCopies(const AtomTypeDef& def,
                                             const Tid& tid) {
  // A partition upsert drained before the crash inserted the copy into the
  // partition record file (page-resident, repeated by redo) but its
  // address-table registration was memory-resident and died with the
  // process. Re-draining the re-enqueued upsert would then miss the
  // existing copy and insert a second one — an orphan record the file
  // carries forever. Recover the mapping first: the copy's image starts
  // with its packed tid, so a physical scan of the partition file finds it.
  for (const StructureDef* s : catalog_.StructuresFor(def.id)) {
    if (s->kind != StructureKind::kPartition) continue;
    if (addresses_.Lookup(tid, s->id).ok()) continue;  // already registered
    RecordFile* file = PartitionFile(s->id);
    if (file == nullptr) continue;
    PRIMA_ASSIGN_OR_RETURN(std::optional<RecordId> rid, file->First());
    while (rid.has_value()) {
      PRIMA_ASSIGN_OR_RETURN(const std::string bytes, file->Read(*rid));
      if (bytes.size() >= 8 && util::DecodeFixed64(bytes.data()) == tid.Pack()) {
        PRIMA_RETURN_IF_ERROR(addresses_.Register(tid, s->id, rid->Pack()));
        break;
      }
      PRIMA_ASSIGN_OR_RETURN(rid, file->Next(*rid));
    }
  }
  return Status::Ok();
}

Status AccessSystem::RecoverRedundancy(const Tid& tid,
                                       const Atom* ckpt_before) {
  const AtomTypeDef* def = catalog_.GetAtomType(tid.type);
  if (def == nullptr) return Status::Ok();  // type dropped since
  // Dedupe the re-enqueued work against copies that were already
  // materialized before the crash (drained but unregistered): reattaching
  // the mapping turns the coming upsert into an in-place update — and lets
  // a removal find the record at all — instead of leaking an orphan.
  PRIMA_RETURN_IF_ERROR(ReattachPartitionCopies(*def, tid));
  auto current_or = ReadBaseAtom(tid);
  if (current_or.ok()) {
    // Atom survived (committed work, or a loser change already rolled
    // back): refresh every redundant structure. The checkpoint image keys
    // the removal of stale sort-order entries.
    PRIMA_RETURN_IF_ERROR(
        EnqueueRedundancy(*def, ckpt_before, &*current_or, tid));
    return EnqueueClusterMaintenance(*def, ckpt_before, &*current_or, tid);
  }
  if (!current_or.status().IsNotFound()) return current_or.status();
  if (ckpt_before == nullptr) return Status::Ok();  // never checkpointed
  PRIMA_RETURN_IF_ERROR(EnqueueRedundancy(*def, ckpt_before, nullptr, tid));
  return EnqueueClusterMaintenance(*def, ckpt_before, nullptr, tid);
}

// ---------------------------------------------------------------------------
// Scan-layer accessors
// ---------------------------------------------------------------------------

RecordFile* AccessSystem::BaseFile(AtomTypeId type) {
  auto it = base_files_.find(type);
  return it == base_files_.end() ? nullptr : it->second.get();
}

BTree* AccessSystem::BTreeFor(uint32_t structure_id) {
  auto it = btrees_.find(structure_id);
  return it == btrees_.end() ? nullptr : it->second.get();
}

GridFile* AccessSystem::GridFor(uint32_t structure_id) {
  auto it = grids_.find(structure_id);
  return it == grids_.end() ? nullptr : it->second.get();
}

RecordFile* AccessSystem::PartitionFile(uint32_t structure_id) {
  auto it = partition_files_.find(structure_id);
  return it == partition_files_.end() ? nullptr : it->second.get();
}

}  // namespace prima::access
