#ifndef PRIMA_ACCESS_VERSION_STORE_H_
#define PRIMA_ACCESS_VERSION_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "access/tid.h"
#include "access/value.h"

namespace prima::access {

/// A reader's consistent view of the database: every transaction whose
/// commit sequence is <= `seq` is visible, everything newer (and everything
/// still uncommitted) is resolved to its before-image. `own_txn` names the
/// top-level transaction the reader itself runs under (0 = none) — a reader
/// always sees its own uncommitted writes (degree-3 consistency within the
/// transaction).
struct ReadView {
  uint64_t seq = 0;
  uint64_t own_txn = 0;
};

/// Version-store health counters. Plain atomics so the metrics registry can
/// read them by address, like every other kernel stats block.
struct VersionStoreStats {
  std::atomic<uint64_t> versions_installed{0};
  std::atomic<uint64_t> versions_retired{0};
  std::atomic<uint64_t> versions_resolved{0};  ///< reads served off-chain
  std::atomic<uint64_t> chain_walks{0};        ///< Resolve calls that found a chain
  /// Chain-walk depth histogram: walks that visited 1 / 2 / 3 / >=4 entries.
  std::atomic<uint64_t> chain_depth_1{0};
  std::atomic<uint64_t> chain_depth_2{0};
  std::atomic<uint64_t> chain_depth_3{0};
  std::atomic<uint64_t> chain_depth_4plus{0};
  std::atomic<uint64_t> snapshots_opened{0};
};

/// Plain-data copy — one leg of the coherent Prima::stats() snapshot.
struct VersionStoreStatsSnapshot {
  uint64_t versions_installed = 0;
  uint64_t versions_retired = 0;
  uint64_t versions_retained = 0;  ///< live entries right now (gauge)
  uint64_t versions_resolved = 0;
  uint64_t chain_walks = 0;
  uint64_t chain_depth_1 = 0;
  uint64_t chain_depth_2 = 0;
  uint64_t chain_depth_3 = 0;
  uint64_t chain_depth_4plus = 0;
  uint64_t snapshots_opened = 0;
  uint64_t snapshots_active = 0;      ///< pinned read views (gauge)
  uint64_t oldest_snapshot_lsn = 0;   ///< WAL LSN the oldest pin holds back
  uint64_t commit_seq = 0;            ///< logical commit clock
};

/// In-memory version chains for snapshot reads (ROADMAP open item 2): the
/// before-images the undo path already produces are kept, per atom, for as
/// long as any live read view might need them. Writers install a pending
/// entry at mutation time (before the base record changes); commit stamps
/// the transaction's entries with the next tick of a logical commit clock;
/// retirement trims every entry no pinned snapshot can still reach. The
/// store is entirely volatile — a restart begins empty, which is correct
/// because recovery rolls every loser back and readers of the old
/// incarnation are gone.
///
/// Visibility walk (chains are oldest -> newest; write locks serialize the
/// writers of one atom, so pending entries only ever sit at the tail):
/// the first entry that is NOT visible to the view (pending by another
/// transaction, or committed after the view's seq) carries the value the
/// view must see — its before-image, or "no atom" for an insert. If every
/// entry is visible, the current base record is the answer.
class VersionStore {
 public:
  VersionStore();

  /// One pinned read view. Destroying the pin releases it and lets the
  /// store retire entries the view was holding.
  class Pin {
   public:
    ~Pin();
    const ReadView& view() const { return view_; }

   private:
    friend class VersionStore;
    VersionStore* store_ = nullptr;
    ReadView view_;
  };

  /// Install a pending version for `tid`, written by top-level transaction
  /// `txn`. `before` is the atom's image prior to this mutation; nullptr
  /// for an insert (the atom did not exist before). Must be called BEFORE
  /// the base record is overwritten.
  void Install(uint64_t txn, const Tid& tid, const Atom* before);

  /// Stamp every pending entry of `txn` with the next commit sequence and
  /// publish it. `wal_lsn` is the transaction's commit LSN (0 unlogged),
  /// kept so a pinned snapshot is diagnosable in WAL terms. Returns the
  /// assigned sequence (0 when the transaction installed nothing).
  uint64_t Commit(uint64_t txn, uint64_t wal_lsn);

  /// Drop every pending entry of `txn` (top-level abort: the compensations
  /// restore the base records, so the chains are pure garbage).
  void Drop(uint64_t txn);

  /// Pin a read view at the current commit clock. Thread-safe.
  std::shared_ptr<Pin> OpenSnapshot(uint64_t own_txn);

  /// How a read of `tid` resolves against a view.
  enum class Outcome : uint8_t {
    kCurrent,    ///< the current base record is the visible version
    kBefore,     ///< the visible version is `before` (base is too new)
    kInvisible,  ///< the atom does not exist in this view
  };
  struct Resolution {
    Outcome outcome = Outcome::kCurrent;
    std::optional<Atom> before;
  };
  Resolution Resolve(const Tid& tid, const ReadView& view);

  /// True when no chains are live (fast reject for readers; also the
  /// "retires to empty" acceptance gauge).
  bool Empty() const {
    return retained_.load(std::memory_order_acquire) == 0;
  }

  /// Packed tids of type `type` that currently carry a chain, sorted.
  /// The snapshot scan's ghost pass resolves these to recover atoms the
  /// latest-committed index/scan no longer surfaces (deleted, or moved out
  /// of the scanned key range, after the snapshot began).
  std::vector<uint64_t> ChainedTids(AtomTypeId type) const;

  VersionStoreStats& stats() { return stats_; }
  VersionStoreStatsSnapshot StatsSnapshot() const;

  uint64_t commit_seq() const {
    return last_seq_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    uint64_t txn = 0;
    uint64_t seq = 0;      ///< 0 = pending (uncommitted)
    uint64_t wal_lsn = 0;  ///< commit LSN once stamped
    bool has_before = false;
    Atom before;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<Entry>> chains;  ///< packed tid
  };
  static constexpr size_t kShards = 16;

  Shard& ShardFor(uint64_t packed) const {
    return shards_[(packed * 0x9E3779B97F4A7C15ull) >> 60 & (kShards - 1)];
  }

  void ReleasePin(const ReadView& view);
  /// Trim every stamped entry all live pins can already see. Caller must
  /// NOT hold any shard mutex.
  void Retire();

  mutable std::unique_ptr<Shard[]> shards_;

  /// Commit clock. Stamping happens entirely before the release-store that
  /// publishes the new sequence, so a reader that observes seq S finds
  /// every entry of every transaction with seq <= S fully stamped.
  std::atomic<uint64_t> last_seq_{0};
  std::atomic<int64_t> retained_{0};
  std::mutex commit_mu_;
  /// Highest commit LSN seen; atomic so pin-open never nests into
  /// commit_mu_ (Commit calls Retire, which takes pins_mu_ — the reverse
  /// nesting would deadlock).
  std::atomic<uint64_t> last_lsn_{0};

  /// Per-transaction index of installed (pending) entries, so commit/abort
  /// touch only their own chains.
  std::mutex txns_mu_;
  std::unordered_map<uint64_t, std::vector<uint64_t>> pending_by_txn_;

  /// Stamped entries in commit order, awaiting retirement.
  struct Tomb {
    uint64_t packed = 0;
    uint64_t seq = 0;
  };
  std::mutex retire_mu_;
  std::deque<Tomb> graveyard_;

  /// Live pins: seq -> {count, wal_lsn at pin time}.
  struct PinInfo {
    uint64_t count = 0;
    uint64_t lsn = 0;
  };
  mutable std::mutex pins_mu_;
  std::map<uint64_t, PinInfo> pins_;

  VersionStoreStats stats_;
};

/// Scoped thread-local read view: while alive, AccessSystem::GetAtom (and
/// the snapshot-aware scan wrappers) resolve every atom against the view
/// instead of serving latest-committed. Mirrors the SetWalTxn /
/// obs::CurrentTrace thread-local idiom; pipelined assembly workers install
/// the cursor's view for the span of each task.
class ReadViewScope {
 public:
  explicit ReadViewScope(const ReadView* view);
  ~ReadViewScope();
  ReadViewScope(const ReadViewScope&) = delete;
  ReadViewScope& operator=(const ReadViewScope&) = delete;

 private:
  const ReadView* prev_;
};

/// The view installed on this thread, or nullptr (latest-committed).
const ReadView* CurrentReadView();

}  // namespace prima::access

#endif  // PRIMA_ACCESS_VERSION_STORE_H_
