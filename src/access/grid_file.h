#ifndef PRIMA_ACCESS_GRID_FILE_H_
#define PRIMA_ACCESS_GRID_FILE_H_

#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "access/tid.h"
#include "storage/storage_system.h"
#include "util/result.h"
#include "util/status.h"

namespace prima::access {

/// Multi-dimensional access path (paper §3.2: "since we offer
/// multi-dimensional access path structures ... start/stop conditions and
/// directions may be specified individually for every key involved in the
/// scan"). A classic grid file: one linear scale of split boundaries per
/// dimension, a directory mapping grid cells to bucket pages (with bucket
/// sharing across cells), and bucket splits that extend one scale at a time.
///
/// Keys per dimension are order-preserving byte encodings (util/coding.h).
/// Entries are (key vector, surrogate) pairs; the pair must be unique.
///
/// The directory and scales live in memory and persist as a page sequence
/// (the structure's meta object); buckets are regular pages of the grid's
/// segment. Degenerate buckets (every entry equal in all dimensions) grow
/// overflow chains instead of splitting.
class GridFile {
 public:
  /// `meta_page` = 0 creates an empty grid; otherwise Open() loads it.
  /// `on_meta_change` fires when the meta page-sequence header moves.
  GridFile(storage::StorageSystem* storage, storage::SegmentId segment,
           size_t dims, uint32_t meta_page,
           std::function<void(uint32_t)> on_meta_change);

  /// Load persisted scales + directory (no-op for a fresh grid).
  util::Status Open();
  /// Persist scales + directory if dirty.
  util::Status Save();

  util::Status Insert(const std::vector<std::string>& keys, Tid tid);
  util::Status Delete(const std::vector<std::string>& keys, Tid tid);

  /// Range with optional bounds; `asc` picks the direction for this key.
  struct QueryRange {
    std::optional<std::string> lo;
    std::optional<std::string> hi;
    bool lo_inclusive = true;
    bool hi_inclusive = true;
    bool asc = true;
  };

  struct Match {
    std::vector<std::string> keys;
    Tid tid;
  };

  /// Evaluate an n-dimensional range query. `dim_priority` orders the sort
  /// dimensions of the result (the "selection path in an n-dimensional
  /// space"); empty means dimension order 0,1,2,...
  util::Result<std::vector<Match>> Query(
      const std::vector<QueryRange>& ranges,
      const std::vector<size_t>& dim_priority) const;

  size_t dims() const { return dims_; }
  uint32_t meta_page() const { return meta_page_; }
  uint64_t entry_count() const { return entry_count_; }
  /// Cells per dimension (tests inspect splitting behaviour).
  std::vector<size_t> CellCounts() const;

 private:
  struct Entry {
    std::vector<std::string> keys;
    Tid tid;
  };

  // Directory addressing: row-major over per-dim cell indices.
  size_t CellIndex(const std::vector<size_t>& coord) const;
  std::vector<size_t> CoordOf(const std::vector<std::string>& keys) const;
  size_t DirSize() const;

  util::Result<std::vector<Entry>> LoadBucket(uint32_t page,
                                              uint32_t* overflow) const;
  util::Status StoreBucket(uint32_t page, const std::vector<Entry>& entries,
                           uint32_t overflow) const;
  // All entries across a bucket's overflow chain.
  util::Result<std::vector<Entry>> LoadChain(uint32_t page) const;
  // Store entries into the chain, growing/shrinking overflow pages.
  util::Status StoreChain(uint32_t page, std::vector<Entry> entries);

  static size_t EntryBytes(const Entry& e);
  size_t BucketCapacityBytes() const;

  util::Status SplitBucket(uint32_t bucket_page,
                           const std::vector<size_t>& coord);

  storage::StorageSystem* storage_;
  storage::SegmentId segment_;
  size_t dims_;
  uint32_t meta_page_;
  std::function<void(uint32_t)> on_meta_change_;
  uint32_t page_size_ = 0;

  mutable std::mutex mu_;
  std::vector<std::vector<std::string>> scales_;  // per dim, sorted boundaries
  std::vector<uint32_t> directory_;               // cell -> bucket page
  uint64_t entry_count_ = 0;
  bool dirty_ = false;
  bool opened_ = false;
};

}  // namespace prima::access

#endif  // PRIMA_ACCESS_GRID_FILE_H_
