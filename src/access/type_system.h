#ifndef PRIMA_ACCESS_TYPE_SYSTEM_H_
#define PRIMA_ACCESS_TYPE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "access/tid.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace prima::access {

/// The extended attribute type concept of the MAD model (paper §2.2): on
/// top of the conventional scalar types it offers IDENTIFIER (surrogates),
/// typed REFERENCEs carrying the association concept, and the structured
/// types RECORD, ARRAY and the repeating groups SET_OF / LIST_OF with
/// optional cardinality restrictions.
enum class TypeKind : uint8_t {
  kIdentifier = 0,  ///< system-assigned surrogate (exactly one per atom type)
  kReference = 1,   ///< typed logical pointer with enforced back-reference
  kInteger = 2,
  kReal = 3,
  kBoolean = 4,
  kChar = 5,       ///< fixed length
  kCharVar = 6,    ///< variable length
  kRecord = 7,
  kArray = 8,      ///< fixed element count
  kSet = 9,        ///< unordered repeating group, duplicate-free
  kList = 10,      ///< ordered repeating group
};

/// Cardinality restriction for SET_OF / LIST_OF, e.g. `(4,VAR)` in the
/// paper's Fig. 2.3 (min 4 elements, no upper bound).
struct Cardinality {
  uint32_t min = 0;
  uint32_t max = 0;      ///< meaningful only if !var_max
  bool var_max = true;   ///< VAR: unbounded

  bool Unrestricted() const { return min == 0 && var_max; }
};

/// Recursive type descriptor. Copyable (element/field descriptors are
/// shared immutable nodes).
struct TypeDesc {
  TypeKind kind = TypeKind::kInteger;

  /// kChar / kArray: fixed length (characters / elements).
  uint32_t length = 0;

  /// kReference: the association target written as `type.attr` in MAD-DDL —
  /// the attribute named here is the *back-reference* on the target type.
  /// Names are recorded at parse time; ids resolved by the catalog.
  std::string ref_type_name;
  std::string ref_attr_name;
  AtomTypeId ref_type_id = 0;
  uint16_t ref_attr_id = 0;

  /// kRecord fields.
  struct Field {
    std::string name;
    std::shared_ptr<const TypeDesc> type;
  };
  std::vector<Field> fields;

  /// kArray / kSet / kList element type.
  std::shared_ptr<const TypeDesc> elem;

  /// kSet / kList cardinality restriction.
  Cardinality card;

  // --- convenience constructors -------------------------------------------

  static TypeDesc Identifier() { return Simple(TypeKind::kIdentifier); }
  static TypeDesc Integer() { return Simple(TypeKind::kInteger); }
  static TypeDesc Real() { return Simple(TypeKind::kReal); }
  static TypeDesc Boolean() { return Simple(TypeKind::kBoolean); }
  static TypeDesc CharVar() { return Simple(TypeKind::kCharVar); }
  static TypeDesc Char(uint32_t n) {
    TypeDesc t = Simple(TypeKind::kChar);
    t.length = n;
    return t;
  }
  /// REF_TO(type.attr)
  static TypeDesc RefTo(std::string type_name, std::string attr_name) {
    TypeDesc t = Simple(TypeKind::kReference);
    t.ref_type_name = std::move(type_name);
    t.ref_attr_name = std::move(attr_name);
    return t;
  }
  static TypeDesc SetOf(TypeDesc elem, Cardinality card = {}) {
    TypeDesc t = Simple(TypeKind::kSet);
    t.elem = std::make_shared<const TypeDesc>(std::move(elem));
    t.card = card;
    return t;
  }
  static TypeDesc ListOf(TypeDesc elem, Cardinality card = {}) {
    TypeDesc t = Simple(TypeKind::kList);
    t.elem = std::make_shared<const TypeDesc>(std::move(elem));
    t.card = card;
    return t;
  }
  static TypeDesc ArrayOf(TypeDesc elem, uint32_t n) {
    TypeDesc t = Simple(TypeKind::kArray);
    t.elem = std::make_shared<const TypeDesc>(std::move(elem));
    t.length = n;
    return t;
  }
  static TypeDesc RecordOf(std::vector<Field> fields) {
    TypeDesc t = Simple(TypeKind::kRecord);
    t.fields = std::move(fields);
    return t;
  }

  /// True for REFERENCE or SET_OF/LIST_OF(REFERENCE) — the attribute forms
  /// one side of an association.
  bool IsAssociation() const {
    if (kind == TypeKind::kReference) return true;
    if ((kind == TypeKind::kSet || kind == TypeKind::kList) &&
        elem != nullptr) {
      return elem->kind == TypeKind::kReference;
    }
    return false;
  }

  /// For association attributes: the descriptor of the REFERENCE involved.
  const TypeDesc* ReferenceDesc() const {
    if (kind == TypeKind::kReference) return this;
    if (IsAssociation()) return elem.get();
    return nullptr;
  }

  /// Can values of this type be index keys / sort criteria?
  bool IsScalar() const {
    switch (kind) {
      case TypeKind::kInteger:
      case TypeKind::kReal:
      case TypeKind::kBoolean:
      case TypeKind::kChar:
      case TypeKind::kCharVar:
      case TypeKind::kIdentifier:
        return true;
      default:
        return false;
    }
  }

  std::string ToString() const;

  /// Serialize / parse (catalog persistence).
  void EncodeInto(std::string* out) const;
  static util::Result<TypeDesc> Decode(util::Slice* in);

 private:
  static TypeDesc Simple(TypeKind k) {
    TypeDesc t;
    t.kind = k;
    return t;
  }
};

}  // namespace prima::access

#endif  // PRIMA_ACCESS_TYPE_SYSTEM_H_
