#ifndef PRIMA_ACCESS_ACCESS_SYSTEM_H_
#define PRIMA_ACCESS_ACCESS_SYSTEM_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "access/address_table.h"
#include "access/atom_cluster.h"
#include "access/btree.h"
#include "access/catalog.h"
#include "access/grid_file.h"
#include "access/record_file.h"
#include "access/search_arg.h"
#include "access/tid.h"
#include "access/value.h"
#include "access/version_store.h"
#include "storage/storage_system.h"

namespace prima::recovery {
class WalWriter;
enum class AtomOp : uint8_t;
}  // namespace prima::recovery

namespace prima::access {

/// Operation counters of the access system (experiment E8 reads the layer
/// pyramid off these plus the storage/buffer stats).
struct AccessStats {
  std::atomic<uint64_t> atoms_inserted{0};
  std::atomic<uint64_t> atoms_read{0};
  std::atomic<uint64_t> atoms_modified{0};
  std::atomic<uint64_t> atoms_deleted{0};
  std::atomic<uint64_t> backref_maintenance{0};  ///< implicit inverse updates
  std::atomic<uint64_t> partition_reads{0};      ///< projections served by partition
  std::atomic<uint64_t> cluster_reads{0};        ///< whole-cluster materializations
  std::atomic<uint64_t> deferred_enqueued{0};
  std::atomic<uint64_t> deferred_applied{0};

  void Reset() {
    atoms_inserted = atoms_read = atoms_modified = atoms_deleted = 0;
    backref_maintenance = partition_reads = cluster_reads = 0;
    deferred_enqueued = deferred_applied = 0;
  }
};

/// Plain-data copy of AccessStats — one leg of the coherent Prima::stats()
/// snapshot.
struct AccessStatsSnapshot {
  uint64_t atoms_inserted = 0;
  uint64_t atoms_read = 0;
  uint64_t atoms_modified = 0;
  uint64_t atoms_deleted = 0;
  uint64_t backref_maintenance = 0;
  uint64_t partition_reads = 0;
  uint64_t cluster_reads = 0;
  uint64_t deferred_enqueued = 0;
  uint64_t deferred_applied = 0;
};

inline AccessStatsSnapshot SnapshotStats(const AccessStats& s) {
  AccessStatsSnapshot out;
  out.atoms_inserted = s.atoms_inserted.load(std::memory_order_relaxed);
  out.atoms_read = s.atoms_read.load(std::memory_order_relaxed);
  out.atoms_modified = s.atoms_modified.load(std::memory_order_relaxed);
  out.atoms_deleted = s.atoms_deleted.load(std::memory_order_relaxed);
  out.backref_maintenance =
      s.backref_maintenance.load(std::memory_order_relaxed);
  out.partition_reads = s.partition_reads.load(std::memory_order_relaxed);
  out.cluster_reads = s.cluster_reads.load(std::memory_order_relaxed);
  out.deferred_enqueued = s.deferred_enqueued.load(std::memory_order_relaxed);
  out.deferred_applied = s.deferred_applied.load(std::memory_order_relaxed);
  return out;
}

struct AccessOptions {
  storage::PageSize base_page_size = storage::PageSize::k4K;
  storage::PageSize index_page_size = storage::PageSize::k4K;
  storage::PageSize partition_page_size = storage::PageSize::k1K;
  storage::PageSize cluster_page_size = storage::PageSize::k8K;
  /// Paper §3.2 deferred update: redundant structures are refreshed lazily.
  /// false = propagate immediately (ablation E12).
  bool defer_updates = true;
};

/// Attribute assignment used by insert/modify.
struct AttrValue {
  uint16_t attr = 0;
  Value value;
};

/// The access system (paper §3.2): an atom-oriented interface in the spirit
/// of System R's RSS, with direct access by surrogate, atom sets via scans
/// (scan.h), system-enforced referential integrity for the symmetric
/// association attributes, and the LDL-controlled redundancy (access paths,
/// sort orders, partitions, atom clusters) underneath.
class AccessSystem {
 public:
  AccessSystem(storage::StorageSystem* storage, AccessOptions options = {});
  ~AccessSystem();

  /// Attach to existing on-device state (catalog + address table), or
  /// initialize a fresh database if none exists.
  util::Status Open();
  /// Drain deferred updates, persist catalog/address table, flush storage.
  util::Status Flush();

  // --- DDL -------------------------------------------------------------------

  /// Create an atom type; attribute/key validation in the catalog. Creates
  /// the base segment and, when `keys` is non-empty, the implicit unique
  /// key access path enforcing KEYS_ARE.
  util::Result<AtomTypeId> CreateAtomType(
      const std::string& name, std::vector<AttributeDef> attrs,
      const std::vector<std::string>& keys);
  util::Status DropAtomType(const std::string& name);

  // --- LDL (paper §2.3): transparent performance structures ------------------

  util::Result<uint32_t> CreateBTreeAccessPath(
      const std::string& name, const std::string& atom_type,
      const std::vector<std::string>& attrs, bool unique = false);
  util::Result<uint32_t> CreateGridAccessPath(
      const std::string& name, const std::string& atom_type,
      const std::vector<std::string>& attrs);
  util::Result<uint32_t> CreateSortOrder(const std::string& name,
                                         const std::string& atom_type,
                                         const std::vector<std::string>& attrs,
                                         const std::vector<bool>& asc = {});
  util::Result<uint32_t> CreatePartition(
      const std::string& name, const std::string& atom_type,
      const std::vector<std::string>& attrs);
  /// Atom-cluster type: characteristic atom type + the reference attributes
  /// whose targets belong to the cluster (paper Fig. 3.2a).
  util::Result<uint32_t> CreateAtomClusterType(
      const std::string& name, const std::string& char_type,
      const std::vector<std::string>& ref_attrs);
  util::Status DropStructure(const std::string& name);

  // --- atom operations (direct access by logical address) --------------------

  /// Insert an atom; IDENTIFIER attribute is system-assigned. Values may
  /// cover all or only selected attributes. Maintains back-references of
  /// every referenced atom and all redundancy transparently.
  util::Result<Tid> InsertAtom(AtomTypeId type, std::vector<AttrValue> values);

  /// Read an atom — whole, or only selected attributes (`projection` of
  /// attribute ids; empty = all). Serves covered projections from a
  /// partition when one exists (cheapest materialization wins).
  ///
  /// Snapshot reads: when a ReadViewScope is active on the calling thread,
  /// the atom is resolved against that view — the current record if every
  /// chained write is visible, the appropriate before-image otherwise, and
  /// NotFound for atoms the view predates. A deleted atom whose delete the
  /// view cannot see resolves to its pre-delete image. The partition fast
  /// path is skipped under a view (partition copies are not versioned).
  util::Result<Atom> GetAtom(const Tid& tid,
                             const std::vector<uint16_t>& projection = {});

  /// Modify selected attributes (never the IDENTIFIER). Reference changes
  /// imply implicit updates of the affected back-references.
  util::Status ModifyAtom(const Tid& tid, std::vector<AttrValue> changes);

  /// Delete an atom: disconnects every association, releases the surrogate.
  util::Status DeleteAtom(const Tid& tid);

  /// Connect / disconnect one association pair (component management).
  util::Status Connect(const Tid& from, uint16_t attr, const Tid& to);
  util::Status Disconnect(const Tid& from, uint16_t attr, const Tid& to);

  bool AtomExists(const Tid& tid) const { return addresses_.Exists(tid); }
  uint64_t AtomCount(AtomTypeId type) const {
    return addresses_.CountOfType(type);
  }
  /// All surrogates of a type in system-defined order.
  std::vector<Tid> AllAtoms(AtomTypeId type) const {
    return addresses_.AllOfType(type);
  }

  /// Enforce min-cardinality restrictions for one atom (deferred structural
  /// integrity check; max cardinality is enforced eagerly on writes).
  util::Status CheckIntegrity(const Tid& tid);

  // --- atom clusters ----------------------------------------------------------

  /// Read a whole cluster (one chained I/O on a cold buffer). `cluster_id`
  /// is the structure id; `char_tid` the characteristic atom.
  util::Result<ClusterImage> ReadCluster(uint32_t cluster_id,
                                         const Tid& char_tid);
  /// The cluster structure (if any) whose characteristic type is
  /// `char_type` and whose member types cover `needed` types.
  const StructureDef* FindCoveringCluster(
      AtomTypeId char_type, const std::vector<AtomTypeId>& needed) const;
  /// Member atom types of a cluster structure (characteristic excluded).
  std::vector<AtomTypeId> ClusterMemberTypes(const StructureDef& def) const;

  // --- recovery interface (nested transactions, core/transaction.h) ----------

  /// One base-atom mutation, reported to the installed undo hook. The
  /// implicit back-reference maintenance writes are reported individually,
  /// so replaying `before` images in reverse order restores full symmetry.
  struct UndoRecord {
    enum class Kind : uint8_t { kInsert, kModify, kDelete };
    Kind kind = Kind::kModify;
    Tid tid;
    Atom before;  ///< valid for kModify / kDelete
    /// WAL LSN of the matching kAtomUndo log record (0 when unlogged).
    /// Identifies exactly which log entries a subtree abort compensated —
    /// a plain count would miss parent operations interleaved with an
    /// active child's.
    uint64_t lsn = 0;
  };
  using UndoHook = std::function<void(const UndoRecord&)>;

  /// Install (or clear, with nullptr) the mutation hook. The transaction
  /// manager owns this; hooks fire while the write lock is held.
  void SetUndoHook(UndoHook hook) { undo_hook_ = std::move(hook); }

  /// Compensation operations: adjust the base record, access paths, and
  /// redundancy WITHOUT back-reference maintenance (each maintenance write
  /// was logged separately and compensates itself).
  util::Status RawDeleteAtom(const Tid& tid);
  util::Status RawRestoreAtom(const Atom& atom);
  util::Status RawOverwriteAtom(const Atom& before);

  // --- write-ahead logging / restart recovery --------------------------------

  /// Attach (or detach) the WAL. Every base-atom mutation then also appends
  /// an atom-level undo record (op, tid, rid, before image) next to the
  /// in-memory undo the hook collects; Raw* compensations append
  /// redo-only (CLR) records.
  void SetWal(recovery::WalWriter* wal) { wal_ = wal; }
  recovery::WalWriter* wal() const { return wal_; }

  /// Tag this thread's subsequent atom log records with the given top-level
  /// transaction id (0 = system/auto-commit). Thread-local: concurrent
  /// transactions on other threads are unaffected.
  static void SetWalTxn(uint64_t txn_id);

  /// Restart fixup, applied in log order after the redo pass: reinstall the
  /// address-table side of one logged atom operation (the page bytes were
  /// already repeated by redo; this repeats the memory-resident mapping).
  /// Tolerant of re-application — recovery may crash and rerun.
  util::Status RecoverAtomFixup(recovery::AtomOp op, const Tid& tid,
                                uint64_t rid);

  /// Restart fixup for the deferred redundancy an atom lost in the crash:
  /// re-enqueue sort-order / partition / cluster maintenance. `ckpt_before`
  /// is the atom's image at the last checkpoint (nullptr when it did not
  /// exist then); the current base record decides liveness.
  util::Status RecoverRedundancy(const Tid& tid, const Atom* ckpt_before);

  /// Restart fixup for an access structure whose root/meta page moved
  /// after the last checkpoint persisted the catalog: re-point the
  /// attached structure (and the in-memory catalog) at the logged root.
  /// Replayed in log order, last record wins; an id the recovered catalog
  /// does not know (structure created after the checkpoint — DDL
  /// durability still rides on checkpoints) is skipped. Idempotent.
  util::Status RecoverStructureRoot(uint32_t structure_id, uint32_t root_page);

  /// Re-register partition copies of `tid` that were materialized (drained)
  /// before the crash but whose memory-resident address-table entry was
  /// lost: scans the partition file for a record carrying the tid and
  /// reattaches the mapping, so the re-enqueued maintenance updates it in
  /// place instead of inserting an orphan duplicate.
  util::Status ReattachPartitionCopies(const AtomTypeDef& def, const Tid& tid);

  /// Disable the destructor's best-effort Flush(). With a WAL attached the
  /// owner (Prima) checkpoints explicitly before teardown; a destructor
  /// flush would then rewrite the metadata blobs UNLOGGED after the
  /// checkpoint's master record committed — page-LSNs get wiped and the
  /// component pages reshuffle, so the next restart's redo (which replays
  /// the checkpoint window over the device state) reassembles a corrupt
  /// blob. Standalone (no-WAL) use keeps the destructor flush: it is the
  /// only durability point there.
  void set_flush_on_close(bool v) { flush_on_close_ = v; }

  // --- deferred update (paper §3.2) ------------------------------------------

  /// Apply every pending propagation for one structure (scans call this on
  /// open so they always see current data).
  util::Status DrainStructure(uint32_t structure_id);
  /// Apply everything (checkpoint).
  util::Status DrainAll();
  size_t PendingCount() const;

  // --- plumbing ---------------------------------------------------------------

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  AddressTable& addresses() { return addresses_; }
  /// In-memory version chains for snapshot reads. Writers install pending
  /// before-images here (at the same sites that fire the undo hook); the
  /// transaction layer stamps them at commit and drops them at abort.
  VersionStore& versions() { return versions_; }
  storage::StorageSystem& storage() { return *storage_; }
  AccessStats& stats() { return stats_; }
  const AccessOptions& options() const { return options_; }

  /// Internal accessors used by the scan layer.
  RecordFile* BaseFile(AtomTypeId type);
  BTree* BTreeFor(uint32_t structure_id);
  GridFile* GridFor(uint32_t structure_id);
  RecordFile* PartitionFile(uint32_t structure_id);

  /// Decode an atom of `type` from record bytes.
  util::Result<Atom> DecodeAtom(AtomTypeId type, util::Slice bytes) const;

  /// Build the order-preserving composite key of `atom` over `attrs`
  /// (per-attribute asc flags optional) with the surrogate tie-breaker
  /// appended when `with_tid`.
  util::Result<std::string> BuildKey(const Atom& atom,
                                     const std::vector<uint16_t>& attrs,
                                     const std::vector<bool>& asc,
                                     bool with_tid) const;

 private:
  struct Pending {
    enum class Kind : uint8_t {
      kUpsert,          ///< refresh the structure's copy of `tid`
      kRemove,          ///< remove `tid` from the structure (aux: old key)
      kClusterRebuild,  ///< re-materialize the cluster of char atom `tid`
      kClusterRemove,   ///< drop the cluster of deleted char atom `tid`
    };
    uint32_t structure_id = 0;
    Kind kind = Kind::kUpsert;
    Tid tid;
    std::string aux;  ///< old sort key / partition rid (packed)
  };

  // --- internals (callers hold no locks; these take what they need) ---------

  util::Result<storage::SegmentId> NewSegment(storage::PageSize size);

  util::Status AttachStructures();
  util::Status BackfillStructure(const StructureDef& def);

  util::Result<Atom> ReadBaseAtom(const Tid& tid);
  util::Status WriteBaseAtom(const Tid& tid, const Atom& atom, bool is_new);

  /// One side of the implicit inverse maintenance: add/remove `target` in
  /// `atom_tid`.attr (scalar ref or set). No recursion back.
  util::Status AddBackRef(const Tid& atom_tid, uint16_t attr, const Tid& target);
  util::Status RemoveBackRef(const Tid& atom_tid, uint16_t attr,
                             const Tid& target);

  util::Status MaintainKeyIndex(const AtomTypeDef& def, const Atom& old_atom,
                                const Atom* new_atom);
  util::Status MaintainAccessPaths(const AtomTypeDef& def, const Atom* old_atom,
                                   const Atom* new_atom, const Tid& tid);
  util::Status EnqueueRedundancy(const AtomTypeDef& def, const Atom* old_atom,
                                 const Atom* new_atom, const Tid& tid);
  util::Status EnqueueClusterMaintenance(const AtomTypeDef& def,
                                         const Atom* old_atom,
                                         const Atom* new_atom, const Tid& tid);
  void EnqueuePending(Pending p);
  util::Status ApplyPending(const Pending& p);

  util::Status MaterializeCluster(const StructureDef& def, const Tid& char_tid);
  util::Status RemoveClusterImage(const StructureDef& def, const Tid& char_tid);

  util::Result<std::string> EncodeSortKey(const StructureDef& def,
                                          const Atom& atom) const;
  util::Result<std::vector<std::string>> EncodeGridKeys(
      const StructureDef& def, const Atom& atom) const;

  util::Status PersistMetadata();

  /// Append an atom-level log record mirroring one base-atom mutation (the
  /// same sites that fire the undo hook). `clr` marks compensation writes,
  /// which redo but are never undone. Returns the record's LSN (0 when no
  /// WAL is attached).
  uint64_t LogAtomOp(UndoRecord::Kind kind, const Tid& tid, const Atom* before,
                     bool clr);

  /// Install a pending version chain entry for the current thread's
  /// transaction (no-op for system/auto-commit writes and for the Raw*
  /// compensations, which never call it). MUST run before the base record
  /// is overwritten: a snapshot reader reads base-then-chain, so the chain
  /// entry has to exist by the time the base can show the new value.
  void InstallVersion(const Tid& tid, const Atom* before);

  /// Record a structure's root/meta page move: in the catalog (in memory;
  /// persisted wholesale at the next checkpoint) AND as a kStructRoot log
  /// record, so a crash between the split and the checkpoint re-points the
  /// structure at restart instead of attaching it at the stale root.
  void NoteStructureRoot(uint32_t structure_id, uint32_t root_page);

  storage::StorageSystem* storage_;
  AccessOptions options_;
  Catalog catalog_;
  AddressTable addresses_;
  AccessStats stats_;
  VersionStore versions_;

  std::map<AtomTypeId, std::unique_ptr<RecordFile>> base_files_;
  std::map<uint32_t, std::unique_ptr<BTree>> btrees_;
  std::map<uint32_t, std::unique_ptr<GridFile>> grids_;
  std::map<uint32_t, std::unique_ptr<RecordFile>> partition_files_;

  mutable std::mutex pending_mu_;
  std::deque<Pending> pending_;

  UndoHook undo_hook_;
  recovery::WalWriter* wal_ = nullptr;
  bool flush_on_close_ = true;

  // Serializes multi-structure mutations (atom writes). Reads are lock-free
  // at this level (page latches + structure mutexes below).
  std::mutex write_mu_;
};

}  // namespace prima::access

#endif  // PRIMA_ACCESS_ACCESS_SYSTEM_H_
