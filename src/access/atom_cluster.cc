#include "access/atom_cluster.h"

#include "util/coding.h"

namespace prima::access {

using util::Result;
using util::Slice;
using util::Status;

void ClusterImage::EncodeInto(std::string* out) const {
  {
    std::string atom_bytes;
    characteristic.EncodeInto(&atom_bytes);
    util::PutLengthPrefixed(out, atom_bytes);
  }
  util::PutVarint64(out, groups.size());
  for (const auto& [type, atoms] : groups) {
    util::PutVarint64(out, type);
    util::PutVarint64(out, atoms.size());
    for (const auto& atom : atoms) {
      std::string atom_bytes;
      atom.EncodeInto(&atom_bytes);
      util::PutLengthPrefixed(out, atom_bytes);
    }
  }
}

Result<ClusterImage> ClusterImage::Decode(
    Slice in, AtomTypeId char_type,
    const std::function<size_t(AtomTypeId)>& attr_counts) {
  ClusterImage image;
  Slice char_bytes;
  if (!util::GetLengthPrefixed(&in, &char_bytes)) {
    return Status::Corruption("cluster image: characteristic atom");
  }
  PRIMA_ASSIGN_OR_RETURN(image.characteristic,
                         Atom::Decode(&char_bytes, attr_counts(char_type)));
  uint64_t n_groups;
  if (!util::GetVarint64(&in, &n_groups)) {
    return Status::Corruption("cluster image: group count");
  }
  for (uint64_t g = 0; g < n_groups; ++g) {
    uint64_t type, n_atoms;
    if (!util::GetVarint64(&in, &type) || !util::GetVarint64(&in, &n_atoms)) {
      return Status::Corruption("cluster image: group header");
    }
    std::vector<Atom> atoms;
    atoms.reserve(n_atoms);
    for (uint64_t i = 0; i < n_atoms; ++i) {
      Slice atom_bytes;
      if (!util::GetLengthPrefixed(&in, &atom_bytes)) {
        return Status::Corruption("cluster image: member atom");
      }
      PRIMA_ASSIGN_OR_RETURN(
          Atom atom,
          Atom::Decode(&atom_bytes,
                       attr_counts(static_cast<AtomTypeId>(type))));
      atoms.push_back(std::move(atom));
    }
    image.groups.emplace_back(static_cast<AtomTypeId>(type), std::move(atoms));
  }
  return image;
}

std::vector<Atom> ClusterImage::Flatten() const {
  std::vector<Atom> out;
  out.push_back(characteristic);
  for (const auto& [type, atoms] : groups) {
    for (const auto& a : atoms) out.push_back(a);
  }
  return out;
}

}  // namespace prima::access
