#ifndef PRIMA_ACCESS_ADDRESS_TABLE_H_
#define PRIMA_ACCESS_ADDRESS_TABLE_H_

#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "access/tid.h"
#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace prima::access {

/// Structure id 0 denotes the base storage (the atom type's primary record
/// file); other ids are LDL-created structures from the catalog.
inline constexpr uint32_t kBaseStructure = 0;

/// One materialization of an atom: which structure holds it and where.
struct AddressEntry {
  uint32_t structure_id = kBaseStructure;
  uint64_t rid = 0;  ///< RecordId::Pack() or structure-specific locator
};

/// "A sophisticated addressing structure is required to manage such n:m
/// relationships" (paper §3.2): each atom maps to the *set* of physical
/// records that materialize it (base copy, sort-order copies, partition
/// parts, cluster copies), and each physical record may hold many atoms.
/// This table is the atom side of that mapping; it also issues surrogates.
///
/// Memory-resident with wholesale persistence into the address segment at
/// flush time (rebuildable from the base records if absent).
class AddressTable {
 public:
  /// Generate the next surrogate for an atom type (insert path).
  Tid NewTid(AtomTypeId type);

  /// Record that `structure` materializes `tid` at `rid`.
  util::Status Register(const Tid& tid, uint32_t structure, uint64_t rid);
  /// Remove a single materialization.
  util::Status Unregister(const Tid& tid, uint32_t structure);
  /// Move a materialization (physical record relocated).
  util::Status UpdateEntry(const Tid& tid, uint32_t structure, uint64_t rid);
  /// Drop every materialization (atom deletion releases the surrogate).
  util::Status Remove(const Tid& tid);

  bool Exists(const Tid& tid) const;
  util::Result<uint64_t> Lookup(const Tid& tid, uint32_t structure) const;
  std::vector<AddressEntry> EntriesFor(const Tid& tid) const;

  /// All live surrogates of a type in ascending sequence order (the
  /// "system-defined order" of the atom-type scan).
  std::vector<Tid> AllOfType(AtomTypeId type) const;
  uint64_t CountOfType(AtomTypeId type) const;

  /// Forget everything about an atom type (DropAtomType).
  void RemoveType(AtomTypeId type);

  std::string Encode() const;
  util::Status DecodeFrom(util::Slice in);

 private:
  mutable std::shared_mutex mu_;
  // Ordered map: AllOfType iterates a contiguous key range.
  std::map<uint64_t, std::vector<AddressEntry>> entries_;
  std::map<AtomTypeId, uint64_t> next_seq_;
};

}  // namespace prima::access

#endif  // PRIMA_ACCESS_ADDRESS_TABLE_H_
