#include "access/catalog.h"

#include "util/coding.h"

namespace prima::access {

using util::Result;
using util::Slice;
using util::Status;

Result<AtomTypeId> Catalog::AddAtomType(AtomTypeDef def) {
  std::unique_lock lock(mu_);
  if (atom_type_names_.count(def.name) != 0) {
    return Status::AlreadyExists("atom type " + def.name);
  }
  // Exactly one IDENTIFIER attribute.
  int id_attrs = 0;
  for (size_t i = 0; i < def.attrs.size(); ++i) {
    def.attrs[i].id = static_cast<uint16_t>(i);
    if (def.attrs[i].type.kind == TypeKind::kIdentifier) {
      ++id_attrs;
      def.identifier_attr = static_cast<uint16_t>(i);
    }
  }
  if (id_attrs != 1) {
    return Status::InvalidArgument(
        "atom type " + def.name + " must declare exactly one IDENTIFIER attribute");
  }
  for (uint16_t k : def.key_attrs) {
    if (k >= def.attrs.size()) {
      return Status::InvalidArgument("KEYS_ARE references unknown attribute");
    }
    if (!def.attrs[k].type.IsScalar()) {
      return Status::InvalidArgument("key attribute " + def.attrs[k].name +
                                     " is not scalar");
    }
  }
  def.id = next_atom_type_id_++;
  atom_type_names_[def.name] = def.id;
  const AtomTypeId id = def.id;
  atom_types_[id] = std::move(def);
  BumpSchemaVersion();
  return id;
}

Status Catalog::DropAtomType(AtomTypeId id) {
  std::unique_lock lock(mu_);
  auto it = atom_types_.find(id);
  if (it == atom_types_.end()) {
    return Status::NotFound("atom type id " + std::to_string(id));
  }
  atom_type_names_.erase(it->second.name);
  atom_types_.erase(it);
  BumpSchemaVersion();
  return Status::Ok();
}

const AtomTypeDef* Catalog::FindAtomType(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = atom_type_names_.find(name);
  if (it == atom_type_names_.end()) return nullptr;
  return &atom_types_.at(it->second);
}

const AtomTypeDef* Catalog::GetAtomType(AtomTypeId id) const {
  std::shared_lock lock(mu_);
  auto it = atom_types_.find(id);
  return it == atom_types_.end() ? nullptr : &it->second;
}

std::vector<const AtomTypeDef*> Catalog::ListAtomTypes() const {
  std::shared_lock lock(mu_);
  std::vector<const AtomTypeDef*> out;
  out.reserve(atom_types_.size());
  for (const auto& [id, def] : atom_types_) out.push_back(&def);
  return out;
}

namespace {
Status ResolveOne(std::map<AtomTypeId, AtomTypeDef>& types,
                  const std::map<std::string, AtomTypeId>& names,
                  AtomTypeDef& owner, AttributeDef& attr, TypeDesc* ref) {
  auto target_it = names.find(ref->ref_type_name);
  if (target_it == names.end()) {
    // Forward declaration: tolerated until the attribute is actually used.
    return Status::Ok();
  }
  AtomTypeDef& target = types.at(target_it->second);
  const AttributeDef* back = target.FindAttr(ref->ref_attr_name);
  if (back == nullptr) {
    return Status::InvalidArgument(
        owner.name + "." + attr.name + ": back-reference attribute " +
        ref->ref_type_name + "." + ref->ref_attr_name + " does not exist");
  }
  if (!back->type.IsAssociation()) {
    return Status::InvalidArgument(
        owner.name + "." + attr.name + ": back-reference " + back->name +
        " is not a REFERENCE attribute");
  }
  const TypeDesc* back_ref = back->type.ReferenceDesc();
  if (back_ref->ref_type_name != owner.name ||
      back_ref->ref_attr_name != attr.name) {
    return Status::InvalidArgument(
        owner.name + "." + attr.name + " and " + target.name + "." +
        back->name + " are not mutually inverse");
  }
  ref->ref_type_id = target.id;
  ref->ref_attr_id = back->id;
  return Status::Ok();
}
}  // namespace

Status Catalog::ResolveReferences() {
  std::unique_lock lock(mu_);
  for (auto& [id, def] : atom_types_) {
    for (auto& attr : def.attrs) {
      if (!attr.type.IsAssociation()) continue;
      TypeDesc* ref;
      if (attr.type.kind == TypeKind::kReference) {
        ref = &attr.type;
      } else {
        // The shared element descriptor is logically owned by this attr.
        ref = const_cast<TypeDesc*>(attr.type.elem.get());
      }
      PRIMA_RETURN_IF_ERROR(ResolveOne(atom_types_, atom_type_names_, def,
                                       attr, ref));
    }
  }
  return Status::Ok();
}

Status Catalog::DefineMoleculeType(MoleculeTypeDef def) {
  std::unique_lock lock(mu_);
  if (molecule_types_.count(def.name) != 0) {
    return Status::AlreadyExists("molecule type " + def.name);
  }
  molecule_types_[def.name] = std::move(def);
  BumpSchemaVersion();
  return Status::Ok();
}

Status Catalog::DropMoleculeType(const std::string& name) {
  std::unique_lock lock(mu_);
  if (molecule_types_.erase(name) == 0) {
    return Status::NotFound("molecule type " + name);
  }
  BumpSchemaVersion();
  return Status::Ok();
}

const MoleculeTypeDef* Catalog::FindMoleculeType(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = molecule_types_.find(name);
  return it == molecule_types_.end() ? nullptr : &it->second;
}

std::vector<const MoleculeTypeDef*> Catalog::ListMoleculeTypes() const {
  std::shared_lock lock(mu_);
  std::vector<const MoleculeTypeDef*> out;
  for (const auto& [name, def] : molecule_types_) out.push_back(&def);
  return out;
}

Result<uint32_t> Catalog::AddStructure(StructureDef def) {
  std::unique_lock lock(mu_);
  for (const auto& [id, s] : structures_) {
    if (s.name == def.name) {
      return Status::AlreadyExists("structure " + def.name);
    }
  }
  def.id = next_structure_id_++;
  const uint32_t id = def.id;
  structures_[id] = std::move(def);
  BumpSchemaVersion();
  return id;
}

Status Catalog::DropStructure(uint32_t id) {
  std::unique_lock lock(mu_);
  if (structures_.erase(id) == 0) {
    return Status::NotFound("structure id " + std::to_string(id));
  }
  BumpSchemaVersion();
  return Status::Ok();
}

const StructureDef* Catalog::GetStructure(uint32_t id) const {
  std::shared_lock lock(mu_);
  auto it = structures_.find(id);
  return it == structures_.end() ? nullptr : &it->second;
}

const StructureDef* Catalog::FindStructure(const std::string& name) const {
  std::shared_lock lock(mu_);
  for (const auto& [id, s] : structures_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const StructureDef*> Catalog::StructuresFor(AtomTypeId type) const {
  std::shared_lock lock(mu_);
  std::vector<const StructureDef*> out;
  for (const auto& [id, s] : structures_) {
    if (s.atom_type == type) out.push_back(&s);
  }
  return out;
}

std::vector<const StructureDef*> Catalog::ListStructures() const {
  std::shared_lock lock(mu_);
  std::vector<const StructureDef*> out;
  for (const auto& [id, s] : structures_) out.push_back(&s);
  return out;
}

Status Catalog::SetStructureRoot(uint32_t id, uint32_t root_page) {
  std::unique_lock lock(mu_);
  auto it = structures_.find(id);
  if (it == structures_.end()) {
    return Status::NotFound("structure id " + std::to_string(id));
  }
  it->second.root_page = root_page;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

namespace {
constexpr uint32_t kCatalogMagic = 0x4341544Cu;  // "CATL"

void EncodeAtomType(const AtomTypeDef& def, std::string* out) {
  util::PutLengthPrefixed(out, def.name);
  util::PutVarint64(out, def.id);
  util::PutVarint64(out, def.base_segment);
  util::PutVarint64(out, def.identifier_attr);
  util::PutVarint64(out, def.attrs.size());
  for (const auto& a : def.attrs) {
    util::PutLengthPrefixed(out, a.name);
    a.type.EncodeInto(out);
  }
  util::PutVarint64(out, def.key_attrs.size());
  for (uint16_t k : def.key_attrs) util::PutVarint64(out, k);
}

Result<AtomTypeDef> DecodeAtomType(Slice* in) {
  AtomTypeDef def;
  Slice name;
  uint64_t id, seg, ident, n_attrs;
  if (!util::GetLengthPrefixed(in, &name) || !util::GetVarint64(in, &id) ||
      !util::GetVarint64(in, &seg) || !util::GetVarint64(in, &ident) ||
      !util::GetVarint64(in, &n_attrs)) {
    return Status::Corruption("catalog atom type header");
  }
  def.name = name.ToString();
  def.id = static_cast<AtomTypeId>(id);
  def.base_segment = static_cast<storage::SegmentId>(seg);
  def.identifier_attr = static_cast<uint16_t>(ident);
  for (uint64_t i = 0; i < n_attrs; ++i) {
    Slice an;
    if (!util::GetLengthPrefixed(in, &an)) {
      return Status::Corruption("catalog attribute name");
    }
    PRIMA_ASSIGN_OR_RETURN(TypeDesc t, TypeDesc::Decode(in));
    AttributeDef attr;
    attr.name = an.ToString();
    attr.type = std::move(t);
    attr.id = static_cast<uint16_t>(i);
    def.attrs.push_back(std::move(attr));
  }
  uint64_t n_keys;
  if (!util::GetVarint64(in, &n_keys)) {
    return Status::Corruption("catalog key count");
  }
  for (uint64_t i = 0; i < n_keys; ++i) {
    uint64_t k;
    if (!util::GetVarint64(in, &k)) return Status::Corruption("catalog key");
    def.key_attrs.push_back(static_cast<uint16_t>(k));
  }
  return def;
}

void EncodeStructure(const StructureDef& s, std::string* out) {
  util::PutVarint64(out, s.id);
  out->push_back(static_cast<char>(s.kind));
  util::PutLengthPrefixed(out, s.name);
  util::PutVarint64(out, s.atom_type);
  util::PutVarint64(out, s.attrs.size());
  for (uint16_t a : s.attrs) util::PutVarint64(out, a);
  util::PutVarint64(out, s.asc.size());
  for (bool b : s.asc) out->push_back(b ? '\x01' : '\x00');
  out->push_back(s.unique ? '\x01' : '\x00');
  util::PutVarint64(out, s.segment);
  util::PutVarint64(out, s.root_page);
}

Result<StructureDef> DecodeStructure(Slice* in) {
  StructureDef s;
  uint64_t id;
  if (!util::GetVarint64(in, &id) || in->empty()) {
    return Status::Corruption("catalog structure header");
  }
  s.id = static_cast<uint32_t>(id);
  s.kind = static_cast<StructureKind>((*in)[0]);
  in->RemovePrefix(1);
  Slice name;
  uint64_t type, n_attrs;
  if (!util::GetLengthPrefixed(in, &name) || !util::GetVarint64(in, &type) ||
      !util::GetVarint64(in, &n_attrs)) {
    return Status::Corruption("catalog structure body");
  }
  s.name = name.ToString();
  s.atom_type = static_cast<AtomTypeId>(type);
  for (uint64_t i = 0; i < n_attrs; ++i) {
    uint64_t a;
    if (!util::GetVarint64(in, &a)) return Status::Corruption("structure attr");
    s.attrs.push_back(static_cast<uint16_t>(a));
  }
  uint64_t n_asc;
  if (!util::GetVarint64(in, &n_asc)) return Status::Corruption("structure asc");
  for (uint64_t i = 0; i < n_asc; ++i) {
    if (in->empty()) return Status::Corruption("structure asc flag");
    s.asc.push_back((*in)[0] != '\x00');
    in->RemovePrefix(1);
  }
  if (in->empty()) return Status::Corruption("structure unique flag");
  s.unique = (*in)[0] != '\x00';
  in->RemovePrefix(1);
  uint64_t seg, root;
  if (!util::GetVarint64(in, &seg) || !util::GetVarint64(in, &root)) {
    return Status::Corruption("structure segment/root");
  }
  s.segment = static_cast<storage::SegmentId>(seg);
  s.root_page = static_cast<uint32_t>(root);
  return s;
}
}  // namespace

std::string Catalog::Encode() const {
  std::shared_lock lock(mu_);
  std::string out;
  util::PutFixed32(&out, kCatalogMagic);
  util::PutVarint64(&out, next_atom_type_id_);
  util::PutVarint64(&out, next_structure_id_);
  util::PutVarint64(&out, atom_types_.size());
  for (const auto& [id, def] : atom_types_) EncodeAtomType(def, &out);
  util::PutVarint64(&out, molecule_types_.size());
  for (const auto& [name, def] : molecule_types_) {
    util::PutLengthPrefixed(&out, def.name);
    util::PutLengthPrefixed(&out, def.from_text);
    out.push_back(def.recursive ? '\x01' : '\x00');
  }
  util::PutVarint64(&out, structures_.size());
  for (const auto& [id, s] : structures_) EncodeStructure(s, &out);
  return out;
}

Status Catalog::DecodeFrom(Slice in) {
  std::unique_lock lock(mu_);
  uint32_t magic;
  if (!util::GetFixed32(&in, &magic) || magic != kCatalogMagic) {
    return Status::Corruption("bad catalog magic");
  }
  uint64_t next_type, next_struct, n_types;
  if (!util::GetVarint64(&in, &next_type) ||
      !util::GetVarint64(&in, &next_struct) ||
      !util::GetVarint64(&in, &n_types)) {
    return Status::Corruption("catalog header");
  }
  atom_types_.clear();
  atom_type_names_.clear();
  molecule_types_.clear();
  structures_.clear();
  next_atom_type_id_ = static_cast<AtomTypeId>(next_type);
  next_structure_id_ = static_cast<uint32_t>(next_struct);
  for (uint64_t i = 0; i < n_types; ++i) {
    PRIMA_ASSIGN_OR_RETURN(AtomTypeDef def, DecodeAtomType(&in));
    atom_type_names_[def.name] = def.id;
    atom_types_[def.id] = std::move(def);
  }
  uint64_t n_mol;
  if (!util::GetVarint64(&in, &n_mol)) {
    return Status::Corruption("catalog molecule count");
  }
  for (uint64_t i = 0; i < n_mol; ++i) {
    Slice name, text;
    if (!util::GetLengthPrefixed(&in, &name) ||
        !util::GetLengthPrefixed(&in, &text) || in.empty()) {
      return Status::Corruption("catalog molecule type");
    }
    MoleculeTypeDef def;
    def.name = name.ToString();
    def.from_text = text.ToString();
    def.recursive = in[0] != '\x00';
    in.RemovePrefix(1);
    molecule_types_[def.name] = std::move(def);
  }
  uint64_t n_structs;
  if (!util::GetVarint64(&in, &n_structs)) {
    return Status::Corruption("catalog structure count");
  }
  for (uint64_t i = 0; i < n_structs; ++i) {
    PRIMA_ASSIGN_OR_RETURN(StructureDef s, DecodeStructure(&in));
    structures_[s.id] = std::move(s);
  }
  BumpSchemaVersion();  // a reload is a wholesale schema change
  lock.unlock();
  return ResolveReferences();
}

}  // namespace prima::access
