#include "access/value.h"

#include <cmath>
#include <cstring>

#include "util/coding.h"

namespace prima::access {

using util::Result;
using util::Slice;
using util::Status;

bool Value::Equals(const Value& other) const { return Compare(other) == 0; }

int Value::Compare(const Value& other) const {
  // Numbers compare numerically across int/real.
  if (IsNumber() && other.IsNumber()) {
    const double a = AsNumber(), b = other.AsNumber();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (kind_ != other.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(other.kind_) ? -1 : 1;
  }
  switch (kind_) {
    case Kind::kNull:
      return 0;
    case Kind::kInt:
    case Kind::kReal:
      return 0;  // handled above
    case Kind::kBool:
      return static_cast<int>(bool_) - static_cast<int>(other.bool_);
    case Kind::kString:
      return str_.compare(other.str_) < 0   ? -1
             : str_.compare(other.str_) > 0 ? 1
                                            : 0;
    case Kind::kTid: {
      const uint64_t a = tid_.Pack(), b = other.tid_.Pack();
      return a < b ? -1 : a > b ? 1 : 0;
    }
    case Kind::kRecord:
    case Kind::kList: {
      const size_t n = std::min(elems_.size(), other.elems_.size());
      for (size_t i = 0; i < n; ++i) {
        const int c = elems_[i].Compare(other.elems_[i]);
        if (c != 0) return c;
      }
      if (elems_.size() < other.elems_.size()) return -1;
      if (elems_.size() > other.elems_.size()) return 1;
      return 0;
    }
  }
  return 0;
}

bool Value::Contains(const Value& v) const {
  if (kind_ != Kind::kList) return false;
  for (const auto& e : elems_) {
    if (e.Equals(v)) return true;
  }
  return false;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull: return "NULL";
    case Kind::kInt: return std::to_string(int_);
    case Kind::kReal: {
      std::string s = std::to_string(real_);
      return s;
    }
    case Kind::kBool: return bool_ ? "TRUE" : "FALSE";
    case Kind::kString: return "'" + str_ + "'";
    case Kind::kTid: return tid_.ToString();
    case Kind::kRecord:
    case Kind::kList: {
      std::string s = kind_ == Kind::kRecord ? "(" : "{";
      for (size_t i = 0; i < elems_.size(); ++i) {
        if (i > 0) s += ", ";
        s += elems_[i].ToString();
      }
      s += kind_ == Kind::kRecord ? ")" : "}";
      return s;
    }
  }
  return "?";
}

void Value::EncodeInto(std::string* out) const {
  out->push_back(static_cast<char>(kind_));
  switch (kind_) {
    case Kind::kNull:
      break;
    case Kind::kInt:
      util::PutVarsint64(out, int_);
      break;
    case Kind::kReal: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(real_));
      std::memcpy(&bits, &real_, sizeof(bits));
      util::PutFixed64(out, bits);
      break;
    }
    case Kind::kBool:
      out->push_back(bool_ ? '\x01' : '\x00');
      break;
    case Kind::kString:
      util::PutLengthPrefixed(out, str_);
      break;
    case Kind::kTid:
      util::PutFixed64(out, tid_.Pack());
      break;
    case Kind::kRecord:
    case Kind::kList:
      util::PutVarint64(out, elems_.size());
      for (const auto& e : elems_) e.EncodeInto(out);
      break;
  }
}

Result<Value> Value::Decode(Slice* in) {
  if (in->empty()) return Status::Corruption("truncated value");
  const Kind kind = static_cast<Kind>((*in)[0]);
  in->RemovePrefix(1);
  switch (kind) {
    case Kind::kNull:
      return Value::Null();
    case Kind::kInt: {
      int64_t v;
      if (!util::GetVarsint64(in, &v)) return Status::Corruption("int value");
      return Value::Int(v);
    }
    case Kind::kReal: {
      uint64_t bits;
      if (!util::GetFixed64(in, &bits)) return Status::Corruption("real value");
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      return Value::Real(d);
    }
    case Kind::kBool: {
      if (in->empty()) return Status::Corruption("bool value");
      const bool b = (*in)[0] != '\x00';
      in->RemovePrefix(1);
      return Value::Bool(b);
    }
    case Kind::kString: {
      Slice s;
      if (!util::GetLengthPrefixed(in, &s)) {
        return Status::Corruption("string value");
      }
      return Value::String(s.ToString());
    }
    case Kind::kTid: {
      uint64_t packed;
      if (!util::GetFixed64(in, &packed)) return Status::Corruption("tid value");
      return Value::Ref(Tid::Unpack(packed));
    }
    case Kind::kRecord:
    case Kind::kList: {
      uint64_t n;
      if (!util::GetVarint64(in, &n)) return Status::Corruption("composite");
      std::vector<Value> elems;
      elems.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        PRIMA_ASSIGN_OR_RETURN(Value e, Decode(in));
        elems.push_back(std::move(e));
      }
      return kind == Kind::kRecord ? Value::Record(std::move(elems))
                                   : Value::List(std::move(elems));
    }
  }
  return Status::Corruption("unknown value kind");
}

Status Value::EncodeKeyInto(std::string* out) const {
  switch (kind_) {
    case Kind::kInt:
      out->push_back('\x02');
      util::PutKeyInt64(out, int_);
      return Status::Ok();
    case Kind::kReal:
      // Same tag as kInt so mixed numeric keys stay ordered.
      out->push_back('\x02');
      util::PutKeyDouble(out, real_);
      return Status::Ok();
    case Kind::kBool:
      out->push_back('\x01');
      util::PutKeyBool(out, bool_);
      return Status::Ok();
    case Kind::kString:
      out->push_back('\x03');
      util::PutKeyString(out, str_);
      return Status::Ok();
    case Kind::kTid: {
      out->push_back('\x04');
      // big-endian for order preservation
      const uint64_t p = tid_.Pack();
      for (int i = 7; i >= 0; --i) {
        out->push_back(static_cast<char>((p >> (8 * i)) & 0xFF));
      }
      return Status::Ok();
    }
    case Kind::kNull:
      out->push_back('\x00');
      return Status::Ok();
    default:
      return Status::InvalidArgument("value kind not key-encodable");
  }
}

// kInt keys must sort with kReal keys: encode ints as doubles when they fit
// exactly; EncodeKeyInto above uses PutKeyInt64 for ints which would NOT
// interleave with doubles. Index key building therefore normalizes numeric
// values first — see NormalizeForKey in access_system.cc.

void Atom::EncodeInto(std::string* out) const {
  util::PutFixed64(out, tid.Pack());
  uint64_t non_null = 0;
  for (const auto& a : attrs) {
    if (!a.is_null()) ++non_null;
  }
  util::PutVarint64(out, non_null);
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i].is_null()) continue;
    util::PutVarint64(out, i);
    attrs[i].EncodeInto(out);
  }
}

Result<Atom> Atom::Decode(Slice* in, size_t attr_count) {
  Atom atom;
  uint64_t packed;
  if (!util::GetFixed64(in, &packed)) return Status::Corruption("atom tid");
  atom.tid = Tid::Unpack(packed);
  atom.attrs.assign(attr_count, Value::Null());
  uint64_t n;
  if (!util::GetVarint64(in, &n)) return Status::Corruption("atom attr count");
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t idx;
    if (!util::GetVarint64(in, &idx)) return Status::Corruption("atom attr idx");
    PRIMA_ASSIGN_OR_RETURN(Value v, Value::Decode(in));
    if (idx >= atom.attrs.size()) {
      // Schema narrowed since the record was written; ignore the extra.
      continue;
    }
    atom.attrs[idx] = std::move(v);
  }
  return atom;
}

Status TypeCheckValue(const Value& v, const TypeDesc& t) {
  if (v.is_null()) return Status::Ok();
  switch (t.kind) {
    case TypeKind::kIdentifier:
    case TypeKind::kReference:
      if (v.kind() != Value::Kind::kTid) {
        return Status::InvalidArgument("expected surrogate/reference value");
      }
      if (t.kind == TypeKind::kReference && t.ref_type_id != 0 &&
          !v.AsTid().IsNull() && v.AsTid().type != t.ref_type_id) {
        return Status::InvalidArgument("reference targets wrong atom type");
      }
      return Status::Ok();
    case TypeKind::kInteger:
      if (v.kind() != Value::Kind::kInt) {
        return Status::InvalidArgument("expected INTEGER");
      }
      return Status::Ok();
    case TypeKind::kReal:
      if (!v.IsNumber()) return Status::InvalidArgument("expected REAL");
      return Status::Ok();
    case TypeKind::kBoolean:
      if (v.kind() != Value::Kind::kBool) {
        return Status::InvalidArgument("expected BOOLEAN");
      }
      return Status::Ok();
    case TypeKind::kChar:
      if (v.kind() != Value::Kind::kString) {
        return Status::InvalidArgument("expected CHAR");
      }
      if (v.AsString().size() > t.length) {
        return Status::InvalidArgument("CHAR value too long");
      }
      return Status::Ok();
    case TypeKind::kCharVar:
      if (v.kind() != Value::Kind::kString) {
        return Status::InvalidArgument("expected CHAR_VAR");
      }
      return Status::Ok();
    case TypeKind::kRecord: {
      if (v.kind() != Value::Kind::kRecord) {
        return Status::InvalidArgument("expected RECORD");
      }
      if (v.elems().size() != t.fields.size()) {
        return Status::InvalidArgument("RECORD arity mismatch");
      }
      for (size_t i = 0; i < t.fields.size(); ++i) {
        PRIMA_RETURN_IF_ERROR(TypeCheckValue(v.elems()[i], *t.fields[i].type));
      }
      return Status::Ok();
    }
    case TypeKind::kArray: {
      if (v.kind() != Value::Kind::kList) {
        return Status::InvalidArgument("expected ARRAY");
      }
      if (v.elems().size() != t.length) {
        return Status::InvalidArgument("ARRAY length mismatch");
      }
      for (const auto& e : v.elems()) {
        PRIMA_RETURN_IF_ERROR(TypeCheckValue(e, *t.elem));
      }
      return Status::Ok();
    }
    case TypeKind::kSet:
    case TypeKind::kList: {
      if (v.kind() != Value::Kind::kList) {
        return Status::InvalidArgument("expected SET/LIST");
      }
      for (const auto& e : v.elems()) {
        PRIMA_RETURN_IF_ERROR(TypeCheckValue(e, *t.elem));
      }
      if (t.kind == TypeKind::kSet) {
        for (size_t i = 0; i < v.elems().size(); ++i) {
          for (size_t j = i + 1; j < v.elems().size(); ++j) {
            if (v.elems()[i].Equals(v.elems()[j])) {
              return Status::InvalidArgument("duplicate element in SET");
            }
          }
        }
      }
      return Status::Ok();
    }
  }
  return Status::Ok();
}

Status CheckCardinality(const Value& v, const TypeDesc& t,
                        const std::string& attr_name) {
  if (t.kind != TypeKind::kSet && t.kind != TypeKind::kList) {
    return Status::Ok();
  }
  const size_t n = v.is_null() ? 0 : v.elems().size();
  if (!t.card.var_max && t.card.max != 0 && n > t.card.max) {
    return Status::Constraint("attribute " + attr_name + " exceeds max cardinality " +
                              std::to_string(t.card.max));
  }
  if (n < t.card.min) {
    return Status::Constraint("attribute " + attr_name + " below min cardinality " +
                              std::to_string(t.card.min));
  }
  return Status::Ok();
}

}  // namespace prima::access
