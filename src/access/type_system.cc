#include "access/type_system.h"

#include "util/coding.h"

namespace prima::access {

using util::Result;
using util::Slice;
using util::Status;

std::string TypeDesc::ToString() const {
  switch (kind) {
    case TypeKind::kIdentifier: return "IDENTIFIER";
    case TypeKind::kInteger: return "INTEGER";
    case TypeKind::kReal: return "REAL";
    case TypeKind::kBoolean: return "BOOLEAN";
    case TypeKind::kCharVar: return "CHAR_VAR";
    case TypeKind::kChar: return "CHAR(" + std::to_string(length) + ")";
    case TypeKind::kReference:
      return "REF_TO(" + ref_type_name + "." + ref_attr_name + ")";
    case TypeKind::kRecord: {
      std::string s = "RECORD(";
      for (size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) s += ", ";
        s += fields[i].name + ": " + fields[i].type->ToString();
      }
      return s + ")";
    }
    case TypeKind::kArray:
      return "ARRAY_OF(" + elem->ToString() + ")(" + std::to_string(length) +
             ")";
    case TypeKind::kSet:
    case TypeKind::kList: {
      std::string s = kind == TypeKind::kSet ? "SET_OF(" : "LIST_OF(";
      s += elem->ToString() + ")";
      if (!card.Unrestricted()) {
        s += "(" + std::to_string(card.min) + "," +
             (card.var_max ? "VAR" : std::to_string(card.max)) + ")";
      }
      return s;
    }
  }
  return "?";
}

void TypeDesc::EncodeInto(std::string* out) const {
  out->push_back(static_cast<char>(kind));
  util::PutVarint64(out, length);
  switch (kind) {
    case TypeKind::kReference:
      util::PutLengthPrefixed(out, ref_type_name);
      util::PutLengthPrefixed(out, ref_attr_name);
      util::PutVarint64(out, ref_type_id);
      util::PutVarint64(out, ref_attr_id);
      break;
    case TypeKind::kRecord:
      util::PutVarint64(out, fields.size());
      for (const auto& f : fields) {
        util::PutLengthPrefixed(out, f.name);
        f.type->EncodeInto(out);
      }
      break;
    case TypeKind::kArray:
    case TypeKind::kSet:
    case TypeKind::kList:
      elem->EncodeInto(out);
      util::PutVarint64(out, card.min);
      util::PutVarint64(out, card.max);
      out->push_back(card.var_max ? '\x01' : '\x00');
      break;
    default:
      break;
  }
}

Result<TypeDesc> TypeDesc::Decode(Slice* in) {
  if (in->empty()) return Status::Corruption("truncated type descriptor");
  TypeDesc t;
  t.kind = static_cast<TypeKind>((*in)[0]);
  in->RemovePrefix(1);
  uint64_t len;
  if (!util::GetVarint64(in, &len)) {
    return Status::Corruption("truncated type length");
  }
  t.length = static_cast<uint32_t>(len);
  switch (t.kind) {
    case TypeKind::kReference: {
      Slice tn, an;
      uint64_t tid, aid;
      if (!util::GetLengthPrefixed(in, &tn) ||
          !util::GetLengthPrefixed(in, &an) || !util::GetVarint64(in, &tid) ||
          !util::GetVarint64(in, &aid)) {
        return Status::Corruption("truncated reference descriptor");
      }
      t.ref_type_name = tn.ToString();
      t.ref_attr_name = an.ToString();
      t.ref_type_id = static_cast<AtomTypeId>(tid);
      t.ref_attr_id = static_cast<uint16_t>(aid);
      break;
    }
    case TypeKind::kRecord: {
      uint64_t n;
      if (!util::GetVarint64(in, &n)) {
        return Status::Corruption("truncated record descriptor");
      }
      for (uint64_t i = 0; i < n; ++i) {
        Slice name;
        if (!util::GetLengthPrefixed(in, &name)) {
          return Status::Corruption("truncated record field");
        }
        PRIMA_ASSIGN_OR_RETURN(TypeDesc ft, Decode(in));
        t.fields.push_back(
            {name.ToString(), std::make_shared<const TypeDesc>(std::move(ft))});
      }
      break;
    }
    case TypeKind::kArray:
    case TypeKind::kSet:
    case TypeKind::kList: {
      PRIMA_ASSIGN_OR_RETURN(TypeDesc et, Decode(in));
      t.elem = std::make_shared<const TypeDesc>(std::move(et));
      uint64_t mn, mx;
      if (!util::GetVarint64(in, &mn) || !util::GetVarint64(in, &mx) ||
          in->empty()) {
        return Status::Corruption("truncated cardinality");
      }
      t.card.min = static_cast<uint32_t>(mn);
      t.card.max = static_cast<uint32_t>(mx);
      t.card.var_max = (*in)[0] != '\x00';
      in->RemovePrefix(1);
      break;
    }
    default:
      break;
  }
  return t;
}

}  // namespace prima::access
