#include "access/version_store.h"

#include <algorithm>

#include "obs/trace.h"

namespace prima::access {

namespace {
/// The read view installed on this thread (latest-committed when null).
thread_local const ReadView* tls_read_view = nullptr;
}  // namespace

const ReadView* CurrentReadView() { return tls_read_view; }

ReadViewScope::ReadViewScope(const ReadView* view) : prev_(tls_read_view) {
  tls_read_view = view;
}

ReadViewScope::~ReadViewScope() { tls_read_view = prev_; }

VersionStore::VersionStore() : shards_(new Shard[kShards]) {}

VersionStore::Pin::~Pin() {
  if (store_ != nullptr) store_->ReleasePin(view_);
}

void VersionStore::Install(uint64_t txn, const Tid& tid, const Atom* before) {
  if (txn == 0) return;  // system/auto-commit writes are never versioned
  const uint64_t packed = tid.Pack();
  Entry e;
  e.txn = txn;
  if (before != nullptr) {
    e.has_before = true;
    e.before = *before;
  }
  {
    Shard& shard = ShardFor(packed);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.chains[packed].push_back(std::move(e));
  }
  {
    std::lock_guard<std::mutex> lock(txns_mu_);
    pending_by_txn_[txn].push_back(packed);
  }
  stats_.versions_installed.fetch_add(1, std::memory_order_relaxed);
  retained_.fetch_add(1, std::memory_order_release);
}

uint64_t VersionStore::Commit(uint64_t txn, uint64_t wal_lsn) {
  std::vector<uint64_t> tids;
  {
    std::lock_guard<std::mutex> lock(txns_mu_);
    auto it = pending_by_txn_.find(txn);
    if (it == pending_by_txn_.end()) {
      // Nothing versioned, but advance the LSN watermark new pins report.
      if (wal_lsn > last_lsn_.load(std::memory_order_relaxed)) {
        last_lsn_.store(wal_lsn, std::memory_order_relaxed);
      }
      return 0;
    }
    tids = std::move(it->second);
    pending_by_txn_.erase(it);
  }

  // Stamp THEN publish: every entry carries the new sequence before
  // last_seq_ advances, so a reader that pins seq S never finds a
  // half-stamped transaction at or below S.
  std::lock_guard<std::mutex> clk(commit_mu_);
  const uint64_t seq = last_seq_.load(std::memory_order_relaxed) + 1;
  std::vector<Tomb> tombs;
  tombs.reserve(tids.size());
  for (const uint64_t packed : tids) {
    Shard& shard = ShardFor(packed);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.chains.find(packed);
    if (it == shard.chains.end()) continue;
    for (Entry& e : it->second) {
      if (e.txn != txn || e.seq != 0) continue;
      e.seq = seq;
      e.wal_lsn = wal_lsn;
      tombs.push_back(Tomb{packed, seq});
    }
  }
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    for (Tomb& t : tombs) graveyard_.push_back(t);
  }
  if (wal_lsn > last_lsn_.load(std::memory_order_relaxed)) {
    last_lsn_.store(wal_lsn, std::memory_order_relaxed);
  }
  last_seq_.store(seq, std::memory_order_release);
  Retire();
  return seq;
}

void VersionStore::Drop(uint64_t txn) {
  std::vector<uint64_t> tids;
  {
    std::lock_guard<std::mutex> lock(txns_mu_);
    auto it = pending_by_txn_.find(txn);
    if (it == pending_by_txn_.end()) return;
    tids = std::move(it->second);
    pending_by_txn_.erase(it);
  }
  uint64_t dropped = 0;
  for (const uint64_t packed : tids) {
    Shard& shard = ShardFor(packed);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.chains.find(packed);
    if (it == shard.chains.end()) continue;
    auto& chain = it->second;
    const size_t before = chain.size();
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [txn](const Entry& e) {
                                 return e.txn == txn && e.seq == 0;
                               }),
                chain.end());
    dropped += before - chain.size();
    if (chain.empty()) shard.chains.erase(it);
  }
  if (dropped > 0) {
    stats_.versions_retired.fetch_add(dropped, std::memory_order_relaxed);
    retained_.fetch_sub(static_cast<int64_t>(dropped),
                        std::memory_order_release);
  }
}

std::shared_ptr<VersionStore::Pin> VersionStore::OpenSnapshot(
    uint64_t own_txn) {
  auto pin = std::make_shared<Pin>();
  pin->store_ = this;
  pin->view_.own_txn = own_txn;
  {
    // The pin registers under the same lock future retirements consult, so
    // a commit racing this open either sees the pin (and keeps the entry)
    // or published its seq before we read it (and the entry is visible —
    // the pin never needed it).
    std::lock_guard<std::mutex> lock(pins_mu_);
    pin->view_.seq = last_seq_.load(std::memory_order_acquire);
    PinInfo& info = pins_[pin->view_.seq];
    info.count++;
    if (info.count == 1) {
      info.lsn = last_lsn_.load(std::memory_order_relaxed);
    }
  }
  stats_.snapshots_opened.fetch_add(1, std::memory_order_relaxed);
  return pin;
}

void VersionStore::ReleasePin(const ReadView& view) {
  {
    std::lock_guard<std::mutex> lock(pins_mu_);
    auto it = pins_.find(view.seq);
    if (it != pins_.end() && --it->second.count == 0) pins_.erase(it);
  }
  Retire();
}

void VersionStore::Retire() {
  // An entry stamped with sequence C serves only views with seq < C; once
  // every live pin sits at or above C (or no pin is live), it is garbage.
  uint64_t floor;
  {
    std::lock_guard<std::mutex> lock(pins_mu_);
    floor = pins_.empty() ? UINT64_MAX : pins_.begin()->first;
  }
  std::vector<Tomb> ripe;
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    while (!graveyard_.empty() && graveyard_.front().seq <= floor) {
      ripe.push_back(graveyard_.front());
      graveyard_.pop_front();
    }
  }
  if (ripe.empty()) return;
  uint64_t retired = 0;
  for (const Tomb& t : ripe) {
    Shard& shard = ShardFor(t.packed);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.chains.find(t.packed);
    if (it == shard.chains.end()) continue;
    auto& chain = it->second;
    const size_t before = chain.size();
    chain.erase(std::remove_if(chain.begin(), chain.end(),
                               [&t](const Entry& e) {
                                 return e.seq != 0 && e.seq <= t.seq;
                               }),
                chain.end());
    retired += before - chain.size();
    if (chain.empty()) shard.chains.erase(it);
  }
  if (retired > 0) {
    stats_.versions_retired.fetch_add(retired, std::memory_order_relaxed);
    retained_.fetch_sub(static_cast<int64_t>(retired),
                        std::memory_order_release);
  }
}

VersionStore::Resolution VersionStore::Resolve(const Tid& tid,
                                               const ReadView& view) {
  Resolution r;
  if (Empty()) return r;
  const uint64_t packed = tid.Pack();
  obs::StatementTrace* trace = obs::CurrentTrace();
  const uint64_t t0 = trace != nullptr ? obs::NowNs() : 0;
  size_t depth = 0;
  {
    Shard& shard = ShardFor(packed);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.chains.find(packed);
    if (it == shard.chains.end()) return r;
    for (const Entry& e : it->second) {
      ++depth;
      const bool own = view.own_txn != 0 && e.txn == view.own_txn;
      const bool committed_visible = e.seq != 0 && e.seq <= view.seq;
      if (own || committed_visible) continue;
      // First invisible entry: its before-image is the view's version.
      if (e.has_before) {
        r.outcome = Outcome::kBefore;
        r.before = e.before;
      } else {
        r.outcome = Outcome::kInvisible;  // insert the view predates
      }
      break;
    }
  }
  stats_.chain_walks.fetch_add(1, std::memory_order_relaxed);
  switch (depth) {
    case 0:
    case 1:
      stats_.chain_depth_1.fetch_add(1, std::memory_order_relaxed);
      break;
    case 2:
      stats_.chain_depth_2.fetch_add(1, std::memory_order_relaxed);
      break;
    case 3:
      stats_.chain_depth_3.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      stats_.chain_depth_4plus.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  const bool resolved = r.outcome != Outcome::kCurrent;
  if (resolved) {
    stats_.versions_resolved.fetch_add(1, std::memory_order_relaxed);
  }
  if (trace != nullptr) {
    trace->version_chain_walks.fetch_add(1, std::memory_order_relaxed);
    trace->version_chain_ns.fetch_add(obs::NowNs() - t0,
                                      std::memory_order_relaxed);
    if (resolved) {
      trace->versions_resolved.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return r;
}

std::vector<uint64_t> VersionStore::ChainedTids(AtomTypeId type) const {
  std::vector<uint64_t> out;
  for (size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [packed, chain] : shard.chains) {
      if (!chain.empty() && Tid::Unpack(packed).type == type) {
        out.push_back(packed);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

VersionStoreStatsSnapshot VersionStore::StatsSnapshot() const {
  VersionStoreStatsSnapshot s;
  s.versions_installed =
      stats_.versions_installed.load(std::memory_order_relaxed);
  s.versions_retired = stats_.versions_retired.load(std::memory_order_relaxed);
  const int64_t retained = retained_.load(std::memory_order_acquire);
  s.versions_retained = retained > 0 ? static_cast<uint64_t>(retained) : 0;
  s.versions_resolved =
      stats_.versions_resolved.load(std::memory_order_relaxed);
  s.chain_walks = stats_.chain_walks.load(std::memory_order_relaxed);
  s.chain_depth_1 = stats_.chain_depth_1.load(std::memory_order_relaxed);
  s.chain_depth_2 = stats_.chain_depth_2.load(std::memory_order_relaxed);
  s.chain_depth_3 = stats_.chain_depth_3.load(std::memory_order_relaxed);
  s.chain_depth_4plus =
      stats_.chain_depth_4plus.load(std::memory_order_relaxed);
  s.snapshots_opened =
      stats_.snapshots_opened.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(pins_mu_);
    for (const auto& [seq, info] : pins_) s.snapshots_active += info.count;
    s.oldest_snapshot_lsn = pins_.empty() ? 0 : pins_.begin()->second.lsn;
  }
  s.commit_seq = last_seq_.load(std::memory_order_acquire);
  return s;
}

}  // namespace prima::access
