#include "recovery/log_record.h"

#include <cstring>

#include "util/coding.h"

namespace prima::recovery {

using util::Result;
using util::Slice;
using util::Status;

void LogRecord::EncodeInto(std::string* out) const {
  out->push_back(static_cast<char>(type));
  util::PutVarint64(out, txn_id);
  switch (type) {
    case LogRecordType::kBegin:
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
    case LogRecordType::kCheckpointEnd:
      break;
    case LogRecordType::kPageRedo:
      util::PutVarint64(out, segment);
      util::PutVarint64(out, page);
      util::PutVarint64(out, page_size);
      util::PutVarint64(out, ranges.size());
      for (const ByteRange& r : ranges) {
        util::PutVarint64(out, r.offset);
        util::PutLengthPrefixed(out, r.bytes);
      }
      break;
    case LogRecordType::kSegMeta:
      util::PutVarint64(out, segment);
      out->push_back(static_cast<char>(page_size_code));
      util::PutVarint64(out, page_count);
      util::PutVarint64(out, free_head);
      break;
    case LogRecordType::kStructRoot:
      util::PutVarint64(out, segment);  // structure id
      util::PutVarint64(out, page);     // new root/meta page
      break;
    case LogRecordType::kAtomUndo:
      out->push_back(static_cast<char>(op));
      out->push_back(clr ? 1 : 0);
      util::PutFixed64(out, tid);
      util::PutFixed64(out, rid);
      util::PutLengthPrefixed(out, before);
      break;
    case LogRecordType::kCompensation:
      util::PutVarint64(out, undo_count);
      util::PutVarint64(out, comp_lsns.size());
      for (uint64_t lsn : comp_lsns) util::PutVarint64(out, lsn);
      break;
    case LogRecordType::kCheckpointBegin:
      util::PutVarint64(out, active_txns.size());
      for (const auto& [id, first_lsn] : active_txns) {
        util::PutVarint64(out, id);
        util::PutVarint64(out, first_lsn);
      }
      util::PutVarint64(out, undo_low_lsn);
      break;
  }
}

namespace {
Status Truncated() { return Status::Corruption("truncated log record"); }
}  // namespace

Result<LogRecord> LogRecord::Decode(Slice in) {
  LogRecord rec;
  if (in.empty()) return Truncated();
  const uint8_t raw_type = static_cast<uint8_t>(in[0]);
  if (raw_type < static_cast<uint8_t>(LogRecordType::kBegin) ||
      raw_type > static_cast<uint8_t>(LogRecordType::kStructRoot)) {
    return Status::Corruption("unknown log record type " +
                              std::to_string(raw_type));
  }
  rec.type = static_cast<LogRecordType>(raw_type);
  in.RemovePrefix(1);
  if (!util::GetVarint64(&in, &rec.txn_id)) return Truncated();

  uint64_t v = 0;
  switch (rec.type) {
    case LogRecordType::kBegin:
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
    case LogRecordType::kCheckpointEnd:
      break;
    case LogRecordType::kPageRedo: {
      if (!util::GetVarint64(&in, &v)) return Truncated();
      rec.segment = static_cast<uint32_t>(v);
      if (!util::GetVarint64(&in, &v)) return Truncated();
      rec.page = static_cast<uint32_t>(v);
      if (!util::GetVarint64(&in, &v)) return Truncated();
      rec.page_size = static_cast<uint32_t>(v);
      uint64_t n = 0;
      if (!util::GetVarint64(&in, &n)) return Truncated();
      rec.ranges.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        ByteRange r;
        if (!util::GetVarint64(&in, &v)) return Truncated();
        r.offset = static_cast<uint32_t>(v);
        Slice bytes;
        if (!util::GetLengthPrefixed(&in, &bytes)) return Truncated();
        r.bytes.assign(bytes.data(), bytes.size());
        if (r.offset + r.bytes.size() > rec.page_size) {
          return Status::Corruption("page redo range beyond page end");
        }
        rec.ranges.push_back(std::move(r));
      }
      break;
    }
    case LogRecordType::kSegMeta:
      if (!util::GetVarint64(&in, &v)) return Truncated();
      rec.segment = static_cast<uint32_t>(v);
      if (in.empty()) return Truncated();
      rec.page_size_code = static_cast<uint8_t>(in[0]);
      in.RemovePrefix(1);
      if (!util::GetVarint64(&in, &v)) return Truncated();
      rec.page_count = static_cast<uint32_t>(v);
      if (!util::GetVarint64(&in, &v)) return Truncated();
      rec.free_head = static_cast<uint32_t>(v);
      break;
    case LogRecordType::kStructRoot:
      if (!util::GetVarint64(&in, &v)) return Truncated();
      rec.segment = static_cast<uint32_t>(v);
      if (!util::GetVarint64(&in, &v)) return Truncated();
      rec.page = static_cast<uint32_t>(v);
      break;
    case LogRecordType::kAtomUndo: {
      if (in.size() < 2) return Truncated();
      const uint8_t raw_op = static_cast<uint8_t>(in[0]);
      if (raw_op > static_cast<uint8_t>(AtomOp::kDelete)) {
        return Status::Corruption("unknown atom op");
      }
      rec.op = static_cast<AtomOp>(raw_op);
      rec.clr = in[1] != 0;
      in.RemovePrefix(2);
      if (!util::GetFixed64(&in, &rec.tid)) return Truncated();
      if (!util::GetFixed64(&in, &rec.rid)) return Truncated();
      Slice before;
      if (!util::GetLengthPrefixed(&in, &before)) return Truncated();
      rec.before.assign(before.data(), before.size());
      break;
    }
    case LogRecordType::kCompensation: {
      if (!util::GetVarint64(&in, &v)) return Truncated();
      rec.undo_count = static_cast<uint32_t>(v);
      uint64_t n = 0;
      if (!util::GetVarint64(&in, &n)) return Truncated();
      rec.comp_lsns.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        if (!util::GetVarint64(&in, &v)) return Truncated();
        rec.comp_lsns.push_back(v);
      }
      break;
    }
    case LogRecordType::kCheckpointBegin: {
      uint64_t n = 0;
      if (!util::GetVarint64(&in, &n)) return Truncated();
      rec.active_txns.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        uint64_t id = 0, first = 0;
        if (!util::GetVarint64(&in, &id) || !util::GetVarint64(&in, &first)) {
          return Truncated();
        }
        rec.active_txns.emplace_back(id, first);
      }
      if (!util::GetVarint64(&in, &rec.undo_low_lsn)) return Truncated();
      break;
    }
  }
  if (!in.empty()) {
    return Status::Corruption("trailing bytes after log record");
  }
  return rec;
}

LogRecord LogRecord::Begin(uint64_t txn) {
  LogRecord r;
  r.type = LogRecordType::kBegin;
  r.txn_id = txn;
  return r;
}

LogRecord LogRecord::Commit(uint64_t txn) {
  LogRecord r;
  r.type = LogRecordType::kCommit;
  r.txn_id = txn;
  return r;
}

LogRecord LogRecord::Abort(uint64_t txn) {
  LogRecord r;
  r.type = LogRecordType::kAbort;
  r.txn_id = txn;
  return r;
}

LogRecord LogRecord::SegMeta(uint32_t segment, uint8_t page_size_code,
                             uint32_t page_count, uint32_t free_head) {
  LogRecord r;
  r.type = LogRecordType::kSegMeta;
  r.segment = segment;
  r.page_size_code = page_size_code;
  r.page_count = page_count;
  r.free_head = free_head;
  return r;
}

LogRecord LogRecord::StructRoot(uint32_t structure_id, uint32_t root_page) {
  LogRecord r;
  r.type = LogRecordType::kStructRoot;
  r.segment = structure_id;
  r.page = root_page;
  return r;
}

LogRecord LogRecord::Compensation(uint64_t txn, std::vector<uint64_t> lsns) {
  LogRecord r;
  r.type = LogRecordType::kCompensation;
  r.txn_id = txn;
  r.undo_count = static_cast<uint32_t>(lsns.size());
  r.comp_lsns = std::move(lsns);
  return r;
}

std::vector<LogRecord::ByteRange> DiffPageImages(const char* before,
                                                 const char* after,
                                                 uint32_t page_size) {
  // Gaps shorter than this are folded into the surrounding range: each range
  // costs ~3 bytes of framing, so tiny gaps are cheaper logged than split.
  constexpr uint32_t kMergeGap = 8;
  // Excluded header fields: [0,4) checksum, [24,32) page-LSN.
  auto excluded = [](uint32_t i) { return i < 4 || (i >= 24 && i < 32); };

  std::vector<LogRecord::ByteRange> out;
  uint32_t i = 0;
  while (i < page_size) {
    if (excluded(i) || before[i] == after[i]) {
      ++i;
      continue;
    }
    // Start of a changed run; extend while changes keep coming within the
    // merge window.
    const uint32_t start = i;
    uint32_t last_change = i;
    ++i;
    while (i < page_size) {
      if (!excluded(i) && before[i] != after[i]) {
        last_change = i;
        ++i;
      } else if (i - last_change < kMergeGap && !excluded(i)) {
        ++i;
      } else {
        break;
      }
    }
    LogRecord::ByteRange r;
    r.offset = start;
    r.bytes.assign(after + start, last_change - start + 1);
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace prima::recovery
