#include "recovery/recovery_manager.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <set>
#include <unordered_map>

#include "access/tid.h"
#include "util/slice.h"
#include "util/thread_pool.h"

namespace prima::recovery {

using access::Tid;
using util::Result;
using util::Slice;
using util::Status;

Status RecoveryManager::AnalyzeAndRedo() {
  return AnalyzeAndRedoFrom(wal_->checkpoint_lsn());
}

Status RecoveryManager::MediaRecover(uint64_t dump_start_lsn) {
  // The replay has to reach all the way back to the dump's start point —
  // a gap (blocks recycled before archiving began, or no archive at all on
  // a wrapped ring) would silently truncate history and under-recover.
  if (dump_start_lsn < wal_->ScanFloor()) {
    return Status::Corruption(
        "media recovery needs the log from LSN " +
        std::to_string(dump_start_lsn) + ", but archive + live WAL only "
        "reach back to " + std::to_string(wal_->ScanFloor()));
  }
  // ... and forward to at least the dump's start: that checkpoint record
  // was in the log when the dump was taken, so a log ending below it is
  // not the log the dump depends on (the WAL file was lost or replaced).
  // Without this check an EMPTY fresh log would pass every other guard and
  // "recover" the raw fuzzy dump pages with zero replay.
  if (wal_->durable_lsn() < dump_start_lsn) {
    return Status::Corruption(
        "the live WAL ends at LSN " + std::to_string(wal_->durable_lsn()) +
        ", before the dump's start LSN " + std::to_string(dump_start_lsn) +
        " - the log the dump depends on is missing");
  }
  return AnalyzeAndRedoFrom(dump_start_lsn);
}

Status RecoveryManager::AnalyzeAndRedoFrom(uint64_t ckpt_lsn) {
  ckpt_lsn_ = ckpt_lsn;

  // Pass A: the checkpoint-begin record names the undo floor — the oldest
  // begin-LSN among transactions that were still active at the checkpoint.
  uint64_t scan_start = ckpt_lsn_;
  if (ckpt_lsn_ != 0) {
    const Status st = wal_->Scan(ckpt_lsn_, [&](const LogRecord& rec) {
      if (rec.type == LogRecordType::kCheckpointBegin) {
        scan_start = std::min(scan_start, rec.undo_low_lsn);
      }
      return Status::Aborted("first record only");  // stop the scan
    });
    if (!st.ok() && !st.IsAborted()) return st;
  }
  // A transaction still active at the scan start can push the floor below
  // it — make sure the log actually reaches that far back (on a normal
  // restart it always does: truncation never passes the undo floor).
  if (scan_start < wal_->ScanFloor()) {
    return Status::Corruption(
        "undo floor " + std::to_string(scan_start) +
        " lies below the oldest readable log byte " +
        std::to_string(wal_->ScanFloor()));
  }

  // Pass B, scan half: one single-threaded pass over the stream. Records
  // with global-order semantics (segment metadata, the transaction table,
  // atom undo collection) are handled inline; page redo records are only
  // PARTITIONED here — each page's records append to its chain in log
  // order, and the chains replay concurrently afterwards. Page redo is
  // LSN-gated per page, so records older than the on-device state
  // (including everything before the checkpoint when the undo floor
  // reaches back further) skip harmlessly during the apply phase.
  std::map<std::pair<uint32_t, uint32_t>, PageChain> chains;
  uint64_t scan_end = scan_start;
  const Status scan_st = wal_->Scan(scan_start, [&](const LogRecord& rec) {
    stats_.records_scanned++;
    max_txn_id_ = std::max(max_txn_id_, rec.txn_id);
    switch (rec.type) {
      case LogRecordType::kBegin: {
        TxnState st;
        st.first_lsn = rec.lsn;
        txns_.emplace(rec.txn_id, st);
        break;
      }
      case LogRecordType::kCommit:
      case LogRecordType::kAbort:
        txns_[rec.txn_id].finished = true;
        break;
      case LogRecordType::kPageRedo: {
        PageChain& chain = chains[{rec.segment, rec.page}];
        chain.page_size = rec.page_size;
        chain.recs.push_back(rec);
        break;
      }
      case LogRecordType::kSegMeta:
        // Pre-checkpoint bookkeeping is already captured by the segment
        // headers the checkpoint flushed; replay only from the checkpoint
        // on, in order (last record wins).
        if (rec.lsn >= ckpt_lsn_) {
          PRIMA_RETURN_IF_ERROR(storage_->RecoverSegmentMeta(
              rec.segment, static_cast<storage::PageSize>(rec.page_size_code),
              rec.page_count, rec.free_head));
          stats_.segmeta_applied++;
        }
        break;
      case LogRecordType::kAtomUndo: {
        atom_recs_.push_back(rec);
        if (!rec.clr && rec.txn_id != 0) {
          txns_[rec.txn_id].undo_stack.push_back(atom_recs_.size() - 1);
        }
        break;
      }
      case LogRecordType::kCompensation: {
        // An aborted subtree already compensated these undo entries; drop
        // exactly them (they need not be the stream's tail — a parent may
        // have worked while the child was active).
        auto& stack = txns_[rec.txn_id].undo_stack;
        const std::set<uint64_t> done(rec.comp_lsns.begin(),
                                      rec.comp_lsns.end());
        stack.erase(std::remove_if(stack.begin(), stack.end(),
                                   [&](size_t idx) {
                                     return done.count(atom_recs_[idx].lsn) >
                                            0;
                                   }),
                    stack.end());
        break;
      }
      case LogRecordType::kCheckpointBegin:
        for (const auto& [id, first_lsn] : rec.active_txns) {
          TxnState st;
          st.first_lsn = first_lsn;
          txns_.emplace(id, st);
        }
        break;
      case LogRecordType::kCheckpointEnd:
        break;
      case LogRecordType::kStructRoot:
        // Collected in log order; UndoAndFixup re-points the attached
        // structures after the access system loads its (possibly stale)
        // catalog — last record per structure wins. Records below the
        // checkpoint are already reflected in the persisted catalog, but
        // replaying them is harmless (roots only move forward in the log).
        struct_roots_.emplace_back(rec.segment, rec.page);
        break;
    }
    return Status::Ok();
  }, &scan_end);
  PRIMA_RETURN_IF_ERROR(scan_st);
  // The scan ending early is normal ONLY at the log's real tail (a torn
  // last force). Stopping short of the durable end the log's own open
  // found means a bad block inside the replayed HISTORY — in practice a
  // damaged archived block during media recovery — and silently treating
  // it as end-of-log would "recover" an ancient state.
  if (scan_end < wal_->durable_lsn()) {
    return Status::Corruption(
        "log replay stopped at LSN " + std::to_string(scan_end) +
        ", short of the durable end " + std::to_string(wal_->durable_lsn()) +
        " - the archived history is damaged");
  }

  // Pass B, apply half: the chains are a clean independence partition —
  // fan them out.
  PRIMA_RETURN_IF_ERROR(ApplyRedoChains(&chains));

  if (!torn_pages_.empty()) {
    const auto& [seg, page] = *torn_pages_.begin();
    return Status::Corruption(
        std::to_string(torn_pages_.size()) +
        " torn page(s) with no full-image record in the log (first: segment " +
        std::to_string(seg) + " page " + std::to_string(page) +
        ") — media recovery needed");
  }

  // Segment files whose zeroed header Open() skipped and whose creation the
  // replayed history never mentioned were born after the last durable log
  // force — no committed work can reference them (WAL rule), so the files
  // are crash residue and are removed rather than left to fail the next
  // restart.
  PRIMA_ASSIGN_OR_RETURN(const size_t dropped,
                         storage_->DropUnrecoveredSegments());
  stats_.torn_segments_dropped = dropped;
  return Status::Ok();
}

Status RecoveryManager::ApplyRedoChains(
    std::map<std::pair<uint32_t, uint32_t>, PageChain>* chains) {
  struct ChainTask {
    const std::pair<uint32_t, uint32_t>* key = nullptr;
    const PageChain* chain = nullptr;
    storage::StorageSystem::RedoChainResult result;
    Status status;
  };
  std::vector<ChainTask> tasks;
  tasks.reserve(chains->size());
  for (const auto& [key, chain] : *chains) {
    ChainTask t;
    t.key = &key;
    t.chain = &chain;
    tasks.push_back(std::move(t));
  }

  stats_.redo_chains = tasks.size();
  if (tasks.empty()) {
    stats_.redo_threads = 0;  // clean open: no apply phase at all
    return Status::Ok();
  }
  size_t threads = redo_threads_ == 0 ? util::ThreadPool::DefaultThreads()
                                      : redo_threads_;
  threads = std::max<size_t>(1, std::min(threads, tasks.size()));
  stats_.redo_threads = threads;

  const auto apply_one = [this](ChainTask* task) {
    const auto& [seg, page] = *task->key;
    std::vector<storage::StorageSystem::RedoEntry> entries;
    entries.reserve(task->chain->recs.size());
    for (const LogRecord& rec : task->chain->recs) {
      storage::StorageSystem::RedoEntry e;
      e.lsn = rec.lsn;
      e.ranges.reserve(rec.ranges.size());
      for (const auto& r : rec.ranges) {
        e.ranges.emplace_back(r.offset, Slice(r.bytes));
      }
      entries.push_back(std::move(e));
    }
    auto result_or = storage_->RecoverApplyPageRedoChain(
        seg, page, task->chain->page_size, entries);
    if (result_or.ok()) {
      task->result = *result_or;
    } else {
      task->status = result_or.status();
    }
  };

  // Whatever the fan-out, EVERY chain runs to completion even after
  // another chain failed: the failure path does bounded extra work, and in
  // exchange the reported error is identical at every thread count (lowest
  // first-LSN wins below) instead of depending on worker scheduling — or,
  // serially, on map iteration order.
  if (threads <= 1) {
    // Serial replay (recovery_threads = 1): same chain order, same
    // results, no pool — the degenerate case of the partition.
    for (ChainTask& task : tasks) {
      apply_one(&task);
    }
  } else {
    util::ThreadPool pool(threads);
    std::vector<std::function<void()>> jobs;
    jobs.reserve(tasks.size());
    for (ChainTask& task : tasks) {
      jobs.emplace_back([&apply_one, &task] { apply_one(&task); });
    }
    pool.SubmitAll(std::move(jobs));
    pool.Wait();
  }

  // Deterministic aggregation: counters sum in chain (page) order; the
  // winning error is the failed chain whose FIRST record is oldest —
  // exactly the record serial replay would have tripped on first.
  const ChainTask* first_error = nullptr;
  for (const ChainTask& task : tasks) {
    if (!task.status.ok()) {
      if (first_error == nullptr ||
          task.chain->recs.front().lsn < first_error->chain->recs.front().lsn) {
        first_error = &task;
      }
      continue;
    }
    stats_.redo_applied += task.result.applied;
    stats_.redo_skipped += task.result.skipped;
    if (task.result.torn) torn_pages_.insert(*task.key);
  }
  return first_error == nullptr ? Status::Ok() : first_error->status;
}

Status RecoveryManager::UndoAndFixup(access::AccessSystem* access) {
  // --- structure-root fixups, in log order --------------------------------
  // Before anything touches the access structures: the catalog the access
  // system just loaded persisted at the last checkpoint, so a B-tree root
  // split (or grid meta assignment) since then left it pointing at a page
  // that is no longer the root — index lookups would silently miss every
  // key above it even though redo replayed the tree pages perfectly.
  for (const auto& [structure_id, root_page] : struct_roots_) {
    PRIMA_RETURN_IF_ERROR(access->RecoverStructureRoot(structure_id,
                                                       root_page));
    stats_.struct_roots_applied++;
  }

  // --- address-table fixups, in log order ---------------------------------
  for (const LogRecord& rec : atom_recs_) {
    PRIMA_RETURN_IF_ERROR(access->RecoverAtomFixup(
        rec.op, Tid::Unpack(rec.tid), rec.rid));
    stats_.fixups_applied++;
  }

  // --- undo losers --------------------------------------------------------
  // Write locks are held to top-level end, so losers' write sets are
  // disjoint and per-transaction reverse order equals global reverse order
  // where it matters.
  for (auto& [txn_id, st] : txns_) {
    if (st.finished || txn_id == 0 || st.undo_stack.empty()) {
      if (!st.finished && txn_id != 0) {
        // Loser with nothing to undo still needs its abort on record.
        wal_->Append(LogRecord::Abort(txn_id));
        stats_.loser_txns++;
      }
      continue;
    }
    stats_.loser_txns++;
    access::AccessSystem::SetWalTxn(txn_id);
    std::vector<uint64_t> undone;
    undone.reserve(st.undo_stack.size());
    for (auto it = st.undo_stack.rbegin(); it != st.undo_stack.rend(); ++it) {
      const LogRecord& rec = atom_recs_[*it];
      const Tid tid = Tid::Unpack(rec.tid);
      Status s;
      switch (rec.op) {
        case AtomOp::kInsert:
          s = access->RawDeleteAtom(tid);
          break;
        case AtomOp::kModify: {
          auto before_or = access->DecodeAtom(tid.type, Slice(rec.before));
          if (!before_or.ok()) {
            s = before_or.status();
            break;
          }
          s = access->RawOverwriteAtom(*before_or);
          break;
        }
        case AtomOp::kDelete: {
          auto before_or = access->DecodeAtom(tid.type, Slice(rec.before));
          if (!before_or.ok()) {
            s = before_or.status();
            break;
          }
          s = access->RawRestoreAtom(*before_or);
          break;
        }
      }
      // Idempotence across repeated restarts: the state may already be
      // rolled back (abort raced the crash, or recovery itself reran).
      if (!s.ok() && !s.IsNotFound() && !s.IsAlreadyExists()) {
        access::AccessSystem::SetWalTxn(0);
        return s;
      }
      undone.push_back(rec.lsn);
      stats_.undo_applied++;
    }
    wal_->Append(LogRecord::Compensation(txn_id, std::move(undone)));
    wal_->Append(LogRecord::Abort(txn_id));
    access::AccessSystem::SetWalTxn(0);
  }

  // --- re-enqueue lost deferred redundancy --------------------------------
  // The pending queue died with the process; reconstruct per-atom outcomes
  // from the post-checkpoint records (structures were drained at the
  // checkpoint, so its image is what they still hold).
  struct AtomOutcome {
    bool saw_insert = false;
    bool has_before = false;
    std::string first_before;
    bool touched = false;
  };
  std::unordered_map<uint64_t, AtomOutcome> outcomes;
  for (const LogRecord& rec : atom_recs_) {
    if (rec.lsn < ckpt_lsn_) continue;
    AtomOutcome& o = outcomes[rec.tid];
    if (!o.touched) {
      o.touched = true;
      if (rec.op == AtomOp::kInsert) {
        o.saw_insert = true;
      } else {
        o.has_before = true;
        o.first_before = rec.before;
      }
    }
  }
  for (const auto& [packed, o] : outcomes) {
    const Tid tid = Tid::Unpack(packed);
    access::Atom before;
    const access::Atom* before_ptr = nullptr;
    if (o.has_before && !o.saw_insert) {
      auto before_or = access->DecodeAtom(tid.type, Slice(o.first_before));
      if (before_or.ok()) {
        before = std::move(*before_or);
        before_ptr = &before;
      }
    }
    PRIMA_RETURN_IF_ERROR(access->RecoverRedundancy(tid, before_ptr));
  }
  // Restart recovery is upstream of the checkpoint that will truncate a
  // full circular log — its own force must not be refused for headroom.
  wal_->SetCheckpointWindow(true);
  const Status force_st = wal_->ForceAll();
  wal_->SetCheckpointWindow(false);
  return force_st;
}

Status RecoveryManager::Checkpoint(access::AccessSystem* access) {
  // One checkpoint at a time: the daemon, Flush() callers, and NoSpace
  // retries may all request one concurrently, and the per-thread
  // checkpoint-window registration must not be clobbered mid-flush.
  std::lock_guard<std::mutex> ckpt_lock(ckpt_mu_);
  LogRecord begin;
  begin.type = LogRecordType::kCheckpointBegin;
  // Order matters: snapshot append_lsn BEFORE the active-txn table. A
  // transaction beginning between the two reads then appears in
  // active_txns with begin_lsn >= the snapshot and cannot lower the
  // floor; the reverse order would let it slip past both reads, and the
  // truncation this floor authorizes would recycle a live transaction's
  // begin/undo records.
  begin.undo_low_lsn = wal_->append_lsn();
  begin.active_txns = wal_->ActiveTxns();
  for (const auto& [id, first_lsn] : begin.active_txns) {
    begin.undo_low_lsn = std::min(begin.undo_low_lsn, first_lsn);
  }
  const uint64_t begin_lsn = wal_->Append(begin);

  // The checkpoint's own log traffic may consume the circular log's
  // headroom reserve: when commits are already refused with NoSpace, this
  // is the path that frees the space, so it must always get through.
  wal_->SetCheckpointWindow(true);

  // The fuzzy window: drain deferred updates, persist catalog + address
  // table, write back every dirty page (one force up front covers them
  // all, then each write-back re-checks the WAL rule).
  Status flush_st = access != nullptr ? access->Flush() : storage_->Flush();
  if (flush_st.ok()) {
    LogRecord end;
    end.type = LogRecordType::kCheckpointEnd;
    wal_->Append(end);
    flush_st = wal_->ForceAll();
  }
  wal_->SetCheckpointWindow(false);
  PRIMA_RETURN_IF_ERROR(flush_st);

  // The master write is the checkpoint's commit point — and, in circular
  // mode, the truncation's: log blocks below the undo floor become
  // recyclable in the same atomic step, so a crash anywhere before this
  // write leaves the previous checkpoint and its floor in charge.
  PRIMA_RETURN_IF_ERROR(wal_->WriteMaster(begin_lsn, begin.undo_low_lsn));
  stats_.checkpoints++;
  return Status::Ok();
}

}  // namespace prima::recovery
