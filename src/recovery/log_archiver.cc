#include "recovery/log_archiver.h"

#include <cstring>
#include <string>

#include "util/coding.h"
#include "util/crc32.h"
#include "util/slice.h"

namespace prima::recovery {

using util::Slice;
using util::Status;

LogArchiver::LogArchiver(storage::BlockDevice* device,
                         storage::SegmentId file)
    : device_(device), file_(file) {}

Status LogArchiver::CreateLocked(uint64_t base) {
  PRIMA_RETURN_IF_ERROR(device_->Create(file_, kBlockSize));
  char header[kBlockSize];
  std::memset(header, 0, sizeof(header));
  util::EncodeFixed32(header, kHeaderMagic);
  util::EncodeFixed32(header + 4, kFormatVersion);
  util::EncodeFixed64(header + 8, base);
  util::EncodeFixed32(header + 16, kWalBlockSize);
  util::EncodeFixed32(header + 20, util::Crc32(Slice(header, 20)));
  PRIMA_RETURN_IF_ERROR(device_->Write(file_, 0, header));
  PRIMA_RETURN_IF_ERROR(device_->Sync());
  base_ = end_ = base;
  return Status::Ok();
}

Status LogArchiver::Open(uint64_t base_if_created, uint64_t end_hint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!device_->Exists(file_)) {
    return CreateLocked(base_if_created);
  }
  char block[kBlockSize];
  PRIMA_RETURN_IF_ERROR(device_->Read(file_, 0, block));
  if (util::DecodeFixed32(block) != kHeaderMagic ||
      util::DecodeFixed32(block + 4) != kFormatVersion ||
      util::DecodeFixed32(block + 16) != kWalBlockSize ||
      util::DecodeFixed32(block + 20) != util::Crc32(Slice(block, 20))) {
    return Status::Corruption("log archive header is damaged");
  }
  base_ = util::DecodeFixed64(block + 8);
  // The committed end is the caller's floor: copies past it never had
  // their truncation commit, so they are rewritten (identically) by the
  // next checkpoint's archive pass.
  end_ = end_hint < base_ ? base_ : end_hint;
  return Status::Ok();
}

uint64_t LogArchiver::base_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_;
}

uint64_t LogArchiver::archived_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_;
}

Status LogArchiver::AppendBlock(uint64_t stream_offset, const char* block) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_offset % kWalBlockSize != 0) {
    return Status::InvalidArgument("archive offsets are block-aligned");
  }
  if (stream_offset < base_) {
    return Status::InvalidArgument("offset below the archive base");
  }
  if (stream_offset > end_) {
    return Status::InvalidArgument(
        "archive gap: expected offset " + std::to_string(end_) + ", got " +
        std::to_string(stream_offset));
  }
  const uint64_t block_no = 1 + (stream_offset - base_) / kWalBlockSize;
  PRIMA_RETURN_IF_ERROR(device_->Write(file_, block_no, block));
  if (stream_offset == end_) end_ = stream_offset + kWalBlockSize;
  return Status::Ok();
}

Status LogArchiver::ReadBlock(uint64_t stream_offset, char* dst) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stream_offset % kWalBlockSize != 0) {
    return Status::InvalidArgument("archive offsets are block-aligned");
  }
  if (stream_offset < base_ || stream_offset >= end_) {
    return Status::NotFound("stream offset " + std::to_string(stream_offset) +
                            " is not archived");
  }
  const uint64_t block_no = 1 + (stream_offset - base_) / kWalBlockSize;
  return device_->Read(file_, block_no, dst);
}

Status LogArchiver::Sync() { return device_->Sync(); }

Status LogArchiver::Rebase(uint64_t base) {
  std::lock_guard<std::mutex> lock(mu_);
  PRIMA_RETURN_IF_ERROR(device_->Remove(file_));
  return CreateLocked(base);
}

}  // namespace prima::recovery
