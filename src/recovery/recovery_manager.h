#ifndef PRIMA_RECOVERY_RECOVERY_MANAGER_H_
#define PRIMA_RECOVERY_RECOVERY_MANAGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "access/access_system.h"
#include "recovery/log_record.h"
#include "recovery/wal_writer.h"
#include "storage/storage_system.h"
#include "util/status.h"

namespace prima::recovery {

/// ARIES-style restart recovery over the PRIMA stack, adapted to its split
/// of state: page-resident data (record files, B-trees, grids, blobs) is
/// repeated by physiological redo, while the memory-resident address table
/// and the deferred-update queue are repeated by atom-level fixups.
///
/// Restart protocol (driven by Prima::Open, or manually in tests):
///   1. StorageSystem::Open()   — load last-flushed segment metadata
///   2. WalWriter::Open()       — master record, find end of log
///   3. AnalyzeAndRedo()        — scan: txn table + segment metadata, then
///                                repeat page history (parallel apply)
///   4. AccessSystem::Open()    — load catalog/address blobs (now redone)
///   5. UndoAndFixup(access)    — address-table fixups in log order, then
///                                roll back losers (CLR-logged), then
///                                re-enqueue lost deferred redundancy
///   6. Checkpoint(access)      — make the recovered state durable
///
/// Parallel redo: the scan (single-threaded — the log is one stream) keeps
/// every record with global-order semantics inline (segment-metadata redo,
/// the transaction table, atom undo/fixup collection) and partitions the
/// page-redo records into per-page chains. Records for one page replay in
/// log order inside their chain; chains for different pages are independent
/// (physiological redo never spans pages), so the apply phase fans them out
/// over a util::ThreadPool of `redo_threads` workers. The partition makes
/// the result bit-identical to serial replay for every thread count.
class RecoveryManager {
 public:
  struct Stats {
    uint64_t records_scanned = 0;
    uint64_t redo_applied = 0;
    uint64_t redo_skipped = 0;   ///< page-LSN already current
    uint64_t redo_chains = 0;    ///< distinct pages with redo work
    uint64_t redo_threads = 0;   ///< workers the apply phase fanned out to
    uint64_t segmeta_applied = 0;
    /// Crash-torn newborn segment files replay never reinstated — deleted
    /// as residue (see StorageSystem::DropUnrecoveredSegments).
    uint64_t torn_segments_dropped = 0;
    uint64_t fixups_applied = 0;
    uint64_t struct_roots_applied = 0;  ///< index root/meta re-points
    uint64_t loser_txns = 0;
    uint64_t undo_applied = 0;
    uint64_t checkpoints = 0;
  };

  /// `redo_threads` sizes the parallel apply phase: 1 = serial replay on
  /// the calling thread (no pool), 0 = one worker per hardware thread.
  RecoveryManager(storage::StorageSystem* storage, WalWriter* wal,
                  size_t redo_threads = 1)
      : storage_(storage), wal_(wal), redo_threads_(redo_threads) {}

  /// Phases 1+2: scan from the undo floor of the last checkpoint, building
  /// the transaction table and applying every page/segment-metadata redo
  /// record whose target is older than the record (repeating history).
  util::Status AnalyzeAndRedo();

  /// Media recovery: replay history from a FUZZY BACKUP's start point
  /// instead of the last checkpoint. Runs in AnalyzeAndRedo's slot of the
  /// restart protocol, after BackupManager::Restore rewrote the destroyed
  /// data device from the dump (and before AccessSystem::Open); the
  /// remaining phases (UndoAndFixup, post-recovery Checkpoint) are
  /// unchanged. `dump_start_lsn` is the dump's recorded start LSN — the
  /// checkpoint the dumped page images are guaranteed to reflect; the scan
  /// reaches from its undo floor through the archived log into the live
  /// WAL. Fails with Corruption if the archive + live WAL no longer cover
  /// that far back (the dump predates the archive base).
  util::Status MediaRecover(uint64_t dump_start_lsn);

  /// Phase 3: replay address-table fixups in log order, undo every loser
  /// transaction via the access layer (writing compensation records), and
  /// re-enqueue the deferred redundancy the crash dropped.
  util::Status UndoAndFixup(access::AccessSystem* access);

  /// One past the highest transaction id seen in the scan window. New
  /// transaction ids must start here — a reused id would collide with
  /// same-id records still inside the window at the next restart.
  uint64_t next_txn_id() const { return max_txn_id_ + 1; }

  /// True when AnalyzeAndRedo/UndoAndFixup changed anything — callers use
  /// it to decide whether a post-recovery checkpoint is worth taking.
  bool recovered() const {
    return stats_.redo_applied > 0 || stats_.segmeta_applied > 0 ||
           stats_.loser_txns > 0;
  }

  /// Fuzzy checkpoint: bracket a full flush (deferred-update drain,
  /// metadata persist, dirty-page write-back — each write-back forcing the
  /// log per the WAL rule) with checkpoint records, then commit it via the
  /// master record. Shortens the next restart's scan to this point, and —
  /// with a bounded WAL — atomically retires every log block below the
  /// checkpoint's undo floor for recycling (circular log truncation).
  util::Status Checkpoint(access::AccessSystem* access);

  const Stats& stats() const { return stats_; }

 private:
  struct TxnState {
    uint64_t first_lsn = 0;
    bool finished = false;             ///< saw kCommit or kAbort
    std::vector<size_t> undo_stack;    ///< indexes into atom_recs_
  };

  /// Shared body of AnalyzeAndRedo (ckpt = the log's last checkpoint) and
  /// MediaRecover (ckpt = the dump's recorded start point): the serial
  /// partitioning scan followed by the parallel chain apply.
  util::Status AnalyzeAndRedoFrom(uint64_t ckpt_lsn);

  /// One page's redo chain, in log order (the scan appends as it goes).
  struct PageChain {
    uint32_t page_size = 0;
    std::vector<LogRecord> recs;
  };

  /// Apply phase: fan `chains` out over `redo_threads_` pool workers (or
  /// replay inline when effectively serial), aggregate counters and torn
  /// pages, and return the lowest-LSN failure when any chain errored.
  util::Status ApplyRedoChains(
      std::map<std::pair<uint32_t, uint32_t>, PageChain>* chains);

  storage::StorageSystem* storage_;
  WalWriter* wal_;
  const size_t redo_threads_;

  /// Serializes Checkpoint(): the daemon, foreground Flush() callers, and
  /// the NoSpace-retry path may all ask for one concurrently, and the
  /// checkpoint window (SetCheckpointWindow) is one-at-a-time state.
  std::mutex ckpt_mu_;

  uint64_t ckpt_lsn_ = 0;
  uint64_t max_txn_id_ = 0;
  /// Pages whose on-device image is torn and whose full-image record has
  /// not been reached yet. Non-empty after the scan = unrecoverable.
  std::set<std::pair<uint32_t, uint32_t>> torn_pages_;
  std::vector<LogRecord> atom_recs_;   ///< every kAtomUndo, in scan order
  /// (structure id, new root/meta page) in scan order — replayed onto the
  /// recovered catalog before undo (a stale persisted root would orphan
  /// every index key that migrated in a post-checkpoint split).
  std::vector<std::pair<uint32_t, uint32_t>> struct_roots_;
  std::map<uint64_t, TxnState> txns_;
  Stats stats_;
};

}  // namespace prima::recovery

#endif  // PRIMA_RECOVERY_RECOVERY_MANAGER_H_
