#include "recovery/checkpoint_daemon.h"

#include <chrono>

namespace prima::recovery {

using util::Status;

CheckpointDaemon::CheckpointDaemon(RecoveryManager* recovery, WalWriter* wal,
                                   access::AccessSystem* access,
                                   Options options)
    : recovery_(recovery), wal_(wal), access_(access), options_(options) {}

CheckpointDaemon::~CheckpointDaemon() { Stop(); }

void CheckpointDaemon::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { RunLoop(); });
}

void CheckpointDaemon::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  wake_cv_.notify_all();
  done_cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool CheckpointDaemon::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_ && !stop_;
}

bool CheckpointDaemon::OverThreshold() const {
  const uint64_t capacity = wal_->capacity_bytes();
  if (capacity == 0 || options_.ring_fraction <= 0.0) return false;
  const uint64_t live = wal_->append_lsn() - wal_->truncate_lsn();
  return static_cast<double>(live) >
         options_.ring_fraction * static_cast<double>(capacity);
}

Status CheckpointDaemon::RequestCheckpoint() {
  std::unique_lock<std::mutex> lk(mu_);
  if (!running_ || stop_) {
    return Status::Aborted("checkpoint daemon is not running");
  }
  const uint64_t my_seq = ++request_seq_;
  wake_cv_.notify_all();
  done_cv_.wait(lk, [&] { return stop_ || served_seq_ >= my_seq; });
  if (served_seq_ < my_seq) {
    return Status::Aborted("checkpoint daemon stopped before serving");
  }
  return last_status_;
}

void CheckpointDaemon::RunLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    wake_cv_.wait_for(lk, std::chrono::milliseconds(options_.poll_ms),
                      [&] { return stop_ || request_seq_ > served_seq_; });
    if (stop_) break;
    const uint64_t serving = request_seq_;  // requests this run will cover
    const bool requested = serving > served_seq_;
    if (!requested && !OverThreshold()) continue;

    lk.unlock();
    const Status st = recovery_->Checkpoint(access_);
    lk.lock();

    last_status_ = st;
    if (!st.ok()) {
      stats_.failed_checkpoints++;
    } else if (requested) {
      stats_.requested_checkpoints++;
    } else {
      wal_->stats().auto_checkpoints++;
    }
    // Even a failed checkpoint serves its requests: the waiter retries its
    // force once and surfaces NoSpace itself if space really is gone —
    // blocking it forever on a wedged ring (long-running transaction pins
    // the floor) would turn an error into a hang.
    served_seq_ = serving;
    done_cv_.notify_all();
  }
}

CheckpointDaemon::Stats CheckpointDaemon::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace prima::recovery
