#ifndef PRIMA_RECOVERY_LOG_RECORD_H_
#define PRIMA_RECOVERY_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/slice.h"
#include "util/status.h"

namespace prima::recovery {

/// Typed write-ahead log records. The log is the union of three concerns:
///  - transaction outcome (begin / commit / abort),
///  - repeating history (physiological page redo + segment metadata redo),
///  - rollback (atom-level undo with before images, compensation markers),
/// plus the fuzzy-checkpoint brackets that bound the restart scan.
enum class LogRecordType : uint8_t {
  kBegin = 1,            ///< top-level transaction started
  kCommit = 2,           ///< top-level transaction committed (force point)
  kAbort = 3,            ///< top-level transaction fully rolled back
  kPageRedo = 4,         ///< physiological redo: changed byte ranges of a page
  kSegMeta = 5,          ///< segment bookkeeping redo (page_count, free list)
  kAtomUndo = 6,         ///< atom-level undo/fixup: op, tid, rid, before image
  kCompensation = 7,     ///< n most recent undo entries of txn were compensated
  kCheckpointBegin = 8,  ///< fuzzy checkpoint start: active txns, undo floor
  kCheckpointEnd = 9,    ///< fuzzy checkpoint completed
  kStructRoot = 10,      ///< access structure's root/meta page moved
};

/// Atom operation kinds mirrored from access::AccessSystem::UndoRecord.
/// Recovery cannot include access headers (access already depends on
/// recovery), so the op travels as a plain byte.
enum class AtomOp : uint8_t { kInsert = 0, kModify = 1, kDelete = 2 };

/// One log record; a tagged union over all record types. Only the fields of
/// the active type are meaningful. `lsn` is assigned by the WalWriter on
/// append and recovered by the reader on scan — it is not serialized.
struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  uint64_t lsn = 0;
  uint64_t txn_id = 0;  ///< top-level transaction, 0 = system/auto-commit

  // --- kPageRedo -----------------------------------------------------------
  struct ByteRange {
    uint32_t offset = 0;
    std::string bytes;
  };
  uint32_t segment = 0;
  uint32_t page = 0;
  uint32_t page_size = 0;
  std::vector<ByteRange> ranges;

  // --- kSegMeta ------------------------------------------------------------
  uint8_t page_size_code = 0;
  uint32_t page_count = 0;
  uint32_t free_head = 0;

  // --- kStructRoot ---------------------------------------------------------
  // A B-tree root split/collapse (or a grid file's meta-page assignment)
  // moved an access structure's entry page. The catalog records the new
  // root only in memory and persists it wholesale at the next checkpoint,
  // so without this record a crash reattaches the structure at its
  // checkpoint-time root and every key that migrated above it silently
  // vanishes from index lookups (while scans still see the atoms). Restart
  // replays these in log order — last one wins — before undo needs the
  // structures. Reuses `segment` as the structure id and `page` as the new
  // root page.

  // --- kAtomUndo -----------------------------------------------------------
  AtomOp op = AtomOp::kModify;
  bool clr = false;     ///< compensation write (redo-only, never undone)
  uint64_t tid = 0;     ///< packed surrogate
  uint64_t rid = 0;     ///< packed base-record id after the operation
  std::string before;   ///< encoded before image (kModify / kDelete)

  // --- kCompensation -------------------------------------------------------
  uint32_t undo_count = 0;  ///< undo entries cancelled (aborted subtree)
  /// LSNs of the exact kAtomUndo records compensated. A bare count would
  /// mis-cancel when a parent's operations interleave with an active
  /// child's (the child's records are not necessarily the stream's tail).
  std::vector<uint64_t> comp_lsns;

  // --- kCheckpointBegin ----------------------------------------------------
  /// (txn id, first LSN) of every transaction active at checkpoint begin.
  std::vector<std::pair<uint64_t, uint64_t>> active_txns;
  /// Restart must scan from here to see every loser's undo records.
  uint64_t undo_low_lsn = 0;

  /// Serialize the record body (everything except lsn).
  void EncodeInto(std::string* out) const;
  /// Inverse of EncodeInto; fails on malformed bytes.
  static util::Result<LogRecord> Decode(util::Slice in);

  // --- convenience constructors -------------------------------------------

  static LogRecord Begin(uint64_t txn);
  static LogRecord Commit(uint64_t txn);
  static LogRecord Abort(uint64_t txn);
  static LogRecord SegMeta(uint32_t segment, uint8_t page_size_code,
                           uint32_t page_count, uint32_t free_head);
  static LogRecord Compensation(uint64_t txn, std::vector<uint64_t> lsns);
  static LogRecord StructRoot(uint32_t structure_id, uint32_t root_page);
};

/// Compute the changed byte ranges between two page images, excluding
/// [0,4) (checksum, recomputed on write-back) and [24,32) (page-LSN,
/// stamped with this record's own LSN). Adjacent runs closer than a few
/// bytes are coalesced so the framing overhead stays small. Returns an
/// empty vector when the images agree outside the excluded fields.
std::vector<LogRecord::ByteRange> DiffPageImages(const char* before,
                                                 const char* after,
                                                 uint32_t page_size);

}  // namespace prima::recovery

#endif  // PRIMA_RECOVERY_LOG_RECORD_H_
