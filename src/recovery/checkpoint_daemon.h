#ifndef PRIMA_RECOVERY_CHECKPOINT_DAEMON_H_
#define PRIMA_RECOVERY_CHECKPOINT_DAEMON_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "recovery/recovery_manager.h"
#include "recovery/wal_writer.h"
#include "util/status.h"

namespace prima::recovery {

/// Background checkpoint scheduling for a bounded (circular) WAL: a daemon
/// thread watches the live log window and takes a fuzzy checkpoint whenever
/// it passes a ring-fraction threshold, so a well-behaved workload never
/// has to call Flush() itself and never runs the ring into NoSpace — the
/// checkpoint's truncation recycles log space before commits need it.
///
/// The daemon also serves explicit requests: a committer whose force was
/// refused with NoSpace pokes it via RequestCheckpoint() and retries once
/// the checkpoint completes (see Transaction::Commit). Requests are served
/// by a FULL checkpoint that starts after the request — one already in
/// flight when the poke arrives does not count, since it may have snapshot
/// its undo floor before the caller's records existed.
///
/// What the daemon cannot fix: a long-running transaction pins the undo
/// floor, so checkpoints stop freeing space and a small ring wedges until
/// it finishes. WalStatsSnapshot::oldest_active_lsn makes that visible.
class CheckpointDaemon {
 public:
  struct Options {
    /// Trigger threshold: checkpoint when live_bytes exceeds this fraction
    /// of the ring capacity. Half the ring is a good default — early
    /// enough that truncation lands before the reserve-backed NoSpace
    /// point (at 1 - reserve/ring, i.e. 75% for large rings), late enough
    /// not to burn checkpoints on an idle log.
    double ring_fraction = 0.5;
    /// Poll interval between threshold evaluations; explicit requests
    /// bypass it via the condition variable.
    uint64_t poll_ms = 5;
  };

  /// Threshold-triggered checkpoints are counted once, in
  /// WalStats::auto_checkpoints (surfaced through Prima::wal_stats()).
  struct Stats {
    uint64_t requested_checkpoints = 0;  ///< RequestCheckpoint-triggered
    uint64_t failed_checkpoints = 0;
  };

  /// `access` may be null (storage-only checkpoints, unit tests).
  CheckpointDaemon(RecoveryManager* recovery, WalWriter* wal,
                   access::AccessSystem* access, Options options);
  ~CheckpointDaemon();  // Stop()s

  CheckpointDaemon(const CheckpointDaemon&) = delete;
  CheckpointDaemon& operator=(const CheckpointDaemon&) = delete;

  /// Start the daemon thread. No-op when already running.
  void Start();

  /// Stop and join the daemon thread. Wakes any RequestCheckpoint waiters
  /// (they fail with Aborted). Safe to call repeatedly; the owner MUST
  /// call this before tearing down the recovery manager / WAL / access
  /// system the daemon works on.
  void Stop();

  bool running() const;

  /// Synchronous checkpoint request: wake the daemon, wait until a
  /// checkpoint that STARTED after this call completes, and return its
  /// status (Aborted if the daemon stops first). The NoSpace-retry hook
  /// for committers.
  util::Status RequestCheckpoint();

  Stats stats() const;

 private:
  void RunLoop();
  /// Threshold check against the current live window (lock-free reads of
  /// the WAL's atomics plus one brief mutex hop for the floor).
  bool OverThreshold() const;

  RecoveryManager* const recovery_;
  WalWriter* const wal_;
  access::AccessSystem* const access_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable wake_cv_;  ///< requests + stop
  std::condition_variable done_cv_;  ///< checkpoint completions
  bool running_ = false;
  bool stop_ = false;
  uint64_t request_seq_ = 0;   ///< bumped by RequestCheckpoint
  uint64_t served_seq_ = 0;    ///< requests covered by a finished checkpoint
  util::Status last_status_;   ///< outcome of the most recent checkpoint
  Stats stats_;
  std::thread thread_;
};

}  // namespace prima::recovery

#endif  // PRIMA_RECOVERY_CHECKPOINT_DAEMON_H_
