#include "recovery/crash_device.h"

#include <algorithm>

namespace prima::recovery {

using util::Status;

bool CrashingBlockDevice::Consume(uint64_t n) {
  for (;;) {
    uint64_t have = budget_.load();
    if (have == std::numeric_limits<uint64_t>::max()) return true;  // unlimited
    if (have < n) {
      dropped_ += n;
      budget_ = 0;
      return false;
    }
    if (budget_.compare_exchange_weak(have, have - n)) return true;
  }
}

Status CrashingBlockDevice::WriteChained(FileId file,
                                         const std::vector<uint64_t>& blocks,
                                         const char* src) {
  stats_.chained_writes++;
  // Consume the budget block by block so a chained transfer can tear in the
  // middle: the prefix lands, the suffix is lost.
  uint64_t have = budget_.load();
  size_t landed = blocks.size();
  if (have != std::numeric_limits<uint64_t>::max()) {
    landed = static_cast<size_t>(std::min<uint64_t>(have, blocks.size()));
    budget_ = have - landed;
    dropped_ += blocks.size() - landed;
  }
  if (landed == 0) return Status::Ok();
  stats_.blocks_written += landed;
  if (landed == blocks.size()) {
    return inner_->WriteChained(file, blocks, src);
  }
  const std::vector<uint64_t> prefix(blocks.begin(), blocks.begin() + landed);
  return inner_->WriteChained(file, prefix, src);
}

}  // namespace prima::recovery
