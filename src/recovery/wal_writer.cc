#include "recovery/wal_writer.h"

#include <algorithm>
#include <cstring>

#include "util/coding.h"
#include "util/crc32.h"
#include "util/slice.h"

namespace prima::recovery {

using util::Result;
using util::Slice;
using util::Status;

WalWriter::WalWriter(storage::BlockDevice* device, storage::SegmentId file)
    : device_(device), file_(file) {}

Status WalWriter::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!device_->Exists(file_)) {
    PRIMA_RETURN_IF_ERROR(device_->Create(file_, kBlockSize));
    append_lsn_ = durable_lsn_ = 0;
    checkpoint_lsn_ = 0;
    return Status::Ok();
  }

  // Master record: [magic][version][checkpoint_lsn][crc over bytes 0..16).
  char master[kBlockSize];
  PRIMA_RETURN_IF_ERROR(device_->Read(file_, 0, master));
  checkpoint_lsn_ = 0;
  if (util::DecodeFixed32(master) == kMasterMagic &&
      util::DecodeFixed32(master + 16) == util::Crc32(Slice(master, 16))) {
    checkpoint_lsn_ = util::DecodeFixed64(master + 8);
  }

  // Locate the durable end of log: scan from the checkpoint (or 0) until
  // the first invalid fragment.
  uint64_t end = checkpoint_lsn_;
  PRIMA_RETURN_IF_ERROR(Scan(
      checkpoint_lsn_, [](const LogRecord&) { return Status::Ok(); }, &end));

  append_lsn_ = durable_lsn_ = end;
  // Preload the partial tail block so future appends rewrite it correctly.
  pending_.clear();
  pending_base_ = (end / kBlockSize) * kBlockSize;
  if (OffsetIn(end) != 0) {
    char block[kBlockSize];
    PRIMA_RETURN_IF_ERROR(device_->Read(file_, BlockOf(end), block));
    pending_.assign(block, OffsetIn(end));
  }
  return Status::Ok();
}

uint64_t WalWriter::AppendPayloadLocked(const std::string& payload) {
  // Pad the current block if a fragment header no longer fits.
  auto in_block = [this] {
    return static_cast<uint32_t>((pending_base_ + pending_.size()) % kBlockSize);
  };
  if (kBlockSize - in_block() < kFragHeader) {
    pending_.append(kBlockSize - in_block(), '\0');
  }
  const uint64_t lsn = pending_base_ + pending_.size();

  size_t off = 0;
  bool first = true;
  do {
    const uint32_t room = kBlockSize - in_block() - kFragHeader;
    const size_t chunk = std::min<size_t>(room, payload.size() - off);
    const bool last = off + chunk == payload.size();
    const uint8_t kind = first ? (last ? kFull : kFirst)
                               : (last ? kLast : kMiddle);
    char head[kFragHeader];
    util::EncodeFixed16(head + 4, static_cast<uint16_t>(chunk));
    head[6] = static_cast<char>(kind);
    // CRC over kind + payload chunk: catches torn writes and misframed
    // garbage alike.
    uint32_t crc = util::Crc32(Slice(head + 6, 1));
    crc = util::Crc32Extend(crc, Slice(payload.data() + off, chunk));
    util::EncodeFixed32(head, crc);
    pending_.append(head, kFragHeader);
    pending_.append(payload.data() + off, chunk);
    off += chunk;
    first = false;
    if (!last && kBlockSize - in_block() < kFragHeader) {
      pending_.append(kBlockSize - in_block(), '\0');
    }
  } while (off < payload.size());

  append_lsn_ = pending_base_ + pending_.size();
  pending_records_++;
  stats_.records_appended++;
  stats_.bytes_appended += payload.size();
  return lsn;
}

uint64_t WalWriter::Append(const LogRecord& rec) {
  std::string payload;
  rec.EncodeInto(&payload);
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t lsn = AppendPayloadLocked(payload);
  switch (rec.type) {
    case LogRecordType::kBegin:
      active_txns_.emplace(rec.txn_id, lsn);
      break;
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
      active_txns_.erase(rec.txn_id);
      break;
    case LogRecordType::kCheckpointBegin:
      // New epoch: every page's next change is logged as a full image, so
      // redo from this checkpoint can rebuild pages torn on the device.
      epoch_++;
      break;
    default:
      break;
  }
  return lsn;
}

uint64_t WalWriter::LogPageDelta(storage::SegmentId segment, uint32_t page,
                                 uint32_t page_size, const char* before,
                                 const char* after) {
  LogRecord rec;
  rec.type = LogRecordType::kPageRedo;
  rec.segment = segment;
  rec.page = page;
  rec.page_size = page_size;
  rec.ranges = DiffPageImages(before, after, page_size);
  if (rec.ranges.empty()) return 0;
  return Append(rec);
}

uint64_t WalWriter::LogFullPage(storage::SegmentId segment, uint32_t page,
                                uint32_t page_size, const char* after) {
  LogRecord rec;
  rec.type = LogRecordType::kPageRedo;
  rec.segment = segment;
  rec.page = page;
  rec.page_size = page_size;
  // Full image minus the excluded header fields ([0,4) checksum, [24,32)
  // page-LSN): redo overwrites the whole page, whatever it held before.
  LogRecord::ByteRange head;
  head.offset = 4;
  head.bytes.assign(after + 4, 20);
  LogRecord::ByteRange body;
  body.offset = 32;
  body.bytes.assign(after + 32, page_size - 32);
  rec.ranges.push_back(std::move(head));
  rec.ranges.push_back(std::move(body));
  return Append(rec);
}

uint64_t WalWriter::LogSegmentMeta(storage::SegmentId segment,
                                   uint8_t page_size_code, uint32_t page_count,
                                   uint32_t free_head) {
  return Append(
      LogRecord::SegMeta(segment, page_size_code, page_count, free_head));
}

Status WalWriter::FlushBufferLocked() {
  if (pending_.empty() || pending_base_ + pending_.size() == durable_lsn_) {
    return Status::Ok();
  }
  // Seal the trailing partial block with an explicit pad fragment so the
  // next force starts on a fresh block: durable bytes are write-once, and
  // a torn write can only ever hit bytes that were never acknowledged.
  const uint32_t tail = static_cast<uint32_t>(pending_.size() % kBlockSize);
  if (tail != 0) {
    const uint32_t room = kBlockSize - tail;
    if (room >= kFragHeader) {
      const uint32_t len = room - kFragHeader;
      std::string zeros(len, '\0');
      char head[kFragHeader];
      util::EncodeFixed16(head + 4, static_cast<uint16_t>(len));
      head[6] = static_cast<char>(kPad);
      uint32_t crc = util::Crc32(Slice(head + 6, 1));
      crc = util::Crc32Extend(crc, Slice(zeros));
      util::EncodeFixed32(head, crc);
      pending_.append(head, kFragHeader);
      pending_.append(zeros);
    } else {
      pending_.append(room, '\0');
    }
  }

  const size_t n_blocks = pending_.size() / kBlockSize;
  std::vector<uint64_t> blocks(n_blocks);
  for (size_t i = 0; i < n_blocks; ++i) {
    blocks[i] = BlockOf(pending_base_) + i;
  }
  // One chained device write regardless of how many committers queued up —
  // the group-commit batch.
  PRIMA_RETURN_IF_ERROR(device_->WriteChained(file_, blocks, pending_.data()));
  PRIMA_RETURN_IF_ERROR(SyncDevice());
  durable_lsn_ = pending_base_ + pending_.size();
  append_lsn_ = durable_lsn_.load();
  stats_.forces++;
  stats_.blocks_forced += n_blocks;
  stats_.records_forced += pending_records_;
  pending_records_ = 0;

  pending_base_ += pending_.size();
  pending_.clear();
  return Status::Ok();
}

Status WalWriter::SyncDevice() { return device_->Sync(); }

Status WalWriter::ForceUpTo(uint64_t lsn) {
  if (lsn <= durable_lsn_.load()) return Status::Ok();
  std::lock_guard<std::mutex> lock(mu_);
  return FlushBufferLocked();
}

Status WalWriter::ForceAll() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushBufferLocked();
}

Status WalWriter::WriteMaster(uint64_t checkpoint_begin_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  char master[kBlockSize];
  std::memset(master, 0, sizeof(master));
  util::EncodeFixed32(master, kMasterMagic);
  util::EncodeFixed32(master + 4, 1);  // version
  util::EncodeFixed64(master + 8, checkpoint_begin_lsn);
  util::EncodeFixed32(master + 16, util::Crc32(Slice(master, 16)));
  PRIMA_RETURN_IF_ERROR(device_->Write(file_, 0, master));
  PRIMA_RETURN_IF_ERROR(SyncDevice());
  checkpoint_lsn_ = checkpoint_begin_lsn;
  return Status::Ok();
}

std::vector<std::pair<uint64_t, uint64_t>> WalWriter::ActiveTxns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {active_txns_.begin(), active_txns_.end()};
}

Status WalWriter::Scan(uint64_t from,
                       const std::function<Status(const LogRecord&)>& fn,
                       uint64_t* end_lsn) const {
  uint64_t cursor = from;
  uint64_t end = from;
  std::string assembled;
  uint64_t record_lsn = 0;
  bool in_record = false;
  char block[kBlockSize];
  uint64_t loaded_block = 0;
  bool block_valid = false;

  for (;;) {
    // Hop over tails too short for a header.
    if (kBlockSize - OffsetIn(cursor) < kFragHeader && OffsetIn(cursor) != 0) {
      cursor += kBlockSize - OffsetIn(cursor);
    }
    const uint64_t blk = BlockOf(cursor);
    if (!block_valid || blk != loaded_block) {
      if (!device_->Read(file_, blk, block).ok()) break;
      loaded_block = blk;
      block_valid = true;
    }
    const uint32_t off = OffsetIn(cursor);
    const uint32_t stored_crc = util::DecodeFixed32(block + off);
    const uint16_t len = util::DecodeFixed16(block + off + 4);
    const uint8_t kind = static_cast<uint8_t>(block[off + 6]);

    if (stored_crc == 0 && len == 0 && kind == 0) {
      // Zero header: the unwritten end of log (forced blocks are sealed
      // with pad fragments, so zeros only appear past the durable end).
      break;
    }
    if (kind < kFull || kind > kPad ||
        len > kBlockSize - off - kFragHeader) {
      break;  // torn or garbage tail
    }
    uint32_t crc = util::Crc32(Slice(block + off + 6, 1));
    crc = util::Crc32Extend(crc, Slice(block + off + kFragHeader, len));
    if (crc != stored_crc) break;  // torn write detected

    if (kind == kPad) {
      if (in_record) break;  // pad inside a record: torn tail
      cursor += kFragHeader + len;
      end = cursor;  // the seal is durable ground — resume appending after
      continue;
    }
    if (kind == kFull || kind == kFirst) {
      if (in_record) break;  // dangling unfinished record: treat as tail
      record_lsn = cursor;
      assembled.clear();
      in_record = true;
    } else if (!in_record) {
      break;  // continuation without a start
    }
    assembled.append(block + off + kFragHeader, len);
    cursor += kFragHeader + len;

    if (kind == kFull || kind == kLast) {
      auto rec_or = LogRecord::Decode(Slice(assembled));
      if (!rec_or.ok()) break;  // undecodable: stop at last good record
      rec_or->lsn = record_lsn;
      in_record = false;
      end = cursor;
      PRIMA_RETURN_IF_ERROR(fn(*rec_or));
    }
  }
  if (end_lsn != nullptr) *end_lsn = end;
  return Status::Ok();
}

}  // namespace prima::recovery
