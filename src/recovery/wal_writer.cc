#include "recovery/wal_writer.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "util/slice.h"

namespace prima::recovery {

using util::Result;
using util::Slice;
using util::Status;

namespace {
uint32_t RingBlocksFor(uint64_t max_bytes, uint32_t block_size,
                       uint32_t master_slots, uint32_t min_blocks) {
  if (max_bytes == 0) return 0;
  const uint64_t total = max_bytes / block_size;
  const uint64_t data_blocks = total > master_slots ? total - master_slots : 0;
  return static_cast<uint32_t>(std::max<uint64_t>(min_blocks, data_blocks));
}
}  // namespace

WalWriter::WalWriter(storage::BlockDevice* device, storage::SegmentId file)
    : WalWriter(device, WalOptions{}, file) {}

WalWriter::WalWriter(storage::BlockDevice* device, WalOptions options,
                     storage::SegmentId file)
    : device_(device), options_(options), file_(file) {}

uint32_t WalWriter::FragCrc(uint64_t frag_lsn, uint8_t kind,
                            const char* payload, size_t len) {
  // Seed with the fragment's absolute stream offset: a recycled ring block
  // still holds CRC-consistent fragments from a previous lap, but they were
  // sealed under a smaller offset, so they fail here and terminate the scan.
  char seed[9];
  util::EncodeFixed64(seed, frag_lsn);
  seed[8] = static_cast<char>(kind);
  uint32_t crc = util::Crc32(Slice(seed, sizeof(seed)));
  return util::Crc32Extend(crc, Slice(payload, len));
}

Status WalWriter::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_blocks_ = RingBlocksFor(options_.max_bytes, kBlockSize, kMasterSlots,
                               kMinRingBlocks);
  if (!device_->Exists(file_)) {
    if (device_->Exists(storage::kArchiveSegmentId)) {
      // An archive with no log to go with it means the WAL file was lost
      // (or the database deleted around its archive). Initializing a fresh
      // log here would destroy the only surviving history — refuse, and
      // let the operator decide (restore the WAL, or remove the archive to
      // really start over). Checked BEFORE creating anything: a fresh WAL
      // left behind by a refused attempt would make the retry take the
      // existing-log path and quietly rebase the archive away.
      return Status::Corruption(
          "a log archive exists but the log itself is missing - refusing "
          "to initialize a fresh log over surviving history");
    }
    PRIMA_RETURN_IF_ERROR(device_->Create(file_, kBlockSize));
    append_lsn_ = durable_lsn_ = 0;
    checkpoint_lsn_ = truncate_lsn_ = 0;
    // Persist the geometry immediately: the LSN -> block mapping must be
    // identical on every reopen, whatever options the next run passes.
    PRIMA_RETURN_IF_ERROR(WriteMasterSlot(0, 0, 0, 1));
    master_seq_ = 1;
    master_slot_ = 1;
    if (options_.archive) {
      archiver_ = std::make_unique<LogArchiver>(device_);
      PRIMA_RETURN_IF_ERROR(archiver_->Open(0, 0));
    }
    return Status::Ok();
  }

  // Read both master slots and adopt the valid one with the higher seq:
  // a checkpoint torn mid master-write destroys at most the slot it was
  // rewriting, never the previous checkpoint's.
  checkpoint_lsn_ = truncate_lsn_ = 0;
  master_seq_ = 0;
  master_slot_ = 0;
  for (uint32_t slot = 0; slot < kMasterSlots; ++slot) {
    char master[kBlockSize];
    PRIMA_RETURN_IF_ERROR(device_->Read(file_, slot, master));
    if (util::DecodeFixed32(master) != kMasterMagic ||
        util::DecodeFixed32(master + 4) != kFormatVersion ||
        util::DecodeFixed32(master + 40) != util::Crc32(Slice(master, 40))) {
      continue;
    }
    const uint64_t seq = util::DecodeFixed64(master + 32);
    if (seq <= master_seq_) continue;
    master_seq_ = seq;
    master_slot_ = 1 - slot;  // alternate: the next write goes elsewhere
    checkpoint_lsn_ = util::DecodeFixed64(master + 8);
    truncate_lsn_ = util::DecodeFixed64(master + 16);
    // The stored geometry is authoritative for an existing log.
    ring_blocks_ =
        static_cast<uint32_t>(util::DecodeFixed64(master + 24) / kBlockSize);
  }

  // An existing archive is honored regardless of options: letting a run
  // with the flag off recycle unarchived blocks would punch a silent hole
  // in the history that media recovery relies on. The truncation floor
  // bounds the archive's committed end (archive-before-retire: copies are
  // synced before the master write that retires their source blocks).
  if (options_.archive || device_->Exists(storage::kArchiveSegmentId)) {
    archiver_ = std::make_unique<LogArchiver>(device_);
    const uint64_t floor_start = (truncate_lsn_ / kBlockSize) * kBlockSize;
    PRIMA_RETURN_IF_ERROR(archiver_->Open(floor_start, floor_start));
    if (archiver_->base_lsn() > floor_start) {
      // An archive claiming to start above the floor cannot belong to this
      // log's history — restart it at the floor.
      PRIMA_RETURN_IF_ERROR(archiver_->Rebase(floor_start));
    }
  }

  // Locate the durable end of log: scan from the checkpoint (or 0) until
  // the first invalid fragment.
  uint64_t end = checkpoint_lsn_;
  PRIMA_RETURN_IF_ERROR(Scan(
      checkpoint_lsn_, [](const LogRecord&) { return Status::Ok(); }, &end));

  append_lsn_ = durable_lsn_ = end;
  // Preload the partial tail block so future appends rewrite it correctly
  // (only a torn force leaves a non-aligned end; those bytes were never
  // acknowledged).
  pending_.clear();
  pending_base_ = (end / kBlockSize) * kBlockSize;
  if (OffsetIn(end) != 0) {
    char block[kBlockSize];
    PRIMA_RETURN_IF_ERROR(device_->Read(file_, BlockOf(end), block));
    pending_.assign(block, OffsetIn(end));
  }
  return Status::Ok();
}

uint64_t WalWriter::AppendPayloadLocked(const std::string& payload) {
  // Pad the current block if a fragment header no longer fits.
  auto in_block = [this] {
    return static_cast<uint32_t>((pending_base_ + pending_.size()) % kBlockSize);
  };
  if (kBlockSize - in_block() < kFragHeader) {
    pending_.append(kBlockSize - in_block(), '\0');
  }
  const uint64_t lsn = pending_base_ + pending_.size();

  size_t off = 0;
  bool first = true;
  do {
    const uint32_t room = kBlockSize - in_block() - kFragHeader;
    const size_t chunk = std::min<size_t>(room, payload.size() - off);
    const bool last = off + chunk == payload.size();
    const uint8_t kind = first ? (last ? kFull : kFirst)
                               : (last ? kLast : kMiddle);
    char head[kFragHeader];
    util::EncodeFixed16(head + 4, static_cast<uint16_t>(chunk));
    head[6] = static_cast<char>(kind);
    util::EncodeFixed32(head, FragCrc(pending_base_ + pending_.size(), kind,
                                      payload.data() + off, chunk));
    pending_.append(head, kFragHeader);
    pending_.append(payload.data() + off, chunk);
    off += chunk;
    first = false;
    if (!last && kBlockSize - in_block() < kFragHeader) {
      pending_.append(kBlockSize - in_block(), '\0');
    }
  } while (off < payload.size());

  append_lsn_ = pending_base_ + pending_.size();
  pending_records_++;
  stats_.records_appended++;
  stats_.bytes_appended += payload.size();
  return lsn;
}

uint64_t WalWriter::Append(const LogRecord& rec) {
  std::string payload;
  rec.EncodeInto(&payload);
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t lsn = AppendPayloadLocked(payload);
  switch (rec.type) {
    case LogRecordType::kBegin:
      active_txns_.emplace(rec.txn_id, lsn);
      break;
    case LogRecordType::kCommit:
      pending_commits_++;
      active_txns_.erase(rec.txn_id);
      break;
    case LogRecordType::kAbort:
      active_txns_.erase(rec.txn_id);
      break;
    case LogRecordType::kCheckpointBegin:
      // New epoch: every page's next change is logged as a full image, so
      // redo from this checkpoint can rebuild pages torn on the device.
      epoch_++;
      break;
    default:
      break;
  }
  return lsn;
}

uint64_t WalWriter::LogPageDelta(storage::SegmentId segment, uint32_t page,
                                 uint32_t page_size, const char* before,
                                 const char* after) {
  LogRecord rec;
  rec.type = LogRecordType::kPageRedo;
  rec.segment = segment;
  rec.page = page;
  rec.page_size = page_size;
  rec.ranges = DiffPageImages(before, after, page_size);
  if (rec.ranges.empty()) return 0;
  return Append(rec);
}

uint64_t WalWriter::LogFullPage(storage::SegmentId segment, uint32_t page,
                               uint32_t page_size, const char* after) {
  LogRecord rec;
  rec.type = LogRecordType::kPageRedo;
  rec.segment = segment;
  rec.page = page;
  rec.page_size = page_size;
  // Full image minus the excluded header fields ([0,4) checksum, [24,32)
  // page-LSN): redo overwrites the whole page, whatever it held before.
  LogRecord::ByteRange head;
  head.offset = 4;
  head.bytes.assign(after + 4, 20);
  LogRecord::ByteRange body;
  body.offset = 32;
  body.bytes.assign(after + 32, page_size - 32);
  stats_.full_page_image_bytes += head.bytes.size() + body.bytes.size();
  rec.ranges.push_back(std::move(head));
  rec.ranges.push_back(std::move(body));
  return Append(rec);
}

uint64_t WalWriter::LogSegmentMeta(storage::SegmentId segment,
                                   uint8_t page_size_code, uint32_t page_count,
                                   uint32_t free_head) {
  return Append(
      LogRecord::SegMeta(segment, page_size_code, page_count, free_head));
}

void WalWriter::SealTailLocked() {
  const uint32_t tail = static_cast<uint32_t>(pending_.size() % kBlockSize);
  if (tail == 0) return;
  // Seal the trailing partial block with an explicit pad fragment so the
  // next force starts on a fresh block: durable bytes are write-once, and
  // a torn write can only ever hit bytes that were never acknowledged.
  const uint32_t room = kBlockSize - tail;
  if (room >= kFragHeader) {
    const uint32_t len = room - kFragHeader;
    std::string zeros(len, '\0');
    char head[kFragHeader];
    util::EncodeFixed16(head + 4, static_cast<uint16_t>(len));
    head[6] = static_cast<char>(kPad);
    util::EncodeFixed32(
        head, FragCrc(pending_base_ + pending_.size(), kPad, zeros.data(),
                      zeros.size()));
    pending_.append(head, kFragHeader);
    pending_.append(zeros);
  } else {
    pending_.append(room, '\0');
  }
  append_lsn_ = pending_base_ + pending_.size();
}

Status WalWriter::FlushAsLeaderLocked(std::unique_lock<std::mutex>& lk) {
  if (pending_.empty() || pending_base_ + pending_.size() == durable_lsn_) {
    return Status::Ok();
  }

  if (ring_blocks_ != 0) {
    // The live window (truncation floor .. batch end, rounded up to the
    // seal's block boundary) must fit in the ring — overwriting a live
    // block would eat log bytes restart still needs. Checked BEFORE
    // sealing so a refused force is side-effect free: retry loops must not
    // burn a pad block of stream space per NoSpace. Non-checkpoint forces
    // additionally keep a headroom reserve so the checkpoint that will
    // free space can always complete; the bypass is per-thread (set via
    // SetCheckpointWindow) so concurrent committers cannot drain the
    // reserve mid-checkpoint.
    const uint64_t sealed_end =
        ((pending_base_ + pending_.size() + kBlockSize - 1) / kBlockSize) *
        kBlockSize;
    const uint64_t first_live = truncate_lsn_ / kBlockSize;
    const uint64_t last = (sealed_end - 1) / kBlockSize;
    const uint64_t needed = last - first_live + 1;
    const uint64_t reserve = std::this_thread::get_id() == ckpt_thread_
                                 ? 0
                                 : std::max<uint64_t>(8, ring_blocks_ / 4);
    if (needed + reserve > ring_blocks_) {
      return Status::NoSpace(
          "WAL ring full (" + std::to_string(needed) + " of " +
          std::to_string(ring_blocks_) +
          " blocks live) - checkpoint required to recycle log space");
    }
  }
  SealTailLocked();
  const uint64_t batch_end = pending_base_ + pending_.size();

  // Swap the batch out and let appenders continue into a fresh buffer while
  // the device write runs without the lock.
  std::string batch;
  batch.swap(pending_);
  const uint64_t batch_base = pending_base_;
  const uint64_t batch_records = pending_records_;
  const uint64_t batch_commits = pending_commits_;
  pending_records_ = 0;
  pending_commits_ = 0;
  pending_base_ = batch_base + batch.size();

  const size_t n_blocks = batch.size() / kBlockSize;
  std::vector<uint64_t> blocks(n_blocks);
  for (size_t i = 0; i < n_blocks; ++i) {
    blocks[i] = BlockAt(batch_base / kBlockSize + i);
  }

  flushing_ = true;
  lk.unlock();
  // One chained device write regardless of how many committers queued up —
  // the group-commit batch — then one fsync for the whole group.
  Status st = device_->WriteChained(file_, blocks, batch.data());
  if (st.ok()) st = SyncDevice();
  lk.lock();
  flushing_ = false;

  if (st.ok()) {
    durable_lsn_ = batch_end;
    stats_.forces++;
    stats_.blocks_forced += n_blocks;
    stats_.records_forced += batch_records;
    stats_.commits_forced += batch_commits;
  } else {
    // Put the batch back in front of whatever was appended during the
    // failed write: stream offsets are unchanged, so the buffer is simply
    // contiguous again and a later force (or retry) covers everything.
    batch.append(pending_);
    pending_.swap(batch);
    pending_base_ = batch_base;
    pending_records_ += batch_records;
    pending_commits_ += batch_commits;
  }
  cv_.notify_all();
  return st;
}

Status WalWriter::ForceLocked(std::unique_lock<std::mutex>& lk, uint64_t lsn) {
  // `lsn` is a record START offset: the record is durable only once
  // durable_lsn_ moved strictly past it. `<=` here once skipped the force
  // entirely when a record began exactly at the previous batch's sealed
  // boundary — an acknowledged commit whose record lived only in memory.
  for (;;) {
    if (durable_lsn_.load() > lsn) return Status::Ok();
    if (!flushing_) break;
    // A leader is writing; its batch may already cover our LSN — and if
    // not, we lead the next (accumulated) batch ourselves.
    cv_.wait(lk);
  }
  return FlushAsLeaderLocked(lk);
}

Status WalWriter::SyncDevice() { return device_->Sync(); }

Status WalWriter::ForceUpTo(uint64_t lsn) {
  if (lsn < durable_lsn_.load()) return Status::Ok();
  std::unique_lock<std::mutex> lk(mu_);
  return ForceLocked(lk, lsn);
}

Status WalWriter::CommitForce(uint64_t lsn) {
  if (lsn < durable_lsn_.load()) return Status::Ok();
  obs::StatementTrace* trace = obs::CurrentTrace();
  const uint64_t t0 =
      (trace != nullptr || force_wait_hist_ != nullptr) ? obs::NowNs() : 0;
  std::unique_lock<std::mutex> lk(mu_);
  if (options_.commit_delay_us > 0 && !flushing_ &&
      durable_lsn_.load() <= lsn) {
    // Bounded delay window: hold the force open so concurrent committers
    // can append their records and share it. A force completed by anyone
    // else meanwhile ends the wait early. (With a force already in flight
    // the wait in ForceLocked plays that role — no extra delay.)
    stats_.commit_delay_waits++;
    cv_.wait_for(lk, std::chrono::microseconds(options_.commit_delay_us),
                 [&] { return durable_lsn_.load() > lsn; });
  }
  Status st = ForceLocked(lk, lsn);
  if (t0 != 0) {
    const uint64_t dt = obs::NowNs() - t0;
    if (force_wait_hist_ != nullptr) force_wait_hist_->Record(dt / 1000);
    if (trace != nullptr) {
      trace->commit_force_ns.fetch_add(dt, std::memory_order_relaxed);
      trace->commit_force_waits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return st;
}

Status WalWriter::ForceAll() {
  std::unique_lock<std::mutex> lk(mu_);
  return ForceLocked(lk, append_lsn_.load());
}

Status WalWriter::WriteMasterSlot(uint32_t slot, uint64_t checkpoint_begin_lsn,
                                  uint64_t truncate_lsn, uint64_t seq) {
  char master[kBlockSize];
  std::memset(master, 0, sizeof(master));
  util::EncodeFixed32(master, kMasterMagic);
  util::EncodeFixed32(master + 4, kFormatVersion);
  util::EncodeFixed64(master + 8, checkpoint_begin_lsn);
  util::EncodeFixed64(master + 16, truncate_lsn);
  util::EncodeFixed64(master + 24,
                      static_cast<uint64_t>(ring_blocks_) * kBlockSize);
  util::EncodeFixed64(master + 32, seq);
  util::EncodeFixed32(master + 40, util::Crc32(Slice(master, 40)));
  PRIMA_RETURN_IF_ERROR(device_->Write(file_, slot, master));
  return SyncDevice();
}

Status WalWriter::WriteMaster(uint64_t checkpoint_begin_lsn,
                              uint64_t truncate_up_to) {
  // Serialize master writers, but do NOT hold mu_ across the device write
  // + fsync: appenders and committers keep running during it (checkpoints
  // are frequent on a bounded log, and stalling the whole commit pipeline
  // for the master fsync would undo the group-commit win).
  std::lock_guard<std::mutex> master_lock(master_mu_);
  uint64_t new_floor, old_floor, seq;
  uint32_t slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    old_floor = truncate_lsn_.load();
    new_floor = std::max(old_floor, truncate_up_to);
    seq = master_seq_ + 1;
    slot = master_slot_;
  }
  if (archiver_ != nullptr && new_floor > old_floor) {
    // Archive-before-retire: the blocks this master write is about to
    // recycle must be durably copied first, or media recovery loses them.
    // A failure leaves the old floor in charge (the checkpoint fails, no
    // block is recycled, nothing is lost).
    PRIMA_RETURN_IF_ERROR(ArchiveUpTo(new_floor));
  }
  PRIMA_RETURN_IF_ERROR(
      WriteMasterSlot(slot, checkpoint_begin_lsn, new_floor, seq));
  // Only after the master is durable do the recycled blocks actually become
  // writable — a crash before this line leaves the old floor in charge.
  std::lock_guard<std::mutex> lock(mu_);
  checkpoint_lsn_ = checkpoint_begin_lsn;
  truncate_lsn_ = new_floor;
  master_seq_ = seq;
  master_slot_ = 1 - slot;
  return Status::Ok();
}

Status WalWriter::ArchiveUpTo(uint64_t new_floor) {
  if (ring_blocks_ == 0) return Status::Ok();  // nothing is ever recycled
  // Only whole blocks strictly below the floor's block are retired; the
  // floor block itself stays live and is archived by a later checkpoint.
  const uint64_t target = (new_floor / kBlockSize) * kBlockSize;
  // Every block in [next, target) is durable (below the forced checkpoint's
  // undo floor) and write-once (sealed by its force), so reading it off the
  // device without the log mutex is safe.
  char block[kBlockSize];
  for (uint64_t next = archiver_->archived_lsn(); next < target;
       next += kBlockSize) {
    PRIMA_RETURN_IF_ERROR(device_->Read(file_, BlockOf(next), block));
    PRIMA_RETURN_IF_ERROR(archiver_->AppendBlock(next, block));
    stats_.archived_bytes += kBlockSize;
  }
  // The copies must be durable BEFORE the master write commits the
  // recycling — from then on the archive is the only home of those bytes.
  // Synced even when nothing was copied NOW: a previous checkpoint may
  // have appended these blocks and then failed in ITS Sync, leaving them
  // in the page cache with archived_lsn() already advanced.
  return archiver_->Sync();
}

uint64_t WalWriter::ScanFloor() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_blocks_ == 0) return 0;  // the device still holds every block
  const uint64_t floor_start = (truncate_lsn_ / kBlockSize) * kBlockSize;
  if (archiver_ != nullptr && archiver_->archived_lsn() >= floor_start) {
    return archiver_->base_lsn();
  }
  return floor_start;
}

void WalWriter::SetCheckpointWindow(bool active) {
  std::lock_guard<std::mutex> lock(mu_);
  ckpt_thread_ = active ? std::this_thread::get_id() : std::thread::id{};
}

std::vector<std::pair<uint64_t, uint64_t>> WalWriter::ActiveTxns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {active_txns_.begin(), active_txns_.end()};
}

WalStatsSnapshot WalWriter::StatsSnapshot() const {
  WalStatsSnapshot s;
  s.records_appended = stats_.records_appended;
  s.bytes_appended = stats_.bytes_appended;
  s.forces = stats_.forces;
  s.blocks_forced = stats_.blocks_forced;
  s.records_forced = stats_.records_forced;
  s.commits_forced = stats_.commits_forced;
  s.commit_delay_waits = stats_.commit_delay_waits;
  s.auto_checkpoints = stats_.auto_checkpoints;
  s.archived_bytes = stats_.archived_bytes;
  s.full_page_image_bytes = stats_.full_page_image_bytes;
  s.records_per_force = stats_.GroupCommitFactor();
  s.commits_per_force = stats_.CommitsPerForce();
  std::lock_guard<std::mutex> lock(mu_);
  s.active_txns = active_txns_.size();
  bool first_txn = true;
  for (const auto& [id, first_lsn] : active_txns_) {
    if (first_txn || first_lsn < s.oldest_active_lsn) {
      s.oldest_active_lsn = first_lsn;
      first_txn = false;
    }
  }
  const uint64_t durable = durable_lsn_.load();
  s.live_bytes = append_lsn_.load() - truncate_lsn_;
  s.capacity_bytes = static_cast<uint64_t>(ring_blocks_) * kBlockSize;
  uint64_t data_blocks = (durable + kBlockSize - 1) / kBlockSize;
  if (ring_blocks_ != 0) {
    data_blocks = std::min<uint64_t>(data_blocks, ring_blocks_);
  }
  s.footprint_bytes = (kMasterSlots + data_blocks) * kBlockSize;
  return s;
}

Status WalWriter::Scan(uint64_t from,
                       const std::function<Status(const LogRecord&)>& fn,
                       uint64_t* end_lsn) const {
  uint64_t cursor = from;
  uint64_t end = from;
  std::string assembled;
  uint64_t record_lsn = 0;
  bool in_record = false;
  char block[kBlockSize];
  uint64_t loaded_logical = 0;
  bool block_valid = false;

  for (;;) {
    // Hop over tails too short for a header.
    if (kBlockSize - OffsetIn(cursor) < kFragHeader && OffsetIn(cursor) != 0) {
      cursor += kBlockSize - OffsetIn(cursor);
    }
    // Cache by LOGICAL block: in circular mode several laps share a device
    // block, and a block below the truncation floor lives in the archive
    // now — its device slot was recycled for a later lap.
    const uint64_t logical = cursor / kBlockSize;
    if (!block_valid || logical != loaded_logical) {
      const bool recycled = ring_blocks_ != 0 && archiver_ != nullptr &&
                            logical < truncate_lsn_ / kBlockSize;
      if (recycled) {
        if (!archiver_->ReadBlock(logical * kBlockSize, block).ok()) break;
      } else if (!device_->Read(file_, BlockAt(logical), block).ok()) {
        break;
      }
      loaded_logical = logical;
      block_valid = true;
    }
    const uint32_t off = OffsetIn(cursor);
    const uint32_t stored_crc = util::DecodeFixed32(block + off);
    const uint16_t len = util::DecodeFixed16(block + off + 4);
    const uint8_t kind = static_cast<uint8_t>(block[off + 6]);

    if (stored_crc == 0 && len == 0 && kind == 0) {
      // Zero header: the never-written end of log (forced blocks are sealed
      // with pad fragments, so zeros only appear past the durable end).
      break;
    }
    if (kind < kFull || kind > kPad ||
        len > kBlockSize - off - kFragHeader) {
      break;  // torn or garbage tail
    }
    // Offset-seeded CRC: fails on torn writes AND on stale fragments left
    // from a previous lap of the circular log.
    if (FragCrc(cursor, kind, block + off + kFragHeader, len) != stored_crc) {
      break;
    }

    if (kind == kPad) {
      if (in_record) break;  // pad inside a record: torn tail
      cursor += kFragHeader + len;
      end = cursor;  // the seal is durable ground — resume appending after
      continue;
    }
    if (kind == kFull || kind == kFirst) {
      if (in_record) break;  // dangling unfinished record: treat as tail
      record_lsn = cursor;
      assembled.clear();
      in_record = true;
    } else if (!in_record) {
      break;  // continuation without a start
    }
    assembled.append(block + off + kFragHeader, len);
    cursor += kFragHeader + len;

    if (kind == kFull || kind == kLast) {
      auto rec_or = LogRecord::Decode(Slice(assembled));
      if (!rec_or.ok()) break;  // undecodable: stop at last good record
      rec_or->lsn = record_lsn;
      in_record = false;
      end = cursor;
      PRIMA_RETURN_IF_ERROR(fn(*rec_or));
    }
  }
  if (end_lsn != nullptr) *end_lsn = end;
  return Status::Ok();
}

}  // namespace prima::recovery
