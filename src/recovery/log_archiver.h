#ifndef PRIMA_RECOVERY_LOG_ARCHIVER_H_
#define PRIMA_RECOVERY_LOG_ARCHIVER_H_

#include <cstdint>
#include <mutex>

#include "storage/block_device.h"
#include "storage/wal.h"
#include "util/status.h"

namespace prima::recovery {

/// The log archive: an append-only copy of WAL blocks, written and synced
/// BEFORE the circular log's truncation retires those blocks for reuse
/// (WalWriter::WriteMaster drives the copy). Together with the live WAL it
/// keeps the complete log stream readable from the archive base onwards —
/// the replay source for media recovery (rebuild a destroyed data device
/// from a fuzzy backup + the archived history).
///
/// On-disk layout (block-device file kArchiveSegmentId, 4096-byte blocks)
/// ---------------------------------------------------------------------
/// Block 0 — archive header, written once at creation:
///
///   [0,4)   magic "PARH"
///   [4,8)   format version (1)
///   [8,16)  base_offset — absolute WAL stream offset of the first
///           archived block (block-aligned). 0 when archiving began at
///           log creation; the then-current truncation floor when it was
///           enabled later (earlier blocks were already recycled — gone)
///   [16,20) wal_block_size (sanity check on open)
///   [20,24) CRC32 over bytes [0,20)
///
/// Blocks 1.. — RAW WAL blocks in stream order: block 1+k holds the WAL
/// block whose absolute stream offset is base_offset + k*kWalBlockSize,
/// byte for byte. No per-frame header is needed: every fragment inside a
/// WAL block carries a CRC seeded with its ABSOLUTE stream offset (the
/// circular log's stale-lap defense), so a log scan through the archive
/// validates — and rejects misplaced, stale, or torn archive content —
/// with exactly the machinery it uses on the live device.
///
/// The durable end is not stored: the WAL's truncation floor bounds it.
/// Archive copies are synced before the master record commits the floor
/// that retires them, so every block below the floor is durably archived;
/// anything the archiver wrote beyond that is an uncommitted copy from a
/// crashed checkpoint, and the next checkpoint simply writes it again
/// (same offsets, same bytes). WalWriter::Open passes the floor in as
/// `end_hint`.
class LogArchiver {
 public:
  static constexpr uint32_t kWalBlockSize = 4096;

  explicit LogArchiver(storage::BlockDevice* device,
                       storage::SegmentId file = storage::kArchiveSegmentId);

  /// Create the archive (base = `base_if_created`, block-aligned) or open
  /// an existing one. `end_hint` is the caller's bound on the committed
  /// end (the WAL truncation floor's block start); the archive resumes
  /// appending there.
  util::Status Open(uint64_t base_if_created, uint64_t end_hint);

  /// First archived stream byte.
  uint64_t base_lsn() const;
  /// One past the last committed archived stream byte: the archive holds
  /// exactly [base_lsn, archived_lsn).
  uint64_t archived_lsn() const;

  /// Append one WAL block. `stream_offset` must be block-aligned and equal
  /// archived_lsn() — except offsets already archived, which are accepted
  /// and rewritten in place (a crash between the copy and the master-
  /// record commit re-archives the same blocks with the same bytes).
  util::Status AppendBlock(uint64_t stream_offset, const char* block);

  /// Read the archived WAL block starting at `stream_offset` (block-
  /// aligned) into `dst` (kWalBlockSize bytes). NotFound outside
  /// [base_lsn, archived_lsn). Content is validated by the caller's
  /// fragment-CRC scan, not here.
  util::Status ReadBlock(uint64_t stream_offset, char* dst) const;

  /// Make appended blocks durable (device fsync). Must complete before
  /// the master record retires the copied blocks.
  util::Status Sync();

  /// Drop the archive and restart it empty at `base` (block-aligned).
  /// Used when coverage is already broken — e.g. a leftover archive from
  /// a deleted log describes a different stream.
  util::Status Rebase(uint64_t base);

 private:
  static constexpr uint32_t kBlockSize = kWalBlockSize;
  static constexpr uint32_t kHeaderMagic = 0x50415248u;  // "PARH"
  static constexpr uint32_t kFormatVersion = 1;

  util::Status CreateLocked(uint64_t base);

  storage::BlockDevice* device_;
  const storage::SegmentId file_;

  mutable std::mutex mu_;
  uint64_t base_ = 0;  ///< stream offset of archive block 1
  uint64_t end_ = 0;   ///< stream offset one past the last committed block
};

}  // namespace prima::recovery

#endif  // PRIMA_RECOVERY_LOG_ARCHIVER_H_
