#ifndef PRIMA_RECOVERY_WAL_WRITER_H_
#define PRIMA_RECOVERY_WAL_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <memory>

#include "recovery/log_archiver.h"
#include "recovery/log_record.h"
#include "storage/block_device.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace prima::obs {
class Histogram;
}  // namespace prima::obs

namespace prima::recovery {

struct WalStats {
  std::atomic<uint64_t> records_appended{0};
  std::atomic<uint64_t> bytes_appended{0};
  std::atomic<uint64_t> forces{0};        ///< device write batches
  std::atomic<uint64_t> blocks_forced{0};
  std::atomic<uint64_t> records_forced{0};  ///< records made durable by forces
  std::atomic<uint64_t> commits_forced{0};  ///< kCommit records among them
  std::atomic<uint64_t> commit_delay_waits{0};  ///< committers that opened a
                                                ///< delay window
  std::atomic<uint64_t> auto_checkpoints{0};  ///< checkpoints the daemon took
                                              ///< on its ring-fraction trigger
  std::atomic<uint64_t> archived_bytes{0};  ///< WAL bytes copied to the archive
                                            ///< before truncation recycled them
  /// Payload bytes of full-page-image records (torn-page protection logs a
  /// complete image on each page's first change per checkpoint epoch). The
  /// FPI share of bytes_appended is the log-volume inflation frequent
  /// checkpoints cause on hot pages — the gauge the batching/compression
  /// follow-on needs.
  std::atomic<uint64_t> full_page_image_bytes{0};

  /// Records per force > 1 means group commit is batching.
  double GroupCommitFactor() const {
    const uint64_t f = forces;
    return f == 0 ? 0.0 : static_cast<double>(records_forced) / f;
  }
  /// Commits per force > 1 means concurrent committers share device writes.
  double CommitsPerForce() const {
    const uint64_t f = forces;
    return f == 0 ? 0.0 : static_cast<double>(commits_forced) / f;
  }
};

/// Plain-value copy of the log's counters plus the derived footprint
/// numbers — what Prima::wal_stats() hands to benchmarks and monitoring
/// (WalStats itself holds atomics and cannot be copied).
struct WalStatsSnapshot {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t forces = 0;
  uint64_t blocks_forced = 0;
  uint64_t records_forced = 0;
  uint64_t commits_forced = 0;
  uint64_t commit_delay_waits = 0;
  uint64_t auto_checkpoints = 0;
  uint64_t archived_bytes = 0;
  uint64_t full_page_image_bytes = 0;
  /// Restart-recovery shape of the LAST recovery this database ran (zero
  /// on a clean open): page redo records installed, and the worker count
  /// the parallel apply phase used (1 = serial replay). Filled by
  /// Prima::wal_stats() from RecoveryManager — the log itself never
  /// replays anything.
  uint64_t redo_records_applied = 0;
  uint64_t redo_apply_threads = 0;
  double records_per_force = 0.0;
  double commits_per_force = 0.0;
  uint64_t live_bytes = 0;       ///< append_lsn - truncate_lsn
  uint64_t footprint_bytes = 0;  ///< device bytes the log occupies
  uint64_t capacity_bytes = 0;   ///< ring capacity (0 = unbounded)
  /// Transactions with a begin but no commit/abort yet, and the begin-LSN
  /// of the oldest of them (meaningful only when active_txns > 0 — LSN 0
  /// is a legitimate begin position on a fresh log). The undo floor can
  /// never pass that LSN: a long-running transaction pinning it far back
  /// stops truncation from freeing ring space, and a small ring wedges
  /// (checkpoints stop helping) until it finishes — watch this when
  /// NoSpace appears despite automatic checkpoints.
  uint64_t active_txns = 0;
  uint64_t oldest_active_lsn = 0;
};

/// WalWriter tuning knobs (plumbed from PrimaOptions).
struct WalOptions {
  /// Group-commit delay window: a top-level committer (CommitForce) waits up
  /// to this long for other committers to append their records, so one
  /// device write + fsync covers the whole group. 0 = force immediately.
  /// The window applies ONLY to commit forces — WAL-rule forces on the
  /// write-back path (ForceUpTo) never wait.
  uint64_t commit_delay_us = 0;

  /// Cap on the WAL file size. 0 = unbounded append-only log (the log file
  /// only grows, as in PR 1). Non-zero turns the segment into a circular
  /// log of max_bytes/kBlockSize - 2 data blocks (minimum 16): after a
  /// checkpoint commits via the master record, blocks below the
  /// checkpoint's undo floor are recycled and appends wrap around onto
  /// them. When the live window (append_lsn - truncate_lsn) would overflow
  /// the ring, forces fail with NoSpace until a checkpoint truncates —
  /// a headroom reserve is kept back so the checkpoint itself can always
  /// log and force its way through (see SetCheckpointWindow).
  uint64_t max_bytes = 0;

  /// Archive WAL blocks before truncation recycles them: every checkpoint's
  /// master write first copies the blocks it is about to retire into the
  /// append-only archive file (kArchiveSegmentId, CRC-framed with absolute
  /// stream offsets), keeping the whole log history readable for media
  /// recovery. Scans below the truncation floor then read transparently
  /// from the archive. Once an archive file exists it is honored on every
  /// reopen regardless of this flag, so coverage never silently gaps;
  /// enabling it on a log whose truncation already recycled blocks starts
  /// the archive at the current floor.
  bool archive = false;
};

/// The write-ahead log: a stream of CRC32-framed LogRecords stored in a
/// dedicated block-device file (kWalSegmentId).
///
/// On-disk layout
/// --------------
/// Blocks 0 and 1 are two alternating master-record slots. Each slot:
///
///   [0,4)   magic "PWAL"
///   [4,8)   format version (2)
///   [8,16)  checkpoint_lsn — LSN of the last completed checkpoint's
///           kCheckpointBegin record (0 = never checkpointed); restart
///           recovery scans forward from here
///   [16,24) truncate_lsn — the checkpoint's undo floor; every log byte
///           below it is dead and its blocks may be recycled. Writing the
///           master is the atomic commit point of both the checkpoint and
///           the truncation: a crash before the write leaves the previous
///           checkpoint (and its floor) in charge
///   [24,32) ring_bytes — circular-log capacity recorded at creation
///           (0 = unbounded). Persisted so reopen maps LSNs to blocks with
///           the same geometry regardless of the current options
///   [32,40) master_seq — monotonically increasing write counter
///   [40,44) CRC32 over bytes [0,40)
///
/// Successive master writes alternate between the two slots; Open takes
/// the valid slot with the higher master_seq. A torn master write can
/// therefore destroy at most the slot being written — the previous
/// checkpoint's slot survives intact. (With a single in-place slot, a
/// torn master write on a WRAPPED circular log would silently discard the
/// whole database: checkpoint 0 + stale-CRC early blocks = empty log.)
///
/// Blocks 2.. hold the log stream. An LSN is a byte offset into that
/// stream and NEVER wraps — only the physical mapping does:
///
///   unbounded:  block(lsn) = 2 +  lsn/kBlockSize
///   circular:   block(lsn) = 2 + (lsn/kBlockSize) % ring_blocks
///
/// Within a block, records are packed as fragments
/// `[crc32][len:u16][kind:u8][payload]`, where kind distinguishes
/// full / first / middle / last so records may span blocks (a fragment
/// never does). The CRC is seeded with the fragment's absolute stream
/// offset, then covers kind + payload: besides torn writes and misframed
/// garbage, this rejects STALE data from a previous lap of the ring — a
/// recycled block still holds old fragments with valid-looking framing,
/// but their CRCs were computed with a stream offset ring_bytes*k smaller,
/// so the scan terminates exactly at the durable end of log without any
/// per-block sequence numbers. Block tails shorter than a fragment header
/// are zero-padded; a zeroed header marks the never-written end of log.
///
/// Appends go to an in-memory group-commit buffer. A force seals the tail
/// block with a pad fragment, swaps the buffer out under the mutex, and
/// performs the chained device write + fsync with the mutex RELEASED, so
/// concurrent Append callers never block on device I/O; committers queued
/// behind an in-flight force are absorbed into the next batch.
class WalWriter : public storage::WriteAheadLog {
 public:
  static constexpr uint32_t kBlockSize = 4096;

  explicit WalWriter(storage::BlockDevice* device,
                     storage::SegmentId file = storage::kWalSegmentId);
  WalWriter(storage::BlockDevice* device, WalOptions options,
            storage::SegmentId file = storage::kWalSegmentId);

  /// Create the log file if absent (persisting the ring geometry in an
  /// initial master record); otherwise read the master record and scan
  /// forward from the checkpoint to locate the durable end of log (where
  /// appending resumes). For an existing file the persisted ring geometry
  /// is authoritative — a differing WalOptions::max_bytes is ignored.
  util::Status Open();

  // --- appending -----------------------------------------------------------

  /// Append a record to the group-commit buffer; returns its LSN. The
  /// record is durable only after a force reaches it.
  uint64_t Append(const LogRecord& rec);

  // storage::WriteAheadLog (the storage layer's view):
  uint64_t LogPageDelta(storage::SegmentId segment, uint32_t page,
                        uint32_t page_size, const char* before,
                        const char* after) override;
  uint64_t LogFullPage(storage::SegmentId segment, uint32_t page,
                       uint32_t page_size, const char* after) override;
  uint64_t LogSegmentMeta(storage::SegmentId segment, uint8_t page_size_code,
                          uint32_t page_count, uint32_t free_head) override;
  util::Status ForceUpTo(uint64_t lsn) override;
  uint64_t durable_lsn() const override { return durable_lsn_.load(); }
  uint64_t append_lsn() const override { return append_lsn_.load(); }
  uint64_t epoch() const override { return epoch_.load(); }

  /// Commit-path force: make the log durable up to `lsn`, first waiting up
  /// to WalOptions::commit_delay_us for concurrent committers to join the
  /// group (bounded delay window on a condvar; any force that covers `lsn`
  /// meanwhile ends the wait early). The device write itself happens with
  /// the buffer mutex released, so appenders keep running during the fsync.
  util::Status CommitForce(uint64_t lsn);

  /// Force everything appended so far.
  util::Status ForceAll();

  // --- checkpoint plumbing -------------------------------------------------

  /// LSN of the last completed checkpoint's kCheckpointBegin record
  /// (0 = never checkpointed). Atomic: BackupManager snapshots it from the
  /// dumping thread while the checkpoint daemon's WriteMaster advances it.
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_.load(); }

  /// Oldest live LSN: log bytes below it are recyclable (circular mode)
  /// and are never scanned again. Atomic: the checkpoint daemon polls it
  /// against append_lsn() while WriteMaster advances it.
  uint64_t truncate_lsn() const { return truncate_lsn_.load(); }

  /// Persist the master record pointing at `checkpoint_begin_lsn`, and
  /// advance the truncation floor to `truncate_up_to` (the checkpoint's
  /// undo floor; 0 or a regressing value leaves the floor unchanged).
  /// Called after kCheckpointEnd is forced; the master write is the atomic
  /// commit point of the checkpoint AND of the block recycling.
  util::Status WriteMaster(uint64_t checkpoint_begin_lsn,
                           uint64_t truncate_up_to = 0);

  /// While set, forces LED BY THE CALLING THREAD may consume the capacity
  /// headroom reserved for checkpointing. RecoveryManager::Checkpoint
  /// brackets its fuzzy window with this so a log that already refuses
  /// commit forces with NoSpace can still log + force the checkpoint that
  /// will truncate it. The bypass is scoped to the registering thread:
  /// concurrent committers keep hitting the reserve, otherwise they could
  /// consume the headroom mid-checkpoint and wedge the ring for good.
  void SetCheckpointWindow(bool active);

  /// Transactions with a kBegin but no kCommit/kAbort yet, with the LSN of
  /// their begin record (the undo floor for fuzzy checkpoints).
  std::vector<std::pair<uint64_t, uint64_t>> ActiveTxns() const;

  // --- reading -------------------------------------------------------------

  /// Invoke `fn` for every durable record from LSN `from` (which must be a
  /// record start, e.g. 0 or a checkpoint LSN, and must not lie below the
  /// truncation floor — those blocks may have been recycled) to the
  /// recovered end of log. A CRC failure (torn tail, or stale bytes from a
  /// previous ring lap) or zeroed tail terminates the scan normally; a
  /// non-OK status from `fn` aborts it. When `end_lsn` is non-null it
  /// receives the stream offset just past the last complete record — the
  /// safe append resume point (dangling fragments of a torn record are
  /// overwritten).
  util::Status Scan(uint64_t from,
                    const std::function<util::Status(const LogRecord&)>& fn,
                    uint64_t* end_lsn = nullptr) const;

  WalStats& stats() { return stats_; }
  /// Copyable counters + footprint numbers for reporting.
  WalStatsSnapshot StatsSnapshot() const;

  /// Observe every CommitForce wait (microseconds) in `h`. The histogram
  /// must outlive the writer (Prima owns both and declares telemetry
  /// first). Null disables recording. Set before concurrent commits start.
  void SetForceWaitHistogram(obs::Histogram* h) { force_wait_hist_ = h; }

  /// Ring capacity in bytes (0 = unbounded).
  uint64_t capacity_bytes() const {
    return static_cast<uint64_t>(ring_blocks_) * kBlockSize;
  }

  // --- archiving -----------------------------------------------------------

  /// The log archive, when archiving is active (WalOptions::archive, or an
  /// archive file already on the device). Null otherwise.
  LogArchiver* archiver() const { return archiver_.get(); }

  /// Lowest stream offset from which Scan can read contiguously through to
  /// the durable end of log: the archive base when the archive extends the
  /// recycled prefix, otherwise the truncation floor's block start (0 for
  /// an unbounded log, whose blocks are never recycled). Media recovery
  /// must not replay from below this.
  uint64_t ScanFloor() const;

 private:
  // Fragment kinds (leveldb-style record fragmentation). kPad seals the
  // rest of a block on force so a later force never rewrites durable bytes
  // in place — a torn rewrite could otherwise corrupt already-acknowledged
  // commits.
  enum FragKind : uint8_t { kFull = 1, kFirst = 2, kMiddle = 3, kLast = 4,
                            kPad = 5 };
  static constexpr uint32_t kFragHeader = 7;  // crc32 + len:u16 + kind:u8
  static constexpr uint32_t kMasterMagic = 0x5057414Cu;  // "PWAL"
  static constexpr uint32_t kFormatVersion = 2;
  static constexpr uint32_t kMasterSlots = 2;  // alternating master blocks
  // Floor on the circular capacity: the ring must hold at least one
  // maximum-size record (an 8K full-page image spans three blocks) plus
  // checkpoint brackets plus the checkpoint reserve.
  static constexpr uint32_t kMinRingBlocks = 16;

  // Stream offset -> device block (wraparound-aware) / in-block offset.
  uint64_t BlockOf(uint64_t lsn) const { return BlockAt(lsn / kBlockSize); }
  uint64_t BlockAt(uint64_t logical_block) const {
    return kMasterSlots + (ring_blocks_ == 0 ? logical_block
                                             : logical_block % ring_blocks_);
  }
  static uint32_t OffsetIn(uint64_t lsn) {
    return static_cast<uint32_t>(lsn % kBlockSize);
  }
  // Fragment CRC, seeded with the fragment's absolute stream offset (see
  // class comment: rejects stale previous-lap data in circular mode).
  static uint32_t FragCrc(uint64_t frag_lsn, uint8_t kind, const char* payload,
                          size_t len);

  // Append raw serialized record bytes as fragments. Caller holds mu_.
  uint64_t AppendPayloadLocked(const std::string& payload);
  // Build + write + sync one master slot. No locks taken; callers
  // serialize via master_mu_ (or run pre-concurrency, in Open).
  util::Status WriteMasterSlot(uint32_t slot, uint64_t checkpoint_begin_lsn,
                               uint64_t truncate_lsn, uint64_t seq);
  // Seal the trailing partial block of pending_ with a pad fragment.
  // Caller holds mu_.
  void SealTailLocked();
  // Copy every not-yet-archived block below `new_floor`'s block into the
  // archive and sync it. Caller holds master_mu_ (never mu_ — the copies
  // read durable, write-once blocks straight off the device).
  util::Status ArchiveUpTo(uint64_t new_floor);
  // Wait out any in-flight force, then lead one if `lsn` is still not
  // durable. `lk` owns mu_ on entry and exit.
  util::Status ForceLocked(std::unique_lock<std::mutex>& lk, uint64_t lsn);
  // Perform one force as the leader: capacity check + seal + buffer swap
  // under the lock, chained write + fsync with the lock RELEASED, then
  // publish durable_lsn_ and wake every waiter. `lk` owns mu_ on entry and
  // exit; flushing_ must be false on entry.
  util::Status FlushAsLeaderLocked(std::unique_lock<std::mutex>& lk);
  util::Status SyncDevice();

  storage::BlockDevice* device_;
  const WalOptions options_;
  const storage::SegmentId file_;
  std::unique_ptr<LogArchiver> archiver_;  ///< null = archiving off

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< force completion + delay window
  bool flushing_ = false;       ///< a leader is writing outside the lock
  // Thread currently allowed to consume the checkpoint reserve (forces it
  // leads skip the headroom check); default-constructed id = none.
  std::thread::id ckpt_thread_;
  std::mutex master_mu_;  ///< serializes master-slot writers
  // Unforced stream bytes from stream offset pending_base_ (block-aligned;
  // the first block may already be partially durable after a torn-tail
  // reopen and is rewritten whole).
  std::string pending_;
  uint64_t pending_base_ = 0;
  uint64_t pending_records_ = 0;
  uint64_t pending_commits_ = 0;
  std::atomic<uint64_t> append_lsn_{0};
  std::atomic<uint64_t> durable_lsn_{0};
  // Starts above any frame's wal_epoch (0) so the first logged change of
  // every page ships a full image.
  std::atomic<uint64_t> epoch_{1};
  // Both atomic so lock-free readers stay clean against the checkpoint
  // daemon (threshold polls read truncate_lsn_, backup snapshots read
  // checkpoint_lsn_); every write still happens under mu_.
  std::atomic<uint64_t> checkpoint_lsn_{0};
  std::atomic<uint64_t> truncate_lsn_{0};
  uint64_t master_seq_ = 0;    ///< seq of the live master slot
  uint32_t master_slot_ = 0;   ///< slot the NEXT master write targets
  uint32_t ring_blocks_ = 0;  ///< data blocks in the ring; 0 = unbounded

  // txn id -> LSN of its begin record, maintained on append.
  std::map<uint64_t, uint64_t> active_txns_;

  WalStats stats_;
  obs::Histogram* force_wait_hist_ = nullptr;
};

}  // namespace prima::recovery

#endif  // PRIMA_RECOVERY_WAL_WRITER_H_
