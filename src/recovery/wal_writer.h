#ifndef PRIMA_RECOVERY_WAL_WRITER_H_
#define PRIMA_RECOVERY_WAL_WRITER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "recovery/log_record.h"
#include "storage/block_device.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace prima::recovery {

struct WalStats {
  std::atomic<uint64_t> records_appended{0};
  std::atomic<uint64_t> bytes_appended{0};
  std::atomic<uint64_t> forces{0};        ///< device write batches
  std::atomic<uint64_t> blocks_forced{0};
  std::atomic<uint64_t> records_forced{0};  ///< records made durable by forces

  /// Records per force > 1 means group commit is batching.
  double GroupCommitFactor() const {
    const uint64_t f = forces;
    return f == 0 ? 0.0 : static_cast<double>(records_forced) / f;
  }
};

/// The write-ahead log: an append-only stream of CRC32-framed LogRecords
/// stored in a dedicated block-device file (kWalSegmentId).
///
/// Layout: block 0 is the master record (magic, version, LSN of the last
/// completed checkpoint's begin record). Blocks 1.. hold the log stream.
/// An LSN is a byte offset into that stream. Within a block, records are
/// packed as fragments `[crc32][len:u16][kind:u8][payload]`, where kind
/// distinguishes full / first / middle / last so records may span blocks
/// (a fragment never does). Block tails shorter than a fragment header are
/// zero-padded; a zeroed header mid-block marks the recovered end of log.
/// Torn tails — from a crash mid-force — fail the CRC and cleanly terminate
/// the scan, which is exactly the atomicity the log needs.
///
/// Appends go to an in-memory group-commit buffer. ForceUpTo(lsn) writes
/// every buffered block with one chained device write (and fsync on file
/// devices), so concurrent committers share a single force.
class WalWriter : public storage::WriteAheadLog {
 public:
  static constexpr uint32_t kBlockSize = 4096;

  explicit WalWriter(storage::BlockDevice* device,
                     storage::SegmentId file = storage::kWalSegmentId);

  /// Create the log file if absent; otherwise read the master record and
  /// scan forward from the checkpoint to locate the durable end of log
  /// (where appending resumes).
  util::Status Open();

  // --- appending -----------------------------------------------------------

  /// Append a record to the group-commit buffer; returns its LSN. The
  /// record is durable only after a force reaches it.
  uint64_t Append(const LogRecord& rec);

  // storage::WriteAheadLog (the storage layer's view):
  uint64_t LogPageDelta(storage::SegmentId segment, uint32_t page,
                        uint32_t page_size, const char* before,
                        const char* after) override;
  uint64_t LogFullPage(storage::SegmentId segment, uint32_t page,
                       uint32_t page_size, const char* after) override;
  uint64_t LogSegmentMeta(storage::SegmentId segment, uint8_t page_size_code,
                          uint32_t page_count, uint32_t free_head) override;
  util::Status ForceUpTo(uint64_t lsn) override;
  uint64_t durable_lsn() const override { return durable_lsn_.load(); }
  uint64_t epoch() const override { return epoch_.load(); }

  /// Force everything appended so far.
  util::Status ForceAll();

  /// Next LSN to be assigned (current end of stream).
  uint64_t append_lsn() const { return append_lsn_.load(); }

  // --- checkpoint plumbing -------------------------------------------------

  /// LSN of the last completed checkpoint's kCheckpointBegin record
  /// (0 = never checkpointed).
  uint64_t checkpoint_lsn() const { return checkpoint_lsn_; }

  /// Persist the master record pointing at `checkpoint_begin_lsn`. Called
  /// after kCheckpointEnd is forced; the master write is the checkpoint's
  /// commit point.
  util::Status WriteMaster(uint64_t checkpoint_begin_lsn);

  /// Transactions with a kBegin but no kCommit/kAbort yet, with the LSN of
  /// their begin record (the undo floor for fuzzy checkpoints).
  std::vector<std::pair<uint64_t, uint64_t>> ActiveTxns() const;

  // --- reading -------------------------------------------------------------

  /// Invoke `fn` for every durable record from LSN `from` (which must be a
  /// record start, e.g. 0 or a checkpoint LSN) to the recovered end of log.
  /// A CRC failure or zeroed tail terminates the scan normally; a non-OK
  /// status from `fn` aborts it. When `end_lsn` is non-null it receives the
  /// stream offset just past the last complete record — the safe append
  /// resume point (dangling fragments of a torn record are overwritten).
  util::Status Scan(uint64_t from,
                    const std::function<util::Status(const LogRecord&)>& fn,
                    uint64_t* end_lsn = nullptr) const;

  WalStats& stats() { return stats_; }

 private:
  // Fragment kinds (leveldb-style record fragmentation). kPad seals the
  // rest of a block on force so a later force never rewrites durable bytes
  // in place — a torn rewrite would otherwise corrupt already-acknowledged
  // commits.
  enum FragKind : uint8_t { kFull = 1, kFirst = 2, kMiddle = 3, kLast = 4,
                            kPad = 5 };
  static constexpr uint32_t kFragHeader = 7;  // crc32 + len:u16 + kind:u8
  static constexpr uint32_t kMasterMagic = 0x5057414Cu;  // "PWAL"

  // Stream offset -> device block / in-block offset.
  static uint64_t BlockOf(uint64_t lsn) { return 1 + lsn / kBlockSize; }
  static uint32_t OffsetIn(uint64_t lsn) {
    return static_cast<uint32_t>(lsn % kBlockSize);
  }

  // Append raw serialized record bytes as fragments. Caller holds mu_.
  uint64_t AppendPayloadLocked(const std::string& payload);
  // Write all buffered blocks to the device. Caller holds mu_.
  util::Status FlushBufferLocked();
  util::Status SyncDevice();

  storage::BlockDevice* device_;
  const storage::SegmentId file_;

  mutable std::mutex mu_;
  // Unforced stream bytes from stream offset pending_base_ (block-aligned;
  // the first block may already be partially durable and is rewritten whole).
  std::string pending_;
  uint64_t pending_base_ = 0;
  uint64_t pending_records_ = 0;
  std::atomic<uint64_t> append_lsn_{0};
  std::atomic<uint64_t> durable_lsn_{0};
  // Starts above any frame's wal_epoch (0) so the first logged change of
  // every page ships a full image.
  std::atomic<uint64_t> epoch_{1};
  uint64_t checkpoint_lsn_ = 0;

  // txn id -> LSN of its begin record, maintained on append.
  std::map<uint64_t, uint64_t> active_txns_;

  WalStats stats_;
};

}  // namespace prima::recovery

#endif  // PRIMA_RECOVERY_WAL_WRITER_H_
