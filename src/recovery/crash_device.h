#ifndef PRIMA_RECOVERY_CRASH_DEVICE_H_
#define PRIMA_RECOVERY_CRASH_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "storage/block_device.h"

namespace prima::recovery {

/// A fault-injecting wrapper around a shared BlockDevice: after a write
/// budget is exhausted (or CrashNow() is called) every subsequent write is
/// silently dropped — the caller sees success, the device keeps its old
/// bytes. This models a power failure with volatile write caches: chained
/// writes can tear mid-transfer, leaving some pages new and some old, which
/// is exactly the failure recovery must survive.
///
/// The wrapped device is shared so a test can "reboot": destroy the stack
/// holding one CrashingBlockDevice (its destructor flushes are dropped) and
/// reopen a fresh wrapper over the same underlying bytes.
class CrashingBlockDevice : public storage::BlockDevice {
 public:
  explicit CrashingBlockDevice(std::shared_ptr<storage::BlockDevice> inner)
      : inner_(std::move(inner)) {}

  /// Allow `blocks` more block writes, then start dropping.
  void SetWriteBudget(uint64_t blocks) { budget_ = blocks; }
  /// Drop every write from now on (pull the plug).
  void CrashNow() { budget_ = 0; }
  bool crashed() const { return budget_.load() == 0; }
  uint64_t dropped_blocks() const { return dropped_; }

  // --- BlockDevice ---------------------------------------------------------

  util::Status Create(FileId file, uint32_t block_size) override {
    if (crashed()) return util::Status::Ok();
    return inner_->Create(file, block_size);
  }
  util::Status Remove(FileId file) override {
    if (crashed()) return util::Status::Ok();
    return inner_->Remove(file);
  }
  bool Exists(FileId file) const override { return inner_->Exists(file); }
  util::Result<uint32_t> BlockSizeOf(FileId file) const override {
    return inner_->BlockSizeOf(file);
  }
  std::vector<FileId> ListFiles() const override {
    return inner_->ListFiles();
  }
  util::Status Read(FileId file, uint64_t block, char* dst) override {
    stats_.block_reads++;
    stats_.blocks_read++;
    return inner_->Read(file, block, dst);
  }
  util::Status Write(FileId file, uint64_t block, const char* src) override {
    stats_.block_writes++;
    if (!Consume(1)) return util::Status::Ok();
    stats_.blocks_written++;
    return inner_->Write(file, block, src);
  }
  util::Status ReadChained(FileId file, const std::vector<uint64_t>& blocks,
                           char* dst) override {
    stats_.chained_reads++;
    stats_.blocks_read += blocks.size();
    return inner_->ReadChained(file, blocks, dst);
  }
  util::Status WriteChained(FileId file, const std::vector<uint64_t>& blocks,
                            const char* src) override;
  util::Status Sync() override {
    if (crashed()) return util::Status::Ok();  // the sync never happened
    return inner_->Sync();
  }

  storage::BlockDevice* inner() { return inner_.get(); }

 private:
  /// Take up to `n` writes from the budget; returns false when exhausted.
  bool Consume(uint64_t n);

  std::shared_ptr<storage::BlockDevice> inner_;
  std::atomic<uint64_t> budget_{std::numeric_limits<uint64_t>::max()};
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace prima::recovery

#endif  // PRIMA_RECOVERY_CRASH_DEVICE_H_
