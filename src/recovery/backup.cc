#include "recovery/backup.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "storage/page.h"
#include "storage/wal.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "util/slice.h"

namespace prima::recovery {

using util::Result;
using util::Slice;
using util::Status;

namespace {

constexpr uint32_t kDumpBlockSize = 4096;

/// Streams the payload byte sequence into consecutive dump blocks
/// (starting at block 1), extending the payload CRC as it goes. Keeps one
/// block of state — the database is never materialized in memory.
class StreamWriter {
 public:
  StreamWriter(storage::BlockDevice* device, storage::SegmentId file)
      : device_(device), file_(file) {}

  Status Append(const char* data, size_t n) {
    crc_ = util::Crc32Extend(crc_, Slice(data, n));
    bytes_ += n;
    while (n > 0) {
      const size_t room = kDumpBlockSize - fill_;
      const size_t chunk = std::min(n, room);
      std::memcpy(block_ + fill_, data, chunk);
      fill_ += chunk;
      data += chunk;
      n -= chunk;
      if (fill_ == kDumpBlockSize) {
        PRIMA_RETURN_IF_ERROR(FlushBlock());
      }
    }
    return Status::Ok();
  }

  Status Finish() {
    if (fill_ > 0) {
      std::memset(block_ + fill_, 0, kDumpBlockSize - fill_);
      fill_ = kDumpBlockSize;
      PRIMA_RETURN_IF_ERROR(FlushBlock());
    }
    return Status::Ok();
  }

  uint64_t bytes() const { return bytes_; }
  uint32_t crc() const { return crc_; }

 private:
  Status FlushBlock() {
    PRIMA_RETURN_IF_ERROR(device_->Write(file_, next_block_++, block_));
    fill_ = 0;
    return Status::Ok();
  }

  storage::BlockDevice* device_;
  const storage::SegmentId file_;
  uint64_t next_block_ = 1;
  uint64_t bytes_ = 0;
  uint32_t crc_ = 0;
  char block_[kDumpBlockSize];
  size_t fill_ = 0;
};

/// Sequential byte reader over the payload blocks of a dump slot.
class StreamReader {
 public:
  StreamReader(storage::BlockDevice* device, storage::SegmentId file,
               uint64_t total_bytes)
      : device_(device), file_(file), remaining_(total_bytes) {}

  uint64_t remaining() const { return remaining_; }

  Status Read(char* dst, size_t n) {
    if (n > remaining_) {
      return Status::Corruption("backup stream truncated");
    }
    remaining_ -= n;
    while (n > 0) {
      if (fill_ == 0) {
        PRIMA_RETURN_IF_ERROR(device_->Read(file_, next_block_++, block_));
        fill_ = kDumpBlockSize;
      }
      const size_t chunk = std::min(n, fill_);
      std::memcpy(dst, block_ + (kDumpBlockSize - fill_), chunk);
      dst += chunk;
      fill_ -= chunk;
      n -= chunk;
    }
    return Status::Ok();
  }

 private:
  storage::BlockDevice* device_;
  const storage::SegmentId file_;
  uint64_t remaining_;
  uint64_t next_block_ = 1;
  char block_[kDumpBlockSize];
  size_t fill_ = 0;  ///< unconsumed bytes at the tail of block_
};

}  // namespace

Result<BackupManager::SlotHeader> BackupManager::ReadHeader(
    storage::BlockDevice* device, storage::SegmentId file) {
  if (!device->Exists(file)) {
    return Status::NotFound("no backup dump in this slot");
  }
  char block[kDumpBlockSize];
  PRIMA_RETURN_IF_ERROR(device->Read(file, 0, block));
  if (util::DecodeFixed32(block) != kMagic ||
      util::DecodeFixed32(block + 4) != kFormatVersion ||
      util::DecodeFixed32(block + 40) != util::Crc32(Slice(block, 40))) {
    return Status::Corruption(
        "backup header is damaged (dump incomplete or torn)");
  }
  SlotHeader slot;
  slot.info.start_lsn = util::DecodeFixed64(block + 8);
  slot.info.bytes = util::DecodeFixed64(block + 16);
  slot.info.segments = util::DecodeFixed32(block + 24);
  slot.seq = util::DecodeFixed64(block + 32);
  slot.file = file;
  return slot;
}

Result<BackupManager::SlotHeader> BackupManager::FindLive(
    storage::BlockDevice* device) {
  Result<SlotHeader> best =
      Status::NotFound("no committed backup dump on the device");
  for (storage::SegmentId file :
       {storage::kBackupSegmentId, storage::kBackupAltSegmentId}) {
    auto slot = ReadHeader(device, file);
    if (slot.ok() && (!best.ok() || slot->seq > best->seq)) {
      best = std::move(slot);
    }
  }
  return best;
}

Result<BackupInfo> BackupManager::TakeBackup(storage::StorageSystem* storage,
                                             WalWriter* wal) {
  storage::BlockDevice& device = storage->device();

  // Snapshot the replay point FIRST: every page image read from here on
  // reflects at least this checkpoint's flush (see BackupInfo::start_lsn).
  BackupInfo info;
  info.start_lsn = wal->checkpoint_lsn();

  // Alternate slots: overwrite the slot NOT holding the newest committed
  // dump, so the last good backup survives a crash mid-dump.
  uint64_t seq = 1;
  storage::SegmentId target = storage::kBackupSegmentId;
  if (auto live = FindLive(&device); live.ok()) {
    seq = live->seq + 1;
    target = live->file == storage::kBackupSegmentId
                 ? storage::kBackupAltSegmentId
                 : storage::kBackupSegmentId;
  }
  if (device.Exists(target)) {
    PRIMA_RETURN_IF_ERROR(device.Remove(target));
  }
  PRIMA_RETURN_IF_ERROR(device.Create(target, kDumpBlockSize));

  // Stream the dump: per segment a descriptor + the raw device blocks.
  // Writers keep running; per-block device reads are atomic, anything
  // fuzzier is repaired by the replay.
  StreamWriter out(&device, target);
  std::string page;
  for (storage::SegmentId seg : storage->ListSegments()) {
    PRIMA_ASSIGN_OR_RETURN(const storage::PageSize ps,
                           storage->SegmentPageSize(seg));
    PRIMA_ASSIGN_OR_RETURN(const uint32_t pages, storage->PageCount(seg));
    const uint32_t bs = storage::PageSizeBytes(ps);
    char desc[12];
    util::EncodeFixed32(desc, seg);
    util::EncodeFixed32(desc + 4, bs);
    util::EncodeFixed32(desc + 8, pages);
    PRIMA_RETURN_IF_ERROR(out.Append(desc, sizeof(desc)));
    page.resize(bs);
    for (uint32_t p = 0; p < pages; ++p) {
      PRIMA_RETURN_IF_ERROR(device.Read(seg, p, page.data()));
      PRIMA_RETURN_IF_ERROR(out.Append(page.data(), bs));
    }
    info.segments++;
  }
  PRIMA_RETURN_IF_ERROR(out.Finish());
  info.bytes = out.bytes();
  PRIMA_RETURN_IF_ERROR(device.Sync());

  // Header last: its CRC (and seq) is the dump's commit point.
  char header[kDumpBlockSize];
  std::memset(header, 0, sizeof(header));
  util::EncodeFixed32(header, kMagic);
  util::EncodeFixed32(header + 4, kFormatVersion);
  util::EncodeFixed64(header + 8, info.start_lsn);
  util::EncodeFixed64(header + 16, info.bytes);
  util::EncodeFixed32(header + 24, info.segments);
  util::EncodeFixed32(header + 28, out.crc());
  util::EncodeFixed64(header + 32, seq);
  util::EncodeFixed32(header + 40, util::Crc32(Slice(header, 40)));
  PRIMA_RETURN_IF_ERROR(device.Write(target, 0, header));
  PRIMA_RETURN_IF_ERROR(device.Sync());
  return info;
}

Result<BackupInfo> BackupManager::Restore(storage::BlockDevice* device) {
  PRIMA_ASSIGN_OR_RETURN(const SlotHeader slot, FindLive(device));

  // Pass 1: verify the whole payload stream against the header's CRC
  // before touching the device, so a bit-rotten dump fails without side
  // effects. One block of memory, incremental CRC.
  {
    char block[kDumpBlockSize];
    uint32_t crc = 0;
    uint64_t left = slot.info.bytes;
    for (uint64_t b = 1; left > 0; ++b) {
      PRIMA_RETURN_IF_ERROR(device->Read(slot.file, b, block));
      const size_t chunk =
          static_cast<size_t>(std::min<uint64_t>(kDumpBlockSize, left));
      crc = util::Crc32Extend(crc, Slice(block, chunk));
      left -= chunk;
    }
    char header[kDumpBlockSize];
    PRIMA_RETURN_IF_ERROR(device->Read(slot.file, 0, header));
    if (crc != util::DecodeFixed32(header + 28)) {
      return Status::Corruption("backup payload fails its checksum");
    }
  }

  // The device was lost: every residual data file is untrusted (zeroed,
  // partial, or stale) and goes away before the dump is written back.
  // Segments created after the dump are rebuilt entirely by the replay
  // (their first formatting logged full page images).
  for (storage::SegmentId id : device->ListFiles()) {
    if (storage::IsReservedFileId(id)) continue;
    PRIMA_RETURN_IF_ERROR(device->Remove(id));
  }

  // Pass 2: stream the segments back onto the device.
  StreamReader in(device, slot.file, slot.info.bytes);
  std::string page;
  for (uint32_t s = 0; s < slot.info.segments; ++s) {
    char desc[12];
    PRIMA_RETURN_IF_ERROR(in.Read(desc, sizeof(desc)));
    const uint32_t seg = util::DecodeFixed32(desc);
    const uint32_t bs = util::DecodeFixed32(desc + 4);
    const uint32_t pages = util::DecodeFixed32(desc + 8);
    if (bs == 0 || static_cast<uint64_t>(pages) * bs > in.remaining()) {
      return Status::Corruption("backup stream truncated in segment " +
                                std::to_string(seg));
    }
    PRIMA_RETURN_IF_ERROR(device->Create(seg, bs));
    page.resize(bs);
    for (uint32_t p = 0; p < pages; ++p) {
      PRIMA_RETURN_IF_ERROR(in.Read(page.data(), bs));
      PRIMA_RETURN_IF_ERROR(device->Write(seg, p, page.data()));
    }
  }
  PRIMA_RETURN_IF_ERROR(device->Sync());
  return slot.info;
}

}  // namespace prima::recovery
