#ifndef PRIMA_RECOVERY_BACKUP_H_
#define PRIMA_RECOVERY_BACKUP_H_

#include <cstdint>

#include "recovery/wal_writer.h"
#include "storage/block_device.h"
#include "storage/storage_system.h"
#include "util/result.h"
#include "util/status.h"

namespace prima::recovery {

/// Summary of a dump on the device (returned by TakeBackup and Restore).
struct BackupInfo {
  /// LSN of the last completed checkpoint when the dump STARTED. Replaying
  /// the log from here onto the restored pages reconstructs the crash
  /// state: every device page image the dump can have read reflects at
  /// least that checkpoint's flush (the checkpoint wrote back every page
  /// dirty before it), so the only updates a dumped page can be missing
  /// were logged at or after this LSN — and LSN-gated redo skips the ones
  /// it already has. 0 = the log was never checkpointed; replay from 0.
  uint64_t start_lsn = 0;
  uint32_t segments = 0;
  uint64_t bytes = 0;  ///< dump payload bytes (excluding framing)
};

/// Fuzzy segment-level backup (Härder's "dump" in the checkpoint/restart
/// design): an online copy of every data segment taken WITHOUT quiescing
/// writers, plus the device-level restore that media recovery starts from.
///
/// The dump is fuzzy on two axes and correct despite both:
///  - pages keep changing while they are copied: a page image that is
///    "too new" is skipped by LSN-gated redo, one that is "too old" (its
///    write-back had not happened) is repaired by replay from start_lsn;
///  - a racing write-back can even tear a page mid-copy: the epoch rule
///    guarantees that any page modified since the last checkpoint has a
///    full-image record in the replayed window, which is exactly how
///    restart rebuilds pages torn on the real device.
///
/// On-disk layout (two alternating dump slots, kBackupSegmentId and
/// kBackupAltSegmentId, 4096-byte blocks)
/// ---------------------------------------------------------------------
/// Each slot: block 0 is the dump header, written LAST (its CRC commits
/// the dump; a crash mid-dump leaves that slot unreadable, never
/// half-trusted). A new dump targets the slot NOT holding the newest
/// committed header, so the previous good backup survives until the new
/// one commits — Restore adopts the valid slot with the higher seq.
///
///   [0,4)   magic "PBAK"
///   [4,8)   format version (1)
///   [8,16)  start_lsn (see BackupInfo)
///   [16,24) payload byte length
///   [24,28) segment count
///   [28,32) CRC32 over the whole payload stream
///   [32,40) seq — monotonically increasing dump counter
///   [40,44) CRC32 over header bytes [0,40)
///
/// Blocks 1.. — the payload stream, packed back to back: per segment
///   [seg_id:u32][block_size:u32][block_count:u32] followed by block_count
///   raw device blocks. Both TakeBackup and Restore stream it block by
///   block (incremental CRC) — the database is never materialized in
///   memory.
class BackupManager {
 public:
  /// Take a fuzzy dump of every data segment into the non-live backup
  /// slot on the same device (modeling separate backup media). Writers
  /// may keep running throughout.
  static util::Result<BackupInfo> TakeBackup(storage::StorageSystem* storage,
                                             WalWriter* wal);

  /// Media recovery, phase 1: destroy every residual data segment (their
  /// content is untrusted — the device was lost) and rewrite them from the
  /// dump. Runs at device level BEFORE StorageSystem::Open; the caller
  /// then replays the log from the returned start_lsn
  /// (RecoveryManager::MediaRecover) to roll the restored pages forward.
  static util::Result<BackupInfo> Restore(storage::BlockDevice* device);

 private:
  static constexpr uint32_t kMagic = 0x5042414Bu;  // "PBAK"
  static constexpr uint32_t kFormatVersion = 1;

  struct SlotHeader {
    BackupInfo info;
    uint64_t seq = 0;
    storage::SegmentId file = 0;
  };

  /// Read and validate one slot's header. NotFound/Corruption when the
  /// slot holds no committed dump.
  static util::Result<SlotHeader> ReadHeader(storage::BlockDevice* device,
                                             storage::SegmentId file);
  /// The newest committed dump across both slots.
  static util::Result<SlotHeader> FindLive(storage::BlockDevice* device);
};

}  // namespace prima::recovery

#endif  // PRIMA_RECOVERY_BACKUP_H_
