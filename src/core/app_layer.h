#ifndef PRIMA_CORE_APP_LAYER_H_
#define PRIMA_CORE_APP_LAYER_H_

#include <map>
#include <string>

#include "mql/data_system.h"

namespace prima::core {

/// A checked-out molecule set held in the application-layer object buffer.
/// The application mutates the atoms in place; Checkin writes the diff
/// back.
class Checkout {
 public:
  mql::MoleculeSet& molecules() { return current_; }
  const mql::MoleculeSet& molecules() const { return current_; }

  /// Convenience: locate an atom copy by surrogate (nullptr if absent).
  access::Atom* FindAtom(const access::Tid& tid);

 private:
  friend class ObjectBuffer;
  mql::MoleculeSet current_;
  std::map<uint64_t, access::Atom> originals_;  // packed tid -> as-checked-out
};

struct AppLayerStats {
  std::atomic<uint64_t> checkouts{0};
  std::atomic<uint64_t> checkins{0};
  std::atomic<uint64_t> atoms_transferred{0};
  std::atomic<uint64_t> atoms_written_back{0};
};

/// The application layer of Fig. 3.1 as used for workstation-host coupling
/// (paper §4): molecules are transferred set-oriented into an object buffer
/// close to the application ("checkout"); the DBMS work then happens
/// locally on the buffered objects, and modified molecules move back to
/// PRIMA at commit time ("checkin"). Here workstation and host share a
/// process — the code path (set transfer, local mutation, diff-based
/// write-back) is the same; see DESIGN.md §3.
class ObjectBuffer {
 public:
  explicit ObjectBuffer(mql::DataSystem* data) : data_(data) {}

  /// Evaluate the query and transfer the molecule set into the buffer.
  util::Result<Checkout> CheckoutQuery(const std::string& query_text);

  /// Write modified attributes back atom-by-atom (reference attributes are
  /// written through Connect/Disconnect semantics by the access system).
  util::Status Checkin(Checkout* checkout);

  AppLayerStats& stats() { return stats_; }

 private:
  mql::DataSystem* data_;
  AppLayerStats stats_;
};

}  // namespace prima::core

#endif  // PRIMA_CORE_APP_LAYER_H_
