#include "core/app_layer.h"

namespace prima::core {

using access::Atom;
using access::AttrValue;
using util::Result;
using util::Status;

Atom* Checkout::FindAtom(const access::Tid& tid) {
  for (auto& m : current_.molecules) {
    for (auto& g : m.groups) {
      for (auto& a : g.atoms) {
        if (a.tid == tid) return &a;
      }
    }
  }
  return nullptr;
}

Result<Checkout> ObjectBuffer::CheckoutQuery(const std::string& query_text) {
  Checkout out;
  PRIMA_ASSIGN_OR_RETURN(out.current_, data_->ExecuteQuery(query_text));
  for (const auto& m : out.current_.molecules) {
    for (const auto& g : m.groups) {
      for (const auto& a : g.atoms) {
        out.originals_.emplace(a.tid.Pack(), a);
        stats_.atoms_transferred++;
      }
    }
  }
  stats_.checkouts++;
  return out;
}

Status ObjectBuffer::Checkin(Checkout* checkout) {
  access::AccessSystem& access = data_->access();
  for (const auto& m : checkout->current_.molecules) {
    for (const auto& g : m.groups) {
      for (const Atom& a : g.atoms) {
        auto orig = checkout->originals_.find(a.tid.Pack());
        if (orig == checkout->originals_.end()) continue;
        std::vector<AttrValue> changes;
        for (size_t i = 0; i < a.attrs.size(); ++i) {
          if (i >= orig->second.attrs.size()) break;
          if (!a.attrs[i].Equals(orig->second.attrs[i])) {
            changes.push_back(
                AttrValue{static_cast<uint16_t>(i), a.attrs[i]});
          }
        }
        if (!changes.empty()) {
          PRIMA_RETURN_IF_ERROR(access.ModifyAtom(a.tid, std::move(changes)));
          stats_.atoms_written_back++;
        }
      }
    }
  }
  stats_.checkins++;
  // Refresh originals so a Checkout can be checked in repeatedly.
  checkout->originals_.clear();
  for (const auto& m : checkout->current_.molecules) {
    for (const auto& g : m.groups) {
      for (const auto& a : g.atoms) {
        checkout->originals_.emplace(a.tid.Pack(), a);
      }
    }
  }
  return Status::Ok();
}

}  // namespace prima::core
