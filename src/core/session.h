#ifndef PRIMA_CORE_SESSION_H_
#define PRIMA_CORE_SESSION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/transaction.h"
#include "mql/data_system.h"

namespace prima::core {

class Session;

/// How a session's queries read.
///
/// kLatestCommitted is the historical behavior: read whatever the access
/// system holds at each assembly, no read locks taken. kSnapshot pins a
/// consistent read view per statement/cursor (or per transaction, inside
/// BEGIN WORK READ ONLY): every atom resolves against the in-memory version
/// chains to its state as of the pin, still without a single lock — writers
/// never wait for these readers and vice versa.
enum class Isolation : uint8_t {
  kLatestCommitted = 0,
  kSnapshot = 1,
};

/// A compiled MQL statement (paper §3.1 separates *preparation* — query
/// validation & modification, simplification, and access-path selection —
/// from *execution*): parse + semantic analysis run once in
/// Session::Prepare, `?` / `:name` placeholders are bound per execution,
/// and the query plan is cached. The plan is re-computed ONLY when a bound
/// value it embeds changes (a placeholder feeding the root-access choice,
/// e.g. an eq-key placeholder); re-binding parameters that live elsewhere
/// in the WHERE clause reuses the plan verbatim.
///
/// A prepared statement belongs to its session (same threading contract)
/// and must not outlive it.
class PreparedStatement {
 public:
  PreparedStatement(PreparedStatement&&) = default;
  PreparedStatement& operator=(PreparedStatement&&) = default;

  size_t param_count() const { return stmt_.params.size(); }

  /// Bind a value to a placeholder by 0-based position (both `?` and
  /// `:name` slots count, in placeholder order).
  util::Status Bind(size_t index, access::Value value);
  /// Bind a named placeholder (`:name`).
  util::Status Bind(const std::string& name, access::Value value);
  /// Forget all bindings (each slot must be re-bound before execution).
  void ClearBindings();

  /// Execute under the session's transaction scope. SELECTs materialize
  /// their molecule set; DML auto-commits when the session has no open
  /// transaction, exactly like Session::Execute.
  util::Result<mql::ExecResult> Execute();

  /// Open a streaming cursor (SELECT statements only). The cursor clones
  /// the bound query, so the statement may be re-bound and re-executed
  /// while the cursor drains. `isolation` overrides — for this one open —
  /// the statement's Prepare-time override and the session default.
  util::Result<mql::MoleculeCursor> Query(
      std::optional<Isolation> isolation = std::nullopt);

  /// Executions so far (both Execute and Query).
  uint64_t executions() const { return executions_; }
  /// The original MQL text (slow-query log attribution).
  const std::string& text() const { return text_; }
  /// Plans computed so far — stays at 1 across any number of executions
  /// until a root-access-relevant binding changes. The acceptance gauge
  /// for "prepared once, executed N times".
  uint64_t plans_computed() const { return plans_computed_; }

 private:
  friend class Session;
  explicit PreparedStatement(Session* session) : session_(session) {}

  /// All slots bound? Error names the first unbound one.
  util::Status CheckBound() const;
  /// Substitute bindings and (re)plan if needed.
  util::Status BindAndPlan();

  Session* session_;
  mql::Statement stmt_;
  std::string text_;
  std::vector<std::optional<access::Value>> bound_;
  /// Cached plan for statements with a FROM clause; absent until first
  /// needed (planning with unbound placeholders would embed nulls).
  std::optional<mql::QueryPlan> plan_;
  /// Values of plan_->root_param_deps at planning time; a mismatch with
  /// the current bindings forces a re-plan.
  std::vector<access::Value> plan_dep_values_;
  /// Catalog::schema_version() at planning time: any DDL since then may
  /// have dropped or replaced a structure the plan embeds, so the next
  /// execution re-plans (and re-analyzes) instead of chasing stale ids.
  uint64_t plan_schema_version_ = 0;
  uint64_t executions_ = 0;
  uint64_t plans_computed_ = 0;
  /// Per-statement isolation override (queries only); nullopt = the
  /// session default at each execution.
  std::optional<Isolation> isolation_;
};

/// A client session (the primary API): every statement executes under the
/// session's transaction context. `BEGIN WORK` / `COMMIT WORK` /
/// `ABORT WORK` scope explicit (nested) transactions; DML outside an open
/// transaction auto-commits inside an implicit one, so a crash mid-DELETE
/// can never leave half a statement behind — restart recovery rolls the
/// implicit transaction back atomically. Inside an explicit transaction
/// each DML statement runs as a subtransaction: a failed statement is
/// compensated selectively (paper §4) and the surrounding transaction
/// continues.
///
/// Queries stream: Query() returns a MoleculeCursor assembling one
/// molecule per Next(). ABORT WORK (and session destruction) invalidates
/// the session's open cursors — the atoms they would stream were rolled
/// back.
///
/// A session is a single-threaded context, like a connection: open one
/// session per client thread (sessions of one database are isolated
/// through the shared lock table / nested-transaction machinery). The
/// session must not outlive its Prima.
class Session {
 public:
  /// Use Prima::OpenSession(); public for direct embedding against a bare
  /// DataSystem + TransactionManager pair (tests).
  Session(mql::DataSystem* data, TransactionManager* txns);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parse and execute one MQL statement (DDL, DML, query, or
  /// BEGIN/COMMIT/ABORT WORK). SELECT results are materialized by
  /// draining a streaming cursor.
  util::Result<mql::ExecResult> Execute(const std::string& mql);

  /// Execute a SELECT and return a streaming cursor over its molecules.
  /// `isolation` overrides the session default for this one cursor.
  util::Result<mql::MoleculeCursor> Query(
      const std::string& mql,
      std::optional<Isolation> isolation = std::nullopt);

  /// Compile a statement for repeated execution with placeholders.
  /// `isolation` overrides the session default for every execution of the
  /// returned statement (queries only; DML ignores it).
  util::Result<PreparedStatement> Prepare(
      const std::string& mql,
      std::optional<Isolation> isolation = std::nullopt);

  /// Isolation applied to queries that don't override it per call. Takes
  /// effect for subsequently opened cursors/statements; already-open
  /// cursors keep the view (or lack of one) they started with.
  void set_default_isolation(Isolation isolation) {
    default_isolation_ = isolation;
  }
  Isolation default_isolation() const { return default_isolation_; }

  /// Depth of explicit BEGIN WORK nesting (0 = auto-commit mode).
  size_t transaction_depth() const { return txn_stack_.size(); }
  bool in_transaction() const { return !txn_stack_.empty(); }
  /// Inside BEGIN WORK READ ONLY (a pinned snapshot, no Transaction)?
  bool in_read_only_transaction() const { return read_only_pin_ != nullptr; }

 private:
  friend class PreparedStatement;

  /// mql::ExecContext bridge: dispatches transaction-control statements
  /// back into the session and routes DML through `txn`.
  class Ctx : public mql::ExecContext {
   public:
    Ctx(Session* session, Transaction* txn) : session_(session), txn_(txn) {}
    util::Status BeginWork(bool read_only) override {
      return session_->BeginWork(read_only);
    }
    util::Status CommitWork() override { return session_->CommitWork(); }
    util::Status AbortWork() override { return session_->AbortWork(); }
    util::Result<access::Tid> InsertAtom(
        access::AtomTypeId type,
        std::vector<access::AttrValue> values) override {
      return txn_->InsertAtom(type, std::move(values));
    }
    util::Status ModifyAtom(const access::Tid& tid,
                            std::vector<access::AttrValue> changes) override {
      return txn_->ModifyAtom(tid, std::move(changes));
    }
    util::Status DeleteAtom(const access::Tid& tid) override {
      return txn_->DeleteAtom(tid);
    }
    util::Status Connect(const access::Tid& from, uint16_t attr,
                         const access::Tid& to) override {
      return txn_->Connect(from, attr, to);
    }
    util::Status Disconnect(const access::Tid& from, uint16_t attr,
                            const access::Tid& to) override {
      return txn_->Disconnect(from, attr, to);
    }

   private:
    Session* session_;
    Transaction* txn_;  ///< null only for statements that never reach DML
  };

  /// Execute a parsed (and substituted) statement under the session's
  /// transaction scope, with an optional cached plan. Const: shared-cache
  /// entries are executed concurrently by many sessions.
  util::Result<mql::ExecResult> ExecuteStatement(const mql::Statement& stmt,
                                                 const mql::QueryPlan* plan);

  /// One-shot compile path: consult the shared statement cache, else parse
  /// `mql` (placeholders refused — they must go through Prepare), plan
  /// FROM-bearing statements, and publish cacheable kinds back to the
  /// cache. DDL and transaction control compile but are never cached.
  util::Result<std::shared_ptr<const mql::CachedStatement>> CompileOneShot(
      const std::string& mql);
  util::Result<mql::MoleculeCursor> OpenCursor(
      mql::Query query, const mql::QueryPlan* plan,
      std::optional<Isolation> isolation = std::nullopt);

  /// Resolve the view a query reads under: the transaction's pin inside
  /// BEGIN WORK READ ONLY, a fresh statement pin when the effective
  /// isolation is kSnapshot, nullptr for latest-committed.
  std::shared_ptr<access::VersionStore::Pin> PinForQuery(
      std::optional<Isolation> isolation);

  /// Compile + execute one statement (the guts of Execute; runs with the
  /// statement's trace — if any — installed on this thread).
  util::Result<mql::ExecResult> ExecuteCompiled(const std::string& mql);

  /// Telemetry wrapper shared by Execute and PreparedStatement::Execute:
  /// decides tracing (EXPLAIN ANALYZE forces it, the slow-query knob arms
  /// it, trace_sample_n samples it), times the statement into the latency
  /// histogram, feeds the slow-query log, and — for EXPLAIN ANALYZE —
  /// replaces the result with the rendered span tree.
  template <typename Fn>
  util::Result<mql::ExecResult> RunInstrumented(const std::string& text,
                                                bool explain, Fn&& body);

  util::Status BeginWork(bool read_only = false);
  util::Status CommitWork();
  util::Status AbortWork();

  Transaction* CurrentTxn() const {
    return txn_stack_.empty() ? nullptr : txn_stack_.back();
  }
  /// Mark every open cursor of this session invalid (transaction abort
  /// rolled back state they may stream) and start a fresh epoch.
  void InvalidateCursors();

  mql::DataSystem* data_;
  TransactionManager* txns_;
  /// Explicit BEGIN WORK nesting: front = top-level, back = innermost.
  std::vector<Transaction*> txn_stack_;
  /// Isolation for queries that don't override it per call.
  Isolation default_isolation_ = Isolation::kLatestCommitted;
  /// The pinned snapshot of an open BEGIN WORK READ ONLY transaction.
  /// While set, every query shares this one view (degree-3 repeatable
  /// reads) and DML/DDL are refused; COMMIT/ABORT WORK releases it.
  std::shared_ptr<access::VersionStore::Pin> read_only_pin_;
  /// Epoch token handed to cursors; swapped (old one flipped true) on
  /// every abort. Guarded by epoch_mu_: the shared DEFAULT session may see
  /// concurrent facade calls, and a failed auto-commit statement's
  /// InvalidateCursors() reassigns the pointer while another thread's
  /// OpenCursor copies it — the mutex keeps that exchange defined (the
  /// rest of the session's state is single-threaded by contract).
  std::shared_ptr<std::atomic<bool>> cursor_epoch_;
  mutable std::mutex epoch_mu_;
  /// The trace of the statement currently executing inline (set only for
  /// the RunInstrumented scope). Cursors opened while it is set drain
  /// within the statement — they get the trace; streaming Query() cursors
  /// are opened outside the scope and stay untraced, so a trace can never
  /// outlive its statement from the session's side (workers hold their own
  /// shared_ptr).
  std::shared_ptr<obs::StatementTrace> active_trace_;
};

}  // namespace prima::core

#endif  // PRIMA_CORE_SESSION_H_
