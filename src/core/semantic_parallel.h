#ifndef PRIMA_CORE_SEMANTIC_PARALLEL_H_
#define PRIMA_CORE_SEMANTIC_PARALLEL_H_

#include <atomic>
#include <string>

#include "mql/data_system.h"
#include "util/thread_pool.h"

namespace prima::core {

struct ParallelStats {
  std::atomic<uint64_t> operations{0};
  std::atomic<uint64_t> units_of_work{0};  ///< DUs scheduled
  std::atomic<uint64_t> molecules{0};
};

/// Semantic decomposition (paper §4): "units of work decomposed from a
/// single user operation are said to allow for inherent semantic
/// parallelism when they do not conflict with each other at the level of
/// decomposition."
///
/// For molecule-set retrieval the decomposition is by root atom: each DU
/// assembles and qualifies a partition of the candidate molecules. DUs are
/// read-only and target disjoint molecule roots, so they are conflict-free
/// by construction; they run concurrently on the worker pool (the
/// shared-memory stand-in for multi-processor PRIMA — DESIGN.md §3).
class ParallelQueryProcessor {
 public:
  ParallelQueryProcessor(mql::DataSystem* data, util::ThreadPool* pool)
      : data_(data), pool_(pool) {}

  /// Execute a SELECT with `max_units` decomposed units of work
  /// (0 = one DU per worker thread). Results are deterministic: molecule
  /// order matches serial execution.
  util::Result<mql::MoleculeSet> Run(const std::string& query_text,
                                     size_t max_units = 0);

  ParallelStats& stats() { return stats_; }

 private:
  mql::DataSystem* data_;
  util::ThreadPool* pool_;
  ParallelStats stats_;
};

}  // namespace prima::core

#endif  // PRIMA_CORE_SEMANTIC_PARALLEL_H_
