#include "core/semantic_parallel.h"

#include <vector>

#include "mql/parser.h"

namespace prima::core {

using mql::Molecule;
using mql::MoleculeSet;
using util::Result;
using util::Status;

Result<MoleculeSet> ParallelQueryProcessor::Run(const std::string& query_text,
                                                size_t max_units) {
  stats_.operations++;
  PRIMA_ASSIGN_OR_RETURN(mql::Statement stmt, mql::ParseStatement(query_text));
  if (stmt.kind != mql::Statement::Kind::kQuery) {
    return Status::InvalidArgument("parallel execution expects a SELECT");
  }
  if (!stmt.params.empty()) {
    // Same refusal as the serial entry points: an unbound placeholder
    // would compare as null and silently qualify nothing.
    return Status::InvalidArgument(
        "statement has placeholders - prepare it and bind values first");
  }
  const mql::Query& query = stmt.query;
  mql::Executor& exec = data_->executor();

  PRIMA_ASSIGN_OR_RETURN(mql::QueryPlan plan,
                         exec.Prepare(query.from, query.where.get()));
  PRIMA_ASSIGN_OR_RETURN(std::vector<access::Atom> roots, exec.Roots(plan));

  const size_t workers = pool_->num_threads();
  size_t units = max_units == 0 ? workers : max_units;
  if (units > roots.size()) units = roots.size() == 0 ? 1 : roots.size();

  // One slot per root keeps the result order deterministic.
  struct Slot {
    bool qualified = false;
    Molecule molecule;
    util::Status status;
  };
  std::vector<Slot> slots(roots.size());

  // Decompose: contiguous root ranges, one DU each.
  const size_t per_unit = units == 0 ? 0 : (roots.size() + units - 1) / units;
  for (size_t u = 0; u < units; ++u) {
    const size_t begin = u * per_unit;
    const size_t end = std::min(roots.size(), begin + per_unit);
    if (begin >= end) break;
    stats_.units_of_work++;
    pool_->Submit([&, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        auto molecule_or = exec.Assemble(plan, roots[i]);
        if (!molecule_or.ok()) {
          slots[i].status = molecule_or.status();
          continue;
        }
        if (query.where != nullptr) {
          auto ok_or = exec.Eval(*molecule_or, *query.where, {});
          if (!ok_or.ok()) {
            slots[i].status = ok_or.status();
            continue;
          }
          if (!*ok_or) continue;
        }
        slots[i].qualified = true;
        slots[i].molecule = std::move(*molecule_or);
      }
    });
  }
  pool_->Wait();

  MoleculeSet out;
  for (Slot& slot : slots) {
    PRIMA_RETURN_IF_ERROR(slot.status);
    if (!slot.qualified) continue;
    PRIMA_ASSIGN_OR_RETURN(
        Molecule projected,
        exec.ProjectMolecule(query, plan, std::move(slot.molecule)));
    out.molecules.push_back(std::move(projected));
    stats_.molecules++;
  }
  return out;
}

}  // namespace prima::core
