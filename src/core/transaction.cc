#include "core/transaction.h"

#include <algorithm>

#include "recovery/checkpoint_daemon.h"
#include "recovery/wal_writer.h"

namespace prima::core {

using access::AccessSystem;
using access::Atom;
using access::AttrValue;
using access::Tid;
using util::Result;
using util::Status;

namespace {
std::vector<Tid> RefTargets(const access::Value& v) {
  std::vector<Tid> out;
  if (v.kind() == access::Value::Kind::kTid) {
    if (!v.AsTid().IsNull()) out.push_back(v.AsTid());
  } else if (v.kind() == access::Value::Kind::kList) {
    for (const auto& e : v.elems()) {
      if (e.kind() == access::Value::Kind::kTid && !e.AsTid().IsNull()) {
        out.push_back(e.AsTid());
      }
    }
  }
  return out;
}
}  // namespace

// ---------------------------------------------------------------------------
// TransactionManager
// ---------------------------------------------------------------------------

Result<Transaction*> TransactionManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  auto txn =
      std::unique_ptr<Transaction>(new Transaction(this, next_id_++, nullptr));
  Transaction* raw = txn.get();
  top_level_.push_back(std::move(txn));
  stats_.begun++;
  if (wal_ != nullptr) {
    wal_->Append(recovery::LogRecord::Begin(raw->id()));
  }
  return raw;
}

Status TransactionManager::Reap(Transaction* txn) {
  if (txn == nullptr || txn->parent() != nullptr) {
    return Status::InvalidArgument("only top-level transactions are reaped");
  }
  if (txn->active()) {
    return Status::InvalidArgument("transaction " + std::to_string(txn->id()) +
                                   " is still active");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = top_level_.begin(); it != top_level_.end(); ++it) {
    if (it->get() == txn) {
      top_level_.erase(it);  // frees the whole tree (children owned by it)
      return Status::Ok();
    }
  }
  return Status::NotFound("transaction is not registered");
}

uint64_t TransactionManager::RootId(const Transaction* txn) {
  while (txn->parent() != nullptr) txn = txn->parent();
  return txn->id();
}

void TransactionManager::SeedNextId(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id > next_id_) next_id_ = id;
}

bool TransactionManager::IsAncestorOf(const Transaction* maybe_ancestor,
                                      const Transaction* txn) {
  for (const Transaction* t = txn; t != nullptr; t = t->parent()) {
    if (t == maybe_ancestor) return true;
  }
  return false;
}

Status TransactionManager::Acquire(Transaction* txn, const Tid& tid,
                                   LockMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  LockEntry& entry = lock_table_[tid.Pack()];
  for (const auto& [holder, held_mode] : entry.holders) {
    if (holder == txn) continue;
    const bool conflicting =
        mode == LockMode::kWrite || held_mode == LockMode::kWrite;
    if (conflicting && !IsAncestorOf(holder, txn)) {
      stats_.lock_conflicts++;
      return Status::Conflict("atom " + tid.ToString() + " locked by txn " +
                              std::to_string(holder->id()));
    }
  }
  auto it = entry.holders.find(txn);
  if (it == entry.holders.end()) {
    entry.holders[txn] = mode;
  } else if (mode == LockMode::kWrite) {
    it->second = LockMode::kWrite;  // upgrade
  }
  auto lt = txn->locks_.find(tid.Pack());
  if (lt == txn->locks_.end()) {
    txn->locks_[tid.Pack()] = mode;
  } else if (mode == LockMode::kWrite) {
    lt->second = LockMode::kWrite;
  }
  return Status::Ok();
}

void TransactionManager::ReleaseAll(Transaction* txn) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [packed, mode] : txn->locks_) {
    auto it = lock_table_.find(packed);
    if (it == lock_table_.end()) continue;
    it->second.holders.erase(txn);
    if (it->second.holders.empty()) lock_table_.erase(it);
  }
  txn->locks_.clear();
}

void TransactionManager::InheritToParent(Transaction* child) {
  std::lock_guard<std::mutex> lock(mu_);
  Transaction* parent = child->parent();
  for (const auto& [packed, mode] : child->locks_) {
    auto it = lock_table_.find(packed);
    if (it == lock_table_.end()) continue;
    it->second.holders.erase(child);
    auto& parent_mode = it->second.holders[parent];
    if (mode == LockMode::kWrite) parent_mode = LockMode::kWrite;
    auto pl = parent->locks_.find(packed);
    if (pl == parent->locks_.end()) {
      parent->locks_[packed] = mode;
    } else if (mode == LockMode::kWrite) {
      pl->second = LockMode::kWrite;
    }
  }
  child->locks_.clear();
  // Undo inheritance: the parent compensates the child's effects if it
  // later aborts.
  parent->undo_.insert(parent->undo_.end(),
                       std::make_move_iterator(child->undo_.begin()),
                       std::make_move_iterator(child->undo_.end()));
  child->undo_.clear();
}

size_t TransactionManager::LockedAtomCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lock_table_.size();
}

// ---------------------------------------------------------------------------
// Transaction
// ---------------------------------------------------------------------------

Status Transaction::CheckActive() const {
  if (state_ != State::kActive) {
    return Status::InvalidArgument("transaction " + std::to_string(id_) +
                                   " is not active");
  }
  return Status::Ok();
}

Result<Transaction*> Transaction::BeginChild() {
  PRIMA_RETURN_IF_ERROR(CheckActive());
  std::lock_guard<std::mutex> lock(mgr_->mu_);
  auto child = std::unique_ptr<Transaction>(
      new Transaction(mgr_, mgr_->next_id_++, this));
  Transaction* raw = child.get();
  children_.push_back(std::move(child));
  ++active_children_;
  mgr_->stats_.begun++;
  return raw;
}

Status Transaction::LockRefTargets(const access::Value& value) {
  for (const Tid& t : RefTargets(value)) {
    PRIMA_RETURN_IF_ERROR(mgr_->Acquire(this, t, LockMode::kWrite));
  }
  return Status::Ok();
}

Result<Tid> Transaction::InsertAtom(access::AtomTypeId type,
                                    std::vector<AttrValue> values) {
  PRIMA_RETURN_IF_ERROR(CheckActive());
  for (const AttrValue& av : values) {
    PRIMA_RETURN_IF_ERROR(LockRefTargets(av.value));
  }
  PRIMA_ASSIGN_OR_RETURN(
      const Tid tid, mgr_->WithUndoHook(this, [&] {
        return mgr_->access_->InsertAtom(type, std::move(values));
      }));
  PRIMA_RETURN_IF_ERROR(mgr_->Acquire(this, tid, LockMode::kWrite));
  return tid;
}

Result<Atom> Transaction::GetAtom(const Tid& tid,
                                  const std::vector<uint16_t>& projection) {
  PRIMA_RETURN_IF_ERROR(CheckActive());
  PRIMA_RETURN_IF_ERROR(mgr_->Acquire(this, tid, LockMode::kRead));
  return mgr_->access_->GetAtom(tid, projection);
}

Status Transaction::ModifyAtom(const Tid& tid,
                               std::vector<AttrValue> changes) {
  PRIMA_RETURN_IF_ERROR(CheckActive());
  PRIMA_RETURN_IF_ERROR(mgr_->Acquire(this, tid, LockMode::kWrite));
  // Lock both the old and new association targets (their back-references
  // change).
  PRIMA_ASSIGN_OR_RETURN(const Atom current, mgr_->access_->GetAtom(tid));
  const auto* def = mgr_->access_->catalog().GetAtomType(tid.type);
  for (const AttrValue& av : changes) {
    if (av.attr < def->attrs.size() && def->attrs[av.attr].type.IsAssociation()) {
      PRIMA_RETURN_IF_ERROR(LockRefTargets(current.attrs[av.attr]));
      PRIMA_RETURN_IF_ERROR(LockRefTargets(av.value));
    }
  }
  return mgr_->WithUndoHook(this, [&] {
    return mgr_->access_->ModifyAtom(tid, std::move(changes));
  });
}

Status Transaction::DeleteAtom(const Tid& tid) {
  PRIMA_RETURN_IF_ERROR(CheckActive());
  PRIMA_RETURN_IF_ERROR(mgr_->Acquire(this, tid, LockMode::kWrite));
  PRIMA_ASSIGN_OR_RETURN(const Atom current, mgr_->access_->GetAtom(tid));
  const auto* def = mgr_->access_->catalog().GetAtomType(tid.type);
  for (size_t i = 0; i < current.attrs.size(); ++i) {
    if (def->attrs[i].type.IsAssociation()) {
      PRIMA_RETURN_IF_ERROR(LockRefTargets(current.attrs[i]));
    }
  }
  return mgr_->WithUndoHook(this,
                            [&] { return mgr_->access_->DeleteAtom(tid); });
}

Status Transaction::Connect(const Tid& from, uint16_t attr, const Tid& to) {
  PRIMA_RETURN_IF_ERROR(CheckActive());
  PRIMA_RETURN_IF_ERROR(mgr_->Acquire(this, from, LockMode::kWrite));
  PRIMA_RETURN_IF_ERROR(mgr_->Acquire(this, to, LockMode::kWrite));
  return mgr_->WithUndoHook(
      this, [&] { return mgr_->access_->Connect(from, attr, to); });
}

Status Transaction::Disconnect(const Tid& from, uint16_t attr, const Tid& to) {
  PRIMA_RETURN_IF_ERROR(CheckActive());
  PRIMA_RETURN_IF_ERROR(mgr_->Acquire(this, from, LockMode::kWrite));
  PRIMA_RETURN_IF_ERROR(mgr_->Acquire(this, to, LockMode::kWrite));
  return mgr_->WithUndoHook(
      this, [&] { return mgr_->access_->Disconnect(from, attr, to); });
}

Status Transaction::Commit() {
  PRIMA_RETURN_IF_ERROR(CheckActive());
  if (active_children_ > 0) {
    return Status::InvalidArgument(
        "cannot commit with active subtransactions");
  }
  uint64_t commit_lsn = 0;
  if (parent_ == nullptr && mgr_->wal_ != nullptr) {
    // Durability at commit: the commit record — and with it every earlier
    // record of this transaction — must be on the device before locks
    // drop. CommitForce publishes the commit LSN and holds the force open
    // for up to PrimaOptions::commit_delay_us so concurrent committers
    // share one device write + fsync (group commit); the write itself runs
    // with the log buffer unlocked, so other transactions keep appending
    // during it. On a force failure (device error, or a bounded WAL that
    // needs a checkpoint to recycle space) the transaction stays active
    // (locks held, undo intact) so the caller can retry or abort; note the
    // abort record then follows the buffered commit record, and restart
    // treats the transaction as finished either way — consistent with the
    // CLRs the abort writes.
    commit_lsn = mgr_->wal_->Append(recovery::LogRecord::Commit(id_));
    Status force_st = mgr_->wal_->CommitForce(commit_lsn);
    if (force_st.IsNoSpace() && mgr_->ckpt_daemon_ != nullptr) {
      // The ring caught up with us between the daemon's polls. A refused
      // force is side-effect free and the commit record is still buffered,
      // so: poke the daemon, wait for a full checkpoint to truncate, and
      // force once more. Only a ring that a checkpoint cannot free (e.g. a
      // long-running transaction pinning the undo floor) still surfaces
      // NoSpace here.
      if (mgr_->ckpt_daemon_->RequestCheckpoint().ok()) {
        force_st = mgr_->wal_->CommitForce(commit_lsn);
      }
    }
    if (force_st.IsNoSpace()) {
      // The checkpoint ran and the ring is still full: some long-running
      // transaction's first record pins the undo floor, so truncation cannot
      // advance past it. Name the culprit — a driver staring at a bare
      // "log full" has no way to know which session to kill, and the stuck
      // committer holds its own locks, so without this the storm wedges into
      // a retry loop that can never succeed.
      uint64_t culprit_id = 0, culprit_lsn = 0;
      for (const auto& [txn_id, first_lsn] : mgr_->wal_->ActiveTxns()) {
        if (culprit_id == 0 || first_lsn < culprit_lsn) {
          culprit_id = txn_id;
          culprit_lsn = first_lsn;
        }
      }
      std::string msg = force_st.message();
      if (culprit_id != 0 && culprit_id != id_) {
        msg += "; undo floor pinned at oldest_active_lsn " +
               std::to_string(culprit_lsn) + " by txn " +
               std::to_string(culprit_id);
      }
      return Status::NoSpace(std::move(msg));
    }
    PRIMA_RETURN_IF_ERROR(force_st);
  }
  state_ = State::kCommitted;
  if (parent_ != nullptr) {
    mgr_->InheritToParent(this);
    std::lock_guard<std::mutex> lock(mgr_->mu_);
    --parent_->active_children_;
  } else {
    // Stamp this transaction's version-chain entries with the next commit
    // sequence BEFORE the write locks drop: once another writer can touch
    // these atoms, its new pending entries must land strictly after ours.
    mgr_->access_->versions().Commit(id_, commit_lsn);
    mgr_->ReleaseAll(this);
    undo_.clear();
  }
  mgr_->stats_.committed++;
  return Status::Ok();
}

Status Transaction::Abort() {
  PRIMA_RETURN_IF_ERROR(CheckActive());
  if (active_children_ > 0) {
    return Status::InvalidArgument("cannot abort with active subtransactions");
  }
  // Selective in-transaction recovery: compensate this subtree only, in
  // reverse chronological order. The compensating writes are CLR-logged
  // under the root transaction; the kCompensation record afterwards tells
  // restart undo that these entries are already rolled back.
  Status first_error;
  {
    std::lock_guard<std::mutex> hook_lock(mgr_->hook_mu_);
    AccessSystem::SetWalTxn(TransactionManager::RootId(this));
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      Status st;
      switch (it->kind) {
        case AccessSystem::UndoRecord::Kind::kInsert:
          st = mgr_->access_->RawDeleteAtom(it->tid);
          break;
        case AccessSystem::UndoRecord::Kind::kModify:
          st = mgr_->access_->RawOverwriteAtom(it->before);
          break;
        case AccessSystem::UndoRecord::Kind::kDelete:
          st = mgr_->access_->RawRestoreAtom(it->before);
          break;
      }
      mgr_->stats_.undo_applied++;
      if (!st.ok() && first_error.ok()) first_error = st;
    }
    AccessSystem::SetWalTxn(0);
  }
  if (mgr_->wal_ != nullptr && !undo_.empty()) {
    std::vector<uint64_t> compensated;
    compensated.reserve(undo_.size());
    for (const auto& rec : undo_) {
      if (rec.lsn != 0) compensated.push_back(rec.lsn);
    }
    mgr_->wal_->Append(recovery::LogRecord::Compensation(
        TransactionManager::RootId(this), std::move(compensated)));
  }
  undo_.clear();
  state_ = State::kAborted;
  if (parent_ == nullptr) {
    // The compensations above restored every base record, so the pending
    // chain entries are garbage. Subtree aborts keep theirs: the entries'
    // before-images still describe the root's earlier writes correctly.
    mgr_->access_->versions().Drop(id_);
  }
  mgr_->ReleaseAll(this);
  if (parent_ != nullptr) {
    std::lock_guard<std::mutex> lock(mgr_->mu_);
    --parent_->active_children_;
  } else if (mgr_->wal_ != nullptr) {
    // No force needed: losing this record merely repeats the (idempotent)
    // rollback at restart.
    mgr_->wal_->Append(recovery::LogRecord::Abort(id_));
  }
  mgr_->stats_.aborted++;
  return first_error;
}

}  // namespace prima::core
