#ifndef PRIMA_CORE_PRIMA_H_
#define PRIMA_CORE_PRIMA_H_

#include <memory>
#include <string>

#include "access/access_system.h"
#include "core/app_layer.h"
#include "core/semantic_parallel.h"
#include "core/session.h"
#include "core/transaction.h"
#include "ldl/ldl.h"
#include "mql/data_system.h"
#include "net/protocol.h"
#include "obs/telemetry.h"
#include "recovery/backup.h"
#include "recovery/checkpoint_daemon.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal_writer.h"
#include "storage/storage_system.h"
#include "util/thread_pool.h"

namespace prima::net {
class Server;
}

namespace prima::core {

/// Kernel-wide counter snapshot (Prima::stats()): one coherent, plain-data
/// picture of every layer, taken in one call — buffer pool, access system,
/// data system, WAL, network server, and the statement-latency digest. Each
/// leg is independently copyable/diffable; a layer that is not running
/// (no WAL, no server) reads as zeros.
struct PrimaStatsSnapshot {
  /// Buffer pool totals plus per-shard hit/miss/eviction breakdowns.
  storage::BufferStatsSnapshot buffer;
  /// Query/assembly counters of the data system (molecules built, cursor
  /// traffic, prepared-statement reuse).
  mql::DataStatsSnapshot data;
  /// Atom-level operation counters of the access system.
  access::AccessStatsSnapshot access;
  /// Log counters + footprint; all zero when the database runs without WAL.
  recovery::WalStatsSnapshot wal;
  /// Version-store health (MVCC snapshot reads): chains installed/retired,
  /// chain-walk resolution counters and depth histogram, live snapshot
  /// pins, and the oldest LSN a pinned snapshot holds the watermark at.
  access::VersionStoreStatsSnapshot versions;
  /// Transaction-manager counters: begun/committed/aborted, lock conflicts
  /// (non-blocking 2PL refusals), driver-reported retries, undo applied.
  TransactionStatsSnapshot txn;
  /// Network front-door gauge; all zero without a server.
  net::ServerStats net;
  /// Statement latency distribution (microseconds) across every session.
  obs::HistogramSnapshot statement_us;
  /// Statements that carried a span tree (EXPLAIN ANALYZE, sampling, or
  /// slow-query arming).
  uint64_t traced_statements = 0;
  /// Captures in the slow-query ring, ever (>= the ring's current size).
  uint64_t slow_statements = 0;
};

/// Database configuration.
struct PrimaOptions {
  /// In-memory block device (default) or a directory of segment files.
  bool in_memory = true;
  std::string path;

  /// Custom block device (crash-injection tests, shared devices). Overrides
  /// in_memory/path when set; the database holds a reference for its
  /// lifetime.
  std::shared_ptr<storage::BlockDevice> device;

  /// Write-ahead logging with restart recovery (on by default). When off
  /// the system behaves like the pre-WAL kernel: durability only at Flush.
  bool wal = true;

  /// Group-commit delay window: a top-level Commit() waits up to this long
  /// for concurrent committers to append their commit records, so one log
  /// force (device write + fsync) covers the whole group. 0 = force
  /// immediately (solo commits pay no extra latency; concurrent committers
  /// still share forces naturally while one is in flight).
  uint64_t commit_delay_us = 0;

  /// Cap on the WAL file size (0 = unbounded, the log only grows). With a
  /// cap the log becomes circular: each checkpoint (Flush()) retires the
  /// blocks below its undo floor and appends wrap onto them. Recorded in
  /// the log's master record at creation — reopening an existing log keeps
  /// its original geometry. The checkpoint daemon (below) keeps a
  /// well-behaved workload from ever hitting the ring's NoSpace point;
  /// with the daemon disabled, commits fail with NoSpace until the next
  /// Flush() truncates.
  uint64_t wal_max_bytes = 0;

  /// Background checkpoint daemon (active when wal && wal_max_bytes > 0
  /// && checkpoint_ring_fraction > 0): a daemon thread owned by the
  /// database watches the live log window and takes a fuzzy checkpoint
  /// whenever live_bytes exceeds this fraction of the ring, so truncation
  /// recycles log space before commits need it — no manual Flush() calls
  /// required. The default 0.5 fires well before the ring's reserve-backed
  /// refusal point (75% of capacity on large rings). A committer that
  /// still catches the ring full pokes the daemon and retries once after
  /// the checkpoint completes, so only a genuinely wedged ring (e.g. a
  /// long-running transaction pinning the undo floor — watch
  /// WalStatsSnapshot::oldest_active_lsn) surfaces NoSpace. 0 disables
  /// the daemon (PR-2 behavior: checkpoint scheduling is the caller's
  /// problem).
  double checkpoint_ring_fraction = 0.5;
  /// Daemon poll interval between threshold checks (explicit pokes bypass
  /// it).
  uint64_t checkpoint_poll_ms = 5;

  /// Archive WAL blocks into an append-only archive file before circular
  /// truncation recycles them. Keeps the complete log history readable —
  /// the replay source media recovery needs beyond the live ring. Once an
  /// archive exists it stays active on every reopen regardless of this
  /// flag (a gap would silently break media recovery). Meaningless
  /// without wal_max_bytes (an unbounded log never recycles anything).
  bool wal_archive = false;

  /// MEDIA RECOVERY: before opening, wipe every data segment and rebuild
  /// the database from the last fuzzy backup (Prima::Backup) by replaying
  /// the archived log + live WAL from the dump's start point. Use when the
  /// data device is lost or corrupt beyond what restart recovery repairs;
  /// requires wal and a committed backup dump on the device. The WAL,
  /// archive, and backup files are the surviving "separate media".
  bool restore_from_backup = false;

  /// Worker threads for the parallel redo phase of restart and media
  /// recovery (0 = hardware concurrency, the default; 1 = serial replay).
  /// The log scan stays single-threaded; the per-page redo chains it
  /// partitions fan out over a thread pool, so restart and device-rebuild
  /// time stop growing with cores idle. The result is bit-identical to
  /// serial replay at every setting — per-page chains preserve log order,
  /// and chains for different pages are independent.
  size_t recovery_threads = 0;

  storage::StorageOptions storage;
  access::AccessOptions access;

  /// Worker threads for semantic parallelism (0 = hardware concurrency).
  size_t parallel_workers = 0;

  /// Buffer pool partitions. Open() resolves the value into
  /// storage.buffer_shards (overriding anything set there): page ids are
  /// hashed across this many independently locked pools, each running its
  /// own clock-sweep eviction, so concurrent scanners stop serializing on
  /// one mutex. 0 = scale to the hardware (one shard per core, capped);
  /// 1 = the pre-sharding single pool, behaviorally indistinguishable from
  /// the global-LRU kernel.
  size_t buffer_shards = 0;

  /// Async read-ahead window, in pages, for sequential scans and grid
  /// reads (resolved into storage.readahead_pages). Scans volunteer the
  /// next window of base-file pages to a background prefetcher; hints are
  /// advisory and dropped silently under pressure. 0 disables read-ahead.
  size_t readahead_pages = 32;

  /// Worker threads for pipelined molecule assembly in streaming cursors:
  /// MoleculeCursor::Next() assembles a small bounded look-ahead of
  /// molecules on the shared pool while the consumer drains, with results
  /// delivered in root order — byte-identical to serial execution.
  /// 0 = match the pool's worker count; 1 = serial assembly.
  size_t cursor_assembly_threads = 0;

  /// NETWORK SERVER: when >= 0, Open() also starts a TCP server speaking
  /// the framed wire protocol of net/protocol.h on this port (0 = let the
  /// kernel pick; read it back via net_server()->port()). Each accepted
  /// connection owns one server-side Session, so remote clients get the
  /// full session contract — explicit transactions across round trips,
  /// prepared statements, streaming cursors invalidated by aborts. The
  /// server starts last in Open() and stops first in ~Prima; a drain rolls
  /// every connection's open transaction back, logged. -1 = no server.
  int32_t listen_port = -1;
  /// Connections beyond this are refused with an error frame (0 = no cap).
  uint32_t net_max_connections = 256;
  /// Idle remote connections are closed after this long (0 = never).
  uint32_t net_idle_timeout_ms = 0;

  /// TELEMETRY — see the "Observability" section of the class comment.
  /// Statements slower than this many microseconds are captured — statement
  /// text plus full span tree — into the slow-query ring
  /// (Prima::slow_statements()). 0 disables capture; non-zero arms
  /// always-on tracing (offenders are only identifiable after the fact).
  uint64_t slow_statement_us = 0;
  /// Trace every Nth statement even without EXPLAIN ANALYZE or slow-query
  /// arming (0 = never). Sampled span trees feed the traced-statement
  /// counter and keep the phase machinery honest in production.
  uint64_t trace_sample_n = 0;
  /// Ring capacity of the slow-query log.
  size_t slow_log_capacity = 64;
};

/// PRIMA — the kernel facade. Wires the three layers of Fig. 3.1 together
/// with the load definition language, nested transactions, the semantic-
/// parallelism processor, and the application-layer object buffer.
///
/// Quickstart — the session API is the primary client surface. A session
/// scopes transactions (`BEGIN WORK` … `COMMIT WORK` / `ABORT WORK`, with
/// DML outside them auto-committing atomically), compiles statements once
/// for repeated execution with `?` / `:name` placeholders, and streams
/// query results one molecule at a time:
///
///   auto db = *Prima::Open({});
///   auto session = db->OpenSession();
///   session->Execute("CREATE ATOM_TYPE point (point_id: IDENTIFIER, x: REAL)");
///
///   session->Execute("BEGIN WORK");
///   session->Execute("INSERT point (x = 1.5)");
///   session->Execute("COMMIT WORK");            // or ABORT WORK
///
///   auto stmt = *session->Prepare("SELECT ALL FROM point WHERE x > ?");
///   stmt.Bind(0, access::Value::Real(1.0));     // parsed+planned once,
///   auto cursor = *stmt.Query();                // executed many times
///   while (auto m = *cursor.Next()) { /* one molecule at a time */ }
///
/// The one-shot facade below (Execute / Query / QueryParallel) remains as
/// a thin compatibility wrapper over a default session: each call parses
/// its statement, runs it under the same auto-commit transaction scoping,
/// and Query drains a cursor into a materialized MoleculeSet.
///
/// Remote access — set PrimaOptions::listen_port and the same session API
/// is served over TCP (net/server.h, framed protocol of net/protocol.h);
/// net/client.h is the matching client library:
///
///   PrimaOptions opts;
///   opts.listen_port = 0;                        // kernel-picked port
///   auto db = *Prima::Open(opts);
///   auto client = *net::Client::Connect("127.0.0.1",
///                                       db->net_server()->port());
///   client->Execute("BEGIN WORK");
///   client->Execute("INSERT point (x = 1.5)");
///   client->Execute("COMMIT WORK");              // durable once acked
///   auto cursor = *client->OpenCursor("SELECT ALL FROM point");
///   while (auto m = *cursor.Next()) { /* streamed in batches */ }
///
/// Remote-cursor lifetime contract: a remote cursor addresses state inside
/// its connection's server-side session, so it lives exactly as long as a
/// local MoleculeCursor would in that session — an ABORT WORK (or any
/// rollback, including the one a dropped connection triggers) invalidates
/// it, and the next Fetch reports Aborted. Closing a cursor or statement
/// id twice is rejected cleanly with NotFound; the connection survives.
///
/// Isolation — writers always lock (nested two-phase locking on atoms);
/// readers choose how they see them per session, per statement, or per
/// transaction:
///
///   Isolation::kLatestCommitted  (default) each atom read returns the
///                  newest state the access system holds — the historical
///                  behavior. No read locks, no versioning cost.
///   Isolation::kSnapshot         the cursor pins a read view at open and
///                  resolves every atom against the in-memory version
///                  chains to its state as of that instant — a scan never
///                  sees half of a concurrent transaction, and never waits
///                  for a writer's lock. Still zero read locks.
///
///   session->set_default_isolation(core::Isolation::kSnapshot);
///   auto cursor = *session->Query("SELECT ALL FROM point");  // snapshot
///   // ... or per call:
///   auto c2 = *session->Query("SELECT ALL FROM point",
///                             core::Isolation::kLatestCommitted);
///
///   session->Execute("BEGIN WORK READ ONLY");   // one view, pinned
///   // every query here reads the SAME snapshot (repeatable); DML/DDL
///   // are refused until...
///   session->Execute("COMMIT WORK");            // releases the pin
///
/// Version chains live in memory only (they are rebuilt empty at restart —
/// recovery's compensations restore the base state they describe) and are
/// retired as soon as no pinned snapshot can need them; watch the
/// prima_versions_* metrics, stats().versions, and the
/// prima_versions_oldest_snapshot_lsn gauge for a pin holding retirement
/// back. The same isolation surface is served remotely
/// (net::Client::set_default_isolation, BEGIN WORK READ ONLY over the
/// wire).
///
/// Scaling knobs — by default the kernel scales the read path to the
/// hardware; three PrimaOptions fields tune it:
///
///   buffer_shards           page-id-hashed buffer pool partitions, each
///                           with its own mutex and clock-sweep eviction
///                           (0 = one per core, capped)
///   readahead_pages         async read-ahead window for sequential scans
///                           and grid reads (0 = off)
///   cursor_assembly_threads pipelined molecule assembly in streaming
///                           cursors (0 = pool width, 1 = serial)
///
/// Compatibility contract: buffer_shards = 1 is behaviorally
/// indistinguishable from the pre-sharding pool — same eviction victims,
/// same NoSpace conditions, same WAL write-back rule — and every setting
/// of every knob returns byte-identical query results; the knobs trade
/// memory and threads for throughput, never semantics. Observe the effect
/// through stats(): per-shard hit/miss/eviction counters, prefetch
/// activity, resident bytes.
///
/// Observability — the kernel telemeters itself at three granularities:
///
///   stats()        one coherent plain-data snapshot of every layer's
///                  counters (buffer, access, data, WAL, server) plus the
///                  statement-latency histogram — diff before/after a
///                  workload.
///   MetricsText()  the same data as a Prometheus-style text page (also
///                  served remotely via net::Client::MetricsText). Every
///                  metric is named prima_<subsystem>_<what>[_<unit>].
///   EXPLAIN ANALYZE <stmt>   per-statement span tree through MQL: parse,
///                  plan (statement-cache hit/miss), root enumeration,
///                  molecule assembly (worker busy time when pipelined),
///                  buffer fixes split hit/miss, and WAL commit-force wait,
///                  with microsecond timings. Works identically through a
///                  remote session.
///
/// Production tracing is opt-in via PrimaOptions: slow_statement_us
/// captures offenders (text + span tree) into a fixed ring read back with
/// slow_statements(); trace_sample_n samples every Nth statement. With
/// both knobs 0 a statement pays one thread-local null check and one
/// histogram record — the overhead contract benchmarks hold the kernel to.
class Prima {
 public:
  static util::Result<std::unique_ptr<Prima>> Open(PrimaOptions options);
  ~Prima();

  Prima(const Prima&) = delete;
  Prima& operator=(const Prima&) = delete;

  // --- sessions (the primary client API) --------------------------------------

  /// Open a client session: a single-threaded statement context with its
  /// own transaction scope, prepared statements, and streaming cursors.
  /// One session per client thread; it must not outlive the database.
  std::unique_ptr<Session> OpenSession() {
    return std::make_unique<Session>(data_.get(), txns_.get());
  }

  // --- one-shot MQL / LDL (compatibility facade over a default session) --------

  /// Parse and execute one MQL statement (DDL, DML, query, or transaction
  /// control against the shared default session).
  util::Result<mql::ExecResult> Execute(const std::string& mql);
  /// Execute a SELECT and return its molecule set (drains a cursor).
  util::Result<mql::MoleculeSet> Query(const std::string& mql);
  /// Execute a SELECT with semantic parallelism (decomposed units of work).
  util::Result<mql::MoleculeSet> QueryParallel(const std::string& mql,
                                               size_t max_units = 0);
  /// Execute one LDL statement (access paths, sort orders, partitions,
  /// atom clusters).
  util::Result<std::string> ExecuteLdl(const std::string& ldl);

  // --- transactions ---------------------------------------------------------------

  util::Result<Transaction*> Begin() { return txns_->Begin(); }

  // --- maintenance ----------------------------------------------------------------

  /// Drain deferred updates and write everything to the device. With WAL
  /// enabled this is a fuzzy checkpoint: the flush is bracketed by
  /// checkpoint log records and committed via the log's master record, so
  /// the next restart scans only from here.
  util::Status Flush();

  /// Take a fuzzy online backup: checkpoint, then dump every data segment
  /// into the backup file WITHOUT quiescing writers. Restoring the dump
  /// and replaying the archived log + live WAL from its start point
  /// (PrimaOptions::restore_from_backup) rebuilds the database after total
  /// data-device loss. Requires WAL.
  util::Result<recovery::BackupInfo> Backup();

  // --- subsystem access -------------------------------------------------------------

  /// Log counters + footprint (records-per-force, commits-per-force, live
  /// and on-device bytes). All zero when options.wal is false.
  recovery::WalStatsSnapshot wal_stats() const;

  /// Kernel-wide counters: one coherent snapshot of every layer (see
  /// PrimaStatsSnapshot).
  PrimaStatsSnapshot stats() const;

  /// Prometheus-style text exposition of every registered metric —
  /// counters, gauges, and latency summaries (p50/p95/p99 + sum + count).
  std::string MetricsText() const { return telemetry_->registry().RenderText(); }

  /// Oldest-first copy of the slow-query ring (statements that crossed
  /// PrimaOptions::slow_statement_us, with their rendered span trees).
  std::vector<obs::SlowStatement> slow_statements() const {
    return telemetry_->slow_log().Snapshot();
  }

  /// The telemetry hub (never null on an open database).
  obs::Telemetry* telemetry() const { return telemetry_.get(); }

  storage::StorageSystem& storage() { return *storage_; }
  access::AccessSystem& access() { return *access_; }
  mql::DataSystem& data() { return *data_; }
  TransactionManager& transactions() { return *txns_; }
  ObjectBuffer& object_buffer() { return *object_buffer_; }
  util::ThreadPool& pool() { return *pool_; }
  /// Null when options.wal is false.
  recovery::WalWriter* wal() { return wal_.get(); }
  recovery::RecoveryManager* recovery() { return recovery_.get(); }
  /// Null unless the daemon is active (wal + wal_max_bytes + fraction).
  recovery::CheckpointDaemon* checkpoint_daemon() { return daemon_.get(); }
  /// Null unless options.listen_port >= 0.
  net::Server* net_server() { return net_.get(); }

 private:
  Prima() = default;

  /// Register every subsystem's counters and gauges with the telemetry
  /// registry (called once from Open, after the stack is assembled).
  void RegisterKernelMetrics();

  /// Set once Open() fully succeeded. A half-open instance (recovery
  /// failed partway) must NOT checkpoint on destruction: writing a new
  /// master record would truncate the restart scan window and orphan the
  /// loser rollbacks that never ran.
  bool fully_open_ = false;

  /// Declared FIRST so it is destroyed LAST: the WAL holds its commit-wait
  /// histogram pointer, the data system its hub pointer, and counters
  /// registered by address all point into subsystems that must be able to
  /// be snapshotted until the moment they destruct.
  std::unique_ptr<obs::Telemetry> telemetry_;
  std::shared_ptr<storage::BlockDevice> shared_device_;  ///< keep-alive only
  std::unique_ptr<storage::StorageSystem> storage_;
  std::unique_ptr<recovery::WalWriter> wal_;
  std::unique_ptr<recovery::RecoveryManager> recovery_;
  std::unique_ptr<access::AccessSystem> access_;
  std::unique_ptr<mql::DataSystem> data_;
  std::unique_ptr<ldl::LoadDefinition> ldl_;
  std::unique_ptr<TransactionManager> txns_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::unique_ptr<ParallelQueryProcessor> parallel_;
  std::unique_ptr<ObjectBuffer> object_buffer_;
  /// Backs the one-shot Execute/Query facade. Never holds an explicit
  /// transaction open (BEGIN WORK arrives only via Execute, which a
  /// multi-threaded legacy caller must not mix with concurrent DML), so
  /// concurrent facade calls each auto-commit their own implicit
  /// transaction safely.
  std::unique_ptr<Session> default_session_;
  /// Declared last, and explicitly Stop()ped first in ~Prima: the daemon
  /// thread checkpoints through recovery_/access_/wal_ and must be gone
  /// before any of them shuts down.
  std::unique_ptr<recovery::CheckpointDaemon> daemon_;
  /// The TCP front door (options.listen_port >= 0). Started LAST in Open()
  /// — remote sessions must never see a half-built kernel — and stopped
  /// FIRST in ~Prima, before even the daemon: its connection threads run
  /// sessions through every layer below.
  std::unique_ptr<net::Server> net_;
};

}  // namespace prima::core

#endif  // PRIMA_CORE_PRIMA_H_
