#include "core/prima.h"

#include <thread>

namespace prima::core {

using util::Result;
using util::Status;

Result<std::unique_ptr<Prima>> Prima::Open(PrimaOptions options) {
  std::unique_ptr<storage::BlockDevice> device;
  if (options.in_memory) {
    device = std::make_unique<storage::MemoryBlockDevice>();
  } else {
    if (options.path.empty()) {
      return Status::InvalidArgument("file-backed database needs a path");
    }
    device = std::make_unique<storage::FileBlockDevice>(options.path);
  }
  auto db = std::unique_ptr<Prima>(new Prima());
  db->storage_ = std::make_unique<storage::StorageSystem>(std::move(device),
                                                          options.storage);
  PRIMA_RETURN_IF_ERROR(db->storage_->Open());
  db->access_ =
      std::make_unique<access::AccessSystem>(db->storage_.get(), options.access);
  PRIMA_RETURN_IF_ERROR(db->access_->Open());
  db->data_ = std::make_unique<mql::DataSystem>(db->access_.get());
  db->ldl_ = std::make_unique<ldl::LoadDefinition>(db->access_.get());
  db->txns_ = std::make_unique<TransactionManager>(db->access_.get());
  size_t workers = options.parallel_workers;
  if (workers == 0) {
    workers = std::max(2u, std::thread::hardware_concurrency());
  }
  db->pool_ = std::make_unique<util::ThreadPool>(workers);
  db->parallel_ = std::make_unique<ParallelQueryProcessor>(db->data_.get(),
                                                           db->pool_.get());
  db->object_buffer_ = std::make_unique<ObjectBuffer>(db->data_.get());
  return db;
}

Prima::~Prima() {
  if (access_ != nullptr) (void)access_->Flush();
}

Result<mql::ExecResult> Prima::Execute(const std::string& mql) {
  return data_->Execute(mql);
}

Result<mql::MoleculeSet> Prima::Query(const std::string& mql) {
  return data_->ExecuteQuery(mql);
}

Result<mql::MoleculeSet> Prima::QueryParallel(const std::string& mql,
                                              size_t max_units) {
  return parallel_->Run(mql, max_units);
}

Result<std::string> Prima::ExecuteLdl(const std::string& ldl) {
  return ldl_->Execute(ldl);
}

Status Prima::Flush() { return access_->Flush(); }

}  // namespace prima::core
