#include "core/prima.h"

#include <algorithm>
#include <thread>

#include "net/server.h"

namespace prima::core {

using util::Result;
using util::Status;

namespace {
/// Adapts a shared device to the StorageSystem's unique-ownership API
/// (crash-injection tests hand the same underlying device to several
/// database incarnations in turn).
class ForwardingBlockDevice : public storage::BlockDevice {
 public:
  explicit ForwardingBlockDevice(std::shared_ptr<storage::BlockDevice> inner)
      : inner_(std::move(inner)) {}
  util::Status Create(FileId file, uint32_t block_size) override {
    return inner_->Create(file, block_size);
  }
  util::Status Remove(FileId file) override { return inner_->Remove(file); }
  bool Exists(FileId file) const override { return inner_->Exists(file); }
  util::Result<uint32_t> BlockSizeOf(FileId file) const override {
    return inner_->BlockSizeOf(file);
  }
  std::vector<FileId> ListFiles() const override {
    return inner_->ListFiles();
  }
  util::Status Read(FileId file, uint64_t block, char* dst) override {
    return inner_->Read(file, block, dst);
  }
  util::Status Write(FileId file, uint64_t block, const char* src) override {
    return inner_->Write(file, block, src);
  }
  util::Status ReadChained(FileId file, const std::vector<uint64_t>& blocks,
                           char* dst) override {
    return inner_->ReadChained(file, blocks, dst);
  }
  util::Status WriteChained(FileId file, const std::vector<uint64_t>& blocks,
                            const char* src) override {
    return inner_->WriteChained(file, blocks, src);
  }
  util::Status Sync() override { return inner_->Sync(); }

 private:
  std::shared_ptr<storage::BlockDevice> inner_;
};
}  // namespace

Result<std::unique_ptr<Prima>> Prima::Open(PrimaOptions options) {
  std::unique_ptr<storage::BlockDevice> device;
  if (options.device != nullptr) {
    device = std::make_unique<ForwardingBlockDevice>(options.device);
  } else if (options.in_memory) {
    device = std::make_unique<storage::MemoryBlockDevice>();
  } else {
    if (options.path.empty()) {
      return Status::InvalidArgument("file-backed database needs a path");
    }
    device = std::make_unique<storage::FileBlockDevice>(options.path);
  }
  auto db = std::unique_ptr<Prima>(new Prima());
  // Telemetry first: every subsystem built below may take pointers into it
  // (histograms, the hub itself), and teardown destroys it last.
  obs::TelemetryOptions tel_options;
  tel_options.slow_statement_us = options.slow_statement_us;
  tel_options.trace_sample_n = options.trace_sample_n;
  tel_options.slow_log_capacity = options.slow_log_capacity;
  db->telemetry_ = std::make_unique<obs::Telemetry>(tel_options);
  db->shared_device_ = options.device;
  // The database-level scaling knobs are authoritative: resolve hardware
  // defaults and write them into the storage options before the storage
  // system is built around them. "Scale to the hardware" on a single-core
  // machine means DON'T: one shard and serial assembly are the fastest
  // configurations there, and anything else is pure overhead.
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  options.storage.buffer_shards = options.buffer_shards != 0
                                      ? options.buffer_shards
                                      : std::min<size_t>(hw, 16);
  options.storage.readahead_pages = options.readahead_pages;
  db->storage_ = std::make_unique<storage::StorageSystem>(std::move(device),
                                                          options.storage);

  // Media recovery phase 1 runs at DEVICE level, before the storage system
  // reads any segment metadata: wipe the untrusted data files and rewrite
  // them from the fuzzy dump. Phase 2 (replaying history from the dump's
  // start point) takes AnalyzeAndRedo's slot below.
  uint64_t media_start_lsn = 0;
  if (options.restore_from_backup) {
    if (!options.wal) {
      return Status::InvalidArgument(
          "media recovery replays the log - it requires options.wal");
    }
    PRIMA_ASSIGN_OR_RETURN(
        const recovery::BackupInfo restored,
        recovery::BackupManager::Restore(&db->storage_->device()));
    media_start_lsn = restored.start_lsn;
  }
  PRIMA_RETURN_IF_ERROR(db->storage_->Open());
  if (!options.wal) {
    // Open() tolerates zero-headered segment files only because WAL replay
    // can reinstate (or disprove) them; with no log there is no verdict.
    const auto torn = db->storage_->CrashTornSegments();
    if (!torn.empty()) {
      return Status::Corruption("segment " + std::to_string(torn.front()) +
                                ": zeroed header and no log to replay it");
    }
  }

  if (options.wal) {
    // Restart protocol: repeat history on pages before the access layer
    // reads its metadata blobs from them, then roll losers back through it.
    recovery::WalOptions wal_options;
    wal_options.commit_delay_us = options.commit_delay_us;
    wal_options.max_bytes = options.wal_max_bytes;
    wal_options.archive = options.wal_archive;
    db->wal_ = std::make_unique<recovery::WalWriter>(&db->storage_->device(),
                                                     wal_options);
    PRIMA_RETURN_IF_ERROR(db->wal_->Open());
    db->recovery_ = std::make_unique<recovery::RecoveryManager>(
        db->storage_.get(), db->wal_.get(), options.recovery_threads);
    if (options.restore_from_backup) {
      PRIMA_RETURN_IF_ERROR(db->recovery_->MediaRecover(media_start_lsn));
    } else {
      PRIMA_RETURN_IF_ERROR(db->recovery_->AnalyzeAndRedo());
    }
    db->storage_->SetWal(db->wal_.get());
    db->wal_->SetForceWaitHistogram(db->telemetry_->commit_force_us());
  }

  db->access_ =
      std::make_unique<access::AccessSystem>(db->storage_.get(), options.access);
  if (db->wal_ != nullptr) db->access_->SetWal(db->wal_.get());
  PRIMA_RETURN_IF_ERROR(db->access_->Open());
  if (db->recovery_ != nullptr) {
    PRIMA_RETURN_IF_ERROR(db->recovery_->UndoAndFixup(db->access_.get()));
  }

  db->data_ = std::make_unique<mql::DataSystem>(db->access_.get());
  db->data_->set_telemetry(db->telemetry_.get());
  db->ldl_ = std::make_unique<ldl::LoadDefinition>(db->access_.get());
  db->txns_ = std::make_unique<TransactionManager>(db->access_.get());
  if (db->wal_ != nullptr) {
    db->txns_->SetWal(db->wal_.get());
    db->txns_->SeedNextId(db->recovery_->next_txn_id());
  }
  size_t workers = options.parallel_workers;
  if (workers == 0) {
    workers = util::ThreadPool::DefaultThreads();
  }
  db->pool_ = std::make_unique<util::ThreadPool>(workers);
  size_t assembly = options.cursor_assembly_threads;
  if (assembly == 0) {
    // Auto: pipeline across the pool, except on a single core where the
    // look-ahead machinery can only cost (see the knob resolution above).
    assembly = std::thread::hardware_concurrency() > 1 ? workers : 1;
  }
  if (assembly > 1) {
    db->data_->executor().SetAssemblyPool(db->pool_.get(), assembly);
  }
  db->parallel_ = std::make_unique<ParallelQueryProcessor>(db->data_.get(),
                                                           db->pool_.get());
  db->object_buffer_ = std::make_unique<ObjectBuffer>(db->data_.get());
  db->default_session_ = db->OpenSession();

  if (db->recovery_ != nullptr && db->recovery_->recovered()) {
    // Make the recovered state durable and shorten the next restart.
    PRIMA_RETURN_IF_ERROR(db->recovery_->Checkpoint(db->access_.get()));
  }
  db->fully_open_ = true;

  // The checkpoint daemon starts LAST: it checkpoints through the fully
  // assembled stack, and a half-open database must never checkpoint (see
  // fully_open_).
  if (db->wal_ != nullptr && db->wal_->capacity_bytes() > 0 &&
      options.checkpoint_ring_fraction > 0.0) {
    recovery::CheckpointDaemon::Options daemon_options;
    daemon_options.ring_fraction = options.checkpoint_ring_fraction;
    daemon_options.poll_ms = options.checkpoint_poll_ms;
    db->daemon_ = std::make_unique<recovery::CheckpointDaemon>(
        db->recovery_.get(), db->wal_.get(), db->access_.get(),
        daemon_options);
    db->daemon_->Start();
    db->txns_->SetCheckpointDaemon(db->daemon_.get());
  }

  // The network server starts after EVERYTHING, daemon included: the first
  // remote session may arrive the instant the listener binds, and it must
  // find a fully assembled kernel.
  if (options.listen_port >= 0) {
    net::ServerOptions server_options;
    server_options.port = static_cast<uint16_t>(options.listen_port);
    server_options.max_connections = options.net_max_connections;
    server_options.idle_timeout_ms = options.net_idle_timeout_ms;
    db->net_ = std::make_unique<net::Server>(db.get(), server_options);
    PRIMA_RETURN_IF_ERROR(db->net_->Start());
  }
  // Metric registration runs last so the server's gauges (if any) can be
  // included; the registry's mutex makes a racing remote kMetrics safe — it
  // just sees whatever is registered so far.
  db->RegisterKernelMetrics();
  return db;
}

Prima::~Prima() {
  // The network server goes absolutely first: its connection threads run
  // remote sessions through every layer below, and Stop() joins them all —
  // each open remote transaction rolls back, logged, through its session
  // destructor while the WAL is still attached.
  if (net_ != nullptr) net_->Stop();
  // Shutdown ordering with a live daemon thread: stop it BEFORE the exit
  // checkpoint and before any member starts destructing — a daemon
  // checkpoint racing the teardown would walk freed subsystems. As
  // everywhere in ~Prima (WAL detach, member teardown), application
  // threads must have finished their transactions before destruction; a
  // committer already waiting inside RequestCheckpoint is woken by Stop()
  // and fails with Aborted, but destruction concurrent with NEW commits
  // is outside the contract.
  if (daemon_ != nullptr) {
    if (txns_ != nullptr) txns_->SetCheckpointDaemon(nullptr);
    daemon_->Stop();
  }
  // The default session goes before the exit checkpoint: if a client left
  // a BEGIN WORK scope open on the facade, its rollback must run while the
  // WAL is still attached (user-opened sessions must already be gone — a
  // session never outlives its database).
  default_session_.reset();
  if (access_ != nullptr && fully_open_) {
    if (recovery_ != nullptr) {
      (void)recovery_->Checkpoint(access_.get());
    } else {
      (void)access_->Flush();
    }
  }
  if (wal_ != nullptr) {
    // With a WAL the checkpoint above is the ONLY legitimate shutdown
    // flush. The members' destructor flushes must be suppressed, not just
    // detached from the log: an unlogged PersistMetadata would rewrite the
    // metadata blobs (reshuffling their component pages and wiping
    // page-LSNs) AFTER the checkpoint's master record committed, so the
    // next restart's redo — replaying the checkpoint window over those
    // pages — would reassemble a corrupt blob and silently lose the
    // database. (Found by a crash-recover-reopen drive; needs a multi-page
    // blob, i.e. a few hundred atoms.) If the checkpoint failed, skipping
    // the flushes is equally right: commits are durable in the log, and
    // restart recovery replays them onto the last consistent state.
    if (access_ != nullptr) access_->set_flush_on_close(false);
    if (storage_ != nullptr) storage_->set_flush_on_close(false);
  }
  // Detach the WAL before members destruct (a stray flush must not reach a
  // dead log).
  if (storage_ != nullptr) storage_->SetWal(nullptr);
  if (access_ != nullptr) access_->SetWal(nullptr);
  if (txns_ != nullptr) txns_->SetWal(nullptr);
}

Result<mql::ExecResult> Prima::Execute(const std::string& mql) {
  return default_session_->Execute(mql);
}

Result<mql::MoleculeSet> Prima::Query(const std::string& mql) {
  PRIMA_ASSIGN_OR_RETURN(mql::MoleculeCursor cursor,
                         default_session_->Query(mql));
  return cursor.Drain();
}

Result<mql::MoleculeSet> Prima::QueryParallel(const std::string& mql,
                                              size_t max_units) {
  return parallel_->Run(mql, max_units);
}

Result<std::string> Prima::ExecuteLdl(const std::string& ldl) {
  return ldl_->Execute(ldl);
}

Status Prima::Flush() {
  if (recovery_ != nullptr) return recovery_->Checkpoint(access_.get());
  return access_->Flush();
}

Result<recovery::BackupInfo> Prima::Backup() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument(
        "a restorable backup needs the log - open with options.wal");
  }
  if (wal_->capacity_bytes() > 0 && wal_->archiver() == nullptr) {
    // Refuse now rather than at disaster time: the very next truncation of
    // a circular log would recycle blocks the dump's replay depends on,
    // turning a "successful" backup unrestorable.
    return Status::InvalidArgument(
        "a bounded WAL recycles log blocks - enable options.wal_archive so "
        "the dump stays replayable");
  }
  // Checkpoint first: it shortens the eventual replay and archives the
  // pre-floor blocks, and the dump's start point becomes this checkpoint.
  PRIMA_RETURN_IF_ERROR(recovery_->Checkpoint(access_.get()));
  return recovery::BackupManager::TakeBackup(storage_.get(), wal_.get());
}

void Prima::RegisterKernelMetrics() {
  obs::MetricsRegistry& reg = telemetry_->registry();
  // Buffer pool.
  storage::BufferStats& buf = storage_->buffer().stats();
  reg.RegisterCounter("prima_buffer_hits", &buf.hits, "page fixes served from the pool");
  reg.RegisterCounter("prima_buffer_misses", &buf.misses, "page fixes that read the device");
  reg.RegisterCounter("prima_buffer_evictions", &buf.evictions, "clock-sweep evictions");
  reg.RegisterCounter("prima_buffer_writebacks", &buf.writebacks, "dirty pages written back");
  reg.RegisterCounter("prima_buffer_prefetched_pages", &buf.prefetched_pages, "pages loaded by read-ahead");
  reg.RegisterGauge("prima_buffer_resident_bytes",
                    [this] { return storage_->buffer().resident_bytes(); },
                    "bytes resident in the pool");
  // Access system.
  access::AccessStats& acc = access_->stats();
  reg.RegisterCounter("prima_atoms_inserted", &acc.atoms_inserted);
  reg.RegisterCounter("prima_atoms_read", &acc.atoms_read);
  reg.RegisterCounter("prima_atoms_modified", &acc.atoms_modified);
  reg.RegisterCounter("prima_atoms_deleted", &acc.atoms_deleted);
  reg.RegisterCounter("prima_deferred_enqueued", &acc.deferred_enqueued, "deferred redundancy updates queued");
  reg.RegisterCounter("prima_deferred_applied", &acc.deferred_applied, "deferred redundancy updates drained");
  // Version store (MVCC snapshot reads).
  access::VersionStoreStats& ver = access_->versions().stats();
  reg.RegisterCounter("prima_versions_installed", &ver.versions_installed, "before-images chained by writers");
  reg.RegisterCounter("prima_versions_retired", &ver.versions_retired, "chain entries trimmed by the watermark");
  reg.RegisterCounter("prima_versions_resolved", &ver.versions_resolved, "snapshot reads served off-chain");
  reg.RegisterCounter("prima_version_chain_walks", &ver.chain_walks, "Resolve calls that found a chain");
  reg.RegisterCounter("prima_version_chain_depth_1", &ver.chain_depth_1, "chain walks visiting 1 entry");
  reg.RegisterCounter("prima_version_chain_depth_2", &ver.chain_depth_2, "chain walks visiting 2 entries");
  reg.RegisterCounter("prima_version_chain_depth_3", &ver.chain_depth_3, "chain walks visiting 3 entries");
  reg.RegisterCounter("prima_version_chain_depth_4plus", &ver.chain_depth_4plus, "chain walks visiting >= 4 entries");
  reg.RegisterCounter("prima_snapshots_opened", &ver.snapshots_opened, "read views pinned, ever");
  reg.RegisterGauge("prima_versions_retained",
                    [this] { return access_->versions().StatsSnapshot().versions_retained; },
                    "chain entries live right now");
  reg.RegisterGauge("prima_snapshots_active",
                    [this] { return access_->versions().StatsSnapshot().snapshots_active; },
                    "read views pinned right now");
  reg.RegisterGauge("prima_versions_oldest_snapshot_lsn",
                    [this] { return access_->versions().StatsSnapshot().oldest_snapshot_lsn; },
                    "commit LSN the oldest pinned snapshot holds retirement at (0 = none)");
  // Data system.
  mql::DataStats& data = data_->stats();
  reg.RegisterCounter("prima_queries", &data.queries, "cursors opened (all query paths)");
  reg.RegisterCounter("prima_molecules_built", &data.molecules_built);
  reg.RegisterCounter("prima_cursor_molecules", &data.cursor_molecules, "molecules streamed via Next()");
  reg.RegisterCounter("prima_statements_prepared", &data.statements_prepared);
  reg.RegisterCounter("prima_prepared_executions", &data.prepared_executions);
  reg.RegisterGauge("prima_stmt_cache_hits",
                    [this] { return data_->statement_cache().hits(); },
                    "shared statement-cache hits");
  reg.RegisterGauge("prima_stmt_cache_misses",
                    [this] { return data_->statement_cache().misses(); },
                    "shared statement-cache misses");
  // Transaction manager (non-blocking 2PL): conflict and retry rates per
  // workload tier come from diffing these around a run.
  TransactionStats& txn = txns_->stats();
  reg.RegisterCounter("prima_txns_begun", &txn.begun);
  reg.RegisterCounter("prima_txns_committed", &txn.committed);
  reg.RegisterCounter("prima_txns_aborted", &txn.aborted);
  reg.RegisterCounter("prima_txn_lock_conflicts", &txn.lock_conflicts,
                      "lock requests refused (non-blocking 2PL)");
  reg.RegisterCounter("prima_txn_retries", &txn.txn_retries,
                      "transactions re-run after a transient failure");
  reg.RegisterCounter("prima_txn_undo_applied", &txn.undo_applied,
                      "undo records compensated by aborts");
  // WAL (absent without options.wal).
  if (wal_ != nullptr) {
    recovery::WalStats& wal = wal_->stats();
    reg.RegisterCounter("prima_wal_records_appended", &wal.records_appended);
    reg.RegisterCounter("prima_wal_bytes_appended", &wal.bytes_appended);
    reg.RegisterCounter("prima_wal_forces", &wal.forces, "log device write batches");
    reg.RegisterCounter("prima_wal_commits_forced", &wal.commits_forced);
    reg.RegisterCounter("prima_wal_auto_checkpoints", &wal.auto_checkpoints);
    reg.RegisterGauge("prima_wal_live_bytes",
                      [this] { return wal_stats().live_bytes; },
                      "log bytes between the truncation floor and the append point");
  }
  // Network server (absent without listen_port); the counters live in the
  // server object, so pull them as gauges.
  if (net_ != nullptr) {
    reg.RegisterGauge("prima_net_connections_active",
                      [this] { return net_->Stats().connections_active; });
    reg.RegisterGauge("prima_net_statements_executed",
                      [this] { return net_->Stats().statements_executed; });
    reg.RegisterGauge("prima_net_molecules_streamed",
                      [this] { return net_->Stats().molecules_streamed; });
  }
}

PrimaStatsSnapshot Prima::stats() const {
  PrimaStatsSnapshot s;
  s.buffer = storage_->buffer().SnapshotStats();
  s.data = mql::SnapshotStats(data_->stats());
  s.access = access::SnapshotStats(access_->stats());
  s.wal = wal_stats();
  s.versions = access_->versions().StatsSnapshot();
  {
    const TransactionStats& txn = txns_->stats();
    s.txn.begun = txn.begun.load(std::memory_order_relaxed);
    s.txn.committed = txn.committed.load(std::memory_order_relaxed);
    s.txn.aborted = txn.aborted.load(std::memory_order_relaxed);
    s.txn.lock_conflicts = txn.lock_conflicts.load(std::memory_order_relaxed);
    s.txn.undo_applied = txn.undo_applied.load(std::memory_order_relaxed);
    s.txn.txn_retries = txn.txn_retries.load(std::memory_order_relaxed);
  }
  if (net_ != nullptr) s.net = net_->Stats();
  s.statement_us = telemetry_->statement_us()->Snapshot();
  s.traced_statements = telemetry_->traced();
  s.slow_statements = telemetry_->slow_log().captured();
  return s;
}

recovery::WalStatsSnapshot Prima::wal_stats() const {
  if (wal_ == nullptr) return recovery::WalStatsSnapshot{};
  recovery::WalStatsSnapshot s = wal_->StatsSnapshot();
  if (recovery_ != nullptr) {
    // The redo shape of this database's last restart/media recovery — the
    // log only stores history, the recovery manager replays it.
    s.redo_records_applied = recovery_->stats().redo_applied;
    s.redo_apply_threads = recovery_->stats().redo_threads;
  }
  return s;
}

}  // namespace prima::core
