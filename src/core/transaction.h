#ifndef PRIMA_CORE_TRANSACTION_H_
#define PRIMA_CORE_TRANSACTION_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "access/access_system.h"

namespace prima::recovery {
class CheckpointDaemon;
class WalWriter;
}  // namespace prima::recovery

namespace prima::core {

enum class LockMode : uint8_t { kRead, kWrite };

class TransactionManager;

/// A node of a nested-transaction tree (paper §4, refining Moss [Mo81]):
/// subtransactions acquire locks under the ancestor rule, commit by
/// inheriting locks and undo information to their parent, and abort by
/// selective in-transaction recovery — only the subtree's effects are
/// compensated.
///
/// All data operations go through the transaction so locking and undo
/// logging are automatic. Lock requests are non-blocking: a conflicting
/// request returns kConflict and the caller decides (retry or abort).
class Transaction {
 public:
  uint64_t id() const { return id_; }
  Transaction* parent() const { return parent_; }
  bool active() const { return state_ == State::kActive; }
  size_t undo_size() const { return undo_.size(); }

  /// Spawn a subtransaction (the unit of work of semantic decomposition).
  util::Result<Transaction*> BeginChild();

  // --- transactional data operations -----------------------------------------

  util::Result<access::Tid> InsertAtom(access::AtomTypeId type,
                                       std::vector<access::AttrValue> values);
  util::Result<access::Atom> GetAtom(
      const access::Tid& tid, const std::vector<uint16_t>& projection = {});
  util::Status ModifyAtom(const access::Tid& tid,
                          std::vector<access::AttrValue> changes);
  util::Status DeleteAtom(const access::Tid& tid);
  util::Status Connect(const access::Tid& from, uint16_t attr,
                       const access::Tid& to);
  util::Status Disconnect(const access::Tid& from, uint16_t attr,
                          const access::Tid& to);

  // --- outcome -----------------------------------------------------------------

  /// Commit: a subtransaction passes locks + undo to its parent; a
  /// top-level transaction releases everything (effects are durable at the
  /// next flush). Fails if any child is still active.
  util::Status Commit();

  /// Abort: compensate this subtree's effects (reverse undo application)
  /// and release its locks. The surrounding transaction continues.
  util::Status Abort();

 private:
  friend class TransactionManager;
  enum class State : uint8_t { kActive, kCommitted, kAborted };

  Transaction(TransactionManager* mgr, uint64_t id, Transaction* parent)
      : mgr_(mgr), id_(id), parent_(parent) {}

  /// Write-lock the atom and every atom its association change will touch.
  util::Status LockRefTargets(const access::Value& value);

  util::Status CheckActive() const;

  TransactionManager* mgr_;
  uint64_t id_;
  Transaction* parent_;
  State state_ = State::kActive;
  std::vector<std::unique_ptr<Transaction>> children_;
  size_t active_children_ = 0;
  std::vector<access::AccessSystem::UndoRecord> undo_;
  std::map<uint64_t, LockMode> locks_;  // packed tid -> mode
};

struct TransactionStats {
  std::atomic<uint64_t> begun{0};
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> aborted{0};
  std::atomic<uint64_t> lock_conflicts{0};
  std::atomic<uint64_t> undo_applied{0};
  /// Transactions re-run after a transient (kConflict) failure. The kernel
  /// cannot see a client's retry decision, so this is fed by the retry
  /// helper (util::RetryPolicy::retry_counter) — in-process drivers point
  /// it here; remote clients retry on their own side of the wire and this
  /// stays 0 for them.
  std::atomic<uint64_t> txn_retries{0};
};

/// Plain-data copy of TransactionStats (Prima::stats() leg): conflict and
/// retry rates per bench tier come from diffing two of these.
struct TransactionStatsSnapshot {
  uint64_t begun = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t lock_conflicts = 0;
  uint64_t undo_applied = 0;
  uint64_t txn_retries = 0;
};

/// Owns the transaction trees and the atom lock table.
class TransactionManager {
 public:
  explicit TransactionManager(access::AccessSystem* access)
      : access_(access) {}

  /// Start a top-level transaction (owned by the manager until finished).
  util::Result<Transaction*> Begin();

  /// Destroy a FINISHED top-level transaction tree and release its memory.
  /// Without reaping, the manager keeps every transaction it ever began
  /// (tests inspect them after the fact); a session executing millions of
  /// auto-committed statements must reap each one or the registry grows
  /// without bound. The pointer is invalid afterwards. Fails (and leaves
  /// the transaction alone) if it is still active, is a subtransaction, or
  /// is not registered here.
  util::Status Reap(Transaction* txn);

  /// Attach (or detach) the write-ahead log. Top-level transactions then
  /// write begin/commit/abort records, a top-level Commit() forces the log
  /// (group commit — durability at commit, not at the next flush), and
  /// Abort() brackets its compensations with a kCompensation record.
  void SetWal(recovery::WalWriter* wal) { wal_ = wal; }

  /// Attach (or detach) the background checkpoint daemon. A top-level
  /// Commit() whose log force is refused with NoSpace (circular WAL full)
  /// then pokes the daemon and retries the force once after the checkpoint
  /// completes, instead of bubbling NoSpace to a well-behaved committer.
  void SetCheckpointDaemon(recovery::CheckpointDaemon* daemon) {
    ckpt_daemon_ = daemon;
  }

  /// Raise the id generator to at least `id`. Restart recovery calls this
  /// with one past the highest transaction id in the log's scan window:
  /// reusing an id still visible there would let the old id's commit
  /// record mark a new crashed transaction as finished.
  void SeedNextId(uint64_t id);

  TransactionStats& stats() { return stats_; }
  access::AccessSystem& access() { return *access_; }

  /// Number of atoms currently locked (tests).
  size_t LockedAtomCount() const;

 private:
  friend class Transaction;

  /// Moss's rule: a lock may be granted iff every conflicting holder is an
  /// ancestor of (or is) the requester.
  util::Status Acquire(Transaction* txn, const access::Tid& tid, LockMode mode);
  void ReleaseAll(Transaction* txn);
  void InheritToParent(Transaction* child);

  /// Top-level ancestor of `txn` — the transaction the WAL knows about
  /// (subtransaction structure is volatile; their records share the root id).
  static uint64_t RootId(const Transaction* txn);

  /// Run `op` with the undo hook routed into `txn`'s log and the thread's
  /// WAL records tagged with the root transaction. Serializes transactional
  /// writes.
  template <typename Fn>
  auto WithUndoHook(Transaction* txn, Fn&& op) {
    std::lock_guard<std::mutex> lock(hook_mu_);
    access_->SetUndoHook([txn](const access::AccessSystem::UndoRecord& rec) {
      txn->undo_.push_back(rec);
    });
    access::AccessSystem::SetWalTxn(RootId(txn));
    auto result = op();
    access::AccessSystem::SetWalTxn(0);
    access_->SetUndoHook(nullptr);
    return result;
  }

  static bool IsAncestorOf(const Transaction* maybe_ancestor,
                           const Transaction* txn);

  access::AccessSystem* access_;
  recovery::WalWriter* wal_ = nullptr;
  recovery::CheckpointDaemon* ckpt_daemon_ = nullptr;
  TransactionStats stats_;

  mutable std::mutex mu_;  // lock table + registry
  struct LockEntry {
    std::map<Transaction*, LockMode> holders;
  };
  std::unordered_map<uint64_t, LockEntry> lock_table_;
  std::vector<std::unique_ptr<Transaction>> top_level_;
  uint64_t next_id_ = 1;

  std::mutex hook_mu_;  // serializes hooked write operations
};

}  // namespace prima::core

#endif  // PRIMA_CORE_TRANSACTION_H_
