#include "core/session.h"

#include <cctype>

#include "mql/parser.h"
#include "obs/trace.h"

namespace prima::core {

using mql::ExecResult;
using mql::MoleculeCursor;
using mql::Statement;
using util::Result;
using util::Status;

namespace {

bool ExprHasParam(const mql::Expr* e) {
  if (e == nullptr) return false;
  if (e->param >= 0) return true;
  for (const mql::ExprPtr& c : e->children) {
    if (ExprHasParam(c.get())) return true;
  }
  return ExprHasParam(e->quant_body.get());
}

/// The WHERE clause whose root predicates feed the plan, if the statement
/// has one.
const mql::Expr* PlannedWhere(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kQuery:
      return stmt.query.where.get();
    case Statement::Kind::kDelete:
      return stmt.del.where.get();
    case Statement::Kind::kModify:
      return stmt.modify.where.get();
    default:
      return nullptr;
  }
}

const mql::FromClause* PlannedFrom(const Statement& stmt) {
  switch (stmt.kind) {
    case Statement::Kind::kQuery:
      return &stmt.query.from;
    case Statement::Kind::kDelete:
      return &stmt.del.from;
    case Statement::Kind::kModify:
      return &stmt.modify.from;
    default:
      return nullptr;
  }
}

bool IsDml(Statement::Kind kind) {
  return kind == Statement::Kind::kInsert ||
         kind == Statement::Kind::kDelete ||
         kind == Statement::Kind::kModify ||
         kind == Statement::Kind::kConnect;
}

bool IsDdl(Statement::Kind kind) {
  return kind == Statement::Kind::kCreateAtomType ||
         kind == Statement::Kind::kDefineMoleculeType ||
         kind == Statement::Kind::kDrop;
}

/// Text peek for the EXPLAIN ANALYZE prefix, tolerant of leading
/// whitespace and `(* ... *)` comments. Tracing must be armed BEFORE the
/// statement is parsed (the parse span is part of the report), and the
/// cache-text lookup happens before parsing too — so the decision has to
/// come from the raw text.
bool IsExplainAnalyze(const std::string& text) {
  size_t i = 0;
  const size_t n = text.size();
  for (;;) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i + 1 < n && text[i] == '(' && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == ')')) ++i;
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }
    break;
  }
  static constexpr char kWord[] = "EXPLAIN";
  constexpr size_t kLen = sizeof(kWord) - 1;
  if (i + kLen > n) return false;
  for (size_t k = 0; k < kLen; ++k) {
    if (std::toupper(static_cast<unsigned char>(text[i + k])) != kWord[k]) {
      return false;
    }
  }
  // Must end the word: "EXPLAINER" is an identifier, not the keyword.
  return i + kLen == n ||
         !std::isalnum(static_cast<unsigned char>(text[i + kLen]));
}

std::string SummarizeResult(const ExecResult& r) {
  switch (r.kind) {
    case ExecResult::Kind::kMolecules:
      return std::to_string(r.molecules.molecules.size()) + " molecule(s)";
    case ExecResult::Kind::kTid:
      return "inserted " + r.tid.ToString();
    case ExecResult::Kind::kCount:
      return std::to_string(r.count) + " atom(s) affected";
    case ExecResult::Kind::kNone:
    case ExecResult::Kind::kText:
      return "ok";
  }
  return "ok";
}

}  // namespace

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(mql::DataSystem* data, TransactionManager* txns)
    : data_(data),
      txns_(txns),
      cursor_epoch_(std::make_shared<std::atomic<bool>>(false)) {}

Session::~Session() {
  // Roll back whatever the client left open — a vanished session must not
  // leave its uncommitted work (or its locks) behind. A read-only pin left
  // open would hold the version-store watermark down forever.
  while (!txn_stack_.empty()) {
    (void)AbortWork();
  }
  read_only_pin_.reset();
  InvalidateCursors();
}

void Session::InvalidateCursors() {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  cursor_epoch_->store(true);
  cursor_epoch_ = std::make_shared<std::atomic<bool>>(false);
}

Status Session::BeginWork(bool read_only) {
  if (read_only_pin_ != nullptr) {
    // A read-only transaction has no subtransactions: there is nothing to
    // write, so there is nothing to scope a partial rollback around.
    return Status::InvalidArgument(
        "BEGIN WORK inside a READ ONLY transaction - COMMIT WORK first");
  }
  if (read_only) {
    if (!txn_stack_.empty()) {
      return Status::InvalidArgument(
          "BEGIN WORK READ ONLY must start at top level, not inside an open "
          "transaction");
    }
    read_only_pin_ = data_->access().versions().OpenSnapshot(/*own_txn=*/0);
    return Status::Ok();
  }
  Transaction* txn = nullptr;
  if (txn_stack_.empty()) {
    PRIMA_ASSIGN_OR_RETURN(txn, txns_->Begin());
  } else {
    PRIMA_ASSIGN_OR_RETURN(txn, txn_stack_.back()->BeginChild());
  }
  txn_stack_.push_back(txn);
  return Status::Ok();
}

Status Session::CommitWork() {
  if (read_only_pin_ != nullptr) {
    // Nothing to make durable — releasing the pin lets the version store
    // retire everything this view was holding.
    read_only_pin_.reset();
    return Status::Ok();
  }
  if (txn_stack_.empty()) {
    return Status::InvalidArgument("COMMIT WORK outside a transaction");
  }
  Transaction* top = txn_stack_.back();
  // On failure (e.g. a log force refused on a wedged ring) the transaction
  // stays active and ON the stack: the client may retry COMMIT WORK or
  // fall back to ABORT WORK.
  PRIMA_RETURN_IF_ERROR(top->Commit());
  txn_stack_.pop_back();
  if (txn_stack_.empty()) {
    (void)txns_->Reap(top);
  }
  return Status::Ok();
}

Status Session::AbortWork() {
  if (read_only_pin_ != nullptr) {
    // Identical to COMMIT for a read-only transaction: no writes to roll
    // back, and the session's cursors stay valid — nothing they read moved.
    read_only_pin_.reset();
    return Status::Ok();
  }
  if (txn_stack_.empty()) {
    return Status::InvalidArgument("ABORT WORK outside a transaction");
  }
  Transaction* top = txn_stack_.back();
  const bool wrote = top->undo_size() > 0;  // inherited child undo included
  const Status st = top->Abort();  // state is kAborted even if a
                                   // compensation surfaced an error
  txn_stack_.pop_back();
  // The atoms open cursors would stream rolled back — unless the
  // transaction never wrote, in which case nothing they read changed.
  if (wrote) InvalidateCursors();
  if (txn_stack_.empty()) {
    (void)txns_->Reap(top);
  }
  return st;
}

Result<ExecResult> Session::ExecuteStatement(const Statement& stmt,
                                             const mql::QueryPlan* plan) {
  if (read_only_pin_ != nullptr) {
    if (IsDml(stmt.kind)) {
      return Status::InvalidArgument(
          "DML is not allowed in a READ ONLY transaction - COMMIT WORK "
          "first");
    }
    if (IsDdl(stmt.kind)) {
      return Status::InvalidArgument(
          "DDL is not allowed in a READ ONLY transaction - COMMIT WORK "
          "first");
    }
  }
  if (!IsDml(stmt.kind)) {
    // Queries read without locks (as ever); DDL is untransacted (catalog
    // changes are not undo-logged — see ROADMAP "log catalog/DDL
    // operations"); transaction control dispatches back into the session.
    Ctx ctx(this, nullptr);
    return data_->ExecuteStatement(stmt, &ctx, plan);
  }

  // DML: every mutation runs inside a transaction. Outside an open
  // BEGIN WORK scope the statement gets an implicit transaction of its
  // own (auto-commit; durable before the call returns). Inside one it
  // runs as a subtransaction, so a failed statement compensates only its
  // own effects and the surrounding transaction continues (paper §4's
  // selective in-transaction recovery).
  Transaction* scope = CurrentTxn();
  Transaction* stmt_txn = nullptr;
  const bool implicit = scope == nullptr;
  if (implicit) {
    PRIMA_ASSIGN_OR_RETURN(stmt_txn, txns_->Begin());
  } else {
    PRIMA_ASSIGN_OR_RETURN(stmt_txn, scope->BeginChild());
  }

  Ctx ctx(this, stmt_txn);
  Result<ExecResult> result = data_->ExecuteStatement(stmt, &ctx, plan);
  Status outcome;
  if (result.ok()) {
    outcome = stmt_txn->Commit();
    if (!outcome.ok()) {
      // Commit refused (log force failed): the transaction is still
      // active, so roll the statement back rather than leave it limbo.
      const bool wrote = stmt_txn->undo_size() > 0;
      (void)stmt_txn->Abort();
      if (wrote) InvalidateCursors();
    }
  } else {
    // Statement-level atomicity. Open cursors are invalidated only when
    // the rollback actually compensated writes — a statement refused by
    // pure validation (unknown attribute, type mismatch before the first
    // mutation) must not kill unrelated in-flight streams.
    const bool wrote = stmt_txn->undo_size() > 0;
    (void)stmt_txn->Abort();
    if (wrote) InvalidateCursors();
  }
  if (implicit) {
    (void)txns_->Reap(stmt_txn);
  }
  if (!result.ok()) return result.status();
  PRIMA_RETURN_IF_ERROR(outcome);
  return result;
}

std::shared_ptr<access::VersionStore::Pin> Session::PinForQuery(
    std::optional<Isolation> isolation) {
  if (read_only_pin_ != nullptr) {
    // All statements of a READ ONLY transaction share the one view pinned
    // at BEGIN — that sharing IS the repeatability guarantee.
    return read_only_pin_;
  }
  if (isolation.value_or(default_isolation_) != Isolation::kSnapshot) {
    return nullptr;
  }
  // Statement-level snapshot: a fresh view per cursor. Inside an open
  // read-write transaction the view carries the root transaction id, so
  // the session still sees its own uncommitted writes.
  const uint64_t own_txn =
      txn_stack_.empty() ? 0 : txn_stack_.front()->id();
  return data_->access().versions().OpenSnapshot(own_txn);
}

Result<MoleculeCursor> Session::OpenCursor(mql::Query query,
                                           const mql::QueryPlan* plan,
                                           std::optional<Isolation> isolation) {
  std::shared_ptr<access::VersionStore::Pin> snapshot = PinForQuery(isolation);
  std::shared_ptr<const std::atomic<bool>> token;
  if (snapshot == nullptr || snapshot->view().own_txn != 0) {
    // Snapshot cursors with no transaction of their own skip the
    // invalidation token on purpose: an abort's compensations restore
    // exactly the before-images the version chains already serve, so the
    // pinned view stays coherent through it. A view that CAN see its own
    // transaction's writes keeps the token — those writes vanish on abort.
    std::lock_guard<std::mutex> lock(epoch_mu_);
    token = cursor_epoch_;
  }
  if (plan != nullptr) {
    return data_->executor().OpenCursorWithPlan(std::move(query), *plan,
                                                std::move(token),
                                                active_trace_,
                                                std::move(snapshot));
  }
  return data_->executor().OpenCursor(std::move(query), std::move(token),
                                      active_trace_, std::move(snapshot));
}

Result<std::shared_ptr<const mql::CachedStatement>> Session::CompileOneShot(
    const std::string& mql) {
  // The version is read BEFORE parsing/planning: racing DDL can only make
  // the stamp conservatively old, so the entry reads as stale and is
  // recompiled — a plan can never outlive the catalog it was built against.
  const uint64_t schema_version = data_->access().catalog().schema_version();
  std::shared_ptr<const mql::CachedStatement> cached =
      data_->statement_cache().Lookup(mql, schema_version);
  obs::StatementTrace* trace = obs::CurrentTrace();
  if (cached != nullptr) {
    if (trace != nullptr) trace->GetPhase("plan")->AddCounter("cache_hit", 1);
    return cached;
  }

  obs::Telemetry* tel = data_->telemetry();
  auto entry = std::make_shared<mql::CachedStatement>();
  entry->schema_version = schema_version;
  {
    const uint64_t t0 = (trace || tel) ? obs::NowNs() : 0;
    PRIMA_ASSIGN_OR_RETURN(entry->stmt, mql::ParseStatement(mql));
    const uint64_t ns = (trace || tel) ? obs::NowNs() - t0 : 0;
    if (trace != nullptr) trace->AddPhaseNs("parse", ns);
    if (tel != nullptr) tel->parse_us()->Record(ns / 1000);
  }
  if (!entry->stmt.params.empty()) {
    return Status::InvalidArgument(
        "statement has placeholders - use Session::Prepare and bind them");
  }
  // Plan FROM-bearing statements now (no placeholders can be present, so
  // every literal the plan embeds is fixed by the text — exactly what a
  // text-keyed cache may reuse).
  if (const mql::FromClause* from = PlannedFrom(entry->stmt)) {
    const uint64_t t0 = (trace || tel) ? obs::NowNs() : 0;
    PRIMA_ASSIGN_OR_RETURN(
        mql::QueryPlan plan,
        data_->executor().Prepare(*from, PlannedWhere(entry->stmt)));
    entry->plan = std::move(plan);
    const uint64_t ns = (trace || tel) ? obs::NowNs() - t0 : 0;
    if (trace != nullptr) {
      trace->AddPhaseNs("plan", ns);
      trace->GetPhase("plan")->AddCounter("cache_miss", 1);
    }
    if (tel != nullptr) tel->plan_us()->Record(ns / 1000);
  } else if (trace != nullptr) {
    trace->GetPhase("plan")->AddCounter("cache_miss", 1);
  }
  // EXPLAIN ANALYZE statements are never published to the cache: the whole
  // point of the report is watching parse and plan happen, and a cache hit
  // would blank those phases.
  if (mql::StatementCache::Cacheable(entry->stmt.kind) &&
      !entry->stmt.explain_analyze) {
    data_->statement_cache().Insert(mql, entry);
  }
  return std::shared_ptr<const mql::CachedStatement>(std::move(entry));
}

template <typename Fn>
Result<ExecResult> Session::RunInstrumented(const std::string& text,
                                            bool explain, Fn&& body) {
  obs::Telemetry* tel = data_->telemetry();
  const bool traced =
      explain || (tel != nullptr && tel->ShouldTraceStatement());
  if (!traced) {
    // Knobs-off hot path: one histogram record (two clock reads) when
    // telemetry exists, nothing at all for bare embedded rigs.
    if (tel == nullptr) return body();
    const uint64_t t0 = obs::NowNs();
    Result<ExecResult> r = body();
    tel->statement_us()->Record((obs::NowNs() - t0) / 1000);
    return r;
  }

  auto trace = std::make_shared<obs::StatementTrace>();
  active_trace_ = trace;
  Result<ExecResult> r = [&] {
    obs::TraceContext ctx(trace.get());
    return body();
  }();
  active_trace_.reset();
  trace->Finish();
  if (tel != nullptr) {
    tel->CountTraced();
    tel->RecordStatement(text, trace.get(), trace->total_ns() / 1000);
  }
  if (explain && r.ok()) {
    ExecResult er;
    er.kind = ExecResult::Kind::kText;
    er.text = trace->Render("EXPLAIN ANALYZE: " + SummarizeResult(*r));
    return er;
  }
  return r;
}

Result<ExecResult> Session::ExecuteCompiled(const std::string& mql) {
  PRIMA_ASSIGN_OR_RETURN(std::shared_ptr<const mql::CachedStatement> compiled,
                         CompileOneShot(mql));
  const mql::QueryPlan* plan =
      compiled->plan.has_value() ? &*compiled->plan : nullptr;
  if (compiled->stmt.kind == Statement::Kind::kQuery) {
    // The materializing facade is exactly "open a cursor, drain it". The
    // cursor owns a clone — the shared cache entry stays immutable.
    PRIMA_ASSIGN_OR_RETURN(
        MoleculeCursor cursor,
        OpenCursor(mql::CloneQuery(compiled->stmt.query), plan));
    ExecResult r;
    r.kind = ExecResult::Kind::kMolecules;
    PRIMA_ASSIGN_OR_RETURN(r.molecules, cursor.Drain());
    return r;
  }
  return ExecuteStatement(compiled->stmt, plan);
}

Result<ExecResult> Session::Execute(const std::string& mql) {
  return RunInstrumented(mql, IsExplainAnalyze(mql),
                         [&] { return ExecuteCompiled(mql); });
}

Result<MoleculeCursor> Session::Query(const std::string& mql,
                                      std::optional<Isolation> isolation) {
  PRIMA_ASSIGN_OR_RETURN(std::shared_ptr<const mql::CachedStatement> compiled,
                         CompileOneShot(mql));
  if (compiled->stmt.kind != Statement::Kind::kQuery) {
    return Status::InvalidArgument("statement is not a query");
  }
  if (compiled->stmt.explain_analyze) {
    // A streaming cursor outlives the statement scope a trace is tied to.
    return Status::InvalidArgument(
        "EXPLAIN ANALYZE must go through Execute, not Query");
  }
  return OpenCursor(mql::CloneQuery(compiled->stmt.query),
                    compiled->plan.has_value() ? &*compiled->plan : nullptr,
                    isolation);
}

Result<PreparedStatement> Session::Prepare(const std::string& mql,
                                           std::optional<Isolation> isolation) {
  PreparedStatement ps(this);
  ps.isolation_ = isolation;
  PRIMA_ASSIGN_OR_RETURN(ps.stmt_, mql::ParseStatement(mql));
  if (ps.stmt_.explain_analyze) {
    return Status::InvalidArgument(
        "EXPLAIN ANALYZE cannot be prepared - use Execute");
  }
  ps.text_ = mql;
  ps.bound_.resize(ps.stmt_.params.size());
  data_->stats().statements_prepared++;
  // Plan now when no placeholder can reach the WHERE clause (placeholders
  // in INSERT/MODIFY SET values never affect access-path choice); plans
  // with placeholders in the WHERE wait for the first execution's bound
  // values — planning around unbound slots would embed nulls in the key.
  if (PlannedFrom(ps.stmt_) != nullptr && !ExprHasParam(PlannedWhere(ps.stmt_))) {
    ps.plan_schema_version_ = data_->access().catalog().schema_version();
    PRIMA_ASSIGN_OR_RETURN(
        mql::QueryPlan plan,
        data_->executor().Prepare(*PlannedFrom(ps.stmt_),
                                  PlannedWhere(ps.stmt_)));
    ps.plan_ = std::move(plan);
    ps.plans_computed_++;
    data_->stats().prepared_plans++;
  }
  return ps;
}

// ---------------------------------------------------------------------------
// PreparedStatement
// ---------------------------------------------------------------------------

Status PreparedStatement::Bind(size_t index, access::Value value) {
  if (index >= bound_.size()) {
    return Status::InvalidArgument(
        "parameter index " + std::to_string(index) + " out of range (" +
        std::to_string(bound_.size()) + " placeholders)");
  }
  bound_[index] = std::move(value);
  return Status::Ok();
}

Status PreparedStatement::Bind(const std::string& name, access::Value value) {
  if (name.empty()) {
    // Positional (`?`) slots have empty names; matching them here would
    // silently bind the wrong slot for a caller's empty name variable.
    return Status::InvalidArgument("bind by name needs a non-empty name");
  }
  for (size_t i = 0; i < stmt_.params.size(); ++i) {
    if (stmt_.params[i].name == name) return Bind(i, std::move(value));
  }
  return Status::InvalidArgument("no placeholder named :" + name);
}

void PreparedStatement::ClearBindings() {
  bound_.assign(bound_.size(), std::nullopt);
}

Status PreparedStatement::CheckBound() const {
  for (size_t i = 0; i < bound_.size(); ++i) {
    if (!bound_[i].has_value()) {
      const std::string& name = stmt_.params[i].name;
      return Status::InvalidArgument(
          "parameter " + std::to_string(i) +
          (name.empty() ? "" : " (:" + name + ")") + " is unbound");
    }
  }
  return Status::Ok();
}

Status PreparedStatement::BindAndPlan() {
  PRIMA_RETURN_IF_ERROR(CheckBound());
  std::vector<access::Value> values;
  values.reserve(bound_.size());
  for (const auto& v : bound_) values.push_back(*v);
  mql::SubstituteStatementParams(&stmt_, values);

  if (PlannedFrom(stmt_) == nullptr) {
    return Status::Ok();  // no FROM clause, nothing to plan
  }
  const uint64_t schema_version =
      session_->data_->access().catalog().schema_version();
  bool need_plan =
      !plan_.has_value() || plan_schema_version_ != schema_version;
  if (!need_plan && !plan_->root_param_deps.empty()) {
    // Re-plan only when a binding the plan EMBEDS changed (eq-key /
    // range / sarg operands). Everything else reuses the plan verbatim.
    for (size_t i = 0; i < plan_->root_param_deps.size(); ++i) {
      const int dep = plan_->root_param_deps[i];
      if (values[dep].Compare(plan_dep_values_[i]) != 0) {
        need_plan = true;
        break;
      }
    }
  }
  if (need_plan) {
    plan_schema_version_ = schema_version;
    PRIMA_ASSIGN_OR_RETURN(
        mql::QueryPlan plan,
        session_->data_->executor().Prepare(*PlannedFrom(stmt_),
                                            PlannedWhere(stmt_)));
    plan_ = std::move(plan);
    plan_dep_values_.clear();
    for (const int dep : plan_->root_param_deps) {
      plan_dep_values_.push_back(values[dep]);
    }
    plans_computed_++;
    session_->data_->stats().prepared_plans++;
  }
  return Status::Ok();
}

Result<ExecResult> PreparedStatement::Execute() {
  // The whole bind-plan-execute sequence runs inside the telemetry wrapper,
  // so a re-plan forced by changed bindings shows up in the statement's
  // latency (and its trace, when sampled or slow-logged).
  return session_->RunInstrumented(
      text_, /*explain=*/false, [&]() -> Result<ExecResult> {
        PRIMA_RETURN_IF_ERROR(BindAndPlan());
        executions_++;
        session_->data_->stats().prepared_executions++;
        if (stmt_.kind == Statement::Kind::kQuery) {
          // Queries go through the cursor path (same as one-shot Execute)
          // so the session's isolation — and this statement's override —
          // applies; the raw executor entry point knows nothing of views.
          PRIMA_ASSIGN_OR_RETURN(
              MoleculeCursor cursor,
              session_->OpenCursor(mql::CloneQuery(stmt_.query),
                                   plan_.has_value() ? &*plan_ : nullptr,
                                   isolation_));
          ExecResult r;
          r.kind = ExecResult::Kind::kMolecules;
          PRIMA_ASSIGN_OR_RETURN(r.molecules, cursor.Drain());
          return r;
        }
        return session_->ExecuteStatement(
            stmt_, plan_.has_value() ? &*plan_ : nullptr);
      });
}

Result<MoleculeCursor> PreparedStatement::Query(
    std::optional<Isolation> isolation) {
  if (stmt_.kind != Statement::Kind::kQuery) {
    return Status::InvalidArgument("prepared statement is not a query");
  }
  PRIMA_RETURN_IF_ERROR(BindAndPlan());
  executions_++;
  session_->data_->stats().prepared_executions++;
  // The cursor owns a clone, so this statement can be re-bound and
  // re-executed while the cursor drains.
  return session_->OpenCursor(mql::CloneQuery(stmt_.query),
                              plan_.has_value() ? &*plan_ : nullptr,
                              isolation.has_value() ? isolation : isolation_);
}

}  // namespace prima::core
