#ifndef PRIMA_UTIL_RETRY_H_
#define PRIMA_UTIL_RETRY_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "util/random.h"
#include "util/status.h"

namespace prima::util {

/// Bounded-backoff retry loop for transient failures (Status::IsTransient):
/// lock conflicts and serialization failures under PRIMA's non-blocking
/// locking. Because a conflicting lock request returns kConflict instead of
/// waiting, two hot-row writers never deadlock — but the loser must abort,
/// back off, and re-run, and every multi-user driver would otherwise grow
/// its own ad-hoc copy of that loop.
struct RetryPolicy {
  /// Give up after this many attempts (the original try counts as one).
  /// <= 0 retries forever — correctness drives that must not abandon an
  /// acknowledged-op protocol mid-sequence use this.
  int max_attempts = 16;
  /// First backoff sleep; doubles per retry up to backoff_cap_us. The
  /// actual sleep is uniformly jittered in [1, computed] so two sessions
  /// that collided once don't re-collide in lockstep forever.
  uint64_t backoff_floor_us = 50;
  uint64_t backoff_cap_us = 5000;
  /// Seed for the jitter stream (deterministic runs stay deterministic).
  uint64_t jitter_seed = 0x7265747279u;  // "retry"
  /// Incremented once per retry (not per attempt). Point it at
  /// TransactionManager::stats().txn_retries to surface driver retries
  /// through Prima::stats() / MetricsText() / ServerStats.
  std::atomic<uint64_t>* retry_counter = nullptr;
};

/// Run `attempt` until it succeeds, fails permanently, or the policy's
/// attempt budget is exhausted (the last transient status is returned then).
/// `attempt` must be self-contained: it re-runs from scratch, so on a
/// transient failure it must have released whatever it held (for a session
/// transaction: ABORT WORK before returning the conflict).
template <typename Fn>
Status RetryTransient(const RetryPolicy& policy, Fn&& attempt) {
  Random jitter(policy.jitter_seed);
  uint64_t backoff_us = policy.backoff_floor_us;
  for (int tries = 1;; ++tries) {
    Status st = attempt();
    if (st.ok() || !st.IsTransient()) return st;
    if (policy.max_attempts > 0 && tries >= policy.max_attempts) return st;
    if (policy.retry_counter != nullptr) {
      policy.retry_counter->fetch_add(1, std::memory_order_relaxed);
    }
    if (backoff_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(1 + jitter.Uniform(backoff_us)));
    }
    backoff_us = std::min(policy.backoff_cap_us, backoff_us * 2);
  }
}

}  // namespace prima::util

#endif  // PRIMA_UTIL_RETRY_H_
