#include "util/status.h"

namespace prima::util {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kAlreadyExists: return "AlreadyExists";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kNoSpace: return "NoSpace";
    case Status::Code::kNotSupported: return "NotSupported";
    case Status::Code::kConstraint: return "Constraint";
    case Status::Code::kConflict: return "Conflict";
    case Status::Code::kParseError: return "ParseError";
    case Status::Code::kIoError: return "IoError";
    case Status::Code::kAborted: return "Aborted";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = CodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace prima::util
